(* kvstore-skew artifact: how each protocol's serving capacity degrades as
   the Zipfian skew concentrates traffic on a few hot buckets.

   The grid is protocol x theta x write ratio; every cell runs the same
   open-loop plan (same ops, rate, seed) so throughput and latency are
   directly comparable across cells. Under skew the hot bucket's lock — and
   with it the bucket's page — bounces between every node that hits it:
   home-based protocols pay a fetch from the fixed home per handoff, while
   homeless LRC accumulates diff chains along the lock's travel path. The
   table makes that divergence visible as theta rises.

   Cells are verify:false: the reference replay's page reads would land
   inside the timing window and inflate the elapsed time; correctness of
   the workload is covered by the differential soaks and the unit tests. *)

type row = {
  sv_proto : Svm.Config.protocol;
  sv_theta : float;
  sv_write_ratio : float;
  sv_ops : int;
  sv_throughput : float;  (** completed operations per simulated second *)
  sv_p50_us : float;
  sv_p99_us : float;
  sv_max_us : float;
}

let default_thetas = [ 0.0; 0.5; 0.9; 0.99 ]

let default_write_ratios = [ 0.0; 0.2; 0.5 ]

let protocols =
  List.filter_map Svm.Config.protocol_of_string Svm.Config.protocol_strings

(* Cells are enumerated protocol-major in list order and evaluated with
   [Pool.map], which returns results in input order — the rendered table is
   byte-identical for any --jobs width. *)
let sweep ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 8)
    ?(thetas = default_thetas) ?(write_ratios = default_write_ratios) ?params () =
  let base =
    match params with Some p -> p | None -> Apps.Registry.kvstore_params scale
  in
  let cells =
    List.concat_map
      (fun proto ->
        List.concat_map
          (fun theta -> List.map (fun w -> (proto, theta, w)) write_ratios)
          thetas)
      protocols
  in
  Pool.map pool
    (fun (proto, theta, write_ratio) ->
      let p =
        {
          base with
          Apps.Kvstore.traffic =
            { base.Apps.Kvstore.traffic with Traffic.theta; write_ratio };
        }
      in
      let app = Apps.Registry.kvstore_of_params p in
      let cfg = Svm.Config.make ~nprocs proto in
      let r = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:false) in
      let ops, p50, p99, mx =
        match r.Svm.Runtime.r_ops with
        | None -> (0, 0., 0., 0.)
        | Some o ->
            let lats = o.Svm.Runtime.or_lats in
            let pct q =
              match Svm.Stats.quantile lats q with Some v -> v | None -> 0.
            in
            let mx = if Array.length lats = 0 then 0. else lats.(Array.length lats - 1) in
            ( o.Svm.Runtime.or_gets + o.Svm.Runtime.or_puts + o.Svm.Runtime.or_txns,
              pct 0.5, pct 0.99, mx )
      in
      let throughput =
        if r.Svm.Runtime.r_elapsed > 0. then
          float_of_int ops /. (r.Svm.Runtime.r_elapsed /. 1_000_000.)
        else 0.
      in
      {
        sv_proto = proto;
        sv_theta = theta;
        sv_write_ratio = write_ratio;
        sv_ops = ops;
        sv_throughput = throughput;
        sv_p50_us = p50;
        sv_p99_us = p99;
        sv_max_us = mx;
      })
    cells

let report ppf ?pool ?scale ?nprocs ?thetas ?write_ratios ?params () =
  let rows = sweep ?pool ?scale ?nprocs ?thetas ?write_ratios ?params () in
  Format.fprintf ppf "@.=== KV-store skew sweep (open-loop Zipfian serving) ===@.@.";
  Format.fprintf ppf "  %-6s %6s %6s %9s %11s %10s %10s %10s@." "proto" "theta" "write"
    "ops" "ops/s" "p50(us)" "p99(us)" "max(us)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-6s %6.2f %6.2f %9d %11.0f %10.0f %10.0f %10.0f@."
        (Svm.Config.protocol_name r.sv_proto)
        r.sv_theta r.sv_write_ratio r.sv_ops r.sv_throughput r.sv_p50_us r.sv_p99_us
        r.sv_max_us)
    rows;
  Format.fprintf ppf "@."
