(** Ablation studies of design choices the paper argues about in prose,
    plus the wider protocol-family comparison. Results and interpretation
    live in EXPERIMENTS.md.

    Each ablation enumerates its grid of independent simulations, evaluates
    them through [pool] (default {!Pool.sequential}), and renders only once
    every run has finished — so the printed bytes are identical for any
    pool width. *)

(** Home placement for LU under HLRC: owner-homed blocks vs the fallback
    policies (paper §4.4's "chosen intelligently"). *)
val home_placement :
  Format.formatter ->
  ?pool:Pool.t ->
  scale:Apps.Registry.scale ->
  node_counts:int list ->
  unit ->
  unit

(** Sensitivity of the LRC/HLRC gap to network parameters: Paragon profile
    vs a modern low-latency profile (the paper's §4.8 discussion). *)
val network_sensitivity :
  Format.formatter ->
  ?pool:Pool.t ->
  scale:Apps.Registry.scale ->
  node_counts:int list ->
  unit ->
  unit

(** Coherence granularity: 4/8/16 KB pages under HLRC. *)
val page_size :
  Format.formatter ->
  ?pool:Pool.t ->
  scale:Apps.Registry.scale ->
  node_counts:int list ->
  unit ->
  unit

(** Lock service on the co-processor (the paper's §4.3 suggestion). *)
val coproc_locks :
  Format.formatter ->
  ?pool:Pool.t ->
  scale:Apps.Registry.scale ->
  node_counts:int list ->
  unit ->
  unit

(** The protocol family of the paper's §2: eager RC vs LRC vs HLRC vs AURC
    (speedups and update traffic). Reads the shared {!Matrix.t}; for a
    parallel run, {!Matrix.prefetch} the {!aurc_cells} first. *)
val aurc_comparison : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** The matrix cells {!aurc_comparison} reads, in first-use order. *)
val aurc_cells :
  Matrix.t -> node_counts:int list -> (Apps.Registry.t * Svm.Config.protocol * int) list

(** Adaptive home migration (extension) on un-hinted LU. *)
val home_migration :
  Format.formatter ->
  ?pool:Pool.t ->
  scale:Apps.Registry.scale ->
  node_counts:int list ->
  unit ->
  unit

(** Batched fault handling: elapsed time for [--fault-batch] 1/2/4/8 under
    HLRC, plus the pages actually piggybacked at N=8. *)
val fault_batch :
  Format.formatter ->
  ?pool:Pool.t ->
  scale:Apps.Registry.scale ->
  node_counts:int list ->
  unit ->
  unit
