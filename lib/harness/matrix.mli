(** Memoized (application x protocol x node count) run matrix.

    Every paper table and figure slices the same grid of simulations;
    running each cell once and caching the report keeps regenerating the
    full set affordable. *)

type t

(** [create ~scale ()] builds an empty matrix; [verify] (default true)
    checks every run against its sequential reference. [sink] receives the
    typed trace events of every uncached run (see {!Obs.Trace}). [chaos]
    (default {!Machine.Chaos.none}) applies one fault-injection plan to
    every cell. [fault_batch] (default 1) sets {!Svm.Config.fault_batch}
    on every cell. [metrics_interval] (default 0. = off) sets
    {!Svm.Config.metrics_interval} on every cell, so cached reports carry
    a timeline ([r_metrics]). *)
val create :
  ?verify:bool ->
  ?sink:Obs.Trace.sink ->
  ?chaos:Machine.Chaos.params ->
  ?fault_batch:int ->
  ?metrics_interval:float ->
  scale:Apps.Registry.scale ->
  unit ->
  t

(** Install a progress callback (called before each uncached run). *)
val on_progress : t -> (string -> unit) -> unit

val scale : t -> Apps.Registry.scale

(** Run (or recall) one cell. *)
val get : t -> Apps.Registry.t -> Svm.Config.protocol -> int -> Svm.Runtime.report

(** [prefetch t pool cells] evaluates every not-yet-cached cell of [cells]
    (duplicates ignored, order preserved) through [pool], so later {!get}s
    are cache hits. Each concurrent cell is a self-contained simulation
    tracing into its own sink; the per-cell sinks are merged into the
    matrix's shared sink in [cells] order, and the progress callback is
    mutex-serialized — so reports, dumps and traces are byte-identical to
    a sequential run whose first [get]s happen in [cells] order. *)
val prefetch :
  t -> Pool.t -> (Apps.Registry.t * Svm.Config.protocol * int) list -> unit

(** Sequential baseline: the computation-only time of a one-node run
    (protocol-independent; what the paper divides by for speedups). *)
val seq_time : t -> Apps.Registry.t -> float

(** [speedup m app proto np] = sequential time / parallel elapsed. *)
val speedup : t -> Apps.Registry.t -> Svm.Config.protocol -> int -> float

(** Mean over nodes of one per-node counter. *)
val mean_counter : Svm.Runtime.report -> (Svm.Stats.counters -> int) -> float

(** All cached cells as [(app, protocol, node_count, report)], sorted by
    application name, canonical protocol order (LRC, OLRC, HLRC, OHLRC,
    AURC, RC — see {!Svm.Config.protocol_rank}, matching the paper's table
    columns), then node count — a deterministic order for machine-readable
    dumps. *)
val cells : t -> (string * Svm.Config.protocol * int * Svm.Runtime.report) list
