(* Traffic-vs-time timelines (the [timeline] bench artifact).

   One picture per protocol: the same application's per-interval message
   and update-byte series fault-free and under a fixed chaos plan, stacked
   so the retransmission spike and the elapsed stretch line up visually;
   plus a replicated-home failover cell whose recovery-stall window shows
   up as a hole in the traffic. Uses the sampled metrics recorder
   ([Config.metrics_interval]); the bucket width is derived from a
   fault-free probe run so every scale renders at a comparable number of
   intervals. *)

let width = 44

(* Same drop/jitter magnitudes as the chaos-soak default plan, pinned to
   one seed so the artifact is a single reproducible picture. *)
let chaos_plan =
  {
    Machine.Chaos.none with
    Machine.Chaos.drop_rate = 0.02;
    jitter = 30.;
    fault_seed = 7;
  }

let run_cell ~verify ~scale ~np ~interval ?(chaos = Machine.Chaos.none)
    ?(replicas = 1) proto =
  let app = Apps.Registry.sor scale in
  let cfg = Svm.Config.make ~nprocs:np ~chaos ~replicas ~metrics_interval:interval proto in
  Svm.Runtime.run cfg (app.Apps.Registry.body ~verify)

let metrics r =
  match r.Svm.Runtime.r_metrics with
  | Some m -> m
  | None -> invalid_arg "Timeline: run recorded no metrics"

let total r name =
  match Obs.Metrics.series_total (metrics r) name with
  | Some row -> row
  | None -> [||]

(* One sparkline row: [label] names the series, [tag] the run variant. The
   sparklines are resampled to a fixed character width, so variants of one
   series line up column-wise even though they span different amounts of
   simulated time — the bucket count on the right says how much. *)
let spark_line ppf label tag r name =
  let row = total r name in
  Format.fprintf ppf "  %-13s %-6s %s  total %.0f (%d buckets)@." label tag
    (Obs.Metrics.spark ~width row)
    (Array.fold_left ( +. ) 0. row)
    (Obs.Metrics.buckets (metrics r))

let protocol_block ppf proto ok chaos =
  Format.fprintf ppf "@.%s@." (Svm.Config.protocol_name proto);
  spark_line ppf "messages" "ok" ok "messages";
  spark_line ppf "messages" "chaos" chaos "messages";
  spark_line ppf "update_bytes" "ok" ok "update_bytes";
  spark_line ppf "update_bytes" "chaos" chaos "update_bytes";
  spark_line ppf "retransmits" "chaos" chaos "retransmits";
  Format.fprintf ppf "  elapsed: ok %.0f us, chaos %.0f us (%.2fx)@."
    ok.Svm.Runtime.r_elapsed chaos.Svm.Runtime.r_elapsed
    (chaos.Svm.Runtime.r_elapsed /. ok.Svm.Runtime.r_elapsed)

let failover_block ppf ~victim ~kill_at ok failover =
  Format.fprintf ppf "@.HLRC + 2 replicas, node %d killed at t=%.0f us@." victim
    kill_at;
  spark_line ppf "messages" "kill" failover "messages";
  spark_line ppf "repl_bytes" "kill" failover "repl_bytes";
  spark_line ppf "retransmits" "kill" failover "retransmits";
  (match List.assoc_opt "recovery_stall_us" (Obs.Metrics.histograms (metrics failover)) with
  | None -> ()
  | Some h -> (
      let s = Obs.Metrics.histogram_stats h in
      match (s.Obs.Metrics.hs_p50, s.Obs.Metrics.hs_p99) with
      | Some p50, Some p99 ->
          Format.fprintf ppf
            "  recovery stall: %d waiters, p50 <= %.0f us, p99 <= %.0f us, max %.0f us@."
            s.Obs.Metrics.hs_count p50 p99 s.Obs.Metrics.hs_max
      | _ -> Format.fprintf ppf "  recovery stall: no waiters@."));
  let failovers =
    Array.fold_left
      (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.failovers)
      0 failover.Svm.Runtime.r_nodes
  in
  Format.fprintf ppf "  failovers: %d pages promoted; elapsed %.0f us (%.2fx fault-free)@."
    failovers failover.Svm.Runtime.r_elapsed
    (failover.Svm.Runtime.r_elapsed /. ok.Svm.Runtime.r_elapsed)

(* The kill victim: the home of the most-faulted page (excluding node 0,
   which cannot be killed). Killing a node that homes no pages proves
   nothing — at small scales round-robin homes land on a strict subset of
   the nodes — so the victim is read off the probe's heatmaps, where the
   traffic actually is. *)
let victim_of probe ~np =
  let m = metrics probe in
  let faults = List.assoc_opt "page_faults" (Obs.Metrics.heatmaps m) in
  let fault_of page =
    match faults with
    | None -> 0.
    | Some fh -> Option.value ~default:0. (Obs.Metrics.heatmap_find fh page)
  in
  match List.assoc_opt "page_home" (Obs.Metrics.heatmaps m) with
  | None -> np - 1
  | Some hm ->
      let best =
        List.fold_left
          (fun acc (page, home) ->
            let home = int_of_float home in
            if home <= 0 then acc
            else
              match acc with
              | Some (_, f) when f >= fault_of page -> acc
              | _ -> Some (home, fault_of page))
          None
          (Obs.Metrics.heatmap_entries hm)
      in
      (match best with Some (h, _) -> h | None -> np - 1)

let report ppf ?(pool = Pool.sequential) ?(verify = true) ~scale ~np () =
  if np < 2 then invalid_arg "Timeline.report: np must be >= 2 (node 0 cannot be killed)";
  (* The probe run (coarse cadence, fault-free) fixes three inputs the
     real cells need up front: the bucket width, the kill time, and the
     kill victim (from its home/fault heatmaps). *)
  let probe = run_cell ~verify ~scale ~np ~interval:1000. Svm.Config.Hlrc in
  let elapsed = probe.Svm.Runtime.r_elapsed in
  let interval = Float.max 1. (Float.round (elapsed /. 48.)) in
  let kill_at = Float.round (0.5 *. elapsed) in
  let victim = victim_of probe ~np in
  (* Detection slower than a barrier period: the next fetch burst to the
     dead home lands inside the outage window and blocks until failover,
     so the recovery stall is visible instead of a timing accident. *)
  let detect_delay = Float.max 500. (4. *. interval) in
  let kill_plan =
    {
      Machine.Chaos.none with
      Machine.Chaos.faults = [ Machine.Chaos.Kill { node = victim; at = kill_at } ];
      detect_delay;
    }
  in
  let cells =
    Pool.map pool
      (fun thunk -> thunk ())
      [
        (fun () -> run_cell ~verify ~scale ~np ~interval Svm.Config.Lrc);
        (fun () -> run_cell ~verify ~scale ~np ~interval ~chaos:chaos_plan Svm.Config.Lrc);
        (fun () -> run_cell ~verify ~scale ~np ~interval Svm.Config.Hlrc);
        (fun () -> run_cell ~verify ~scale ~np ~interval ~chaos:chaos_plan Svm.Config.Hlrc);
        (* Mid-run kill: soundness under kills is kill-soak's business (it
           kills in the victim's synchronization tail); here the point is a
           visible recovery-stall window, so the kill lands mid-run and the
           cell skips result verification. *)
        (fun () ->
          run_cell ~verify:false ~scale ~np ~interval ~chaos:kill_plan ~replicas:2
            Svm.Config.Hlrc);
      ]
  in
  match cells with
  | [ lrc_ok; lrc_chaos; hlrc_ok; hlrc_chaos; failover ] ->
      Format.fprintf ppf
        "@.=== Timeline: traffic vs simulated time (sor, %d nodes, %g us buckets) ===@." np
        interval;
      Format.fprintf ppf "chaos plan: drop %.0f%%, jitter %.0f us, fault seed %d@."
        (100. *. chaos_plan.Machine.Chaos.drop_rate)
        chaos_plan.Machine.Chaos.jitter chaos_plan.Machine.Chaos.fault_seed;
      protocol_block ppf Svm.Config.Lrc lrc_ok lrc_chaos;
      protocol_block ppf Svm.Config.Hlrc hlrc_ok hlrc_chaos;
      failover_block ppf ~victim ~kill_at hlrc_ok failover
  | _ -> assert false
