(* Differential soundness under fault injection.

   The property: chaos (drops, duplicates, jitter, stragglers) may change
   timing and traffic, but never the computed result. For every protocol x
   application cell we run once fault-free and once per fault seed, and
   require (a) the application's own verification against its sequential
   reference to pass, and (b) the final shared-memory digest
   ({!Svm.Runtime.report.r_mem_digest}) to be bit-identical to the
   fault-free run's. Any divergence is a lost or misordered update that
   slipped past the transport's reliability layer. *)

type row = {
  s_app : string;
  s_proto : Svm.Config.protocol;
  s_fault_seed : int;
  s_ok : bool;
  s_digest : int64;
  s_expected : int64;
  s_slowdown : float;  (** elapsed(chaos) / elapsed(fault-free) *)
  s_drops : int;
  s_retransmits : int;
}

let default_params ~fault_seed =
  {
    Machine.Chaos.none with
    Machine.Chaos.drop_rate = 0.02;
    dup_rate = 0.01;
    jitter = 5.0;
    straggler = 1.25;
    fault_seed;
  }

let protocols =
  List.filter_map Svm.Config.protocol_of_string Svm.Config.protocol_strings

let sum_counter (r : Svm.Runtime.report) f =
  Array.fold_left (fun acc n -> acc + f n.Svm.Runtime.nr_counters) 0 r.Svm.Runtime.r_nodes

let run_one ~nprocs ~chaos proto (app : Apps.Registry.t) =
  let cfg = Svm.Config.make ~nprocs ~chaos proto in
  Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true)

(* The sweep is embarrassingly parallel at (protocol x application)
   granularity: one task runs the fault-free twin plus every fault seed of
   its cell (the seeds need the twin's digest), and tasks are enumerated in
   the sequential nesting order so the concatenated rows — and therefore
   the report — are identical for any pool width. *)
let sweep ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 4)
    ?(fault_seeds = [ 1; 2; 3 ]) ?params () =
  let params = match params with Some p -> p | None -> default_params ~fault_seed:0 in
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      protocols
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      let clean = run_one ~nprocs ~chaos:Machine.Chaos.none proto app in
      let expected = clean.Svm.Runtime.r_mem_digest in
      List.map
        (fun fault_seed ->
          let chaos = { params with Machine.Chaos.fault_seed } in
          let r = run_one ~nprocs ~chaos proto app in
          {
            s_app = app.Apps.Registry.name;
            s_proto = proto;
            s_fault_seed = fault_seed;
            s_ok = Int64.equal r.Svm.Runtime.r_mem_digest expected;
            s_digest = r.Svm.Runtime.r_mem_digest;
            s_expected = expected;
            s_slowdown = r.Svm.Runtime.r_elapsed /. clean.Svm.Runtime.r_elapsed;
            s_drops = sum_counter r (fun c -> c.Svm.Stats.msg_drops);
            s_retransmits = sum_counter r (fun c -> c.Svm.Stats.msg_retransmits);
          })
        fault_seeds)
    tasks
  |> List.concat

let report ppf ?pool ?scale ?nprocs ?fault_seeds ?params () =
  let rows = sweep ?pool ?scale ?nprocs ?fault_seeds ?params () in
  Format.fprintf ppf "@.=== Chaos soak: differential soundness ===@.@.";
  Format.fprintf ppf "%-10s %-6s %5s  %8s %8s %9s  %s@." "app" "proto" "seed" "drops"
    "rexmits" "slowdown" "digest";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %5d  %8d %8d %8.2fx  %016Lx %s@." r.s_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.s_proto))
        r.s_fault_seed r.s_drops r.s_retransmits r.s_slowdown r.s_digest
        (if r.s_ok then "ok" else Printf.sprintf "MISMATCH (expected %016Lx)" r.s_expected))
    rows;
  let bad = List.filter (fun r -> not r.s_ok) rows in
  Format.fprintf ppf "@.%d cell(s), %d divergence(s)@." (List.length rows) (List.length bad);
  bad = []

(* ------------------------------------------------------------------ *)
(* Node-kill differential sweep                                       *)

(* The property extends to crash-stops: with a replica degree >= 2, killing
   a node after its last synchronization arrival (its committed history is
   complete; only its cached copies die with it) must leave the final
   shared-memory digest identical to the fault-free twin's — the failover
   rebuilt every page the victim was hosting. *)

type kill_row = {
  k_app : string;
  k_proto : Svm.Config.protocol;
  k_scheme : Svm.Config.repl_scheme;
  k_replicas : int;
  k_kill_at : float;
  k_ok : bool;
  k_digest : int64;
  k_expected : int64;
  k_failovers : int;
  k_stall_p99 : float;
}

(* Eager protocols push updates at write time and have no replica machinery
   (Config rejects --replicas > 1 for them). *)
let replicable =
  List.filter (fun p -> p <> Svm.Config.Aurc && p <> Svm.Config.Rc) protocols

let stall_p99 (r : Svm.Runtime.report) =
  match r.Svm.Runtime.r_failover_stalls with
  | [] -> 0.
  | stalls ->
      let a = Array.of_list stalls (* sorted ascending *) in
      let n = Array.length a in
      a.(min (n - 1) (max 0 (int_of_float (ceil (0.99 *. float_of_int n)) - 1)))

(* Place the kill in the victim's synchronization tail: after its last
   barrier arrival in the fault-free twin (watched through a trace sink),
   before the run's end. Anything earlier loses computation no protocol
   without logging can recover (crash-stop semantics), and the app's own
   verification would rightly fail. *)
let run_killed ~nprocs ~replicas ~scheme proto (app : Apps.Registry.t) =
  let sink = Obs.Trace.create_sink () in
  let cfg = Svm.Config.make ~nprocs ~replicas ~repl_scheme:scheme proto in
  let clean = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
  let victim = nprocs - 1 in
  let last = ref 0. in
  Obs.Trace.iter sink (fun ev ->
      if ev.Obs.Trace.node = victim then
        match ev.Obs.Trace.kind with
        | Obs.Trace.Barrier_arrive _ -> last := ev.Obs.Trace.time
        | _ -> ());
  let kill_at = !last +. (0.5 *. (clean.Svm.Runtime.r_elapsed -. !last)) in
  let chaos =
    {
      Machine.Chaos.none with
      Machine.Chaos.faults = [ Machine.Chaos.Kill { node = victim; at = kill_at } ];
    }
  in
  let cfg = Svm.Config.make ~nprocs ~replicas ~repl_scheme:scheme ~chaos proto in
  let killed = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  (clean, killed, kill_at)

let kill_sweep ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 4)
    ?(replicas = 2) () =
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      replicable
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      List.map
        (fun scheme ->
          let clean, killed, kill_at = run_killed ~nprocs ~replicas ~scheme proto app in
          let expected = clean.Svm.Runtime.r_mem_digest in
          {
            k_app = app.Apps.Registry.name;
            k_proto = proto;
            k_scheme = scheme;
            k_replicas = replicas;
            k_kill_at = kill_at;
            k_ok = Int64.equal killed.Svm.Runtime.r_mem_digest expected;
            k_digest = killed.Svm.Runtime.r_mem_digest;
            k_expected = expected;
            k_failovers = sum_counter killed (fun c -> c.Svm.Stats.failovers);
            k_stall_p99 = stall_p99 killed;
          })
        [ Svm.Config.Inval; Svm.Config.Backup ])
    tasks
  |> List.concat

let kill_report ppf ?pool ?scale ?nprocs ?replicas () =
  let rows = kill_sweep ?pool ?scale ?nprocs ?replicas () in
  Format.fprintf ppf "@.=== Kill soak: failover differential soundness ===@.@.";
  Format.fprintf ppf "%-10s %-6s %-7s %2s %10s %9s %9s  %s@." "app" "proto" "scheme" "K"
    "kill_at" "failovers" "p99stall" "digest";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %-7s %2d %10.0f %9d %8.0fu  %016Lx %s@." r.k_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.k_proto))
        (Svm.Config.repl_scheme_name r.k_scheme)
        r.k_replicas r.k_kill_at r.k_failovers r.k_stall_p99 r.k_digest
        (if r.k_ok then "ok" else Printf.sprintf "MISMATCH (expected %016Lx)" r.k_expected))
    rows;
  let bad = List.filter (fun r -> not r.k_ok) rows in
  Format.fprintf ppf "@.%d cell(s), %d divergence(s)@." (List.length rows) (List.length bad);
  bad = []

(* ------------------------------------------------------------------ *)
(* Availability cost                                                  *)

(* What replication costs when nothing fails (extra traffic, slowdown vs
   K = 1) and what a failure costs when it happens (recovery stalls), per
   protocol x application x degree x scheme. *)

type avail_row = {
  a_app : string;
  a_proto : Svm.Config.protocol;
  a_replicas : int;
  a_scheme : Svm.Config.repl_scheme option;  (** [None] at K = 1 (no replication). *)
  a_repl_msgs : int;  (** Replication updates + invalidations, fault-free run. *)
  a_repl_bytes : int;
  a_overhead : float;  (** elapsed(K, scheme) / elapsed(K = 1), fault-free. *)
  a_failovers : int;  (** From the killed run; 0 at K = 1 (no kill attempted). *)
  a_stall_mean : float;
  a_stall_p99 : float;
  a_ok : bool;  (** Killed-run digest matches fault-free; vacuously true at K = 1. *)
}

let availability ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 4)
    ?(degrees = [ 2; 3 ]) () =
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      replicable
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      let base = run_one ~nprocs ~chaos:Machine.Chaos.none proto app in
      let base_row =
        {
          a_app = app.Apps.Registry.name;
          a_proto = proto;
          a_replicas = 1;
          a_scheme = None;
          a_repl_msgs = 0;
          a_repl_bytes = 0;
          a_overhead = 1.;
          a_failovers = 0;
          a_stall_mean = 0.;
          a_stall_p99 = 0.;
          a_ok = true;
        }
      in
      base_row
      :: List.concat_map
           (fun replicas ->
             List.map
               (fun scheme ->
                 let clean, killed, _ = run_killed ~nprocs ~replicas ~scheme proto app in
                 let stalls = killed.Svm.Runtime.r_failover_stalls in
                 let n = List.length stalls in
                 {
                   a_app = app.Apps.Registry.name;
                   a_proto = proto;
                   a_replicas = replicas;
                   a_scheme = Some scheme;
                   a_repl_msgs =
                     sum_counter clean (fun c -> c.Svm.Stats.repl_updates)
                     + sum_counter clean (fun c -> c.Svm.Stats.repl_invals);
                   a_repl_bytes = sum_counter clean (fun c -> c.Svm.Stats.repl_bytes);
                   a_overhead =
                     clean.Svm.Runtime.r_elapsed /. base.Svm.Runtime.r_elapsed;
                   a_failovers = sum_counter killed (fun c -> c.Svm.Stats.failovers);
                   a_stall_mean =
                     (if n = 0 then 0.
                      else List.fold_left ( +. ) 0. stalls /. float_of_int n);
                   a_stall_p99 = stall_p99 killed;
                   a_ok =
                     Int64.equal killed.Svm.Runtime.r_mem_digest
                       clean.Svm.Runtime.r_mem_digest;
                 })
               [ Svm.Config.Inval; Svm.Config.Backup ])
           degrees)
    tasks
  |> List.concat

let availability_report ppf ?pool ?scale ?nprocs ?degrees () =
  let rows = availability ?pool ?scale ?nprocs ?degrees () in
  Format.fprintf ppf "@.=== Availability cost: replication traffic and recovery stalls ===@.@.";
  Format.fprintf ppf "%-10s %-6s %2s %-7s %9s %10s %9s %9s %10s %10s@." "app" "proto" "K"
    "scheme" "repl_msgs" "repl_bytes" "overhead" "failovers" "stall_mean" "stall_p99";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %2d %-7s %9d %10d %8.3fx %9d %9.0fu %9.0fu%s@." r.a_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.a_proto))
        r.a_replicas
        (match r.a_scheme with None -> "-" | Some s -> Svm.Config.repl_scheme_name s)
        r.a_repl_msgs r.a_repl_bytes r.a_overhead r.a_failovers r.a_stall_mean r.a_stall_p99
        (if r.a_ok then "" else "  DIGEST MISMATCH"))
    rows;
  let bad = List.filter (fun r -> not r.a_ok) rows in
  Format.fprintf ppf "@.%d cell(s), %d divergence(s)@." (List.length rows) (List.length bad);
  bad = []

(* ------------------------------------------------------------------ *)
(* Partition differential sweep                                       *)

(* The property extends to network partitions: a partition that heals
   before the run ends may stall progress (links are severed; the reliable
   transport retransmits across the heal) and — under the heartbeat
   detector — falsely depose the minority side, but it must never change
   the computed result. Every cell's digest is compared against its
   fault-free twin's, under both detectors: [Oracle] exercises pure
   retransmission healing (no failover can happen), [Heartbeat] exercises
   the whole suspicion -> quorum depose -> failover -> refute -> rejoin
   cycle. *)

type part_row = {
  p_app : string;
  p_proto : Svm.Config.protocol;
  p_group : int list;  (** the side cut off from the rest *)
  p_detector : Svm.Config.detector;
  p_ok : bool;
  p_digest : int64;
  p_expected : int64;
  p_suspicions : int;
  p_refutations : int;
  p_deposes : int;
  p_rejoins : int;
  p_fenced : int;
}

(* Place the partition mid-run, wide enough that a suspicion timeout at the
   default heartbeat cadence (~700 us) always elapses inside the window. *)
let partition_window elapsed =
  let from_ = 0.35 *. elapsed in
  (from_, from_ +. Float.max 3000. (0.2 *. elapsed))

let count_kind sink pred =
  let n = ref 0 in
  Obs.Trace.iter sink (fun ev -> if pred ev.Obs.Trace.kind then incr n);
  !n

let run_partitioned ~nprocs ~replicas ~detector ~group proto (app : Apps.Registry.t) =
  let cfg = Svm.Config.make ~nprocs ~replicas proto in
  let clean = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  let from_, until = partition_window clean.Svm.Runtime.r_elapsed in
  let chaos =
    {
      Machine.Chaos.none with
      Machine.Chaos.faults = [ Machine.Chaos.Partition { group; from_; until } ];
    }
  in
  let cfg = Svm.Config.make ~nprocs ~replicas ~chaos ~detector proto in
  let sink = Obs.Trace.create_sink () in
  let parted = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
  (clean, parted, sink)

(* Two placements: a lone minority node (the quorum deposes it under the
   heartbeat detector) and an even split (neither side can muster a strict
   majority — nobody may be deposed, the partition only stalls). *)
let default_groups ~nprocs = [ [ nprocs - 1 ]; List.init (nprocs / 2) (fun i -> nprocs - 1 - i) ]

let partition_sweep ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 4)
    ?(replicas = 2) ?groups () =
  let groups = match groups with Some g -> g | None -> default_groups ~nprocs in
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      replicable
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      List.concat_map
        (fun group ->
          List.map
            (fun detector ->
              let clean, parted, sink =
                run_partitioned ~nprocs ~replicas ~detector ~group proto app
              in
              let expected = clean.Svm.Runtime.r_mem_digest in
              {
                p_app = app.Apps.Registry.name;
                p_proto = proto;
                p_group = group;
                p_detector = detector;
                p_ok = Int64.equal parted.Svm.Runtime.r_mem_digest expected;
                p_digest = parted.Svm.Runtime.r_mem_digest;
                p_expected = expected;
                p_suspicions = sum_counter parted (fun c -> c.Svm.Stats.suspicions);
                p_refutations = sum_counter parted (fun c -> c.Svm.Stats.refutations);
                p_deposes =
                  count_kind sink (function Obs.Trace.Depose _ -> true | _ -> false);
                p_rejoins =
                  count_kind sink (function Obs.Trace.Rejoin _ -> true | _ -> false);
                p_fenced = sum_counter parted (fun c -> c.Svm.Stats.fenced_fetches);
              })
            [ Svm.Config.Oracle; Svm.Config.Heartbeat ])
        groups)
    tasks
  |> List.concat

let group_name g = String.concat "," (List.map string_of_int g)

let partition_report ppf ?pool ?scale ?nprocs ?replicas ?groups () =
  let rows = partition_sweep ?pool ?scale ?nprocs ?replicas ?groups () in
  Format.fprintf ppf "@.=== Partition soak: healed partitions never change results ===@.@.";
  Format.fprintf ppf "%-10s %-6s %-6s %-9s %8s %7s %7s %7s %7s  %s@." "app" "proto" "cut"
    "detector" "suspects" "refutes" "deposes" "rejoins" "fenced" "digest";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %-6s %-9s %8d %7d %7d %7d %7d  %016Lx %s@." r.p_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.p_proto))
        (group_name r.p_group)
        (Svm.Config.detector_name r.p_detector)
        r.p_suspicions r.p_refutations r.p_deposes r.p_rejoins r.p_fenced r.p_digest
        (if r.p_ok then "ok" else Printf.sprintf "MISMATCH (expected %016Lx)" r.p_expected))
    rows;
  (* Sanity over the whole table, not per cell (whether a *given* cell
     deposes depends on timing): oracle cells must never depose, and no
     even-split cell may ever depose anyone (no strict majority exists). *)
  let impossible =
    List.filter
      (fun r ->
        (r.p_detector = Svm.Config.Oracle && (r.p_deposes > 0 || r.p_suspicions > 0))
        || (2 * List.length r.p_group >= (match nprocs with Some n -> n | None -> 4)
           && r.p_deposes > 0))
      rows
  in
  let bad = List.filter (fun r -> not r.p_ok) rows in
  List.iter
    (fun r ->
      Format.fprintf ppf "IMPOSSIBLE: %s/%s cut=%s %s deposed %d suspected %d@." r.p_app
        (Svm.Config.protocol_name r.p_proto) (group_name r.p_group)
        (Svm.Config.detector_name r.p_detector)
        r.p_deposes r.p_suspicions)
    impossible;
  Format.fprintf ppf "@.%d cell(s), %d divergence(s), %d impossible detector outcome(s)@."
    (List.length rows) (List.length bad) (List.length impossible);
  bad = [] && impossible = []

(* ------------------------------------------------------------------ *)
(* False-suspicion soak                                               *)

(* The sharpest robustness property of the detector stack: pause a node
   past the suspicion timeout so the quorum *wrongly* deposes it (it is
   alive — a gray failure), let it resume, and require (a) the digest to
   match the fault-free twin — no split brain, no lost update — and (b) the
   victim to be deposed, to rejoin, and to demonstrably participate after
   the heal. *)

type suspicion_row = {
  f_app : string;
  f_proto : Svm.Config.protocol;
  f_scheme : Svm.Config.repl_scheme;
  f_ok : bool;
  f_digest : int64;
  f_expected : int64;
  f_deposed : bool;
  f_rejoined : bool;
  f_active_after : bool;  (** the victim fetched or synchronized post-rejoin *)
  f_detect_us : float;  (** first suspicion of the victim minus pause start *)
}

let run_suspected ~nprocs ~replicas ~scheme proto (app : Apps.Registry.t) =
  let cfg = Svm.Config.make ~nprocs ~replicas ~repl_scheme:scheme proto in
  let clean = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  let victim = nprocs - 1 in
  let from_ = 0.4 *. clean.Svm.Runtime.r_elapsed in
  (* Four suspicion timeouts: the quorum always deposes well inside the
     window, and the refutation only arrives after the resume. *)
  let until = from_ +. Float.max 3000. (4. *. 700.) in
  let chaos =
    {
      Machine.Chaos.none with
      Machine.Chaos.faults = [ Machine.Chaos.Pause { node = victim; from_; until } ];
    }
  in
  let cfg =
    Svm.Config.make ~nprocs ~replicas ~repl_scheme:scheme ~chaos
      ~detector:Svm.Config.Heartbeat proto
  in
  let sink = Obs.Trace.create_sink () in
  let paused = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
  (clean, paused, sink, victim, from_)

let false_suspicion_sweep ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test)
    ?(nprocs = 4) ?(replicas = 2) () =
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      replicable
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      List.map
        (fun scheme ->
          let clean, paused, sink, victim, pause_at =
            run_suspected ~nprocs ~replicas ~scheme proto app
          in
          let expected = clean.Svm.Runtime.r_mem_digest in
          let deposed = ref false and rejoin_at = ref Float.infinity in
          let active_after = ref false and first_suspect = ref Float.infinity in
          Obs.Trace.iter sink (fun ev ->
              match ev.Obs.Trace.kind with
              | Obs.Trace.Depose { node } when node = victim -> deposed := true
              | Obs.Trace.Rejoin { node } when node = victim ->
                  rejoin_at := Float.min !rejoin_at ev.Obs.Trace.time
              | Obs.Trace.Suspect { peer } when peer = victim ->
                  first_suspect := Float.min !first_suspect ev.Obs.Trace.time
              | (Obs.Trace.Page_fetch _ | Obs.Trace.Barrier_arrive _)
                when ev.Obs.Trace.node = victim && ev.Obs.Trace.time > !rejoin_at ->
                  active_after := true
              | _ -> ());
          {
            f_app = app.Apps.Registry.name;
            f_proto = proto;
            f_scheme = scheme;
            f_ok = Int64.equal paused.Svm.Runtime.r_mem_digest expected;
            f_digest = paused.Svm.Runtime.r_mem_digest;
            f_expected = expected;
            f_deposed = !deposed;
            f_rejoined = Float.is_finite !rejoin_at;
            f_active_after = !active_after;
            f_detect_us =
              (if Float.is_finite !first_suspect then !first_suspect -. pause_at else nan);
          })
        [ Svm.Config.Inval; Svm.Config.Backup ])
    tasks
  |> List.concat

let false_suspicion_report ppf ?pool ?scale ?nprocs ?replicas () =
  let rows = false_suspicion_sweep ?pool ?scale ?nprocs ?replicas () in
  Format.fprintf ppf
    "@.=== False-suspicion soak: wrongly deposed nodes rejoin without split brain ===@.@.";
  Format.fprintf ppf "%-10s %-6s %-7s %8s %8s %7s %10s  %s@." "app" "proto" "scheme"
    "deposed" "rejoined" "active" "detect_us" "digest";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %-7s %8b %8b %7b %10.0f  %016Lx %s@." r.f_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.f_proto))
        (Svm.Config.repl_scheme_name r.f_scheme)
        r.f_deposed r.f_rejoined r.f_active_after r.f_detect_us r.f_digest
        (if r.f_ok then "ok" else Printf.sprintf "MISMATCH (expected %016Lx)" r.f_expected))
    rows;
  let bad =
    List.filter
      (fun r -> not (r.f_ok && r.f_deposed && r.f_rejoined && r.f_active_after))
      rows
  in
  Format.fprintf ppf "@.%d cell(s), %d failing@." (List.length rows) (List.length bad);
  bad = []

(* ------------------------------------------------------------------ *)
(* Detector characterization                                          *)

(* The classic failure-detector trade-off, measured: a short suspicion
   timeout detects real crashes quickly but wrongly deposes nodes that are
   merely slow (a paused-and-resumed gray failure); a long one never errs
   but leaves the cluster blocked on a dead home for longer. One row per
   timeout: detection latency of a real kill (depose time - kill time) and
   whether an equally-long pause was falsely deposed. *)

type detector_row = {
  d_timeout : float;  (** suspicion timeout, us *)
  d_detect_us : float;  (** real kill: quorum depose latency, us *)
  d_false_depose : bool;  (** pause of [d_pause_us]: was the victim deposed? *)
  d_pause_us : float;  (** gray-failure pause length, us *)
  d_ok : bool;  (** both runs' digests match their fault-free twins *)
}

let detector_sweep ?(scale = Apps.Registry.Test) ?(nprocs = 4) ?(replicas = 2)
    ?(timeouts = [ 400.; 800.; 1600.; 3200.; 6400. ]) ?(proto = Svm.Config.Hlrc) () =
  let app =
    match Apps.Registry.find "lu" scale with
    | Some a -> a
    | None -> invalid_arg "Soak.detector_sweep: no lu application"
  in
  let sink = Obs.Trace.create_sink () in
  let cfg = Svm.Config.make ~nprocs ~replicas proto in
  let clean = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
  let expected = clean.Svm.Runtime.r_mem_digest in
  let victim = nprocs - 1 in
  (* Like {!kill_sweep}: the fault lands in the victim's synchronization
     tail, where a crash-stop loses no unreplicated computation and the
     pause's false depose is recoverable by rejoin. *)
  let last = ref 0. in
  Obs.Trace.iter sink (fun ev ->
      if ev.Obs.Trace.node = victim then
        match ev.Obs.Trace.kind with
        | Obs.Trace.Barrier_arrive _ -> last := ev.Obs.Trace.time
        | _ -> ());
  let fault_at = !last +. (0.5 *. (clean.Svm.Runtime.r_elapsed -. !last)) in
  let pause_us = 2000. in
  List.map
    (fun hb_timeout ->
      let run faults =
        let chaos = { Machine.Chaos.none with Machine.Chaos.faults } in
        let cfg =
          Svm.Config.make ~nprocs ~replicas ~chaos ~detector:Svm.Config.Heartbeat
            ~hb_timeout proto
        in
        let sink = Obs.Trace.create_sink () in
        let r = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
        let depose_at = ref Float.infinity in
        Obs.Trace.iter sink (fun ev ->
            match ev.Obs.Trace.kind with
            | Obs.Trace.Depose { node } when node = victim ->
                depose_at := Float.min !depose_at ev.Obs.Trace.time
            | _ -> ());
        (r, !depose_at)
      in
      let killed, kill_depose =
        run [ Machine.Chaos.Kill { node = victim; at = fault_at } ]
      in
      let paused, pause_depose =
        run
          [ Machine.Chaos.Pause { node = victim; from_ = fault_at; until = fault_at +. pause_us } ]
      in
      {
        d_timeout = hb_timeout;
        d_detect_us =
          (if Float.is_finite kill_depose then kill_depose -. fault_at else infinity);
        d_false_depose = Float.is_finite pause_depose;
        d_pause_us = pause_us;
        d_ok =
          Int64.equal killed.Svm.Runtime.r_mem_digest expected
          && Int64.equal paused.Svm.Runtime.r_mem_digest expected;
      })
    timeouts

let detector_report ppf ?scale ?nprocs ?replicas ?timeouts ?proto () =
  let rows = detector_sweep ?scale ?nprocs ?replicas ?timeouts ?proto () in
  Format.fprintf ppf
    "@.=== Detector characterization (%s): detection latency vs false failover ===@.@."
    (Svm.Config.protocol_name (Option.value ~default:Svm.Config.Hlrc proto));
  Format.fprintf ppf "%10s %12s %13s %10s  %s@." "timeout_us" "detect_us" "false_depose"
    "pause_us" "digests";
  List.iter
    (fun r ->
      Format.fprintf ppf "%10.0f %12.0f %13b %10.0f  %s@." r.d_timeout r.d_detect_us
        r.d_false_depose r.d_pause_us
        (if r.d_ok then "ok" else "MISMATCH"))
    rows;
  (* Monotonicity is the point of the table: latency must not decrease with
     the timeout, and once a timeout is too long for the pause to trigger,
     every longer one must be quiet too. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.d_detect_us <= b.d_detect_us
        && (a.d_false_depose || not b.d_false_depose)
        && monotone rest
    | _ -> true
  in
  let ok = List.for_all (fun r -> r.d_ok) rows && monotone rows in
  Format.fprintf ppf "@.%d timeout(s)%s@." (List.length rows)
    (if monotone rows then "" else ", NON-MONOTONE detection latency");
  ok
