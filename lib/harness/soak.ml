(* Differential soundness under fault injection.

   The property: chaos (drops, duplicates, jitter, stragglers) may change
   timing and traffic, but never the computed result. For every protocol x
   application cell we run once fault-free and once per fault seed, and
   require (a) the application's own verification against its sequential
   reference to pass, and (b) the final shared-memory digest
   ({!Svm.Runtime.report.r_mem_digest}) to be bit-identical to the
   fault-free run's. Any divergence is a lost or misordered update that
   slipped past the transport's reliability layer. *)

type row = {
  s_app : string;
  s_proto : Svm.Config.protocol;
  s_fault_seed : int;
  s_ok : bool;
  s_digest : int64;
  s_expected : int64;
  s_slowdown : float;  (** elapsed(chaos) / elapsed(fault-free) *)
  s_drops : int;
  s_retransmits : int;
}

let default_params ~fault_seed =
  {
    Machine.Chaos.drop_rate = 0.02;
    dup_rate = 0.01;
    jitter = 5.0;
    straggler = 1.25;
    fault_seed;
  }

let protocols =
  List.filter_map Svm.Config.protocol_of_string Svm.Config.protocol_strings

let sum_counter (r : Svm.Runtime.report) f =
  Array.fold_left (fun acc n -> acc + f n.Svm.Runtime.nr_counters) 0 r.Svm.Runtime.r_nodes

let run_one ~nprocs ~chaos proto (app : Apps.Registry.t) =
  let cfg = Svm.Config.make ~nprocs ~chaos proto in
  Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true)

(* The sweep is embarrassingly parallel at (protocol x application)
   granularity: one task runs the fault-free twin plus every fault seed of
   its cell (the seeds need the twin's digest), and tasks are enumerated in
   the sequential nesting order so the concatenated rows — and therefore
   the report — are identical for any pool width. *)
let sweep ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 4)
    ?(fault_seeds = [ 1; 2; 3 ]) ?params () =
  let params = match params with Some p -> p | None -> default_params ~fault_seed:0 in
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      protocols
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      let clean = run_one ~nprocs ~chaos:Machine.Chaos.none proto app in
      let expected = clean.Svm.Runtime.r_mem_digest in
      List.map
        (fun fault_seed ->
          let chaos = { params with Machine.Chaos.fault_seed } in
          let r = run_one ~nprocs ~chaos proto app in
          {
            s_app = app.Apps.Registry.name;
            s_proto = proto;
            s_fault_seed = fault_seed;
            s_ok = Int64.equal r.Svm.Runtime.r_mem_digest expected;
            s_digest = r.Svm.Runtime.r_mem_digest;
            s_expected = expected;
            s_slowdown = r.Svm.Runtime.r_elapsed /. clean.Svm.Runtime.r_elapsed;
            s_drops = sum_counter r (fun c -> c.Svm.Stats.msg_drops);
            s_retransmits = sum_counter r (fun c -> c.Svm.Stats.msg_retransmits);
          })
        fault_seeds)
    tasks
  |> List.concat

let report ppf ?pool ?scale ?nprocs ?fault_seeds ?params () =
  let rows = sweep ?pool ?scale ?nprocs ?fault_seeds ?params () in
  Format.fprintf ppf "@.=== Chaos soak: differential soundness ===@.@.";
  Format.fprintf ppf "%-10s %-6s %5s  %8s %8s %9s  %s@." "app" "proto" "seed" "drops"
    "rexmits" "slowdown" "digest";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %5d  %8d %8d %8.2fx  %016Lx %s@." r.s_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.s_proto))
        r.s_fault_seed r.s_drops r.s_retransmits r.s_slowdown r.s_digest
        (if r.s_ok then "ok" else Printf.sprintf "MISMATCH (expected %016Lx)" r.s_expected))
    rows;
  let bad = List.filter (fun r -> not r.s_ok) rows in
  Format.fprintf ppf "@.%d cell(s), %d divergence(s)@." (List.length rows) (List.length bad);
  bad = []
