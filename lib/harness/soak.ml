(* Differential soundness under fault injection.

   The property: chaos (drops, duplicates, jitter, stragglers) may change
   timing and traffic, but never the computed result. For every protocol x
   application cell we run once fault-free and once per fault seed, and
   require (a) the application's own verification against its sequential
   reference to pass, and (b) the final shared-memory digest
   ({!Svm.Runtime.report.r_mem_digest}) to be bit-identical to the
   fault-free run's. Any divergence is a lost or misordered update that
   slipped past the transport's reliability layer. *)

type row = {
  s_app : string;
  s_proto : Svm.Config.protocol;
  s_fault_seed : int;
  s_ok : bool;
  s_digest : int64;
  s_expected : int64;
  s_slowdown : float;  (** elapsed(chaos) / elapsed(fault-free) *)
  s_drops : int;
  s_retransmits : int;
}

let default_params ~fault_seed =
  {
    Machine.Chaos.none with
    Machine.Chaos.drop_rate = 0.02;
    dup_rate = 0.01;
    jitter = 5.0;
    straggler = 1.25;
    fault_seed;
  }

let protocols =
  List.filter_map Svm.Config.protocol_of_string Svm.Config.protocol_strings

let sum_counter (r : Svm.Runtime.report) f =
  Array.fold_left (fun acc n -> acc + f n.Svm.Runtime.nr_counters) 0 r.Svm.Runtime.r_nodes

let run_one ~nprocs ~chaos proto (app : Apps.Registry.t) =
  let cfg = Svm.Config.make ~nprocs ~chaos proto in
  Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true)

(* The sweep is embarrassingly parallel at (protocol x application)
   granularity: one task runs the fault-free twin plus every fault seed of
   its cell (the seeds need the twin's digest), and tasks are enumerated in
   the sequential nesting order so the concatenated rows — and therefore
   the report — are identical for any pool width. *)
let sweep ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 4)
    ?(fault_seeds = [ 1; 2; 3 ]) ?params () =
  let params = match params with Some p -> p | None -> default_params ~fault_seed:0 in
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      protocols
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      let clean = run_one ~nprocs ~chaos:Machine.Chaos.none proto app in
      let expected = clean.Svm.Runtime.r_mem_digest in
      List.map
        (fun fault_seed ->
          let chaos = { params with Machine.Chaos.fault_seed } in
          let r = run_one ~nprocs ~chaos proto app in
          {
            s_app = app.Apps.Registry.name;
            s_proto = proto;
            s_fault_seed = fault_seed;
            s_ok = Int64.equal r.Svm.Runtime.r_mem_digest expected;
            s_digest = r.Svm.Runtime.r_mem_digest;
            s_expected = expected;
            s_slowdown = r.Svm.Runtime.r_elapsed /. clean.Svm.Runtime.r_elapsed;
            s_drops = sum_counter r (fun c -> c.Svm.Stats.msg_drops);
            s_retransmits = sum_counter r (fun c -> c.Svm.Stats.msg_retransmits);
          })
        fault_seeds)
    tasks
  |> List.concat

let report ppf ?pool ?scale ?nprocs ?fault_seeds ?params () =
  let rows = sweep ?pool ?scale ?nprocs ?fault_seeds ?params () in
  Format.fprintf ppf "@.=== Chaos soak: differential soundness ===@.@.";
  Format.fprintf ppf "%-10s %-6s %5s  %8s %8s %9s  %s@." "app" "proto" "seed" "drops"
    "rexmits" "slowdown" "digest";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %5d  %8d %8d %8.2fx  %016Lx %s@." r.s_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.s_proto))
        r.s_fault_seed r.s_drops r.s_retransmits r.s_slowdown r.s_digest
        (if r.s_ok then "ok" else Printf.sprintf "MISMATCH (expected %016Lx)" r.s_expected))
    rows;
  let bad = List.filter (fun r -> not r.s_ok) rows in
  Format.fprintf ppf "@.%d cell(s), %d divergence(s)@." (List.length rows) (List.length bad);
  bad = []

(* ------------------------------------------------------------------ *)
(* Node-kill differential sweep                                       *)

(* The property extends to crash-stops: with a replica degree >= 2, killing
   a node after its last synchronization arrival (its committed history is
   complete; only its cached copies die with it) must leave the final
   shared-memory digest identical to the fault-free twin's — the failover
   rebuilt every page the victim was hosting. *)

type kill_row = {
  k_app : string;
  k_proto : Svm.Config.protocol;
  k_scheme : Svm.Config.repl_scheme;
  k_replicas : int;
  k_kill_at : float;
  k_ok : bool;
  k_digest : int64;
  k_expected : int64;
  k_failovers : int;
  k_stall_p99 : float;
}

(* Eager protocols push updates at write time and have no replica machinery
   (Config rejects --replicas > 1 for them). *)
let replicable =
  List.filter (fun p -> p <> Svm.Config.Aurc && p <> Svm.Config.Rc) protocols

let stall_p99 (r : Svm.Runtime.report) =
  match r.Svm.Runtime.r_failover_stalls with
  | [] -> 0.
  | stalls ->
      let a = Array.of_list stalls (* sorted ascending *) in
      let n = Array.length a in
      a.(min (n - 1) (max 0 (int_of_float (ceil (0.99 *. float_of_int n)) - 1)))

(* Place the kill in the victim's synchronization tail: after its last
   barrier arrival in the fault-free twin (watched through a trace sink),
   before the run's end. Anything earlier loses computation no protocol
   without logging can recover (crash-stop semantics), and the app's own
   verification would rightly fail. *)
let run_killed ~nprocs ~replicas ~scheme proto (app : Apps.Registry.t) =
  let sink = Obs.Trace.create_sink () in
  let cfg = Svm.Config.make ~nprocs ~replicas ~repl_scheme:scheme proto in
  let clean = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
  let victim = nprocs - 1 in
  let last = ref 0. in
  Obs.Trace.iter sink (fun ev ->
      if ev.Obs.Trace.node = victim then
        match ev.Obs.Trace.kind with
        | Obs.Trace.Barrier_arrive _ -> last := ev.Obs.Trace.time
        | _ -> ());
  let kill_at = !last +. (0.5 *. (clean.Svm.Runtime.r_elapsed -. !last)) in
  let chaos =
    { Machine.Chaos.none with Machine.Chaos.kill = Some (victim, kill_at) }
  in
  let cfg = Svm.Config.make ~nprocs ~replicas ~repl_scheme:scheme ~chaos proto in
  let killed = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  (clean, killed, kill_at)

let kill_sweep ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 4)
    ?(replicas = 2) () =
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      replicable
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      List.map
        (fun scheme ->
          let clean, killed, kill_at = run_killed ~nprocs ~replicas ~scheme proto app in
          let expected = clean.Svm.Runtime.r_mem_digest in
          {
            k_app = app.Apps.Registry.name;
            k_proto = proto;
            k_scheme = scheme;
            k_replicas = replicas;
            k_kill_at = kill_at;
            k_ok = Int64.equal killed.Svm.Runtime.r_mem_digest expected;
            k_digest = killed.Svm.Runtime.r_mem_digest;
            k_expected = expected;
            k_failovers = sum_counter killed (fun c -> c.Svm.Stats.failovers);
            k_stall_p99 = stall_p99 killed;
          })
        [ Svm.Config.Inval; Svm.Config.Backup ])
    tasks
  |> List.concat

let kill_report ppf ?pool ?scale ?nprocs ?replicas () =
  let rows = kill_sweep ?pool ?scale ?nprocs ?replicas () in
  Format.fprintf ppf "@.=== Kill soak: failover differential soundness ===@.@.";
  Format.fprintf ppf "%-10s %-6s %-7s %2s %10s %9s %9s  %s@." "app" "proto" "scheme" "K"
    "kill_at" "failovers" "p99stall" "digest";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %-7s %2d %10.0f %9d %8.0fu  %016Lx %s@." r.k_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.k_proto))
        (Svm.Config.repl_scheme_name r.k_scheme)
        r.k_replicas r.k_kill_at r.k_failovers r.k_stall_p99 r.k_digest
        (if r.k_ok then "ok" else Printf.sprintf "MISMATCH (expected %016Lx)" r.k_expected))
    rows;
  let bad = List.filter (fun r -> not r.k_ok) rows in
  Format.fprintf ppf "@.%d cell(s), %d divergence(s)@." (List.length rows) (List.length bad);
  bad = []

(* ------------------------------------------------------------------ *)
(* Availability cost                                                  *)

(* What replication costs when nothing fails (extra traffic, slowdown vs
   K = 1) and what a failure costs when it happens (recovery stalls), per
   protocol x application x degree x scheme. *)

type avail_row = {
  a_app : string;
  a_proto : Svm.Config.protocol;
  a_replicas : int;
  a_scheme : Svm.Config.repl_scheme option;  (** [None] at K = 1 (no replication). *)
  a_repl_msgs : int;  (** Replication updates + invalidations, fault-free run. *)
  a_repl_bytes : int;
  a_overhead : float;  (** elapsed(K, scheme) / elapsed(K = 1), fault-free. *)
  a_failovers : int;  (** From the killed run; 0 at K = 1 (no kill attempted). *)
  a_stall_mean : float;
  a_stall_p99 : float;
  a_ok : bool;  (** Killed-run digest matches fault-free; vacuously true at K = 1. *)
}

let availability ?(pool = Pool.sequential) ?(scale = Apps.Registry.Test) ?(nprocs = 4)
    ?(degrees = [ 2; 3 ]) () =
  let apps =
    List.filter_map (fun name -> Apps.Registry.find name scale) Apps.Registry.names
  in
  let tasks =
    List.concat_map
      (fun proto -> List.map (fun (app : Apps.Registry.t) -> (proto, app)) apps)
      replicable
  in
  Pool.map pool
    (fun (proto, (app : Apps.Registry.t)) ->
      let base = run_one ~nprocs ~chaos:Machine.Chaos.none proto app in
      let base_row =
        {
          a_app = app.Apps.Registry.name;
          a_proto = proto;
          a_replicas = 1;
          a_scheme = None;
          a_repl_msgs = 0;
          a_repl_bytes = 0;
          a_overhead = 1.;
          a_failovers = 0;
          a_stall_mean = 0.;
          a_stall_p99 = 0.;
          a_ok = true;
        }
      in
      base_row
      :: List.concat_map
           (fun replicas ->
             List.map
               (fun scheme ->
                 let clean, killed, _ = run_killed ~nprocs ~replicas ~scheme proto app in
                 let stalls = killed.Svm.Runtime.r_failover_stalls in
                 let n = List.length stalls in
                 {
                   a_app = app.Apps.Registry.name;
                   a_proto = proto;
                   a_replicas = replicas;
                   a_scheme = Some scheme;
                   a_repl_msgs =
                     sum_counter clean (fun c -> c.Svm.Stats.repl_updates)
                     + sum_counter clean (fun c -> c.Svm.Stats.repl_invals);
                   a_repl_bytes = sum_counter clean (fun c -> c.Svm.Stats.repl_bytes);
                   a_overhead =
                     clean.Svm.Runtime.r_elapsed /. base.Svm.Runtime.r_elapsed;
                   a_failovers = sum_counter killed (fun c -> c.Svm.Stats.failovers);
                   a_stall_mean =
                     (if n = 0 then 0.
                      else List.fold_left ( +. ) 0. stalls /. float_of_int n);
                   a_stall_p99 = stall_p99 killed;
                   a_ok =
                     Int64.equal killed.Svm.Runtime.r_mem_digest
                       clean.Svm.Runtime.r_mem_digest;
                 })
               [ Svm.Config.Inval; Svm.Config.Backup ])
           degrees)
    tasks
  |> List.concat

let availability_report ppf ?pool ?scale ?nprocs ?degrees () =
  let rows = availability ?pool ?scale ?nprocs ?degrees () in
  Format.fprintf ppf "@.=== Availability cost: replication traffic and recovery stalls ===@.@.";
  Format.fprintf ppf "%-10s %-6s %2s %-7s %9s %10s %9s %9s %10s %10s@." "app" "proto" "K"
    "scheme" "repl_msgs" "repl_bytes" "overhead" "failovers" "stall_mean" "stall_p99";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-6s %2d %-7s %9d %10d %8.3fx %9d %9.0fu %9.0fu%s@." r.a_app
        (String.lowercase_ascii (Svm.Config.protocol_name r.a_proto))
        r.a_replicas
        (match r.a_scheme with None -> "-" | Some s -> Svm.Config.repl_scheme_name s)
        r.a_repl_msgs r.a_repl_bytes r.a_overhead r.a_failovers r.a_stall_mean r.a_stall_p99
        (if r.a_ok then "" else "  DIGEST MISMATCH"))
    rows;
  let bad = List.filter (fun r -> not r.a_ok) rows in
  Format.fprintf ppf "@.%d cell(s), %d divergence(s)@." (List.length rows) (List.length bad);
  bad = []
