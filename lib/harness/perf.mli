(** Host-side raw-speed microbenchmark: events/sec, minor words allocated
    per event, and wall clock for fixed Bench-scale cells. The allocation
    rate is deterministic for a fixed build, so the CI perf gate compares
    it exactly; wall clock gets a generous noise threshold. *)

type cell = {
  c_app : string;  (** Registry name, e.g. ["lu"]. *)
  c_proto : Svm.Config.protocol;
  c_nodes : int;
}

type result = {
  r_cell : cell;
  r_events : int;  (** Simulation events executed (workload size). *)
  r_wall_s : float;  (** Host wall-clock seconds for the measured run. *)
  r_minor_words_per_event : float;
  r_events_per_sec : float;
}

(** [lu/hlrc/16] and [sor/lrc/16] at Bench scale. *)
val default_cells : cell list

val cell_name : cell -> string

(** Run the cell once to warm up, then measure a second run. *)
val run_cell : cell -> result

val run_all : ?cells:cell list -> unit -> result list

val pp_table : Format.formatter -> result list -> unit

val to_json : result list -> Obs.Json.t
