(** Per-cell critical-path composition table (the [profile] bench
    artifact).

    Each (application x protocol x node count) cell is one profiled run
    with its own causal-trace sink ({!Svm.Config.trace_spans} on):
    a critical path is a property of a single run, so cells cannot share
    the memoized matrix sink. The table shows the exact on-path blame
    split (local / data / lock / barrier / gc, as % of the finish time),
    the top-blamed page and lock, and the straggler node of the
    widest-spread barrier epoch — Figure 3's story told by what actually
    bounded the run rather than by per-node averages. *)

(** Run one profiled cell: the report, its critical-path analysis, and the
    trace sink (for export or occupancy checks). *)
val cell :
  verify:bool ->
  chaos:Machine.Chaos.params ->
  trace_cap:int ->
  Apps.Registry.t ->
  Svm.Config.protocol ->
  int ->
  Svm.Runtime.report * Obs.Critical_path.t * Obs.Trace.sink

(** Print the composition table for [protocols] (default: the paper's
    four) over every registered application at [scale] and each node count.
    Cells are independent profiled runs and are evaluated through [pool]
    (default {!Pool.sequential}); the table renders only after every cell
    has finished, so the bytes are identical for any pool width. *)
val report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?verify:bool ->
  ?chaos:Machine.Chaos.params ->
  ?trace_cap:int ->
  ?protocols:Svm.Config.protocol list ->
  scale:Apps.Registry.scale ->
  node_counts:int list ->
  unit ->
  unit
