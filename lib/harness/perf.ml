(* Raw-speed microbenchmark: how fast does the simulator itself run?

   Everything else in the harness measures *simulated* time; this measures
   *host* time and allocation for a fixed, deterministic workload. Each
   cell runs one protocol x application x node-count configuration at
   Bench scale and reports

   - events/sec: simulation events executed per host wall-clock second;
   - minor words/event: minor-heap words allocated per event (the
     allocation gate — deterministic for a fixed build, so CI compares it
     exactly, unlike wall clock);
   - wall seconds.

   The events-executed count is itself part of the byte-identity contract
   (it appears in the report), so events/sec moves only when the host-side
   implementation gets faster or slower, never because the workload
   changed silently. [run_cell] runs the cell once unmeasured to warm the
   minor heap sizing and code paths, then measures a second run. *)

type cell = {
  c_app : string;
  c_proto : Svm.Config.protocol;
  c_nodes : int;
}

type result = {
  r_cell : cell;
  r_events : int;
  r_wall_s : float;
  r_minor_words_per_event : float;
  r_events_per_sec : float;
}

(* One home-based and one homeless cell, per the acceptance bar ("at least
   one LU or SOR cell"): SOR/LRC is allocation-heavy (diff traffic),
   LU/HLRC is fault/message-heavy. *)
let default_cells =
  [
    { c_app = "lu"; c_proto = Svm.Config.Hlrc; c_nodes = 16 };
    { c_app = "sor"; c_proto = Svm.Config.Lrc; c_nodes = 16 };
  ]

let cell_name c =
  Printf.sprintf "%s/%s/%d" c.c_app
    (String.lowercase_ascii (Svm.Config.protocol_name c.c_proto))
    c.c_nodes

let run_once c =
  let app =
    match Apps.Registry.find c.c_app Apps.Registry.Bench with
    | Some app -> app
    | None -> invalid_arg (Printf.sprintf "Perf.run_cell: unknown app %S" c.c_app)
  in
  let cfg = Svm.Config.make ~nprocs:c.c_nodes c.c_proto in
  Svm.Runtime.run cfg (app.body ~verify:false)

let run_cell c =
  ignore (run_once c);
  (* [Svm.Gc] is the simulator's diff collector; the allocation counter is
     the real one. *)
  let minor0 = Stdlib.Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let report = run_once c in
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Stdlib.Gc.minor_words () -. minor0 in
  let events = report.Svm.Runtime.r_events in
  {
    r_cell = c;
    r_events = events;
    r_wall_s = wall;
    r_minor_words_per_event = minor /. float_of_int events;
    r_events_per_sec = float_of_int events /. wall;
  }

let run_all ?(cells = default_cells) () = List.map run_cell cells

let pp_table ppf results =
  Format.fprintf ppf "%-14s %10s %12s %14s %10s@." "cell" "events" "events/s"
    "minor w/event" "wall s";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %10d %12.0f %14.1f %10.3f@." (cell_name r.r_cell)
        r.r_events r.r_events_per_sec r.r_minor_words_per_event r.r_wall_s)
    results

let result_json r =
  Obs.Json.Obj
    [
      ("app", Obs.Json.String r.r_cell.c_app);
      ( "protocol",
        Obs.Json.String
          (String.lowercase_ascii (Svm.Config.protocol_name r.r_cell.c_proto)) );
      ("nodes", Obs.Json.Int r.r_cell.c_nodes);
      ("events", Obs.Json.Int r.r_events);
      ("minor_words_per_event", Obs.Json.Float r.r_minor_words_per_event);
      ("events_per_sec", Obs.Json.Float r.r_events_per_sec);
      ("wall_s", Obs.Json.Float r.r_wall_s);
    ]

let to_json results =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 1);
      ("cells", Obs.Json.List (List.map result_json results));
    ]
