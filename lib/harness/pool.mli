(** Bounded domain pool for embarrassingly parallel harness work.

    The bench grid is (application x protocol x node count) and every cell
    is a self-contained simulation — one {!Svm.System.create}, its own RNG,
    its own trace sink — so independent cells can run on separate OCaml 5
    domains. The pool bounds how many run at once ([--jobs N] on the bench
    CLI); {!map} hands results back in input order so every consumer stays
    deterministic regardless of completion order. *)

type t

(** [Domain.recommended_domain_count () - 1], never below 1: leave one
    hardware thread for the driving domain. *)
val default_jobs : unit -> int

(** [create ~jobs] builds a pool running at most [jobs] tasks at once.
    [jobs = 1] degenerates to plain sequential [List.map] in the calling
    domain — byte-for-byte today's single-core behavior.
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> t

(** The sequential pool, [create ~jobs:1]. *)
val sequential : t

val jobs : t -> int

(** [map pool f xs] applies [f] to every element of [xs], running up to
    [jobs pool] applications concurrently (the calling domain participates;
    at most [jobs - 1] domains are spawned). Results come back in input
    order. If any application raises, the exception of the lowest-index
    failing element is re-raised (with its backtrace) after all tasks have
    finished — deterministic error reporting regardless of scheduling. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list
