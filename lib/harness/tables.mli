(** Text renderings of the paper's tables and figures (the per-experiment
    index in DESIGN.md maps each to its paper artifact). All print to the
    given formatter from a shared run {!Matrix.t}. *)

(** Table 1: benchmarks, problem sizes, sequential execution times. *)
val table1 : Format.formatter -> Matrix.t -> unit

(** Table 2: speedups for the four protocols at each machine size. *)
val table2 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Table 3: basic operation costs plus the derived §4.3 arithmetic
    (no simulations needed). *)
val table3 : Format.formatter -> unit

(** Table 4: average per-node operation counts, LRC vs HLRC. *)
val table4 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Table 5: communication traffic, LRC vs HLRC. *)
val table5 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Table 6: peak protocol memory vs application memory, LRC vs HLRC. *)
val table6 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Figure 3: mean per-node execution-time breakdowns. *)
val figure3 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Figure 4: per-processor breakdowns for one Water-Nsquared barrier epoch
    under LRC and HLRC. [epoch] selects the paper's index when available;
    otherwise the dominant epoch is used. *)
val figure4 : Format.formatter -> Matrix.t -> node_counts:int list -> epoch:int -> unit

(** §4.8: SOR with a zero interior, the most LRC-favourable workload. *)
val sor_zero : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** {1 Cell enumerators}

    For each artifact, the (app, protocol, node count) cells its renderer
    will {!Matrix.get}, in first-use order — feed these to
    {!Matrix.prefetch} to evaluate a table's grid on a domain pool before
    rendering it. Duplicates are fine (prefetch dedupes). *)

type cell = Apps.Registry.t * Svm.Config.protocol * int

val table1_cells : Matrix.t -> cell list

val table2_cells : Matrix.t -> node_counts:int list -> cell list

val table4_cells : Matrix.t -> node_counts:int list -> cell list

val table5_cells : Matrix.t -> node_counts:int list -> cell list

val table6_cells : Matrix.t -> node_counts:int list -> cell list

val figure3_cells : Matrix.t -> node_counts:int list -> cell list

val figure4_cells : Matrix.t -> node_counts:int list -> cell list

val sor_zero_cells : Matrix.t -> node_counts:int list -> cell list
