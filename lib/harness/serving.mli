(** The [kvstore-skew] bench artifact: a protocol x Zipfian-skew x write-mix
    sweep of the sharded KV-store serving workload.

    Every cell replays the same open-loop plan (same op count, offered rate
    and seed), so throughput and latency percentiles are directly comparable
    across cells; only the key-popularity skew ([theta]) and write mix vary.
    Cells run with verification off so the reference replay's page reads do
    not land inside the timing window. *)

type row = {
  sv_proto : Svm.Config.protocol;
  sv_theta : float;
  sv_write_ratio : float;
  sv_ops : int;
  sv_throughput : float;  (** completed operations per simulated second *)
  sv_p50_us : float;
  sv_p99_us : float;
  sv_max_us : float;
}

val default_thetas : float list

val default_write_ratios : float list

(** [sweep ()] evaluates every (protocol, theta, write ratio) cell and
    returns the rows in protocol-major enumeration order. [params] overrides
    the scale-default kvstore parameters (theta and write ratio are then
    patched per cell). Results are byte-identical for any [pool] width. *)
val sweep :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?thetas:float list ->
  ?write_ratios:float list ->
  ?params:Apps.Kvstore.params ->
  unit ->
  row list

(** [report ppf ()] runs {!sweep} and renders the table. *)
val report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?thetas:float list ->
  ?write_ratios:float list ->
  ?params:Apps.Kvstore.params ->
  unit ->
  unit
