(** Differential soundness under fault injection.

    Chaos may change timing and traffic, never results: every
    protocol x application cell is run fault-free and once per fault seed
    (each run also self-verifies against its sequential reference), and the
    final shared-memory digests must be bit-identical. *)

type row = {
  s_app : string;
  s_proto : Svm.Config.protocol;
  s_fault_seed : int;
  s_ok : bool;  (** digest matches the fault-free run *)
  s_digest : int64;
  s_expected : int64;
  s_slowdown : float;  (** elapsed(chaos) / elapsed(fault-free) *)
  s_drops : int;
  s_retransmits : int;
}

(** The fault plan used when [?params] is omitted: 2% drops, 1% duplicates,
    5 us jitter, 1.25x straggler cap. *)
val default_params : fault_seed:int -> Machine.Chaos.params

(** Every protocol x registered application (at [scale], default [Test])
    x fault seed (default [[1; 2; 3]]), on [nprocs] nodes (default 4).
    [params.fault_seed] is overridden per row. The (protocol x application)
    cells are independent simulations and run through [pool] (default
    {!Pool.sequential}); rows come back in the sequential nesting order
    regardless of pool width. *)
val sweep :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?fault_seeds:int list ->
  ?params:Machine.Chaos.params ->
  unit ->
  row list

(** Run {!sweep}, print one line per row plus a summary, and return whether
    every cell matched. *)
val report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?fault_seeds:int list ->
  ?params:Machine.Chaos.params ->
  unit ->
  bool
