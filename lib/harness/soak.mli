(** Differential soundness under fault injection.

    Chaos may change timing and traffic, never results: every
    protocol x application cell is run fault-free and once per fault seed
    (each run also self-verifies against its sequential reference), and the
    final shared-memory digests must be bit-identical. *)

type row = {
  s_app : string;
  s_proto : Svm.Config.protocol;
  s_fault_seed : int;
  s_ok : bool;  (** digest matches the fault-free run *)
  s_digest : int64;
  s_expected : int64;
  s_slowdown : float;  (** elapsed(chaos) / elapsed(fault-free) *)
  s_drops : int;
  s_retransmits : int;
}

(** The fault plan used when [?params] is omitted: 2% drops, 1% duplicates,
    5 us jitter, 1.25x straggler cap. *)
val default_params : fault_seed:int -> Machine.Chaos.params

(** Every protocol x registered application (at [scale], default [Test])
    x fault seed (default [[1; 2; 3]]), on [nprocs] nodes (default 4).
    [params.fault_seed] is overridden per row. The (protocol x application)
    cells are independent simulations and run through [pool] (default
    {!Pool.sequential}); rows come back in the sequential nesting order
    regardless of pool width. *)
val sweep :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?fault_seeds:int list ->
  ?params:Machine.Chaos.params ->
  unit ->
  row list

(** Run {!sweep}, print one line per row plus a summary, and return whether
    every cell matched. *)
val report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?fault_seeds:int list ->
  ?params:Machine.Chaos.params ->
  unit ->
  bool

(** {1 Node-kill differential sweep}

    Crash-stop a node mid-run with a replica degree >= 2 and require the
    final shared-memory digest to match the fault-free twin's: the failover
    must have rebuilt every page the victim hosted. The kill lands in the
    victim's synchronization tail (after its last barrier arrival in the
    fault-free twin) — earlier kills lose committed-but-unreplicated work
    that crash-stop semantics cannot recover. *)

type kill_row = {
  k_app : string;
  k_proto : Svm.Config.protocol;
  k_scheme : Svm.Config.repl_scheme;
  k_replicas : int;
  k_kill_at : float;  (** Derived kill time, microseconds. *)
  k_ok : bool;  (** digest matches the fault-free twin *)
  k_digest : int64;
  k_expected : int64;
  k_failovers : int;
  k_stall_p99 : float;  (** p99 recovery stall of re-routed fetches, us. *)
}

(** Every replicable protocol (eager AURC / RC excluded) x registered
    application x scheme ([Inval] and [Backup]), killing node
    [nprocs - 1] with [replicas] (default 2) copies per page. *)
val kill_sweep :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  unit ->
  kill_row list

(** Run {!kill_sweep}, print one line per row plus a summary, and return
    whether every cell matched. *)
val kill_report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  unit ->
  bool

(** {1 Availability cost}

    The price of surviving a home failure: fault-free replication traffic
    and slowdown versus an unreplicated run, and the recovery stalls a
    kill actually causes, per protocol x application x degree x scheme. *)

type avail_row = {
  a_app : string;
  a_proto : Svm.Config.protocol;
  a_replicas : int;
  a_scheme : Svm.Config.repl_scheme option;  (** [None] at K = 1. *)
  a_repl_msgs : int;  (** Replication updates + invals, fault-free run. *)
  a_repl_bytes : int;
  a_overhead : float;  (** elapsed(K, scheme) / elapsed(K = 1), fault-free. *)
  a_failovers : int;  (** From the killed run; 0 at K = 1. *)
  a_stall_mean : float;
  a_stall_p99 : float;
  a_ok : bool;  (** Killed-run digest matches; vacuously true at K = 1. *)
}

(** Replicable protocols x applications x degrees (default [[2; 3]], plus
    the K = 1 baseline row) x schemes; each K >= 2 cell also runs a tail
    kill to measure recovery. *)
val availability :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?degrees:int list ->
  unit ->
  avail_row list

(** Run {!availability}, print the table, and return whether every killed
    cell's digest matched its fault-free twin. *)
val availability_report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?degrees:int list ->
  unit ->
  bool
