(** Differential soundness under fault injection.

    Chaos may change timing and traffic, never results: every
    protocol x application cell is run fault-free and once per fault seed
    (each run also self-verifies against its sequential reference), and the
    final shared-memory digests must be bit-identical. *)

type row = {
  s_app : string;
  s_proto : Svm.Config.protocol;
  s_fault_seed : int;
  s_ok : bool;  (** digest matches the fault-free run *)
  s_digest : int64;
  s_expected : int64;
  s_slowdown : float;  (** elapsed(chaos) / elapsed(fault-free) *)
  s_drops : int;
  s_retransmits : int;
}

(** The fault plan used when [?params] is omitted: 2% drops, 1% duplicates,
    5 us jitter, 1.25x straggler cap. *)
val default_params : fault_seed:int -> Machine.Chaos.params

(** Every protocol x registered application (at [scale], default [Test])
    x fault seed (default [[1; 2; 3]]), on [nprocs] nodes (default 4).
    [params.fault_seed] is overridden per row. The (protocol x application)
    cells are independent simulations and run through [pool] (default
    {!Pool.sequential}); rows come back in the sequential nesting order
    regardless of pool width. *)
val sweep :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?fault_seeds:int list ->
  ?params:Machine.Chaos.params ->
  unit ->
  row list

(** Run {!sweep}, print one line per row plus a summary, and return whether
    every cell matched. *)
val report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?fault_seeds:int list ->
  ?params:Machine.Chaos.params ->
  unit ->
  bool

(** {1 Node-kill differential sweep}

    Crash-stop a node mid-run with a replica degree >= 2 and require the
    final shared-memory digest to match the fault-free twin's: the failover
    must have rebuilt every page the victim hosted. The kill lands in the
    victim's synchronization tail (after its last barrier arrival in the
    fault-free twin) — earlier kills lose committed-but-unreplicated work
    that crash-stop semantics cannot recover. *)

type kill_row = {
  k_app : string;
  k_proto : Svm.Config.protocol;
  k_scheme : Svm.Config.repl_scheme;
  k_replicas : int;
  k_kill_at : float;  (** Derived kill time, microseconds. *)
  k_ok : bool;  (** digest matches the fault-free twin *)
  k_digest : int64;
  k_expected : int64;
  k_failovers : int;
  k_stall_p99 : float;  (** p99 recovery stall of re-routed fetches, us. *)
}

(** Every replicable protocol (eager AURC / RC excluded) x registered
    application x scheme ([Inval] and [Backup]), killing node
    [nprocs - 1] with [replicas] (default 2) copies per page. *)
val kill_sweep :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  unit ->
  kill_row list

(** Run {!kill_sweep}, print one line per row plus a summary, and return
    whether every cell matched. *)
val kill_report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  unit ->
  bool

(** {1 Availability cost}

    The price of surviving a home failure: fault-free replication traffic
    and slowdown versus an unreplicated run, and the recovery stalls a
    kill actually causes, per protocol x application x degree x scheme. *)

type avail_row = {
  a_app : string;
  a_proto : Svm.Config.protocol;
  a_replicas : int;
  a_scheme : Svm.Config.repl_scheme option;  (** [None] at K = 1. *)
  a_repl_msgs : int;  (** Replication updates + invals, fault-free run. *)
  a_repl_bytes : int;
  a_overhead : float;  (** elapsed(K, scheme) / elapsed(K = 1), fault-free. *)
  a_failovers : int;  (** From the killed run; 0 at K = 1. *)
  a_stall_mean : float;
  a_stall_p99 : float;
  a_ok : bool;  (** Killed-run digest matches; vacuously true at K = 1. *)
}

(** Replicable protocols x applications x degrees (default [[2; 3]], plus
    the K = 1 baseline row) x schemes; each K >= 2 cell also runs a tail
    kill to measure recovery. *)
val availability :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?degrees:int list ->
  unit ->
  avail_row list

(** Run {!availability}, print the table, and return whether every killed
    cell's digest matched its fault-free twin. *)
val availability_report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?degrees:int list ->
  unit ->
  bool

(** {1 Partition differential sweep}

    A network partition that heals before the run ends may stall progress
    and — under the heartbeat detector — falsely depose the minority side,
    but must never change the computed result. Every replicable protocol
    x application x cut placement runs under both detectors and its digest
    is compared against a fault-free twin. *)

type part_row = {
  p_app : string;
  p_proto : Svm.Config.protocol;
  p_group : int list;  (** the side cut off from the rest *)
  p_detector : Svm.Config.detector;
  p_ok : bool;  (** digest matches the fault-free twin *)
  p_digest : int64;
  p_expected : int64;
  p_suspicions : int;
  p_refutations : int;
  p_deposes : int;
  p_rejoins : int;
  p_fenced : int;  (** stale-authority serves refused by the epoch fence *)
}

(** Cut placements exercised when [?groups] is omitted: the lone last node
    (a strict majority exists and deposes it under the heartbeat detector)
    and the upper half (an even split — nobody can be deposed). *)
val partition_sweep :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  ?groups:int list list ->
  unit ->
  part_row list

(** Run {!partition_sweep}, print the table, and return whether every cell
    matched its twin and no detector-impossible outcome occurred (an oracle
    cell that suspected anyone, or a depose without a strict majority). *)
val partition_report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  ?groups:int list list ->
  unit ->
  bool

(** {1 False-suspicion soak}

    Pause the last node past the suspicion timeout so the quorum wrongly
    deposes it (a gray failure — the node is alive), resume it, and require
    the digest to match the fault-free twin with the victim deposed,
    rejoined, and demonstrably active after the heal. *)

type suspicion_row = {
  f_app : string;
  f_proto : Svm.Config.protocol;
  f_scheme : Svm.Config.repl_scheme;
  f_ok : bool;  (** digest matches the fault-free twin *)
  f_digest : int64;
  f_expected : int64;
  f_deposed : bool;
  f_rejoined : bool;
  f_active_after : bool;  (** the victim fetched or synchronized post-rejoin *)
  f_detect_us : float;  (** first suspicion of the victim minus pause start *)
}

val false_suspicion_sweep :
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  unit ->
  suspicion_row list

(** Run {!false_suspicion_sweep}, print the table, and return whether every
    cell matched, deposed, rejoined, and stayed active post-heal. *)
val false_suspicion_report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  unit ->
  bool

(** {1 Detector characterization}

    The failure-detector trade-off, measured on LU: per suspicion timeout,
    the quorum's detection latency for a real kill and whether a fixed
    gray-failure pause was falsely deposed. Detection latency must grow
    monotonically with the timeout; false deposes must stop once the
    timeout outlasts the pause. *)

type detector_row = {
  d_timeout : float;  (** suspicion timeout, us *)
  d_detect_us : float;  (** real kill: quorum depose latency, us *)
  d_false_depose : bool;  (** was the paused (alive) victim deposed? *)
  d_pause_us : float;  (** gray-failure pause length, us *)
  d_ok : bool;  (** both runs' digests match the fault-free twin *)
}

val detector_sweep :
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  ?timeouts:float list ->
  ?proto:Svm.Config.protocol ->
  unit ->
  detector_row list

(** Run {!detector_sweep}, print the table, and return whether every digest
    matched and the latency column is monotone. *)
val detector_report :
  Format.formatter ->
  ?scale:Apps.Registry.scale ->
  ?nprocs:int ->
  ?replicas:int ->
  ?timeouts:float list ->
  ?proto:Svm.Config.protocol ->
  unit ->
  bool
