(* Memoized (application x protocol x node-count) run matrix.

   Every paper table/figure slices the same grid of simulations; running
   each cell once and caching the report keeps the full table set
   affordable. The sequential baseline for speedups is the pure computation
   time of a one-node run (protocol-independent; the paper measures real
   sequential executables the same way).

   Cells are self-contained (one [System.create] per run, per-run RNG and
   trace sink), so uncached cells can also be evaluated concurrently on
   OCaml 5 domains via {!prefetch}; the cache and the progress callback are
   mutex-guarded, and per-cell sinks are merged into the shared sink in
   request order so parallel runs stay byte-identical to sequential ones. *)

type key = { k_app : string; k_proto : Svm.Config.protocol; k_np : int }

type t = {
  scale : Apps.Registry.scale;
  verify : bool;
  sink : Obs.Trace.sink option;
  chaos : Machine.Chaos.params;
  fault_batch : int;
  metrics_interval : float;
  cache : (key, Svm.Runtime.report) Hashtbl.t;
  mu : Mutex.t;  (* guards [cache] and serializes [progress] calls *)
  mutable progress : (string -> unit) option;
}

let create ?(verify = true) ?sink ?(chaos = Machine.Chaos.none) ?(fault_batch = 1)
    ?(metrics_interval = 0.) ~scale () =
  {
    scale;
    verify;
    sink;
    chaos;
    fault_batch;
    metrics_interval;
    cache = Hashtbl.create 64;
    mu = Mutex.create ();
    progress = None;
  }

let on_progress t f = t.progress <- Some f

let scale t = t.scale

let key_of (app : Apps.Registry.t) proto np =
  { k_app = app.Apps.Registry.name; k_proto = proto; k_np = np }

let announce t (app : Apps.Registry.t) proto np =
  match t.progress with
  | None -> ()
  | Some f ->
      (* Serialized so concurrent cells cannot interleave progress lines. *)
      Mutex.protect t.mu (fun () ->
          f
            (Printf.sprintf "running %s / %s / %d nodes..." app.Apps.Registry.name
               (Svm.Config.protocol_name proto) np))

let run_cell t ?sink (app : Apps.Registry.t) proto np =
  let cfg =
    Svm.Config.make ~nprocs:np ~chaos:t.chaos ~fault_batch:t.fault_batch
      ~metrics_interval:t.metrics_interval proto
  in
  Svm.Runtime.run ?sink cfg (app.Apps.Registry.body ~verify:t.verify)

let get t (app : Apps.Registry.t) proto np =
  let key = key_of app proto np in
  match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.cache key) with
  | Some r -> r
  | None ->
      announce t app proto np;
      let r = run_cell t ?sink:t.sink app proto np in
      Mutex.protect t.mu (fun () -> Hashtbl.replace t.cache key r);
      r

let prefetch t pool cells =
  let seen = Hashtbl.create 16 in
  let todo =
    List.filter
      (fun (app, proto, np) ->
        let key = key_of app proto np in
        if Hashtbl.mem seen key || Mutex.protect t.mu (fun () -> Hashtbl.mem t.cache key)
        then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      cells
  in
  (* Each concurrent cell traces into its own sink (same capacity as the
     shared one); after the barrier the sinks are absorbed in request
     order, which reproduces the sequential emission stream exactly. *)
  let results =
    Pool.map pool
      (fun ((app : Apps.Registry.t), proto, np) ->
        announce t app proto np;
        let cell_sink =
          Option.map
            (fun s -> Obs.Trace.create_sink ~capacity:(Obs.Trace.capacity s) ())
            t.sink
        in
        let r = run_cell t ?sink:cell_sink app proto np in
        (key_of app proto np, r, cell_sink))
      todo
  in
  List.iter
    (fun (key, r, cell_sink) ->
      (match (t.sink, cell_sink) with
      | Some dst, Some src -> Obs.Trace.absorb dst src
      | _ -> ());
      Mutex.protect t.mu (fun () -> Hashtbl.replace t.cache key r))
    results

(* Cached cells in a deterministic order for machine-readable dumps:
   application name, then the canonical protocol order of the paper's
   tables (LRC, OLRC, HLRC, OHLRC, AURC, RC — [Config.protocol_rank]),
   then node count. *)
let cells t =
  Hashtbl.fold (fun k r acc -> (k.k_app, k.k_proto, k.k_np, r) :: acc) t.cache []
  |> List.sort (fun (a1, p1, n1, _) (a2, p2, n2, _) ->
         match compare a1 a2 with
         | 0 -> (
             match compare (Svm.Config.protocol_rank p1) (Svm.Config.protocol_rank p2) with
             | 0 -> compare n1 n2
             | c -> c)
         | c -> c)

(* Sequential baseline: computation-only time of a one-node run. *)
let seq_time t app =
  let r = get t app Svm.Config.Hlrc 1 in
  r.Svm.Runtime.r_nodes.(0).Svm.Runtime.nr_breakdown.Svm.Stats.compute

let speedup t app proto np =
  let seq = seq_time t app in
  let r = get t app proto np in
  seq /. r.Svm.Runtime.r_elapsed

(* Averages of a per-node integer counter. *)
let mean_counter (r : Svm.Runtime.report) f =
  let total = Array.fold_left (fun acc n -> acc + f n.Svm.Runtime.nr_counters) 0 r.Svm.Runtime.r_nodes in
  float_of_int total /. float_of_int (Array.length r.Svm.Runtime.r_nodes)
