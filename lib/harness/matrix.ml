(* Memoized (application x protocol x node-count) run matrix.

   Every paper table/figure slices the same grid of simulations; running
   each cell once and caching the report keeps the full table set
   affordable. The sequential baseline for speedups is the pure computation
   time of a one-node run (protocol-independent; the paper measures real
   sequential executables the same way). *)

type key = { k_app : string; k_proto : Svm.Config.protocol; k_np : int }

type t = {
  scale : Apps.Registry.scale;
  verify : bool;
  sink : Obs.Trace.sink option;
  chaos : Machine.Chaos.params;
  cache : (key, Svm.Runtime.report) Hashtbl.t;
  mutable progress : (string -> unit) option;
}

let create ?(verify = true) ?sink ?(chaos = Machine.Chaos.none) ~scale () =
  { scale; verify; sink; chaos; cache = Hashtbl.create 64; progress = None }

let on_progress t f = t.progress <- Some f

let scale t = t.scale

let get t (app : Apps.Registry.t) proto np =
  let key = { k_app = app.Apps.Registry.name; k_proto = proto; k_np = np } in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      (match t.progress with
      | Some f ->
          f
            (Printf.sprintf "running %s / %s / %d nodes..." app.Apps.Registry.name
               (Svm.Config.protocol_name proto) np)
      | None -> ());
      let cfg = Svm.Config.make ~nprocs:np ~chaos:t.chaos proto in
      let r = Svm.Runtime.run ?sink:t.sink cfg (app.Apps.Registry.body ~verify:t.verify) in
      Hashtbl.replace t.cache key r;
      r

(* Cached cells in a deterministic (app, protocol, node-count) order, for
   machine-readable dumps. *)
let cells t =
  Hashtbl.fold (fun k r acc -> (k.k_app, k.k_proto, k.k_np, r) :: acc) t.cache []
  |> List.sort (fun (a1, p1, n1, _) (a2, p2, n2, _) ->
         match compare a1 a2 with
         | 0 -> (
             match compare (Svm.Config.protocol_name p1) (Svm.Config.protocol_name p2) with
             | 0 -> compare n1 n2
             | c -> c)
         | c -> c)

(* Sequential baseline: computation-only time of a one-node run. *)
let seq_time t app =
  let r = get t app Svm.Config.Hlrc 1 in
  r.Svm.Runtime.r_nodes.(0).Svm.Runtime.nr_breakdown.Svm.Stats.compute

let speedup t app proto np =
  let seq = seq_time t app in
  let r = get t app proto np in
  seq /. r.Svm.Runtime.r_elapsed

(* Averages of a per-node integer counter. *)
let mean_counter (r : Svm.Runtime.report) f =
  let total = Array.fold_left (fun acc n -> acc + f n.Svm.Runtime.nr_counters) 0 r.Svm.Runtime.r_nodes in
  float_of_int total /. float_of_int (Array.length r.Svm.Runtime.r_nodes)
