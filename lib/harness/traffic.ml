type params = {
  ops : int;
  rate : float;
  keys : int;
  theta : float;
  write_ratio : float;
  txn_ratio : float;
  seed : int;
}

type op = Get of int | Put of int | Txn of int * int

let validate p =
  if p.ops < 0 then invalid_arg "Traffic: ops must be >= 0";
  if not (p.rate > 0.) then invalid_arg "Traffic: rate must be > 0";
  if p.keys < 1 then invalid_arg "Traffic: keys must be >= 1";
  if p.theta < 0. || p.theta >= 1. then
    invalid_arg "Traffic: theta must be in [0, 1)";
  if p.write_ratio < 0. || p.write_ratio > 1. then
    invalid_arg "Traffic: write-ratio must be in [0, 1]";
  if p.txn_ratio < 0. || p.txn_ratio > 1. then
    invalid_arg "Traffic: txn-ratio must be in [0, 1]"

let arrival_us p j = float_of_int j *. 1_000_000. /. p.rate

(* Per-operation generator: [j * odd-constant + seed] is injective in [j]
   for a fixed seed, and splitmix64's output mixer decorrelates adjacent
   states, so each op gets an independent-looking stream without having
   to replay a single global one. *)
let op_rng p j = Sim.Rng.create ~seed:(p.seed + (j * 0x9E3779B9))

let op_at p z j =
  let rng = op_rng p j in
  let kind = Sim.Rng.float rng 1.0 in
  if kind < p.txn_ratio then begin
    let src = Sim.Rng.zipf rng z in
    let dst = Sim.Rng.zipf rng z in
    if dst <> src then Txn (src, dst)
    else if p.keys = 1 then Txn (src, src)
    else Txn (src, (src + 1) mod p.keys)
  end
  else
    let key = Sim.Rng.zipf rng z in
    if Sim.Rng.float rng 1.0 < p.write_ratio then Put key else Get key

let iter_node p ~node ~nodes f =
  validate p;
  if node < 0 || node >= nodes then invalid_arg "Traffic.iter_node: node";
  let z = Sim.Rng.zipf_create ~n:p.keys ~theta:p.theta in
  let j = ref node in
  while !j < p.ops do
    f ~index:!j ~at_us:(arrival_us p !j) (op_at p z !j);
    j := !j + nodes
  done
