(* Bounded domain pool: a shared-counter work queue over an immutable task
   array. Workers (the calling domain plus up to [jobs - 1] spawned ones)
   claim the next index with [Atomic.fetch_and_add] and write their result
   into a per-index slot, so results never race and always come back in
   input order. [Domain.join] publishes the slots to the caller. *)

type t = { jobs : int }

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let create ~jobs =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be >= 1 (got %d)" jobs);
  { jobs }

let sequential = { jobs = 1 }

let jobs t = t.jobs

let map t f xs =
  if t.jobs = 1 then List.map f xs
  else begin
    let tasks = Array.of_list xs in
    let n = Array.length tasks in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
          (match f tasks.(i) with
          | v -> Some (Ok v)
          | exception exn -> Some (Error (exn, Printexc.get_raw_backtrace ()))));
        worker ()
      end
    in
    let spawned = List.init (min (t.jobs - 1) (max 0 (n - 1))) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (* Re-raise the lowest-index failure: Array.iter is in order, so the
       outcome is deterministic for any pool width. *)
    Array.iter
      (function Some (Error (exn, bt)) -> Printexc.raise_with_backtrace exn bt | _ -> ())
      results;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | _ -> assert false (* the counter ran past [n] only after every slot was filled *))
  end
