(* Per-cell critical-path composition.

   One profiled run per (application x protocol x node count) cell — each
   with its own causal-trace sink, since a critical path is a property of a
   single run — rendered as a composition table: how much of the cell's
   end-to-end time is on-path local execution vs data / lock / barrier / GC
   wait, and which page, lock and barrier straggler carry the most blame.
   This is the Figure-3 story told by exact path attribution instead of
   per-node averages: a bucket can dominate the averages yet never bound
   the run (it overlaps the path), and this table tells the two apart. *)

let pct finish x = if finish > 0. then 100. *. x /. finish else 0.

let cell ~verify ~chaos ~trace_cap app proto np =
  let cfg = Svm.Config.make ~nprocs:np ~chaos ~trace_cap ~trace_spans:true proto in
  let sink = Obs.Trace.create_sink ~capacity:trace_cap () in
  let r = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify) in
  (r, Obs.Critical_path.analyze sink, sink)

let report ppf ?(pool = Pool.sequential) ?(verify = true) ?(chaos = Machine.Chaos.none)
    ?(trace_cap = 1_000_000) ?(protocols = Svm.Config.all_protocols) ~scale ~node_counts ()
    =
  Format.fprintf ppf "@.=== Critical-path composition (on-path blame, %% of finish time) ===@.@.";
  Format.fprintf ppf
    "%-12s %-6s %4s  %12s %6s %6s %6s %6s %6s  %-10s %-10s %s@." "app" "proto" "np"
    "finish(us)" "local" "data" "lock" "barr" "gc" "top page" "top lock" "straggler";
  (* Each cell already has its own sink, so profiled cells are independent
     simulations: evaluate the whole grid through the pool (in row order),
     then render — identical bytes for any pool width. *)
  let grid =
    List.concat_map
      (fun (app : Apps.Registry.t) ->
        List.concat_map
          (fun proto -> List.map (fun np -> (app, proto, np)) node_counts)
          protocols)
      (Apps.Registry.all scale)
  in
  let rows =
    Pool.map pool
      (fun (app, proto, np) ->
        let _, cp, sink = cell ~verify ~chaos ~trace_cap app proto np in
        ((app, proto, np), cp, sink))
      grid
  in
  List.iter
    (fun (((app : Apps.Registry.t), proto, np), cp, sink) ->
              let f = cp.Obs.Critical_path.cp_finish in
              let blame = function
                | [] -> "-"
                | rb :: _ -> string_of_int rb.Obs.Critical_path.rb_id
              in
              (* Straggler of the epoch with the widest arrival spread. *)
              let straggler =
                List.fold_left
                  (fun acc (es : Obs.Critical_path.epoch_slack) ->
                    match acc with
                    | Some (best : Obs.Critical_path.epoch_slack)
                      when best.Obs.Critical_path.es_spread >= es.Obs.Critical_path.es_spread
                      ->
                        acc
                    | _ -> Some es)
                  None cp.Obs.Critical_path.cp_epochs
              in
              let straggler =
                match straggler with
                | None -> "-"
                | Some es ->
                    Printf.sprintf "node %d (epoch %d)" es.Obs.Critical_path.es_straggler
                      es.Obs.Critical_path.es_epoch
              in
              Format.fprintf ppf
                "%-12s %-6s %4d  %12.0f %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%  %-10s %-10s %s%s@."
                app.Apps.Registry.name
                (Svm.Config.protocol_name proto)
                np f
                (pct f cp.Obs.Critical_path.cp_local)
                (pct f cp.Obs.Critical_path.cp_data)
                (pct f cp.Obs.Critical_path.cp_lock)
                (pct f cp.Obs.Critical_path.cp_barrier)
                (pct f cp.Obs.Critical_path.cp_gc)
                (blame cp.Obs.Critical_path.cp_top_pages)
                (blame cp.Obs.Critical_path.cp_top_locks)
                straggler
                (if Obs.Trace.dropped sink > 0 then "  [trace truncated]" else ""))
    rows
