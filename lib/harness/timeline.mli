(** Traffic-vs-time timelines (the [timeline] bench artifact).

    Renders the sampled metrics recorder as side-by-side pictures: for LRC
    and HLRC, the per-interval message/update-byte series of a fault-free
    run stacked against the same cell under a fixed chaos plan (drop 2%,
    30 us jitter) — the retransmission spike and the elapsed stretch line
    up visually — plus an HLRC failover cell (2 replicas, one node killed
    mid-run) whose recovery-stall window shows up as a hole in the traffic
    and as the [recovery_stall_us] histogram. The bucket width is derived
    from a fault-free probe run, so every scale renders at a comparable
    number of intervals. *)

(** Print the timeline pictures for [sor] on [np] nodes at [scale]. The
    five instrumented cells are independent simulations evaluated through
    [pool] (default {!Pool.sequential}); rendering happens only after
    every cell finished, so the bytes are identical for any pool width.
    Raises [Invalid_argument] when [np < 2] (node 0, the lock/barrier
    manager, cannot be killed). *)
val report :
  Format.formatter ->
  ?pool:Pool.t ->
  ?verify:bool ->
  scale:Apps.Registry.scale ->
  np:int ->
  unit ->
  unit
