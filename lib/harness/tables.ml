(* Reproductions of the paper's tables and figures (text renderings).

   Each function regenerates one artifact from the run matrix: the same
   workloads, protocols and machine sizes, printing the same rows/series the
   paper reports. Absolute numbers come from the simulated Paragon cost
   model; the shapes are what is compared against the paper (see
   EXPERIMENTS.md). *)

let protocols = Svm.Config.all_protocols

(* Each table's [*_cells] companion enumerates the (app, protocol, nodes)
   cells the renderer will [Matrix.get], in first-use order, so a driver
   can [Matrix.prefetch] them through a domain pool and the renderer then
   runs entirely on cache hits. Keeping the enumerators next to their
   renderers (same iteration nests) is what stops the two from drifting.
   The one-node HLRC cell is the sequential baseline [Matrix.seq_time]
   reads. *)

type cell = Apps.Registry.t * Svm.Config.protocol * int

let seq_cell app : cell = (app, Svm.Config.Hlrc, 1)

let table1_cells m = List.map seq_cell (Apps.Registry.all (Matrix.scale m))

let table2_cells m ~node_counts =
  List.concat_map
    (fun np ->
      List.concat_map
        (fun app -> seq_cell app :: List.map (fun p -> (app, p, np)) protocols)
        (Apps.Registry.all (Matrix.scale m)))
    node_counts

let lrc_hlrc_cells m ~node_counts =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun np -> [ (app, Svm.Config.Lrc, np); (app, Svm.Config.Hlrc, np) ])
        node_counts)
    (Apps.Registry.all (Matrix.scale m))

let table4_cells = lrc_hlrc_cells

let table5_cells = lrc_hlrc_cells

let table6_cells = lrc_hlrc_cells

let figure3_cells m ~node_counts =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun np -> List.map (fun p -> (app, p, np)) protocols)
        node_counts)
    (Apps.Registry.all (Matrix.scale m))

let figure4_cells m ~node_counts =
  let app = Apps.Registry.water_nsq (Matrix.scale m) in
  List.concat_map
    (fun proto -> List.map (fun np -> (app, proto, np)) node_counts)
    [ Svm.Config.Lrc; Svm.Config.Hlrc ]

let sor_zero_cells m ~node_counts =
  let app = Apps.Registry.sor_zero (Matrix.scale m) in
  List.concat_map
    (fun np -> [ (app, Svm.Config.Lrc, np); (app, Svm.Config.Hlrc, np) ])
    node_counts

let hline ppf n = Format.fprintf ppf "%s@." (String.make n '-')

let title ppf s =
  Format.fprintf ppf "@.=== %s ===@.@." s

(* ------------------------------------------------------------------ *)

(* Table 1: applications, problem sizes, sequential execution times. *)
let table1 ppf m =
  title ppf "Table 1: benchmarks, problem sizes, sequential execution times (simulated)";
  Format.fprintf ppf "%-16s %-46s %14s@." "Application" "Problem size" "Seq time (s)";
  hline ppf 78;
  List.iter
    (fun (app : Apps.Registry.t) ->
      let seq = Matrix.seq_time m app in
      Format.fprintf ppf "%-16s %-46s %14.2f@." app.Apps.Registry.name
        app.Apps.Registry.description (seq /. 1e6))
    (Apps.Registry.all (Matrix.scale m))

(* Table 2: speedups for the four protocols at each machine size. *)
let table2 ppf m ~node_counts =
  title ppf "Table 2: speedups on 8, 32 and 64 nodes";
  Format.fprintf ppf "%-16s" "";
  List.iter
    (fun np ->
      List.iter
        (fun p -> Format.fprintf ppf "%7s" (Svm.Config.protocol_name p))
        protocols;
      ignore np)
    [ List.hd node_counts ];
  Format.fprintf ppf "@.";
  List.iter
    (fun np ->
      Format.fprintf ppf "--- %d nodes@." np;
      List.iter
        (fun (app : Apps.Registry.t) ->
          Format.fprintf ppf "%-16s" app.Apps.Registry.name;
          List.iter
            (fun proto -> Format.fprintf ppf "%7.2f" (Matrix.speedup m app proto np))
            protocols;
          Format.fprintf ppf "@.")
        (Apps.Registry.all (Matrix.scale m)))
    node_counts

(* Table 3: basic operation costs plus the paper's derived 4.3 arithmetic. *)
let table3 ppf =
  title ppf "Table 3: timings for basic operations (simulated Paragon)";
  Machine.Costs.pp ppf Machine.Costs.paragon;
  let c = Machine.Costs.paragon in
  let lat = c.Machine.Costs.message_latency in
  let page = c.Machine.Costs.byte_transfer *. 8192.0 in
  let intr = c.Machine.Costs.receive_interrupt in
  let fault = c.Machine.Costs.page_fault in
  Format.fprintf ppf "@.Derived minimum costs (paper 4.3):@.";
  Format.fprintf ppf "  HLRC page miss          %8.0f us@." (fault +. lat +. intr +. page +. lat);
  Format.fprintf ppf "  OHLRC page miss         %8.0f us@." (fault +. lat +. page +. lat);
  Format.fprintf ppf "  LRC page miss (1w diff) %8.0f us@." (fault +. lat +. intr +. lat +. lat);
  Format.fprintf ppf "  OLRC page miss (1w diff)%8.0f us@." (fault +. lat +. lat +. lat);
  Format.fprintf ppf "  Remote lock acquire     %8.0f us@."
    ((3. *. lat) +. (2. *. intr) +. (2. *. c.Machine.Costs.page_invalidate))

(* Table 4: average per-node operation counts, LRC vs HLRC. *)
let table4 ppf m ~node_counts =
  title ppf "Table 4: average number of operations per node (LRC vs HLRC)";
  Format.fprintf ppf "%-16s %5s | %9s %9s | %9s %9s | %9s %9s | %7s %8s@." "" "nodes"
    "rdmiss" "rdmiss" "diffs+" "diffs+" "applied" "applied" "lockacq" "barriers";
  Format.fprintf ppf "%-16s %5s | %9s %9s | %9s %9s | %9s %9s | %7s %8s@." "" "" "LRC" "HLRC"
    "LRC" "HLRC" "LRC" "HLRC" "" "";
  hline ppf 110;
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let lrc = Matrix.get m app Svm.Config.Lrc np in
          let hlrc = Matrix.get m app Svm.Config.Hlrc np in
          let f r g = Matrix.mean_counter r g in
          Format.fprintf ppf
            "%-16s %5d | %9.0f %9.0f | %9.0f %9.0f | %9.0f %9.0f | %7.0f %8.0f@."
            app.Apps.Registry.name np
            (f lrc (fun c -> c.Svm.Stats.read_misses))
            (f hlrc (fun c -> c.Svm.Stats.read_misses))
            (f lrc (fun c -> c.Svm.Stats.diffs_created))
            (f hlrc (fun c -> c.Svm.Stats.diffs_created))
            (f lrc (fun c -> c.Svm.Stats.diffs_applied))
            (f hlrc (fun c -> c.Svm.Stats.diffs_applied))
            (f lrc (fun c -> c.Svm.Stats.lock_acquires))
            (f lrc (fun c -> c.Svm.Stats.barriers)))
        node_counts)
    (Apps.Registry.all (Matrix.scale m))

(* Table 5: communication traffic, LRC vs HLRC. *)
let table5 ppf m ~node_counts =
  title ppf "Table 5: communication traffic (totals; LRC vs HLRC)";
  Format.fprintf ppf "%-16s %5s | %9s %9s | %10s %10s | %10s %10s@." "" "nodes" "msgs" "msgs"
    "upd MB" "upd MB" "proto MB" "proto MB";
  Format.fprintf ppf "%-16s %5s | %9s %9s | %10s %10s | %10s %10s@." "" "" "LRC" "HLRC" "LRC"
    "HLRC" "LRC" "HLRC";
  hline ppf 100;
  let mb x = float_of_int x /. 1048576.0 in
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let lrc = Matrix.get m app Svm.Config.Lrc np in
          let hlrc = Matrix.get m app Svm.Config.Hlrc np in
          Format.fprintf ppf "%-16s %5d | %9d %9d | %10.2f %10.2f | %10.2f %10.2f@."
            app.Apps.Registry.name np
            (Svm.Runtime.total_messages lrc)
            (Svm.Runtime.total_messages hlrc)
            (mb (Svm.Runtime.total_update_bytes lrc))
            (mb (Svm.Runtime.total_update_bytes hlrc))
            (mb (Svm.Runtime.total_protocol_bytes lrc))
            (mb (Svm.Runtime.total_protocol_bytes hlrc)))
        node_counts)
    (Apps.Registry.all (Matrix.scale m))

(* Table 6: memory requirements, LRC vs HLRC. *)
let table6 ppf m ~node_counts =
  title ppf "Table 6: protocol memory (peak per node) vs application memory";
  Format.fprintf ppf "%-16s %5s | %10s | %12s %8s | %12s %8s@." "" "nodes" "app KB"
    "LRC peak KB" "ratio" "HLRC peak KB" "ratio";
  hline ppf 90;
  let kb x = float_of_int x /. 1024.0 in
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let lrc = Matrix.get m app Svm.Config.Lrc np in
          let hlrc = Matrix.get m app Svm.Config.Hlrc np in
          let app_bytes = lrc.Svm.Runtime.r_shared_bytes in
          let lp = Svm.Runtime.max_mem_peak lrc and hp = Svm.Runtime.max_mem_peak hlrc in
          Format.fprintf ppf "%-16s %5d | %10.0f | %12.0f %7.1f%% | %12.0f %7.1f%%@."
            app.Apps.Registry.name np (kb app_bytes) (kb lp)
            (100.0 *. float_of_int lp /. float_of_int (max 1 app_bytes))
            (kb hp)
            (100.0 *. float_of_int hp /. float_of_int (max 1 app_bytes)))
        node_counts)
    (Apps.Registry.all (Matrix.scale m))

(* ------------------------------------------------------------------ *)

let mean_breakdown (r : Svm.Runtime.report) =
  let acc = Svm.Stats.breakdown_zero () in
  Array.iter
    (fun n ->
      let b = n.Svm.Runtime.nr_breakdown in
      acc.Svm.Stats.compute <- acc.Svm.Stats.compute +. b.Svm.Stats.compute;
      acc.Svm.Stats.data <- acc.Svm.Stats.data +. b.Svm.Stats.data;
      acc.Svm.Stats.lock <- acc.Svm.Stats.lock +. b.Svm.Stats.lock;
      acc.Svm.Stats.barrier <- acc.Svm.Stats.barrier +. b.Svm.Stats.barrier;
      acc.Svm.Stats.protocol <- acc.Svm.Stats.protocol +. b.Svm.Stats.protocol;
      acc.Svm.Stats.gc <- acc.Svm.Stats.gc +. b.Svm.Stats.gc)
    r.Svm.Runtime.r_nodes;
  let n = float_of_int (Array.length r.Svm.Runtime.r_nodes) in
  acc.Svm.Stats.compute <- acc.Svm.Stats.compute /. n;
  acc.Svm.Stats.data <- acc.Svm.Stats.data /. n;
  acc.Svm.Stats.lock <- acc.Svm.Stats.lock /. n;
  acc.Svm.Stats.barrier <- acc.Svm.Stats.barrier /. n;
  acc.Svm.Stats.protocol <- acc.Svm.Stats.protocol /. n;
  acc.Svm.Stats.gc <- acc.Svm.Stats.gc /. n;
  acc

let bar ppf label total (b : Svm.Stats.breakdown) =
  let pct x = if total <= 0. then 0. else 100. *. x /. total in
  Format.fprintf ppf
    "  %-7s %9.0f us | comp %5.1f%%  data %5.1f%%  lock %5.1f%%  barr %5.1f%%  proto %5.1f%%  gc %5.1f%%@."
    label total (pct b.Svm.Stats.compute) (pct b.Svm.Stats.data) (pct b.Svm.Stats.lock)
    (pct b.Svm.Stats.barrier) (pct b.Svm.Stats.protocol) (pct b.Svm.Stats.gc)

(* Figure 3: average execution-time breakdowns per protocol and size. *)
let figure3 ppf m ~node_counts =
  title ppf "Figure 3: time breakdowns (mean per node)";
  List.iter
    (fun (app : Apps.Registry.t) ->
      Format.fprintf ppf "%s@." app.Apps.Registry.name;
      List.iter
        (fun np ->
          Format.fprintf ppf " %d nodes:@." np;
          List.iter
            (fun proto ->
              let r = Matrix.get m app proto np in
              let b = mean_breakdown r in
              bar ppf (Svm.Config.protocol_name proto) (Svm.Stats.breakdown_total b) b)
            protocols)
        node_counts;
      Format.fprintf ppf "@.")
    (Apps.Registry.all (Matrix.scale m))

(* Figure 4: per-processor breakdowns for one barrier epoch of
   Water-Nsquared under LRC and HLRC. The paper uses the epoch between
   barriers 9 and 10; when the scaled-down run has fewer epochs we pick the
   dominant one (largest summed time over nodes — the force-merge phase,
   which is what the paper's epoch shows). *)
let figure4 ppf m ~node_counts ~epoch =
  title ppf "Figure 4: Water-Nsquared per-processor breakdowns for one barrier epoch";
  let app = Apps.Registry.water_nsq (Matrix.scale m) in
  List.iter
    (fun proto ->
      List.iter
        (fun np ->
          let r = Matrix.get m app proto np in
          let nepochs =
            Array.fold_left
              (fun acc n -> min acc (List.length n.Svm.Runtime.nr_epochs))
              max_int r.Svm.Runtime.r_nodes
          in
          let epoch_weight e =
            Array.fold_left
              (fun acc n ->
                match List.nth_opt n.Svm.Runtime.nr_epochs e with
                | Some b -> acc +. Svm.Stats.breakdown_total b
                | None -> acc)
              0. r.Svm.Runtime.r_nodes
          in
          let e =
            if epoch < nepochs then epoch
            else
              let best = ref 0 in
              for cand = 1 to nepochs - 1 do
                if epoch_weight cand > epoch_weight !best then best := cand
              done;
              !best
          in
          Format.fprintf ppf "%s, %d nodes (epoch %d of %d):@."
            (Svm.Config.protocol_name proto) np e nepochs;
          Array.iter
            (fun n ->
              match List.nth_opt n.Svm.Runtime.nr_epochs e with
              | Some b ->
                  bar ppf
                    (Printf.sprintf "cpu %d" n.Svm.Runtime.nr_id)
                    (Svm.Stats.breakdown_total b) b
              | None -> ())
            r.Svm.Runtime.r_nodes;
          Format.fprintf ppf "@.")
        node_counts)
    [ Svm.Config.Lrc; Svm.Config.Hlrc ]

(* Section 4.8: SOR with zero interior, the workload most favourable to
   LRC; the paper still measures HLRC ~10% ahead. *)
let sor_zero ppf m ~node_counts =
  title ppf "Section 4.8: SOR with zero interior (LRC-favourable ablation)";
  let app = Apps.Registry.sor_zero (Matrix.scale m) in
  Format.fprintf ppf "%-8s %12s %12s %10s@." "nodes" "LRC (s)" "HLRC (s)" "LRC/HLRC";
  hline ppf 48;
  List.iter
    (fun np ->
      let lrc = (Matrix.get m app Svm.Config.Lrc np).Svm.Runtime.r_elapsed in
      let hlrc = (Matrix.get m app Svm.Config.Hlrc np).Svm.Runtime.r_elapsed in
      Format.fprintf ppf "%-8d %12.3f %12.3f %10.2f@." np (lrc /. 1e6) (hlrc /. 1e6)
        (lrc /. hlrc))
    node_counts
