(* Ablation studies of the design choices DESIGN.md calls out.

   These go beyond the paper's tables: each isolates one mechanism the
   paper argues about in prose — home placement (§4.4), the
   latency/interrupt sensitivity of the homeless-vs-home-based gap (§4.8
   discussion), and the page-size-induced false-sharing trade-off (§1).

   Every ablation is phrased as: enumerate the runs its table needs (in row
   order), evaluate them through a {!Pool} (each run is a self-contained
   simulation), then render from the results. With the sequential pool the
   runs happen in exactly the old inline order; with a parallel pool the
   rendered bytes are identical because rendering never starts until every
   run is done. Spec keys avoid [Apps.Registry.t] values (closures break
   structural equality) — apps are keyed by name. *)

let title ppf s = Format.fprintf ppf "@.=== %s ===@.@." s

let hline ppf n = Format.fprintf ppf "%s@." (String.make n '-')

let elapsed_of cfg body =
  let r = Svm.Runtime.run cfg (body ~verify:false) in
  (r.Svm.Runtime.r_elapsed, r)

(* Evaluate [run] over [specs] on the pool and hand back an exact-match
   lookup (specs are small comparable tuples). *)
let evaluate pool specs run =
  let results = Pool.map pool (fun spec -> (spec, run spec)) specs in
  fun spec -> List.assoc spec results

(* --- Home placement (paper 4.4: "if homes are chosen intelligently") --- *)

let lu_params scale =
  match scale with
  | Apps.Registry.Test -> { Apps.Lu.default with n = 64; block = 16 }
  | Apps.Registry.Bench -> { Apps.Lu.default with n = 512; block = 32; flop_us = 0.7 }
  | Apps.Registry.Full -> { Apps.Lu.default with n = 1024; block = 32; flop_us = 0.7 }

let home_placement ppf ?(pool = Pool.sequential) ~scale ~node_counts () =
  title ppf "Ablation: home placement for LU under HLRC (paper 4.4)";
  Format.fprintf ppf "%-8s %14s %14s %14s %10s@." "nodes" "owner homes(s)" "round robin(s)"
    "allocator(s)" "owner gain";
  hline ppf 68;
  let specs =
    List.concat_map
      (fun np ->
        [
          (np, true, Svm.Config.Round_robin);
          (np, false, Svm.Config.Round_robin);
          (np, false, Svm.Config.Allocator);
        ])
      node_counts
  in
  let time =
    evaluate pool specs (fun (np, owner_homes, policy) ->
        let p = { (lu_params scale) with Apps.Lu.owner_homes } in
        let cfg = Svm.Config.make ~home_policy:policy ~nprocs:np Svm.Config.Hlrc in
        fst (elapsed_of cfg (fun ~verify ctx -> Apps.Lu.body ~verify p ctx)))
  in
  List.iter
    (fun np ->
      let owner = time (np, true, Svm.Config.Round_robin) in
      let rr = time (np, false, Svm.Config.Round_robin) in
      let alloc = time (np, false, Svm.Config.Allocator) in
      Format.fprintf ppf "%-8d %14.3f %14.3f %14.3f %9.2fx@." np (owner /. 1e6) (rr /. 1e6)
        (alloc /. 1e6)
        (Float.min rr alloc /. owner))
    node_counts

(* --- Network parameters (paper 4.8: "fast interrupts and low latency
   messages... the performance gap between the home-based and the homeless
   protocols would probably be smaller") --- *)

let network_sensitivity ppf ?(pool = Pool.sequential) ~scale ~node_counts () =
  title ppf "Ablation: network sensitivity of the LRC/HLRC gap (paper 4.8 discussion)";
  Format.fprintf ppf
    "Paragon profile: 50us latency, 690us interrupt. Low-latency profile: 5us, 10us.@.@.";
  Format.fprintf ppf "%-16s %5s | %21s | %21s@." "" "nodes" "Paragon LRC/HLRC" "low-lat LRC/HLRC";
  hline ppf 75;
  let apps = [ Apps.Registry.sor scale; Apps.Registry.raytrace scale ] in
  let app_of name =
    List.find (fun (a : Apps.Registry.t) -> a.Apps.Registry.name = name) apps
  in
  let costs_of = function
    | `Paragon -> Machine.Costs.paragon
    | `Low_latency -> Machine.Costs.low_latency
  in
  let specs =
    List.concat_map
      (fun (app : Apps.Registry.t) ->
        List.concat_map
          (fun np ->
            List.concat_map
              (fun profile ->
                List.map
                  (fun proto -> (app.Apps.Registry.name, np, profile, proto))
                  [ Svm.Config.Lrc; Svm.Config.Hlrc ])
              [ `Paragon; `Low_latency ])
          node_counts)
      apps
  in
  let time =
    evaluate pool specs (fun (name, np, profile, proto) ->
        let cfg = Svm.Config.make ~costs:(costs_of profile) ~nprocs:np proto in
        fst (elapsed_of cfg (app_of name).Apps.Registry.body))
  in
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let gap profile =
            time (app.Apps.Registry.name, np, profile, Svm.Config.Lrc)
            /. time (app.Apps.Registry.name, np, profile, Svm.Config.Hlrc)
          in
          Format.fprintf ppf "%-16s %5d | %21.2f | %21.2f@." app.Apps.Registry.name np
            (gap `Paragon) (gap `Low_latency))
        node_counts)
    apps

(* --- Page size (coherence granularity vs false sharing) --- *)

let page_size ppf ?(pool = Pool.sequential) ~scale ~node_counts () =
  title ppf "Ablation: page size (coherence granularity) under HLRC";
  Format.fprintf ppf "%-16s %5s | %12s %12s %12s@." "" "nodes" "4KB (s)" "8KB (s)" "16KB (s)";
  hline ppf 70;
  let apps = [ Apps.Registry.sor scale; Apps.Registry.raytrace scale ] in
  let app_of name =
    List.find (fun (a : Apps.Registry.t) -> a.Apps.Registry.name = name) apps
  in
  let specs =
    List.concat_map
      (fun (app : Apps.Registry.t) ->
        List.concat_map
          (fun np ->
            List.map (fun pw -> (app.Apps.Registry.name, np, pw)) [ 512; 1024; 2048 ])
          node_counts)
      apps
  in
  let time =
    evaluate pool specs (fun (name, np, page_words) ->
        let cfg = Svm.Config.make ~page_words ~nprocs:np Svm.Config.Hlrc in
        fst (elapsed_of cfg (app_of name).Apps.Registry.body) /. 1e6)
  in
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let t pw = time (app.Apps.Registry.name, np, pw) in
          Format.fprintf ppf "%-16s %5d | %12.3f %12.3f %12.3f@." app.Apps.Registry.name np
            (t 512) (t 1024) (t 2048))
        node_counts)
    apps

(* --- Lock service placement (paper 4.3: "could be reduced to only 150us
   if this service were moved to the co-processor") --- *)

let coproc_locks ppf ?(pool = Pool.sequential) ~scale ~node_counts () =
  title ppf "Ablation: lock service on the co-processor under OHLRC (paper 4.3 extension)";
  Format.fprintf ppf "%-16s %5s | %14s %14s %10s@." "" "nodes" "compute (s)" "coproc (s)"
    "gain";
  hline ppf 70;
  let apps = [ Apps.Registry.water_nsq scale; Apps.Registry.raytrace scale ] in
  let app_of name =
    List.find (fun (a : Apps.Registry.t) -> a.Apps.Registry.name = name) apps
  in
  let specs =
    List.concat_map
      (fun (app : Apps.Registry.t) ->
        List.concat_map
          (fun np -> List.map (fun c -> (app.Apps.Registry.name, np, c)) [ false; true ])
          node_counts)
      apps
  in
  let time =
    evaluate pool specs (fun (name, np, coproc_locks) ->
        let cfg = Svm.Config.make ~coproc_locks ~nprocs:np Svm.Config.Ohlrc in
        fst (elapsed_of cfg (app_of name).Apps.Registry.body) /. 1e6)
  in
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let slow = time (app.Apps.Registry.name, np, false)
          and fast = time (app.Apps.Registry.name, np, true) in
          Format.fprintf ppf "%-16s %5d | %14.3f %14.3f %9.2fx@." app.Apps.Registry.name np
            slow fast (slow /. fast))
        node_counts)
    apps

(* --- The wider protocol family: eager RC (the predecessor LRC relaxed,
   paper 2), the paper's LRC/HLRC, and AURC (the hardware baseline HLRC
   approximates, paper 2.2-2.3 and references [15,16]) --- *)

let aurc_protocols = [ Svm.Config.Rc; Svm.Config.Lrc; Svm.Config.Hlrc; Svm.Config.Aurc ]

(* Matrix cells [aurc_comparison] will get, in first-use order (speedups
   read the one-node HLRC baseline first) — see {!Tables.table2_cells}. *)
let aurc_cells m ~node_counts =
  List.concat_map
    (fun (app : Apps.Registry.t) ->
      List.concat_map
        (fun np ->
          (app, Svm.Config.Hlrc, 1) :: List.map (fun p -> (app, p, np)) aurc_protocols)
        node_counts)
    (Apps.Registry.all (Matrix.scale m))

let aurc_comparison ppf m ~node_counts =
  title ppf "Protocol family: eager RC vs LRC vs HLRC vs AURC (paper 2.2-2.3)";
  Format.fprintf ppf "%-16s %5s | %8s %8s %8s %8s | %10s %10s@." "" "nodes" "RC" "LRC" "HLRC"
    "AURC" "RC updMB" "AURC updMB";
  hline ppf 92;
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let speedup proto = Matrix.speedup m app proto np in
          let upd proto =
            float_of_int (Svm.Runtime.total_update_bytes (Matrix.get m app proto np))
            /. 1048576.0
          in
          (* Bind left-to-right so the matrix-get order is explicit (fprintf
             arguments evaluate right-to-left) and matches [aurc_cells]. *)
          let s_rc = speedup Svm.Config.Rc in
          let s_lrc = speedup Svm.Config.Lrc in
          let s_hlrc = speedup Svm.Config.Hlrc in
          let s_aurc = speedup Svm.Config.Aurc in
          let u_rc = upd Svm.Config.Rc in
          let u_aurc = upd Svm.Config.Aurc in
          Format.fprintf ppf "%-16s %5d | %8.2f %8.2f %8.2f %8.2f | %10.2f %10.2f@."
            app.Apps.Registry.name np s_rc s_lrc s_hlrc s_aurc u_rc u_aurc)
        node_counts)
    (Apps.Registry.all (Matrix.scale m))

(* --- Adaptive home migration (extension): repairing un-hinted placement
   at run time --- *)

let home_migration ppf ?(pool = Pool.sequential) ~scale ~node_counts () =
  title ppf "Ablation: adaptive home migration under HLRC (extension)";
  Format.fprintf ppf
    "LU without placement hints (round-robin homes), with and without migration.@.@.";
  Format.fprintf ppf "%-8s %12s %14s %12s %10s@." "nodes" "fixed (s)" "migrating (s)" "moves"
    "gain";
  hline ppf 62;
  let p = { (lu_params scale) with Apps.Lu.owner_homes = false } in
  let specs = List.concat_map (fun np -> [ (np, false); (np, true) ]) node_counts in
  let report =
    evaluate pool specs (fun (np, home_migration) ->
        let cfg = Svm.Config.make ~home_migration ~nprocs:np Svm.Config.Hlrc in
        Svm.Runtime.run cfg (fun ctx -> Apps.Lu.body ~verify:false p ctx))
  in
  List.iter
    (fun np ->
      let fixed = report (np, false) and migrating = report (np, true) in
      let moves =
        Array.fold_left
          (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.home_migrations)
          0 migrating.Svm.Runtime.r_nodes
      in
      Format.fprintf ppf "%-8d %12.3f %14.3f %12d %9.2fx@." np
        (fixed.Svm.Runtime.r_elapsed /. 1e6)
        (migrating.Svm.Runtime.r_elapsed /. 1e6)
        moves
        (fixed.Svm.Runtime.r_elapsed /. migrating.Svm.Runtime.r_elapsed))
    node_counts

(* --- Batched fault handling (--fault-batch; zero-alloc/event-core PR
   extension): how much round-trip amortization buys per protocol --- *)

let fault_batch ppf ?(pool = Pool.sequential) ~scale ~node_counts () =
  title ppf "Ablation: batched fault handling under HLRC (--fault-batch)";
  Format.fprintf ppf
    "Runs of adjacent same-home invalid pages are pulled in one round trip.@.";
  Format.fprintf ppf
    "Homes are block-placed (adjacent pages share a home) so runs exist.@.@.";
  Format.fprintf ppf "%-16s %5s | %10s %10s %10s %10s | %9s %9s %10s@." "" "nodes"
    "N=1 (s)" "N=2 (s)" "N=4 (s)" "N=8 (s)" "fetch@1" "fetch@8" "prefetch@8";
  hline ppf 106;
  let batches = [ 1; 2; 4; 8 ] in
  let apps = [ Apps.Registry.raytrace scale; Apps.Registry.sor scale ] in
  let app_of name =
    List.find (fun (a : Apps.Registry.t) -> a.Apps.Registry.name = name) apps
  in
  let specs =
    List.concat_map
      (fun (app : Apps.Registry.t) ->
        List.concat_map
          (fun np -> List.map (fun b -> (app.Apps.Registry.name, np, b)) batches)
          node_counts)
      apps
  in
  let report =
    evaluate pool specs (fun (name, np, fault_batch) ->
        let cfg =
          Svm.Config.make ~home_policy:Svm.Config.Block ~fault_batch ~nprocs:np
            Svm.Config.Hlrc
        in
        snd (elapsed_of cfg (app_of name).Apps.Registry.body))
  in
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let t b =
            (report (app.Apps.Registry.name, np, b)).Svm.Runtime.r_elapsed /. 1e6
          in
          let sum b f =
            Array.fold_left
              (fun acc n -> acc + f n.Svm.Runtime.nr_counters)
              0
              (report (app.Apps.Registry.name, np, b)).Svm.Runtime.r_nodes
          in
          Format.fprintf ppf "%-16s %5d | %10.3f %10.3f %10.3f %10.3f | %9d %9d %10d@."
            app.Apps.Registry.name np (t 1) (t 2) (t 4) (t 8)
            (sum 1 (fun c -> c.Svm.Stats.page_fetches))
            (sum 8 (fun c -> c.Svm.Stats.page_fetches))
            (sum 8 (fun c -> c.Svm.Stats.batch_prefetches)))
        node_counts)
    apps
