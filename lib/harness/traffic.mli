(** Open-loop traffic generation for serving workloads.

    A traffic plan is a deterministic function of its parameters: operation
    [j] of the global stream has a fixed arrival time (open-loop — arrivals
    do not wait for completions), a key drawn from a Zipfian distribution
    over [keys] ranks, and a kind (get / put / two-key transaction) drawn
    from the configured mix. Each operation derives its own RNG from
    [(seed, j)], so a node can materialize just its slice of the stream
    without replaying anybody else's draws — the plan is identical no
    matter how many nodes split it. *)

type params = {
  ops : int;  (** total operations across all nodes *)
  rate : float;  (** aggregate arrival rate, operations per second *)
  keys : int;  (** key-space size; ranks [0 .. keys-1] *)
  theta : float;  (** Zipfian skew in [0, 1); 0 = uniform *)
  write_ratio : float;  (** fraction of single-key ops that are puts *)
  txn_ratio : float;  (** fraction of all ops that are transactions *)
  seed : int;
}

type op =
  | Get of int
  | Put of int
  | Txn of int * int
      (** [Txn (src, dst)] transfers one unit from [src] to [dst];
          [src <> dst] whenever the key space allows it. *)

(** Raises [Invalid_argument] describing the first field out of range. *)
val validate : params -> unit

(** Arrival time of operation [j] in simulated microseconds. *)
val arrival_us : params -> int -> float

(** The operation at global index [j]; deterministic in [(params, j)]. *)
val op_at : params -> Sim.Rng.zipf -> int -> op

(** [iter_node p ~node ~nodes f] runs [f ~index ~at_us op] over this
    node's round-robin slice of the stream (indices congruent to [node]
    modulo [nodes]) in arrival order. *)
val iter_node :
  params ->
  node:int ->
  nodes:int ->
  (index:int -> at_us:float -> op -> unit) ->
  unit
