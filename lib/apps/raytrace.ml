(* Raytrace: render a sphere scene with distributed task queues and task
   stealing (Splash-2 "Raytrace", simplified shading, same sharing
   structure).

   The scene (spheres + light) is read-only shared data. The image plane is
   partitioned into square tiles; tile ids are distributed over per-processor
   task queues in shared memory, each protected by a lock. A processor pops
   work from its own queue and steals from others when empty. Pixel writes
   and queue operations are fine-grained and heavily false-shared at page
   level — the paper's hardest case for SVM, where homeless LRC collapses at
   scale (§4.2). *)

type params = {
  width : int;
  height : int;
  tile : int;  (* tile side, must divide width and height *)
  spheres : int;
  flop_us : float;
  seed : int;
}

let default = { width = 64; height = 64; tile = 8; spheres = 12; flop_us = 0.05; seed = 23 }

let name = "Raytrace"

(* Scene construction: deterministic spheres in front of the camera, one
   directional light. Sphere k: center, radius, diffuse albedo. *)
type sphere = { cx : float; cy : float; cz : float; r : float; albedo : float }

let make_scene p =
  Array.init p.spheres (fun k ->
      let f d = App_util.det_float ~seed:(p.seed + d) k in
      {
        cx = (2.0 *. f 0) -. 1.0;
        cy = (2.0 *. f 1) -. 1.0;
        cz = 2.0 +. (2.0 *. f 2);
        r = 0.15 +. (0.25 *. f 3);
        albedo = 0.3 +. (0.7 *. f 4);
      })

let light = (0.577, -0.577, -0.577) (* towards the scene *)

(* Ray-sphere intersection: returns the smallest positive t. *)
let intersect ~ox ~oy ~oz ~dx ~dy ~dz s =
  let lx = s.cx -. ox and ly = s.cy -. oy and lz = s.cz -. oz in
  let tca = (lx *. dx) +. (ly *. dy) +. (lz *. dz) in
  let d2 = (lx *. lx) +. (ly *. ly) +. (lz *. lz) -. (tca *. tca) in
  let r2 = s.r *. s.r in
  if d2 > r2 then None
  else
    let thc = sqrt (r2 -. d2) in
    let t0 = tca -. thc and t1 = tca +. thc in
    if t0 > 1e-6 then Some t0 else if t1 > 1e-6 then Some t1 else None

let closest_hit scene ~ox ~oy ~oz ~dx ~dy ~dz =
  Array.fold_left
    (fun acc s ->
      match intersect ~ox ~oy ~oz ~dx ~dy ~dz s with
      | None -> acc
      | Some t -> ( match acc with Some (t', _) when t' <= t -> acc | _ -> Some (t, s)))
    None scene

(* Shade one pixel: primary ray from the origin through the image plane at
   z = 1, Lambertian shading with a shadow ray. Pure function of (scene,
   pixel), so every processor computes the identical value. *)
let render_pixel p scene px py =
  let fw = float_of_int p.width and fh = float_of_int p.height in
  let dx = ((float_of_int px +. 0.5) /. fw) -. 0.5 in
  let dy = ((float_of_int py +. 0.5) /. fh) -. 0.5 in
  let norm = sqrt ((dx *. dx) +. (dy *. dy) +. 1.0) in
  let dx = dx /. norm and dy = dy /. norm and dz = 1.0 /. norm in
  match closest_hit scene ~ox:0. ~oy:0. ~oz:0. ~dx ~dy ~dz with
  | None -> 0.05 (* background *)
  | Some (t, s) ->
      let hx = t *. dx and hy = t *. dy and hz = t *. dz in
      let nx = (hx -. s.cx) /. s.r and ny = (hy -. s.cy) /. s.r and nz = (hz -. s.cz) /. s.r in
      let lx, ly, lz = light in
      let ndotl = Float.max 0. (-.((nx *. lx) +. (ny *. ly) +. (nz *. lz))) in
      let shadow_origin_x = hx +. (1e-4 *. nx)
      and shadow_origin_y = hy +. (1e-4 *. ny)
      and shadow_origin_z = hz +. (1e-4 *. nz) in
      let shadowed =
        closest_hit scene ~ox:shadow_origin_x ~oy:shadow_origin_y ~oz:shadow_origin_z
          ~dx:(-.lx) ~dy:(-.ly) ~dz:(-.lz)
        <> None
      in
      if shadowed then 0.05 +. (0.05 *. s.albedo) else 0.05 +. (s.albedo *. ndotl)

let flops_per_pixel p = float_of_int ((p.spheres * 40) + 60)

let reference p =
  let scene = make_scene p in
  Array.init (p.width * p.height) (fun idx ->
      render_pixel p scene (idx mod p.width) (idx / p.width))

(* ------------------------------------------------------------------ *)
(* Task queues: queue q occupies [head; tail; items...]; items hold tile
   ids. head/tail only grow; the live range is [head, tail). *)

let body ?(verify = true) p ctx =
  if p.width mod p.tile <> 0 || p.height mod p.tile <> 0 then
    invalid_arg "Raytrace.body: tile must divide width and height";
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let scene = make_scene p in
  let reference = lazy (reference p) in
  let tiles_x = p.width / p.tile in
  let tiles_y = p.height / p.tile in
  let ntasks = tiles_x * tiles_y in
  let qwords = 2 + ntasks in
  if me = 0 then begin
    (* Image rows are block-distributed (and homed) over the processors; a
       tile row spans pages of several owners, so pixel writes false-share. *)
    let image_home page =
      let row = min (p.height - 1) (page * Svm.Api.page_words ctx / p.width) in
      App_util.owner_of ~n:p.height ~nparts:np row
    in
    ignore (Svm.Api.malloc ctx ~name:"rt.image" ~home:image_home (p.width * p.height));
    (* [~scratch]: final head/tail values depend on who stole what, i.e. on
       timing — coherent but not part of the result. *)
    let queues = Svm.Api.malloc ctx ~name:"rt.queues" ~scratch:true ~home:(fun pg ->
        App_util.owner_of ~n:(np * qwords) ~nparts:np (pg * Svm.Api.page_words ctx))
        (np * qwords)
    in
    (* Deal tiles round-robin to the queues. *)
    let counts = Array.make np 0 in
    for task = 0 to ntasks - 1 do
      let q = task mod np in
      Svm.Api.write_int ctx (queues + (q * qwords) + 2 + counts.(q)) task;
      counts.(q) <- counts.(q) + 1
    done;
    for q = 0 to np - 1 do
      Svm.Api.write_int ctx (queues + (q * qwords)) 0;
      Svm.Api.write_int ctx (queues + (q * qwords) + 1) counts.(q)
    done
  end;
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let image = Svm.Api.root ctx "rt.image" in
  let queues = Svm.Api.root ctx "rt.queues" in
  let qbase q = queues + (q * qwords) in
  (* Pop from the head of queue [q] under its lock; steal = same operation on
     a victim's queue (from the tail side). *)
  let pop ~steal q =
    Svm.Api.lock ctx q;
    let head = Svm.Api.read_int ctx (qbase q) in
    let tail = Svm.Api.read_int ctx (qbase q + 1) in
    let result =
      if head >= tail then None
      else if steal then begin
        Svm.Api.write_int ctx (qbase q + 1) (tail - 1);
        Some (Svm.Api.read_int ctx (qbase q + 2 + tail - 1))
      end
      else begin
        Svm.Api.write_int ctx (qbase q) (head + 1);
        Some (Svm.Api.read_int ctx (qbase q + 2 + head))
      end
    in
    Svm.Api.unlock ctx q;
    result
  in
  let render_tile task =
    let ty = task / tiles_x and tx = task mod tiles_x in
    for py = ty * p.tile to ((ty + 1) * p.tile) - 1 do
      for px = tx * p.tile to ((tx + 1) * p.tile) - 1 do
        let v = render_pixel p scene px py in
        Svm.Api.compute ctx (flops_per_pixel p *. p.flop_us);
        Svm.Api.write ctx (image + (py * p.width) + px) v
      done
    done
  in
  let rec work () =
    match pop ~steal:false me with
    | Some task ->
        render_tile task;
        work ()
    | None ->
        (* Own queue empty: try to steal, round-robin from the next node. *)
        let rec try_victim k =
          if k >= np then ()
          else
            let victim = (me + k) mod np in
            match pop ~steal:true victim with
            | Some task ->
                render_tile task;
                work ()
            | None -> try_victim (k + 1)
        in
        try_victim 1
  in
  work ();
  Svm.Api.barrier ctx;
  if verify && me = 0 then begin
    let expected = Lazy.force reference in
    for idx = 0 to (p.width * p.height) - 1 do
      App_util.check_close ~what:"rt.image" ~tol:1e-12 ~index:idx expected.(idx)
        (Svm.Api.read ctx (image + idx))
    done
  end;
  Svm.Api.barrier ctx
