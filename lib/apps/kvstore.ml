(* Sharded key-value store: a serving workload (not a Splash-2 kernel).

   The table is a hash table whose buckets are sharded across the nodes as
   SVM pages — bucket [b] is exactly one page, homed at node [b mod nprocs],
   which is also the manager of lock [b], so bucket ownership moves with
   the lock handoff (the IronFleet sharded-hash-table design: whoever holds
   the lock owns the shard and mutates it locally). Key [k] lives in bucket
   [k mod buckets] at slot [k / buckets]; a cell is two words:

     word 0: put count      (a put increments it)
     word 1: transfer delta (a transaction moves one unit src -> dst)

   Both update kinds commute, and transactions acquire their two bucket
   locks in ascending order (deadlock-free), so the final memory is a pure
   function of the op multiset: the digest is identical under any chaos
   interleaving and matches the fault-free twin — exactly what the
   differential soaks require.

   Traffic is open-loop (see [Traffic]): operation [j] of the global
   Zipfian stream arrives at a fixed time whether or not earlier ops have
   completed, and node [j mod nprocs] executes it. Per-op latency is
   completion minus scheduled arrival, so queueing delay from a saturated
   node counts, as it should in a serving benchmark. *)

type params = {
  buckets : int;  (* one SVM page per bucket *)
  op_us : float;  (* simulated CPU cost of one operation's local work *)
  traffic : Traffic.params;
}

let default =
  {
    buckets = 64;
    op_us = 0.5;
    traffic =
      {
        Traffic.ops = 2000;
        rate = 100_000.;
        keys = 4096;
        theta = 0.9;
        write_ratio = 0.2;
        txn_ratio = 0.1;
        seed = 11;
      };
  }

let name = "kvstore"

let bucket_of p key = key mod p.buckets

let slot_of p key = key / p.buckets

(* Sequential reference: replay the whole plan into per-key (count, delta)
   accumulators. Commutativity makes replay order irrelevant. *)
let reference p =
  let tp = p.traffic in
  let counts = Array.make tp.Traffic.keys 0 in
  let deltas = Array.make tp.Traffic.keys 0 in
  let z = Sim.Rng.zipf_create ~n:tp.Traffic.keys ~theta:tp.Traffic.theta in
  for j = 0 to tp.Traffic.ops - 1 do
    match Traffic.op_at tp z j with
    | Traffic.Get _ -> ()
    | Traffic.Put k -> counts.(k) <- counts.(k) + 1
    | Traffic.Txn (src, dst) ->
        deltas.(src) <- deltas.(src) - 1;
        deltas.(dst) <- deltas.(dst) + 1
  done;
  (counts, deltas)

let body ?(verify = true) p ctx =
  Traffic.validate p.traffic;
  if p.buckets < 1 then invalid_arg "Kvstore.body: buckets must be >= 1";
  if p.op_us < 0. then invalid_arg "Kvstore.body: op_us must be >= 0";
  let tp = p.traffic in
  let page_words = Svm.Api.page_words ctx in
  let slots = (tp.Traffic.keys + p.buckets - 1) / p.buckets in
  if 2 * slots > page_words then
    invalid_arg
      (Printf.sprintf "Kvstore.body: %d keys / %d buckets need %d words per page (have %d)"
         tp.Traffic.keys p.buckets (2 * slots) page_words);
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then
    (* One page per bucket, homed at the bucket's lock manager so lock
       handoff and page ownership travel together. Pages start zeroed;
       no init pass needed. *)
    ignore
      (Svm.Api.malloc ctx ~name:"kv.buckets"
         ~home:(fun page -> page mod np)
         (p.buckets * page_words));
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let base = Svm.Api.root ctx "kv.buckets" in
  let cell b slot = base + (b * page_words) + (2 * slot) in
  let t0 = Svm.Api.now ctx in
  let get key =
    let b = bucket_of p key in
    Svm.Api.lock ctx b;
    let _count = Svm.Api.read_int ctx (cell b (slot_of p key)) in
    let _delta = Svm.Api.read_int ctx (cell b (slot_of p key) + 1) in
    Svm.Api.compute ctx p.op_us;
    Svm.Api.unlock ctx b
  in
  let put key =
    let b = bucket_of p key in
    let a = cell b (slot_of p key) in
    Svm.Api.lock ctx b;
    Svm.Api.write_int ctx a (Svm.Api.read_int ctx a + 1);
    Svm.Api.compute ctx p.op_us;
    Svm.Api.unlock ctx b
  in
  let txn src dst =
    (* Ordered acquire, then a local atomic step on both shards. *)
    let bs = bucket_of p src and bd = bucket_of p dst in
    let b1 = min bs bd and b2 = max bs bd in
    Svm.Api.lock ctx b1;
    if b2 <> b1 then Svm.Api.lock ctx b2;
    let asrc = cell bs (slot_of p src) + 1 and adst = cell bd (slot_of p dst) + 1 in
    (* A degenerate self-transfer (single-key space) is a net no-op, as in
       the reference replay. *)
    if dst <> src then begin
      Svm.Api.write_int ctx asrc (Svm.Api.read_int ctx asrc - 1);
      Svm.Api.write_int ctx adst (Svm.Api.read_int ctx adst + 1)
    end;
    Svm.Api.compute ctx p.op_us;
    if b2 <> b1 then Svm.Api.unlock ctx b2;
    Svm.Api.unlock ctx b1
  in
  Traffic.iter_node tp ~node:me ~nodes:np (fun ~index:_ ~at_us op ->
      let issued_at = t0 +. at_us in
      Svm.Api.idle_until ctx issued_at;
      match op with
      | Traffic.Get k ->
          get k;
          Svm.Api.record_op ctx Svm.System.Op_get ~issued_at
      | Traffic.Put k ->
          put k;
          Svm.Api.record_op ctx Svm.System.Op_put ~issued_at
      | Traffic.Txn (src, dst) ->
          txn src dst;
          Svm.Api.record_op ctx Svm.System.Op_txn ~issued_at);
  Svm.Api.barrier ctx;
  if verify && me = 0 then begin
    let counts, deltas = reference p in
    let sum = Array.fold_left ( + ) 0 deltas in
    if sum <> 0 then App_util.failf "kvstore: transfer deltas sum to %d, not 0" sum;
    for key = 0 to tp.Traffic.keys - 1 do
      let b = bucket_of p key and slot = slot_of p key in
      let got_count = Svm.Api.read_int ctx (cell b slot) in
      let got_delta = Svm.Api.read_int ctx (cell b slot + 1) in
      if got_count <> counts.(key) then
        App_util.failf "kvstore: key %d put count %d, expected %d" key got_count counts.(key);
      if got_delta <> deltas.(key) then
        App_util.failf "kvstore: key %d delta %d, expected %d" key got_delta deltas.(key)
    done
  end
