(** Sharded key-value store: the serving workload.

    A hash table whose buckets are sharded across the nodes as SVM pages:
    bucket [b] is one page homed at node [b mod nprocs] — also the manager
    of lock [b] — so bucket ownership travels with the lock handoff
    (IronFleet sharded-hash-table style). A cell is (put count, transfer
    delta); puts and two-bucket transactions (ordered acquire + local
    atomic step) both commute, so the final memory digest is a pure
    function of the traffic plan under any interleaving, chaos included.

    Driven by the open-loop Zipfian plan in [Traffic]; each completed
    operation is recorded via [Api.record_op], surfacing throughput and
    latency percentiles in the report's [serving] block. *)

type params = {
  buckets : int;  (** Bucket count; one SVM page each. *)
  op_us : float;  (** Simulated CPU cost of one operation's local work. *)
  traffic : Traffic.params;
}

val default : params

val name : string

(** Per-key (put count, transfer delta) accumulators from a sequential
    replay of the whole plan; the SVM run must agree exactly. *)
val reference : params -> int array * int array

(** The SPMD process body; with [~verify:true] process 0 replays the plan
    and checks every cell plus global delta conservation. *)
val body : ?verify:bool -> params -> Svm.Api.ctx -> unit
