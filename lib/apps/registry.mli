(** Application registry: the paper's five benchmarks (plus the §4.8 SOR
    variant) at three problem scales. *)

(** [Test] keeps unit tests fast; [Bench] is the default for table
    generation; [Full] runs closer to the paper's
    compute-to-communication ratios (longer wall-clock). *)
type scale = Test | Bench | Full

type t = {
  name : string;
  body : verify:bool -> Svm.Api.ctx -> unit;
      (** The SPMD process body; with [~verify:true] process 0 checks the
          final shared memory against the sequential reference. *)
  description : string;  (** Problem-size summary for Table 1. *)
}

val lu : scale -> t

val sor : scale -> t

(** SOR with a zero interior: the paper's §4.8 LRC-favourable ablation. *)
val sor_zero : scale -> t

val water_nsq : scale -> t

val water_spatial : scale -> t

val raytrace : scale -> t

(** Sharded key-value store serving workload (open-loop Zipfian traffic);
    see {!Kvstore}. *)
val kvstore : scale -> t

(** The scale-default kvstore parameters — the base the CLIs' [--kv-*]
    overrides patch before {!kvstore_of_params}. *)
val kvstore_params : scale -> Kvstore.params

val kvstore_of_params : Kvstore.params -> t

(** The paper's five applications (its Table 1), in its order — the set
    the bench tables/figures sweep. The serving workload is not included
    (it has no speedup-vs-sequential story); reach it via {!find}. *)
val all : scale -> t list

(** Look up by CLI name; see {!names}. *)
val find : string -> scale -> t option

(** Every registered application name, in CLI order. [find] succeeds on
    exactly these; derive usage/error text from this list rather than
    hardcoding it. *)
val names : string list
