(* Application registry: the five benchmarks behind the paper's evaluation,
   at three problem scales. [Test] keeps unit tests fast, [Bench] is the
   default for table generation, [Full] approaches the paper's
   compute-to-communication ratios (longer wall-clock). *)

type scale = Test | Bench | Full

type t = {
  name : string;
  body : verify:bool -> Svm.Api.ctx -> unit;
  description : string;
}

let lu scale =
  let p =
    match scale with
    | Test -> { Lu.default with n = 64; block = 16 }
    | Bench -> { Lu.default with n = 512; block = 32; flop_us = 0.7 }
    | Full -> { Lu.default with n = 1024; block = 32; flop_us = 0.7 }
  in
  {
    name = Lu.name;
    body = (fun ~verify ctx -> Lu.body ~verify p ctx);
    description = Printf.sprintf "blocked LU factorization, %dx%d, block %d" p.Lu.n p.Lu.n p.Lu.block;
  }

let sor scale =
  let p =
    match scale with
    | Test -> { Sor.default with rows = 64; cols = 64; iters = 4 }
    | Bench -> { Sor.default with rows = 512; cols = 512; iters = 10; flop_us = 6. }
    | Full -> { Sor.default with rows = 1024; cols = 1024; iters = 12; flop_us = 6. }
  in
  {
    name = Sor.name;
    body = (fun ~verify ctx -> Sor.body ~verify p ctx);
    description =
      Printf.sprintf "red-black SOR, %dx%d grid, %d iterations" p.Sor.rows p.Sor.cols p.Sor.iters;
  }

let sor_zero scale =
  let base =
    match scale with
    | Test -> { Sor.default with rows = 64; cols = 64; iters = 4 }
    | Bench -> { Sor.default with rows = 512; cols = 512; iters = 10; flop_us = 6. }
    | Full -> { Sor.default with rows = 1024; cols = 1024; iters = 12; flop_us = 6. }
  in
  let p = { base with Sor.zero_interior = true } in
  {
    name = "SOR-zero";
    body = (fun ~verify ctx -> Sor.body ~verify p ctx);
    description =
      Printf.sprintf "SOR with zero interior (paper 4.8), %dx%d, %d iterations" p.Sor.rows
        p.Sor.cols p.Sor.iters;
  }

let water_nsq scale =
  let p =
    match scale with
    | Test -> { Water_nsq.default with molecules = 96; steps = 2 }
    | Bench -> { Water_nsq.default with molecules = 2048; steps = 2; flop_us = 1.0 }
    | Full -> { Water_nsq.default with molecules = 4096; steps = 2; flop_us = 0.6 }
  in
  {
    name = Water_nsq.name;
    body = (fun ~verify ctx -> Water_nsq.body ~verify p ctx);
    description =
      Printf.sprintf "O(n^2) water, %d molecules, %d steps" p.Water_nsq.molecules
        p.Water_nsq.steps;
  }

let water_spatial scale =
  let p =
    match scale with
    | Test -> { Water_spatial.default with grid = 3; molecules = 96; steps = 2 }
    | Bench -> { Water_spatial.default with grid = 6; molecules = 1024; steps = 2; flop_us = 8. }
    | Full -> { Water_spatial.default with grid = 8; molecules = 2048; steps = 3; flop_us = 6. }
  in
  {
    name = Water_spatial.name;
    body = (fun ~verify ctx -> Water_spatial.body ~verify p ctx);
    description =
      Printf.sprintf "spatial water, %d^3 cells, %d molecules, %d steps" p.Water_spatial.grid
        p.Water_spatial.molecules p.Water_spatial.steps;
  }

let raytrace scale =
  let p =
    match scale with
    | Test -> { Raytrace.default with width = 32; height = 32; tile = 8; spheres = 6 }
    | Bench -> { Raytrace.default with width = 128; height = 128; tile = 8; spheres = 16; flop_us = 6. }
    | Full -> { Raytrace.default with width = 256; height = 256; tile = 8; spheres = 16; flop_us = 4. }
  in
  {
    name = Raytrace.name;
    body = (fun ~verify ctx -> Raytrace.body ~verify p ctx);
    description =
      Printf.sprintf "sphere raytracer, %dx%d image, %dx%d tiles" p.Raytrace.width
        p.Raytrace.height p.Raytrace.tile p.Raytrace.tile;
  }

let kvstore_params scale =
  match scale with
  | Test ->
      (* Sized so a Test run lasts well past the soak harness's fault
         windows (pauses/partitions land within the first ~10 ms). *)
      Kvstore.default
  | Bench ->
      {
        Kvstore.default with
        Kvstore.buckets = 256;
        traffic =
          {
            Kvstore.default.Kvstore.traffic with
            Traffic.ops = 200_000;
            rate = 1_000_000.;
            keys = 65_536;
          };
      }
  | Full ->
      {
        Kvstore.default with
        Kvstore.buckets = 4096;
        traffic =
          {
            Kvstore.default.Kvstore.traffic with
            Traffic.ops = 2_000_000;
            rate = 2_000_000.;
            keys = 1_048_576;
          };
      }

let kvstore_of_params p =
  let tp = p.Kvstore.traffic in
  {
    name = Kvstore.name;
    body = (fun ~verify ctx -> Kvstore.body ~verify p ctx);
    description =
      Printf.sprintf
        "sharded KV store, %d buckets, %d keys (theta %.2f), %d ops at %.0f/s"
        p.Kvstore.buckets tp.Traffic.keys tp.Traffic.theta tp.Traffic.ops tp.Traffic.rate;
  }

let kvstore scale = kvstore_of_params (kvstore_params scale)

(* The paper's five applications (Table 1) — the set the bench tables and
   figures sweep. The serving workload is not among them: it has no
   speedup-vs-sequential story, so it gets its own artifact instead. *)
let all scale =
  [ lu scale; sor scale; water_nsq scale; water_spatial scale; raytrace scale ]

(* Single source of truth for every registered application, in CLI order:
   [find], [names] — and through them both CLIs' usage text, the identity
   golden, and the soak sweeps — all derive from this list, so a new app
   appears everywhere by adding one row (the same drift
   [Config.protocol_strings] eliminated for protocols). *)
let builders =
  [
    ("lu", lu);
    ("sor", sor);
    ("sor-zero", sor_zero);
    ("water-nsquared", water_nsq);
    ("water-spatial", water_spatial);
    ("raytrace", raytrace);
    ("kvstore", kvstore);
  ]

let find name scale =
  match List.assoc_opt (String.lowercase_ascii name) builders with
  | Some b -> Some (b scale)
  | None -> None

let names = List.map fst builders
