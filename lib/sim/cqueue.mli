(** Calendar queue: the engine's event set.

    Same ordering contract as {!Heap} — entries pop in lexicographic
    [(key, insertion order)] order, so equal keys pop FIFO — but O(1)
    amortised push/pop for the mostly-increasing timestamp streams a
    discrete-event simulation produces, and pooled storage (parallel flat
    arrays per bucket) instead of a per-entry record, so steady-state
    operation allocates almost nothing.

    Keys must not be NaN; [push] raises on NaN. *)

type 'a t

(** [create ?capacity ()] sizes the initial bucket array for roughly
    [capacity] pending entries (it adapts afterwards either way). *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push q ~key v] inserts [v] with priority [key]. Entries with equal
    keys pop in FIFO order. @raise Invalid_argument on NaN keys. *)
val push : 'a t -> key:float -> 'a -> unit

(** [pop_min q] removes and returns the minimum entry as [(key, v)],
    dropping the queue's reference to [v].
    @raise Invalid_argument if the queue is empty. *)
val pop_min : 'a t -> float * 'a

(** [peek_min q] returns the minimum entry without removing it.
    @raise Invalid_argument if the queue is empty. *)
val peek_min : 'a t -> float * 'a

val clear : 'a t -> unit
