(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. Chosen because it is tiny, fast, splittable and
   has well-understood statistical quality. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix64 (next_seed t)

let split t =
  let seed = bits64 t in
  { state = seed }

(* Rejection sampling over 63 uniform bits (Java's nextInt idiom): draw,
   reduce, and retry whenever the draw falls in the short tail
   [2^63 - 2^63 mod bound, 2^63), which a plain [mod] would fold onto the
   low residues and bias them by up to bound/2^63. The overflow test
   [bits - r + (bound - 1) < 0] detects exactly those tail draws. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let b = Int64.of_int bound in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let r = Int64.rem bits b in
    if Int64.compare (Int64.add (Int64.sub bits r) (Int64.sub b 1L)) 0L < 0 then draw ()
    else Int64.to_int r
  in
  draw ()

let float t bound =
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 2^53 possible values in [0, 1). *)
  bound *. (bits /. 9007199254740992.0)

(* Zipfian sampler after Gray et al., "Quickly generating billion-record
   synthetic databases" (SIGMOD 1994), as popularized by YCSB: the
   harmonic normalizer [zetan] is computed once at construction, after
   which each draw costs one uniform and one [**]. Rank 0 is the most
   popular key; [theta = 0] degenerates to the uniform distribution. *)

type zipf = {
  z_n : int;
  z_theta : float;
  z_zetan : float;
  z_alpha : float;
  z_eta : float;
  z_half_pow : float; (* 0.5 ** theta *)
}

let zipf_create ~n ~theta =
  if n < 1 then invalid_arg "Rng.zipf_create: n must be >= 1";
  if theta < 0. || theta >= 1. then
    invalid_arg "Rng.zipf_create: theta must be in [0, 1)";
  let zetan = ref 0. in
  for i = 1 to n do
    zetan := !zetan +. (1. /. (float_of_int i ** theta))
  done;
  let zetan = !zetan in
  let half_pow = 0.5 ** theta in
  let zeta2 = 1. +. half_pow in
  (* For n <= 2 the two explicit branches in [zipf] cover every draw, so
     [eta] is never consulted; guard the 0/0 it would otherwise be. *)
  let eta =
    if n <= 2 then 0.
    else
      (1. -. ((2. /. float_of_int n) ** (1. -. theta)))
      /. (1. -. (zeta2 /. zetan))
  in
  {
    z_n = n;
    z_theta = theta;
    z_zetan = zetan;
    z_alpha = 1. /. (1. -. theta);
    z_eta = eta;
    z_half_pow = half_pow;
  }

let zipf_n z = z.z_n
let zipf_theta z = z.z_theta

let zipf t z =
  let u = float t 1.0 in
  let uz = u *. z.z_zetan in
  if uz < 1. then 0
  else if uz < 1. +. z.z_half_pow then 1
  else
    let r =
      int_of_float
        (float_of_int z.z_n *. (((z.z_eta *. u) -. z.z_eta +. 1.) ** z.z_alpha))
    in
    (* Floating-point edge as u -> 1 can land exactly on n. *)
    if r >= z.z_n then z.z_n - 1 else if r < 0 then 0 else r
