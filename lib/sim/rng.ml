(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. Chosen because it is tiny, fast, splittable and
   has well-understood statistical quality. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix64 (next_seed t)

let split t =
  let seed = bits64 t in
  { state = seed }

(* Rejection sampling over 63 uniform bits (Java's nextInt idiom): draw,
   reduce, and retry whenever the draw falls in the short tail
   [2^63 - 2^63 mod bound, 2^63), which a plain [mod] would fold onto the
   low residues and bias them by up to bound/2^63. The overflow test
   [bits - r + (bound - 1) < 0] detects exactly those tail draws. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let b = Int64.of_int bound in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let r = Int64.rem bits b in
    if Int64.compare (Int64.add (Int64.sub bits r) (Int64.sub b 1L)) 0L < 0 then draw ()
    else Int64.to_int r
  in
  draw ()

let float t bound =
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 2^53 possible values in [0, 1). *)
  bound *. (bits /. 9007199254740992.0)
