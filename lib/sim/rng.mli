(** Deterministic splitmix64 random number generator.

    The simulator must be reproducible across runs and independent of the
    global [Random] state, so every stochastic component draws from its own
    [Rng.t] seeded from the experiment configuration. *)

type t

val create : seed:int -> t

(** [split t] derives an independent generator, leaving [t] advanced. *)
val split : t -> t

(** [int t bound] draws uniformly from [0 .. bound-1] by rejection
    sampling (no modulo bias). Raises [Invalid_argument] unless [bound]
    is positive. *)
val int : t -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [bits64 t] draws 64 uniformly random bits. *)
val bits64 : t -> int64
