(** Deterministic splitmix64 random number generator.

    The simulator must be reproducible across runs and independent of the
    global [Random] state, so every stochastic component draws from its own
    [Rng.t] seeded from the experiment configuration. *)

type t

val create : seed:int -> t

(** [split t] derives an independent generator, leaving [t] advanced. *)
val split : t -> t

(** [int t bound] draws uniformly from [0 .. bound-1] by rejection
    sampling (no modulo bias). Raises [Invalid_argument] unless [bound]
    is positive. *)
val int : t -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [bits64 t] draws 64 uniformly random bits. *)
val bits64 : t -> int64

(** {1 Zipfian sampling}

    Constant-time Zipfian rank sampler after Gray et al. (SIGMOD 1994),
    the YCSB workload-generator construction: the harmonic normalizer is
    precomputed once, so each draw costs one uniform variate. *)

type zipf

(** [zipf_create ~n ~theta] prepares a sampler over ranks
    [0 .. n-1] with skew [theta]. Rank 0 is the most popular;
    [theta = 0.] degenerates to the uniform distribution and skew grows
    with [theta]. Raises [Invalid_argument] unless [n >= 1] and
    [theta] is in [\[0, 1)]. *)
val zipf_create : n:int -> theta:float -> zipf

(** [zipf t z] draws a rank in [0 .. n-1], consuming one variate of [t]. *)
val zipf : t -> zipf -> int

val zipf_n : zipf -> int
val zipf_theta : zipf -> float
