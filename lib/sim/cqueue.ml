(* Calendar queue (Brown 1988) specialised for the engine's workload:
   keys are simulated timestamps that mostly increase, so most pushes land
   in or near the bucket currently being drained and both push and pop are
   O(1) amortised, versus O(log n) for the binary heap.

   Ordering contract (must match [Heap] exactly, byte-for-byte on traces):
   entries pop in lexicographic ((key, seq)) order, where [seq] is the
   global push counter — equal keys pop in insertion order.

   Correctness shape: each entry is assigned an integer *window* index
   [wind = trunc (key /. width)] at insertion. Windows are deterministic
   and monotone in [key] (division by a positive width and truncation both
   preserve order), and equal keys always share a window, so draining
   windows in increasing order and each bucket in sorted (key, seq) order
   reproduces the global order. The scan compares window *indices*, never
   recomputed float window boundaries, so no rounding edge can skip or
   reorder a window.

   Storage is pooled per bucket as parallel arrays (flat unboxed float
   keys, int seqs and windows, ['a option] slots cleared on pop) instead
   of per-entry records: a push writes into preallocated slots and
   allocates only the [Some] cell, and a popped entry leaves nothing
   reachable behind. *)

type 'a bucket = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable winds : int array;
  mutable vals : 'a option array;
  mutable head : int; (* first live slot; live slots are head..head+len-1 *)
  mutable len : int;
}

type 'a t = {
  mutable buckets : 'a bucket array;
  mutable mask : int; (* Array.length buckets - 1; bucket count is a power of 2 *)
  mutable width : float; (* simulated-time span mapped to one window *)
  mutable size : int;
  mutable next_seq : int;
  mutable cur_wind : int; (* the window the next pop starts scanning from *)
  mutable grow_at : int;
  mutable shrink_at : int;
}

let min_buckets = 16

let new_bucket () =
  { keys = [||]; seqs = [||]; winds = [||]; vals = [||]; head = 0; len = 0 }

let thresholds t =
  let n = Array.length t.buckets in
  t.grow_at <- 2 * n;
  t.shrink_at <- (if n <= min_buckets then 0 else n / 2)

let create ?(capacity = 0) () =
  let n = ref min_buckets in
  while !n < capacity do
    n := !n * 2
  done;
  let t =
    {
      buckets = Array.init !n (fun _ -> new_bucket ());
      mask = !n - 1;
      width = 1.0;
      size = 0;
      next_seq = 0;
      cur_wind = 0;
      grow_at = 0;
      shrink_at = 0;
    }
  in
  thresholds t;
  t

let length t = t.size

let is_empty t = t.size = 0

(* Truncating window index, clamped so huge key/width ratios cannot
   overflow the int conversion (everything degenerate lands in one
   window, which is slow but still ordered correctly). *)
let window_of t key =
  let q = key /. t.width in
  if q >= 4.0e18 then max_int / 2 else int_of_float q

let bucket_grow b =
  let cap = Array.length b.keys in
  if b.head + b.len = cap then
    if b.head > 0 then begin
      (* Compact: reclaim the slots vacated by pops before growing. *)
      Array.blit b.keys b.head b.keys 0 b.len;
      Array.blit b.seqs b.head b.seqs 0 b.len;
      Array.blit b.winds b.head b.winds 0 b.len;
      Array.blit b.vals b.head b.vals 0 b.len;
      Array.fill b.vals b.len (b.head) None;
      b.head <- 0
    end
    else begin
      let cap' = max 8 (2 * cap) in
      let keys' = Array.make cap' 0.0 in
      let seqs' = Array.make cap' 0 in
      let winds' = Array.make cap' 0 in
      let vals' = Array.make cap' None in
      Array.blit b.keys 0 keys' 0 cap;
      Array.blit b.seqs 0 seqs' 0 cap;
      Array.blit b.winds 0 winds' 0 cap;
      Array.blit b.vals 0 vals' 0 cap;
      b.keys <- keys';
      b.seqs <- seqs';
      b.winds <- winds';
      b.vals <- vals'
    end

(* Sorted insertion, scanning from the tail: keys mostly arrive in
   increasing order, so the common case is an append. The comparison is on
   (key, seq) so reinsertion during a resize stays stable even when
   entries are revisited out of push order. *)
let bucket_insert b key seq wind v =
  bucket_grow b;
  let lo = b.head in
  let pos = ref (b.head + b.len) in
  while
    !pos > lo
    &&
    let k = Array.unsafe_get b.keys (!pos - 1) in
    k > key || (k = key && Array.unsafe_get b.seqs (!pos - 1) > seq)
  do
    decr pos
  done;
  let tail = b.head + b.len in
  let moving = tail - !pos in
  if moving > 0 then begin
    Array.blit b.keys !pos b.keys (!pos + 1) moving;
    Array.blit b.seqs !pos b.seqs (!pos + 1) moving;
    Array.blit b.winds !pos b.winds (!pos + 1) moving;
    Array.blit b.vals !pos b.vals (!pos + 1) moving
  end;
  b.keys.(!pos) <- key;
  b.seqs.(!pos) <- seq;
  b.winds.(!pos) <- wind;
  b.vals.(!pos) <- v;
  b.len <- b.len + 1

let insert t key seq v =
  let wind = window_of t key in
  bucket_insert t.buckets.(wind land t.mask) key seq wind v;
  if t.size = 0 || wind < t.cur_wind then t.cur_wind <- wind;
  t.size <- t.size + 1

(* Rebuild with a bucket count proportional to the population and a width
   matched to the observed key span. Order is untouched: it is fully
   determined by the stored (key, seq) pairs. *)
let resize t nbuckets' =
  let n = t.size in
  let keys = Array.make n 0.0 in
  let seqs = Array.make n 0 in
  let vals = Array.make n None in
  let j = ref 0 in
  Array.iter
    (fun b ->
      for i = b.head to b.head + b.len - 1 do
        keys.(!j) <- b.keys.(i);
        seqs.(!j) <- b.seqs.(i);
        vals.(!j) <- b.vals.(i);
        incr j
      done)
    t.buckets;
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun k ->
      if k < !lo then lo := k;
      if k > !hi then hi := k)
    keys;
  let span = !hi -. !lo in
  let width =
    if n > 0 && span > 0. then span /. float_of_int n else t.width
  in
  t.buckets <- Array.init nbuckets' (fun _ -> new_bucket ());
  t.mask <- nbuckets' - 1;
  t.width <- (if width > 0. && Float.is_finite width then width else 1.0);
  t.size <- 0;
  thresholds t;
  for i = 0 to n - 1 do
    insert t keys.(i) seqs.(i) vals.(i)
  done

let push t ~key v =
  if Float.is_nan key then invalid_arg "Sim.Cqueue.push: NaN key";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if t.size >= t.grow_at then resize t (2 * Array.length t.buckets);
  insert t key seq (Some v)

let bucket_front_lt buckets i j =
  let bi = buckets.(i) and bj = buckets.(j) in
  let ki = bi.keys.(bi.head) and kj = bj.keys.(bj.head) in
  ki < kj || (ki = kj && bi.seqs.(bi.head) < bj.seqs.(bj.head))

(* The global minimum is always some bucket's front (buckets are sorted),
   so a linear scan over fronts finds it. Used when a full year scan comes
   up empty (the next event is more than [nbuckets] windows away) and by
   [peek_min]. *)
let min_front_bucket t =
  let best = ref (-1) in
  Array.iteri
    (fun i b ->
      if b.len > 0 && (!best < 0 || bucket_front_lt t.buckets i !best) then
        best := i)
    t.buckets;
  !best

let bucket_pop t b =
  let key = b.keys.(b.head) in
  let v =
    match b.vals.(b.head) with
    | Some v -> v
    | None -> assert false (* live slots always carry a payload *)
  in
  b.vals.(b.head) <- None;
  b.head <- b.head + 1;
  b.len <- b.len - 1;
  if b.len = 0 then b.head <- 0;
  t.size <- t.size - 1;
  if t.size < t.shrink_at then
    resize t (max min_buckets (Array.length t.buckets / 2));
  (key, v)

let pop_min t =
  if t.size = 0 then invalid_arg "Sim.Cqueue.pop_min: queue is empty";
  let nbuckets = Array.length t.buckets in
  let found = ref (-1) in
  let w = ref t.cur_wind in
  let scanned = ref 0 in
  while !found < 0 && !scanned < nbuckets do
    let b = t.buckets.(!w land t.mask) in
    if b.len > 0 && Array.unsafe_get b.winds b.head = !w then found := !w
    else begin
      incr w;
      incr scanned
    end
  done;
  let b_idx =
    if !found >= 0 then begin
      t.cur_wind <- !found;
      !found land t.mask
    end
    else begin
      (* Sparse tail: jump straight to the bucket holding the minimum. *)
      let i = min_front_bucket t in
      let b = t.buckets.(i) in
      t.cur_wind <- b.winds.(b.head);
      i
    end
  in
  bucket_pop t t.buckets.(b_idx)

let peek_min t =
  if t.size = 0 then invalid_arg "Sim.Cqueue.peek_min: queue is empty";
  let b = t.buckets.(min_front_bucket t) in
  match b.vals.(b.head) with
  | Some v -> (b.keys.(b.head), v)
  | None -> assert false

let clear t =
  Array.iter
    (fun b ->
      Array.fill b.vals 0 (Array.length b.vals) None;
      b.head <- 0;
      b.len <- 0)
    t.buckets;
  t.size <- 0;
  t.cur_wind <- 0
