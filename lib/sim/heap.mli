(** Imperative binary min-heap keyed by [float * int].

    The integer component is a tie-breaker so that two entries with equal
    float keys pop in insertion order, which keeps discrete-event simulations
    deterministic. *)

type 'a t

(** [create ?capacity ()] presizes for [capacity] entries, for callers
    that know the event population up front. *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ~key v] inserts [v] with priority [key]. Entries with equal keys
    pop in FIFO order. *)
val push : 'a t -> key:float -> 'a -> unit

(** [pop_min h] removes and returns the minimum entry as [(key, v)]. The
    heap drops its reference to [v] — long-lived heaps never pin popped
    payloads (event closures, page data) in vacated backing-array slots.
    @raise Invalid_argument if the heap is empty. *)
val pop_min : 'a t -> float * 'a

(** [peek_min h] returns the minimum entry without removing it.
    @raise Invalid_argument if the heap is empty. *)
val peek_min : 'a t -> float * 'a

val clear : 'a t -> unit
