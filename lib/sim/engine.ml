(* The event set is a calendar queue rather than the binary heap: same
   (key, insertion order) pop contract — golden traces are byte-identical —
   but O(1) amortised scheduling for mostly-increasing timestamps and no
   per-entry record allocation. *)
type t = {
  queue : (unit -> unit) Cqueue.t;
  mutable now : float;
  mutable executed : int;
}

(* Tolerance for float rounding when protocol code computes "now + cost" and
   the addition rounds just below the current time. *)
let epsilon = 1e-9

let create ?capacity () = { queue = Cqueue.create ?capacity (); now = 0.; executed = 0 }

let now t = t.now

let schedule t ~at f =
  if at < t.now -. epsilon then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.9f is before now=%.9f" at t.now);
  Cqueue.push t.queue ~key:(Float.max at t.now) f

let step t =
  if Cqueue.is_empty t.queue then false
  else begin
    let time, event = Cqueue.pop_min t.queue in
    t.now <- time;
    t.executed <- t.executed + 1;
    event ();
    true
  end

let run t =
  while step t do
    ()
  done;
  t.now

let pending t = Cqueue.length t.queue

let executed t = t.executed
