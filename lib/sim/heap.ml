(* The payload lives in a mutable field cleared by [pop_min]: a popped
   entry can stay reachable from vacated backing-array slots (the swap-down
   copy, or the fill slots [grow] seeds) until those slots are overwritten,
   and a 4-word husk there is harmless — but the payload it used to carry
   (an event closure pinning continuations and page data in the simulator)
   must not be. *)
type 'a entry = { key : float; seq : int; mutable value : 'a option }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  hint : int;
}

(* [capacity] presizes the backing array lazily: the first [grow] jumps
   straight to the hint instead of doubling from 16, so heaps with a
   predictable population never re-grow in a tight loop. *)
let create ?(capacity = 0) () = { data = [||]; size = 0; next_seq = 0; hint = max 0 capacity }

let length h = h.size

let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h entry =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let capacity' = max h.hint (max 16 (2 * capacity)) in
    let data' = Array.make capacity' entry in
    Array.blit h.data 0 data' 0 h.size;
    h.data <- data'
  end

let rec sift_up data i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less data.(i) data.(parent) then begin
      let tmp = data.(i) in
      data.(i) <- data.(parent);
      data.(parent) <- tmp;
      sift_up data parent
    end
  end

let rec sift_down data size i =
  let left = (2 * i) + 1 in
  if left < size then begin
    let right = left + 1 in
    let smallest = if right < size && less data.(right) data.(left) then right else left in
    if less data.(smallest) data.(i) then begin
      let tmp = data.(i) in
      data.(i) <- data.(smallest);
      data.(smallest) <- tmp;
      sift_down data size smallest
    end
  end

let push h ~key value =
  let entry = { key; seq = h.next_seq; value = Some value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h.data (h.size - 1)

let pop_min h =
  if h.size = 0 then invalid_arg "Sim.Heap.pop_min: heap is empty";
  let min = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h.data h.size 0
  end;
  let v =
    match min.value with
    | Some v -> v
    | None -> assert false (* only [pop_min] clears, and it removes the entry *)
  in
  min.value <- None;
  (min.key, v)

let peek_min h =
  if h.size = 0 then invalid_arg "Sim.Heap.peek_min: heap is empty";
  let min = h.data.(0) in
  match min.value with
  | Some v -> (min.key, v)
  | None -> assert false

let clear h =
  h.data <- [||];
  h.size <- 0
