(** Sequential discrete-event simulation engine.

    Events are thunks scheduled at absolute simulated times (microseconds in
    this project, though the engine itself is unit-agnostic). Events with
    equal timestamps fire in scheduling order, which makes runs fully
    deterministic. *)

type t

(** [create ?capacity ()] sizes the event set for roughly [capacity]
    concurrently pending events when the caller can predict it (the
    simulator pends a handful of events per node). *)
val create : ?capacity:int -> unit -> t

(** Current simulated time: the timestamp of the event being executed, or the
    last executed event when idle. Starts at [0.]. *)
val now : t -> float

(** [schedule t ~at f] enqueues [f] to run at absolute time [at]. Scheduling
    in the past (before [now t]) is a programming error and raises
    [Invalid_argument]; a small tolerance absorbs float rounding. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [run t] executes events in timestamp order until the queue drains.
    Returns the final simulated time. *)
val run : t -> float

(** [step t] executes the single earliest event. Returns [false] when the
    queue is empty. *)
val step : t -> bool

val pending : t -> int

(** Number of events executed so far. *)
val executed : t -> int
