(* Reliable FIFO transport over a chaotic network: per-link sequence
   numbers, receiver dedup + reorder buffer, cumulative acks, and sender
   retransmission with exponential backoff up to a retry cap.

   Everything observable is reported through [notify]; the transport keeps
   no statistics of its own and never raises — an abandoned packet is
   recorded and surfaced via [describe_pending] so a watchdog can diagnose
   the stall if anyone was actually waiting on it. *)

type notice =
  | Dropped of { src : int; dst : int; seq : int; bytes : int; ack : bool }
  | Duplicated of { src : int; dst : int; seq : int }
  | Retransmit of { src : int; dst : int; seq : int; retries : int; bytes : int; rto : float }
  | Dup_dropped of { src : int; dst : int; seq : int }
  | Ack_sent of { src : int; dst : int; upto : int }
  | Gave_up of { src : int; dst : int; seq : int; retries : int }
  | Peer_dead of { src : int; dst : int; seq : int; bytes : int }

let seq_bytes = 8

let ack_bytes = 16

(* Pooled: a transport recycles packet records through a free list. A
   packet may be captured by scheduled closures (retransmission timers,
   in-flight copies) that fire after the ack, so recycling is refcounted:
   [p_refs] counts pending closures, and a packet returns to the pool only
   when the last one fires with the packet no longer in flight. The
   handler is swapped for a dummy at that point so a pooled husk never
   pins an application closure (same discipline as the event queues). *)
type packet = {
  mutable p_seq : int;
  mutable p_bytes : int;
  mutable p_handler : float -> unit;
  mutable p_retries : int;
  mutable p_rto : float;
  mutable p_refs : int;
}

type link = {
  l_src : int;
  l_dst : int;
  mutable l_next_seq : int;  (* sender: next sequence number to assign *)
  l_inflight : (int, packet) Hashtbl.t;  (* sender: sent, not yet acked *)
  mutable l_expected : int;  (* receiver: next in-order sequence number *)
  l_reorder : (int, float -> unit) Hashtbl.t;  (* receiver: seq -> handler *)
  mutable l_last_deliver : float;  (* receiver: FIFO clamp *)
  mutable l_gave_up : (int * int) list;  (* (seq, retries), newest first *)
}

type t = {
  engine : Sim.Engine.t;
  net : Network.t;
  chaos : Chaos.t;
  max_retries : int;
  notify : time:float -> notice -> unit;
  links : (int * int, link) Hashtbl.t;
  mutable pool : packet list;  (* free packets, recycled by [release] *)
  dead : (int, unit) Hashtbl.t;  (* crash-stopped peers, via [kill_peer] *)
  mutable hb_sent : int;  (* heartbeat copies put on the wire *)
}

let create ~engine ~net ~chaos ?(max_retries = 10) ~notify () =
  {
    engine;
    net;
    chaos;
    max_retries;
    notify;
    links = Hashtbl.create 64;
    pool = [];
    dead = Hashtbl.create 4;
    hb_sent = 0;
  }

(* A node's links are down at [time] if it crash-stopped or sits inside a
   pause (gray-failure) window of the chaos schedule. *)
let down_at t node ~time =
  Hashtbl.mem t.dead node || Chaos.silenced (Chaos.params t.chaos) ~node ~time

(* A directed link is cut at [time] if an active partition puts its
   endpoints on opposite sides. Checked at both ends of every copy's
   flight, so a partition also guillotines copies already in the air. *)
let severed t ~src ~dst ~time = Chaos.severed_t t.chaos ~src ~dst ~time

let dummy_handler (_ : float) = ()

(* Drop one closure's claim on [p]; recycle once nothing can fire for it.
   While a packet is in flight its retransmission timer always holds a
   reference, so an in-flight packet is never recycled. *)
let release t l (p : packet) =
  p.p_refs <- p.p_refs - 1;
  if p.p_refs = 0 && not (Hashtbl.mem l.l_inflight p.p_seq) then begin
    p.p_handler <- dummy_handler;
    t.pool <- p :: t.pool
  end

let alloc_packet t ~seq ~bytes ~handler ~rto =
  match t.pool with
  | p :: rest ->
      t.pool <- rest;
      p.p_seq <- seq;
      p.p_bytes <- bytes;
      p.p_handler <- handler;
      p.p_retries <- 0;
      p.p_rto <- rto;
      p
  | [] ->
      { p_seq = seq; p_bytes = bytes; p_handler = handler; p_retries = 0; p_rto = rto; p_refs = 0 }

let link t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some l -> l
  | None ->
      let l =
        {
          l_src = src;
          l_dst = dst;
          l_next_seq = 0;
          l_inflight = Hashtbl.create 8;
          l_expected = 0;
          l_reorder = Hashtbl.create 8;
          l_last_deliver = 0.;
          l_gave_up = [];
        }
      in
      Hashtbl.replace t.links (src, dst) l;
      l

(* Initial retransmission timeout: a generous round trip (payload out, ack
   back) plus headroom for the worst jitter spike on both legs, so a
   healthy exchange almost never fires the timer. *)
let initial_rto t l ~bytes =
  let fwd =
    Network.transfer_time t.net ~src:l.l_src ~dst:l.l_dst ~bytes:(bytes + seq_bytes)
  in
  let back = Network.transfer_time t.net ~src:l.l_dst ~dst:l.l_src ~bytes:ack_bytes in
  (2.0 *. (fwd +. back)) +. (2.0 *. Chaos.max_delay t.chaos) +. 100.

(* --- receiver ------------------------------------------------------- *)

(* The ack is cumulative ([upto] = contiguous prefix delivered) plus
   selective ([received] = the seq of the copy that triggered it): a packet
   held in the reorder buffer — possibly for a long time, since a link's
   sequence order follows send-call order while send timestamps need not be
   monotone — must still stop its sender's retransmission timer. *)
let send_ack t l ~at ~received =
  let upto = l.l_expected - 1 in
  t.notify ~time:at (Ack_sent { src = l.l_src; dst = l.l_dst; upto });
  let v = Chaos.judge t.chaos ~src:l.l_dst ~dst:l.l_src in
  let transfer = Network.transfer_time t.net ~src:l.l_dst ~dst:l.l_src ~bytes:ack_bytes in
  let deliver_copy delay =
    Sim.Engine.schedule t.engine ~at:(at +. transfer +. delay) (fun () ->
        let now = Sim.Engine.now t.engine in
        if
          (not (down_at t l.l_src ~time:now))
          && not (severed t ~src:l.l_dst ~dst:l.l_src ~time:now)
        then begin
          let acked =
            Hashtbl.fold (fun seq _ acc -> if seq <= upto then seq :: acc else acc) l.l_inflight []
          in
          List.iter (Hashtbl.remove l.l_inflight) acked;
          Hashtbl.remove l.l_inflight received
        end)
  in
  if
    v.Chaos.drop || down_at t l.l_dst ~time:at
    || severed t ~src:l.l_dst ~dst:l.l_src ~time:at
  then
    t.notify ~time:at
      (Dropped { src = l.l_src; dst = l.l_dst; seq = upto; bytes = ack_bytes; ack = true })
  else deliver_copy v.Chaos.delay;
  if v.Chaos.duplicate then deliver_copy v.Chaos.dup_delay

let deliver t l handler ~at =
  (* Per-link FIFO clamp, as on the lossless path: a delivery never lands
     at or before the previous one on the same link. *)
  let slot = if at <= l.l_last_deliver then l.l_last_deliver +. 1e-6 else at in
  l.l_last_deliver <- slot;
  Sim.Engine.schedule t.engine ~at:slot (fun () ->
      if not (Hashtbl.mem t.dead l.l_dst) then handler slot)

let receive t l ~seq ~handler ~at =
  if seq < l.l_expected || Hashtbl.mem l.l_reorder seq then
    (* Duplicate (retransmission of something already delivered/buffered). *)
    t.notify ~time:at (Dup_dropped { src = l.l_src; dst = l.l_dst; seq })
  else begin
    Hashtbl.replace l.l_reorder seq handler;
    (* Drain the in-order prefix; a gap leaves later packets buffered. *)
    while Hashtbl.mem l.l_reorder l.l_expected do
      let h = Hashtbl.find l.l_reorder l.l_expected in
      Hashtbl.remove l.l_reorder l.l_expected;
      l.l_expected <- l.l_expected + 1;
      deliver t l h ~at
    done
  end;
  (* One ack per received copy (also re-acks duplicates, which is what
     unblocks a sender whose original ack was lost). *)
  send_ack t l ~at ~received:seq

(* --- sender --------------------------------------------------------- *)

let transmit t l (p : packet) ~at =
  let v = Chaos.judge t.chaos ~src:l.l_src ~dst:l.l_dst in
  let transfer =
    Network.transfer_time t.net ~src:l.l_src ~dst:l.l_dst ~bytes:(p.p_bytes + seq_bytes)
  in
  let copy delay =
    p.p_refs <- p.p_refs + 1;
    Sim.Engine.schedule t.engine
      ~at:(at +. transfer +. delay)
      (fun () ->
        let seq = p.p_seq and bytes = p.p_bytes and handler = p.p_handler in
        release t l p;
        let now = Sim.Engine.now t.engine in
        if Hashtbl.mem t.dead l.l_dst then
          t.notify ~time:now (Peer_dead { src = l.l_src; dst = l.l_dst; seq; bytes })
        else if
          down_at t l.l_dst ~time:now
          || severed t ~src:l.l_src ~dst:l.l_dst ~time:now
        then
          (* Paused receiver or partitioned link: the copy is lost;
             retransmission heals it once the fault clears. *)
          t.notify ~time:now
            (Dropped { src = l.l_src; dst = l.l_dst; seq; bytes; ack = false })
        else receive t l ~seq ~handler ~at:now)
  in
  if
    v.Chaos.drop || down_at t l.l_src ~time:at
    || severed t ~src:l.l_src ~dst:l.l_dst ~time:at
  then
    t.notify ~time:at
      (Dropped { src = l.l_src; dst = l.l_dst; seq = p.p_seq; bytes = p.p_bytes; ack = false })
  else copy v.Chaos.delay;
  if v.Chaos.duplicate then begin
    t.notify ~time:at (Duplicated { src = l.l_src; dst = l.l_dst; seq = p.p_seq });
    copy v.Chaos.dup_delay
  end

let rec arm_timer t l (p : packet) ~at =
  p.p_refs <- p.p_refs + 1;
  (* Seeded per-link jitter on the armed delay (the nominal [p_rto] keeps
     doubling cleanly): without it, every sender stranded by a partition
     fires its timer in lockstep when the link heals — a synchronized
     retransmit storm. *)
  let delay = p.p_rto *. Chaos.backoff_factor t.chaos ~src:l.l_src ~dst:l.l_dst in
  Sim.Engine.schedule t.engine ~at:(at +. delay) (fun () ->
      if not (Hashtbl.mem l.l_inflight p.p_seq) then release t l p
      else begin
        let now = Sim.Engine.now t.engine in
        if p.p_retries >= t.max_retries then begin
          Hashtbl.remove l.l_inflight p.p_seq;
          l.l_gave_up <- (p.p_seq, p.p_retries) :: l.l_gave_up;
          t.notify ~time:now
            (Gave_up { src = l.l_src; dst = l.l_dst; seq = p.p_seq; retries = p.p_retries });
          release t l p
        end
        else begin
          (* [waited] is the timeout that just expired (captured before the
             backoff doubling): the observed retransmit latency. *)
          let waited = p.p_rto in
          p.p_retries <- p.p_retries + 1;
          p.p_rto <- p.p_rto *. 2.0;
          t.notify ~time:now
            (Retransmit
               {
                 src = l.l_src;
                 dst = l.l_dst;
                 seq = p.p_seq;
                 retries = p.p_retries;
                 bytes = p.p_bytes;
                 rto = waited;
               });
          transmit t l p ~at:now;
          arm_timer t l p ~at:now;
          release t l p
        end
      end)

let send t ~src ~dst ~at ~bytes handler =
  if src = dst then invalid_arg "Transport.send: loopback is the caller's fast path";
  if Hashtbl.mem t.dead dst || Hashtbl.mem t.dead src then
    (* No sequence number, no timer, no retransmission storm: the send is
       abandoned up front ([seq = -1] marks the never-transmitted case). *)
    t.notify ~time:at (Peer_dead { src; dst; seq = -1; bytes })
  else begin
    let l = link t ~src ~dst in
    let p =
      alloc_packet t ~seq:l.l_next_seq ~bytes ~handler ~rto:(initial_rto t l ~bytes)
    in
    l.l_next_seq <- l.l_next_seq + 1;
    Hashtbl.replace l.l_inflight p.p_seq p;
    transmit t l p ~at;
    arm_timer t l p ~at
  end

(* --- heartbeats ------------------------------------------------------ *)

let hb_bytes = 8

(* Heartbeats are deliberately *unreliable*: no sequence numbers, no
   retransmission, no acks — a missed ping is exactly the signal the
   suspector exists to interpret. Each copy is charged to the timing model
   ([Network.transfer_time] plus the chaos verdict's jitter) and judged on
   the same per-link streams as payload traffic, so a lossy or partitioned
   link starves the observer honestly. Nothing is notified per heartbeat
   (they would drown the trace); [hb_sent] counts the copies for the
   report's availability block. *)
let start_heartbeats t ~nprocs ~interval ~timeout ~active ~on_suspect ~on_refute =
  if interval <= 0. then invalid_arg "Transport.start_heartbeats: interval must be > 0";
  if timeout <= 0. then invalid_arg "Transport.start_heartbeats: timeout must be > 0";
  let start = Sim.Engine.now t.engine in
  (* observer -> peer matrices; [last.(o).(p)] = last time o heard p. *)
  let last = Array.make_matrix nprocs nprocs start in
  let suspected = Array.make_matrix nprocs nprocs false in
  (* Seeded per-node phase offsets desynchronize the emission ticks (and
     therefore the suspicion checks) across nodes. *)
  let phase_rng =
    Sim.Rng.create ~seed:((Chaos.params t.chaos).Chaos.fault_seed + 0x48b2)
  in
  let phases = Array.init nprocs (fun _ -> Sim.Rng.float phase_rng interval) in
  let beam node peer ~now =
    let v = Chaos.judge t.chaos ~src:node ~dst:peer in
    let transfer = Network.transfer_time t.net ~src:node ~dst:peer ~bytes:hb_bytes in
    t.hb_sent <- t.hb_sent + 1;
    if
      (not v.Chaos.drop)
      && (not (down_at t node ~time:now))
      && not (severed t ~src:node ~dst:peer ~time:now)
    then
      Sim.Engine.schedule t.engine ~at:(now +. transfer +. v.Chaos.delay) (fun () ->
          let arrival = Sim.Engine.now t.engine in
          if
            (not (Hashtbl.mem t.dead peer))
            && (not (down_at t peer ~time:arrival))
            && not (severed t ~src:node ~dst:peer ~time:arrival)
          then begin
            last.(peer).(node) <- arrival;
            if suspected.(peer).(node) then begin
              suspected.(peer).(node) <- false;
              on_refute ~by:peer ~peer:node ~time:arrival
            end
          end)
  in
  (* One tick per node per interval: emit a ping to every peer, then audit
     the node's own view for peers gone quiet past the timeout. A killed
     node's tick stops re-arming (and with it its suspicions); a paused
     node keeps ticking — it cannot hear anyone, so it suspects everyone,
     which is precisely the false-suspicion storm quorum must survive. *)
  let rec tick node () =
    let now = Sim.Engine.now t.engine in
    if active () && not (Hashtbl.mem t.dead node) then begin
      for peer = 0 to nprocs - 1 do
        if peer <> node then begin
          if not (Hashtbl.mem t.dead peer) then beam node peer ~now;
          if (not suspected.(node).(peer)) && now -. last.(node).(peer) > timeout
          then begin
            suspected.(node).(peer) <- true;
            on_suspect ~by:node ~peer ~time:now
          end
        end
      done;
      Sim.Engine.schedule t.engine ~at:(now +. interval) (tick node)
    end
  in
  for node = 0 to nprocs - 1 do
    Sim.Engine.schedule t.engine ~at:(start +. phases.(node)) (tick node)
  done

let heartbeats_sent t = t.hb_sent

(* --- diagnostics ---------------------------------------------------- *)

let fold_links t f acc =
  Hashtbl.fold (fun _ l acc -> f acc l) t.links acc

(* Crash-stop [peer]: every packet in flight on a link touching it is
   abandoned now — removed from the in-flight table so the already-armed
   backoff timers find nothing to do and just release their packet to the
   pool (cancellation without retransmission), and reported as [Peer_dead]
   instead of silently burning the retry cap. Future sends to or from the
   peer are refused up front in [send]. *)
let kill_peer t ~peer ~time =
  Hashtbl.replace t.dead peer ();
  let links =
    fold_links t (fun acc l -> if l.l_src = peer || l.l_dst = peer then l :: acc else acc) []
    |> List.sort (fun a b -> compare (a.l_src, a.l_dst) (b.l_src, b.l_dst))
  in
  List.iter
    (fun l ->
      let pending =
        Hashtbl.fold (fun seq p acc -> (seq, p) :: acc) l.l_inflight [] |> List.sort compare
      in
      List.iter
        (fun (seq, p) ->
          Hashtbl.remove l.l_inflight seq;
          t.notify ~time (Peer_dead { src = l.l_src; dst = l.l_dst; seq; bytes = p.p_bytes }))
        pending)
    links

let inflight_count t = fold_links t (fun acc l -> acc + Hashtbl.length l.l_inflight) 0

let gave_up_count t = fold_links t (fun acc l -> acc + List.length l.l_gave_up) 0

let describe_pending t =
  let links =
    fold_links t (fun acc l -> l :: acc) []
    |> List.sort (fun a b -> compare (a.l_src, a.l_dst) (b.l_src, b.l_dst))
  in
  List.concat_map
    (fun l ->
      let inflight =
        Hashtbl.fold (fun seq p acc -> (seq, p) :: acc) l.l_inflight []
        |> List.sort compare
        |> List.map (fun (seq, p) ->
               Printf.sprintf "link %d->%d: seq %d unacked (%d bytes, %d retransmissions)"
                 l.l_src l.l_dst seq p.p_bytes p.p_retries)
      in
      let gave_up =
        List.rev_map
          (fun (seq, retries) ->
            Printf.sprintf "link %d->%d: seq %d ABANDONED after %d retransmissions" l.l_src
              l.l_dst seq retries)
          l.l_gave_up
      in
      inflight @ gave_up)
    links
