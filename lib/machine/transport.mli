(** Reliable, FIFO message transport over a faulty network.

    Sits between a message-passing layer and {!Chaos}: every payload sent on
    a directed link gets a per-link sequence number; the receiver
    deduplicates, holds out-of-order arrivals in a reorder buffer, and
    delivers strictly in sequence order — restoring the FIFO contract the
    SVM protocols assume — while acknowledging cumulatively. The sender
    retransmits unacknowledged packets on a timer with exponential backoff,
    up to a retry cap, after which it gives up and records the loss (a
    no-progress watchdog turns that into a diagnostic failure; the transport
    itself never raises, because a dropped-forever message after all nodes
    finished is benign).

    Costs are charged to the simulated timing model: every copy (original,
    duplicate or retransmission) pays the normal {!Network.transfer_time}
    plus [seq_bytes] of header, acks pay [ack_bytes], and the chaos verdict's
    jitter adds to each copy's latency. The transport itself holds no
    statistics; it reports everything observable through the [notify]
    callback so the caller can do the accounting and tracing. *)

(** Observable transport actions, reported through [notify] as they happen.
    Directions: [src]/[dst] are always payload-sender / payload-receiver,
    even for acks (which travel dst -> src). *)
type notice =
  | Dropped of { src : int; dst : int; seq : int; bytes : int; ack : bool }
      (** The network lost a copy ([ack] distinguishes lost acks). *)
  | Duplicated of { src : int; dst : int; seq : int }
      (** The network duplicated a copy in flight. *)
  | Retransmit of { src : int; dst : int; seq : int; retries : int; bytes : int; rto : float }
      (** Sender timeout: one more copy on the wire. *)
  | Dup_dropped of { src : int; dst : int; seq : int }
      (** Receiver discarded an already-delivered sequence number. *)
  | Ack_sent of { src : int; dst : int; upto : int }
      (** Receiver acknowledged everything up to [upto] inclusive, plus
          (selectively) the copy that triggered the ack, which may sit in
          the reorder buffer above a gap. *)
  | Gave_up of { src : int; dst : int; seq : int; retries : int }
      (** Retry cap hit; the packet will never be delivered. *)
  | Peer_dead of { src : int; dst : int; seq : int; bytes : int }
      (** The packet was abandoned because one endpoint crash-stopped:
          either cancelled in flight by {!kill_peer}, refused at
          {!send} ([seq = -1], never transmitted), or its copy arrived
          at a dead receiver. No retransmission will follow. *)

type t

(** Wire overhead of the sequence/ack header added to every payload copy. *)
val seq_bytes : int

(** Size of a standalone cumulative acknowledgement message. *)
val ack_bytes : int

val create :
  engine:Sim.Engine.t ->
  net:Network.t ->
  chaos:Chaos.t ->
  ?max_retries:int ->
  notify:(time:float -> notice -> unit) ->
  unit ->
  t

(** [send t ~src ~dst ~at ~bytes handler] hands one payload to the
    transport at time [at]. [handler] runs exactly once, at the payload's
    in-order delivery time, or never if the retry cap is hit. Loopback
    ([src = dst]) is not supported here; callers short-circuit it. *)
val send : t -> src:int -> dst:int -> at:float -> bytes:int -> (float -> unit) -> unit

(** [kill_peer t ~peer ~time] records [peer] as crash-stopped: every packet
    in flight on a link touching it is cancelled (its backoff timer finds
    nothing in flight and releases the packet to the pool — no
    retransmission storm at the retry cap) and reported as {!Peer_dead};
    later sends to or from the peer are refused up front the same way.
    Nodes inside a {!Chaos.fault.Pause} window (and links cut by a
    {!Chaos.fault.Partition}) are handled without this call: their copies
    are treated as network drops and heal by retransmission once the fault
    clears. *)
val kill_peer : t -> peer:int -> time:float -> unit

(** [start_heartbeats t ~nprocs ~interval ~timeout ~active ~on_suspect
    ~on_refute] starts the failure-detector plumbing: every node emits an
    unreliable [hb_bytes] ping to every live peer once per [interval]
    (seeded per-node phase offsets desynchronize the ticks), charged to the
    timing model and judged on the same per-link chaos streams as payload
    traffic — no sequence numbers, no retransmission. At each of its own
    ticks a node also audits its view: a peer not heard from for more than
    [timeout] microseconds raises [on_suspect ~by ~peer] once; a later
    heartbeat from a suspected peer (pause or partition healed) raises
    [on_refute] and clears the suspicion. Emission stops for crash-stopped
    nodes and, globally, once [active ()] turns false (so the simulation
    can drain). Suspicions are local opinions — turning them into failover
    (quorum, fencing) is the caller's job. *)
val start_heartbeats :
  t ->
  nprocs:int ->
  interval:float ->
  timeout:float ->
  active:(unit -> bool) ->
  on_suspect:(by:int -> peer:int -> time:float -> unit) ->
  on_refute:(by:int -> peer:int -> time:float -> unit) ->
  unit

(** Heartbeat copies put on the wire so far (sent, not delivered). *)
val heartbeats_sent : t -> int

(** Packets currently awaiting acknowledgement, across all links. *)
val inflight_count : t -> int

(** Packets abandoned at the retry cap, across all links. *)
val gave_up_count : t -> int

(** Human-readable lines describing unacknowledged and abandoned packets,
    for the watchdog's diagnostic dump. Empty when all is quiet. *)
val describe_pending : t -> string list
