(* Seeded fault plan for network chaos and CPU stragglers. "Fault" here
   means an injected infrastructure failure (lost/duplicated/late message,
   slow CPU, crashed/paused/partitioned node) — page faults, the SVM
   access-detection mechanism, live in [Svm.Faults].

   Determinism: every directed link (src, dst) draws from its own splitmix64
   stream seeded as [mix(fault_seed, src * nprocs + dst)], and each node's
   slowdown comes from a dedicated stream, so verdicts depend only on the
   fault seed and the sequence of sends on that one link. *)

type fault =
  | Kill of { node : int; at : float }
  | Pause of { node : int; from_ : float; until : float }
  | Partition of { group : int list; from_ : float; until : float }

type params = {
  drop_rate : float;
  dup_rate : float;
  jitter : float;
  straggler : float;
  fault_seed : int;
  faults : fault list;
  detect_delay : float;
}

let none =
  {
    drop_rate = 0.;
    dup_rate = 0.;
    jitter = 0.;
    straggler = 1.0;
    fault_seed = 0;
    faults = [];
    detect_delay = 500.;
  }

(* Schedule accessors: the old single-fault [kill]/[pause] options became a
   schedule, but most consumers (runtime scheduling, report rendering) still
   want "the kill" or "the pause" — first by time, as before. *)
let kills p =
  List.filter_map (function Kill { node; at } -> Some (node, at) | _ -> None) p.faults
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let pauses p =
  List.filter_map
    (function Pause { node; from_; until } -> Some (node, from_, until) | _ -> None)
    p.faults
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

let partitions p =
  List.filter_map
    (function Partition { group; from_; until } -> Some (group, from_, until) | _ -> None)
    p.faults
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

let first_kill p = match kills p with [] -> None | k :: _ -> Some k

let first_pause p = match pauses p with [] -> None | w :: _ -> Some w

(* Kills are deliberately *not* part of [enabled]: a kill silences links and
   triggers failover but must not install the reliable transport (whose
   retransmission machinery would perturb the surviving traffic); pauses and
   partitions are gray failures that heal, which only the transport's
   retransmissions can deliver through. *)
let enabled p =
  p.drop_rate > 0. || p.dup_rate > 0. || p.jitter > 0. || p.straggler > 1.0
  || List.exists (function Kill _ -> false | Pause _ | Partition _ -> true) p.faults

let validate p =
  let prob name x =
    if Float.is_nan x || x < 0. || x > 1. then
      Error (Printf.sprintf "%s must be a probability in [0, 1] (got %g)" name x)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "drop rate" p.drop_rate in
  let* () = prob "duplication rate" p.dup_rate in
  let* () =
    if Float.is_nan p.jitter || p.jitter < 0. then
      Error (Printf.sprintf "jitter must be non-negative (got %g)" p.jitter)
    else Ok ()
  in
  let* () =
    if Float.is_nan p.straggler || p.straggler < 1.0 then
      Error (Printf.sprintf "straggler multiplier must be >= 1.0 (got %g)" p.straggler)
    else Ok ()
  in
  let check_fault = function
    | Kill { node; at } ->
        if node = 0 then
          Error "kill cannot name node 0 (the lock/barrier manager)"
        else if node < 0 then Error (Printf.sprintf "kill node must be >= 0 (got %d)" node)
        else if Float.is_nan at || at < 0. then
          Error (Printf.sprintf "kill time must be non-negative (got %g)" at)
        else Ok ()
    | Pause { node; from_; until } ->
        if node = 0 then
          Error "pause cannot name node 0 (the lock/barrier manager)"
        else if node < 0 then Error (Printf.sprintf "pause node must be >= 0 (got %d)" node)
        else if Float.is_nan from_ || Float.is_nan until || from_ < 0. || until < from_
        then
          Error
            (Printf.sprintf "pause window must satisfy 0 <= from <= until (got %g..%g)"
               from_ until)
        else Ok ()
    | Partition { group; from_; until } ->
        if group = [] then Error "partition group must name at least one node"
        else if List.exists (fun n -> n < 0) group then
          Error "partition group nodes must be >= 0"
        else if List.length (List.sort_uniq compare group) <> List.length group then
          Error "partition group must not repeat a node"
        else if Float.is_nan from_ || Float.is_nan until || from_ < 0. || until < from_
        then
          Error
            (Printf.sprintf
               "partition window must satisfy 0 <= from <= until (got %g..%g)" from_
               until)
        else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc f -> Result.bind acc (fun () -> check_fault f))
      (Ok ()) p.faults
  in
  (* A pause window that still holds a node when its kill fires is two
     schedules fighting over one machine: refuse it outright. *)
  let* () =
    List.fold_left
      (fun acc f ->
        Result.bind acc (fun () ->
            match f with
            | Pause { node; from_; until } ->
                let clash =
                  List.find_map
                    (function
                      | Kill { node = n; at } when n = node && from_ <= at && at < until ->
                          Some at
                      | _ -> None)
                    p.faults
                in
                (match clash with
                | Some at ->
                    Error
                      (Printf.sprintf
                         "node %d's pause window [%g, %g) overlaps its kill at %g" node
                         from_ until at)
                | None -> Ok ())
            | _ -> Ok ()))
      (Ok ()) p.faults
  in
  if Float.is_nan p.detect_delay || p.detect_delay < 0. then
    Error (Printf.sprintf "detect delay must be non-negative (got %g)" p.detect_delay)
  else Ok ()

(* [silenced p ~node ~time]: the node-fault schedule has this node's links
   down at [time] (killed for good, or inside a pause window). Partitions
   are a link property, not a node property — see [severed]. *)
let silenced p ~node ~time =
  List.exists
    (function
      | Kill { node = n; at } -> n = node && time >= at
      | Pause { node = n; from_; until } -> n = node && time >= from_ && time < until
      | Partition _ -> false)
    p.faults

(* [severed p ~src ~dst ~time]: some active partition puts [src] and [dst]
   on opposite sides of the cut. The [group] names one side; every node not
   in it is on the other. *)
let severed p ~src ~dst ~time =
  List.exists
    (function
      | Partition { group; from_; until } ->
          time >= from_ && time < until
          && List.mem src group <> List.mem dst group
      | Kill _ | Pause _ -> false)
    p.faults

(* One spike in [spike_one_in] jittered messages lands [spike_factor] times
   further out: a crude heavy tail (congestion burst, route flap). *)
let spike_one_in = 64

let spike_factor = 8.0

type verdict = {
  mutable drop : bool;
  mutable duplicate : bool;
  mutable delay : float;
  mutable dup_delay : float;
}

type t = {
  p : params;
  nprocs : int;
  links : (int, Sim.Rng.t) Hashtbl.t;  (* src * nprocs + dst -> stream *)
  backoff : (int, Sim.Rng.t) Hashtbl.t;  (* link -> RTO-jitter stream *)
  slowdowns : float array;  (* per-node CPU multiplier, drawn at create *)
  parts : (bool array * float * float) array;  (* membership, from, until *)
  scratch : verdict;  (* pooled: [judge] refills and returns this record *)
}

let params t = t.p

let enabled_t t = enabled t.p

let create p ~nprocs =
  (match validate p with Ok () -> () | Error e -> invalid_arg ("Chaos.create: " ^ e));
  if nprocs <= 0 then invalid_arg "Chaos.create: nprocs must be positive";
  let slowdowns =
    if p.straggler = 1.0 then Array.make nprocs 1.0
    else begin
      let rng = Sim.Rng.create ~seed:(p.fault_seed + 0x5707) in
      Array.init nprocs (fun _ -> 1.0 +. Sim.Rng.float rng (p.straggler -. 1.0))
    end
  in
  let parts =
    partitions p
    |> List.map (fun (group, from_, until) ->
           let side = Array.make nprocs false in
           List.iter
             (fun n ->
               if n >= nprocs then
                 invalid_arg
                   (Printf.sprintf "Chaos.create: partition node %d out of range (%d nodes)"
                      n nprocs);
               side.(n) <- true)
             group;
           if Array.for_all Fun.id side then
             invalid_arg "Chaos.create: partition group must leave the other side non-empty";
           (side, from_, until))
    |> Array.of_list
  in
  {
    p;
    nprocs;
    links = Hashtbl.create 64;
    backoff = Hashtbl.create 64;
    slowdowns;
    parts;
    scratch = { drop = false; duplicate = false; delay = 0.; dup_delay = 0. };
  }

let link_rng t ~src ~dst =
  let key = (src * t.nprocs) + dst in
  match Hashtbl.find_opt t.links key with
  | Some rng -> rng
  | None ->
      let rng = Sim.Rng.create ~seed:((t.p.fault_seed * 0x10001) + key) in
      Hashtbl.replace t.links key rng;
      rng

let one_delay t rng =
  if t.p.jitter = 0. then 0.
  else begin
    let d = Sim.Rng.float rng t.p.jitter in
    if Sim.Rng.int rng spike_one_in = 0 then d *. spike_factor else d
  end

let judge t ~src ~dst =
  let rng = link_rng t ~src ~dst in
  let v = t.scratch in
  (* Fixed draw order so the stream stays aligned across outcomes. *)
  v.drop <- t.p.drop_rate > 0. && Sim.Rng.float rng 1.0 < t.p.drop_rate;
  v.duplicate <- t.p.dup_rate > 0. && Sim.Rng.float rng 1.0 < t.p.dup_rate;
  v.delay <- one_delay t rng;
  v.dup_delay <- one_delay t rng;
  v

(* RTO backoff jitter: a dedicated per-link stream (salted differently from
   the verdict stream, so backoff draws never shift message verdicts) in
   [0.75, 1.25) — after a partition heals, every stranded sender's timer
   fires, and without jitter they retransmit in lockstep. *)
let backoff_factor t ~src ~dst =
  let key = (src * t.nprocs) + dst in
  let rng =
    match Hashtbl.find_opt t.backoff key with
    | Some rng -> rng
    | None ->
        let rng = Sim.Rng.create ~seed:((t.p.fault_seed * 0x3d0f5) + key + 0x42b) in
        Hashtbl.replace t.backoff key rng;
        rng
  in
  0.75 +. Sim.Rng.float rng 0.5

let severed_t t ~src ~dst ~time =
  let n = Array.length t.parts in
  let rec go i =
    i < n
    &&
    let side, from_, until = t.parts.(i) in
    (time >= from_ && time < until && side.(src) <> side.(dst)) || go (i + 1)
  in
  go 0

let slowdown t ~node = t.slowdowns.(node)

let max_delay_params p = p.jitter *. spike_factor

let max_delay t = max_delay_params t.p
