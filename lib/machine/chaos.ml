(* Seeded fault plan for network chaos and CPU stragglers. "Fault" here
   means an injected infrastructure failure (lost/duplicated/late message,
   slow CPU) — page faults, the SVM access-detection mechanism, live in
   [Svm.Faults].

   Determinism: every directed link (src, dst) draws from its own splitmix64
   stream seeded as [mix(fault_seed, src * nprocs + dst)], and each node's
   slowdown comes from a dedicated stream, so verdicts depend only on the
   fault seed and the sequence of sends on that one link. *)

type params = {
  drop_rate : float;
  dup_rate : float;
  jitter : float;
  straggler : float;
  fault_seed : int;
  kill : (int * float) option;
  pause : (int * float * float) option;
  detect_delay : float;
}

let none =
  {
    drop_rate = 0.;
    dup_rate = 0.;
    jitter = 0.;
    straggler = 1.0;
    fault_seed = 0;
    kill = None;
    pause = None;
    detect_delay = 500.;
  }

(* Kills are deliberately *not* part of [enabled]: a kill silences links and
   triggers failover but must not install the reliable transport (whose
   retransmission machinery would perturb the surviving traffic); a pause is
   a gray failure that heals, which only the transport's retransmissions can
   deliver through. *)
let enabled p =
  p.drop_rate > 0. || p.dup_rate > 0. || p.jitter > 0. || p.straggler > 1.0
  || p.pause <> None

let validate p =
  let prob name x =
    if Float.is_nan x || x < 0. || x > 1. then
      Error (Printf.sprintf "%s must be a probability in [0, 1] (got %g)" name x)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "drop rate" p.drop_rate in
  let* () = prob "duplication rate" p.dup_rate in
  let* () =
    if Float.is_nan p.jitter || p.jitter < 0. then
      Error (Printf.sprintf "jitter must be non-negative (got %g)" p.jitter)
    else Ok ()
  in
  let* () =
    if Float.is_nan p.straggler || p.straggler < 1.0 then
      Error (Printf.sprintf "straggler multiplier must be >= 1.0 (got %g)" p.straggler)
    else Ok ()
  in
  let* () =
    match p.kill with
    | None -> Ok ()
    | Some (node, at) ->
        if node < 0 then Error (Printf.sprintf "kill node must be >= 0 (got %d)" node)
        else if Float.is_nan at || at < 0. then
          Error (Printf.sprintf "kill time must be non-negative (got %g)" at)
        else Ok ()
  in
  let* () =
    match p.pause with
    | None -> Ok ()
    | Some (node, from_, until) ->
        if node < 0 then Error (Printf.sprintf "pause node must be >= 0 (got %d)" node)
        else if Float.is_nan from_ || Float.is_nan until || from_ < 0. || until < from_
        then
          Error
            (Printf.sprintf "pause window must satisfy 0 <= from <= until (got %g..%g)"
               from_ until)
        else Ok ()
  in
  if Float.is_nan p.detect_delay || p.detect_delay < 0. then
    Error (Printf.sprintf "detect delay must be non-negative (got %g)" p.detect_delay)
  else Ok ()

(* [silenced p ~node ~time]: the node-fault schedule has this node's links
   down at [time] (killed for good, or inside a pause window). *)
let silenced p ~node ~time =
  (match p.kill with Some (n, at) -> n = node && time >= at | None -> false)
  || match p.pause with
     | Some (n, from_, until) -> n = node && time >= from_ && time < until
     | None -> false

(* One spike in [spike_one_in] jittered messages lands [spike_factor] times
   further out: a crude heavy tail (congestion burst, route flap). *)
let spike_one_in = 64

let spike_factor = 8.0

type verdict = {
  mutable drop : bool;
  mutable duplicate : bool;
  mutable delay : float;
  mutable dup_delay : float;
}

type t = {
  p : params;
  nprocs : int;
  links : (int, Sim.Rng.t) Hashtbl.t;  (* src * nprocs + dst -> stream *)
  slowdowns : float array;  (* per-node CPU multiplier, drawn at create *)
  scratch : verdict;  (* pooled: [judge] refills and returns this record *)
}

let params t = t.p

let enabled_t t = enabled t.p

let create p ~nprocs =
  (match validate p with Ok () -> () | Error e -> invalid_arg ("Chaos.create: " ^ e));
  if nprocs <= 0 then invalid_arg "Chaos.create: nprocs must be positive";
  let slowdowns =
    if p.straggler = 1.0 then Array.make nprocs 1.0
    else begin
      let rng = Sim.Rng.create ~seed:(p.fault_seed + 0x5707) in
      Array.init nprocs (fun _ -> 1.0 +. Sim.Rng.float rng (p.straggler -. 1.0))
    end
  in
  {
    p;
    nprocs;
    links = Hashtbl.create 64;
    slowdowns;
    scratch = { drop = false; duplicate = false; delay = 0.; dup_delay = 0. };
  }

let link_rng t ~src ~dst =
  let key = (src * t.nprocs) + dst in
  match Hashtbl.find_opt t.links key with
  | Some rng -> rng
  | None ->
      let rng = Sim.Rng.create ~seed:((t.p.fault_seed * 0x10001) + key) in
      Hashtbl.replace t.links key rng;
      rng

let one_delay t rng =
  if t.p.jitter = 0. then 0.
  else begin
    let d = Sim.Rng.float rng t.p.jitter in
    if Sim.Rng.int rng spike_one_in = 0 then d *. spike_factor else d
  end

let judge t ~src ~dst =
  let rng = link_rng t ~src ~dst in
  let v = t.scratch in
  (* Fixed draw order so the stream stays aligned across outcomes. *)
  v.drop <- t.p.drop_rate > 0. && Sim.Rng.float rng 1.0 < t.p.drop_rate;
  v.duplicate <- t.p.dup_rate > 0. && Sim.Rng.float rng 1.0 < t.p.dup_rate;
  v.delay <- one_delay t rng;
  v.dup_delay <- one_delay t rng;
  v

let slowdown t ~node = t.slowdowns.(node)

let max_delay t = t.p.jitter *. spike_factor
