(** Seeded network/CPU fault injection ("chaos"), as opposed to the *page*
    faults handled by the SVM protocol layer ([Svm.Faults]).

    A {!t} is a deterministic fault plan derived from [params.fault_seed]:
    each directed link [(src, dst)] owns an independent {!Sim.Rng} stream,
    and each node draws one CPU-slowdown multiplier up front, so the set of
    injected faults depends only on the seed and the order of sends on each
    link — never on wall-clock state or on traffic of other links.

    With {!none} (all rates zero, straggler 1.0, empty schedule) the plan is
    {e inert}: {!enabled} is [false] and callers are expected to bypass it
    entirely, keeping the fault-free fast path byte-identical to a build
    without the chaos layer. *)

(** One timed event of the node/link fault schedule. *)
type fault =
  | Kill of { node : int; at : float }
      (** Permanently silence the node's inbound and outbound links from
          [at] (microseconds) on — a crash-stop failure. *)
  | Pause of { node : int; from_ : float; until : float }
      (** Gray failure: the node's links are silenced during
          [[from_, until)] and then heal. Requires the reliable transport
          (and therefore flips {!enabled}). *)
  | Partition of { group : int list; from_ : float; until : float }
      (** Network partition: during [[from_, until)] every link between a
          node in [group] and a node outside it is severed (both
          directions); links within a side are untouched. Heals by
          retransmission, so it flips {!enabled}. The classic generator of
          false suspicions for a heartbeat failure detector. *)

type params = {
  drop_rate : float;  (** Probability a message copy is lost, per link hop. *)
  dup_rate : float;  (** Probability a message is duplicated in flight. *)
  jitter : float;
      (** Extra latency: uniform in [0, jitter) microseconds, with a 1/64
          chance of an 8x spike (heavy-tailed, as on a congested fabric). *)
  straggler : float;
      (** Per-node CPU slowdown cap: each node's compute multiplier is
          drawn uniformly from [1.0, straggler]. 1.0 = no stragglers. *)
  fault_seed : int;  (** Seed of the fault plan (independent of app seed). *)
  faults : fault list;  (** Timed node/link fault schedule; [[]] = none. *)
  detect_delay : float;
      (** Oracle failure-detector latency: with [--detector oracle] (the
          default) failover runs at kill time + [detect_delay], fired by
          the runtime rather than decided from missed messages. The oracle
          is deterministic and perfect — spurious failover is impossible by
          construction. [--detector heartbeat] replaces it with a
          timeout-based suspector that can be wrong ({!Transport}). *)
}

(** The inert plan: zero rates, no jitter, no stragglers, no node faults. *)
val none : params

(** The schedule's kills, as [(node, at)] sorted by time. *)
val kills : params -> (int * float) list

(** The schedule's pauses, as [(node, from, until)] sorted by start. *)
val pauses : params -> (int * float * float) list

(** The schedule's partitions, as [(group, from, until)] sorted by start. *)
val partitions : params -> (int list * float * float) list

(** Earliest kill / pause of the schedule, if any (legacy single-fault
    consumers: runtime scheduling, report rendering). *)
val first_kill : params -> (int * float) option

val first_pause : params -> (int * float * float) option

(** [enabled p] is [true] iff [p] needs the chaos-aware transport path.
    Deliberately excludes kills: a crash-stop only drops deliveries and
    triggers failover, and must not perturb surviving traffic with
    transport machinery. Pauses and partitions are included — healing a
    gray failure needs retransmission. *)
val enabled : params -> bool

(** [validate p] checks rates are probabilities in [0, 1], [jitter] is
    non-negative, [straggler >= 1.0], and the fault schedule and
    [detect_delay] are well-formed. Rejected outright, each with a one-line
    error: kills or pauses naming node 0 (the lock/barrier manager), a
    pause window overlapping the same node's kill time, empty or
    node-repeating partition groups, and negative/NaN times. *)
val validate : params -> (unit, string) result

(** [silenced p ~node ~time]: the schedule has the node's links down at
    [time] — killed for good, or inside a pause window. Partitions do not
    silence a node; they sever links ({!severed}). *)
val silenced : params -> node:int -> time:float -> bool

(** [severed p ~src ~dst ~time]: an active partition has [src] and [dst] on
    opposite sides at [time]. *)
val severed : params -> src:int -> dst:int -> time:float -> bool

type t

(** [create ~params ~nprocs] builds the plan. Raises [Invalid_argument] if
    [validate] fails, a partition node is out of range, or a partition
    group swallows every node. *)
val create : params -> nprocs:int -> t

val params : t -> params

val enabled_t : t -> bool

(** Per-message verdict for one transmission attempt on link [src -> dst].
    [delay] applies to the primary copy, [dup_delay] to the duplicate (only
    meaningful when [duplicate]); both are extra latency in microseconds.
    All four draws are consumed on every call, so the per-link stream stays
    aligned whatever the outcomes are.

    The returned record is a pooled scratch owned by the plan — the next
    [judge] call on the same plan overwrites it, so read the fields before
    judging again (a chaos run issues one verdict per message copy, and a
    fresh record per copy was measurable allocation for nothing). *)
type verdict = {
  mutable drop : bool;
  mutable duplicate : bool;
  mutable delay : float;
  mutable dup_delay : float;
}

val judge : t -> src:int -> dst:int -> verdict

(** [backoff_factor t ~src ~dst]: next retransmission-backoff jitter
    multiplier for the link, uniform in [0.75, 1.25) from a dedicated
    per-link stream (distinct from the verdict stream, so RTO jitter never
    shifts message verdicts). Desynchronizes the retransmit storm after a
    partition heals. *)
val backoff_factor : t -> src:int -> dst:int -> float

(** {!severed} against the plan's precomputed partition membership. *)
val severed_t : t -> src:int -> dst:int -> time:float -> bool

(** [slowdown t ~node] is the node's CPU multiplier in [1.0, straggler];
    exactly [1.0] when [params.straggler = 1.0]. *)
val slowdown : t -> node:int -> float

(** Upper bound of the injected per-copy latency (jitter including the
    spike factor); transports use it to size retransmission timeouts and
    the heartbeat detector its default suspicion timeout. *)
val max_delay : t -> float

(** {!max_delay} computed from bare parameters (no plan needed). *)
val max_delay_params : params -> float
