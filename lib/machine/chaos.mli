(** Seeded network/CPU fault injection ("chaos"), as opposed to the *page*
    faults handled by the SVM protocol layer ([Svm.Faults]).

    A {!t} is a deterministic fault plan derived from [params.fault_seed]:
    each directed link [(src, dst)] owns an independent {!Sim.Rng} stream,
    and each node draws one CPU-slowdown multiplier up front, so the set of
    injected faults depends only on the seed and the order of sends on each
    link — never on wall-clock state or on traffic of other links.

    With {!none} (all rates zero, straggler 1.0) the plan is {e inert}:
    {!enabled} is [false] and callers are expected to bypass it entirely,
    keeping the fault-free fast path byte-identical to a build without the
    chaos layer. *)

type params = {
  drop_rate : float;  (** Probability a message copy is lost, per link hop. *)
  dup_rate : float;  (** Probability a message is duplicated in flight. *)
  jitter : float;
      (** Extra latency: uniform in [0, jitter) microseconds, with a 1/64
          chance of an 8x spike (heavy-tailed, as on a congested fabric). *)
  straggler : float;
      (** Per-node CPU slowdown cap: each node's compute multiplier is
          drawn uniformly from [1.0, straggler]. 1.0 = no stragglers. *)
  fault_seed : int;  (** Seed of the fault plan (independent of app seed). *)
  kill : (int * float) option;
      (** [(node, time)]: permanently silence the node's inbound and
          outbound links from [time] (microseconds) on — a crash-stop
          failure. The runtime schedules failover for the node's pages
          [detect_delay] later. [None] = no kill. *)
  pause : (int * float * float) option;
      (** [(node, from, until)]: gray failure — the node's links are
          silenced during [[from, until)] and then heal. Requires the
          reliable transport (and therefore flips {!enabled}). *)
  detect_delay : float;
      (** Failure-detector latency: failover runs at kill time +
          [detect_delay]. The detector is deterministic and perfect —
          it fires only for a scheduled kill, never from jitter or
          stragglers, so spurious failover is impossible by construction. *)
}

(** The inert plan: zero rates, no jitter, no stragglers, no node faults. *)
val none : params

(** [enabled p] is [true] iff [p] needs the chaos-aware transport path.
    Deliberately excludes [kill]: a crash-stop only drops deliveries and
    triggers failover, and must not perturb surviving traffic with
    transport machinery. [pause] is included — healing a gray failure
    needs retransmission. *)
val enabled : params -> bool

(** [validate p] checks rates are probabilities in [0, 1], [jitter] is
    non-negative, [straggler >= 1.0], and the kill/pause schedule and
    [detect_delay] are well-formed. *)
val validate : params -> (unit, string) result

(** [silenced p ~node ~time]: the schedule has the node's links down at
    [time] — killed for good, or inside its pause window. *)
val silenced : params -> node:int -> time:float -> bool

type t

(** [create ~params ~nprocs] builds the plan. Raises [Invalid_argument]
    if [validate] fails. *)
val create : params -> nprocs:int -> t

val params : t -> params

val enabled_t : t -> bool

(** Per-message verdict for one transmission attempt on link [src -> dst].
    [delay] applies to the primary copy, [dup_delay] to the duplicate (only
    meaningful when [duplicate]); both are extra latency in microseconds.
    All four draws are consumed on every call, so the per-link stream stays
    aligned whatever the outcomes are.

    The returned record is a pooled scratch owned by the plan — the next
    [judge] call on the same plan overwrites it, so read the fields before
    judging again (a chaos run issues one verdict per message copy, and a
    fresh record per copy was measurable allocation for nothing). *)
type verdict = {
  mutable drop : bool;
  mutable duplicate : bool;
  mutable delay : float;
  mutable dup_delay : float;
}

val judge : t -> src:int -> dst:int -> verdict

(** [slowdown t ~node] is the node's CPU multiplier in [1.0, straggler];
    exactly [1.0] when [params.straggler = 1.0]. *)
val slowdown : t -> node:int -> float

(** Upper bound of the injected per-copy latency (jitter including the
    spike factor); transports use it to size retransmission timeouts. *)
val max_delay : t -> float
