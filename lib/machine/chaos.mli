(** Seeded network/CPU fault injection ("chaos"), as opposed to the *page*
    faults handled by the SVM protocol layer ([Svm.Faults]).

    A {!t} is a deterministic fault plan derived from [params.fault_seed]:
    each directed link [(src, dst)] owns an independent {!Sim.Rng} stream,
    and each node draws one CPU-slowdown multiplier up front, so the set of
    injected faults depends only on the seed and the order of sends on each
    link — never on wall-clock state or on traffic of other links.

    With {!none} (all rates zero, straggler 1.0) the plan is {e inert}:
    {!enabled} is [false] and callers are expected to bypass it entirely,
    keeping the fault-free fast path byte-identical to a build without the
    chaos layer. *)

type params = {
  drop_rate : float;  (** Probability a message copy is lost, per link hop. *)
  dup_rate : float;  (** Probability a message is duplicated in flight. *)
  jitter : float;
      (** Extra latency: uniform in [0, jitter) microseconds, with a 1/64
          chance of an 8x spike (heavy-tailed, as on a congested fabric). *)
  straggler : float;
      (** Per-node CPU slowdown cap: each node's compute multiplier is
          drawn uniformly from [1.0, straggler]. 1.0 = no stragglers. *)
  fault_seed : int;  (** Seed of the fault plan (independent of app seed). *)
}

(** The inert plan: zero rates, no jitter, no stragglers. *)
val none : params

(** [enabled p] is [true] iff [p] can ever perturb a run. *)
val enabled : params -> bool

(** [validate p] checks rates are probabilities in [0, 1], [jitter] is
    non-negative and [straggler >= 1.0]. *)
val validate : params -> (unit, string) result

type t

(** [create ~params ~nprocs] builds the plan. Raises [Invalid_argument]
    if [validate] fails. *)
val create : params -> nprocs:int -> t

val params : t -> params

val enabled_t : t -> bool

(** Per-message verdict for one transmission attempt on link [src -> dst].
    [delay] applies to the primary copy, [dup_delay] to the duplicate (only
    meaningful when [duplicate]); both are extra latency in microseconds.
    All four draws are consumed on every call, so the per-link stream stays
    aligned whatever the outcomes are.

    The returned record is a pooled scratch owned by the plan — the next
    [judge] call on the same plan overwrites it, so read the fields before
    judging again (a chaos run issues one verdict per message copy, and a
    fresh record per copy was measurable allocation for nothing). *)
type verdict = {
  mutable drop : bool;
  mutable duplicate : bool;
  mutable delay : float;
  mutable dup_delay : float;
}

val judge : t -> src:int -> dst:int -> verdict

(** [slowdown t ~node] is the node's CPU multiplier in [1.0, straggler];
    exactly [1.0] when [params.straggler = 1.0]. *)
val slowdown : t -> node:int -> float

(** Upper bound of the injected per-copy latency (jitter including the
    spike factor); transports use it to size retransmission timeouts. *)
val max_delay : t -> float
