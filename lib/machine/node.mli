(** Per-node processor timelines.

    Each Paragon node has a compute processor and a communication
    co-processor sharing memory. We track the compute processor as a virtual
    clock that application execution and protocol overhead advance, and the
    co-processor as a busy-until timeline serviced in FIFO order. *)

(** The float timelines, nested in their own all-float record so stores
    stay unboxed on the per-memory-access hot path. *)
type clocks = {
  mutable clock : float;  (** Compute-processor virtual time (us). *)
  mutable coproc_busy : float;  (** Co-processor busy until this time. *)
}

type t = {
  id : int;
  ck : clocks;
  mutable interrupts : int;  (** Compute-processor interrupts serviced. *)
  mutable coproc_requests : int;  (** Requests serviced by the co-processor. *)
}

val create : int -> t

(** Advance the compute clock by [dt] (application work or inline protocol
    work). *)
val advance : t -> float -> unit

(** Bring the compute clock up to at least [time] (e.g. when a blocked
    process resumes on a message arrival). *)
val sync_to : t -> float -> unit

(** [interrupt_service t ~arrival ~cost] models an incoming request serviced
    by the compute processor: charges interrupt entry plus [cost] to the
    node's timeline and returns the completion time (from the requester's
    point of view, [arrival + interrupt + cost]). *)
val interrupt_service : t -> interrupt:float -> arrival:float -> cost:float -> float

(** [coproc_service t ~dispatch ~arrival ~cost] models a request serviced by
    the communication co-processor: it starts when both the request has
    arrived and the co-processor is free, and does not touch the compute
    clock. Returns the completion time. *)
val coproc_service : t -> dispatch:float -> arrival:float -> cost:float -> float
