(* The two timelines live in their own all-float record: OCaml stores
   floats in such a record unboxed, so the clock bumps on the memory-access
   hot path ([advance] runs once per simulated load/store) allocate
   nothing. As fields of the mixed record below, every store would box. *)
type clocks = { mutable clock : float; mutable coproc_busy : float }

type t = {
  id : int;
  ck : clocks;
  mutable interrupts : int;
  mutable coproc_requests : int;
}

let create id =
  { id; ck = { clock = 0.; coproc_busy = 0. }; interrupts = 0; coproc_requests = 0 }

let advance t dt =
  assert (dt >= 0.);
  t.ck.clock <- t.ck.clock +. dt

let sync_to t time = if time > t.ck.clock then t.ck.clock <- time

let interrupt_service t ~interrupt ~arrival ~cost =
  (* The interrupt delays the node's own future work by (interrupt + cost);
     the reply is timed from the request's arrival. When the node's virtual
     clock has run ahead of [arrival] (a sequential-simulation artifact) the
     total charged overhead is still conserved. *)
  t.interrupts <- t.interrupts + 1;
  t.ck.clock <- t.ck.clock +. interrupt +. cost;
  arrival +. interrupt +. cost

let coproc_service t ~dispatch ~arrival ~cost =
  t.coproc_requests <- t.coproc_requests + 1;
  let start = Float.max arrival t.ck.coproc_busy in
  let finish = start +. dispatch +. cost in
  t.ck.coproc_busy <- finish;
  finish
