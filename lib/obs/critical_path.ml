(* Critical-path analysis over a trace sink.

   The causal layer (Config.trace_spans) records every wait interval as a
   Wait_begin/Wait_end pair and every cross-node dependency as a
   Msg_send/Msg_recv pair on a FIFO channel. That is enough to rebuild the
   dependency chain that actually bounded the run: starting from the last
   node at the finish time, walk backwards — the time since the node's last
   wait ended was local execution (compute + protocol); the wait itself
   either resolved locally (attribute its full length to its bucket and
   continue before it began) or was completed by a message (attribute the
   segment back to the matched send to the wait's bucket and jump to the
   sender at the send time). Every segment is attributed to exactly one
   bucket, so the attribution telescopes to the finish time — "blame" here
   is exact, not sampled.

   Home-wait spans (Wb_home) are nested annotations inside an outer
   lock/barrier wait: the walk skips them (the outer span owns the time)
   and they are aggregated separately instead.

   Chaos caveat: message pairing is FIFO per channel, which matches the
   fault-free network exactly; under fault injection retransmitted copies
   can shift the pairing by one, so path blame on chaos runs is an
   approximation. *)

type resource_blame = {
  rb_id : int;  (* page / lock id *)
  rb_wait : float;  (* on-path wait attributed to it, us *)
  rb_count : int;  (* on-path waits (lock: handoff-chain length) *)
}

type epoch_slack = {
  es_epoch : int;
  es_straggler : int;  (* last node to arrive *)
  es_spread : float;  (* last arrival - first arrival, us *)
  es_last : float;  (* last arrival time, us *)
}

type t = {
  cp_finish : float;
  cp_end_node : int;
  cp_local : float;
  cp_data : float;
  cp_lock : float;
  cp_barrier : float;
  cp_gc : float;
  cp_hops : int;
  cp_segments : int;
  cp_top_pages : resource_blame list;
  cp_top_locks : resource_blame list;
  cp_home_pages : resource_blame list;  (* aggregate home waits, not on-path *)
  cp_epochs : epoch_slack list;
}

(* ------------------------------------------------------------------ *)
(* Event digestion                                                    *)

type span = {
  sp_node : int;
  sp_b : float;
  sp_e : float;
  sp_bucket : Trace.wait_bucket;
  sp_res : int;
}

type recv = { rv_t : float; rv_src : int; rv_send_t : float }

(* Per-node spans (sorted by end time) and matched receives (sorted by
   arrival), rebuilt from one pass over the sink. *)
type digest = {
  dg_spans : span array array;  (* per node *)
  dg_recvs : recv array array;  (* per node *)
  dg_home : (int, float * int) Hashtbl.t;  (* page -> (total wait, count) *)
  dg_arrivals : (int, (int * float) list ref) Hashtbl.t;  (* epoch -> (node, t) *)
  dg_last_time : float;
  dg_last_node : int;
}

let digest sink =
  let open_spans : (int, Trace.event) Hashtbl.t = Hashtbl.create 64 in
  let spans : span list ref array ref = ref [||] in
  let recvs : recv list ref array ref = ref [||] in
  let msg_q : (int * int, float Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let home : (int, float * int) Hashtbl.t = Hashtbl.create 16 in
  let arrivals : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 16 in
  let last_time = ref 0. and last_node = ref 0 in
  let grow : 'a. int -> 'a list ref array -> 'a list ref array =
   fun node arr ->
    let n = Array.length arr in
    if node < n then arr
    else Array.init (max (node + 1) (2 * n)) (fun i -> if i < n then arr.(i) else ref [])
  in
  let ensure node =
    spans := grow node !spans;
    recvs := grow node !recvs
  in
  let fifo key =
    match Hashtbl.find_opt msg_q key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace msg_q key q;
        q
  in
  Trace.iter sink (fun ev ->
      let node = ev.Trace.node in
      ensure node;
      if ev.Trace.time > !last_time then begin
        last_time := ev.Trace.time;
        last_node := node
      end;
      match ev.Trace.kind with
      | Trace.Wait_begin { span; _ } -> Hashtbl.replace open_spans span ev
      | Trace.Wait_end { span; bucket; resource } -> (
          match Hashtbl.find_opt open_spans span with
          | None -> ()
          | Some b ->
              Hashtbl.remove open_spans span;
              let sp =
                {
                  sp_node = b.Trace.node;
                  sp_b = b.Trace.time;
                  sp_e = ev.Trace.time;
                  sp_bucket = bucket;
                  sp_res = resource;
                }
              in
              if bucket = Trace.Wb_home then begin
                let w, c =
                  match Hashtbl.find_opt home resource with Some x -> x | None -> (0., 0)
                in
                Hashtbl.replace home resource (w +. (sp.sp_e -. sp.sp_b), c + 1)
              end
              else begin
                ensure sp.sp_node;
                let cell = !spans.(sp.sp_node) in
                cell := sp :: !cell
              end)
      | Trace.Msg_send { dst; _ } -> Queue.push ev.Trace.time (fifo (node, dst))
      | Trace.Msg_recv { src; _ } -> (
          match Queue.take_opt (fifo (src, node)) with
          | Some send_t ->
              let cell = !recvs.(node) in
              cell := { rv_t = ev.Trace.time; rv_src = src; rv_send_t = send_t } :: !cell
          | None -> ())
      | Trace.Barrier_arrive { epoch; _ } -> (
          match Hashtbl.find_opt arrivals epoch with
          | Some l -> l := (node, ev.Trace.time) :: !l
          | None -> Hashtbl.replace arrivals epoch (ref [ (node, ev.Trace.time) ]))
      | _ -> ());
  let finalize : 'a 'k. ('a -> 'k) -> 'a list ref array -> 'a array array =
   fun sort_key arr ->
    Array.map
      (fun cell ->
        let a = Array.of_list !cell in
        Array.sort (fun x y -> compare (sort_key x) (sort_key y)) a;
        a)
      arr
  in
  {
    dg_spans = finalize (fun sp -> (sp.sp_e, sp.sp_b)) !spans;
    dg_recvs = finalize (fun rv -> rv.rv_t) !recvs;
    dg_home = home;
    dg_arrivals = arrivals;
    dg_last_time = !last_time;
    dg_last_node = !last_node;
  }

(* ------------------------------------------------------------------ *)
(* Backward walk                                                      *)

(* Last span of [node] with index < [bound] and end <= t (spans are sorted
   by end time). The bound makes same-node progress strict: a zero-length
   span ending exactly at [t] cannot be taken twice. *)
let find_span (dg : digest) node t bound =
  if node >= Array.length dg.dg_spans then None
  else begin
    let spans = dg.dg_spans.(node) in
    let hi = min bound (Array.length spans) in
    (* binary search: largest i < hi with spans.(i).sp_e <= t *)
    let lo = ref 0 and n = ref hi in
    while !lo < !n do
      let mid = (!lo + !n) / 2 in
      if spans.(mid).sp_e <= t then lo := mid + 1 else n := mid
    done;
    if !lo = 0 then None else Some (!lo - 1, spans.(!lo - 1))
  end

(* Latest matched receive on [node] inside the span window: the message
   whose arrival completed the wait. *)
let find_recv (dg : digest) node (sp : span) =
  if node >= Array.length dg.dg_recvs then None
  else begin
    let recvs = dg.dg_recvs.(node) in
    (* binary search: largest i with recvs.(i).rv_t <= sp_e *)
    let lo = ref 0 and n = ref (Array.length recvs) in
    while !lo < !n do
      let mid = (!lo + !n) / 2 in
      if recvs.(mid).rv_t <= sp.sp_e then lo := mid + 1 else n := mid
    done;
    if !lo = 0 then None
    else
      let rv = recvs.(!lo - 1) in
      if rv.rv_t >= sp.sp_b then Some rv else None
  end

let top_of_table ~top tbl =
  Hashtbl.fold (fun id (w, c) acc -> { rb_id = id; rb_wait = w; rb_count = c } :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.rb_wait a.rb_wait with 0 -> compare a.rb_id b.rb_id | c -> c)
  |> List.filteri (fun i _ -> i < top)

let analyze ?(top = 5) ?finish ?end_node sink =
  let dg = digest sink in
  let finish = match finish with Some f -> f | None -> dg.dg_last_time in
  let end_node = match end_node with Some n -> n | None -> dg.dg_last_node in
  let local = ref 0. in
  let data = ref 0. and lock = ref 0. and barrier = ref 0. and gc = ref 0. in
  let hops = ref 0 and segments = ref 0 in
  let pages : (int, float * int) Hashtbl.t = Hashtbl.create 16 in
  let locks : (int, float * int) Hashtbl.t = Hashtbl.create 16 in
  let blame tbl id w =
    let tw, c = match Hashtbl.find_opt tbl id with Some x -> x | None -> (0., 0) in
    Hashtbl.replace tbl id (tw +. w, c + 1)
  in
  let attribute (sp : span) w =
    (match sp.sp_bucket with
    | Trace.Wb_data ->
        data := !data +. w;
        blame pages sp.sp_res w
    | Trace.Wb_lock ->
        lock := !lock +. w;
        blame locks sp.sp_res w
    | Trace.Wb_barrier -> barrier := !barrier +. w
    | Trace.Wb_gc -> gc := !gc +. w
    | Trace.Wb_home -> assert false (* home spans never enter the walk *));
    incr segments
  in
  let full_bound node =
    if node < Array.length dg.dg_spans then Array.length dg.dg_spans.(node) else 0
  in
  (* The walk is bounded: same-node steps strictly decrease the span index
     bound, message jumps strictly decrease time (positive latency). *)
  let rec walk node t bound =
    if t <= 0. then ()
    else
      match find_span dg node t bound with
      | None -> local := !local +. t
      | Some (i, sp) ->
          local := !local +. (t -. sp.sp_e);
          incr segments;
          (match find_recv dg node sp with
          | Some rv when rv.rv_send_t < sp.sp_e ->
              (* The wait closed when this message arrived: on-path wait
                 reaches back to the matched send; anything between the
                 send and the wait's begin was this node still running. *)
              let cut = Float.max rv.rv_send_t sp.sp_b in
              attribute sp (sp.sp_e -. cut);
              if rv.rv_send_t < sp.sp_b then local := !local +. (sp.sp_b -. rv.rv_send_t);
              incr hops;
              walk rv.rv_src rv.rv_send_t (full_bound rv.rv_src)
          | _ ->
              (* Wait resolved locally (free reacquire, local GC, or the
                 dependency predates the sink's horizon). *)
              attribute sp (sp.sp_e -. sp.sp_b);
              walk node sp.sp_b i)
  in
  walk end_node finish (full_bound end_node);
  let epochs =
    Hashtbl.fold (fun e l acc -> (e, !l) :: acc) dg.dg_arrivals []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (epoch, arr) ->
           let first = List.fold_left (fun m (_, t) -> Float.min m t) infinity arr in
           let straggler, last =
             List.fold_left
               (fun ((_, mt) as best) ((_, t) as cand) -> if t > mt then cand else best)
               (-1, neg_infinity) arr
           in
           { es_epoch = epoch; es_straggler = straggler; es_spread = last -. first; es_last = last })
  in
  {
    cp_finish = finish;
    cp_end_node = end_node;
    cp_local = !local;
    cp_data = !data;
    cp_lock = !lock;
    cp_barrier = !barrier;
    cp_gc = !gc;
    cp_hops = !hops;
    cp_segments = !segments;
    cp_top_pages = top_of_table ~top pages;
    cp_top_locks = top_of_table ~top locks;
    cp_home_pages = top_of_table ~top dg.dg_home;
    cp_epochs = epochs;
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)

let blame_json key rb =
  Json.Obj
    [
      (key, Json.Int rb.rb_id);
      ("wait_us", Json.Float rb.rb_wait);
      ("waits", Json.Int rb.rb_count);
    ]

let to_json cp =
  Json.Obj
    [
      ("finish_us", Json.Float cp.cp_finish);
      ("end_node", Json.Int cp.cp_end_node);
      ("hops", Json.Int cp.cp_hops);
      ("segments", Json.Int cp.cp_segments);
      ( "buckets",
        Json.Obj
          [
            ("local", Json.Float cp.cp_local);
            ("data", Json.Float cp.cp_data);
            ("lock", Json.Float cp.cp_lock);
            ("barrier", Json.Float cp.cp_barrier);
            ("gc", Json.Float cp.cp_gc);
          ] );
      ("top_pages", Json.List (List.map (blame_json "page") cp.cp_top_pages));
      ("top_locks", Json.List (List.map (blame_json "lock") cp.cp_top_locks));
      ("home_pages", Json.List (List.map (blame_json "page") cp.cp_home_pages));
      ( "epochs",
        Json.List
          (List.map
             (fun es ->
               Json.Obj
                 [
                   ("epoch", Json.Int es.es_epoch);
                   ("straggler", Json.Int es.es_straggler);
                   ("spread_us", Json.Float es.es_spread);
                   ("last_arrive_us", Json.Float es.es_last);
                 ])
             cp.cp_epochs) );
    ]

let render cp =
  let buf = Buffer.create 1024 in
  let pct x = if cp.cp_finish > 0. then 100. *. x /. cp.cp_finish else 0. in
  Buffer.add_string buf
    (Printf.sprintf "critical path: %.0f us ending on node %d (%d segments, %d hops)\n"
       cp.cp_finish cp.cp_end_node cp.cp_segments cp.cp_hops);
  Buffer.add_string buf "  blame          us        %\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "  %-9s %10.0f   %5.1f%%\n" name v (pct v)))
    [
      ("local", cp.cp_local);
      ("data", cp.cp_data);
      ("lock", cp.cp_lock);
      ("barrier", cp.cp_barrier);
      ("gc", cp.cp_gc);
    ];
  if cp.cp_top_pages <> [] then begin
    Buffer.add_string buf "  top pages by on-path fetch wait:\n";
    List.iter
      (fun rb ->
        Buffer.add_string buf
          (Printf.sprintf "    page %-6d %10.0f us  (%d waits)\n" rb.rb_id rb.rb_wait
             rb.rb_count))
      cp.cp_top_pages
  end;
  if cp.cp_top_locks <> [] then begin
    Buffer.add_string buf "  top locks by on-path wait (count = handoff-chain length):\n";
    List.iter
      (fun rb ->
        Buffer.add_string buf
          (Printf.sprintf "    lock %-6d %10.0f us  (chain %d)\n" rb.rb_id rb.rb_wait
             rb.rb_count))
      cp.cp_top_locks
  end;
  if cp.cp_home_pages <> [] then begin
    Buffer.add_string buf "  home waits (aggregate, nested in lock/barrier):\n";
    List.iter
      (fun rb ->
        Buffer.add_string buf
          (Printf.sprintf "    page %-6d %10.0f us  (%d waits)\n" rb.rb_id rb.rb_wait
             rb.rb_count))
      cp.cp_home_pages
  end;
  if cp.cp_epochs <> [] then begin
    Buffer.add_string buf "  barrier slack per epoch:\n";
    List.iter
      (fun es ->
        Buffer.add_string buf
          (Printf.sprintf "    epoch %-3d straggler node %-3d spread %10.0f us\n" es.es_epoch
             es.es_straggler es.es_spread))
      cp.cp_epochs
  end;
  Buffer.contents buf
