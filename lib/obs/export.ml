type format = Jsonl | Chrome

let format_of_string s =
  match String.lowercase_ascii s with
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | _ -> None

let format_name = function Jsonl -> "jsonl" | Chrome -> "chrome"

let jsonl sink =
  let buf = Buffer.create 4096 in
  Trace.iter sink (fun ev ->
      Json.to_buffer buf (Trace.to_json ev);
      Buffer.add_char buf '\n');
  if Trace.dropped sink > 0 then begin
    Json.to_buffer buf
      (Json.Obj [ ("ev", Json.String "dropped"); ("count", Json.Int (Trace.dropped sink)) ]);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

(* Chrome trace_event JSON: metadata events name the process and one thread
   per node, then every protocol event becomes a thread-scoped instant
   event ("ph":"i") at its simulated microsecond timestamp. *)
let chrome ?(name = "svm") sink =
  let nodes = Hashtbl.create 16 in
  Trace.iter sink (fun ev -> Hashtbl.replace nodes ev.Trace.node ());
  let node_ids = List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) nodes []) in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
    :: List.map
         (fun n ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int n);
               ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "node %d" n)) ]);
             ])
         node_ids
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Json.to_buffer buf m)
    meta;
  Trace.iter sink (fun ev ->
      Buffer.add_char buf ',';
      Json.to_buffer buf
        (Json.Obj
           [
             ("name", Json.String (Trace.kind_name ev.Trace.kind));
             ("cat", Json.String "svm");
             ("ph", Json.String "i");
             ("s", Json.String "t");
             ("pid", Json.Int 0);
             ("tid", Json.Int ev.Trace.node);
             ("ts", Json.Float ev.Trace.time);
             ("args", Json.Obj (Trace.kind_fields ev.Trace.kind));
           ]));
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"";
  if Trace.dropped sink > 0 then
    Buffer.add_string buf (Printf.sprintf ",\"droppedEvents\":%d" (Trace.dropped sink));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file fmt ?name file sink =
  let doc = match fmt with Jsonl -> jsonl sink | Chrome -> chrome ?name sink in
  let oc = open_out file in
  output_string oc doc;
  close_out oc
