type format = Jsonl | Chrome

let format_of_string s =
  match String.lowercase_ascii s with
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | _ -> None

let format_name = function Jsonl -> "jsonl" | Chrome -> "chrome"

let jsonl sink =
  let buf = Buffer.create 4096 in
  Trace.iter sink (fun ev ->
      Json.to_buffer buf (Trace.to_json ev);
      Buffer.add_char buf '\n');
  if Trace.dropped sink > 0 then begin
    Json.to_buffer buf
      (Json.Obj
         [
           ("ev", Json.String "dropped");
           ("count", Json.Int (Trace.dropped sink));
           ( "by_kind",
             Json.Obj
               (List.map (fun (k, n) -> (k, Json.Int n)) (Trace.dropped_by_kind sink)) );
         ]);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

(* Chrome trace_event JSON: metadata events name the process and one thread
   per node; protocol events become thread-scoped instants ("ph":"i") at
   their simulated microsecond timestamps. On top of that, three derived
   layers Perfetto can actually *analyze*:

   - Wait_begin/Wait_end pairs (causal layer; see Config.trace_spans) fuse
     into complete events ("ph":"X") named after their Figure-3 bucket, so
     waits show as solid slices with durations instead of tick marks.
   - Cross-node causality draws as flow arrows ("ph":"s"/"f"): each
     Msg_send to its Msg_recv (FIFO per channel, matching the simulated
     wormhole mesh), each remote Lock_acquire to the Lock_grant that
     satisfied it, and each Diff_request to the writer's Diff_reply. A
     flow is emitted only once both ends are seen, so every "s" has its
     "f" even on truncated sinks.
   - Counter tracks ("ph":"C"): cumulative per-node sent bytes at each
     Msg_send, and per-node protocol memory at each Mem_sample. *)
let chrome ?(name = "svm") sink =
  let nodes = Hashtbl.create 16 in
  Trace.iter sink (fun ev -> Hashtbl.replace nodes ev.Trace.node ());
  let node_ids = List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) nodes []) in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
    :: List.map
         (fun n ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int n);
               ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "node %d" n)) ]);
             ])
         node_ids
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Json.to_buffer buf m)
    meta;
  let emit j =
    Buffer.add_char buf ',';
    Json.to_buffer buf j
  in
  (* Pairing state. FIFO queues are sound because both the simulated
     network and each request/grant chain are FIFO per key. *)
  let fifo tbl key =
    match Hashtbl.find_opt tbl key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace tbl key q;
        q
  in
  let open_spans : (int, Trace.event) Hashtbl.t = Hashtbl.create 64 in
  let msg_q : (int * int, Trace.event Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let lock_q : (int * int, Trace.event Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let diff_q : (int * int * int, Trace.event Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let sent_bytes : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_flow = ref 0 in
  let flow ~fname (a : Trace.event) (b : Trace.event) =
    let id = !next_flow in
    incr next_flow;
    emit
      (Json.Obj
         [
           ("name", Json.String fname);
           ("cat", Json.String "flow");
           ("ph", Json.String "s");
           ("id", Json.Int id);
           ("pid", Json.Int 0);
           ("tid", Json.Int a.Trace.node);
           ("ts", Json.Float a.Trace.time);
         ]);
    emit
      (Json.Obj
         [
           ("name", Json.String fname);
           ("cat", Json.String "flow");
           ("ph", Json.String "f");
           ("bp", Json.String "e");
           ("id", Json.Int id);
           ("pid", Json.Int 0);
           ("tid", Json.Int b.Trace.node);
           ("ts", Json.Float b.Trace.time);
         ])
  in
  let counter ~cname ~time ~key ~value =
    emit
      (Json.Obj
         [
           ("name", Json.String cname);
           ("ph", Json.String "C");
           ("pid", Json.Int 0);
           ("ts", Json.Float time);
           ("args", Json.Obj [ (key, Json.Int value) ]);
         ])
  in
  let instant (ev : Trace.event) =
    emit
      (Json.Obj
         [
           ("name", Json.String (Trace.kind_name ev.Trace.kind));
           ("cat", Json.String "svm");
           ("ph", Json.String "i");
           ("s", Json.String "t");
           ("pid", Json.Int 0);
           ("tid", Json.Int ev.Trace.node);
           ("ts", Json.Float ev.Trace.time);
           ("args", Json.Obj (Trace.kind_fields ev.Trace.kind));
         ])
  in
  Trace.iter sink (fun ev ->
      match ev.Trace.kind with
      | Trace.Wait_begin { span; _ } -> Hashtbl.replace open_spans span ev
      | Trace.Wait_end { span; bucket; resource } -> (
          match Hashtbl.find_opt open_spans span with
          | None -> () (* begin fell off a truncated sink *)
          | Some b ->
              Hashtbl.remove open_spans span;
              emit
                (Json.Obj
                   [
                     ("name", Json.String ("wait:" ^ Trace.bucket_name bucket));
                     ("cat", Json.String "wait");
                     ("ph", Json.String "X");
                     ("pid", Json.Int 0);
                     ("tid", Json.Int b.Trace.node);
                     ("ts", Json.Float b.Trace.time);
                     ("dur", Json.Float (Float.max 0. (ev.Trace.time -. b.Trace.time)));
                     ( "args",
                       Json.Obj [ ("span", Json.Int span); ("resource", Json.Int resource) ]
                     );
                   ]))
      | Trace.Mem_sample { bytes } ->
          counter
            ~cname:(Printf.sprintf "proto_mem node %d" ev.Trace.node)
            ~time:ev.Trace.time ~key:"bytes" ~value:bytes
      | _ -> (
          instant ev;
          match ev.Trace.kind with
          | Trace.Msg_send { dst; bytes; _ } ->
              Queue.push ev (fifo msg_q (ev.Trace.node, dst));
              let total =
                bytes
                + (match Hashtbl.find_opt sent_bytes ev.Trace.node with Some b -> b | None -> 0)
              in
              Hashtbl.replace sent_bytes ev.Trace.node total;
              counter
                ~cname:(Printf.sprintf "sent_bytes node %d" ev.Trace.node)
                ~time:ev.Trace.time ~key:"bytes" ~value:total
          | Trace.Msg_recv { src; _ } -> (
              match Queue.take_opt (fifo msg_q (src, ev.Trace.node)) with
              | Some send -> flow ~fname:"msg" send ev
              | None -> ())
          | Trace.Lock_acquire { lock; remote = true } ->
              Queue.push ev (fifo lock_q (lock, ev.Trace.node))
          | Trace.Lock_grant { lock; dst; _ } -> (
              match Queue.take_opt (fifo lock_q (lock, dst)) with
              | Some acq -> flow ~fname:"lock" acq ev
              | None -> ())
          | Trace.Diff_request { page; writer; _ } ->
              Queue.push ev (fifo diff_q (page, writer, ev.Trace.node))
          | Trace.Diff_reply { page; dst; _ } -> (
              match Queue.take_opt (fifo diff_q (page, ev.Trace.node, dst)) with
              | Some req -> flow ~fname:"diff" req ev
              | None -> ())
          | _ -> ()));
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"";
  if Trace.dropped sink > 0 then
    Buffer.add_string buf (Printf.sprintf ",\"droppedEvents\":%d" (Trace.dropped sink));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file fmt ?name file sink =
  let doc = match fmt with Jsonl -> jsonl sink | Chrome -> chrome ?name sink in
  try
    let oc = open_out_bin file in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc doc)
  with Sys_error msg -> failwith (Printf.sprintf "cannot write trace file: %s" msg)

let metrics_csv = Metrics.to_csv

let write_metrics_csv file m =
  try
    let oc = open_out_bin file in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc (metrics_csv m))
  with Sys_error msg -> failwith (Printf.sprintf "cannot write metrics file: %s" msg)
