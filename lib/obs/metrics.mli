(** Sampled time-series metrics: the flight recorder behind [--metrics].

    A registry holds four primitive shapes, all keyed by simulated time and
    registered under stable names:

    - {b counters}: per-node (or run-scope) values accumulated into fixed
      time buckets of [interval] microseconds — messages sent, bytes,
      faults, retransmits per interval;
    - {b gauges}: instantaneous values sampled on the same cadence —
      in-flight packets, engine event-set size, live protocol memory.
      A bucket never sampled carries the previous sample forward
      (step-interpolation), so gauge rows are always dense;
    - {b histograms}: run-global log2-bucketed latency distributions
      (page-fetch, lock-acquire, barrier-wait, ...). Bucket 0 counts
      values in [0, 1); bucket [b >= 1] counts [2^(b-1), 2^b). Quantiles
      follow the same nearest-rank convention as [Stats.quantile] and
      report the {e inclusive upper edge} of the selected bucket, so they
      are conservative (never under-report) to within one power of two;
    - {b heatmaps}: per-page scalars — fault counts, diff counts, home
      assignment — the paper's home-placement effect as a picture.

    Everything is plain deterministic arithmetic on simulated time: two
    same-seed runs produce byte-identical serializations ([to_json],
    [to_csv]). The registry allocates on registration and on bucket growth
    only; the per-event [add]/[observe] path is allocation-free. *)

type t

type counter
type gauge
type histogram
type heatmap

type series_kind = Counter | Gauge

(** [create ~interval ~nnodes] makes an empty registry with time buckets of
    [interval] simulated microseconds. Raises [Invalid_argument] unless
    [interval > 0] and [nnodes > 0]. *)
val create : interval:float -> nnodes:int -> t

val interval : t -> float

val nnodes : t -> int

(** Number of time buckets the recorder spans: one past the highest bucket
    touched by any [add]/[sample] (0 while nothing was recorded). *)
val buckets : t -> int

(** {1 Registration}

    Registering a name twice returns the existing instrument (the kind must
    match; mismatch raises [Invalid_argument]). Serialization order is
    registration order, so register in a fixed order for determinism. *)

(** [counter t name] registers a per-node counter ([~per_node:false] for a
    single run-scope row). *)
val counter : ?per_node:bool -> t -> string -> counter

val gauge : ?per_node:bool -> t -> string -> gauge

val histogram : t -> string -> histogram

val heatmap : t -> string -> heatmap

(** {1 Recording} *)

(** [add c ~node ~time v] accumulates [v] into the bucket containing
    simulated microsecond [time]. [node] is ignored by run-scope counters. *)
val add : counter -> node:int -> time:float -> float -> unit

(** [sample g ~node ~time v] records an instantaneous reading; the last
    sample within a bucket wins. *)
val sample : gauge -> node:int -> time:float -> float -> unit

(** [observe h v] adds one value to the histogram (negative values count in
    bucket 0). *)
val observe : histogram -> float -> unit

(** [hit hm ~page v] accumulates [v] onto a page cell. *)
val hit : heatmap -> page:int -> float -> unit

(** [set hm ~page v] overwrites a page cell (last write wins — used for
    labels such as the page's home node). *)
val set : heatmap -> page:int -> float -> unit

(** {1 Reading} *)

(** All series in registration order, rows materialized to [buckets t]
    values each: one row per node for per-node series, one row for
    run-scope ones. Counter rows are zero-filled, gauge rows carry the
    last sample forward (0 before the first sample). *)
val series : t -> (string * series_kind * float array array) list

(** Per-bucket sum across a series' rows (length [buckets t]); [None] if no
    series of that name was registered. *)
val series_total : t -> string -> float array option

type histogram_stats = {
  hs_count : int;
  hs_sum : float;
  hs_max : float;  (** Exact maximum observed (not an edge). *)
  hs_p50 : float option;
  hs_p90 : float option;
  hs_p99 : float option;
      (** Nearest-rank bucket upper edges; [None] when the histogram is
          empty (percentiles of nothing are undefined, not 0). *)
}

val histogram_stats : histogram -> histogram_stats

(** Nearest-rank quantile over the log2 buckets: the inclusive upper edge
    of the bucket holding rank [ceil (p * count)] (clamped to [1, count]);
    [None] on an empty histogram. *)
val quantile_upper : histogram -> float -> float option

(** Non-empty [(upper_edge, count)] buckets, ascending. *)
val histogram_buckets : histogram -> (float * int) list

val histograms : t -> (string * histogram) list

(** [(page, value)] cells, ascending by page. *)
val heatmap_entries : heatmap -> (int * float) list

(** Value of one page cell, [None] if never touched. *)
val heatmap_find : heatmap -> int -> float option

val heatmaps : t -> (string * heatmap) list

(** {1 Serialization} *)

(** The report-JSON [timeline] block:
    [{"interval_us", "buckets", "series": [{name; kind; per_node; rows}],
      "histograms": [{name; count; sum; max; p50; p90; p99;
                      buckets: [{le; count}]}],
      "heatmaps": [{name; pages: [{page; value}]}]}].
    The [p50]/[p90]/[p99] fields are omitted when [count = 0]. *)
val to_json : t -> Json.t

(** Long-format CSV of the time series (histograms and heatmaps live in
    [to_json]): header [time_us,node,series,value], then one row per
    bucket x row x series in bucket-major order. Run-scope rows use node
    [-1]. Values print via {!Json.float_string}. *)
val to_csv : t -> string

(** Unicode sparkline of [values] (block elements U+2581-2588, scaled to
    the maximum; empty string for the empty array). [width] (default 64)
    caps the length: longer inputs are resampled by summing equal runs of
    adjacent buckets — right for counters; pass gauges through
    {!val-series} at native resolution or accept the summed approximation. *)
val spark : ?width:int -> float array -> string
