(* Which Figure-3 wait bucket a span covers. [Wb_home] spans annotate a
   home-wait nested inside an outer lock/barrier wait (the node stays
   blocked under the outer bucket while its own master copies catch up). *)
type wait_bucket = Wb_data | Wb_lock | Wb_barrier | Wb_gc | Wb_home

let bucket_name = function
  | Wb_data -> "data"
  | Wb_lock -> "lock"
  | Wb_barrier -> "barrier"
  | Wb_gc -> "gc"
  | Wb_home -> "home"

type kind =
  | Page_fetch of { page : int; home : int }
  | Page_fetch_pending of { page : int }
  | Batch_fetch of { page : int; home : int; pages : int }
  | Full_page_fetch of { page : int; source : int }
  | Diff_request of { page : int; writer : int; intervals : int }
  | Diff_create of { page : int; words : int; bytes : int }
  | Diff_apply of { page : int; words : int; bytes : int }
  | Diff_flush of { page : int; writer : int; index : int; bytes : int }
  | Au_stamp of { page : int; writer : int; index : int }
  | Eager_update of { page : int; writer : int; bytes : int }
  | Write_notice of { writer : int; index : int; pages : int }
  | Interval_end of { index : int; pages : int list }
  | Lock_acquire of { lock : int; remote : bool }
  | Lock_grant of { lock : int; dst : int; intervals : int }
  | Lock_queued of { lock : int; requester : int }
  | Home_wait of { page : int }
  | Barrier_arrive of { epoch : int; intervals : int }
  | Barrier_release of { epoch : int; gc : bool }
  | Home_migration of { page : int; dst : int }
  | Gc_start of { mem_bytes : int }
  | Gc_done
  | Msg_send of { dst : int; bytes : int; update : int }
  | Msg_recv of { src : int; bytes : int; update : int }
  | Msg_drop of { dst : int; seq : int; bytes : int; ack : bool }
  | Msg_retransmit of { dst : int; seq : int; retries : int }
  | Msg_ack of { dst : int; upto : int }
  | Msg_duplicate_dropped of { src : int; seq : int }
  | Watchdog_stall of { blocked : int; inflight : int }
  | Wait_begin of { span : int; bucket : wait_bucket; resource : int }
  | Wait_end of { span : int; bucket : wait_bucket; resource : int }
  | Mem_sample of { bytes : int }
  | Diff_reply of { page : int; dst : int; bytes : int }
  | Node_kill of { node : int }
  | Msg_peer_dead of { peer : int; seq : int; bytes : int }
  | Failover of { page : int; from_ : int; to_ : int }
  | Repl_update of { page : int; dst : int; bytes : int }
  | Repl_inval of { page : int; dst : int }
  | Suspect of { peer : int }
  | Refute of { peer : int }
  | Depose of { node : int }
  | Rejoin of { node : int }
  | Fenced_fetch of { page : int; requester : int }

type event = { time : float; node : int; kind : kind }

let kind_name = function
  | Page_fetch _ -> "page_fetch"
  | Page_fetch_pending _ -> "page_fetch_pending"
  | Batch_fetch _ -> "batch_fetch"
  | Full_page_fetch _ -> "full_page_fetch"
  | Diff_request _ -> "diff_request"
  | Diff_create _ -> "diff_create"
  | Diff_apply _ -> "diff_apply"
  | Diff_flush _ -> "diff_flush"
  | Au_stamp _ -> "au_stamp"
  | Eager_update _ -> "eager_update"
  | Write_notice _ -> "write_notice"
  | Interval_end _ -> "interval_end"
  | Lock_acquire _ -> "lock_acquire"
  | Lock_grant _ -> "lock_grant"
  | Lock_queued _ -> "lock_queued"
  | Home_wait _ -> "home_wait"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_release _ -> "barrier_release"
  | Home_migration _ -> "home_migration"
  | Gc_start _ -> "gc_start"
  | Gc_done -> "gc_done"
  | Msg_send _ -> "msg_send"
  | Msg_recv _ -> "msg_recv"
  | Msg_drop _ -> "msg_drop"
  | Msg_retransmit _ -> "msg_retransmit"
  | Msg_ack _ -> "msg_ack"
  | Msg_duplicate_dropped _ -> "msg_duplicate_dropped"
  | Watchdog_stall _ -> "watchdog_stall"
  | Wait_begin _ -> "wait_begin"
  | Wait_end _ -> "wait_end"
  | Mem_sample _ -> "mem_sample"
  | Diff_reply _ -> "diff_reply"
  | Node_kill _ -> "node_kill"
  | Msg_peer_dead _ -> "msg_peer_dead"
  | Failover _ -> "failover"
  | Repl_update _ -> "repl_update"
  | Repl_inval _ -> "repl_inval"
  | Suspect _ -> "suspect"
  | Refute _ -> "refute"
  | Depose _ -> "depose"
  | Rejoin _ -> "rejoin"
  | Fenced_fetch _ -> "fenced_fetch"

let kind_fields = function
  | Page_fetch { page; home } -> [ ("page", Json.Int page); ("home", Json.Int home) ]
  | Page_fetch_pending { page } -> [ ("page", Json.Int page) ]
  | Batch_fetch { page; home; pages } ->
      [ ("page", Json.Int page); ("home", Json.Int home); ("pages", Json.Int pages) ]
  | Full_page_fetch { page; source } -> [ ("page", Json.Int page); ("source", Json.Int source) ]
  | Diff_request { page; writer; intervals } ->
      [ ("page", Json.Int page); ("writer", Json.Int writer); ("intervals", Json.Int intervals) ]
  | Diff_create { page; words; bytes } ->
      [ ("page", Json.Int page); ("words", Json.Int words); ("bytes", Json.Int bytes) ]
  | Diff_apply { page; words; bytes } ->
      [ ("page", Json.Int page); ("words", Json.Int words); ("bytes", Json.Int bytes) ]
  | Diff_flush { page; writer; index; bytes } ->
      [
        ("page", Json.Int page);
        ("writer", Json.Int writer);
        ("index", Json.Int index);
        ("bytes", Json.Int bytes);
      ]
  | Au_stamp { page; writer; index } ->
      [ ("page", Json.Int page); ("writer", Json.Int writer); ("index", Json.Int index) ]
  | Eager_update { page; writer; bytes } ->
      [ ("page", Json.Int page); ("writer", Json.Int writer); ("bytes", Json.Int bytes) ]
  | Write_notice { writer; index; pages } ->
      [ ("writer", Json.Int writer); ("index", Json.Int index); ("pages", Json.Int pages) ]
  | Interval_end { index; pages } ->
      [ ("index", Json.Int index); ("pages", Json.List (List.map (fun p -> Json.Int p) pages)) ]
  | Lock_acquire { lock; remote } -> [ ("lock", Json.Int lock); ("remote", Json.Bool remote) ]
  | Lock_grant { lock; dst; intervals } ->
      [ ("lock", Json.Int lock); ("dst", Json.Int dst); ("intervals", Json.Int intervals) ]
  | Lock_queued { lock; requester } ->
      [ ("lock", Json.Int lock); ("requester", Json.Int requester) ]
  | Home_wait { page } -> [ ("page", Json.Int page) ]
  | Barrier_arrive { epoch; intervals } ->
      [ ("epoch", Json.Int epoch); ("intervals", Json.Int intervals) ]
  | Barrier_release { epoch; gc } -> [ ("epoch", Json.Int epoch); ("gc", Json.Bool gc) ]
  | Home_migration { page; dst } -> [ ("page", Json.Int page); ("dst", Json.Int dst) ]
  | Gc_start { mem_bytes } -> [ ("mem_bytes", Json.Int mem_bytes) ]
  | Gc_done -> []
  | Msg_send { dst; bytes; update } ->
      [ ("dst", Json.Int dst); ("bytes", Json.Int bytes); ("update", Json.Int update) ]
  | Msg_recv { src; bytes; update } ->
      [ ("src", Json.Int src); ("bytes", Json.Int bytes); ("update", Json.Int update) ]
  | Msg_drop { dst; seq; bytes; ack } ->
      [
        ("dst", Json.Int dst);
        ("seq", Json.Int seq);
        ("bytes", Json.Int bytes);
        ("ack", Json.Bool ack);
      ]
  | Msg_retransmit { dst; seq; retries } ->
      [ ("dst", Json.Int dst); ("seq", Json.Int seq); ("retries", Json.Int retries) ]
  | Msg_ack { dst; upto } -> [ ("dst", Json.Int dst); ("upto", Json.Int upto) ]
  | Msg_duplicate_dropped { src; seq } -> [ ("src", Json.Int src); ("seq", Json.Int seq) ]
  | Watchdog_stall { blocked; inflight } ->
      [ ("blocked", Json.Int blocked); ("inflight", Json.Int inflight) ]
  | Wait_begin { span; bucket; resource } | Wait_end { span; bucket; resource } ->
      [
        ("span", Json.Int span);
        ("bucket", Json.String (bucket_name bucket));
        ("resource", Json.Int resource);
      ]
  | Mem_sample { bytes } -> [ ("bytes", Json.Int bytes) ]
  | Diff_reply { page; dst; bytes } ->
      [ ("page", Json.Int page); ("dst", Json.Int dst); ("bytes", Json.Int bytes) ]
  | Node_kill { node } -> [ ("node", Json.Int node) ]
  | Msg_peer_dead { peer; seq; bytes } ->
      [ ("peer", Json.Int peer); ("seq", Json.Int seq); ("bytes", Json.Int bytes) ]
  | Failover { page; from_; to_ } ->
      [ ("page", Json.Int page); ("from", Json.Int from_); ("to", Json.Int to_) ]
  | Repl_update { page; dst; bytes } ->
      [ ("page", Json.Int page); ("dst", Json.Int dst); ("bytes", Json.Int bytes) ]
  | Repl_inval { page; dst } -> [ ("page", Json.Int page); ("dst", Json.Int dst) ]
  | Suspect { peer } -> [ ("peer", Json.Int peer) ]
  | Refute { peer } -> [ ("peer", Json.Int peer) ]
  (* "victim", not "node": the envelope already has a "node" field (the
     emitting node — a deposing voter / the rejoiner itself). *)
  | Depose { node } -> [ ("victim", Json.Int node) ]
  | Rejoin { node } -> [ ("victim", Json.Int node) ]
  | Fenced_fetch { page; requester } ->
      [ ("page", Json.Int page); ("requester", Json.Int requester) ]

let to_json ev =
  Json.Obj
    (("ts", Json.Float ev.time)
    :: ("node", Json.Int ev.node)
    :: ("ev", Json.String (kind_name ev.kind))
    :: kind_fields ev.kind)

(* Exact reproductions of the strings the pre-typed tracer emitted at each
   site; the legacy callback adapter in the runtime depends on this mapping
   staying verbatim. *)
let render = function
  | Page_fetch { page; home } ->
      Some (Printf.sprintf "page fault: fetch page %d from home %d" page home)
  | Page_fetch_pending { page } ->
      Some (Printf.sprintf "fetch of page %d pending (flush behind)" page)
  | Batch_fetch { page; home; pages } ->
      Some (Printf.sprintf "batched fetch: %d pages from %d at home %d" pages page home)
  | Full_page_fetch { page; source } ->
      Some (Printf.sprintf "full-page fetch: page %d from node %d" page source)
  | Diff_request { page; writer; intervals } ->
      Some (Printf.sprintf "diff request: page %d from writer %d (%d intervals)" page writer intervals)
  | Diff_flush { page; writer; index; _ } ->
      Some
        (Printf.sprintf "applied flush diff for page %d from node %d (interval %d)" page writer
           index)
  | Au_stamp { page; writer; index } ->
      Some
        (Printf.sprintf "AU flush stamp for page %d from node %d (interval %d)" page writer index)
  | Eager_update { page; writer; _ } ->
      Some (Printf.sprintf "applied eager update for page %d from node %d" page writer)
  | Interval_end { index; pages } ->
      Some
        (Printf.sprintf "interval %d ends: pages [%s]" index
           (String.concat ";" (List.map string_of_int pages)))
  | Lock_acquire { lock; remote } ->
      if remote then Some (Printf.sprintf "remote acquire of lock %d" lock) else None
  | Lock_grant { lock; dst; intervals } ->
      Some (Printf.sprintf "grant lock %d to node %d (%d interval records)" lock dst intervals)
  | Lock_queued { lock; requester } ->
      Some (Printf.sprintf "lock %d busy; node %d queued" lock requester)
  | Home_wait { page } -> Some (Printf.sprintf "home-wait: page %d flush behind" page)
  | Barrier_arrive { intervals; _ } ->
      Some (Printf.sprintf "enters barrier (%d own interval records)" intervals)
  | Barrier_release { epoch; gc } ->
      Some (Printf.sprintf "barrier %d completes%s" epoch (if gc then " (gc)" else ""))
  | Home_migration { page; dst } ->
      Some (Printf.sprintf "migrating home of page %d to node %d" page dst)
  | Gc_start { mem_bytes } ->
      Some (Printf.sprintf "gc: start (protocol memory %d bytes)" mem_bytes)
  | Gc_done -> Some "gc: discarded diffs and interval records"
  (* Chaos/transport kinds postdate the legacy tracer; their lines are new,
     not reproductions, so they may say whatever reads best. *)
  | Msg_drop { dst; seq; bytes; ack } ->
      Some
        (Printf.sprintf "chaos: network dropped %s to node %d (seq %d, %d bytes)"
           (if ack then "ack" else "message")
           dst seq bytes)
  | Msg_retransmit { dst; seq; retries } ->
      Some (Printf.sprintf "transport: retransmit seq %d to node %d (attempt %d)" seq dst retries)
  | Msg_ack { dst; upto } -> Some (Printf.sprintf "transport: ack up to seq %d to node %d" upto dst)
  | Msg_duplicate_dropped { src; seq } ->
      Some (Printf.sprintf "transport: dropped duplicate seq %d from node %d" seq src)
  | Watchdog_stall { blocked; inflight } ->
      Some
        (Printf.sprintf "watchdog: no progress (%d blocked nodes, %d in-flight packets)" blocked
           inflight)
  (* Replication/failover kinds are chaos-era too: free-form lines. *)
  | Node_kill { node } -> Some (Printf.sprintf "chaos: node %d killed (links silenced)" node)
  | Msg_peer_dead { peer; seq; bytes } ->
      Some (Printf.sprintf "transport: peer %d dead, abandoned seq %d (%d bytes)" peer seq bytes)
  | Failover { page; from_; to_ } ->
      Some (Printf.sprintf "failover: page %d re-homed from dead node %d to node %d" page from_ to_)
  | Repl_update { page; dst; bytes } ->
      Some (Printf.sprintf "replication: update for page %d to backup %d (%d bytes)" page dst bytes)
  | Repl_inval { page; dst } ->
      Some (Printf.sprintf "replication: invalidate page %d at backup %d" page dst)
  (* Heartbeat-detector kinds (newer still): free-form lines. *)
  | Suspect { peer } -> Some (Printf.sprintf "detector: suspecting node %d (silent past timeout)" peer)
  | Refute { peer } -> Some (Printf.sprintf "detector: heard node %d again, suspicion retracted" peer)
  | Depose { node } -> Some (Printf.sprintf "detector: quorum deposed node %d" node)
  | Rejoin { node } -> Some (Printf.sprintf "detector: node %d rejoined as fresh replica" node)
  | Fenced_fetch { page; requester } ->
      Some
        (Printf.sprintf "fence: refused stale-authority serve of page %d to node %d" page
           requester)
  (* Causal-layer kinds (spans, counter samples, reply correlation) are
     opt-in and machine-oriented; they have no legacy line either. *)
  | Diff_create _ | Diff_apply _ | Write_notice _ | Msg_send _ | Msg_recv _ | Wait_begin _
  | Wait_end _ | Mem_sample _ | Diff_reply _ ->
      None

(* ------------------------------------------------------------------ *)
(* Bounded sink: a growing array capped at [capacity]; overflow is      *)
(* counted, not stored, so tracing a long run cannot exhaust memory.    *)

type sink = {
  mutable buf : event array;
  mutable len : int;
  capacity : int;
  mutable n_dropped : int;
  drop_kinds : (string, int ref) Hashtbl.t;  (* kind_name -> drops of that kind *)
}

let dummy = { time = 0.; node = 0; kind = Gc_done }

let create_sink ?(capacity = 1_000_000) () =
  if capacity <= 0 then invalid_arg "Trace.create_sink: capacity must be positive";
  {
    buf = Array.make (min capacity 1024) dummy;
    len = 0;
    capacity;
    n_dropped = 0;
    drop_kinds = Hashtbl.create 8;
  }

let count_drop s name n =
  match Hashtbl.find_opt s.drop_kinds name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add s.drop_kinds name (ref n)

let emit s ev =
  if s.len >= s.capacity then begin
    s.n_dropped <- s.n_dropped + 1;
    count_drop s (kind_name ev.kind) 1
  end
  else begin
    if s.len >= Array.length s.buf then begin
      let buf' = Array.make (min s.capacity (2 * Array.length s.buf)) dummy in
      Array.blit s.buf 0 buf' 0 s.len;
      s.buf <- buf'
    end;
    s.buf.(s.len) <- ev;
    s.len <- s.len + 1
  end

(* Append [src]'s stored events (and its overflow count) to [dst]. Replaying
   per-cell sinks into a shared one in deterministic cell order makes a
   parallel sweep's merged trace byte-identical to a sequential run's: the
   shared sink stores the same first-[capacity] events and counts the same
   total drops, because drops commute — whatever [src] dropped past its own
   cap plus whatever [dst] drops here sums to exactly what a single shared
   sink would have dropped. *)
let absorb dst src =
  for i = 0 to src.len - 1 do
    emit dst src.buf.(i)
  done;
  dst.n_dropped <- dst.n_dropped + src.n_dropped;
  Hashtbl.iter (fun name r -> count_drop dst name !r) src.drop_kinds

let events s = Array.to_list (Array.sub s.buf 0 s.len)

let iter s f =
  for i = 0 to s.len - 1 do
    f s.buf.(i)
  done

let length s = s.len

let capacity s = s.capacity

let dropped s = s.n_dropped

let dropped_by_kind s =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.drop_kinds []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
