type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal representation that round-trips to the same double:
   re-parsing the output and serializing again is byte-stable, which the
   determinism guarantees (and the JSONL round-trip tests) rely on. *)
let float_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_string f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let rec pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          escape buf k;
          Buffer.add_string buf ": ";
          pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                   in
                   (* Only BMP codepoints; encode as UTF-8. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape %C" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if lit = "" then fail "expected a number";
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let to_list = function List xs -> Some xs | _ -> None
