(* Sampled time-series metrics. See metrics.mli for the model.

   Storage: each series keeps one growable float array per row (node, or a
   single run-scope row). Counter cells start at 0 and accumulate; gauge
   cells start at nan (= "never sampled") and are forward-filled at read
   time, which keeps the distinction between "sampled zero" and "no sample
   this bucket" until serialization. Histograms are 64 fixed log2 buckets;
   heatmaps are hashtables over page indices. *)

type series_kind = Counter | Gauge

type series = {
  sr_name : string;
  sr_kind : series_kind;
  mutable sr_rows : float array array;  (* row -> per-bucket cells *)
}

type counter = { c_series : series; c_owner : t }
and gauge = { g_series : series; g_owner : t }

and histogram = {
  h_name : string;
  h_counts : int array;  (* 64 log2 buckets *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

and heatmap = {
  hm_name : string;
  hm_cells : (int, float ref) Hashtbl.t;
}

and t = {
  m_interval : float;
  m_nnodes : int;
  mutable m_buckets : int;  (* one past the highest touched bucket *)
  mutable m_series : series list;  (* reversed registration order *)
  mutable m_hists : histogram list;
  mutable m_heats : heatmap list;
}

let create ~interval ~nnodes =
  if not (interval > 0.) then invalid_arg "Metrics.create: interval must be > 0";
  if nnodes <= 0 then invalid_arg "Metrics.create: nnodes must be > 0";
  {
    m_interval = interval;
    m_nnodes = nnodes;
    m_buckets = 0;
    m_series = [];
    m_hists = [];
    m_heats = [];
  }

let interval t = t.m_interval
let nnodes t = t.m_nnodes
let buckets t = t.m_buckets

(* Registration *)

let unset_of = function Counter -> 0. | Gauge -> Float.nan

let find_series t name = List.find_opt (fun s -> s.sr_name = name) t.m_series

let register_series t name kind ~per_node =
  match find_series t name with
  | Some s ->
      if s.sr_kind <> kind then
        invalid_arg (Printf.sprintf "Metrics: %S already registered with another kind" name);
      s
  | None ->
      let rows = if per_node then t.m_nnodes else 1 in
      let s = { sr_name = name; sr_kind = kind; sr_rows = Array.init rows (fun _ -> [||]) } in
      t.m_series <- s :: t.m_series;
      s

let counter ?(per_node = true) t name =
  { c_series = register_series t name Counter ~per_node; c_owner = t }

let gauge ?(per_node = true) t name =
  { g_series = register_series t name Gauge ~per_node; g_owner = t }

let histogram t name =
  match List.find_opt (fun h -> h.h_name = name) t.m_hists with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; h_counts = Array.make 64 0; h_count = 0; h_sum = 0.; h_max = 0. }
      in
      t.m_hists <- h :: t.m_hists;
      h

let heatmap t name =
  match List.find_opt (fun hm -> hm.hm_name = name) t.m_heats with
  | Some hm -> hm
  | None ->
      let hm = { hm_name = name; hm_cells = Hashtbl.create 64 } in
      t.m_heats <- hm :: t.m_heats;
      hm

(* Recording *)

let bucket_of t time =
  let b = int_of_float (time /. t.m_interval) in
  if b < 0 then 0 else b

let cell t s ~node ~time =
  let row = if Array.length s.sr_rows = 1 then 0 else node in
  if row < 0 || row >= Array.length s.sr_rows then
    invalid_arg (Printf.sprintf "Metrics: node %d out of range for %S" node s.sr_name);
  let b = bucket_of t time in
  if b >= t.m_buckets then t.m_buckets <- b + 1;
  let cells = s.sr_rows.(row) in
  if b >= Array.length cells then begin
    let cap = max 16 (max (b + 1) (2 * Array.length cells)) in
    let grown = Array.make cap (unset_of s.sr_kind) in
    Array.blit cells 0 grown 0 (Array.length cells);
    s.sr_rows.(row) <- grown;
    (row, b)
  end
  else (row, b)

let add c ~node ~time v =
  let row, b = cell c.c_owner c.c_series ~node ~time in
  let cells = c.c_series.sr_rows.(row) in
  cells.(b) <- cells.(b) +. v

let sample g ~node ~time v =
  let row, b = cell g.g_owner g.g_series ~node ~time in
  g.g_series.sr_rows.(row).(b) <- v

(* Log2 bucket of v: 0 for v < 1, else b with 2^(b-1) <= v < 2^b, clamped
   to 63. The doubling loop avoids float log imprecision at the edges. *)
let log2_bucket v =
  if not (v >= 1.) then 0
  else begin
    let b = ref 1 and edge = ref 2. in
    while v >= !edge && !b < 63 do
      incr b;
      edge := !edge *. 2.
    done;
    !b
  end

let bucket_upper b = if b = 0 then 1. else Float.of_int 2 ** Float.of_int b

let observe h v =
  let b = log2_bucket v in
  h.h_counts.(b) <- h.h_counts.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v > h.h_max then h.h_max <- v

let hit hm ~page v =
  match Hashtbl.find_opt hm.hm_cells page with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add hm.hm_cells page (ref v)

let set hm ~page v =
  match Hashtbl.find_opt hm.hm_cells page with
  | Some r -> r := v
  | None -> Hashtbl.add hm.hm_cells page (ref v)

(* Reading *)

(* Materialize a row to [n] cells: zero-fill counters; forward-fill gauges
   (a bucket without a sample carries the previous one; 0 before the
   first). *)
let materialize_row kind row n =
  let out = Array.make n 0. in
  let last = ref 0. in
  for i = 0 to n - 1 do
    let v = if i < Array.length row then row.(i) else Float.nan in
    (match kind with
    | Counter -> if not (Float.is_nan v) then out.(i) <- v
    | Gauge -> if not (Float.is_nan v) then last := v);
    if kind = Gauge then out.(i) <- !last
  done;
  out

let series t =
  List.rev_map
    (fun s ->
      (s.sr_name, s.sr_kind, Array.map (fun row -> materialize_row s.sr_kind row t.m_buckets) s.sr_rows))
    t.m_series

let series_total t name =
  match find_series t name with
  | None -> None
  | Some s ->
      let total = Array.make t.m_buckets 0. in
      Array.iter
        (fun row ->
          let m = materialize_row s.sr_kind row t.m_buckets in
          Array.iteri (fun i v -> total.(i) <- total.(i) +. v) m)
        s.sr_rows;
      Some total

(* Nearest-rank quantile over the log2 buckets, same convention as
   Stats.quantile: rank = ceil (p * count) clamped to [1, count]; report
   the inclusive upper edge of the bucket holding that rank. None on an
   empty histogram. *)
let quantile_upper h p =
  if h.h_count = 0 then None
  else begin
    let rank =
      min h.h_count (max 1 (int_of_float (ceil (p *. float_of_int h.h_count))))
    in
    let b = ref 0 and seen = ref 0 in
    while !seen < rank && !b < 64 do
      seen := !seen + h.h_counts.(!b);
      if !seen < rank then incr b
    done;
    Some (bucket_upper (min !b 63))
  end

type histogram_stats = {
  hs_count : int;
  hs_sum : float;
  hs_max : float;
  hs_p50 : float option;
  hs_p90 : float option;
  hs_p99 : float option;
}

let histogram_stats h =
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_max = h.h_max;
    hs_p50 = quantile_upper h 0.5;
    hs_p90 = quantile_upper h 0.9;
    hs_p99 = quantile_upper h 0.99;
  }

let histogram_buckets h =
  let out = ref [] in
  for b = 63 downto 0 do
    if h.h_counts.(b) > 0 then out := (bucket_upper b, h.h_counts.(b)) :: !out
  done;
  !out

let histograms t = List.rev_map (fun h -> (h.h_name, h)) t.m_hists

let heatmap_entries hm =
  Hashtbl.fold (fun page r acc -> (page, !r) :: acc) hm.hm_cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let heatmap_find hm page = Option.map ( ! ) (Hashtbl.find_opt hm.hm_cells page)

let heatmaps t = List.rev_map (fun hm -> (hm.hm_name, hm)) t.m_heats

(* Serialization *)

let to_json t =
  let series_json =
    List.map
      (fun (name, kind, rows) ->
        Json.Obj
          [
            ("name", Json.String name);
            ("kind", Json.String (match kind with Counter -> "counter" | Gauge -> "gauge"));
            ("per_node", Json.Bool (Array.length rows > 1));
            ( "rows",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun row -> Json.List (Array.to_list (Array.map (fun v -> Json.Float v) row)))
                      rows)) );
          ])
      (series t)
  in
  let hist_json =
    List.map
      (fun (name, h) ->
        let s = histogram_stats h in
        (* Percentiles of an empty histogram are undefined: omit the
           fields rather than encode a fake 0. *)
        let pcts =
          match (s.hs_p50, s.hs_p90, s.hs_p99) with
          | Some p50, Some p90, Some p99 ->
              [
                ("p50", Json.Float p50);
                ("p90", Json.Float p90);
                ("p99", Json.Float p99);
              ]
          | _ -> []
        in
        Json.Obj
          ([
             ("name", Json.String name);
             ("count", Json.Int s.hs_count);
             ("sum", Json.Float s.hs_sum);
             ("max", Json.Float s.hs_max);
           ]
          @ pcts
          @ [
            ( "buckets",
              Json.List
                (List.map
                   (fun (le, count) -> Json.Obj [ ("le", Json.Float le); ("count", Json.Int count) ])
                   (histogram_buckets h)) );
          ]))
      (histograms t)
  in
  let heat_json =
    List.map
      (fun (name, hm) ->
        Json.Obj
          [
            ("name", Json.String name);
            ( "pages",
              Json.List
                (List.map
                   (fun (page, v) -> Json.Obj [ ("page", Json.Int page); ("value", Json.Float v) ])
                   (heatmap_entries hm)) );
          ])
      (heatmaps t)
  in
  Json.Obj
    [
      ("interval_us", Json.Float t.m_interval);
      ("buckets", Json.Int t.m_buckets);
      ("series", Json.List series_json);
      ("histograms", Json.List hist_json);
      ("heatmaps", Json.List heat_json);
    ]

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time_us,node,series,value\n";
  let all = series t in
  for b = 0 to t.m_buckets - 1 do
    List.iter
      (fun (name, _, rows) ->
        let per_node = Array.length rows > 1 in
        Array.iteri
          (fun i row ->
            let node = if per_node then i else -1 in
            Buffer.add_string buf (Json.float_string (float_of_int b *. t.m_interval));
            Buffer.add_char buf ',';
            Buffer.add_string buf (string_of_int node);
            Buffer.add_char buf ',';
            Buffer.add_string buf name;
            Buffer.add_char buf ',';
            Buffer.add_string buf (Json.float_string row.(b));
            Buffer.add_char buf '\n')
          rows)
      all
  done;
  Buffer.contents buf

(* Eight block elements, one-eighth steps: U+2581 .. U+2588. *)
let spark_levels =
  [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let resample values width =
  let n = Array.length values in
  if n <= width then values
  else
    Array.init width (fun i ->
        (* Equal-ish runs of adjacent buckets, summed. *)
        let lo = i * n / width and hi = (i + 1) * n / width in
        let acc = ref 0. in
        for j = lo to max lo (hi - 1) do
          acc := !acc +. values.(j)
        done;
        !acc)

let spark ?(width = 64) values =
  let values = resample values (max 1 width) in
  let hi = Array.fold_left max 0. values in
  let buf = Buffer.create (3 * Array.length values) in
  Array.iter
    (fun v ->
      let level =
        if hi <= 0. || v <= 0. then 0
        else min 7 (int_of_float (v /. hi *. 8.))
      in
      Buffer.add_string buf spark_levels.(level))
    values;
  Buffer.contents buf
