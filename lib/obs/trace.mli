(** Typed protocol trace events and the bounded in-memory sink.

    Every observable protocol action — page fetches, diff create/apply/
    flush, write notices, lock traffic, barrier phases, home migration, GC,
    raw message send/receive — is a {!kind} carrying its structured fields
    (page / lock ids, peer nodes, byte counts). The runtime wraps kinds
    into {!event}s stamped with the emitting node and its simulated clock
    (microseconds) and pushes them into a {!sink}; the exporters in
    {!Export} then serialize the sink to JSONL or Chrome [trace_event]
    format.

    The legacy [(float -> string -> unit)] trace callback of
    {!Svm.Runtime.run} is a thin adapter over this stream: {!render} maps
    each kind back to exactly the human-readable line the old string-based
    tracer printed ([None] for kinds that had no legacy line, such as
    message send/receive). *)

(** Figure-3 wait bucket of a {!Wait_begin}/{!Wait_end} span. [Wb_home]
    annotates a home-wait nested inside an outer lock/barrier wait (the
    node stays blocked under the outer bucket while in-flight diffs reach
    its own master copies). *)
type wait_bucket = Wb_data | Wb_lock | Wb_barrier | Wb_gc | Wb_home

(** Stable lowercase tag of the bucket (["data"] | ["lock"] | ["barrier"] |
    ["gc"] | ["home"]), as serialized in exports. *)
val bucket_name : wait_bucket -> string

type kind =
  | Page_fetch of { page : int; home : int }  (** Home-based fetch request. *)
  | Page_fetch_pending of { page : int }  (** Home defers a fetch: flush behind. *)
  | Batch_fetch of { page : int; home : int; pages : int }
      (** Batched fault handling ([--fault-batch] > 1): [pages] adjacent
          invalid pages starting at [page] pulled in one round trip. *)
  | Full_page_fetch of { page : int; source : int }  (** Homeless base-copy fetch. *)
  | Diff_request of { page : int; writer : int; intervals : int }
  | Diff_create of { page : int; words : int; bytes : int }
  | Diff_apply of { page : int; words : int; bytes : int }
  | Diff_flush of { page : int; writer : int; index : int; bytes : int }
      (** A flushed diff applied to the home's master copy. *)
  | Au_stamp of { page : int; writer : int; index : int }
      (** AURC release timestamp reaching the home. *)
  | Eager_update of { page : int; writer : int; bytes : int }
      (** Eager-RC push applied at a copyset member. *)
  | Write_notice of { writer : int; index : int; pages : int }
      (** One received interval record processed ([pages] = pages noticed). *)
  | Interval_end of { index : int; pages : int list }
  | Lock_acquire of { lock : int; remote : bool }
  | Lock_grant of { lock : int; dst : int; intervals : int }
  | Lock_queued of { lock : int; requester : int }
  | Home_wait of { page : int }  (** Blocked on own home copy's in-flight diffs. *)
  | Barrier_arrive of { epoch : int; intervals : int }
  | Barrier_release of { epoch : int; gc : bool }
  | Home_migration of { page : int; dst : int }
  | Gc_start of { mem_bytes : int }
  | Gc_done
  | Msg_send of { dst : int; bytes : int; update : int }
  | Msg_recv of { src : int; bytes : int; update : int }
  | Msg_drop of { dst : int; seq : int; bytes : int; ack : bool }
      (** Chaos: the network lost a copy ([ack] = a lost acknowledgement). *)
  | Msg_retransmit of { dst : int; seq : int; retries : int }
      (** Transport timeout: the packet went out again. *)
  | Msg_ack of { dst : int; upto : int }
      (** Cumulative transport acknowledgement sent to [dst]. *)
  | Msg_duplicate_dropped of { src : int; seq : int }
      (** Receiver-side dedup discarded an already-seen sequence number. *)
  | Watchdog_stall of { blocked : int; inflight : int }
      (** No-progress watchdog: quiescent engine with unfinished nodes, or
          a transport retry-cap breach. *)
  | Wait_begin of { span : int; bucket : wait_bucket; resource : int }
      (** A wait interval opens. [span] is a run-unique id pairing it with
          its {!Wait_end}; [resource] is the page (data/home waits), lock
          (lock waits) or epoch (barrier waits) being waited on. Emitted
          only when {!Config.trace_spans} is on. *)
  | Wait_end of { span : int; bucket : wait_bucket; resource : int }
      (** The matching wait interval closes (same gating). *)
  | Mem_sample of { bytes : int }
      (** Periodic sample of the node's live protocol memory (barrier
          arrivals and GC starts), for counter tracks (same gating). *)
  | Diff_reply of { page : int; dst : int; bytes : int }
      (** A writer starts the reply to a {!Diff_request} from [dst]; lets
          the exporter draw the request→reply flow (same gating). *)
  | Node_kill of { node : int }
      (** Chaos node-fault schedule: the node crash-stopped — its inbound
          and outbound links are silenced from now on. *)
  | Msg_peer_dead of { peer : int; seq : int; bytes : int }
      (** A send or in-flight packet abandoned because [peer] is dead
          ([seq] = -1 on the transport-less fast path). *)
  | Failover of { page : int; from_ : int; to_ : int }
      (** The failure detector promoted replica [to_] to primary for
          [page] after home [from_] died. *)
  | Repl_update of { page : int; dst : int; bytes : int }
      (** Replication: a diff payload streamed to backup [dst]
          (primary-backup scheme, or a primary-local write under either
          scheme). *)
  | Repl_inval of { page : int; dst : int }
      (** Replication: an invalidation record sent to backup [dst]
          (invalidation scheme). *)
  | Suspect of { peer : int }
      (** Heartbeat detector: the emitting node has not heard [peer] for
          longer than the suspicion timeout. *)
  | Refute of { peer : int }
      (** Heartbeat detector: a ping from the suspected [peer] arrived —
          the suspicion was false and is retracted. *)
  | Depose of { node : int }
      (** A strict majority of live members suspect [node]: it is removed
          from the membership view and its pages fail over (attributed to
          the node whose suspicion completed the quorum). *)
  | Rejoin of { node : int }
      (** A falsely-deposed node was heard from again: it re-enters the
          membership, discards its stale home authority, and re-fetches
          re-homed pages as an ordinary replica. *)
  | Fenced_fetch of { page : int; requester : int }
      (** A fetch serve refused because the serving node's authority over
          [page] was stale (the page was re-homed since the request was
          accepted) — the epoch fence that prevents split-brain serves. *)

type event = {
  time : float;  (** Simulated time, microseconds. *)
  node : int;  (** Emitting node ([dst] for {!Msg_recv}). *)
  kind : kind;
}

(** Stable snake_case tag of the kind (the ["ev"] field in exports). *)
val kind_name : kind -> string

(** Structured fields of the kind, in a fixed order (deterministic). *)
val kind_fields : kind -> (string * Json.t) list

(** One event as a flat JSON object: [ts], [node], [ev], then the kind's
    fields. *)
val to_json : event -> Json.t

(** The exact line the legacy string tracer printed for this kind (without
    the ["[node N] "] prefix), or [None] for kinds the legacy tracer never
    reported. *)
val render : kind -> string option

(** {1 Bounded sink} *)

type sink

(** [create_sink ?capacity ()] holds up to [capacity] events (default
    [1_000_000]); later events are counted in {!dropped} but not stored,
    keeping memory bounded on long runs. *)
val create_sink : ?capacity:int -> unit -> sink

val emit : sink -> event -> unit

(** [absorb dst src] re-emits [src]'s stored events into [dst] (in order)
    and adds [src]'s overflow count to [dst]'s. Used to merge per-cell
    sinks of a parallel sweep into one shared sink in a deterministic cell
    order; when both sinks share a capacity, the merged contents and drop
    count are identical to emitting everything into [dst] directly. *)
val absorb : sink -> sink -> unit

(** Stored events, in emission order. *)
val events : sink -> event list

(** Iterate stored events in emission order without materializing a list. *)
val iter : sink -> (event -> unit) -> unit

(** Number of stored events. *)
val length : sink -> int

(** The sink's configured capacity. *)
val capacity : sink -> int

(** Events discarded because the sink was full. *)
val dropped : sink -> int

(** Discarded events broken down by {!kind_name}, sorted by name; empty
    when nothing was dropped. Sums to {!dropped} ({!absorb} merges the
    per-kind counts too). *)
val dropped_by_kind : sink -> (string * int) list
