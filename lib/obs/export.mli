(** Serializing a trace sink to files / strings.

    Two formats:

    - {b JSONL}: one flat JSON object per line (the {!Trace.to_json}
      encoding), trivially greppable and streamable; if the sink overflowed,
      a final [{"ev":"dropped","count":N,"by_kind":{...}}] line records the
      loss, broken down by event kind.
    - {b Chrome [trace_event]}: a JSON document loadable directly by
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}, with one
      named track (thread) per simulated node and each protocol event as an
      instant event carrying its structured fields in [args]. Derived
      layers: {!Trace.Wait_begin}/[Wait_end] pairs become complete slices
      (["ph":"X"], named [wait:<bucket>], duration included); cross-node
      causality becomes flow arrows (["ph":"s"/"f"]) — message send to
      receive, remote lock acquire to the grant that satisfied it, diff
      request to the writer's reply; and counter tracks (["ph":"C"])
      chart per-node cumulative sent bytes and sampled protocol memory. *)

type format = Jsonl | Chrome

(** Parse a [--trace-format] argument (["jsonl"] | ["chrome"]). *)
val format_of_string : string -> format option

val format_name : format -> string

(** JSONL document (lines terminated by ['\n']). *)
val jsonl : Trace.sink -> string

(** Chrome [trace_event] JSON document. [name] labels the process track
    (e.g. ["lu/hlrc/8"]). *)
val chrome : ?name:string -> Trace.sink -> string

(** Write the sink to [file] in [format] (binary mode, so output is
    byte-identical across platforms). The channel is closed even when the
    write fails; an I/O failure raises [Failure] with a one-line
    description instead of leaking [Sys_error]. *)
val write_file : format -> ?name:string -> string -> Trace.sink -> unit

(** Long-format CSV of a metrics registry's time series (the third export
    format, for the flight recorder rather than the event trace); alias of
    {!Metrics.to_csv}. *)
val metrics_csv : Metrics.t -> string

(** Write {!metrics_csv} to [file] (binary mode; same error contract as
    {!write_file}). *)
val write_metrics_csv : string -> Metrics.t -> unit
