(** Critical-path profiler: exact blame attribution over a causal trace.

    Requires a sink recorded with {!Config.trace_spans} on (the [--profile]
    flag): the {!Trace.Wait_begin}/[Wait_end] spans and the FIFO-paired
    {!Trace.Msg_send}/[Msg_recv] stream are the dependency DAG this module
    walks.

    {!analyze} starts at the finishing node at the finish time and walks
    the chain of dependencies backwards: time since the node's last wait
    ended is local execution; a wait completed by a message attributes the
    segment back to the matched send time to the wait's Figure-3 bucket and
    jumps to the sender; a wait with no completing message attributes its
    full length and continues on the same node. Every microsecond of the
    run lands in exactly one bucket — [local + data + lock + barrier + gc]
    telescopes to [cp_finish] — so the breakdown answers "what would I have
    to speed up to make the {e run} faster", not "where was time spent on
    average".

    On fault-injected (chaos) runs the FIFO message pairing can shift
    across retransmissions, so blame there is an approximation. *)

(** A page or lock with the on-path wait attributed to it. *)
type resource_blame = {
  rb_id : int;  (** Page or lock id. *)
  rb_wait : float;  (** On-path wait, us. *)
  rb_count : int;  (** On-path waits (for locks: handoff-chain length). *)
}

(** Per-epoch barrier slack: who arrived last and by how much. *)
type epoch_slack = {
  es_epoch : int;
  es_straggler : int;  (** Last node to arrive. *)
  es_spread : float;  (** Last arrival minus first arrival, us. *)
  es_last : float;  (** Last arrival time, us. *)
}

type t = {
  cp_finish : float;  (** End-to-end path length, us (= run finish time). *)
  cp_end_node : int;
  cp_local : float;  (** On-path execution outside waits (compute + protocol). *)
  cp_data : float;  (** On-path page/diff fetch wait. *)
  cp_lock : float;
  cp_barrier : float;
  cp_gc : float;
  cp_hops : int;  (** Cross-node jumps the path took. *)
  cp_segments : int;
  cp_top_pages : resource_blame list;  (** Top-k pages by on-path fetch wait. *)
  cp_top_locks : resource_blame list;  (** Top-k locks by on-path wait. *)
  cp_home_pages : resource_blame list;
      (** Aggregate home waits (nested inside outer lock/barrier spans;
          informational, not part of the path partition). *)
  cp_epochs : epoch_slack list;
}

(** [analyze ?top ?finish ?end_node sink] walks the dependency DAG
    recorded in [sink]. [finish] (default: the last event's timestamp) and
    [end_node] (default: the node of that event) anchor the walk — pass
    the report's elapsed time and finishing node when available. [top]
    bounds the per-resource tables (default 5). *)
val analyze : ?top:int -> ?finish:float -> ?end_node:int -> Trace.sink -> t

(** Deterministic JSON encoding (the report's ["critical_path"] section). *)
val to_json : t -> Json.t

(** Human-readable blame table (the [--profile] output). *)
val render : t -> string
