(** Minimal JSON values: the machine-readable contract of the observability
    layer (reports, trace exports, the CI benchmark baseline).

    The printer is deterministic — object fields print in the order given,
    floats use the shortest decimal representation that round-trips exactly
    — so two identical simulations serialize to byte-identical documents,
    which is what lets CI diff reports and gate regressions. The parser
    accepts standard JSON (objects, arrays, strings, numbers, booleans,
    null) and is used by the regression gate and the round-trip tests; no
    external JSON library is required. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) serialization. *)
val to_string : t -> string

(** Serialize with two-space indentation (for checked-in baselines and
    human inspection; same determinism guarantees as {!to_string}). *)
val to_string_pretty : t -> string

val to_buffer : Buffer.t -> t -> unit

(** Shortest decimal form of [f] that parses back to exactly [f]
    (non-finite floats serialize as [null], as JSON has no lexeme for
    them). Exposed for the exporters' streaming paths. *)
val float_string : float -> string

(** Parse a complete JSON document (trailing whitespace allowed).
    Returns [Error msg] with a position on malformed input. *)
val of_string : string -> (t, string) result

(** {1 Accessors} (for the regression gate and tests) *)

(** Field of an object, [None] on missing field or non-object. *)
val member : string -> t -> t option

(** [Int] or integral [Float] as int. *)
val to_int : t -> int option

(** Any number as float. *)
val to_float : t -> float option

val to_list : t -> t list option
