(* Deterministic failover of replicated homes (home-based protocols) and
   re-routing of in-flight fetches after a node kill.

   The failure detector (driven from [Runtime] at kill time plus
   [Chaos.detect_delay]) calls {!failover} exactly once per kill. For every
   page whose home died and that has a replica set, the next live node in
   rank order is promoted to primary and rebuilds the master copy:

   - [Backup] scheme: the warm copy is the rebuild base — the dead primary
     streamed every applied diff over the FIFO primary->backup channel, so
     the warm copy is a causally consistent prefix of the master, and its
     applied cut [rp_flush] tells exactly which retained diffs still need
     pulling. Pulled diffs are never causally below anything in the base
     (a later same-word write required the earlier flush to have been
     applied and hence streamed), so applying them on top is sound.
   - [Inval] scheme: backups hold no warm data for remote writers, only the
     dead primary's own payload diffs (archived with their timestamps). The
     master is rebuilt from a zero page plus the causally-sorted union of
     the archive and every retained diff pulled from the live writers —
     shared memory is zero-initialized, so zeros plus the full committed
     diff history equals the master.

   Flushes that arrive while a page is mid-recovery are stashed by
   [Intervals.deliver_flush] and replayed here after the rebuild (commits
   racing a recovery cannot be causally ordered among themselves: a later
   same-word writer's fetch is parked at the new home until recovery
   completes, so arrival-order replay is sound).

   What is *not* recoverable: a diff in flight to the dead node at kill
   time (crash-stop loses it with the victim), and locks or barrier slots
   the victim held. The harness therefore places kills after the victim's
   last synchronization arrival; anything stronger would need a logging
   protocol the paper's systems do not have. *)

open System

(* Pull request: the new primary asks one live writer for its retained
   diffs of [page] above the per-writer cut, and stashes the reply in the
   page's recovery record. The last reply triggers [complete]. *)
let pull sys b ~page ~cut ~(rc : recovery) ~complete ~at =
  Array.iter
    (fun (w : node_state) ->
      if w.id <> b.id && is_alive sys w.id then begin
        rc.rc_outstanding <- rc.rc_outstanding + 1;
        let req_bytes = header_bytes + Proto.Vclock.size_bytes cut in
        b.stats.Stats.c.Stats.repl_bytes <- b.stats.Stats.c.Stats.repl_bytes + req_bytes;
        send sys ~src:b ~dst:w.id ~at ~bytes:req_bytes ~update:0 (fun arrival ->
            let done_t = serve sys w ~arrival ~cost:Faults.request_service_cost in
            let mine =
              match Hashtbl.find_opt w.own_diffs page with
              | None -> []
              | Some diffs ->
                  List.filter (fun (idx, _, _) -> idx > Proto.Vclock.get cut w.id) diffs
            in
            let reply_bytes =
              List.fold_left
                (fun acc (_, diff, vt) ->
                  acc + Mem.Diff.size_bytes diff + Proto.Vclock.size_bytes vt)
                header_bytes mine
            in
            let c = w.stats.Stats.c in
            c.Stats.repl_updates <- c.Stats.repl_updates + List.length mine;
            c.Stats.repl_bytes <- c.Stats.repl_bytes + reply_bytes;
            let wid = w.id in
            send sys ~src:w ~dst:b.id ~at:done_t ~bytes:reply_bytes ~update:0
              (fun reply_at ->
                let got = serve sys b ~arrival:reply_at ~cost:2. in
                List.iter
                  (fun (idx, diff, vt) -> rc.rc_pull <- (wid, idx, diff, vt) :: rc.rc_pull)
                  mine;
                rc.rc_outstanding <- rc.rc_outstanding - 1;
                if rc.rc_outstanding = 0 then complete ~at:got))
      end)
    sys.nodes;
  if rc.rc_outstanding = 0 then complete ~at

(* Linear extension of causality on recovered diffs: sorting by the
   timestamp's entry sum (strictly monotone in the pointwise order), then
   (writer, index), applies every causally-ordered pair in order; same-sum
   diffs are concurrent and touch disjoint words in data-race-free
   programs, so their relative order is free (see [Faults.causal_key]). *)
let causal_sort nprocs pulled =
  let weight vt =
    let sum = ref 0 in
    for i = 0 to nprocs - 1 do
      sum := !sum + Proto.Vclock.get vt i
    done;
    !sum
  in
  List.sort
    (fun (w1, i1, _, vt1) (w2, i2, _, vt2) ->
      compare (weight vt1, w1, i1) (weight vt2, w2, i2))
    pulled

(* All writer replies are in: rebuild the master, install it (preserving
   the new primary's uncommitted local writes), restore the flush vector,
   and let the parked fetches and stashed flushes drain. *)
let complete_recovery sys (b : node_state) ~page ~cut ~warm ~(rc : recovery) ~at =
  Hashtbl.remove sys.recovering page;
  let page_words = Mem.Layout.page_words sys.layout in
  let page_bytes = page_words * Mem.Layout.word_bytes in
  let base =
    match warm with
    | Some d ->
        (* The warm copy becomes the master: it stops being backup-side
           protocol memory and becomes an ordinary cached page. *)
        Mem.Accounting.sub b.stats.Stats.proto_mem page_bytes;
        d
    | None -> Mem.Words.make page_words
  in
  let ordered = causal_sort (nprocs sys) rc.rc_pull in
  let apply_cost =
    List.fold_left
      (fun acc (_, _, diff, _) -> acc +. Intervals.diff_apply_cost (costs sys) diff)
      0. ordered
  in
  List.iter (fun (_, _, diff, _) -> Mem.Diff.apply diff base) ordered;
  let c = b.stats.Stats.c in
  c.Stats.diffs_applied <- c.Stats.diffs_applied + List.length ordered;
  let done_t = serve sys b ~arrival:at ~cost:apply_cost in
  let entry = Mem.Page_table.ensure b.pt page in
  (match (entry.Mem.Page_table.dirty, entry.Mem.Page_table.twin) with
  | true, Some twin ->
      (* Uncommitted local writes ride on top of the rebuilt master: diff
         them out of the old copy, install, and re-apply (the same dance as
         [Faults.install_home_copy]). *)
      let own = Mem.Diff.create ~page ~twin ~current:(Mem.Page_table.data_exn entry) in
      entry.Mem.Page_table.data <- Some base;
      entry.Mem.Page_table.twin <- Some (Mem.Words.copy base);
      Mem.Diff.apply own base
  | true, None -> invalid_arg "Replica: dirty page without twin on a replicated run"
  | false, _ ->
      entry.Mem.Page_table.data <- Some base;
      entry.Mem.Page_table.twin <- None);
  let hp = home_page sys b page in
  Proto.Vclock.merge_into hp.hp_flush cut;
  List.iter
    (fun (w, idx, _, _) ->
      if idx > Proto.Vclock.get hp.hp_flush w then Proto.Vclock.set hp.hp_flush w idx)
    ordered;
  let pi = page_info sys b page in
  entry.Mem.Page_table.prot <-
    (if entry.Mem.Page_table.dirty then Mem.Page_table.Read_write
     else if Proto.Vclock.leq pi.needed hp.hp_flush then Mem.Page_table.Read_only
     else Mem.Page_table.No_access);
  Intervals.serve_pending_fetches hp ~at:done_t;
  (* Replay the flushes that raced the recovery, oldest first, through the
     normal (idempotent) flush path: they apply, raise the flush level,
     propagate to the surviving backups and serve newly-unparked fetches. *)
  List.iter
    (fun (writer, index, diff) ->
      Intervals.deliver_flush sys b ~arrival:done_t ~writer ~index ~page diff)
    (List.rev rc.rc_live)

(* Promote [to_] to primary of [page] after [dead] crashed. *)
let promote sys ~page ~dead ~to_ ~at =
  let b = sys.nodes.(to_) in
  b.stats.Stats.c.Stats.failovers <- b.stats.Stats.c.Stats.failovers + 1;
  if observing sys then
    event_at sys ~node:to_ ~time:at (Obs.Trace.Failover { page; from_ = dead; to_ });
  Hashtbl.replace sys.home_tbl page to_;
  (* New authority epoch: any serve closure the old home still holds was
     accepted under the previous epoch and fences itself off. *)
  bump_epoch sys page;
  Hashtbl.replace sys.failover_at page at;
  ignore (home_page sys b page);
  let rp = Hashtbl.find_opt b.repl page in
  let backup_scheme = sys.cfg.Config.repl_scheme = Config.Backup in
  let cut =
    match rp with
    | Some rp when backup_scheme -> Proto.Vclock.copy rp.rp_flush
    | _ -> Proto.Vclock.create ~nprocs:(nprocs sys)
  in
  let warm =
    match rp with
    | Some ({ rp_data = Some d; _ } as rp) when backup_scheme ->
        rp.rp_data <- None;
        Some d
    | _ -> None
  in
  let rc =
    {
      rc_pull =
        (match rp with
        | Some rp when not backup_scheme ->
            (* The dead primary's own payload diffs, archived with their
               timestamps; nothing else survives under the inval scheme. *)
            rp.rp_archive
        | _ -> []);
      rc_live = [];
      rc_outstanding = 0;
    }
  in
  (* The new primary's own retained diffs need no message. *)
  (match Hashtbl.find_opt b.own_diffs page with
  | None -> ()
  | Some diffs ->
      List.iter
        (fun (idx, diff, vt) ->
          if idx > Proto.Vclock.get cut to_ then rc.rc_pull <- (to_, idx, diff, vt) :: rc.rc_pull)
        diffs);
  Hashtbl.replace sys.recovering page rc;
  pull sys b ~page ~cut ~rc ~at
    ~complete:(fun ~at -> complete_recovery sys b ~page ~cut ~warm ~rc ~at)

(* Re-issue every live process's in-flight page fetch: replies to the old
   fetch (which may be parked at the dead home, lost on the wire, or
   already in flight) discard themselves against the bumped generation,
   and the retry routes to the page's post-failover home. Fetches parked
   at the node's *own* home are left alone ([fault_retry] is cleared when
   that wait is entered — it completes locally). The stall each re-routed
   fetch suffers, measured from the failover instant, is recorded when the
   process resumes. *)
let reissue_blocked sys ~at =
  Array.iter
    (fun (n : node_state) ->
      if is_alive sys n.id then
        match (n.blocked, n.fault_retry) with
        | Some Wait_data, Some retry ->
            n.fetch_gen <- n.fetch_gen + 1;
            n.stall_mark <- at;
            Machine.Node.sync_to n.mach at;
            retry ()
        | _ -> ())
    sys.nodes

let failover sys ~dead ~at =
  if home_based sys then begin
    let pages =
      Hashtbl.fold
        (fun page _ acc -> if home_of sys page = dead then page :: acc else acc)
        sys.repl_tbl []
      |> List.sort compare
    in
    List.iter
      (fun page ->
        match live_replica sys page with
        | None -> () (* every replica dead: the page is lost; let the watchdog report *)
        | Some b -> promote sys ~page ~dead ~to_:b ~at)
      pages
  end;
  (* Homeless protocols need no promotion: dead-writer diffs and dead-keeper
     pages are served from the replica archives on the fetch path
     ([Faults.collect_diffs] / [Faults.fetch_full_page]). Both families
     re-route their in-flight fetches. *)
  reissue_blocked sys ~at;
  (* A barrier stalled solely on the victim's arrival completes now (for a
     deposed-but-alive victim this is a no-op: [all_live_arrived] counts
     physical liveness, so the barrier still waits for its arrival). *)
  Sync.note_node_death sys

(* ------------------------------------------------------------------ *)
(* Heartbeat detector: suspicion bookkeeping, quorum membership, and the
   rejoin of falsely-deposed nodes. [Runtime] wires the transport's
   per-node suspectors to {!suspect}/{!refute}; the oracle never calls
   either, so every oracle run carries an all-false matrix and zero cost.

   The suspicion matrix is global simulator state: a node's vote is
   visible to the quorum check the instant it forms. This models an
   instantaneous gossip of suspicions — optimistic about agreement
   latency, but not about detection, which is what the heartbeat timing
   actually measures. *)

(* Strict global majority against [peer], counted over the full machine
   size, not the current members: dead and deposed nodes are absent
   voters, so a minority partition (or a single paused node suspecting
   everyone) can never depose the other side. The suspected node cannot
   vote on itself. Machines of fewer than 3 nodes have no majority
   distinct from a single accuser and never depose. *)
let quorum sys peer =
  let votes = ref 0 in
  Array.iter
    (fun (n : node_state) ->
      if n.id <> peer && is_member sys n.id && sys.suspects.(n.id).(peer) then incr votes)
    sys.nodes;
  2 * !votes > nprocs sys

(* The quorum formed: remove [peer] from the membership view and fail its
   pages over, exactly as the oracle does for a kill. A deposed node may
   in fact be alive (paused, partitioned, or just unlucky with drops): it
   keeps executing, but [is_member]/[live_replica] exclude it, the epoch
   fence voids its serving authority, and it rejoins through {!refute}
   once it is heard from again. Attributed to the node whose suspicion
   completed the quorum. *)
let depose sys ~peer ~by ~at =
  sys.deposed.(peer) <- true;
  if observing sys then event_at sys ~node:by ~time:at (Obs.Trace.Depose { node = peer });
  failover sys ~dead:peer ~at

let suspect sys ~by ~peer ~at =
  if by <> peer && not sys.suspects.(by).(peer) then begin
    sys.suspects.(by).(peer) <- true;
    let c = sys.nodes.(by).stats.Stats.c in
    c.Stats.suspicions <- c.Stats.suspicions + 1;
    if observing sys then event_at sys ~node:by ~time:at (Obs.Trace.Suspect { peer });
    if (not (is_deposed sys peer)) && quorum sys peer then depose sys ~peer ~by ~at
  end

(* A falsely-deposed node resurfaced and the quorum against it collapsed:
   re-admit it. Its authority over every page re-homed while it was out
   is stale — drop the home-side state, invalidate the local copy (the
   next access re-fetches from the current home; uncommitted local writes
   survive in the twin and ride on top of the fetched snapshot), fence
   off remote fetches still parked here (their owners were re-issued
   against the new home at promote time), and convert the node's *own*
   parked waits into ordinary remote fetches — a process waiting on a
   master it no longer owns would otherwise sleep forever. *)
let rejoin sys ~ex ~at =
  sys.deposed.(ex) <- false;
  let node = sys.nodes.(ex) in
  if observing sys then event_at sys ~node:ex ~time:at (Obs.Trace.Rejoin { node = ex });
  let stale =
    Hashtbl.fold
      (fun page _ acc -> if home_of sys page <> ex then page :: acc else acc)
      node.homes []
    |> List.sort compare
  in
  List.iter
    (fun page ->
      let hp = Hashtbl.find node.homes page in
      let own, foreign = List.partition (fun pf -> pf.pf_requester = ex) hp.hp_pending in
      List.iter
        (fun pf ->
          let c = node.stats.Stats.c in
          c.Stats.fenced_fetches <- c.Stats.fenced_fetches + 1;
          if observing sys then
            event_at sys ~node:ex ~time:at
              (Obs.Trace.Fenced_fetch { page; requester = pf.pf_requester }))
        foreign;
      hp.hp_pending <- [];
      Hashtbl.remove node.homes page;
      let entry = Mem.Page_table.ensure node.pt page in
      if
        entry.Mem.Page_table.data <> None
        && entry.Mem.Page_table.prot <> Mem.Page_table.No_access
      then entry.Mem.Page_table.prot <- Mem.Page_table.No_access;
      List.iter
        (fun pf ->
          Machine.Node.sync_to node.mach at;
          Faults.fetch_from_home sys node page ~on_valid:(fun () ->
              pf.pf_serve node.mach.Machine.Node.ck.Machine.Node.clock))
        own)
    stale

let refute sys ~by ~peer ~at =
  if sys.suspects.(by).(peer) then begin
    sys.suspects.(by).(peer) <- false;
    let c = sys.nodes.(by).stats.Stats.c in
    c.Stats.refutations <- c.Stats.refutations + 1;
    if observing sys then event_at sys ~node:by ~time:at (Obs.Trace.Refute { peer });
    if is_deposed sys peer && is_alive sys peer && not (quorum sys peer) then
      rejoin sys ~ex:peer ~at
  end
