type node_report = {
  nr_id : int;
  nr_elapsed : float;
  nr_breakdown : Stats.breakdown;
  nr_counters : Stats.counters;
  nr_mem_peak : int;
  nr_mem_end : int;
  nr_epochs : Stats.breakdown list;
}

type transport_report = { tr_inflight : int; tr_gave_up : int }

type ops_report = {
  or_gets : int;
  or_puts : int;
  or_txns : int;
  or_lats : float array;
      (* completion latencies of every op, sorted ascending; the multiset
         is a pure function of the traffic plan, so the sorted array is
         identical however the nodes interleaved *)
}

type report = {
  r_config : Config.t;
  r_elapsed : float;
  r_nodes : node_report array;
  r_shared_bytes : int;
  r_events : int;
  r_mem_digest : int64;
  r_transport : transport_report option;
  r_failover_stalls : float list;
      (* per re-routed fetch: resume time minus failover time, ascending *)
  r_metrics : Obs.Metrics.t option;
      (* the sampled flight recorder, iff metrics_interval > 0 *)
  r_ops : ops_report option;
      (* serving-workload op log, iff the app recorded operations *)
}

let start_process sys (node : System.node_state) app =
  let ctx = Api.make_ctx sys node in
  let open Effect.Deep in
  match_with app ctx
    {
      retc =
        (fun () ->
          node.System.finished <- true;
          sys.System.finished_count <- sys.System.finished_count + 1);
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | System.Lock_eff l ->
              Some (fun (k : (a, _) continuation) -> Sync.acquire sys node l k)
          | System.Barrier_eff -> Some (fun (k : (a, _) continuation) -> Sync.barrier sys node k)
          | System.Read_fault_eff page ->
              Some (fun (k : (a, _) continuation) -> Faults.read_fault sys node page k)
          | System.Write_fault_eff page ->
              Some (fun (k : (a, _) continuation) -> Faults.write_fault sys node page k)
          | _ -> None);
    }

(* --- no-progress watchdog ------------------------------------------- *)

(* Diagnostic dump raised inside {!System.Deadlock} when the event queue
   drains with unfinished processes: per-node blocked state, pending home
   fetches, lock chains, and the transport's unacknowledged/abandoned
   packets. On a fault-free run a drained-but-stuck engine means mismatched
   synchronization (the classic deadlock); on a chaos run it usually means
   the transport hit its retry cap on a message somebody was waiting for. *)
let stall_dump sys =
  let buf = Buffer.create 256 in
  let nprocs = System.nprocs sys in
  let unfinished = nprocs - sys.System.finished_count in
  Buffer.add_string buf
    (Printf.sprintf
       "no-progress watchdog: event queue drained with %d of %d processes unfinished" unfinished
       nprocs);
  Array.iter
    (fun (n : System.node_state) ->
      if not n.System.finished then begin
        let state =
          match n.System.blocked with
          | Some System.Wait_data -> "waiting for data"
          | Some System.Wait_lock -> "waiting for a lock"
          | Some System.Wait_barrier -> "waiting at a barrier"
          | Some System.Wait_gc -> "waiting for GC"
          | None -> "not blocked (runtime bug)"
        in
        let liveness = if System.is_alive sys n.System.id then "" else " [killed]" in
        Buffer.add_string buf
          (Printf.sprintf "\n  node %d%s: %s since %.0f us" n.System.id liveness state
             n.System.block_clock)
      end)
    sys.System.nodes;
  (* Per stuck page: where its home is *now*, its replica ranks, and when
     it last failed over — the triage a replicated-run deadlock needs. *)
  let describe_page page =
    let home = System.home_of sys page in
    let ranks =
      match System.replica_ranks sys page with
      | None -> ""
      | Some ranks ->
          Printf.sprintf ", replicas [%s]"
            (String.concat ";"
               (Array.to_list
                  (Array.map
                     (fun r ->
                       Printf.sprintf "%d%s" r
                         (if System.is_alive sys r then "" else " dead"))
                     ranks)))
    in
    let last =
      match Hashtbl.find_opt sys.System.failover_at page with
      | None -> ""
      | Some t -> Printf.sprintf ", failed over at %.0f us" t
    in
    Printf.sprintf "home %d%s%s%s" home
      (if System.is_alive sys home then "" else " (dead)")
      ranks last
  in
  Array.iter
    (fun (n : System.node_state) ->
      let pending =
        Hashtbl.fold
          (fun page (hp : System.home_page) acc ->
            match hp.System.hp_pending with
            | [] -> acc
            | l -> (page, List.length l) :: acc)
          n.System.homes []
      in
      List.iter
        (fun (page, k) ->
          (* Which writers' flushes the parked fetches are short of:
             [needed > flush] per vector entry. *)
          let hp = Hashtbl.find n.System.homes page in
          let missing =
            List.concat_map
              (fun (pf : System.pending_fetch) ->
                List.filter_map
                  (fun w ->
                    let need = Proto.Vclock.get pf.System.pf_needed w in
                    let have = Proto.Vclock.get hp.System.hp_flush w in
                    if need > have then Some (Printf.sprintf "writer %d: %d > %d" w need have)
                    else None)
                  (List.init (System.nprocs sys) Fun.id))
              hp.System.hp_pending
            |> List.sort_uniq compare
          in
          Buffer.add_string buf
            (Printf.sprintf
               "\n  node %d: %d fetch(es) of page %d waiting for flushes at the home (%s%s)"
               n.System.id k page (describe_page page)
               (if missing = [] then ""
                else "; missing " ^ String.concat ", " missing)))
        (List.sort compare pending))
    sys.System.nodes;
  Hashtbl.iter
    (fun page (rc : System.recovery) ->
      Buffer.add_string buf
        (Printf.sprintf
           "\n  page %d: failover recovery incomplete, %d writer repl(ies) outstanding (%s)"
           page rc.System.rc_outstanding (describe_page page)))
    sys.System.recovering;
  let locks =
    List.sort compare (Hashtbl.fold (fun l last acc -> (l, last) :: acc) sys.System.lock_last [])
  in
  List.iter
    (fun (lock, last) ->
      let states =
        Array.to_list sys.System.nodes
        |> List.filter_map (fun (n : System.node_state) ->
               match Hashtbl.find_opt n.System.locks lock with
               | None -> None
               | Some ls ->
                   let flags =
                     List.filter_map Fun.id
                       [
                         (if ls.System.lk_held then Some "held" else None);
                         (if ls.System.lk_token then Some "token" else None);
                         (if ls.System.lk_waiting then Some "acquire in flight" else None);
                         (match ls.System.lk_waiter with
                         | Some (w, _) -> Some (Printf.sprintf "forwards to node %d" w)
                         | None -> None);
                       ]
                   in
                   if flags = [] then None
                   else Some (Printf.sprintf "node %d: %s" n.System.id (String.concat ", " flags)))
      in
      Buffer.add_string buf
        (Printf.sprintf "\n  lock %d: manager %d, last requester %d%s" lock (lock mod nprocs)
           last
           (if states = [] then "" else " [" ^ String.concat "; " states ^ "]")))
    locks;
  (match sys.System.transport with
  | None -> ()
  | Some tr ->
      Buffer.add_string buf
        (Printf.sprintf "\n  transport: %d packet(s) unacknowledged, %d abandoned at the retry cap"
           (Machine.Transport.inflight_count tr)
           (Machine.Transport.gave_up_count tr));
      List.iter
        (fun line -> Buffer.add_string buf ("\n  " ^ line))
        (Machine.Transport.describe_pending tr));
  Buffer.contents buf

(* --- final-memory digest -------------------------------------------- *)

(* FNV-1a over the current copies of every shared page, taking the
   lowest-numbered node's copy as the page's representative (all current
   copies must agree — [Invariants] asserts that in paranoid runs). The
   differential-soundness harness compares this digest between a chaos run
   and its fault-free twin: faults may change timing and traffic, never
   memory contents. Side-effect-free, so computing it cannot perturb the
   report. *)
let memory_digest sys =
  let fnv_prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  let mix x = h := Int64.mul (Int64.logxor !h x) fnv_prime in
  let npages = Mem.Layout.pages_for sys.System.layout sys.System.next_addr in
  for page = 0 to npages - 1 do
    if System.is_scratch sys page then
      mix 0x2545F4914F6CDD1DL (* scratch: content is schedule-dependent *)
    else
      match Invariants.page_currents sys page with
    | [] -> mix 0x9E3779B97F4A7C15L (* no current copy: distinct marker *)
    | currents ->
        let data =
          match
            List.fold_left
              (fun best ((id, _) as cand) ->
                match best with
                | Some (best_id, _) when best_id <= id -> best
                | _ -> Some cand)
              None currents
          with
          | Some (_, data) -> data
          | None -> assert false (* [currents] is non-empty *)
        in
        mix (Int64.of_int page);
        Mem.Words.iter (fun v -> mix (Int64.bits_of_float v)) data
  done;
  !h

let collect sys =
  let nodes =
    Array.map
      (fun (n : System.node_state) ->
        {
          nr_id = n.System.id;
          nr_elapsed = n.System.mach.Machine.Node.ck.Machine.Node.clock -. n.System.start_clock;
          nr_breakdown = Stats.breakdown_sub n.System.stats.Stats.b n.System.start_breakdown;
          nr_counters = Stats.counters_sub n.System.stats.Stats.c n.System.start_counters;
          nr_mem_peak = Mem.Accounting.peak n.System.stats.Stats.proto_mem;
          nr_mem_end = Mem.Accounting.current n.System.stats.Stats.proto_mem;
          nr_epochs = Stats.epoch_deltas n.System.stats;
        })
      sys.System.nodes
  in
  let elapsed = Array.fold_left (fun acc n -> Float.max acc n.nr_elapsed) 0. nodes in
  {
    r_config = sys.System.cfg;
    r_elapsed = elapsed;
    r_nodes = nodes;
    r_shared_bytes = System.shared_bytes sys;
    r_events = Sim.Engine.executed sys.System.engine;
    r_mem_digest = memory_digest sys;
    r_transport =
      (match sys.System.transport with
      | None -> None
      | Some tr ->
          Some
            {
              tr_inflight = Machine.Transport.inflight_count tr;
              tr_gave_up = Machine.Transport.gave_up_count tr;
            });
    r_failover_stalls = List.sort compare sys.System.failover_stalls;
    r_metrics = System.metrics_registry sys;
    r_ops =
      (match System.serving_log sys with
      | None -> None
      | Some s ->
          let n = Array.fold_left (fun acc l -> acc + List.length l) 0 s.System.sv_lats in
          let lats = Array.make n 0. in
          let i = ref 0 in
          Array.iter
            (List.iter (fun v ->
                 lats.(!i) <- v;
                 incr i))
            s.System.sv_lats;
          Array.sort Float.compare lats;
          Some
            {
              or_gets = s.System.sv_gets;
              or_puts = s.System.sv_puts;
              or_txns = s.System.sv_txns;
              or_lats = lats;
            });
  }

let run ?trace ?sink cfg app =
  let sys = System.create cfg in
  sys.System.trace <- trace;
  sys.System.sink <- sink;
  if Config.metrics_enabled cfg then begin
    let interval = cfg.Config.metrics_interval in
    let reg =
      Obs.Metrics.create ~interval ~nnodes:cfg.Config.nprocs
    in
    System.install_metrics sys reg;
    (* Gauge sampler on the metrics cadence. Self-rescheduling events would
       keep the engine spinning forever (killed nodes never finish, and the
       deadlock watchdog relies on the queue draining), so a tick re-arms
       only while some live process is unfinished AND the run is moving:
       either events beyond this tick are already pending, or some executed
       since the previous tick. On quiescence the sampler stops and the
       watchdog sees exactly the drained queue it expects. *)
    let last_executed = ref 0 in
    let rec tick k () =
      let time = float_of_int k *. interval in
      System.sample_metrics sys ~time;
      let executed = Sim.Engine.executed sys.System.engine in
      let progressed = executed - !last_executed > 1 in
      last_executed := executed;
      let live_unfinished =
        Array.exists
          (fun (n : System.node_state) ->
            (not n.System.finished) && System.is_alive sys n.System.id)
          sys.System.nodes
      in
      if live_unfinished && (progressed || Sim.Engine.pending sys.System.engine > 0) then
        Sim.Engine.schedule sys.System.engine
          ~at:(float_of_int (k + 1) *. interval)
          (tick (k + 1))
    in
    Sim.Engine.schedule sys.System.engine ~at:interval (tick 1)
  end;
  Array.iter
    (fun node ->
      Sim.Engine.schedule sys.System.engine ~at:0. (fun () -> start_process sys node app))
    sys.System.nodes;
  (* The node-fault schedule: crash-stop each victim at its kill time and,
     under the oracle detector, fire deterministic failover one detection
     delay later. Runs with a kill but no message chaos stay on the fast
     send path — the kill itself is not a transport concern. Under the
     heartbeat detector the oracle stays silent: failover happens only when
     a suspicion quorum forms ({!Replica.suspect}). *)
  List.iter
    (fun (victim, kill_at) ->
      Sim.Engine.schedule sys.System.engine ~at:kill_at (fun () ->
          System.kill_node sys ~node:victim ~time:kill_at);
      if cfg.Config.detector = Config.Oracle then begin
        let detect = kill_at +. cfg.Config.chaos.Machine.Chaos.detect_delay in
        Sim.Engine.schedule sys.System.engine ~at:detect (fun () ->
            Replica.failover sys ~dead:victim ~at:detect)
      end)
    (Machine.Chaos.kills cfg.Config.chaos);
  (match (cfg.Config.detector, sys.System.transport) with
  | Config.Oracle, _ | _, None -> ()
  | Config.Heartbeat, Some tr ->
      (* Heartbeats are self-rescheduling events, so left alone they would
         keep a deadlocked engine spinning forever and starve the no-
         progress watchdog. [active] therefore also recognizes a run that
         can never move again — every fault transition is in the past with
         the detection window over, every live unfinished node is blocked
         and nothing is in flight (a recovery stuck in that state is stuck
         for good: its pulls either landed or gave up) — and stops the
         ticks so the queue drains into the watchdog's diagnosis. *)
      let fault_horizon =
        List.fold_left
          (fun acc f ->
            match f with
            | Machine.Chaos.Kill { at; _ } -> Float.max acc at
            | Machine.Chaos.Pause { until; _ } | Machine.Chaos.Partition { until; _ } ->
                Float.max acc until)
          0. cfg.Config.chaos.Machine.Chaos.faults
      in
      let interval = cfg.Config.hb_interval in
      let timeout = Config.hb_timeout_effective cfg in
      let quiet_after = fault_horizon +. timeout +. (10. *. interval) in
      let live_unfinished () =
        Array.exists
          (fun (n : System.node_state) ->
            (not n.System.finished) && System.is_alive sys n.System.id)
          sys.System.nodes
      in
      let wedged () =
        System.now sys > quiet_after
        && Array.for_all
             (fun (n : System.node_state) ->
               n.System.finished
               || (not (System.is_alive sys n.System.id))
               || n.System.blocked <> None)
             sys.System.nodes
        && Machine.Transport.inflight_count tr = 0
      in
      Machine.Transport.start_heartbeats tr ~nprocs:cfg.Config.nprocs ~interval ~timeout
        ~active:(fun () -> live_unfinished () && not (wedged ()))
        ~on_suspect:(fun ~by ~peer ~time -> Replica.suspect sys ~by ~peer ~at:time)
        ~on_refute:(fun ~by ~peer ~time -> Replica.refute sys ~by ~peer ~at:time));
  ignore (Sim.Engine.run sys.System.engine);
  let unfinished_live =
    Array.exists
      (fun (n : System.node_state) ->
        (not n.System.finished) && System.is_alive sys n.System.id)
      sys.System.nodes
  in
  if unfinished_live then begin
    (* The watchdog: a quiescent engine with unfinished processes can never
       make progress again. Emit a trace event, then fail loudly with the
       full diagnosis instead of silently returning a truncated report. *)
    let blocked =
      Array.fold_left
        (fun acc (n : System.node_state) -> if n.System.finished then acc else acc + 1)
        0 sys.System.nodes
    in
    let inflight =
      match sys.System.transport with
      | Some tr -> Machine.Transport.inflight_count tr
      | None -> 0
    in
    if System.observing sys then
      System.event_at sys ~node:0 ~time:(System.now sys)
        (Obs.Trace.Watchdog_stall { blocked; inflight });
    raise (System.Deadlock (stall_dump sys))
  end;
  (* Close the timeline: one last gauge sample at the run's end time, so
     the final bucket reflects the drained state. *)
  System.sample_metrics sys ~time:(System.now sys);
  collect sys

let mean_compute r =
  let total =
    Array.fold_left (fun acc n -> acc +. n.nr_breakdown.Stats.compute) 0. r.r_nodes
  in
  total /. float_of_int (Array.length r.r_nodes)

let total_messages r =
  Array.fold_left (fun acc n -> acc + n.nr_counters.Stats.messages) 0 r.r_nodes

let total_update_bytes r =
  Array.fold_left (fun acc n -> acc + n.nr_counters.Stats.update_bytes) 0 r.r_nodes

let total_protocol_bytes r =
  Array.fold_left (fun acc n -> acc + n.nr_counters.Stats.protocol_bytes) 0 r.r_nodes

let max_mem_peak r = Array.fold_left (fun acc n -> max acc n.nr_mem_peak) 0 r.r_nodes

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s on %d nodes: elapsed %.0f us@,"
    (Config.protocol_name r.r_config.Config.protocol)
    r.r_config.Config.nprocs r.r_elapsed;
  Array.iter
    (fun n ->
      Format.fprintf ppf "  node %2d: %.0f us  %a@," n.nr_id n.nr_elapsed Stats.pp_breakdown
        n.nr_breakdown)
    r.r_nodes;
  Format.fprintf ppf "@]"
