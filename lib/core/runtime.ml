type node_report = {
  nr_id : int;
  nr_elapsed : float;
  nr_breakdown : Stats.breakdown;
  nr_counters : Stats.counters;
  nr_mem_peak : int;
  nr_mem_end : int;
  nr_epochs : Stats.breakdown list;
}

type report = {
  r_config : Config.t;
  r_elapsed : float;
  r_nodes : node_report array;
  r_shared_bytes : int;
  r_events : int;
}

let start_process sys (node : System.node_state) app =
  let ctx = Api.make_ctx sys node in
  let open Effect.Deep in
  match_with app ctx
    {
      retc =
        (fun () ->
          node.System.finished <- true;
          sys.System.finished_count <- sys.System.finished_count + 1);
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | System.Lock_eff l ->
              Some (fun (k : (a, _) continuation) -> Sync.acquire sys node l k)
          | System.Barrier_eff -> Some (fun (k : (a, _) continuation) -> Sync.barrier sys node k)
          | System.Read_fault_eff page ->
              Some (fun (k : (a, _) continuation) -> Faults.read_fault sys node page k)
          | System.Write_fault_eff page ->
              Some (fun (k : (a, _) continuation) -> Faults.write_fault sys node page k)
          | _ -> None);
    }

let describe_stuck sys =
  let stuck = ref [] in
  Array.iter
    (fun (n : System.node_state) ->
      if not n.System.finished then begin
        let state =
          match n.System.blocked with
          | Some System.Wait_data -> "waiting for data"
          | Some System.Wait_lock -> "waiting for a lock"
          | Some System.Wait_barrier -> "waiting at a barrier"
          | Some System.Wait_gc -> "waiting for GC"
          | None -> "not blocked (runtime bug)"
        in
        stuck := Printf.sprintf "node %d: %s" n.System.id state :: !stuck
      end)
    sys.System.nodes;
  String.concat "; " (List.rev !stuck)

let collect sys =
  let nodes =
    Array.map
      (fun (n : System.node_state) ->
        {
          nr_id = n.System.id;
          nr_elapsed = n.System.mach.Machine.Node.clock -. n.System.start_clock;
          nr_breakdown = Stats.breakdown_sub n.System.stats.Stats.b n.System.start_breakdown;
          nr_counters = Stats.counters_sub n.System.stats.Stats.c n.System.start_counters;
          nr_mem_peak = Mem.Accounting.peak n.System.stats.Stats.proto_mem;
          nr_mem_end = Mem.Accounting.current n.System.stats.Stats.proto_mem;
          nr_epochs = Stats.epoch_deltas n.System.stats;
        })
      sys.System.nodes
  in
  let elapsed = Array.fold_left (fun acc n -> Float.max acc n.nr_elapsed) 0. nodes in
  {
    r_config = sys.System.cfg;
    r_elapsed = elapsed;
    r_nodes = nodes;
    r_shared_bytes = System.shared_bytes sys;
    r_events = Sim.Engine.executed sys.System.engine;
  }

let run ?trace ?sink cfg app =
  let sys = System.create cfg in
  sys.System.trace <- trace;
  sys.System.sink <- sink;
  Array.iter
    (fun node ->
      Sim.Engine.schedule sys.System.engine ~at:0. (fun () -> start_process sys node app))
    sys.System.nodes;
  ignore (Sim.Engine.run sys.System.engine);
  if sys.System.finished_count <> System.nprocs sys then
    raise (System.Deadlock (describe_stuck sys));
  collect sys

let mean_compute r =
  let total =
    Array.fold_left (fun acc n -> acc +. n.nr_breakdown.Stats.compute) 0. r.r_nodes
  in
  total /. float_of_int (Array.length r.r_nodes)

let total_messages r =
  Array.fold_left (fun acc n -> acc + n.nr_counters.Stats.messages) 0 r.r_nodes

let total_update_bytes r =
  Array.fold_left (fun acc n -> acc + n.nr_counters.Stats.update_bytes) 0 r.r_nodes

let total_protocol_bytes r =
  Array.fold_left (fun acc n -> acc + n.nr_counters.Stats.protocol_bytes) 0 r.r_nodes

let max_mem_peak r = Array.fold_left (fun acc n -> max acc n.nr_mem_peak) 0 r.r_nodes

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s on %d nodes: elapsed %.0f us@,"
    (Config.protocol_name r.r_config.Config.protocol)
    r.r_config.Config.nprocs r.r_elapsed;
  Array.iter
    (fun n ->
      Format.fprintf ppf "  node %2d: %.0f us  %a@," n.nr_id n.nr_elapsed Stats.pp_breakdown
        n.nr_breakdown)
    r.r_nodes;
  Format.fprintf ppf "@]"
