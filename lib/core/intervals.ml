(* Interval termination and write-notice application.

   An interval ends when the node performs a remote acquire, receives a
   remote lock request, or enters a barrier (paper §2.1). Ending an interval
   creates diffs for every page written during it: homeless protocols store
   them locally (until garbage collection); home-based protocols flush them
   to each page's home and discard them immediately (paper §2.3). *)

open System

let diff_create_cost (c : Machine.Costs.t) ~page_words =
  c.Machine.Costs.diff_create_base
  +. (float_of_int page_words *. c.Machine.Costs.diff_create_per_word)

let diff_apply_cost (c : Machine.Costs.t) diff =
  c.Machine.Costs.diff_apply_base
  +. (float_of_int (Mem.Diff.word_count diff) *. c.Machine.Costs.diff_apply_per_word)

(* Serve the pending fetches of a home page that the current flush level now
   satisfies. [at] is the time the enabling diff finished applying. *)
let serve_pending_fetches hp ~at =
  let ready, still =
    List.partition (fun pf -> Proto.Vclock.leq pf.pf_needed hp.hp_flush) hp.hp_pending
  in
  hp.hp_pending <- still;
  List.iter (fun pf -> pf.pf_serve at) ready

(* AURC: the release timestamp reaches the home. The data words arrived by
   automatic update (already performed on the master copy, FIFO-ordered
   before this message on the same channel); only the flush level moves,
   with no software cost at the home. *)
let deliver_au_stamp sys home_node ~arrival ~writer ~index ~page =
  let hp = home_page sys home_node page in
  if index > Proto.Vclock.get hp.hp_flush writer then Proto.Vclock.set hp.hp_flush writer index;
  serve_pending_fetches hp ~at:arrival;
  event sys home_node (Obs.Trace.Au_stamp { page; writer; index })

(* Eager RC: a pushed update reaches a copyset member. The *state* change
   is performed by the caller at push time (closing the race between a push
   enumerating the copyset and a concurrent fetch snapshotting a member that
   the push is still in flight to — the same modelling as AURC's
   write-through; only acknowledged data is observable by data-race-free
   programs). This handler models the member-side timing and returns the
   acknowledgement that lets the writer's release complete. *)
let deliver_rc_update sys member ~arrival ~writer ~page diff =
  let done_t = serve_compute sys member ~arrival ~cost:(diff_apply_cost (costs sys) diff) in
  member.stats.Stats.c.Stats.diffs_applied <- member.stats.Stats.c.Stats.diffs_applied + 1;
  event sys member
    (Obs.Trace.Eager_update { page; writer; bytes = Mem.Diff.size_bytes diff });
  send sys ~src:member ~dst:writer ~at:done_t ~bytes:header_bytes ~update:0 (fun ack_at ->
      rc_ack_arrived sys sys.nodes.(writer) ~at:ack_at)

(* A diff flushed by [writer] (interval [index]) arrives at the home. On
   replicated runs the same path also absorbs the post-failover re-flush of
   retained diffs, so the apply is made idempotent: a diff at or below the
   master's per-writer flush level is already reflected and skipped. On
   the per-(writer, home) FIFO channel indices arrive strictly ascending,
   so at [replicas] = 1 the guard never fires and the path is unchanged. *)
let deliver_flush sys home_node ~arrival ~writer ~index ~page diff =
  let c = costs sys in
  let done_t = serve sys home_node ~arrival ~cost:(diff_apply_cost c diff) in
  if replicated sys && home_of sys page <> home_node.id then
    (* Stale authority: the page was failed over while this flush was in
       flight (the receiver was deposed by a suspicion quorum). Drop it —
       applying would fork the master, and nothing is lost: replicated
       home-based runs retain every flushed diff at its writer, and the
       promotion that moved the home pulls exactly those retained diffs
       (the writer had created this one before the pull request arrived).
       Only under replication: a barrier-time home *migration* also moves
       [home_of] with epoch flushes still in flight to the old home, and
       there the old home must keep applying — its parked transfer waits
       for exactly those flushes before shipping the master away. *)
    ()
  else
  match Hashtbl.find_opt sys.recovering page with
  | Some rc ->
      (* The home is mid-failover-recovery: applying into the master now
         would be clobbered when the reconstructed copy is installed, so
         stash the flush; [Replica] replays it (in arrival order, which is
         sound — commits racing recovery cannot be causally ordered among
         themselves, since a later same-word writer's fetch is parked until
         recovery completes) after the causally-sorted pull. *)
      rc.System.rc_live <- (writer, index, diff) :: rc.System.rc_live;
      event sys home_node
        (Obs.Trace.Diff_flush { page; writer; index; bytes = Mem.Diff.size_bytes diff })
  | None ->
  let entry = Mem.Page_table.ensure home_node.pt page in
  let hp = home_page sys home_node page in
  let fresh = index > Proto.Vclock.get hp.hp_flush writer in
  if fresh || not (replicated sys) then begin
    let data =
      match entry.Mem.Page_table.data with
      | Some d -> d
      | None ->
          (* First update to a page the home itself never touched: materialize
             the master copy (shared memory is zero-initialized). *)
          let d = Mem.Page_table.attach_copy home_node.pt entry in
          entry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
          d
    in
    Mem.Diff.apply diff data;
    (* The home may concurrently be writing disjoint words of the same page;
       updating its twin keeps its own next diff minimal and correct. *)
    (match entry.Mem.Page_table.twin with Some t -> Mem.Diff.apply diff t | None -> ());
    home_node.stats.Stats.c.Stats.diffs_applied <-
      home_node.stats.Stats.c.Stats.diffs_applied + 1
  end;
  if fresh then begin
    Proto.Vclock.set hp.hp_flush writer index;
    propagate_update sys home_node ~page ~writer ~index ~diff ~vt:None ~at:done_t
      ~payload:false
  end;
  serve_pending_fetches hp ~at:done_t;
  event sys home_node
    (Obs.Trace.Diff_flush { page; writer; index; bytes = Mem.Diff.size_bytes diff })

(* End the node's current interval, if it wrote anything. *)
let end_interval sys node =
  match node.dirty with
  | [] -> ()
  | pages ->
      node.dirty <- [];
      let c = costs sys in
      let page_words = Mem.Layout.page_words sys.layout in
      let page_bytes = Mem.Layout.page_bytes sys.layout in
      let index = Proto.Vclock.get node.vt node.id + 1 in
      Proto.Vclock.set node.vt node.id index;
      (* Eager RC needs no write notices at all: updates travel with the
         release itself, so no interval record is kept or forwarded. *)
      let vt_snap =
        if home_based sys || eager_rc sys then None else Some (Proto.Vclock.copy node.vt)
      in
      if not (eager_rc sys) then begin
        let iv = Proto.Interval.make ~node:node.id ~index ~vt:vt_snap ~pages in
        node.known.(node.id) <- iv :: node.known.(node.id);
        account_interval node iv
      end;
      event sys node (Obs.Trace.Interval_end { index; pages });
      let finish_page entry =
        entry.Mem.Page_table.dirty <- false;
        entry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
        charge_protocol node c.Machine.Costs.page_protect
      in
      List.iter
        (fun page ->
          let entry = Mem.Page_table.entry node.pt page in
          let pi = page_info sys node page in
          if eager_rc sys then begin
            (* Eager RC (paper 2, Munin-style): diff the page and push the
               update to every other node caching it; the acknowledgements
               gate this node's next lock handoff or barrier arrival. *)
            let twin =
              match entry.Mem.Page_table.twin with
              | Some t -> t
              | None -> invalid_arg "end_interval: dirty page without twin"
            in
            let diff = Mem.Diff.create ~page ~twin ~current:(Mem.Page_table.data_exn entry) in
            node.stats.Stats.c.Stats.diffs_created <-
              node.stats.Stats.c.Stats.diffs_created + 1;
            System.metrics_diff sys page;
            event sys node (Mem.Diff.created_event diff);
            let done_t = local_protocol_work sys node ~cost:(diff_create_cost c ~page_words) in
            Mem.Page_table.drop_twin entry;
            Mem.Accounting.sub node.stats.Stats.proto_mem page_bytes;
            Mem.Accounting.add node.stats.Stats.proto_mem (Mem.Diff.size_bytes diff);
            Mem.Accounting.sub node.stats.Stats.proto_mem (Mem.Diff.size_bytes diff);
            finish_page entry;
            let members = copyset sys page in
            Array.iteri
              (fun m phase ->
                if phase > 0 && m <> node.id then begin
                  let member = sys.nodes.(m) in
                  (* state change at push time; see deliver_rc_update *)
                  let mentry = Mem.Page_table.ensure member.pt page in
                  (match mentry.Mem.Page_table.data with
                  | Some data ->
                      Mem.Diff.apply ?obs:(diff_obs sys member) diff data;
                      (match mentry.Mem.Page_table.twin with
                      | Some t -> Mem.Diff.apply diff t
                      | None -> ())
                  | None ->
                      (* the member's copy is still being fetched; replay on
                         install *)
                      let pi_m = page_info sys member page in
                      pi_m.rc_backlog <- diff :: pi_m.rc_backlog);
                  node.rc_acks <- node.rc_acks + 1;
                  let bytes = header_bytes + Mem.Diff.size_bytes diff in
                  send sys ~src:node ~dst:m ~at:done_t ~bytes
                    ~update:(Mem.Diff.size_bytes diff) (fun arrival ->
                      deliver_rc_update sys member ~arrival ~writer:node.id ~page diff)
                end)
              members
          end
          else if aurc sys then begin
            let home = home_of sys page in
            Proto.Vclock.set pi.needed node.id index;
            if home = node.id then begin
              let hp = home_page sys node page in
              Proto.Vclock.set hp.hp_flush node.id index;
              finish_page entry;
              serve_pending_fetches hp ~at:node.mach.Machine.Node.ck.Machine.Node.clock
            end
            else begin
              (* The updates went out by write-through as they happened; only
                 the traffic and the release timestamp remain to account.
                 Each automatic update carries a 4-byte address and an
                 8-byte word; the network interface combines them into
                 messages of [au_combine_words] words. *)
              let words = entry.Mem.Page_table.mirror_pending in
              entry.Mem.Page_table.mirror_pending <- 0;
              let combine = max 1 sys.cfg.Config.au_combine_words in
              let au_messages = max 1 ((words + combine - 1) / combine) in
              let payload = 12 * words in
              (* one send models the last combined message + the stamp; the
                 earlier combined messages are pure accounting *)
              node.stats.Stats.c.Stats.messages <-
                node.stats.Stats.c.Stats.messages + (au_messages - 1);
              node.stats.Stats.c.Stats.update_bytes <-
                node.stats.Stats.c.Stats.update_bytes
                + (header_bytes * (au_messages - 1));
              finish_page entry;
              send sys ~src:node ~dst:home ~at:node.mach.Machine.Node.ck.Machine.Node.clock
                ~bytes:(header_bytes + payload) ~update:payload (fun arrival ->
                  deliver_au_stamp sys sys.nodes.(home) ~arrival ~writer:node.id ~index ~page)
            end
          end
          else if home_based sys then begin
            let home = home_of sys page in
            (* Own flushed level: a later fetch of this page (after an
               invalidation) must see at least our own updates. *)
            Proto.Vclock.set pi.needed node.id index;
            if home = node.id then begin
              (* Home effect: the master copy already holds the writes; no
                 twin, no diff, no message (paper §4.4). With replicas the
                 home keeps a twin after all (see [Faults.make_writable]):
                 its own writes must reach the backups as a payload diff
                 under either scheme — a dead primary's writes have no
                 surviving writer to re-flush them. *)
              let hp = home_page sys node page in
              (if replicated sys then
                 match entry.Mem.Page_table.twin with
                 | Some twin ->
                     let diff =
                       Mem.Diff.create ~page ~twin ~current:(Mem.Page_table.data_exn entry)
                     in
                     node.stats.Stats.c.Stats.diffs_created <-
                       node.stats.Stats.c.Stats.diffs_created + 1;
                     System.metrics_diff sys page;
                     event sys node (Mem.Diff.created_event diff);
                     let done_t =
                       local_protocol_work sys node ~cost:(diff_create_cost c ~page_words)
                     in
                     Mem.Page_table.drop_twin entry;
                     Mem.Accounting.sub node.stats.Stats.proto_mem page_bytes;
                     (* Retain the diff here too, like any non-home writer:
                        the stream to the backups can be in flight (or
                        silenced by a gray failure) at the moment a
                        suspicion quorum deposes this node, and the
                        promotion pull must then be able to recover the
                        ex-home's own writes from the ex-home itself. *)
                     Mem.Accounting.add node.stats.Stats.proto_mem
                       (Mem.Diff.size_bytes diff);
                     let prev =
                       try Hashtbl.find node.own_diffs page with Not_found -> []
                     in
                     Hashtbl.replace node.own_diffs page
                       ((index, diff, Proto.Vclock.copy node.vt) :: prev);
                     propagate_update sys node ~page ~writer:node.id ~index ~diff
                       ~vt:(Some (Proto.Vclock.copy node.vt)) ~at:done_t ~payload:true
                 | None -> ());
              Proto.Vclock.set hp.hp_flush node.id index;
              finish_page entry;
              serve_pending_fetches hp ~at:node.mach.Machine.Node.ck.Machine.Node.clock
            end
            else begin
              let twin =
                match entry.Mem.Page_table.twin with
                | Some t -> t
                | None -> invalid_arg "end_interval: dirty page without twin"
              in
              let diff =
                Mem.Diff.create ~page ~twin ~current:(Mem.Page_table.data_exn entry)
              in
              node.stats.Stats.c.Stats.diffs_created <-
                node.stats.Stats.c.Stats.diffs_created + 1;
              System.metrics_diff sys page;
              event sys node (Mem.Diff.created_event diff);
              let done_t =
                local_protocol_work sys node ~cost:(diff_create_cost c ~page_words)
              in
              Mem.Page_table.drop_twin entry;
              Mem.Accounting.sub node.stats.Stats.proto_mem page_bytes;
              Mem.Accounting.add node.stats.Stats.proto_mem (Mem.Diff.size_bytes diff);
              if replicated sys then begin
                (* Replicated runs retain the flushed diff (an LRC-like
                   memory profile, the honest price of recoverability): if
                   the home dies, the promoted backup pulls every retained
                   diff back to rebuild the lost flush state. *)
                let prev = try Hashtbl.find node.own_diffs page with Not_found -> [] in
                Hashtbl.replace node.own_diffs page
                  ((index, diff, Proto.Vclock.copy node.vt) :: prev)
              end
              else
                (* Diffs are transient in home-based protocols: the add/sub
                   pair above records the blip for peak-memory accounting. *)
                Mem.Accounting.sub node.stats.Stats.proto_mem (Mem.Diff.size_bytes diff);
              finish_page entry;
              let bytes = header_bytes + Mem.Diff.size_bytes diff in
              send sys ~src:node ~dst:home ~at:done_t ~bytes ~update:(Mem.Diff.size_bytes diff)
                (fun arrival ->
                  deliver_flush sys sys.nodes.(home) ~arrival ~writer:node.id ~index ~page diff)
            end
          end
          else begin
            (* Homeless: create the diff and retain it until GC. *)
            let twin =
              match entry.Mem.Page_table.twin with
              | Some t -> t
              | None -> invalid_arg "end_interval: dirty page without twin"
            in
            let diff = Mem.Diff.create ~page ~twin ~current:(Mem.Page_table.data_exn entry) in
            node.stats.Stats.c.Stats.diffs_created <-
              node.stats.Stats.c.Stats.diffs_created + 1;
            System.metrics_diff sys page;
            event sys node (Mem.Diff.created_event diff);
            ignore (local_protocol_work sys node ~cost:(diff_create_cost c ~page_words));
            Mem.Page_table.drop_twin entry;
            Mem.Accounting.sub node.stats.Stats.proto_mem page_bytes;
            Mem.Accounting.add node.stats.Stats.proto_mem (Mem.Diff.size_bytes diff);
            let vt =
              match vt_snap with Some vt -> vt | None -> assert false
            in
            let prev = try Hashtbl.find node.own_diffs page with Not_found -> [] in
            Hashtbl.replace node.own_diffs page ((index, diff, vt) :: prev);
            Proto.Vclock.set pi.applied node.id index;
            (* Replicated homeless runs stream the retained diff to the
               page's replica members, which archive it: a dead writer's
               diffs are then served from the archive, and a dead keeper's
               full page rebuilt from zeros plus the archive. *)
            if replicated sys then
              propagate_archive sys node ~page ~index ~diff ~vt
                ~at:node.mach.Machine.Node.ck.Machine.Node.clock;
            finish_page entry
          end)
        pages

(* Apply a batch of remote interval records (write notices) received on a
   lock grant or barrier release. Pages with a valid local copy are
   invalidated; home-based protocols additionally raise the per-page
   [needed] flush level, homeless ones queue the notice for fault-time diff
   collection. The home node never invalidates its own master copy; instead
   the caller receives the list of own-homed pages whose required flush
   level is not yet reached, and must delay the process until the in-flight
   diffs land (DESIGN.md, timing model). *)
let apply_remote_intervals sys node ivs =
  let c = costs sys in
  (* Batches may arrive newest-first; the seen-before guard below bumps
     vt.(creator) as records are processed, so they must be handled in
     ascending index order or older-but-unseen records would be dropped. *)
  let ivs =
    List.sort
      (fun (a : Proto.Interval.t) (b : Proto.Interval.t) ->
        compare
          (a.Proto.Interval.node, a.Proto.Interval.index)
          (b.Proto.Interval.node, b.Proto.Interval.index))
      ivs
  in
  let home_waits = ref [] in
  List.iter
    (fun (iv : Proto.Interval.t) ->
      let creator = iv.Proto.Interval.node in
      let index = iv.Proto.Interval.index in
      if creator <> node.id && index > Proto.Vclock.get node.vt creator then begin
        node.known.(creator) <- iv :: node.known.(creator);
        account_interval node iv;
        Proto.Vclock.set node.vt creator index;
        charge_protocol node
          (c.Machine.Costs.write_notice_handle *. float_of_int (List.length iv.Proto.Interval.pages));
        event sys node
          (Obs.Trace.Write_notice
             { writer = creator; index; pages = List.length iv.Proto.Interval.pages });
        List.iter
          (fun page ->
            let pi = page_info sys node page in
            if home_based sys then begin
              if index > Proto.Vclock.get pi.needed creator then
                Proto.Vclock.set pi.needed creator index;
              if not pi.needed_counted then begin
                pi.needed_counted <- true;
                Mem.Accounting.add node.stats.Stats.proto_mem
                  (Proto.Vclock.size_bytes pi.needed)
              end;
              if home_of sys page = node.id then begin
                let hp = home_page sys node page in
                if not (Proto.Vclock.leq pi.needed hp.hp_flush) then
                  home_waits := (page, hp) :: !home_waits
              end
              else begin
                let entry = Mem.Page_table.ensure node.pt page in
                if
                  entry.Mem.Page_table.data <> None
                  && entry.Mem.Page_table.prot <> Mem.Page_table.No_access
                then begin
                  entry.Mem.Page_table.prot <- Mem.Page_table.No_access;
                  charge_protocol node c.Machine.Costs.page_invalidate
                end
              end
            end
            else if index > Proto.Vclock.get pi.applied creator then begin
              pi.missing <- iv :: pi.missing;
              Mem.Accounting.add node.stats.Stats.proto_mem missing_entry_bytes;
              let entry = Mem.Page_table.ensure node.pt page in
              if
                entry.Mem.Page_table.data <> None
                && entry.Mem.Page_table.prot <> Mem.Page_table.No_access
              then begin
                entry.Mem.Page_table.prot <- Mem.Page_table.No_access;
                charge_protocol node c.Machine.Costs.page_invalidate
              end
            end)
          iv.Proto.Interval.pages
      end)
    ivs;
  !home_waits

(* Interval records the receiver (with cut [their_vt]) has not seen yet.
   Each [known] list is newest-first and index-complete, so the unseen
   records are a prefix: stop scanning at the first seen one (this keeps
   grant construction proportional to its payload, not to history). *)
let missing_intervals node their_vt =
  let acc = ref [] in
  Array.iteri
    (fun creator ivs ->
      let seen = Proto.Vclock.get their_vt creator in
      let rec take = function
        | (iv : Proto.Interval.t) :: rest when iv.Proto.Interval.index > seen ->
            acc := iv :: !acc;
            take rest
        | _ -> ()
      in
      take ivs)
    node.known;
  !acc

let intervals_bytes ivs =
  List.fold_left (fun acc iv -> acc + Proto.Interval.size_bytes iv) 0 ivs
