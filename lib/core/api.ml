type ctx = {
  sys : System.t;
  node : System.node_state;
  shift : int;
  mask : int;
  access_cost : float;
}

let make_ctx sys (node : System.node_state) =
  let layout = sys.System.layout in
  let page_words = Mem.Layout.page_words layout in
  let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
  {
    sys;
    node;
    shift = log2 page_words 0;
    mask = page_words - 1;
    access_cost = (System.costs sys).Machine.Costs.mem_access;
  }

let pid ctx = ctx.node.System.id

let nprocs ctx = System.nprocs ctx.sys

let page_words ctx = ctx.mask + 1

let malloc ctx ?name ?home ?scratch words =
  System.malloc ctx.sys ctx.node ?name ?home_map:home ?scratch words

let root ctx name = System.root ctx.sys name

(* Faults re-check protection and retry, like a restarted instruction: an
   interval can end (write-protecting the page again) between the fault
   handler finishing and this process resuming.

   These two functions are the simulator's innermost loop — once per
   simulated load/store — so they are written to allocate (almost)
   nothing: the charge bumps all-float records, the page word lives in a
   Bigarray (direct load/store, no boxing), and the offset is validated by
   construction ([addr land mask] < page_words = the length every page
   buffer is allocated with). The only allocation left is boxing [read]'s
   float result for the caller. *)
let read ctx addr =
  System.charge_compute ctx.node ctx.access_cost;
  let page = addr lsr ctx.shift in
  let entry = Mem.Page_table.ensure ctx.node.System.pt page in
  while entry.Mem.Page_table.prot = Mem.Page_table.No_access do
    Effect.perform (System.Read_fault_eff page)
  done;
  Mem.Words.unsafe_get (Mem.Page_table.data_exn entry) (addr land ctx.mask)

let write ctx addr value =
  System.charge_compute ctx.node ctx.access_cost;
  let page = addr lsr ctx.shift in
  let entry = Mem.Page_table.ensure ctx.node.System.pt page in
  while entry.Mem.Page_table.prot <> Mem.Page_table.Read_write do
    Effect.perform (System.Write_fault_eff page)
  done;
  let off = addr land ctx.mask in
  Mem.Words.unsafe_set (Mem.Page_table.data_exn entry) off value;
  (* AURC automatic update: the store is snooped off the bus and performed
     on the home's master copy with no software overhead (paper 2.2). *)
  match entry.Mem.Page_table.mirror with
  | None -> ()
  | Some home_copy ->
      Mem.Words.unsafe_set home_copy off value;
      entry.Mem.Page_table.mirror_pending <- entry.Mem.Page_table.mirror_pending + 1

let read_int ctx addr = int_of_float (read ctx addr)

let write_int ctx addr value = write ctx addr (float_of_int value)

let lock _ctx id =
  if id < 0 then invalid_arg "lock: negative id";
  Effect.perform (System.Lock_eff id)

let unlock ctx id = Sync.release ctx.sys ctx.node id

let barrier _ctx = Effect.perform System.Barrier_eff

let compute ctx us =
  if us < 0. then invalid_arg "compute: negative duration";
  System.charge_compute ctx.node us

let start_timing ctx =
  let node = ctx.node in
  node.System.start_clock <- node.System.mach.Machine.Node.ck.Machine.Node.clock;
  node.System.start_breakdown <- Stats.breakdown_copy node.System.stats.Stats.b;
  node.System.start_counters <- Stats.counters_copy node.System.stats.Stats.c;
  Mem.Accounting.reset_peak node.System.stats.Stats.proto_mem

let now ctx = ctx.node.System.mach.Machine.Node.ck.Machine.Node.clock

let idle_until ctx at =
  let t = now ctx in
  if at > t then System.charge_idle ctx.node (at -. t)

let record_op ctx kind ~issued_at =
  let latency = now ctx -. issued_at in
  System.record_op ctx.sys ctx.node kind ~latency:(max 0. latency)
