type protocol = Lrc | Olrc | Hlrc | Ohlrc | Aurc | Rc

let all_protocols = [ Lrc; Olrc; Hlrc; Ohlrc ]

let extended_protocols = [ Lrc; Olrc; Hlrc; Ohlrc; Aurc; Rc ]

let protocol_name = function
  | Lrc -> "LRC"
  | Olrc -> "OLRC"
  | Hlrc -> "HLRC"
  | Ohlrc -> "OHLRC"
  | Aurc -> "AURC"
  | Rc -> "RC"

(* The canonical command-line spellings, derived from the one protocol
   list so help/error text can never drift from what the parser accepts. *)
let protocol_strings =
  List.map (fun p -> String.lowercase_ascii (protocol_name p)) extended_protocols

let protocol_of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun p -> String.lowercase_ascii (protocol_name p) = s) extended_protocols

(* Position in [extended_protocols]: the paper's LRC/OLRC/HLRC/OHLRC column
   order (then AURC, RC), used wherever cells must sort the way the tables
   read rather than alphabetically. *)
let protocol_rank p =
  let rec go i = function
    | [] -> assert false (* extended_protocols enumerates every constructor *)
    | q :: tl -> if q = p then i else go (i + 1) tl
  in
  go 0 extended_protocols

let home_based = function Hlrc | Ohlrc | Aurc -> true | Lrc | Olrc | Rc -> false

let overlapped = function Olrc | Ohlrc -> true | Lrc | Hlrc | Aurc | Rc -> false

type home_policy = Round_robin | Block | Allocator

let home_policy_name = function
  | Round_robin -> "round_robin"
  | Block -> "block"
  | Allocator -> "allocator"

type repl_scheme = Inval | Backup

let repl_scheme_name = function Inval -> "inval" | Backup -> "backup"

let repl_scheme_strings = List.map repl_scheme_name [ Inval; Backup ]

let repl_scheme_of_string s =
  match String.lowercase_ascii s with
  | "inval" -> Some Inval
  | "backup" -> Some Backup
  | _ -> None

type detector = Oracle | Heartbeat

let detector_name = function Oracle -> "oracle" | Heartbeat -> "heartbeat"

let detector_strings = List.map detector_name [ Oracle; Heartbeat ]

let detector_of_string s =
  match String.lowercase_ascii s with
  | "oracle" -> Some Oracle
  | "heartbeat" -> Some Heartbeat
  | _ -> None

type t = {
  nprocs : int;
  protocol : protocol;
  page_words : int;
  costs : Machine.Costs.t;
  home_policy : home_policy;
  gc_threshold_bytes : int;
  coproc_locks : bool;
  au_combine_words : int;
  home_migration : bool;
  paranoid : bool;
  seed : int;
  chaos : Machine.Chaos.params;
  trace_cap : int;
  trace_spans : bool;
  fault_batch : int;
  replicas : int;
  repl_scheme : repl_scheme;
  metrics_interval : float;
  detector : detector;
  hb_interval : float;
  hb_timeout : float;
}

let chaos_enabled t = Machine.Chaos.enabled t.chaos

(* The reliable transport is needed whenever chaos can reorder or lose
   traffic — and for the heartbeat detector, whose pings and healing
   retransmissions ride on it even in an otherwise fault-free run. *)
let transport_enabled t = chaos_enabled t || t.detector = Heartbeat

(* Effective suspicion timeout: the explicit [--hb-timeout], or sized so a
   healthy peer can never be suspected — the observer's audit runs once per
   interval, a ping can lag one interval plus the worst jitter spike each
   way, and a little slack for the transfer itself. *)
let hb_timeout_effective t =
  if t.hb_timeout > 0. then t.hb_timeout
  else (3. *. t.hb_interval) +. (2. *. Machine.Chaos.max_delay_params t.chaos) +. 100.

let metrics_enabled t = t.metrics_interval > 0.

let power_of_two n = n > 0 && n land (n - 1) = 0

let make ?(page_words = 1024) ?(costs = Machine.Costs.default)
    ?(home_policy = Round_robin) ?(gc_threshold_bytes = 2 * 1024 * 1024)
    ?(coproc_locks = false) ?(au_combine_words = 32) ?(home_migration = false)
    ?(paranoid = false) ?(seed = 42) ?(chaos = Machine.Chaos.none)
    ?(trace_cap = 1_000_000) ?(trace_spans = false) ?(fault_batch = 1) ?(replicas = 1)
    ?(repl_scheme = Inval) ?(metrics_interval = 0.) ?(detector = Oracle)
    ?(hb_interval = 1000.) ?(hb_timeout = 0.) ~nprocs protocol =
  if nprocs <= 0 then
    invalid_arg (Printf.sprintf "Config.make: nprocs must be positive (got %d)" nprocs);
  if not (power_of_two page_words) then
    invalid_arg
      (Printf.sprintf "Config.make: page_words must be a positive power of two (got %d)"
         page_words);
  if gc_threshold_bytes <= 0 then
    invalid_arg
      (Printf.sprintf "Config.make: gc_threshold_bytes must be positive (got %d)"
         gc_threshold_bytes);
  if au_combine_words <= 0 then
    invalid_arg
      (Printf.sprintf "Config.make: au_combine_words must be positive (got %d)"
         au_combine_words);
  if trace_cap <= 0 then
    invalid_arg
      (Printf.sprintf "Config.make: trace_cap must be positive (got %d)" trace_cap);
  if fault_batch < 1 then
    invalid_arg
      (Printf.sprintf "Config.make: fault_batch must be at least 1 (got %d)" fault_batch);
  if not (metrics_interval >= 0.) then
    invalid_arg
      (Printf.sprintf "Config.make: metrics_interval must be >= 0 (got %g)" metrics_interval);
  (match Machine.Chaos.validate chaos with
  | Ok () -> ()
  | Error e -> invalid_arg ("Config.make: " ^ e));
  if replicas < 1 then
    invalid_arg (Printf.sprintf "Config.make: replicas must be at least 1 (got %d)" replicas);
  if replicas > nprocs then
    invalid_arg
      (Printf.sprintf "Config.make: replicas must not exceed nprocs (got %d > %d)" replicas
         nprocs);
  if replicas > 1 && (protocol = Aurc || protocol = Rc) then
    invalid_arg
      (Printf.sprintf
         "Config.make: home replication is not supported for %s (write-through masters \
          have no single update stream to replicate)"
         (protocol_name protocol));
  if replicas > 1 && home_migration then
    invalid_arg
      "Config.make: home replication and home migration are mutually exclusive (both \
       rewrite the home directory)";
  (* Shape/node-0 checks live in [Chaos.validate] (run above); only the
     nprocs-dependent range checks belong here. *)
  List.iter
    (fun f ->
      let check kind node =
        if node >= nprocs then
          invalid_arg
            (Printf.sprintf "Config.make: %s node %d out of range (nprocs %d)" kind node
               nprocs)
      in
      match f with
      | Machine.Chaos.Kill { node; _ } -> check "kill" node
      | Machine.Chaos.Pause { node; _ } -> check "pause" node
      | Machine.Chaos.Partition { group; _ } -> List.iter (check "partition") group)
    chaos.Machine.Chaos.faults;
  if not (hb_interval > 0.) then
    invalid_arg
      (Printf.sprintf "Config.make: hb_interval must be positive (got %g)" hb_interval);
  if not (hb_timeout >= 0.) then
    invalid_arg
      (Printf.sprintf "Config.make: hb_timeout must be >= 0 (got %g)" hb_timeout);
  {
    nprocs;
    protocol;
    page_words;
    costs;
    home_policy;
    gc_threshold_bytes;
    coproc_locks;
    au_combine_words;
    home_migration;
    paranoid;
    seed;
    chaos;
    trace_cap;
    trace_spans;
    fault_batch;
    replicas;
    repl_scheme;
    metrics_interval;
    detector;
    hb_interval;
    hb_timeout;
  }
