(** Page-fault handling — the SVM access-detection mechanism (a "fault" in
    the virtual-memory sense: a trapped read or write to an invalid page).
    Injected infrastructure failures live in {!Machine.Chaos} and
    {!Machine.Transport}, not here.

    Home-based protocols resolve a miss with one round trip to the page's
    home, whose eagerly-updated master copy is guarded by per-writer flush
    timestamps. Homeless protocols obtain a full copy from the keeper when
    none is cached, then collect the missing diffs from their writers and
    apply them in causal order. Eager RC copies come from an installed
    copyset member and are complete by construction. *)

(** The simulated compute cost of looking up and serving one remote request
    (beyond the interrupt / dispatch cost). *)
val request_service_cost : float

(** Total order on intervals extending the happened-before partial order:
    the sum of a vector timestamp's entries is strictly monotone in the
    pointwise order, so sorting by [(sum, node, index)] is a valid linear
    extension, computed in O(k log k). Used to order diff application and
    to elect GC keepers deterministically. *)
val causal_key : Proto.Interval.t -> int * int * int

(** Three-way comparison on the causal partial order itself (same creator:
    by index; different creators: by happened-before; 0 when concurrent).
    Not a total order — do not feed it to a sort. *)
val compare_causal : Proto.Interval.t -> Proto.Interval.t -> int

(** The page's write notices not yet reflected in the local copy. *)
val still_missing : System.page_info -> Proto.Interval.t list

(** Collect and apply the diffs for the page's outstanding write notices
    (one request per distinct writer, replies applied in causal order), then
    mark the page valid and run [on_valid]. Also the validation step of the
    garbage collector. *)
val collect_diffs : System.t -> System.node_state -> int -> on_valid:(unit -> unit) -> unit

(** One home-based fetch round trip for [page]; [on_valid] runs once the
    snapshot is installed. Exposed for [Replica]'s rejoin path, which
    converts a falsely-deposed ex-home's parked local waits into remote
    fetches against the current home. *)
val fetch_from_home : System.t -> System.node_state -> int -> on_valid:(unit -> unit) -> unit

(** Bring [page] to a readable state on the node, whatever the protocol
    requires; [on_valid] runs (at the node's advanced clock) once the local
    copy is coherent. Assumes the node's process is suspended. *)
val make_valid : System.t -> System.node_state -> int -> on_valid:(unit -> unit) -> unit

(** Make a readable page writable: create the twin (homeless/home-based),
    bind the automatic-update mirror (AURC), mark it dirty. *)
val make_writable : System.t -> System.node_state -> int -> unit

(** Effect-handler entry points: the process is suspended with continuation
    [k] and resumes once the access can proceed. *)
val read_fault :
  System.t -> System.node_state -> int -> (unit, unit) Effect.Deep.continuation -> unit

val write_fault :
  System.t -> System.node_state -> int -> (unit, unit) Effect.Deep.continuation -> unit
