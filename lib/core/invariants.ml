(* Global coherence invariants, checked at barrier completion when
   [Config.paranoid] is set (testing aid; not part of the simulated cost
   model).

   At a barrier every write notice has been collected by the manager and
   every process is suspended, so the memory-consistency obligations are
   globally decidable:

   - A node's copy is "current" when it has no unapplied notices (homeless),
     or its required flush level is met at the home (home-based), or simply
     always (eager RC, where updates push at once).
   - All current copies of a page must be bitwise identical: any difference
     is a lost update, a misordered diff application, or a directory bug —
     exactly the failure modes of the bugs recorded in DESIGN.md 7. *)

open System

exception Violation of string

(* Side-effect-free by design: the final-memory digest in [Runtime.collect]
   calls this outside any synchronization point, so it must not create home
   records or page-table entries (which would perturb memory accounting and
   break report byte-identity). A home record that was never created has a
   zero flush vector, which is exactly what an absent entry means. *)
let page_currents sys page =
  Array.fold_left
    (fun acc (node : node_state) ->
      if not (is_alive sys node.id) then
        (* A crash-stopped node's copies are unreachable and may be stale
           mid-write: they are outside the coherence obligation (and the
           final-memory digest, which must match the fault-free run's). *)
        acc
      else if page >= Array.length node.pinfo then acc
      else
        match node.pinfo.(page) with
        | None -> acc
        | Some pi -> (
            match Mem.Page_table.find node.pt page with
            | None -> acc
            | Some entry -> (
                match entry.Mem.Page_table.data with
                | None -> acc
                | Some data ->
                    let current =
                      if eager_rc sys then true
                      else if home_based sys then
                        (* current iff every required flush has landed at home *)
                        let home = sys.nodes.(home_of sys page) in
                        let flush_met =
                          match Hashtbl.find_opt home.homes page with
                          | Some hp -> Proto.Vclock.leq pi.needed hp.hp_flush
                          | None -> Proto.Vclock.is_initial pi.needed
                        in
                        entry.Mem.Page_table.prot <> Mem.Page_table.No_access && flush_met
                      else
                        entry.Mem.Page_table.prot <> Mem.Page_table.No_access
                        && Faults.still_missing pi = []
                    in
                    (* a page being written right now may legitimately lead *)
                    if current && not entry.Mem.Page_table.dirty then (node.id, data) :: acc
                    else acc)))
    [] sys.nodes

let check_page sys page =
  match page_currents sys page with
  | [] | [ _ ] -> ()
  | (ref_node, ref_data) :: rest ->
      List.iter
        (fun (node, data) ->
          Mem.Words.iteri
            (fun off v ->
              let r = Mem.Words.get ref_data off in
              if Int64.bits_of_float v <> Int64.bits_of_float r then
                raise
                  (Violation
                     (Printf.sprintf
                        "page %d word %d: node %d has %.17g, node %d has %.17g" page off node v
                        ref_node r)))
            data)
        rest

(* Invoked by the barrier manager at completion (before releases, while
   every process is suspended). *)
let check sys =
  if sys.cfg.Config.paranoid then begin
    let npages = Mem.Layout.pages_for sys.layout sys.next_addr in
    for page = 0 to npages - 1 do
      check_page sys page
    done
  end
