let schema_version = 1

open Obs.Json

let f x = Float x

let costs_json (c : Machine.Costs.t) =
  Obj
    [
      ("message_latency", f c.message_latency);
      ("byte_transfer", f c.byte_transfer);
      ("per_hop", f c.per_hop);
      ("receive_interrupt", f c.receive_interrupt);
      ("twin_copy", f c.twin_copy);
      ("diff_create_base", f c.diff_create_base);
      ("diff_create_per_word", f c.diff_create_per_word);
      ("diff_apply_base", f c.diff_apply_base);
      ("diff_apply_per_word", f c.diff_apply_per_word);
      ("page_fault", f c.page_fault);
      ("page_invalidate", f c.page_invalidate);
      ("page_protect", f c.page_protect);
      ("mem_access", f c.mem_access);
      ("lock_service", f c.lock_service);
      ("barrier_service", f c.barrier_service);
      ("write_notice_handle", f c.write_notice_handle);
      ("coproc_dispatch", f c.coproc_dispatch);
    ]

(* Chaos-related fields appear in the document only when fault injection is
   on: a fault-free run's report stays byte-identical to the pre-chaos
   schema, which the regression gate asserts. *)

(* The fault schedule renders under the legacy single-fault keys
   ([kill_node]/[pause_node]...) for its earliest kill and pause — archived
   reports and their consumers predate the schedule — plus a [partitions]
   list for the faults the old schema could not express. *)
let chaos_json (ch : Machine.Chaos.params) =
  Obj
    ([
       ("drop_rate", f ch.drop_rate);
       ("dup_rate", f ch.dup_rate);
       ("jitter", f ch.jitter);
       ("straggler", f ch.straggler);
       ("fault_seed", Int ch.fault_seed);
     ]
    @ (match Machine.Chaos.first_kill ch with
      | None -> []
      | Some (node, at) ->
          [
            ("kill_node", Int node);
            ("kill_at", f at);
            ("detect_delay", f ch.detect_delay);
          ])
    @ (match Machine.Chaos.first_pause ch with
      | None -> []
      | Some (node, pause_at, resume_at) ->
          [ ("pause_node", Int node); ("pause_at", f pause_at); ("resume_at", f resume_at) ])
    @
    match Machine.Chaos.partitions ch with
    | [] -> []
    | parts ->
        [
          ( "partitions",
            List
              (List.map
                 (fun (group, from_, until) ->
                   Obj
                     [
                       ("group", List (List.map (fun n -> Int n) group));
                       ("from_us", f from_);
                       ("until_us", f until);
                     ])
                 parts) );
        ])

let config_json (cfg : Config.t) =
  Obj
    ([
       ("protocol", String (String.lowercase_ascii (Config.protocol_name cfg.protocol)));
       ("nprocs", Int cfg.nprocs);
       ("page_words", Int cfg.page_words);
       ("home_policy", String (Config.home_policy_name cfg.home_policy));
       ("gc_threshold_bytes", Int cfg.gc_threshold_bytes);
       ("coproc_locks", Bool cfg.coproc_locks);
       ("au_combine_words", Int cfg.au_combine_words);
       ("home_migration", Bool cfg.home_migration);
       ("seed", Int cfg.seed);
       ("costs", costs_json cfg.costs);
     ]
    @ (if cfg.fault_batch > 1 then [ ("fault_batch", Int cfg.fault_batch) ] else [])
    @ (if cfg.replicas > 1 then
         [
           ( "replication",
             Obj
               [
                 ("replicas", Int cfg.replicas);
                 ("scheme", String (Config.repl_scheme_name cfg.repl_scheme));
               ] );
         ]
       else [])
    @ (* A kill-only schedule does not enable message chaos (no transport),
         but its parameters still belong in the report. *)
    (if Config.chaos_enabled cfg || Machine.Chaos.kills cfg.chaos <> [] then
       [ ("chaos", chaos_json cfg.chaos) ]
     else [])
    @
    (* Absent under [--detector oracle] (the default), keeping every
       pre-detector report byte-identical. *)
    if cfg.detector = Config.Heartbeat then
      [
        ( "detector",
          Obj
            [
              ("kind", String (Config.detector_name cfg.detector));
              ("hb_interval_us", f cfg.hb_interval);
              ("hb_timeout_us", f (Config.hb_timeout_effective cfg));
            ] );
      ]
    else [])

let breakdown_json (b : Stats.breakdown) =
  Obj
    [
      ("compute", f b.compute);
      ("data", f b.data);
      ("lock", f b.lock);
      ("barrier", f b.barrier);
      ("protocol", f b.protocol);
      ("gc", f b.gc);
    ]

let counters_json ~chaos ~batching ~repl ~kill ~detect (c : Stats.counters) =
  Obj
    ([
       ("read_misses", Int c.read_misses);
       ("write_faults", Int c.write_faults);
       ("diffs_created", Int c.diffs_created);
       ("diffs_applied", Int c.diffs_applied);
       ("lock_acquires", Int c.lock_acquires);
       ("remote_acquires", Int c.remote_acquires);
       ("barriers", Int c.barriers);
       ("messages", Int c.messages);
       ("update_bytes", Int c.update_bytes);
       ("protocol_bytes", Int c.protocol_bytes);
       ("page_fetches", Int c.page_fetches);
       ("gc_runs", Int c.gc_runs);
       ("home_migrations", Int c.home_migrations);
     ]
    @ (if batching then [ ("batch_prefetches", Int c.batch_prefetches) ] else [])
    @ (if chaos then
         [
           ("msg_drops", Int c.msg_drops);
           ("msg_retransmits", Int c.msg_retransmits);
           ("msg_acks", Int c.msg_acks);
           ("msg_dup_dropped", Int c.msg_dup_dropped);
           ("msg_gave_up", Int c.msg_gave_up);
         ]
       else [])
    @ (if repl then
         [
           ("repl_updates", Int c.repl_updates);
           ("repl_invals", Int c.repl_invals);
           ("repl_bytes", Int c.repl_bytes);
         ]
       else [])
    @ (if kill then
         [ ("failovers", Int c.failovers); ("msg_peer_dead", Int c.msg_peer_dead) ]
       else [])
    @
    if detect then
      [
        ("suspicions", Int c.suspicions);
        ("refutations", Int c.refutations);
        ("fenced_fetches", Int c.fenced_fetches);
      ]
    else [])

let node_json ~chaos ~batching ~repl ~kill ~detect (n : Runtime.node_report) =
  Obj
    [
      ("id", Int n.nr_id);
      ("elapsed_us", f n.nr_elapsed);
      ("breakdown", breakdown_json n.nr_breakdown);
      ("counters", counters_json ~chaos ~batching ~repl ~kill ~detect n.nr_counters);
      ("mem_peak", Int n.nr_mem_peak);
      ("mem_end", Int n.nr_mem_end);
      ("epochs", List (List.map breakdown_json n.nr_epochs));
    ]

let sum_counter (r : Runtime.report) field =
  Array.fold_left (fun acc n -> acc + field n.Runtime.nr_counters) 0 r.Runtime.r_nodes

(* Run metadata: what the CLI was asked to do, so an archived report is
   self-describing without its invocation. The driver-level facts (app
   name, scale) cannot be derived from the Config; the rest duplicates the
   CLI-relevant Config fields for one-stop reading. *)
type run_meta = { rm_app : string; rm_scale : string }

let meta_json (m : run_meta) (cfg : Config.t) =
  Obj
    [
      ("app", String m.rm_app);
      ("scale", String m.rm_scale);
      ("protocol", String (String.lowercase_ascii (Config.protocol_name cfg.protocol)));
      ("nprocs", Int cfg.nprocs);
      ("seed", Int cfg.seed);
      ("fault_seed", Int cfg.chaos.Machine.Chaos.fault_seed);
      ("fault_batch", Int cfg.fault_batch);
      ("replicas", Int cfg.replicas);
      ("repl_scheme", String (Config.repl_scheme_name cfg.repl_scheme));
      ("metrics_interval_us", f cfg.metrics_interval);
    ]

(* The optional sections ([?meta], [?critical_path], [?trace], and the
   [timeline] block driven by [r_metrics]) append to the document only when
   present, so a report produced without them stays byte-identical to the
   earlier schemas. *)
let encode ?meta ?critical_path ?trace (r : Runtime.report) =
  let chaos = Config.chaos_enabled r.r_config in
  let batching = r.r_config.Config.fault_batch > 1 in
  let repl = r.r_config.Config.replicas > 1 in
  let detect = r.r_config.Config.detector = Config.Heartbeat in
  (* The availability section covers scheduled kills and heartbeat runs
     alike: a fallible detector can depose (and fail over) nodes that were
     never killed. *)
  let kill = Machine.Chaos.kills r.r_config.Config.chaos <> [] || detect in
  let repl_totals =
    if not repl then []
    else
      [
        ( "replication",
          Obj
            [
              ("repl_updates", Int (sum_counter r (fun c -> c.Stats.repl_updates)));
              ("repl_invals", Int (sum_counter r (fun c -> c.Stats.repl_invals)));
              ("repl_bytes", Int (sum_counter r (fun c -> c.Stats.repl_bytes)));
            ] )
      ]
  in
  let availability_totals =
    if not kill then []
    else begin
      (* [r_failover_stalls] is sorted ascending, as {!Stats.quantile}
         (nearest-rank) requires. *)
      let stalls = Array.of_list r.r_failover_stalls in
      let n = Array.length stalls in
      let total = Array.fold_left ( +. ) 0. stalls in
      (* No stalls means the percentiles are undefined, not 0: omit the
         fields so a genuinely 0-microsecond stall stays distinguishable. *)
      let stall_stats =
        match Stats.quantile stalls 0.99 with
        | None -> []
        | Some p99 ->
            [
              ("stall_mean_us", f (total /. float_of_int n));
              ("stall_p99_us", f p99);
              ("stall_max_us", f stalls.(n - 1));
            ]
      in
      [
        ( "availability",
          Obj
            ([
              ("failovers", Int (sum_counter r (fun c -> c.Stats.failovers)));
              ("msg_peer_dead", Int (sum_counter r (fun c -> c.Stats.msg_peer_dead)));
              ("msg_gave_up", Int (sum_counter r (fun c -> c.Stats.msg_gave_up)));
              ("recovery_stalls", Int n);
            ]
            @ stall_stats
            @ [ ("mem_digest", String (Printf.sprintf "%016Lx" r.r_mem_digest)) ]
            @
            if not detect then []
            else
              [
                ("suspicions", Int (sum_counter r (fun c -> c.Stats.suspicions)));
                ("refutations", Int (sum_counter r (fun c -> c.Stats.refutations)));
                ("fenced_fetches", Int (sum_counter r (fun c -> c.Stats.fenced_fetches)));
              ]) )
      ]
    end
  in
  let serving_totals =
    match r.r_ops with
    | None -> []
    | Some ops ->
        let lats = ops.Runtime.or_lats in
        let n = Array.length lats in
        (* [or_lats] is sorted ascending, as {!Stats.quantile} requires.
           Latency percentiles are omitted when no op completed, same
           convention as the availability stall percentiles. *)
        let lat_stats =
          match (Stats.quantile lats 0.5, Stats.quantile lats 0.99) with
          | Some p50, Some p99 ->
              [
                ("lat_mean_us", f (Array.fold_left ( +. ) 0. lats /. float_of_int n));
                ("lat_p50_us", f p50);
                ("lat_p99_us", f p99);
                ("lat_max_us", f lats.(n - 1));
              ]
          | _ -> []
        in
        [
          ( "serving",
            Obj
              ([
                 ("ops", Int n);
                 ("gets", Int ops.Runtime.or_gets);
                 ("puts", Int ops.Runtime.or_puts);
                 ("txns", Int ops.Runtime.or_txns);
                 ( "throughput_ops_per_s",
                   f
                     (if r.r_elapsed > 0. then
                        float_of_int n /. (r.r_elapsed /. 1_000_000.)
                      else 0.) );
               ]
              @ lat_stats) )
        ]
  in
  let chaos_totals =
    if not chaos then []
    else
      [
        ( "chaos",
          Obj
            [
              ("msg_drops", Int (sum_counter r (fun c -> c.Stats.msg_drops)));
              ("msg_retransmits", Int (sum_counter r (fun c -> c.Stats.msg_retransmits)));
              ("msg_acks", Int (sum_counter r (fun c -> c.Stats.msg_acks)));
              ("msg_dup_dropped", Int (sum_counter r (fun c -> c.Stats.msg_dup_dropped)));
              ("mem_digest", String (Printf.sprintf "%016Lx" r.r_mem_digest));
              ( "transport_inflight",
                Int (match r.r_transport with Some t -> t.Runtime.tr_inflight | None -> 0) );
              ( "transport_gave_up",
                Int (match r.r_transport with Some t -> t.Runtime.tr_gave_up | None -> 0) );
            ] )
      ]
  in
  Obj
    ([
      ("schema_version", Int schema_version);
    ]
    @ (match meta with
      | None -> []
      | Some m -> [ ("meta", meta_json m r.r_config) ])
    @ [
      ("config", config_json r.r_config);
      ("elapsed_us", f r.r_elapsed);
      ("shared_bytes", Int r.r_shared_bytes);
      ("events", Int r.r_events);
      ( "totals",
        Obj
          ([
             ("messages", Int (Runtime.total_messages r));
             ("update_bytes", Int (Runtime.total_update_bytes r));
             ("protocol_bytes", Int (Runtime.total_protocol_bytes r));
             ("mem_peak", Int (Runtime.max_mem_peak r));
             ("mean_compute_us", f (Runtime.mean_compute r));
           ]
          @ serving_totals @ repl_totals @ availability_totals @ chaos_totals) );
      ( "nodes",
        List
          (Array.to_list
             (Array.map (node_json ~chaos ~batching ~repl ~kill ~detect) r.r_nodes)) );
    ]
    @ (match r.r_metrics with
      | None -> []
      | Some m -> [ ("timeline", Obs.Metrics.to_json m) ])
    @ (match trace with
      | None -> []
      | Some sink ->
          [
            ( "trace",
              Obj
                ([
                   ("events", Int (Obs.Trace.length sink));
                   ("dropped", Int (Obs.Trace.dropped sink));
                 ]
                @ (if Obs.Trace.dropped sink > 0 then
                     [
                       ( "dropped_by_kind",
                         Obj
                           (List.map
                              (fun (k, n) -> (k, Int n))
                              (Obs.Trace.dropped_by_kind sink)) );
                     ]
                   else [])
                @ [ ("capacity", Int (Obs.Trace.capacity sink)) ]) );
          ])
    @
    match critical_path with
    | None -> []
    | Some cp -> [ ("critical_path", Obs.Critical_path.to_json cp) ])

let to_string ?meta ?critical_path ?trace r =
  to_string_pretty (encode ?meta ?critical_path ?trace r)

let write ?meta ?critical_path ?trace file r =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?meta ?critical_path ?trace r);
      output_char oc '\n')

(* --- validation ------------------------------------------------------- *)

let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let field path j name =
  match member name j with
  | Some v -> Ok v
  | None -> fail "%s: missing field %S" path name

let want_int path j name =
  let* v = field path j name in
  match to_int v with
  | Some n -> Ok n
  | None -> fail "%s.%s: expected an integer" path name

let want_num path j name =
  let* v = field path j name in
  match to_float v with
  | Some x -> Ok x
  | None -> fail "%s.%s: expected a number" path name

let want_string path j name =
  let* v = field path j name in
  match v with
  | String s -> Ok s
  | _ -> fail "%s.%s: expected a string" path name

let want_bool path j name =
  let* v = field path j name in
  match v with
  | Bool b -> Ok b
  | _ -> fail "%s.%s: expected a boolean" path name

let want_list path j name =
  let* v = field path j name in
  match to_list v with
  | Some l -> Ok l
  | None -> fail "%s.%s: expected a list" path name

let breakdown_fields = [ "compute"; "data"; "lock"; "barrier"; "protocol"; "gc" ]

let counter_fields =
  [
    "read_misses"; "write_faults"; "diffs_created"; "diffs_applied"; "lock_acquires";
    "remote_acquires"; "barriers"; "messages"; "update_bytes"; "protocol_bytes";
    "page_fetches"; "gc_runs"; "home_migrations";
  ]

let rec each f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      each f rest

let check_breakdown path j = each (fun name -> Result.map ignore (want_num path j name)) breakdown_fields

let check_node i j =
  let path = Printf.sprintf "nodes[%d]" i in
  let* _ = want_int path j "id" in
  let* _ = want_num path j "elapsed_us" in
  let* b = field path j "breakdown" in
  let* () = check_breakdown (path ^ ".breakdown") b in
  let* c = field path j "counters" in
  let* () = each (fun name -> Result.map ignore (want_int (path ^ ".counters") c name)) counter_fields in
  let* _ = want_int path j "mem_peak" in
  let* _ = want_int path j "mem_end" in
  let* epochs = want_list path j "epochs" in
  each (fun e -> check_breakdown (path ^ ".epochs") e) epochs

(* Chaos sections are optional — present only in fault-injection runs — but
   when present they must have the right shape. *)
let check_chaos_config cfg =
  match member "chaos" cfg with
  | None -> Ok ()
  | Some ch ->
      let* _ = want_num "config.chaos" ch "drop_rate" in
      let* _ = want_num "config.chaos" ch "dup_rate" in
      let* _ = want_num "config.chaos" ch "jitter" in
      let* _ = want_num "config.chaos" ch "straggler" in
      let* _ = want_int "config.chaos" ch "fault_seed" in
      Ok ()

let check_replication_config cfg =
  match member "replication" cfg with
  | None -> Ok ()
  | Some rp ->
      let* replicas = want_int "config.replication" rp "replicas" in
      if replicas < 2 then
        fail "config.replication.replicas: must be at least 2 (got %d)" replicas
      else
        let* scheme = want_string "config.replication" rp "scheme" in
        if not (List.mem scheme Config.repl_scheme_strings) then
          fail "config.replication.scheme: unknown scheme %S" scheme
        else Ok ()

let check_replication_totals totals =
  match member "replication" totals with
  | None -> Ok ()
  | Some rp ->
      each
        (fun name -> Result.map ignore (want_int "totals.replication" rp name))
        [ "repl_updates"; "repl_invals"; "repl_bytes" ]

let check_serving_totals totals =
  match member "serving" totals with
  | None -> Ok ()
  | Some sv ->
      let* ops = want_int "totals.serving" sv "ops" in
      let* () =
        each
          (fun name -> Result.map ignore (want_int "totals.serving" sv name))
          [ "gets"; "puts"; "txns" ]
      in
      let* _ = want_num "totals.serving" sv "throughput_ops_per_s" in
      (* Latency percentiles accompany a non-empty op log and must be
         absent from an empty one. *)
      if ops = 0 then
        each
          (fun name ->
            match member name sv with
            | None -> Ok ()
            | Some _ -> fail "totals.serving.%s: present with zero ops" name)
          [ "lat_mean_us"; "lat_p50_us"; "lat_p99_us"; "lat_max_us" ]
      else
        each
          (fun name -> Result.map ignore (want_num "totals.serving" sv name))
          [ "lat_mean_us"; "lat_p50_us"; "lat_p99_us"; "lat_max_us" ]

let check_availability_totals totals =
  match member "availability" totals with
  | None -> Ok ()
  | Some av ->
      let* () =
        each
          (fun name -> Result.map ignore (want_int "totals.availability" av name))
          [ "failovers"; "msg_peer_dead"; "recovery_stalls" ]
      in
      (* Stall percentiles are present iff at least one stall was
         recorded; requiring them here would force the encoder back to
         faking a 0 for the empty set. *)
      let* stalls = want_int "totals.availability" av "recovery_stalls" in
      let* () =
        if stalls = 0 then
          each
            (fun name ->
              match member name av with
              | None -> Ok ()
              | Some _ ->
                  fail "totals.availability.%s: present with zero recovery_stalls" name)
            [ "stall_mean_us"; "stall_p99_us"; "stall_max_us" ]
        else
          each
            (fun name -> Result.map ignore (want_num "totals.availability" av name))
            [ "stall_mean_us"; "stall_p99_us"; "stall_max_us" ]
      in
      let* _ = want_string "totals.availability" av "mem_digest" in
      Ok ()

let check_chaos_totals totals =
  match member "chaos" totals with
  | None -> Ok ()
  | Some ch ->
      let* () =
        each
          (fun name -> Result.map ignore (want_int "totals.chaos" ch name))
          [
            "msg_drops"; "msg_retransmits"; "msg_acks"; "msg_dup_dropped"; "transport_inflight";
            "transport_gave_up";
          ]
      in
      let* _ = want_string "totals.chaos" ch "mem_digest" in
      Ok ()

(* The metadata block is optional — drivers pass it, library callers may
   not — but when present it must have the right shape. *)
let check_meta j =
  match member "meta" j with
  | None -> Ok ()
  | Some m ->
      let* _ = want_string "meta" m "app" in
      let* _ = want_string "meta" m "scale" in
      let* proto = want_string "meta" m "protocol" in
      if not (List.mem proto Config.protocol_strings) then
        fail "meta.protocol: unknown protocol %S" proto
      else
        let* nprocs = want_int "meta" m "nprocs" in
        if nprocs <= 0 then fail "meta.nprocs: must be positive (got %d)" nprocs
        else
          let* () =
            each
              (fun name -> Result.map ignore (want_int "meta" m name))
              [ "seed"; "fault_seed"; "fault_batch"; "replicas" ]
          in
          let* scheme = want_string "meta" m "repl_scheme" in
          if not (List.mem scheme Config.repl_scheme_strings) then
            fail "meta.repl_scheme: unknown scheme %S" scheme
          else
            let* _ = want_num "meta" m "metrics_interval_us" in
            Ok ()

(* The timeline block is optional — present only on [--metrics-interval]
   runs — but when present every series row must be exactly [buckets]
   wide and the histograms/heatmaps must have their full shape. *)
let check_timeline j =
  match member "timeline" j with
  | None -> Ok ()
  | Some tl ->
      let* _ = want_num "timeline" tl "interval_us" in
      let* buckets = want_int "timeline" tl "buckets" in
      if buckets < 0 then fail "timeline.buckets: negative (%d)" buckets
      else
        let* series = want_list "timeline" tl "series" in
        let* () =
          each
            (fun sr ->
              let* name = want_string "timeline.series" sr "name" in
              let* kind = want_string "timeline.series" sr "kind" in
              if kind <> "counter" && kind <> "gauge" then
                fail "timeline.series[%s].kind: unknown kind %S" name kind
              else
                let* _ = want_bool "timeline.series" sr "per_node" in
                let* rows = want_list "timeline.series" sr "rows" in
                each
                  (fun row ->
                    match to_list row with
                    | Some vs when List.length vs = buckets -> Ok ()
                    | Some vs ->
                        fail "timeline.series[%s]: row has %d values but %d buckets" name
                          (List.length vs) buckets
                    | None -> fail "timeline.series[%s]: rows must be lists" name)
                  rows)
            series
        in
        let* hists = want_list "timeline" tl "histograms" in
        let* () =
          each
            (fun h ->
              let* name = want_string "timeline.histograms" h "name" in
              let* count = want_int "timeline.histograms" h "count" in
              let* () =
                each
                  (fun fld -> Result.map ignore (want_num "timeline.histograms" h fld))
                  [ "sum"; "max" ]
              in
              (* Percentile fields accompany a non-empty histogram and
                 must be absent from an empty one. *)
              let* () =
                if count = 0 then
                  each
                    (fun fld ->
                      match member fld h with
                      | None -> Ok ()
                      | Some _ ->
                          fail "timeline.histograms[%s].%s: present with count 0" name fld)
                    [ "p50"; "p90"; "p99" ]
                else
                  each
                    (fun fld -> Result.map ignore (want_num "timeline.histograms" h fld))
                    [ "p50"; "p90"; "p99" ]
              in
              let* bs = want_list "timeline.histograms" h "buckets" in
              let* () =
                each
                  (fun b ->
                    let* _ = want_num "timeline.histograms.buckets" b "le" in
                    Result.map ignore (want_int "timeline.histograms.buckets" b "count"))
                  bs
              in
              let total =
                List.fold_left
                  (fun acc b ->
                    match Option.bind (member "count" b) to_int with
                    | Some n -> acc + n
                    | None -> acc)
                  0 bs
              in
              if total <> count then
                fail "timeline.histograms[%s]: bucket counts sum to %d, count says %d" name
                  total count
              else Ok ())
            hists
        in
        let* heats = want_list "timeline" tl "heatmaps" in
        each
          (fun hm ->
            let* _ = want_string "timeline.heatmaps" hm "name" in
            let* pages = want_list "timeline.heatmaps" hm "pages" in
            each
              (fun pg ->
                let* _ = want_int "timeline.heatmaps.pages" pg "page" in
                Result.map ignore (want_num "timeline.heatmaps.pages" pg "value"))
              pages)
          heats

(* Profiler sections are optional — present only when the run was profiled
   — but when present they must have the right shape. *)
let check_trace_section j =
  match member "trace" j with
  | None -> Ok ()
  | Some t ->
      each
        (fun name -> Result.map ignore (want_int "trace" t name))
        [ "events"; "dropped"; "capacity" ]

let check_critical_path j =
  match member "critical_path" j with
  | None -> Ok ()
  | Some cp ->
      let* _ = want_num "critical_path" cp "finish_us" in
      let* _ = want_int "critical_path" cp "end_node" in
      let* _ = want_int "critical_path" cp "hops" in
      let* _ = want_int "critical_path" cp "segments" in
      let* b = field "critical_path" cp "buckets" in
      let* () =
        each
          (fun name -> Result.map ignore (want_num "critical_path.buckets" b name))
          [ "local"; "data"; "lock"; "barrier"; "gc" ]
      in
      let* _ = want_list "critical_path" cp "top_pages" in
      let* _ = want_list "critical_path" cp "top_locks" in
      let* _ = want_list "critical_path" cp "home_pages" in
      let* epochs = want_list "critical_path" cp "epochs" in
      each
        (fun e ->
          let* _ = want_int "critical_path.epochs" e "epoch" in
          let* _ = want_int "critical_path.epochs" e "straggler" in
          let* _ = want_num "critical_path.epochs" e "spread_us" in
          Result.map ignore (want_num "critical_path.epochs" e "last_arrive_us"))
        epochs

let validate j =
  let* version = want_int "report" j "schema_version" in
  if version <> schema_version then
    fail "report.schema_version: got %d, expected %d" version schema_version
  else
    let* cfg = field "report" j "config" in
    let* proto = want_string "config" cfg "protocol" in
    if not (List.mem proto Config.protocol_strings) then
      fail "config.protocol: unknown protocol %S" proto
    else
      let* nprocs = want_int "config" cfg "nprocs" in
      if nprocs <= 0 then fail "config.nprocs: must be positive (got %d)" nprocs
      else
        let* _ = want_int "config" cfg "page_words" in
        let* _ = want_string "config" cfg "home_policy" in
        let* _ = want_int "config" cfg "seed" in
        let* _ = want_bool "config" cfg "coproc_locks" in
        let* () = check_chaos_config cfg in
        let* () = check_replication_config cfg in
        let* _ = want_num "report" j "elapsed_us" in
        let* _ = want_int "report" j "shared_bytes" in
        let* _ = want_int "report" j "events" in
        let* totals = field "report" j "totals" in
        let* _ = want_int "totals" totals "messages" in
        let* _ = want_int "totals" totals "update_bytes" in
        let* _ = want_int "totals" totals "protocol_bytes" in
        let* _ = want_int "totals" totals "mem_peak" in
        let* _ = want_num "totals" totals "mean_compute_us" in
        let* () = check_serving_totals totals in
        let* () = check_chaos_totals totals in
        let* () = check_replication_totals totals in
        let* () = check_availability_totals totals in
        let* nodes = want_list "report" j "nodes" in
        if List.length nodes <> nprocs then
          fail "report.nodes: %d entries but config.nprocs = %d" (List.length nodes) nprocs
        else
          let* () = each (fun (i, n) -> check_node i n) (List.mapi (fun i n -> (i, n)) nodes) in
          let* () = check_meta j in
          let* () = check_timeline j in
          let* () = check_trace_section j in
          let* () = check_critical_path j in
          Ok ()

let headline j =
  match validate j with
  | Error _ -> None
  | Ok () ->
      let num name j = Option.bind (member name j) to_float in
      let totals = member "totals" j in
      let ( let+ ) o k = Option.bind o k in
      let+ elapsed = num "elapsed_us" j in
      let+ t = totals in
      let+ messages = num "messages" t in
      let+ update_bytes = num "update_bytes" t in
      let+ protocol_bytes = num "protocol_bytes" t in
      let+ mem_peak = num "mem_peak" t in
      Some
        [
          ("elapsed_us", elapsed);
          ("messages", messages);
          ("update_bytes", update_bytes);
          ("protocol_bytes", protocol_bytes);
          ("mem_peak", mem_peak);
        ]
