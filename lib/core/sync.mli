(** Synchronization: distributed locks and the centralized barrier
    (paper §3.5).

    Each lock has a manager ([lock mod nprocs]) tracking the last requester;
    requests are forwarded to that node, which grants the lock when free.
    Grants carry the releaser's knowledge of the intervals the requester has
    not seen; re-acquiring a lock the node still owns is free. Barriers use
    a centralized manager on node 0: arrivals carry each node's new interval
    records, the manager computes the maximal timestamp and selectively
    forwards missing notices with the releases. Barrier completion also
    triggers garbage collection (homeless lazy protocols) and adaptive home
    migration (when enabled). *)

(** Manager node of a lock. *)
val manager_of : System.t -> int -> int

(** Acquire [lock] for the node, suspending its process (continuation [k])
    until the grant arrives; free when the node still holds the token. *)
val acquire :
  System.t -> System.node_state -> int -> (unit, unit) Effect.Deep.continuation -> unit

(** Release [lock]: lazy (the token stays until requested); if a forwarded
    requester is queued, ends the interval and sends the grant.
    @raise Invalid_argument if the lock is not held. *)
val release : System.t -> System.node_state -> int -> unit

(** Enter the global barrier, suspending the node's process until the
    manager's release. *)
val barrier :
  System.t -> System.node_state -> (unit, unit) Effect.Deep.continuation -> unit

(** Failure-detector hook: re-evaluate barrier completion after a node has
    been declared dead. A barrier stalled solely on the victim's arrival
    completes immediately (every live node has arrived); otherwise a no-op.
    Called by [Replica.failover] at detection time. *)
val note_node_death : System.t -> unit
