(** Interval termination and write-notice application.

    An interval is the span of a processor's execution between consecutive
    synchronization events (paper §2.1); it ends when the node performs a
    remote acquire, receives a remote lock request, or enters a barrier.
    What happens to the writes of a finished interval is the defining
    difference between the protocols:

    - homeless (LRC/OLRC): a diff per dirty page is created and retained at
      the writer until garbage collection;
    - home-based (HLRC/OHLRC): diffs are flushed to each page's home and
      discarded immediately;
    - AURC: the data already went out by write-through; only a release
      timestamp travels;
    - eager RC: diffs are pushed to every copyset member and the next
      handoff waits for their acknowledgements. *)

(** Simulated cost of creating one diff (full-page scan). *)
val diff_create_cost : Machine.Costs.t -> page_words:int -> float

(** Simulated cost of applying [diff] (proportional to its size). *)
val diff_apply_cost : Machine.Costs.t -> Mem.Diff.t -> float

(** Serve the pending fetches of a home page whose flush level now covers
    them; [at] is when the enabling update finished applying. *)
val serve_pending_fetches : System.home_page -> at:float -> unit

(** A diff flushed by [writer] (interval [index]) arrives at the home at
    [arrival]: apply it to the master copy, raise the per-writer flush
    level, propagate to the page's backups, and serve any fetch the new
    level enables. Idempotent on replicated runs (a diff at or below the
    flush level is skipped); during a failover recovery of [page] the
    flush is stashed for replay instead (see [Replica]). *)
val deliver_flush :
  System.t ->
  System.node_state ->
  arrival:float ->
  writer:int ->
  index:int ->
  page:int ->
  Mem.Diff.t ->
  unit

(** End the node's current interval, if it wrote anything: commit its dirty
    pages per the configured protocol (see above), write-protect them and
    advance the node's vector time. *)
val end_interval : System.t -> System.node_state -> unit

(** Apply a batch of remote interval records (write notices) received on a
    lock grant or barrier release: record them, advance the receiver's
    vector time, invalidate affected cached pages (homeless protocols also
    queue the notices for fault-time diff collection; home-based ones raise
    the per-page required-flush level). Returns the receiver's own-homed
    pages whose required flush level is not yet reached — the caller must
    delay the process until those in-flight updates land. *)
val apply_remote_intervals :
  System.t -> System.node_state -> Proto.Interval.t list -> (int * System.home_page) list

(** Interval records the receiver (whose cut is [their_vt]) has not seen
    yet; cost proportional to the result, not to history. *)
val missing_intervals : System.node_state -> Proto.Vclock.t -> Proto.Interval.t list

(** Total wire size of a set of interval records. *)
val intervals_bytes : Proto.Interval.t list -> int
