(** Machine-readable reports: {!Runtime.report} → JSON.

    This is the stable contract consumed by the CI benchmark-regression
    gate ([bench/check_regression.ml]) and any external tooling: time
    breakdowns, operation/traffic counters, per-epoch deltas and memory
    peaks per node, plus run-level totals, keyed by a [schema_version].
    The encoding contains only simulated quantities — no wall-clock time —
    so two runs of the same configuration and seed serialize to
    byte-identical documents. *)

val schema_version : int

(** Run metadata a driver knows but the {!Config} does not: the application
    name and problem scale. Passed by the CLIs so archived reports are
    self-describing; the emitted [meta] block also duplicates the
    CLI-relevant Config fields (protocol, nprocs, seeds, fault batch,
    replication, metrics cadence). *)
type run_meta = { rm_app : string; rm_scale : string }

(** [encode ?meta ?critical_path ?trace r] — the optional sections appear
    in the document only when present: [meta] (run metadata block),
    [critical_path] (see {!Obs.Critical_path.to_json}), [trace] (sink
    occupancy: [events], [dropped] — with a [dropped_by_kind] breakdown
    when nonzero — and [capacity]), and a [timeline] block (see
    {!Obs.Metrics.to_json}) when the run recorded metrics
    ([r.r_metrics]). A report encoded without them is byte-identical to
    the earlier schemas. *)
val encode :
  ?meta:run_meta ->
  ?critical_path:Obs.Critical_path.t ->
  ?trace:Obs.Trace.sink ->
  Runtime.report ->
  Obs.Json.t

(** Pretty serialization of {!encode} (deterministic; see {!Obs.Json}). *)
val to_string :
  ?meta:run_meta ->
  ?critical_path:Obs.Critical_path.t ->
  ?trace:Obs.Trace.sink ->
  Runtime.report ->
  string

(** Write the report to [file]. *)
val write :
  ?meta:run_meta ->
  ?critical_path:Obs.Critical_path.t ->
  ?trace:Obs.Trace.sink ->
  string ->
  Runtime.report ->
  unit

(** Structural schema check of a parsed report: version, config, totals,
    the per-node records, and — when present — the optional [meta],
    [timeline], [trace] and [critical_path] sections, all with the right
    shapes (timeline rows exactly [buckets] wide, histogram bucket counts
    summing to [count]). Returns a description of the first violation. *)
val validate : Obs.Json.t -> (unit, string) result

(** The headline counters the regression gate compares, from a schema-valid
    report: [("elapsed_us", _); ("messages", _); ("update_bytes", _);
    ("protocol_bytes", _); ("mem_peak", _)]. *)
val headline : Obs.Json.t -> (string * float) list option
