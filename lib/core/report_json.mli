(** Machine-readable reports: {!Runtime.report} → JSON.

    This is the stable contract consumed by the CI benchmark-regression
    gate ([bench/check_regression.ml]) and any external tooling: time
    breakdowns, operation/traffic counters, per-epoch deltas and memory
    peaks per node, plus run-level totals, keyed by a [schema_version].
    The encoding contains only simulated quantities — no wall-clock time —
    so two runs of the same configuration and seed serialize to
    byte-identical documents. *)

val schema_version : int

(** [encode ?critical_path ?trace r] — the optional sections appear in the
    document only when passed: [critical_path] (see
    {!Obs.Critical_path.to_json}) and [trace] (sink occupancy: [events],
    [dropped], [capacity] — how much of the trace survived the bounded
    sink). A report encoded without them is byte-identical to the
    pre-profiler schema. *)
val encode :
  ?critical_path:Obs.Critical_path.t -> ?trace:Obs.Trace.sink -> Runtime.report -> Obs.Json.t

(** Pretty serialization of {!encode} (deterministic; see {!Obs.Json}). *)
val to_string :
  ?critical_path:Obs.Critical_path.t -> ?trace:Obs.Trace.sink -> Runtime.report -> string

(** Write the report to [file]. *)
val write :
  ?critical_path:Obs.Critical_path.t ->
  ?trace:Obs.Trace.sink ->
  string ->
  Runtime.report ->
  unit

(** Structural schema check of a parsed report: version, config, totals,
    and the per-node records all present with the right shapes. Returns
    a description of the first violation. *)
val validate : Obs.Json.t -> (unit, string) result

(** The headline counters the regression gate compares, from a schema-valid
    report: [("elapsed_us", _); ("messages", _); ("update_bytes", _);
    ("protocol_bytes", _); ("mem_peak", _)]. *)
val headline : Obs.Json.t -> (string * float) list option
