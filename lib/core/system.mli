(** Central state of a simulated SVM machine and the primitives every
    protocol module builds on: per-node protocol state, the event engine,
    the network, message delivery, request service, and the blocking /
    resuming of per-node application processes.

    {1 Timing model}

    Each node's compute processor is a virtual clock ([mach.clock]);
    servicing an incoming request on it adds (interrupt + cost) to that
    clock while the reply is timed from the request's arrival. The
    communication co-processor is a separate FIFO busy-until timeline.
    Protocol {e state} mutations happen in event-execution order, which
    respects causality because every causal chain crosses messages with
    strictly positive latency (see DESIGN.md). *)

(** What a suspended application process is waiting for; selects the
    Figure-3 bucket its wait is accounted to. *)
type block_kind = Wait_data | Wait_lock | Wait_barrier | Wait_gc

(** Per-node, per-page protocol state. Homeless protocols use [missing]
    (unapplied write notices) and [applied] (the causally-closed per-writer
    cut merged into the local copy); home-based ones use [needed] (the
    flush level the home must reach before the next fetch); eager RC parks
    in-flight pushes in [rc_backlog]. *)
type page_info = {
  pi_page : int;
  mutable missing : Proto.Interval.t list;
  mutable applied : Proto.Vclock.t;
  mutable needed : Proto.Vclock.t;
  mutable needed_counted : bool;
  mutable rc_backlog : Mem.Diff.t list;
}

(** Home-side state of a page homed at this node: the per-writer flush
    level of the master copy and the fetches waiting for it to advance. *)
type home_page = {
  hp_page : int;
  hp_flush : Proto.Vclock.t;
  mutable hp_pending : pending_fetch list;
}

and pending_fetch = {
  pf_needed : Proto.Vclock.t;
  pf_serve : float -> unit;
  pf_requester : int;
      (** Who asked: lets a deposed ex-home distinguish remote fetches (to
          be fenced and dropped — the requester re-issues against the new
          home) from its own local waits, which must survive the rejoin. *)
}

(** Backup-side state for one page this node backs up ([replicas] > 1).
    [rp_data]/[rp_flush] are the warm copy and the per-writer cut applied
    into it (complete under the [Backup] scheme; only the primary's own
    pushed writes under [Inval]). [rp_archive] holds the diffs homeless
    writers stream to the page's replica members — (writer, interval,
    diff, writer vt), newest first, never freed. *)
type replica_page = {
  rp_page : int;
  mutable rp_data : Mem.Words.t option;
  rp_flush : Proto.Vclock.t;
  mutable rp_archive : (int * int * Mem.Diff.t * Proto.Vclock.t) list;
}

(** Distributed-lock state at one node (token forwarding; the manager
    tracks the last requester). *)
type lock_state = {
  mutable lk_token : bool;
  mutable lk_held : bool;
  mutable lk_waiting : bool;
  mutable lk_waiter : (int * Proto.Vclock.t) option;
}

type node_state = {
  id : int;
  slowdown : float;
      (** Chaos straggler multiplier on compute-processor work; exactly
          [1.0] on fault-free runs. *)
  mach : Machine.Node.t;
  pt : Mem.Page_table.t;
  mutable pinfo : page_info option array;
  vt : Proto.Vclock.t;  (** vt.(i) = latest completed interval of i known. *)
  mutable dirty : int list;  (** Pages written during the current interval. *)
  known : Proto.Interval.t list array;  (** Records per creator, newest first. *)
  own_diffs : (int, (int * Mem.Diff.t * Proto.Vclock.t) list) Hashtbl.t;
  homes : (int, home_page) Hashtbl.t;
  locks : (int, lock_state) Hashtbl.t;
  stats : Stats.t;
  mutable mgr_vt : Proto.Vclock.t;
  mutable reported : int;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable blocked : block_kind option;
  mutable block_clock : float;
  mutable wait_services : float;
  mutable wait_span : int;
      (** Open wait-span id ([-1] = none / spans off). *)
  mutable wait_resource : int;
      (** Resource of the open span (page, lock or epoch). *)
  mutable rc_acks : int;
  mutable rc_drain : (float -> unit) list;
  mutable in_gc : bool;
  repl : (int, replica_page) Hashtbl.t;  (** Pages this node backs up. *)
  mutable fault_page : int;
      (** Page of the in-flight fault fetch ([-1] = none). *)
  mutable fault_retry : (unit -> unit) option;
      (** Re-issues the blocked fault's fetch; failover bumps [fetch_gen]
          and invokes this to re-route a fetch lost to a dead home. *)
  mutable fetch_gen : int;
      (** Generation of the in-flight fault fetch; reply handlers from a
          superseded generation discard themselves on arrival. *)
  mutable stall_mark : float;
      (** Failover time while awaiting resume ([-1] = none); the next
          resume records the difference as this fetch's recovery stall. *)
  mutable finished : bool;
  mutable start_clock : float;
  mutable start_breakdown : Stats.breakdown;
  mutable start_counters : Stats.counters;
}

type barrier_state = {
  mutable bar_arrived : int;
  mutable bar_queue : (int * Proto.Vclock.t * Proto.Interval.t list) list;
  mutable bar_mem_high : bool;
  mutable bar_epoch : int;
  mutable bar_released : int;
  mutable bar_target : int;
      (** Release-applies expected this epoch: the manager plus every live
          remote arrival. Dead nodes never apply (their releases are
          dropped), so the paranoid-check rendezvous counts only the
          living. *)
}

(** In-progress failover recovery of one re-homed page at its new primary
    (driven by [Replica]): pulled/archived diffs accumulate in [rc_pull]
    until the last writer reply lands; normal flushes arriving mid-recovery
    are stashed in [rc_live] and applied after the causally-sorted pull. *)
type recovery = {
  mutable rc_pull : (int * int * Mem.Diff.t * Proto.Vclock.t) list;
      (** (writer, interval index, diff, writer vt). *)
  mutable rc_live : (int * int * Mem.Diff.t) list;
      (** Flushes stashed in arrival order, newest first. *)
  mutable rc_outstanding : int;  (** Writer replies still awaited. *)
}

(** Pre-registered instrument handles of the metrics flight recorder
    ([--metrics-interval]); opaque — built by {!install_metrics}, read back
    through {!metrics_registry} and the recording hooks below. *)
type metrics_set

(** Serving-workload operation log: per-node completion latencies plus op
    kind counts, allocated lazily at the first {!record_op} so non-serving
    runs carry a single [None]. *)
type op_kind = Op_get | Op_put | Op_txn

type serving = {
  sv_lats : float list array;  (** Per node, newest first. *)
  mutable sv_gets : int;
  mutable sv_puts : int;
  mutable sv_txns : int;
}

type t = {
  cfg : Config.t;
  layout : Mem.Layout.t;
  engine : Sim.Engine.t;
  net : Machine.Network.t;
  nodes : node_state array;
  mutable next_addr : int;
  home_tbl : (int, int) Hashtbl.t;
  alloc_tbl : (int, int) Hashtbl.t;
  keeper_tbl : (int, int) Hashtbl.t;
  copyset_tbl : (int, int array) Hashtbl.t;
  roots : (string, int) Hashtbl.t;
  scratch_tbl : (int, unit) Hashtbl.t;
  lock_last : (int, int) Hashtbl.t;
  channels : float array;  (** (src * nprocs + dst) -> last arrival. *)
  barrier : barrier_state;
  migration_prev : (int, int) Hashtbl.t;
  mutable gc_nodes_done : int;
  gc_on_done : (int, unit -> unit) Hashtbl.t;
  mutable trace : (float -> string -> unit) option;
  mutable sink : Obs.Trace.sink option;
  mutable next_span : int;  (** Wait-span id allocator (causal layer). *)
  mutable finished_count : int;
  alive : bool array;  (** [false] once the chaos schedule killed the node. *)
  deposed : bool array;
      (** Membership view of the failure detector: [true] while a suspicion
          quorum has voted the node out. Distinct from [alive] (physical
          crash): a falsely-suspected node is deposed but alive, keeps
          executing, and rejoins when the suspicion is refuted. *)
  suspects : bool array array;
      (** [suspects.(by).(peer)]: [by] currently suspects [peer] (heartbeat
          detector only; all [false] under the oracle). *)
  page_epoch : (int, int) Hashtbl.t;
      (** page -> authority epoch, bumped at every promotion; a serve from
          an older epoch is fenced off (no split-brain double-home). *)
  repl_tbl : (int, int array) Hashtbl.t;
      (** page -> replica ranks (home first, then the next node ids mod
          nprocs); populated by {!malloc} only when [replicas] > 1. *)
  mutable failover_stalls : float list;
      (** Per re-routed fetch: resume time minus failover time. *)
  failover_at : (int, float) Hashtbl.t;  (** page -> last failover time. *)
  recovering : (int, recovery) Hashtbl.t;
      (** page -> in-progress failover recovery at the promoted primary. *)
  chaos : Machine.Chaos.t option;  (** Fault plan; [None] = fault-free run. *)
  mutable transport : Machine.Transport.t option;
      (** Reliable transport over the chaotic network; installed iff [chaos]
          is, so fault-free runs use the pre-chaos send path unchanged. *)
  mutable metrics : metrics_set option;
      (** Sampled flight recorder; installed iff [metrics_interval] > 0, so
          default runs carry no metrics work on any path. *)
  mutable serving : serving option;
      (** Serving-workload op log; installed lazily at the first
          {!record_op}. *)
}

(** The effects through which application processes enter the runtime; only
    operations that may suspend the process are effects. *)
type _ Effect.t +=
  | Lock_eff : int -> unit Effect.t
  | Barrier_eff : unit Effect.t
  | Read_fault_eff : int -> unit Effect.t
  | Write_fault_eff : int -> unit Effect.t

(** Raised by the runtime when the event queue drains with unfinished
    processes (e.g. mismatched barriers); carries a diagnosis. *)
exception Deadlock of string

(** Fixed per-message header, bytes. *)
val header_bytes : int

val create : Config.t -> t

val nprocs : t -> int

val costs : t -> Machine.Costs.t

(** Protocol predicates (from the configuration). *)

val home_based : t -> bool

val overlapped : t -> bool

val aurc : t -> bool

val eager_rc : t -> bool

(** Homeless with lazy diff retention (LRC/OLRC): the protocols that need
    garbage collection. *)
val homeless_lazy : t -> bool

(** Current simulated time. *)
val now : t -> float

(** [install_metrics t reg] registers the full instrument set (traffic,
    fault and replication counters; in-flight/event-set/protocol-memory
    gauges; the five latency histograms; fault/diff/home page heatmaps)
    into [reg] and arms every recording hook. Call before the run starts. *)
val install_metrics : t -> Obs.Metrics.t -> unit

(** The registry handed to {!install_metrics}, if any. *)
val metrics_registry : t -> Obs.Metrics.t option

(** Sample the gauges (transport in-flight packets, engine event-set size,
    per-node protocol memory) at simulated [time]. No-op when metrics are
    off. *)
val sample_metrics : t -> time:float -> unit

(** Record a page fault on [node] for the per-node fault series and the
    page heatmap (called at the entry of [Faults.read_fault] /
    [write_fault]). No-op when metrics are off. *)
val metrics_fault : t -> node_state -> int -> unit

(** Record a diff creation against a page for the diff heatmap. No-op when
    metrics are off. *)
val metrics_diff : t -> int -> unit

(** {1 Structured observability}

    Protocol modules report what they do as typed {!Obs.Trace.kind} events.
    Events flow to the run's typed sink (when installed) and, rendered
    through {!Obs.Trace.render}, to the legacy string-trace callback —
    which is therefore a thin adapter over the typed stream. *)

(** Whether a sink or the legacy callback is installed; hot paths check
    this before constructing event payloads. *)
val observing : t -> bool

(** Emit an event attributed to [node] at its current virtual clock
    (no-op when nothing is observing). *)
val event : t -> node_state -> Obs.Trace.kind -> unit

(** Emission with explicit attribution (message arrivals, where the
    receiving node's clock has not been synced yet). *)
val event_at : t -> node:int -> time:float -> Obs.Trace.kind -> unit

(** Observer closure for {!Mem.Diff.apply}'s [?obs] hook, attributing
    diff-level events to [node]; [None] when tracing is off. *)
val diff_obs : t -> node_state -> (Obs.Trace.kind -> unit) option

(** Whether the causal layer is live: {!Config.trace_spans} is set {e and}
    a typed sink is installed. Gates every new-schema event so default
    [--trace-out] JSONL output stays byte-identical to the pre-span
    format. *)
val spans_on : t -> bool

(** Open a {!Obs.Trace.Wait_begin} span and return its run-unique id, or
    [-1] when {!spans_on} is false (a [-1] id makes {!span_end} a no-op).
    Used directly by protocol modules for nested home-wait spans; plain
    block waits get their spans from {!block}/{!resume}. *)
val span_begin :
  t -> node:int -> time:float -> bucket:Obs.Trace.wait_bucket -> resource:int -> int

(** Close the span ([Wait_end]); no-op when [span < 0]. *)
val span_end :
  t ->
  node:int ->
  time:float ->
  span:int ->
  bucket:Obs.Trace.wait_bucket ->
  resource:int ->
  unit

(** Per-page metadata of a node, created on first use. *)
val page_info : t -> node_state -> int -> page_info

(** The page's home node (home-based protocols). *)
val home_of : t -> int -> int

(** The node that allocated the page. *)
val allocator_of : t -> int -> int

(** Node guaranteed to hold a full copy, for homeless full-page fetches:
    the last GC's keeper, or the allocator before any collection. *)
val keeper_of : t -> int -> int

(** Home-side record of a page homed at [node], created on first use. *)
val home_page : t -> node_state -> int -> home_page

(** {1 Time charging} *)

val charge_compute : node_state -> float -> unit

val charge_protocol : node_state -> float -> unit

val charge_gc : node_state -> float -> unit

(** Open-loop idle until the next scheduled arrival: wall-clock waiting,
    so the chaos straggler multiplier does {e not} apply. *)
val charge_idle : node_state -> float -> unit

(** Record one completed serving operation ([latency] is completion minus
    scheduled arrival, in microseconds); feeds {!serving_log} and, when
    metrics are on, the [op_latency_us] histogram. *)
val record_op : t -> node_state -> op_kind -> latency:float -> unit

val serving_log : t -> serving option

(** {1 Messages and request service} *)

(** [send t ~src ~dst ~at ~bytes ~update handler] delivers a message sent at
    time [at]; [handler] runs at the arrival time. [update] is the part of
    [bytes] counted as update traffic. Channels between a (src, dst) pair
    are FIFO, as on a wormhole mesh. *)
val send :
  t ->
  src:node_state ->
  dst:int ->
  at:float ->
  bytes:int ->
  update:int ->
  (float -> unit) ->
  unit

(** Service an incoming request on the node's compute processor (interrupt +
    cost, charged to its protocol bucket); returns the completion time. *)
val serve_compute : t -> node_state -> arrival:float -> cost:float -> float

(** Service on the communication co-processor (FIFO, no compute impact). *)
val serve_coproc : t -> node_state -> arrival:float -> cost:float -> float

(** Placement by protocol: co-processor when overlapped, else compute. *)
val serve : t -> node_state -> arrival:float -> cost:float -> float

(** Protocol work initiated by the node itself: inline on the compute
    processor, or posted to the co-processor when overlapped. Returns the
    completion time. *)
val local_protocol_work : t -> node_state -> cost:float -> float

(** {1 Blocking and resuming application processes} *)

(** [block t node ?resource kind k] suspends the node's process. [resource]
    names what it waits on — the page for [Wait_data], lock for
    [Wait_lock], epoch for [Wait_barrier] (default [0]) — and lands in the
    wait span the causal layer emits when {!spans_on}. *)
val block :
  t ->
  node_state ->
  ?resource:int ->
  block_kind ->
  (unit, unit) Effect.Deep.continuation ->
  unit

(** Close the current wait bucket (and its span) and continue blocking
    under a new kind (barrier wait turning into GC wait). *)
val rebucket_block : t -> node_state -> ?resource:int -> block_kind -> unit

(** Resume the node's suspended process at simulated time [at], accounting
    the wait to the bucket of its block kind. *)
val resume : t -> node_state -> at:float -> unit

(** {1 Memory accounting} *)

val missing_entry_bytes : int

val account_interval : node_state -> Proto.Interval.t -> unit

val release_interval : node_state -> Proto.Interval.t -> unit

(** {1 Allocation} *)

(** Allocate page-aligned shared memory; see {!Api.malloc}. *)
val malloc :
  t -> node_state -> ?name:string -> ?home_map:(int -> int) -> ?scratch:bool -> int -> int

(** Whether the page belongs to a [~scratch] allocation (excluded from the
    final-memory digest: its contents are schedule-dependent by design). *)
val is_scratch : t -> int -> bool

val root : t -> string -> int

(** Total allocated shared memory, bytes. *)
val shared_bytes : t -> int

(** {1 Home replication and node liveness} *)

(** Whether this run maintains replica sets ([replicas] > 1). *)
val replicated : t -> bool

(** Whether the node is still up (true until the chaos schedule kills it). *)
val is_alive : t -> int -> bool

(** Voted out by a suspicion quorum (heartbeat detector). Orthogonal to
    {!is_alive}: a deposed node may be perfectly alive (false suspicion)
    and will rejoin once refuted. *)
val is_deposed : t -> int -> bool

(** In the cluster's current membership view: physically up and not voted
    out. Promotion targets and quorum electorates use this, never bare
    {!is_alive}. *)
val is_member : t -> int -> bool

(** Authority epoch of the page: 0 until the first promotion, bumped at
    every one. A node serving the page compares the epoch it held authority
    under with the current one; a mismatch means it was deposed in between
    and must fence. *)
val epoch_of : t -> int -> int

val bump_epoch : t -> int -> unit

(** The page's replica ranks, or [None] when [replicas] = 1. *)
val replica_ranks : t -> int -> int array option

(** First live member of the page's replica set: the promotion target of a
    home-based failover, and the fallback server of homeless protocols. *)
val live_replica : t -> int -> int option

(** Backup-side state of a replicated page at [node], created on first use
    (the replica directory entry is memory-accounted). *)
val replica_page : t -> node_state -> int -> replica_page

(** Crash-stop the node: outbound sends are discarded at the source,
    inbound deliveries dropped on arrival, and (on chaos runs) the
    transport cancels its in-flight packets so no retransmission storm
    follows. Emits {!Obs.Trace.Node_kill}. Idempotent. *)
val kill_node : t -> node:int -> time:float -> unit

(** Apply a streamed diff into the backup's warm copy (backup scheme or a
    primary-local push) and advance its applied cut. *)
val deliver_repl_update :
  t -> node_state -> arrival:float -> page:int -> writer:int -> index:int -> Mem.Diff.t -> unit

(** Keep the page's backups consistent after the primary applied a diff:
    a full-diff stream when [payload] is set or the scheme is [Backup],
    else a header-only invalidation record. Under the inval scheme a
    payload push (the primary's own diff) is archived at the backup with
    its timestamp [vt] (required iff [payload]) rather than applied, so
    failover recovery can order it causally against pulled diffs. No-op at
    [replicas] = 1. *)
val propagate_update :
  t ->
  node_state ->
  page:int ->
  writer:int ->
  index:int ->
  diff:Mem.Diff.t ->
  vt:Proto.Vclock.t option ->
  at:float ->
  payload:bool ->
  unit

(** Homeless replication: stream a retained diff (with interval index and
    vector time) to the page's replica members, which archive it for
    dead-writer / dead-keeper recovery. No-op at [replicas] = 1. *)
val propagate_archive :
  t ->
  node_state ->
  page:int ->
  index:int ->
  diff:Mem.Diff.t ->
  vt:Proto.Vclock.t ->
  at:float ->
  unit

(** {1 Eager RC support} *)

(** The page's copyset phases: 0 = no copy, 1 = fetching, 2 = installed. *)
val copyset : t -> int -> int array

(** Join the copyset (phase 1): pushes from now on must reach this node. *)
val register_copy : t -> node_state -> int -> unit

(** The node's copy installed (phase 2): it may serve fetches. *)
val mark_copy_installed : t -> node_state -> int -> unit

(** Some installed member, if any. *)
val installed_member : t -> int -> int option

(** Run [f] once all of the node's pushed updates are acknowledged. *)
val rc_when_drained : t -> node_state -> (float -> unit) -> unit

(** One acknowledgement arrived; runs the deferred actions at zero. *)
val rc_ack_arrived : t -> node_state -> at:float -> unit
