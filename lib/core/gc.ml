(* Garbage collection of protocol data (homeless protocols only).

   Triggered at barriers when any node's live protocol memory exceeds the
   configured threshold (paper §3.5). Every shared page's "last writer"
   (the creator of the causally-maximal interval that wrote it) validates its
   copy by pulling all missing diffs; other nodes drop their copies and point
   their copyset hint at the last writer. Diffs and interval records may
   only be discarded once *every* node has finished validating — the nodes
   rendezvous through the barrier manager (Gc_done / discard broadcast)
   before discarding, mirroring the paper's description of the collection
   being "quite complex". *)

open System

(* Deterministic total order refining the causal order (see
   Faults.causal_key: the timestamp-sum key is a linear extension). *)
let later a b = Faults.causal_key a > Faults.causal_key b

(* page -> the designated keeper interval: the maximum under the [later]
   total order. After a barrier every node holds the same set of interval
   records, and a fold with a total order is insensitive to list order, so
   all nodes elect the same keeper; it validates the page while the rest
   drop their copies. *)
let last_writers node =
  let best : (int, Proto.Interval.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun ivs ->
      List.iter
        (fun (iv : Proto.Interval.t) ->
          List.iter
            (fun page ->
              match Hashtbl.find_opt best page with
              | Some cur when not (later iv cur) -> ()
              | _ -> Hashtbl.replace best page iv)
            iv.Proto.Interval.pages)
        ivs)
    node.known;
  best

let scan_cost_per_page = 2.

(* Drop all retained diffs and interval records. *)
let discard_all sys node =
  Hashtbl.iter
    (fun _ diffs ->
      List.iter
        (fun (_, diff, _) ->
          Mem.Accounting.sub node.stats.Stats.proto_mem (Mem.Diff.size_bytes diff))
        diffs)
    node.own_diffs;
  Hashtbl.reset node.own_diffs;
  Array.iteri
    (fun creator ivs ->
      List.iter (fun iv -> release_interval node iv) ivs;
      node.known.(creator) <- [])
    node.known;
  event sys node Obs.Trace.Gc_done

(* Validate-or-drop every page this node tracks, then call [k]. Validations
   run sequentially (one outstanding diff collection per node). Pages with
   no writer since the previous collection keep their current keeper: its
   copy (established then) is still the only guaranteed-full one. *)
let sweep sys node ~k =
  let best = last_writers node in
  let to_validate = ref [] in
  (* Node 0 publishes the new keepers; every node computes the same [best],
     and the directory is only consulted for pages *not* in it, so the
     update order relative to other nodes' sweeps is immaterial. *)
  if node.id = 0 then
    Hashtbl.iter
      (fun page (iv : Proto.Interval.t) ->
        Hashtbl.replace sys.keeper_tbl page iv.Proto.Interval.node)
      best;
  Mem.Page_table.iter node.pt (fun entry ->
      let page = entry.Mem.Page_table.page in
      charge_gc node scan_cost_per_page;
      let pi = page_info sys node page in
      let keeper =
        match Hashtbl.find_opt best page with
        | Some iv -> iv.Proto.Interval.node
        | None -> keeper_of sys page
      in
      if keeper = node.id then begin
        if entry.Mem.Page_table.data <> None && Faults.still_missing pi <> [] then
          to_validate := page :: !to_validate
      end
      else begin
        (* Non-last-writer: drop the copy; future faults re-fetch from the
           keeper. *)
        if entry.Mem.Page_table.data <> None then begin
          entry.Mem.Page_table.data <- None;
          entry.Mem.Page_table.prot <- Mem.Page_table.No_access;
          charge_gc node (costs sys).Machine.Costs.page_invalidate
        end;
        Mem.Accounting.sub node.stats.Stats.proto_mem
          (missing_entry_bytes * List.length pi.missing);
        pi.missing <- [];
        for i = 0 to Proto.Vclock.nprocs pi.applied - 1 do
          Proto.Vclock.set pi.applied i (-1)
        done
      end);
  let rec validate = function
    | [] -> k ()
    | page :: rest ->
        Faults.collect_diffs sys node page ~on_valid:(fun () -> validate rest)
  in
  validate !to_validate

(* Per-node GC entry point, run between the barrier release and the
   process's resumption. [on_done] fires after the global discard phase. *)
let run sys node ~on_done =
  node.in_gc <- true;
  node.stats.Stats.c.Stats.gc_runs <- node.stats.Stats.c.Stats.gc_runs + 1;
  event sys node
    (Obs.Trace.Gc_start { mem_bytes = Mem.Accounting.current node.stats.Stats.proto_mem });
  if spans_on sys then
    event sys node
      (Obs.Trace.Mem_sample { bytes = Mem.Accounting.current node.stats.Stats.proto_mem });
  sweep sys node ~k:(fun () ->
      (* Rendezvous: nobody discards until everyone has validated. *)
      let mgr = sys.nodes.(0) in
      Hashtbl.replace sys.gc_on_done node.id (fun () ->
          discard_all sys node;
          node.in_gc <- false;
          on_done ());
      send sys ~src:node ~dst:0 ~at:node.mach.Machine.Node.ck.Machine.Node.clock ~bytes:header_bytes ~update:0
        (fun arrival ->
          let done_t = serve_compute sys mgr ~arrival ~cost:scan_cost_per_page in
          sys.gc_nodes_done <- sys.gc_nodes_done + 1;
          if sys.gc_nodes_done = nprocs sys then begin
            sys.gc_nodes_done <- 0;
            Array.iter
              (fun (n : node_state) ->
                send sys ~src:mgr ~dst:n.id ~at:done_t ~bytes:header_bytes ~update:0
                  (fun release_at ->
                    Machine.Node.sync_to n.mach release_at;
                    match Hashtbl.find_opt sys.gc_on_done n.id with
                    | Some f ->
                        Hashtbl.remove sys.gc_on_done n.id;
                        f ()
                    | None -> assert false))
              sys.nodes
          end))
