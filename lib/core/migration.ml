(* Adaptive home migration (extension; home-based protocols only).

   The paper fixes each page's home at allocation time and notes the win of
   "intelligently" chosen homes (4.4). Follow-up systems (JIAJIA-style home
   migration) re-home pages whose writer set drifts. This module implements
   that extension at barrier points, which are globally quiescent for the
   relevant state: no page fetch or lock grant can be in flight across a
   barrier (each node runs one process, which must be blocked *in* the
   barrier), so the only in-flight protocol traffic is diff flushes — and
   the transfer below is gated on exactly those through the home page's
   pending mechanism.

   At barrier completion the manager counts, per page, the writers of the
   epoch's intervals; when a page's dominant writer is not its home, the
   directory is updated and the old home ships the master copy and flush
   timestamps to the new home once every announced diff has landed.
   Fetches racing the transfer (nodes resume before it completes) wait at
   the new home exactly like fetches racing a flush. *)

open System

let decision_cost_per_page = 2.

(* page -> (new_home, per-writer flush level the transfer must wait for),
   from the epoch's interval records. *)
let plan sys epoch_ivs =
  let writes : (int, (int * int) list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (iv : Proto.Interval.t) ->
      List.iter
        (fun page ->
          let prev = try Hashtbl.find writes page with Not_found -> [] in
          Hashtbl.replace writes page ((iv.Proto.Interval.node, iv.Proto.Interval.index) :: prev))
        iv.Proto.Interval.pages)
    epoch_ivs;
  Hashtbl.fold
    (fun page events acc ->
      let counts = Hashtbl.create 8 in
      List.iter
        (fun (w, _) ->
          Hashtbl.replace counts w (1 + try Hashtbl.find counts w with Not_found -> 0))
        events;
      (* dominant writer: strictly more epoch intervals than anyone else *)
      let dominant =
        Hashtbl.fold
          (fun w c best ->
            match best with
            | Some (_, bc) when bc > c -> best
            | Some (bw, bc) when bc = c -> Some ((min bw w, bc) : int * int)
            | _ -> Some (w, c))
          counts None
      in
      match dominant with
      | Some (w, c) when 2 * c > List.length events (* majority of the epoch *) ->
          (* Hysteresis: move only when the same writer dominated the
             previous epoch too, so a one-off phase (e.g. initialization by
             process 0) cannot thrash the placement. *)
          let stable = Hashtbl.find_opt sys.migration_prev page = Some w in
          Hashtbl.replace sys.migration_prev page w;
          if stable && w <> home_of sys page then begin
            let required = Proto.Vclock.create ~nprocs:(nprocs sys) in
            List.iter
              (fun (writer, index) ->
                if index > Proto.Vclock.get required writer then
                  Proto.Vclock.set required writer index)
              events;
            (page, w, required) :: acc
          end
          else acc
      | _ ->
          Hashtbl.remove sys.migration_prev page;
          acc)
    writes []

(* Ship the master copy and flush levels from the old home to the new one.
   Runs once the old home's flush level covers [required]. *)
let transfer sys ~page ~old_home ~new_home ~at =
  let old_node = sys.nodes.(old_home) in
  let new_node = sys.nodes.(new_home) in
  let hentry = Mem.Page_table.ensure old_node.pt page in
  let master =
    match hentry.Mem.Page_table.data with
    | Some d -> d
    | None -> Mem.Page_table.attach_copy old_node.pt hentry
  in
  let snapshot = Mem.Words.copy master in
  let hp_old = home_page sys old_node page in
  let flush = Proto.Vclock.copy hp_old.hp_flush in
  assert (hp_old.hp_pending = []);
  (* The old home is no longer authoritative: drop the directory entry and
     invalidate its (now ordinary) cached copy. *)
  Hashtbl.remove old_node.homes page;
  Mem.Accounting.sub old_node.stats.Stats.proto_mem (Proto.Vclock.size_bytes flush);
  hentry.Mem.Page_table.prot <- Mem.Page_table.No_access;
  event sys old_node (Obs.Trace.Home_migration { page; dst = new_home });
  let bytes = header_bytes + Mem.Layout.page_bytes sys.layout + Proto.Vclock.size_bytes flush in
  send sys ~src:old_node ~dst:new_home ~at ~bytes ~update:(Mem.Layout.page_bytes sys.layout)
    (fun arrival ->
      let done_t = serve sys new_node ~arrival ~cost:decision_cost_per_page in
      let entry = Mem.Page_table.ensure new_node.pt page in
      entry.Mem.Page_table.data <- Some snapshot;
      entry.Mem.Page_table.twin <- None;
      entry.Mem.Page_table.mirror <- None;
      entry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
      let hp_new = home_page sys new_node page in
      Proto.Vclock.merge_into hp_new.hp_flush flush;
      new_node.stats.Stats.c.Stats.home_migrations <-
        new_node.stats.Stats.c.Stats.home_migrations + 1;
      Intervals.serve_pending_fetches hp_new ~at:done_t)

(* Entry point, called by the barrier manager at completion (before the
   releases go out, so every node's release application already sees the
   new directory). *)
let run sys epoch_ivs =
  if home_based sys && sys.cfg.Config.home_migration then begin
    let mgr = sys.nodes.(0) in
    let moves = plan sys epoch_ivs in
    List.iter
      (fun (page, new_home, required) ->
        charge_protocol mgr decision_cost_per_page;
        let old_home = home_of sys page in
        Hashtbl.replace sys.home_tbl page new_home;
        (* Every node's automatic-update mapping (AURC) now points at a
           stale master: tear them down; the next write fault re-binds. *)
        Array.iter
          (fun (n : node_state) ->
            if n.id <> new_home then begin
              let e = Mem.Page_table.ensure n.pt page in
              e.Mem.Page_table.mirror <- None
            end)
          sys.nodes;
        let old_node = sys.nodes.(old_home) in
        let hp_old = home_page sys old_node page in
        let start at = transfer sys ~page ~old_home ~new_home ~at in
        if Proto.Vclock.leq required hp_old.hp_flush then
          start mgr.mach.Machine.Node.ck.Machine.Node.clock
        else
          hp_old.hp_pending <-
            (* System-initiated transfer, not a node's fetch; attribute it to
               the receiving home. Migration excludes replication (Config
               forbids the combination), so this park is never fenced. *)
            { pf_needed = required; pf_serve = start; pf_requester = new_home }
            :: hp_old.hp_pending)
      moves
  end
