(** Application programming interface of the shared virtual memory system.

    This is the Splash-2-style API the paper's prototypes expose (§3.2): a
    flat shared address space with [malloc] ([G_MALLOC]), [lock]/[unlock] and
    [barrier], plus word-granularity reads and writes. Every application
    process receives a [ctx] and runs the same code; process 0 conventionally
    allocates and initializes shared data before the first barrier.

    Addresses are 8-byte-word indices into the shared space. Reads and
    writes go through the simulated page tables: an access to an invalid
    page suspends the process, runs the configured coherence protocol, and
    resumes it with the simulated costs charged — exactly the paper's
    page-fault-driven execution, minus the real MMU. *)

type ctx

(**/**)

(* Used by the runtime to build each process's context; not part of the
   application-facing API. *)
val make_ctx : System.t -> System.node_state -> ctx

(**/**)

(** Identity of the calling process (0-based). *)
val pid : ctx -> int

(** Number of processes in the run. *)
val nprocs : ctx -> int

(** [malloc ctx ?name ?home words] allocates [words] 8-byte words of
    zero-initialized shared memory, page-aligned, and returns the base
    address. [name] registers the address for retrieval with {!root} by the
    other processes (after a barrier). [home] maps each page index within
    the allocation to its home node (home-based protocols; the "chosen
    intelligently" placement of §4.4); unhinted pages follow the configured
    {!Config.home_policy}. [scratch] (default false) marks the allocation's
    contents as schedule-dependent by design (task-queue cursors and the
    like): still fully coherent, but excluded from the final-memory digest
    that the chaos soak compares, since a different interleaving legitimately
    leaves different values there. *)
val malloc : ctx -> ?name:string -> ?home:(int -> int) -> ?scratch:bool -> int -> int

(** Address registered under [name] by a previous [malloc].
    @raise Invalid_argument if no such registration exists. *)
val root : ctx -> string -> int

(** Pages spanned by / page of an address, for building home maps. *)
val page_words : ctx -> int

val read : ctx -> int -> float

val write : ctx -> int -> float -> unit

(** Integer convenience wrappers ([float] words store integers exactly up to
    2{^53}). *)
val read_int : ctx -> int -> int

val write_int : ctx -> int -> int -> unit

(** Acquire the global lock [id]. Locks are pairwise independent; managers
    are assigned round-robin. *)
val lock : ctx -> int -> unit

val unlock : ctx -> int -> unit

(** Global barrier across all processes. *)
val barrier : ctx -> unit

(** Model [us] microseconds of local computation. *)
val compute : ctx -> float -> unit

(** Start the measured window: elapsed time, breakdowns and counters in the
    run's report are relative to this call. Call it at the same point in
    every process, right after a barrier. *)
val start_timing : ctx -> unit

(** The calling node's virtual clock, in microseconds. *)
val now : ctx -> float

(** [idle_until ctx at] advances the node's clock to [at] (a no-op when
    already past it): open-loop think time between scheduled arrivals.
    Unlike {!compute}, the chaos straggler multiplier does not apply —
    waiting for the wall clock is not processor work. *)
val idle_until : ctx -> float -> unit

(** [record_op ctx kind ~issued_at] logs one completed serving operation
    with latency [now ctx - issued_at] (clamped at 0) into the run's
    serving log — surfaced as the report's [serving] block and, when
    metrics are on, the [op_latency_us] histogram. *)
val record_op : ctx -> System.op_kind -> issued_at:float -> unit
