(** Run configuration: protocol choice, machine size and model knobs. *)

(** The four protocols the paper evaluates — [Olrc]/[Ohlrc] are the
    co-processor-overlapped variants of [Lrc]/[Hlrc] — plus [Aurc], the
    Automatic Update Release Consistency protocol (paper 2.2) that HLRC
    emulates in software: writes to non-home pages are propagated to the
    home by write-through hardware (no twins, no diffs, zero software
    overhead on update detection), at the price of per-write traffic.

    [Rc] is eager Release Consistency (paper 2, Munin-style): diffs are
    pushed to every node caching the page when the interval ends, and the
    lock/barrier handoff waits for their acknowledgements — the protocol
    LRC was designed to relax. *)
type protocol = Lrc | Olrc | Hlrc | Ohlrc | Aurc | Rc

(** The paper's four software protocols (its Table 2 columns). *)
val all_protocols : protocol list

(** All implemented protocols, including the hardware-assisted AURC and
    eager RC. *)
val extended_protocols : protocol list

val protocol_name : protocol -> string

(** The command-line spellings {!protocol_of_string} accepts, in
    {!extended_protocols} order — the single source of truth for help and
    error text (["lrc"; "olrc"; "hlrc"; "ohlrc"; "aurc"; "rc"]). *)
val protocol_strings : string list

val protocol_of_string : string -> protocol option

(** Position of the protocol in {!extended_protocols} — the paper's
    LRC/OLRC/HLRC/OHLRC column order (then AURC, RC). Sorting by this keeps
    machine-readable dumps aligned with the tables, which alphabetical
    order by {!protocol_name} does not. *)
val protocol_rank : protocol -> int

(** Home-based protocols maintain a master copy of each page at a home node
    (HLRC/OHLRC); homeless ones keep diffs distributed at the writers. *)
val home_based : protocol -> bool

(** Overlapped protocols offload diff work and remote-request service to the
    communication co-processor. *)
val overlapped : protocol -> bool

(** Fallback home assignment for pages allocated without a placement hint
    (home-based protocols only). *)
type home_policy = Round_robin | Block | Allocator

(** Name of a home-assignment policy (["round_robin"] | ["block"] |
    ["allocator"]), as serialized in JSON reports. *)
val home_policy_name : home_policy -> string

(** How a page's primary keeps its backups consistent ([replicas] > 1).
    [Inval]: the primary sends small invalidation records; backups hold no
    current data and recovery pulls the retained diffs back from the live
    writers (cheap steady state, slower failover). [Backup]: the primary
    streams every applied diff to the backups, which maintain a warm full
    copy (more steady-state traffic, near-instant promotion). *)
type repl_scheme = Inval | Backup

(** Stable name of the scheme (["inval"] | ["backup"]), as accepted on the
    command line and serialized in reports. *)
val repl_scheme_name : repl_scheme -> string

(** The command-line spellings {!repl_scheme_of_string} accepts. *)
val repl_scheme_strings : string list

val repl_scheme_of_string : string -> repl_scheme option

(** How node failures are detected. [Oracle] (the default): failover is
    scheduled by the runtime at kill time + [chaos.detect_delay] —
    deterministic and perfect, spurious failover impossible, and every
    fault-free output byte-identical to before the detector existed.
    [Heartbeat]: nodes exchange timing-model-charged heartbeats
    ({!Machine.Transport.start_heartbeats}); a peer silent past
    [hb_timeout] is {e suspected}, and failover runs only when a strict
    majority of live, non-deposed nodes agree — a real, fallible detector
    that partitions and pauses can fool. *)
type detector = Oracle | Heartbeat

(** Stable name of the detector (["oracle"] | ["heartbeat"]). *)
val detector_name : detector -> string

(** The command-line spellings {!detector_of_string} accepts. *)
val detector_strings : string list

val detector_of_string : string -> detector option

type t = {
  nprocs : int;
  protocol : protocol;
  page_words : int;  (** Words (8 bytes each) per page; default 1024 = 8 KB. *)
  costs : Machine.Costs.t;
  home_policy : home_policy;
  gc_threshold_bytes : int;
      (** Per-node protocol memory that triggers garbage collection at the
          next barrier (homeless protocols only). *)
  coproc_locks : bool;
      (** Extension suggested by the paper's 4.3: service lock requests on
          the communication co-processor (overlapped protocols only),
          reducing a remote acquire from ~1,550 us to ~150 us. Off by
          default, as in the paper's prototypes. *)
  au_combine_words : int;
      (** AURC only: words combined into one automatic-update message by the
          network interface (the SHRIMP combining buffer). *)
  home_migration : bool;
      (** Extension (home-based protocols): at each barrier, re-home pages
          to the dominant writer of the epoch (JIAJIA-style adaptive
          placement). Off by default, as in the paper. *)
  paranoid : bool;
      (** Testing aid: at each barrier completion, assert that all current
          copies of every page are bitwise identical (raises
          {!Invariants.Violation} otherwise). No effect on the simulated
          costs. *)
  seed : int;
  chaos : Machine.Chaos.params;
      (** Network fault injection and CPU stragglers. With
          {!Machine.Chaos.none} (the default) the run is fault-free and
          the reliable-transport layer is bypassed entirely, so reports
          are byte-identical to a build without the chaos machinery. *)
  trace_cap : int;
      (** Capacity of the trace sink the drivers create for [--trace-out]
          / [--profile] (default 1,000,000 events); overflow is counted in
          {!Obs.Trace.dropped} and surfaced in reports. *)
  trace_spans : bool;
      (** Emit the causal layer — {!Obs.Trace.Wait_begin}/[Wait_end] spans,
          memory counter samples, and diff-reply correlation events — into
          the trace sink. Off by default so plain [--trace-out] JSONL
          output stays byte-identical to the pre-span schema; turned on by
          [--profile] (and needed by {!Obs.Critical_path}). *)
  fault_batch : int;
      (** Batched fault handling (home-based protocols): on a miss, pull up
          to this many adjacent same-home invalid pages in the one round
          trip serving the faulting page. 1 (the default) keeps today's
          one-page-per-fault behavior byte-identical; the flag only changes
          simulated outcomes when > 1. *)
  replicas : int;
      (** Degree of each page's home replica set ([--replicas K]): the
          original home plus [K - 1] backups at the next node ids (mod
          nprocs), in rank order. 1 (the default) keeps today's
          single-home behavior byte-identical; with K >= 2 a page
          survives the crash of its home — the failure detector promotes
          the next live rank. Home-based protocols replicate the master
          copy per [repl_scheme]; homeless protocols archive every
          writer's streamed diffs at the replica members (both schemes
          behave identically there). *)
  repl_scheme : repl_scheme;
      (** Backup-consistency scheme, meaningful when [replicas] > 1. *)
  metrics_interval : float;
      (** Time-bucket width (simulated microseconds) of the sampled metrics
          flight recorder ([--metrics-interval US]). 0 (the default)
          disables metrics entirely: no registry is created, no sampler
          events are scheduled, and every output stays byte-identical to a
          build without the metrics machinery. *)
  detector : detector;
      (** Failure-detection mode; [Oracle] by default, keeping all
          detector-free outputs byte-identical. *)
  hb_interval : float;
      (** Heartbeat emission period in simulated microseconds
          ([--hb-interval], default 1000); only meaningful with
          [detector = Heartbeat]. *)
  hb_timeout : float;
      (** Suspicion timeout in simulated microseconds ([--hb-timeout]).
          0 (the default) auto-sizes it from the interval and the chaos
          plan's worst jitter spike — see {!hb_timeout_effective}. *)
}

(** Whether this configuration injects any faults (see
    {!Machine.Chaos.enabled}). *)
val chaos_enabled : t -> bool

(** Whether the reliable transport must be installed: {!chaos_enabled}, or
    the heartbeat detector is selected (its pings and the healing
    retransmissions ride on the transport even in a fault-free run). *)
val transport_enabled : t -> bool

(** The suspicion timeout actually used: [hb_timeout] when positive, else
    [3 * hb_interval + 2 * worst jitter spike + 100] — wide enough that a
    healthy peer is never suspected (the audit runs once per interval and a
    ping can lag a full interval plus jitter). *)
val hb_timeout_effective : t -> float

(** Whether the metrics flight recorder is on ([metrics_interval] > 0). *)
val metrics_enabled : t -> bool

(** Raises [Invalid_argument] with a descriptive message when a knob is out
    of range: [nprocs], [gc_threshold_bytes], [au_combine_words] or
    [trace_cap] non-positive, [page_words] not a positive power of two,
    [fault_batch] < 1, [metrics_interval] negative, an invalid chaos plan
    (rates outside [0, 1], negative jitter, straggler < 1, or a malformed
    fault schedule — see {!Machine.Chaos.validate}; killing or pausing
    node 0, the lock/barrier manager, is rejected there), a scheduled
    fault naming a node >= [nprocs], [hb_interval] non-positive,
    [hb_timeout] negative, [replicas] outside [1, nprocs], or [replicas]
    > 1 combined with AURC/RC or with [home_migration]. *)
val make :
  ?page_words:int ->
  ?costs:Machine.Costs.t ->
  ?home_policy:home_policy ->
  ?gc_threshold_bytes:int ->
  ?coproc_locks:bool ->
  ?au_combine_words:int ->
  ?home_migration:bool ->
  ?paranoid:bool ->
  ?seed:int ->
  ?chaos:Machine.Chaos.params ->
  ?trace_cap:int ->
  ?trace_spans:bool ->
  ?fault_batch:int ->
  ?replicas:int ->
  ?repl_scheme:repl_scheme ->
  ?metrics_interval:float ->
  ?detector:detector ->
  ?hb_interval:float ->
  ?hb_timeout:float ->
  nprocs:int ->
  protocol ->
  t
