(* Central state of a simulated SVM machine: per-node protocol state, the
   event engine, the network, and the low-level primitives every protocol
   module builds on (messages, request service, blocking/resuming the
   per-node application process).

   Timing model (see DESIGN.md): each node's compute processor is a virtual
   clock [mach.clock]; servicing an incoming request on the compute processor
   adds (interrupt + cost) to that clock and the reply is timed from the
   request's arrival. The communication co-processor is a separate
   busy-until timeline. Protocol *state* mutations happen in event order,
   which respects causality because every causal chain goes through messages
   with strictly positive latency. *)

type block_kind = Wait_data | Wait_lock | Wait_barrier | Wait_gc

(* Per-node, per-page protocol state.

   Homeless (LRC/OLRC) fields: [missing] holds the write notices (interval
   records) not yet reflected in the local copy, [applied] the per-writer
   maximal interval index already merged in (always a causally-closed cut).

   Home-based (HLRC/OHLRC) fields: [needed] is the per-writer flush level the
   home must have reached before the next page fetch may be served. *)
type page_info = {
  pi_page : int;
  mutable missing : Proto.Interval.t list;
  mutable applied : Proto.Vclock.t;
  mutable needed : Proto.Vclock.t;
  mutable needed_counted : bool;  (* memory-accounted once *)
  mutable rc_backlog : Mem.Diff.t list;
      (* eager-RC updates that arrived while the copy was still being
         fetched, newest first; applied on install *)
}

(* Home-side state for a page homed at this node. [hp_flush.(i) = x] means
   all of writer [i]'s diffs up to interval [x] are applied to the master
   copy. Fetches whose [needed] exceeds [hp_flush] wait in [hp_pending]. *)
type home_page = {
  hp_page : int;
  hp_flush : Proto.Vclock.t;
  mutable hp_pending : pending_fetch list;
}

and pending_fetch = {
  pf_needed : Proto.Vclock.t;
  pf_serve : float -> unit;
  pf_requester : int;
      (* who asked: lets a deposed ex-home distinguish remote fetches (to
         be fenced and dropped — the requester re-issues against the new
         home) from its own local waits, which must survive the rejoin *)
}

(* Backup-side state for one page this node backs up ([--replicas] > 1).
   [rp_data]/[rp_flush] hold the warm copy and the per-writer cut applied
   into it: complete under the primary-backup scheme (every applied diff is
   streamed), and covering only the primary's own writes under the
   invalidation scheme (those have no surviving writer to re-flush them
   after a crash, so they are always pushed as payload). [rp_archive] holds
   the diffs homeless writers stream to the page's replica members, newest
   first; archives are never freed — that retained memory is the
   availability price the bench artifact reports. *)
type replica_page = {
  rp_page : int;
  mutable rp_data : Mem.Words.t option;
  rp_flush : Proto.Vclock.t;
  mutable rp_archive : (int * int * Mem.Diff.t * Proto.Vclock.t) list;
      (* (writer, interval index, diff, writer vt at interval end) *)
}

(* Distributed-lock state at one node (token-forwarding protocol; the
   manager is [lock mod nprocs] and tracks the last requester). *)
type lock_state = {
  mutable lk_token : bool;  (* this node is at the tail of the request chain *)
  mutable lk_held : bool;
  mutable lk_waiting : bool;  (* this node has an acquire in flight *)
  mutable lk_waiter : (int * Proto.Vclock.t) option;  (* forwarded requester *)
}

type node_state = {
  id : int;
  slowdown : float;
      (* chaos straggler multiplier on compute-processor work; exactly 1.0
         when fault injection is off, so charging [dt *. slowdown] is
         bit-identical to charging [dt] *)
  mach : Machine.Node.t;
  pt : Mem.Page_table.t;
  mutable pinfo : page_info option array;
  vt : Proto.Vclock.t;  (* vt.(i) = latest completed interval of i known *)
  mutable dirty : int list;  (* pages written during the current interval *)
  known : Proto.Interval.t list array;  (* per creator, newest first *)
  own_diffs : (int, (int * Mem.Diff.t * Proto.Vclock.t) list) Hashtbl.t;
      (* page -> (interval, diff, vt at interval end), newest first *)
  homes : (int, home_page) Hashtbl.t;  (* pages homed at this node *)
  locks : (int, lock_state) Hashtbl.t;
  stats : Stats.t;
  mutable mgr_vt : Proto.Vclock.t;  (* global cut as of last barrier release *)
  mutable reported : int;  (* own interval index last sent to the barrier mgr *)
  (* Blocking state of the node's application process. *)
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable blocked : block_kind option;
  mutable block_clock : float;
  mutable wait_services : float;  (* service time charged while blocked *)
  mutable wait_span : int;  (* open wait-span id (-1 = none / spans off) *)
  mutable wait_resource : int;  (* resource of the open span (page/lock/epoch) *)
  mutable rc_acks : int;  (* eager RC: update acknowledgements outstanding *)
  mutable rc_drain : (float -> unit) list;
      (* eager RC: actions (grants, barrier arrivals) deferred until the
         outstanding updates are acknowledged *)
  mutable in_gc : bool;  (* protocol work is re-billed to the GC bucket *)
  repl : (int, replica_page) Hashtbl.t;  (* pages this node backs up *)
  mutable fault_page : int;  (* page of the in-flight fault fetch (-1 = none) *)
  mutable fault_retry : (unit -> unit) option;
      (* re-issues the blocked fault's fetch; failover bumps [fetch_gen]
         and invokes this so a fetch lost to a dead home is re-routed *)
  mutable fetch_gen : int;
      (* generation of the node's in-flight fault fetch; replies from a
         superseded generation are discarded on arrival *)
  mutable stall_mark : float;
      (* failover time while awaiting resume (-1 = none): the next resume
         records [clock - stall_mark] as this fetch's recovery stall *)
  mutable finished : bool;
  mutable start_clock : float;  (* timing window start (Api.start_timing) *)
  mutable start_breakdown : Stats.breakdown;
  mutable start_counters : Stats.counters;
}

type barrier_state = {
  mutable bar_arrived : int;
  mutable bar_queue : (int * Proto.Vclock.t * Proto.Interval.t list) list;
      (* queued arrivals: (node, vt, its new interval records) *)
  mutable bar_mem_high : bool;  (* some node exceeded the GC threshold *)
  mutable bar_epoch : int;
  mutable bar_released : int;  (* releases applied (paranoid-check trigger) *)
  mutable bar_target : int;  (* release-applies expected: manager + live arrivals *)
}

(* In-progress failover recovery of one re-homed page at its new primary
   (see [Replica]): pulled/archived diffs accumulate in [rc_pull] until the
   last writer reply lands, while normal flushes arriving mid-recovery are
   stashed in [rc_live] (applying them into a half-reconstructed master
   would be lost when the rebuilt copy is installed). *)
type recovery = {
  mutable rc_pull : (int * int * Mem.Diff.t * Proto.Vclock.t) list;
      (* (writer, interval index, diff, writer vt): applied in causal order *)
  mutable rc_live : (int * int * Mem.Diff.t) list;
      (* (writer, index, diff) flushes stashed in arrival order, newest
         first; causally after every pulled diff that touches their words *)
  mutable rc_outstanding : int;  (* writer replies still awaited *)
}

(* Pre-registered instruments of the metrics flight recorder (see
   [Obs.Metrics]), built by [install_metrics] when the run asked for
   [--metrics-interval]. Registration happens once, in a fixed order, so
   serializations are deterministic; every hot-path hook below is a single
   [match] on the option when metrics are off. *)
type metrics_set = {
  ms_reg : Obs.Metrics.t;
  ms_messages : Obs.Metrics.counter;
  ms_update_bytes : Obs.Metrics.counter;
  ms_protocol_bytes : Obs.Metrics.counter;
  ms_faults : Obs.Metrics.counter;
  ms_retransmits : Obs.Metrics.counter;
  ms_drops : Obs.Metrics.counter;
  ms_repl_bytes : Obs.Metrics.counter;
  ms_inflight : Obs.Metrics.gauge;
  ms_pending : Obs.Metrics.gauge;
  ms_proto_mem : Obs.Metrics.gauge;
  ms_fetch_us : Obs.Metrics.histogram;
  ms_lock_us : Obs.Metrics.histogram;
  ms_barrier_us : Obs.Metrics.histogram;
  ms_backoff_us : Obs.Metrics.histogram;
  ms_stall_us : Obs.Metrics.histogram;
  ms_op_us : Obs.Metrics.histogram;
  ms_fault_heat : Obs.Metrics.heatmap;
  ms_diff_heat : Obs.Metrics.heatmap;
  ms_home_heat : Obs.Metrics.heatmap;
}

(* Serving-workload accumulator (kvstore): per-node latency logs plus op
   kind counts, allocated lazily at the first recorded operation so every
   non-serving run carries a single [None]. Latencies are kept per node —
   recording is a cons — and merged into one sorted array at collect. *)
type op_kind = Op_get | Op_put | Op_txn

type serving = {
  sv_lats : float list array;  (* per node, newest first *)
  mutable sv_gets : int;
  mutable sv_puts : int;
  mutable sv_txns : int;
}

type t = {
  cfg : Config.t;
  layout : Mem.Layout.t;
  engine : Sim.Engine.t;
  net : Machine.Network.t;
  nodes : node_state array;
  mutable next_addr : int;  (* shared address-space bump pointer (words) *)
  home_tbl : (int, int) Hashtbl.t;  (* page -> home node *)
  alloc_tbl : (int, int) Hashtbl.t;  (* page -> allocating node *)
  keeper_tbl : (int, int) Hashtbl.t;
      (* page -> node guaranteed to hold a full copy (the approximate
         copyset of homeless protocols); updated only at GC points, which
         are globally synchronized, so a single directory is sound *)
  copyset_tbl : (int, int array) Hashtbl.t;
      (* eager RC: page -> per-node membership phase. 0 = no copy;
         1 = copy in flight (pushes must already reach it, via the install
         backlog); 2 = installed (can serve fetches). Members are
         registered when the serving node snapshots the page, so no push
         can slip between the snapshot and the registration. *)
  roots : (string, int) Hashtbl.t;  (* named shared allocations *)
  scratch_tbl : (int, unit) Hashtbl.t;
      (* pages of allocations marked [~scratch]: schedule-dependent state
         (e.g. task-queue cursors) excluded from the result digest *)
  lock_last : (int, int) Hashtbl.t;  (* manager state: lock -> last requester *)
  channels : float array;
      (* (src * nprocs + dst) -> last arrival; a flat float array so the
         per-message FIFO-clamp lookup allocates no tuple key *)
  barrier : barrier_state;
  migration_prev : (int, int) Hashtbl.t;
      (* home migration: page -> dominant writer of the previous epoch
         (hysteresis: move only on two consecutive agreeing epochs) *)
  mutable gc_nodes_done : int;  (* GC rendezvous counter (homeless GC) *)
  gc_on_done : (int, unit -> unit) Hashtbl.t;  (* per-node GC completions *)
  mutable trace : (float -> string -> unit) option;
      (* legacy string tracer: fed by rendering the typed events *)
  mutable sink : Obs.Trace.sink option;  (* typed trace-event sink *)
  mutable next_span : int;  (* wait-span id allocator (causal layer) *)
  mutable finished_count : int;
  alive : bool array;  (* false once the chaos schedule killed the node *)
  deposed : bool array;
      (* membership view of the failure detector: true while a suspicion
         quorum has voted the node out. Distinct from [alive] (physical
         crash): a falsely-suspected node is deposed but alive, keeps
         executing, and rejoins when the suspicion is refuted. *)
  suspects : bool array array;
      (* suspects.(by).(peer): [by] currently suspects [peer] (heartbeat
         detector only; all false under the oracle) *)
  page_epoch : (int, int) Hashtbl.t;
      (* page -> authority epoch, bumped at every promotion; a serve from
         an older epoch is fenced off (no split-brain double-home) *)
  repl_tbl : (int, int array) Hashtbl.t;
      (* page -> replica ranks (the original home, then the next node ids
         mod nprocs); populated by malloc only when [replicas] > 1 *)
  mutable failover_stalls : float list;
      (* per re-routed fetch: resume time minus failover time *)
  failover_at : (int, float) Hashtbl.t;  (* page -> last failover time *)
  recovering : (int, recovery) Hashtbl.t;
      (* page -> in-progress failover recovery at the promoted primary *)
  chaos : Machine.Chaos.t option;  (* fault plan; None = fault-free run *)
  mutable transport : Machine.Transport.t option;
      (* reliable transport over the chaotic network; installed iff [chaos]
         is, so the fault-free send path is untouched *)
  mutable metrics : metrics_set option;
      (* sampled flight recorder; installed iff [metrics_interval] > 0, so
         default runs carry no metrics code on any path *)
  mutable serving : serving option;
      (* per-op latency accumulator; installed lazily at the first
         [record_op], so non-serving apps pay nothing *)
}

(* The effects through which application processes enter the runtime. Only
   operations that may block are effects; everything else is a direct call. *)
type _ Effect.t +=
  | Lock_eff : int -> unit Effect.t
  | Barrier_eff : unit Effect.t
  | Read_fault_eff : int -> unit Effect.t
  | Write_fault_eff : int -> unit Effect.t

exception Deadlock of string

let header_bytes = 32

(* ------------------------------------------------------------------ *)
(* Structured observability (declared before [create] so the transport
   notify callback can emit events)                                    *)

(* Whether anyone is listening; hot paths use this to skip constructing
   event payloads when tracing is off. *)
let observing t = t.sink <> None || t.trace <> None

(* Emit one typed trace event attributed to [node] at time [time]. The
   typed sink stores it as-is; the legacy string callback receives the
   rendered legacy line (kinds with no legacy rendering are skipped), so
   the old [?trace] interface is a thin adapter over the typed stream. *)
let event_at t ~node ~time kind =
  (match t.sink with
  | Some sink -> Obs.Trace.emit sink { Obs.Trace.time; node; kind }
  | None -> ());
  match t.trace with
  | Some emit -> (
      match Obs.Trace.render kind with
      | Some line -> emit time (Printf.sprintf "[node %d] %s" node line)
      | None -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Causal layer: wait spans. Gated on [trace_spans] *and* a typed sink so
   default JSONL traces keep the pre-span event set byte-for-byte. *)

let spans_on t = t.cfg.Config.trace_spans && t.sink <> None

let bucket_of_kind = function
  | Wait_data -> Obs.Trace.Wb_data
  | Wait_lock -> Obs.Trace.Wb_lock
  | Wait_barrier -> Obs.Trace.Wb_barrier
  | Wait_gc -> Obs.Trace.Wb_gc

(* Open a span on [node] at [time]; returns its id (-1 when spans are off,
   which every later emission treats as "nothing to close"). *)
let span_begin t ~node ~time ~bucket ~resource =
  if not (spans_on t) then -1
  else begin
    let span = t.next_span in
    t.next_span <- span + 1;
    event_at t ~node ~time (Obs.Trace.Wait_begin { span; bucket; resource });
    span
  end

let span_end t ~node ~time ~span ~bucket ~resource =
  if span >= 0 then event_at t ~node ~time (Obs.Trace.Wait_end { span; bucket; resource })

(* ------------------------------------------------------------------ *)
(* Transport accounting: everything the reliable transport does (drops,
   retransmissions, acks, receiver dedup) lands here, where it is charged
   to per-node counters and traced. Retransmissions and acks count as
   messages with protocol bytes — reliability is protocol overhead. *)

let blocked_count t =
  Array.fold_left (fun acc n -> if n.finished then acc else acc + 1) 0 t.nodes

let transport_notify t ~time (n : Machine.Transport.notice) =
  match n with
  | Machine.Transport.Dropped { src; dst; seq; bytes; ack } ->
      (* Attributed to the copy's sender: the payload source, or the
         payload destination for a lost acknowledgement. *)
      let sender = if ack then dst else src in
      let peer = if ack then src else dst in
      let c = t.nodes.(sender).stats.Stats.c in
      c.Stats.msg_drops <- c.Stats.msg_drops + 1;
      (match t.metrics with
      | Some ms -> Obs.Metrics.add ms.ms_drops ~node:sender ~time 1.
      | None -> ());
      if observing t then
        event_at t ~node:sender ~time (Obs.Trace.Msg_drop { dst = peer; seq; bytes; ack })
  | Machine.Transport.Duplicated _ ->
      (* The observable effect is the receiver-side [Dup_dropped]. *)
      ()
  | Machine.Transport.Retransmit { src; dst; seq; retries; bytes; rto } ->
      let c = t.nodes.(src).stats.Stats.c in
      c.Stats.msg_retransmits <- c.Stats.msg_retransmits + 1;
      c.Stats.messages <- c.Stats.messages + 1;
      c.Stats.protocol_bytes <-
        c.Stats.protocol_bytes + bytes + Machine.Transport.seq_bytes;
      (match t.metrics with
      | Some ms ->
          Obs.Metrics.add ms.ms_retransmits ~node:src ~time 1.;
          Obs.Metrics.observe ms.ms_backoff_us rto
      | None -> ());
      if observing t then
        event_at t ~node:src ~time (Obs.Trace.Msg_retransmit { dst; seq; retries })
  | Machine.Transport.Dup_dropped { src; dst; seq } ->
      let c = t.nodes.(dst).stats.Stats.c in
      c.Stats.msg_dup_dropped <- c.Stats.msg_dup_dropped + 1;
      if observing t then
        event_at t ~node:dst ~time (Obs.Trace.Msg_duplicate_dropped { src; seq })
  | Machine.Transport.Ack_sent { src; dst; upto } ->
      (* The ack travels dst -> src; the receiver pays for it. *)
      let c = t.nodes.(dst).stats.Stats.c in
      c.Stats.msg_acks <- c.Stats.msg_acks + 1;
      c.Stats.messages <- c.Stats.messages + 1;
      c.Stats.protocol_bytes <- c.Stats.protocol_bytes + Machine.Transport.ack_bytes;
      if observing t then event_at t ~node:dst ~time (Obs.Trace.Msg_ack { dst = src; upto })
  | Machine.Transport.Gave_up { src; dst = _; seq = _; retries = _ } ->
      (* Retry cap breached: the payload will never arrive. Count it,
         surface it in the trace immediately; the runtime watchdog turns
         the resulting quiescence into a Deadlock with the full dump. *)
      let c = t.nodes.(src).stats.Stats.c in
      c.Stats.msg_gave_up <- c.Stats.msg_gave_up + 1;
      let inflight =
        match t.transport with
        | Some tr -> Machine.Transport.inflight_count tr
        | None -> 0
      in
      if observing t then
        event_at t ~node:src ~time
          (Obs.Trace.Watchdog_stall { blocked = blocked_count t; inflight })
  | Machine.Transport.Peer_dead { src; dst; seq; bytes } ->
      (* Attribute the abandoned packet to the live endpoint (the one that
         observed the crash); if both endpoints died, to the source. *)
      let node = if t.alive.(src) || not (t.alive.(dst)) then src else dst in
      let peer = if node = src then dst else src in
      let c = t.nodes.(node).stats.Stats.c in
      c.Stats.msg_peer_dead <- c.Stats.msg_peer_dead + 1;
      if observing t then
        event_at t ~node ~time (Obs.Trace.Msg_peer_dead { peer; seq; bytes })

let create (cfg : Config.t) =
  let nprocs = cfg.Config.nprocs in
  let layout = Mem.Layout.create ~page_words:cfg.Config.page_words in
  let chaos =
    (* The heartbeat detector needs the chaos plan (and the transport it
       parameterizes) even when the plan itself is inert: its pings ride
       the per-link verdict streams and the transport's timing model. *)
    if Config.transport_enabled cfg then
      Some (Machine.Chaos.create cfg.Config.chaos ~nprocs)
    else None
  in
  let node id =
    {
      id;
      slowdown =
        (match chaos with Some ch -> Machine.Chaos.slowdown ch ~node:id | None -> 1.0);
      mach = Machine.Node.create id;
      pt = Mem.Page_table.create layout;
      pinfo = [||];
      vt = Proto.Vclock.create ~nprocs;
      dirty = [];
      known = Array.make nprocs [];
      own_diffs = Hashtbl.create 64;
      homes = Hashtbl.create 64;
      locks = Hashtbl.create 16;
      stats = Stats.create ();
      mgr_vt = Proto.Vclock.create ~nprocs;
      reported = -1;
      cont = None;
      blocked = None;
      block_clock = 0.;
      wait_services = 0.;
      wait_span = -1;
      wait_resource = 0;
      rc_acks = 0;
      rc_drain = [];
      in_gc = false;
      repl = Hashtbl.create 16;
      fault_page = -1;
      fault_retry = None;
      fetch_gen = 0;
      stall_mark = -1.;
      finished = false;
      start_clock = 0.;
      start_breakdown = Stats.breakdown_zero ();
      start_counters = Stats.counters_zero ();
    }
  in
  let t =
    {
      cfg;
      layout;
      (* Steady state pends a few events per node (timers, transfers,
         barrier wakeups), so seed the event set accordingly. *)
      engine = Sim.Engine.create ~capacity:(4 * cfg.Config.nprocs) ();
      net = Machine.Network.create ~costs:cfg.Config.costs ~nprocs;
      nodes = Array.init nprocs node;
    next_addr = 0;
    home_tbl = Hashtbl.create 256;
    alloc_tbl = Hashtbl.create 256;
    scratch_tbl = Hashtbl.create 16;
    keeper_tbl = Hashtbl.create 256;
    copyset_tbl = Hashtbl.create 256;
    roots = Hashtbl.create 16;
    lock_last = Hashtbl.create 16;
    channels = Array.make (nprocs * nprocs) 0.;
    barrier =
      {
        bar_arrived = 0;
        bar_queue = [];
        bar_mem_high = false;
        bar_epoch = 0;
        bar_released = 0;
        bar_target = nprocs;
      };
      migration_prev = Hashtbl.create 64;
      gc_nodes_done = 0;
      gc_on_done = Hashtbl.create 8;
      trace = None;
      sink = None;
      next_span = 0;
      finished_count = 0;
      alive = Array.make nprocs true;
      deposed = Array.make nprocs false;
      suspects = Array.make_matrix nprocs nprocs false;
      page_epoch = Hashtbl.create 16;
      repl_tbl = Hashtbl.create 16;
      failover_stalls = [];
      failover_at = Hashtbl.create 8;
      recovering = Hashtbl.create 8;
      chaos;
      transport = None;
      metrics = None;
      serving = None;
    }
  in
  (match chaos with
  | Some ch ->
      t.transport <-
        Some
          (Machine.Transport.create ~engine:t.engine ~net:t.net ~chaos:ch
             ~notify:(fun ~time n -> transport_notify t ~time n)
             ())
  | None -> ());
  t

let nprocs t = t.cfg.Config.nprocs

let costs t = t.cfg.Config.costs

let home_based t = Config.home_based t.cfg.Config.protocol

let overlapped t = Config.overlapped t.cfg.Config.protocol

let aurc t = t.cfg.Config.protocol = Config.Aurc

let eager_rc t = t.cfg.Config.protocol = Config.Rc

(* Homeless protocols with lazy diff retention (the ones that need GC). *)
let homeless_lazy t =
  match t.cfg.Config.protocol with
  | Config.Lrc | Config.Olrc -> true
  | Config.Hlrc | Config.Ohlrc | Config.Aurc | Config.Rc -> false

let now t = Sim.Engine.now t.engine

(* ------------------------------------------------------------------ *)
(* Metrics flight recorder ([--metrics-interval]; see Obs.Metrics)     *)

(* Build and install the instrument set into [reg]. Registration order is
   the serialization order of the timeline block and the CSV, so keep it
   fixed. *)
let install_metrics t reg =
  let open Obs.Metrics in
  (* Sequential lets, not a record literal: record fields evaluate in an
     unspecified order, and registration order is the serialization
     order. *)
  let ms_messages = counter reg "messages" in
  let ms_update_bytes = counter reg "update_bytes" in
  let ms_protocol_bytes = counter reg "protocol_bytes" in
  let ms_faults = counter reg "faults" in
  let ms_retransmits = counter reg "retransmits" in
  let ms_drops = counter reg "drops" in
  let ms_repl_bytes = counter reg "repl_bytes" in
  let ms_inflight = gauge ~per_node:false reg "inflight_packets" in
  let ms_pending = gauge ~per_node:false reg "engine_events" in
  let ms_proto_mem = gauge reg "proto_mem_bytes" in
  let ms_fetch_us = histogram reg "page_fetch_us" in
  let ms_lock_us = histogram reg "lock_acquire_us" in
  let ms_barrier_us = histogram reg "barrier_wait_us" in
  let ms_backoff_us = histogram reg "retransmit_backoff_us" in
  let ms_stall_us = histogram reg "recovery_stall_us" in
  let ms_op_us = histogram reg "op_latency_us" in
  let ms_fault_heat = heatmap reg "page_faults" in
  let ms_diff_heat = heatmap reg "page_diffs" in
  let ms_home_heat = heatmap reg "page_home" in
  t.metrics <-
    Some
      {
        ms_reg = reg;
        ms_messages;
        ms_update_bytes;
        ms_protocol_bytes;
        ms_faults;
        ms_retransmits;
        ms_drops;
        ms_repl_bytes;
        ms_inflight;
        ms_pending;
        ms_proto_mem;
        ms_fetch_us;
        ms_lock_us;
        ms_barrier_us;
        ms_backoff_us;
        ms_stall_us;
        ms_op_us;
        ms_fault_heat;
        ms_diff_heat;
        ms_home_heat;
      }

let metrics_registry t = Option.map (fun ms -> ms.ms_reg) t.metrics

(* One cadence tick of the gauges: transport in-flight packets, engine
   event-set size, per-node live protocol memory. Driven by the runtime's
   sampler (and once at the end of the run). *)
let sample_metrics t ~time =
  match t.metrics with
  | None -> ()
  | Some ms ->
      let inflight =
        match t.transport with
        | Some tr -> Machine.Transport.inflight_count tr
        | None -> 0
      in
      Obs.Metrics.sample ms.ms_inflight ~node:0 ~time (float_of_int inflight);
      Obs.Metrics.sample ms.ms_pending ~node:0 ~time
        (float_of_int (Sim.Engine.pending t.engine));
      Array.iter
        (fun node ->
          Obs.Metrics.sample ms.ms_proto_mem ~node:node.id ~time
            (float_of_int (Mem.Accounting.current node.stats.Stats.proto_mem)))
        t.nodes

(* Page-fault hook (entry of Faults.read_fault/write_fault): per-node fault
   rate plus the per-page heatmap. *)
let metrics_fault t node page =
  match t.metrics with
  | None -> ()
  | Some ms ->
      Obs.Metrics.add ms.ms_faults ~node:node.id
        ~time:node.mach.Machine.Node.ck.Machine.Node.clock 1.;
      Obs.Metrics.hit ms.ms_fault_heat ~page 1.

(* Diff-creation hook (Intervals): the other half of the heatmap — a page
   hot in faults *and* diffs under a fine interleaving is false sharing. *)
let metrics_diff t page =
  match t.metrics with
  | None -> ()
  | Some ms -> Obs.Metrics.hit ms.ms_diff_heat ~page 1.

(* ------------------------------------------------------------------ *)
(* Structured observability ([observing]/[event_at] live above [create]) *)

(* Emission at the node's current virtual clock (the common case). *)
let event t node kind =
  if observing t then event_at t ~node:node.id ~time:node.mach.Machine.Node.ck.Machine.Node.clock kind

(* Observer closure for diff-level emission ([Mem.Diff.apply ?obs]):
   [None] when tracing is off so the hot path stays allocation-free. *)
let diff_obs t node =
  if observing t then Some (fun kind -> event t node kind) else None

(* ------------------------------------------------------------------ *)
(* Page metadata                                                      *)

let page_info t node page =
  let capacity = Array.length node.pinfo in
  if page >= capacity then begin
    let capacity' = max 64 (max (2 * capacity) (page + 1)) in
    let pinfo' = Array.make capacity' None in
    Array.blit node.pinfo 0 pinfo' 0 capacity;
    node.pinfo <- pinfo'
  end;
  match node.pinfo.(page) with
  | Some pi -> pi
  | None ->
      let np = nprocs t in
      let pi =
        {
          pi_page = page;
          missing = [];
          applied = Proto.Vclock.create ~nprocs:np;
          needed = Proto.Vclock.create ~nprocs:np;
          needed_counted = false;
          rc_backlog = [];
        }
      in
      node.pinfo.(page) <- Some pi;
      pi

let home_of t page =
  match Hashtbl.find_opt t.home_tbl page with
  | Some h -> h
  | None -> page mod nprocs t (* untouched fallback; malloc always registers *)

let allocator_of t page =
  match Hashtbl.find_opt t.alloc_tbl page with Some a -> a | None -> 0

(* Node holding a full copy of [page] for homeless full-page fetches: the
   last GC's keeper, or the allocator before any collection. *)
let keeper_of t page =
  match Hashtbl.find_opt t.keeper_tbl page with
  | Some k -> k
  | None -> allocator_of t page

let home_page t node page =
  match Hashtbl.find_opt node.homes page with
  | Some hp -> hp
  | None ->
      let hp =
        { hp_page = page; hp_flush = Proto.Vclock.create ~nprocs:(nprocs t); hp_pending = [] }
      in
      Hashtbl.replace node.homes page hp;
      (* Home directory entry: one flush vector per owned page. *)
      Mem.Accounting.add node.stats.Stats.proto_mem (Proto.Vclock.size_bytes hp.hp_flush);
      hp

(* ------------------------------------------------------------------ *)
(* Time charging                                                      *)

(* All compute-processor work stretches by the node's chaos straggler
   multiplier ([1.0], hence bit-exact identity, on fault-free runs). The
   communication co-processor is not slowed: it is dedicated hardware. *)

(* The three charge functions bump the clock directly rather than through
   [Machine.Node.advance]: a cross-module call would box [dt], and
   [charge_compute] runs once per simulated memory access. All stores here
   are to all-float records, so a charge allocates nothing. *)
let charge_compute node dt =
  let dt = dt *. node.slowdown in
  let ck = node.mach.Machine.Node.ck in
  ck.Machine.Node.clock <- ck.Machine.Node.clock +. dt;
  let b = node.stats.Stats.b in
  b.Stats.compute <- b.Stats.compute +. dt

(* Protocol/GC work can also run while the node's process is blocked (e.g.
   write-notice handling on a lock grant, interrupt service); crediting it to
   [wait_services] keeps the wait buckets from double-counting it. *)
let charge_protocol node dt =
  let dt = dt *. node.slowdown in
  let ck = node.mach.Machine.Node.ck in
  ck.Machine.Node.clock <- ck.Machine.Node.clock +. dt;
  let b = node.stats.Stats.b in
  if node.in_gc then b.Stats.gc <- b.Stats.gc +. dt
  else b.Stats.protocol <- b.Stats.protocol +. dt;
  if node.blocked <> None then node.wait_services <- node.wait_services +. dt

let charge_gc node dt =
  let dt = dt *. node.slowdown in
  let ck = node.mach.Machine.Node.ck in
  ck.Machine.Node.clock <- ck.Machine.Node.clock +. dt;
  node.stats.Stats.b.Stats.gc <- node.stats.Stats.b.Stats.gc +. dt;
  if node.blocked <> None then node.wait_services <- node.wait_services +. dt

(* Open-loop idle: wall-clock waiting for the next scheduled arrival, not
   processor work, so the straggler multiplier does not apply — a slow CPU
   doesn't make the wait for the wall clock longer. Billed to the compute
   bucket (the node is "thinking", not blocked on the protocol). *)
let charge_idle node dt =
  let ck = node.mach.Machine.Node.ck in
  ck.Machine.Node.clock <- ck.Machine.Node.clock +. dt;
  let b = node.stats.Stats.b in
  b.Stats.compute <- b.Stats.compute +. dt

(* ------------------------------------------------------------------ *)
(* Serving-workload operation log                                     *)

let record_op t node kind ~latency =
  let s =
    match t.serving with
    | Some s -> s
    | None ->
        let s =
          {
            sv_lats = Array.make (Array.length t.nodes) [];
            sv_gets = 0;
            sv_puts = 0;
            sv_txns = 0;
          }
        in
        t.serving <- Some s;
        s
  in
  s.sv_lats.(node.id) <- latency :: s.sv_lats.(node.id);
  (match kind with
  | Op_get -> s.sv_gets <- s.sv_gets + 1
  | Op_put -> s.sv_puts <- s.sv_puts + 1
  | Op_txn -> s.sv_txns <- s.sv_txns + 1);
  match t.metrics with
  | Some ms -> Obs.Metrics.observe ms.ms_op_us latency
  | None -> ()

let serving_log t = t.serving

(* ------------------------------------------------------------------ *)
(* Messages                                                           *)

(* [send t ~src ~dst ~at ~bytes ~update handler] delivers a message sent at
   time [at]; [handler] runs at the arrival time. [update] is the portion of
   [bytes] classified as update traffic (diff/page payload). Channels
   between a (src, dst) pair are FIFO, as on a wormhole mesh: a later send
   never overtakes an earlier one, which the home-based protocols rely on
   (diff flush followed by lock grant to the home). *)
let send t ~src ~dst ~at ~bytes ~update handler =
  if not (Array.unsafe_get t.alive src.id) then
    (* Crash-stopped sender: its links are silenced, so the message never
       leaves the node. Local execution may continue, invisibly. *)
    ()
  else begin
  let c = src.stats.Stats.c in
  if src.id <> dst then begin
    c.Stats.messages <- c.Stats.messages + 1;
    c.Stats.update_bytes <- c.Stats.update_bytes + update;
    c.Stats.protocol_bytes <- c.Stats.protocol_bytes + (bytes - update);
    (match t.metrics with
    | Some ms ->
        Obs.Metrics.add ms.ms_messages ~node:src.id ~time:at 1.;
        Obs.Metrics.add ms.ms_update_bytes ~node:src.id ~time:at (float_of_int update);
        Obs.Metrics.add ms.ms_protocol_bytes ~node:src.id ~time:at
          (float_of_int (bytes - update))
    | None -> ());
    if observing t then
      event_at t ~node:src.id ~time:at (Obs.Trace.Msg_send { dst; bytes; update })
  end;
  match t.transport with
  | Some tr when src.id <> dst ->
      (* Chaos run: hand the payload to the reliable transport, which owns
         sequencing, dedup, the per-link FIFO clamp and retransmission. The
         sequence header is protocol overhead on the wire. *)
      c.Stats.protocol_bytes <- c.Stats.protocol_bytes + Machine.Transport.seq_bytes;
      Machine.Transport.send tr ~src:src.id ~dst
        ~at:(Float.max at (now t))
        ~bytes
        (fun arrival ->
          if Array.unsafe_get t.alive dst then begin
            if observing t then
              event_at t ~node:dst ~time:arrival
                (Obs.Trace.Msg_recv { src = src.id; bytes; update });
            handler arrival
          end)
  | _ ->
      (* Fault-free (or loopback) fast path: exactly the pre-chaos code. *)
      let transfer = Machine.Network.transfer_time t.net ~src:src.id ~dst ~bytes in
      let arrival = at +. transfer in
      let arrival =
        if src.id = dst then arrival
        else begin
          let key = (src.id * Array.length t.nodes) + dst in
          let last = Array.unsafe_get t.channels key in
          let arrival = if arrival <= last then last +. 1e-6 else arrival in
          Array.unsafe_set t.channels key arrival;
          arrival
        end
      in
      let arrival = Float.max arrival (now t) in
      Sim.Engine.schedule t.engine ~at:arrival (fun () ->
          if not (Array.unsafe_get t.alive dst) then begin
            (* Receiver crash-stopped while the message was on the wire:
               charge the loss to the sender and drop it on the floor. *)
            c.Stats.msg_peer_dead <- c.Stats.msg_peer_dead + 1;
            if observing t then
              event_at t ~node:src.id ~time:arrival
                (Obs.Trace.Msg_peer_dead { peer = dst; seq = -1; bytes })
          end
          else begin
            if src.id <> dst && observing t then
              event_at t ~node:dst ~time:arrival
                (Obs.Trace.Msg_recv { src = src.id; bytes; update });
            handler arrival
          end)
  end

(* ------------------------------------------------------------------ *)
(* Request service                                                    *)

(* Service an incoming request on [node]'s compute processor: interrupt plus
   [cost], charged to the node's protocol bucket (the paper's "remote request
   service" overhead). Returns the completion time for the reply. *)
let serve_compute t node ~arrival ~cost =
  let c = costs t in
  let interrupt = c.Machine.Costs.receive_interrupt *. node.slowdown in
  let cost = cost *. node.slowdown in
  let total = interrupt +. cost in
  node.stats.Stats.b.Stats.protocol <- node.stats.Stats.b.Stats.protocol +. total;
  if node.blocked <> None then node.wait_services <- node.wait_services +. total;
  Machine.Node.interrupt_service node.mach ~interrupt ~arrival ~cost

(* Service on the communication co-processor: FIFO on its own timeline, no
   compute-processor impact. *)
let serve_coproc t node ~arrival ~cost =
  let c = costs t in
  Machine.Node.coproc_service node.mach ~dispatch:c.Machine.Costs.coproc_dispatch ~arrival ~cost

(* Protocol-dependent placement: overlapped protocols serve diff/page work on
   the co-processor, non-overlapped ones on the compute processor. *)
let serve t node ~arrival ~cost =
  if overlapped t then serve_coproc t node ~arrival ~cost
  else serve_compute t node ~arrival ~cost

(* Charge protocol work initiated by the node itself (not a remote request):
   on the compute processor inline, or posted to the co-processor when the
   protocol is overlapped. Returns the completion time of the work. *)
let local_protocol_work t node ~cost =
  if overlapped t then begin
    (* The compute processor only pays the post-page request cost. *)
    let c = costs t in
    charge_protocol node c.Machine.Costs.coproc_dispatch;
    Machine.Node.coproc_service node.mach ~dispatch:c.Machine.Costs.coproc_dispatch
      ~arrival:node.mach.Machine.Node.ck.Machine.Node.clock ~cost
  end
  else begin
    charge_protocol node cost;
    node.mach.Machine.Node.ck.Machine.Node.clock
  end

(* ------------------------------------------------------------------ *)
(* Blocking and resuming application processes                         *)

let block t node ?(resource = 0) kind k =
  assert (node.blocked = None);
  assert (node.cont = None);
  node.cont <- Some k;
  node.blocked <- Some kind;
  node.block_clock <- node.mach.Machine.Node.ck.Machine.Node.clock;
  node.wait_services <- 0.;
  node.wait_resource <- resource;
  node.wait_span <-
    span_begin t ~node:node.id ~time:node.block_clock ~bucket:(bucket_of_kind kind) ~resource

(* Resume the node's blocked process at simulated time [at]: the wait (minus
   any request service charged to the node during the wait) is accounted to
   the bucket matching the block kind, and the continuation is re-entered
   through the engine so handler stacks unwind. *)
let resume t node ~at =
  if not (Array.unsafe_get t.alive node.id) then
    (* A crash-stopped node never runs again; late wakeups (e.g. a barrier
       release already in flight when the kill fired) are dropped. *)
    ()
  else
  match (node.cont, node.blocked) with
  | Some k, Some kind ->
      node.cont <- None;
      node.blocked <- None;
      Machine.Node.sync_to node.mach at;
      let wait =
        Float.max 0. (node.mach.Machine.Node.ck.Machine.Node.clock -. node.block_clock -. node.wait_services)
      in
      let b = node.stats.Stats.b in
      (match kind with
      | Wait_data -> b.Stats.data <- b.Stats.data +. wait
      | Wait_lock -> b.Stats.lock <- b.Stats.lock +. wait
      | Wait_barrier -> b.Stats.barrier <- b.Stats.barrier +. wait
      | Wait_gc -> b.Stats.gc <- b.Stats.gc +. wait);
      (match t.metrics with
      | Some ms -> (
          match kind with
          | Wait_data -> Obs.Metrics.observe ms.ms_fetch_us wait
          | Wait_lock -> Obs.Metrics.observe ms.ms_lock_us wait
          | Wait_barrier -> Obs.Metrics.observe ms.ms_barrier_us wait
          | Wait_gc -> ())
      | None -> ());
      span_end t ~node:node.id ~time:node.mach.Machine.Node.ck.Machine.Node.clock ~span:node.wait_span
        ~bucket:(bucket_of_kind kind) ~resource:node.wait_resource;
      node.wait_span <- -1;
      if node.stall_mark >= 0. then begin
        (* This wait crossed a failover: the time since the failover fired
           is the recovery stall this fetch actually suffered. *)
        let stall =
          Float.max 0. (node.mach.Machine.Node.ck.Machine.Node.clock -. node.stall_mark)
        in
        t.failover_stalls <- stall :: t.failover_stalls;
        (match t.metrics with
        | Some ms -> Obs.Metrics.observe ms.ms_stall_us stall
        | None -> ());
        node.stall_mark <- -1.
      end;
      let at' = Float.max (now t) node.mach.Machine.Node.ck.Machine.Node.clock in
      Sim.Engine.schedule t.engine ~at:at' (fun () -> Effect.Deep.continue k ())
  | _ -> invalid_arg "System.resume: node is not blocked"

(* Close the current wait bucket and continue blocking under a new kind
   (barrier wait turning into GC wait). *)
let rebucket_block t node ?(resource = 0) kind =
  match node.blocked with
  | None -> invalid_arg "System.rebucket_block: node is not blocked"
  | Some old_kind ->
      let wait =
        Float.max 0. (node.mach.Machine.Node.ck.Machine.Node.clock -. node.block_clock -. node.wait_services)
      in
      let b = node.stats.Stats.b in
      (match old_kind with
      | Wait_data -> b.Stats.data <- b.Stats.data +. wait
      | Wait_lock -> b.Stats.lock <- b.Stats.lock +. wait
      | Wait_barrier -> b.Stats.barrier <- b.Stats.barrier +. wait
      | Wait_gc -> b.Stats.gc <- b.Stats.gc +. wait);
      span_end t ~node:node.id ~time:node.mach.Machine.Node.ck.Machine.Node.clock ~span:node.wait_span
        ~bucket:(bucket_of_kind old_kind) ~resource:node.wait_resource;
      node.blocked <- Some kind;
      node.block_clock <- node.mach.Machine.Node.ck.Machine.Node.clock;
      node.wait_services <- 0.;
      node.wait_resource <- resource;
      node.wait_span <-
        span_begin t ~node:node.id ~time:node.block_clock ~bucket:(bucket_of_kind kind)
          ~resource

(* ------------------------------------------------------------------ *)
(* Memory accounting helpers                                          *)

let missing_entry_bytes = 16

let account_interval node (iv : Proto.Interval.t) =
  Mem.Accounting.add node.stats.Stats.proto_mem (Proto.Interval.size_bytes iv)

let release_interval node (iv : Proto.Interval.t) =
  Mem.Accounting.sub node.stats.Stats.proto_mem (Proto.Interval.size_bytes iv)

(* ------------------------------------------------------------------ *)
(* Allocation                                                         *)

(* Allocate [words] of shared memory, page-aligned, with an optional
   per-page home map. Registers page allocator (copyset seed for homeless
   protocols) and home (home-based protocols). Returns the base address. *)
let malloc t node ?name ?home_map ?(scratch = false) words =
  if words <= 0 then invalid_arg "malloc: words must be positive";
  let base_page = Mem.Layout.pages_for t.layout t.next_addr in
  let base = Mem.Layout.base_of_page t.layout base_page in
  let npages = Mem.Layout.pages_for t.layout words in
  for i = 0 to npages - 1 do
    let page = base_page + i in
    Hashtbl.replace t.alloc_tbl page node.id;
    if scratch then Hashtbl.replace t.scratch_tbl page ();
    let home =
      match home_map with
      | Some f -> f i
      | None -> (
          match t.cfg.Config.home_policy with
          | Config.Round_robin -> page mod nprocs t
          | Config.Block -> min (nprocs t - 1) (i * nprocs t / npages)
          | Config.Allocator -> node.id)
    in
    Hashtbl.replace t.home_tbl page (home mod nprocs t);
    (match t.metrics with
    | Some ms ->
        Obs.Metrics.set ms.ms_home_heat ~page (float_of_int (home mod nprocs t))
    | None -> ());
    if t.cfg.Config.replicas > 1 then begin
      (* Rank-ordered replica set: the home, then the next node ids. The
         failure detector promotes the first live rank on a crash. *)
      let h = home mod nprocs t and np = nprocs t in
      Hashtbl.replace t.repl_tbl page
        (Array.init t.cfg.Config.replicas (fun j -> (h + j) mod np))
    end
  done;
  t.next_addr <- base + words;
  (match name with Some n -> Hashtbl.replace t.roots n base | None -> ());
  base

let is_scratch t page = Hashtbl.mem t.scratch_tbl page

let root t name =
  match Hashtbl.find_opt t.roots name with
  | Some addr -> addr
  | None -> invalid_arg (Printf.sprintf "System.root: no allocation named %S" name)

let shared_bytes t = t.next_addr * Mem.Layout.word_bytes

(* ------------------------------------------------------------------ *)
(* Home replication and node liveness ([--replicas K], chaos kills)   *)

let replicated t = t.cfg.Config.replicas > 1

let is_alive t node = Array.unsafe_get t.alive node

(* Voted out by a suspicion quorum (heartbeat detector). Orthogonal to
   [is_alive]: a deposed node may be perfectly alive (false suspicion) and
   will rejoin once refuted. *)
let is_deposed t node = Array.unsafe_get t.deposed node

(* In the cluster's current membership view: physically up and not voted
   out. Promotion targets and quorum electorates use this, never bare
   [is_alive]. *)
let is_member t node = is_alive t node && not (is_deposed t node)

(* Authority epoch of [page]: bumped at every promotion. A node serving
   the page compares the epoch it held authority under with the current
   one; a mismatch means it was deposed in between and must fence. *)
let epoch_of t page =
  match Hashtbl.find_opt t.page_epoch page with Some e -> e | None -> 0

let bump_epoch t page = Hashtbl.replace t.page_epoch page (epoch_of t page + 1)

let replica_ranks t page = Hashtbl.find_opt t.repl_tbl page

(* First member of [page]'s replica set, if any: the promotion target of a
   home-based failover, and the node homeless protocols route around a
   dead writer/keeper through. Skips deposed ranks too — promoting a node
   the quorum just voted out (it may be alive behind a partition) would
   manufacture the very split-brain the epochs exist to prevent. *)
let live_replica t page =
  match replica_ranks t page with
  | None -> None
  | Some ranks ->
      let n = Array.length ranks in
      let rec go i =
        if i >= n then None
        else if is_member t ranks.(i) then Some ranks.(i)
        else go (i + 1)
      in
      go 0

(* Lazily created backup-side state for one replicated page at [node]. *)
let replica_page t node page =
  match Hashtbl.find_opt node.repl page with
  | Some rp -> rp
  | None ->
      let rp =
        {
          rp_page = page;
          rp_data = None;
          rp_flush = Proto.Vclock.create ~nprocs:(nprocs t);
          rp_archive = [];
        }
      in
      Hashtbl.replace node.repl page rp;
      Mem.Accounting.add node.stats.Stats.proto_mem (Proto.Vclock.size_bytes rp.rp_flush);
      rp

(* Crash-stop [node] at [time]: all its links fall silent — outbound sends
   are discarded at the source, inbound deliveries are dropped on arrival —
   and, on chaos runs, the reliable transport cancels every packet in
   flight on its links so no retransmission storm follows. Local (simulated)
   execution of the victim may continue; it is invisible to the cluster. *)
let kill_node t ~node ~time =
  if Array.unsafe_get t.alive node then begin
    t.alive.(node) <- false;
    event_at t ~node ~time (Obs.Trace.Node_kill { node });
    match t.transport with
    | Some tr -> Machine.Transport.kill_peer tr ~peer:node ~time
    | None -> ()
  end

let repl_diff_apply_cost t diff =
  let c = costs t in
  c.Machine.Costs.diff_apply_base
  +. (float_of_int (Mem.Diff.word_count diff) *. c.Machine.Costs.diff_apply_per_word)

(* Backup side of a primary-backup update: apply the streamed diff into the
   warm copy (materialized as a zero page on first touch — every observable
   byte of a shared page originates from a protocol write, so zeros plus
   the applied diff stream equals the master) and advance the applied cut. *)
let deliver_repl_update t backup ~arrival ~page ~writer ~index diff =
  ignore (serve t backup ~arrival ~cost:(repl_diff_apply_cost t diff));
  let rp = replica_page t backup page in
  let data =
    match rp.rp_data with
    | Some d -> d
    | None ->
        let d = Mem.Words.make (Mem.Layout.page_words t.layout) in
        rp.rp_data <- Some d;
        Mem.Accounting.add backup.stats.Stats.proto_mem
          (Mem.Layout.page_words t.layout * Mem.Layout.word_bytes);
        d
  in
  Mem.Diff.apply diff data;
  if index > Proto.Vclock.get rp.rp_flush writer then
    Proto.Vclock.set rp.rp_flush writer index

(* Keep [page]'s backups consistent after the primary applied a diff.
   [payload] forces a full-diff push regardless of scheme: the primary's
   own writes have no surviving writer to re-flush them after a crash, so
   both schemes stream those. Otherwise the scheme decides: [Backup]
   streams the diff, [Inval] sends a header-only invalidation record
   (recovery pulls the retained diffs back from the live writers).

   Under [Backup] the streamed diff is applied into the warm copy: the
   primary->backup channel is FIFO and the primary's own apply order is
   causally gated, so arrival order at the backup is sound. Under [Inval]
   a payload push (the primary's own diff, [vt] = its timestamp) is
   archived instead — the warm copy would otherwise hold values causally
   later than the diffs recovery pulls back, and applying those pulled
   diffs over it would resurrect stale words. Recovery rebuilds from zeros
   plus the causally-sorted union of archive and pulled diffs.

   All traffic is protocol overhead, charged to the timing model and
   counted in the replication counters. *)
let propagate_update t prim ~page ~writer ~index ~diff ~vt ~at ~payload =
  match replica_ranks t page with
  | None -> ()
  | Some ranks ->
      let scheme = t.cfg.Config.repl_scheme in
      let full = payload || scheme = Config.Backup in
      let c = prim.stats.Stats.c in
      Array.iter
        (fun r ->
          if r <> prim.id && Array.unsafe_get t.alive r then
            if full && scheme = Config.Backup then begin
              let bytes = header_bytes + Mem.Diff.size_bytes diff in
              c.Stats.repl_updates <- c.Stats.repl_updates + 1;
              c.Stats.repl_bytes <- c.Stats.repl_bytes + bytes;
              if observing t then
                event_at t ~node:prim.id ~time:at
                  (Obs.Trace.Repl_update { page; dst = r; bytes });
              (match t.metrics with
              | Some ms ->
                  Obs.Metrics.add ms.ms_repl_bytes ~node:prim.id ~time:at
                    (float_of_int bytes)
              | None -> ());
              send t ~src:prim ~dst:r ~at ~bytes ~update:0 (fun arrival ->
                  deliver_repl_update t t.nodes.(r) ~arrival ~page ~writer ~index diff)
            end
            else if full then begin
              (* Inval scheme, payload push: archive at the backup. *)
              let vt =
                match vt with
                | Some v -> v
                | None -> invalid_arg "propagate_update: payload push without a timestamp"
              in
              let bytes =
                header_bytes + Mem.Diff.size_bytes diff + Proto.Vclock.size_bytes vt
              in
              c.Stats.repl_updates <- c.Stats.repl_updates + 1;
              c.Stats.repl_bytes <- c.Stats.repl_bytes + bytes;
              if observing t then
                event_at t ~node:prim.id ~time:at
                  (Obs.Trace.Repl_update { page; dst = r; bytes });
              (match t.metrics with
              | Some ms ->
                  Obs.Metrics.add ms.ms_repl_bytes ~node:prim.id ~time:at
                    (float_of_int bytes)
              | None -> ());
              send t ~src:prim ~dst:r ~at ~bytes ~update:0 (fun arrival ->
                  let backup = t.nodes.(r) in
                  ignore (serve t backup ~arrival ~cost:2.);
                  let rp = replica_page t backup page in
                  rp.rp_archive <- (writer, index, diff, vt) :: rp.rp_archive;
                  Mem.Accounting.add backup.stats.Stats.proto_mem (Mem.Diff.size_bytes diff);
                  if index > Proto.Vclock.get rp.rp_flush writer then
                    Proto.Vclock.set rp.rp_flush writer index)
            end
            else begin
              c.Stats.repl_invals <- c.Stats.repl_invals + 1;
              c.Stats.repl_bytes <- c.Stats.repl_bytes + header_bytes;
              (match t.metrics with
              | Some ms ->
                  Obs.Metrics.add ms.ms_repl_bytes ~node:prim.id ~time:at
                    (float_of_int header_bytes)
              | None -> ());
              if observing t then
                event_at t ~node:prim.id ~time:at (Obs.Trace.Repl_inval { page; dst = r });
              send t ~src:prim ~dst:r ~at ~bytes:header_bytes ~update:0 (fun arrival ->
                  ignore (serve t t.nodes.(r) ~arrival ~cost:2.))
            end)
        ranks

(* Homeless replication: the writer streams each retained diff (with its
   interval index and vector time) to the page's replica members, which
   archive it. A dead writer's diffs are then served from the archive of
   the first live member; a dead keeper's full page is reconstructed from
   zeros plus the archive. Both schemes behave identically here — there is
   no master copy to invalidate. *)
let propagate_archive t writer ~page ~index ~diff ~vt ~at =
  match replica_ranks t page with
  | None -> ()
  | Some ranks ->
      let c = writer.stats.Stats.c in
      Array.iter
        (fun r ->
          if r <> writer.id && Array.unsafe_get t.alive r then begin
            let bytes = header_bytes + Mem.Diff.size_bytes diff in
            c.Stats.repl_updates <- c.Stats.repl_updates + 1;
            c.Stats.repl_bytes <- c.Stats.repl_bytes + bytes;
            (match t.metrics with
            | Some ms ->
                Obs.Metrics.add ms.ms_repl_bytes ~node:writer.id ~time:at
                  (float_of_int bytes)
            | None -> ());
            if observing t then
              event_at t ~node:writer.id ~time:at
                (Obs.Trace.Repl_update { page; dst = r; bytes });
            let wid = writer.id in
            send t ~src:writer ~dst:r ~at ~bytes ~update:0 (fun arrival ->
                let backup = t.nodes.(r) in
                ignore (serve t backup ~arrival ~cost:2.);
                let rp = replica_page t backup page in
                rp.rp_archive <- (wid, index, diff, vt) :: rp.rp_archive;
                Mem.Accounting.add backup.stats.Stats.proto_mem (Mem.Diff.size_bytes diff))
          end)
        ranks

(* ------------------------------------------------------------------ *)
(* Eager RC support                                                   *)

let copyset t page =
  match Hashtbl.find_opt t.copyset_tbl page with
  | Some set -> set
  | None ->
      let set = Array.make (nprocs t) 0 in
      Hashtbl.replace t.copyset_tbl page set;
      set

(* Joining member: pushes from now on must reach it. *)
let register_copy t node page =
  let set = copyset t page in
  if set.(node.id) = 0 then set.(node.id) <- 1

(* The member's copy is installed and may serve fetches. *)
let mark_copy_installed t node page = (copyset t page).(node.id) <- 2

(* A member whose copy is installed, if any. *)
let installed_member t page =
  let set = copyset t page in
  let rec go i =
    if i >= Array.length set then None else if set.(i) = 2 then Some i else go (i + 1)
  in
  go 0

(* Run [f] once all of this node's pushed updates are acknowledged (eager
   RC release semantics: the handoff must not overtake the updates). *)
let rc_when_drained t node f =
  if (not (eager_rc t)) || node.rc_acks = 0 then f node.mach.Machine.Node.ck.Machine.Node.clock
  else node.rc_drain <- f :: node.rc_drain

let rc_ack_arrived t node ~at =
  assert (node.rc_acks > 0);
  node.rc_acks <- node.rc_acks - 1;
  Machine.Node.sync_to node.mach at;
  ignore t;
  if node.rc_acks = 0 then begin
    let actions = List.rev node.rc_drain in
    node.rc_drain <- [];
    List.iter (fun f -> f node.mach.Machine.Node.ck.Machine.Node.clock) actions
  end
