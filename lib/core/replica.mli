(** Deterministic failover of replicated homes after a node kill.

    Invoked once per kill by the failure detector ({!Runtime} schedules it
    at the kill time plus {!Machine.Chaos.params.detect_delay}). For every
    page homed at the dead node with a replica set ([Config.replicas] > 1),
    the next live node in rank order becomes primary and rebuilds the
    master copy — from its warm copy plus pulled retained diffs under the
    primary-backup scheme, or from zeros plus the causally-ordered union of
    the dead primary's archived payload diffs and every live writer's
    retained diffs under the invalidation scheme. In-flight fetches of
    every live process are then re-issued against a bumped fetch
    generation, so stale replies discard themselves and the retry routes to
    the post-failover home (homeless protocols only need this step; their
    dead-node recovery lives on the fetch path in [Faults]).

    Recovery traffic is charged to the timing model and counted in the
    replication counters; each promotion increments the new primary's
    [failovers] counter and emits {!Obs.Trace.Failover}. *)

(** [failover sys ~dead ~at] runs the failure detector's response to the
    crash of [dead], at detection time [at]. *)
val failover : System.t -> dead:int -> at:float -> unit

(** {1 Heartbeat detector}

    With [--detector heartbeat], {!Runtime} wires the transport's per-node
    suspectors ({!Machine.Transport.start_heartbeats}) to these two hooks.
    A suspicion is one node's local view; only a strict global majority of
    current members deposes a node and triggers {!failover} — so a single
    paused node (which suspects everyone it can no longer hear) or a
    minority partition can never remove the other side. A deposed node may
    be alive: when it is heard from again and the quorum collapses, it
    rejoins — stale home authority discarded (remote fetches still parked
    there are fenced; its own parked waits convert to remote fetches
    against the current home), local copies of re-homed pages invalidated,
    and {!Obs.Trace.Rejoin} emitted. *)

(** [by] has not heard [peer] for longer than the suspicion timeout. *)
val suspect : System.t -> by:int -> peer:int -> at:float -> unit

(** [by] heard the suspected [peer] again: the suspicion was false. *)
val refute : System.t -> by:int -> peer:int -> at:float -> unit
