(* Page-fault handling — the SVM access-detection mechanism (a "fault" in
   the virtual-memory sense: a trapped read or write to an invalid page).
   Injected infrastructure failures — lost/duplicated messages, latency
   spikes, slow nodes — are a different thing entirely and live in
   [Machine.Chaos] / [Machine.Transport].

   Home-based protocols resolve a miss with a single round trip to the
   page's home, which holds an eagerly-updated master copy guarded by
   per-writer flush timestamps. Homeless protocols first obtain a full copy
   from the (approximate) copyset when none is cached, then collect the
   missing diffs from their writers and apply them in causal order.

   All entry points assume the node's application process is (or is about to
   be) suspended; completion callbacks fire at the node's advanced clock. *)

open System

let request_service_cost = 10.

(* Causal order on write notices carried by homeless protocols. Incomparable
   (truly concurrent) diffs touch disjoint words in data-race-free programs,
   so any tie order is sound. *)
let compare_causal (a : Proto.Interval.t) (b : Proto.Interval.t) =
  if a.Proto.Interval.node = b.Proto.Interval.node then
    compare a.Proto.Interval.index b.Proto.Interval.index
  else if Proto.Interval.causally_before a b then -1
  else if Proto.Interval.causally_before b a then 1
  else 0

(* Topological order of (interval, diff) pairs under the causal partial
   order. A comparison sort on the partial order itself is unsound
   (incomparable pairs compare equal, breaking transitivity), but the sum of
   a timestamp's entries is strictly monotone in the pointwise order:
   a < b implies sum(a) < sum(b). Sorting by (sum, node, index) is
   therefore a linear extension of causality, computed in O(k log k).
   Same-sum elements are equal or concurrent, and concurrent diffs touch
   disjoint words in data-race-free programs, so their order is free. *)
let vt_weight (iv : Proto.Interval.t) =
  match iv.Proto.Interval.vt with
  | None -> invalid_arg "vt_weight: interval lacks a timestamp"
  | Some vt ->
      let sum = ref 0 in
      for i = 0 to Proto.Vclock.nprocs vt - 1 do
        sum := !sum + Proto.Vclock.get vt i
      done;
      !sum

let causal_key iv = (vt_weight iv, iv.Proto.Interval.node, iv.Proto.Interval.index)

let causal_order tagged =
  let keyed = List.map (fun (iv, diff) -> (causal_key iv, (iv, diff))) tagged in
  List.map snd (List.sort (fun (ka, _) (kb, _) -> compare ka kb) keyed)

let apply_one_diff sys node entry diff =
  let c = costs sys in
  Mem.Diff.apply ?obs:(diff_obs sys node) diff (Mem.Page_table.data_exn entry);
  (match entry.Mem.Page_table.twin with Some t -> Mem.Diff.apply diff t | None -> ());
  charge_protocol node (Intervals.diff_apply_cost c diff);
  node.stats.Stats.c.Stats.diffs_applied <- node.stats.Stats.c.Stats.diffs_applied + 1

(* Re-apply the node's own retained diffs newer than [applied.(self)] after a
   full-page fetch overwrote the local copy (homeless protocols only). *)
let reapply_own_diffs sys node pi entry =
  match Hashtbl.find_opt node.own_diffs pi.pi_page with
  | None -> ()
  | Some diffs ->
      let newer =
        List.filter (fun (idx, _, _) -> idx > Proto.Vclock.get pi.applied node.id) diffs
      in
      let ascending = List.sort (fun (a, _, _) (b, _, _) -> compare a b) newer in
      List.iter
        (fun (idx, diff, _) ->
          apply_one_diff sys node entry diff;
          Proto.Vclock.set pi.applied node.id idx)
        ascending

(* ------------------------------------------------------------------ *)
(* Home-based fetch                                                   *)

(* Install a page copy received from the home, preserving any uncommitted
   local writes (possible when a false-sharing invalidation hit a page the
   node was still writing). Under write-through (AURC) the home copy
   already contains them, so the snapshot installs as-is. *)
let install_home_copy ~write_through entry (data : Mem.Words.t) =
  match (entry.Mem.Page_table.dirty, entry.Mem.Page_table.twin) with
  | true, Some twin ->
      let own =
        Mem.Diff.create ~page:entry.Mem.Page_table.page ~twin
          ~current:(Mem.Page_table.data_exn entry)
      in
      entry.Mem.Page_table.data <- Some data;
      entry.Mem.Page_table.twin <- Some (Mem.Words.copy data);
      Mem.Diff.apply own data
  | true, None when write_through -> entry.Mem.Page_table.data <- Some data
  | true, None -> invalid_arg "install_home_copy: dirty page without twin"
  | false, _ ->
      entry.Mem.Page_table.data <- Some data;
      entry.Mem.Page_table.twin <- None

let rec fetch_from_home sys node page ~on_valid =
  let c = costs sys in
  let pi = page_info sys node page in
  let home = home_of sys page in
  let home_node = sys.nodes.(home) in
  let needed = Proto.Vclock.copy pi.needed in
  (* Replies belonging to a superseded fetch generation (the fetch was
     re-issued by a failover) discard themselves on arrival. *)
  let gen = node.fetch_gen in
  node.stats.Stats.c.Stats.page_fetches <- node.stats.Stats.c.Stats.page_fetches + 1;
  let request_bytes = header_bytes + Proto.Vclock.size_bytes needed in
  event sys node (Obs.Trace.Page_fetch { page; home });
  send sys ~src:node ~dst:home ~at:node.mach.Machine.Node.ck.Machine.Node.clock ~bytes:request_bytes ~update:0
    (fun arrival ->
      (* Authority epoch under which this request was accepted. If a
         failover re-homes the page before the serve runs (the home was
         deposed while the fetch was parked or in flight), the epoch is
         stale: serving would hand out an outdated master. Fence — the
         requester was re-issued against the new home at promote time
         ([Replica.reissue_blocked]), so the park is dead weight. *)
      let epoch0 = epoch_of sys page in
      let fenced at =
        let stale = home_of sys page <> home || epoch_of sys page <> epoch0 in
        if stale then begin
          let c = home_node.stats.Stats.c in
          c.Stats.fenced_fetches <- c.Stats.fenced_fetches + 1;
          if observing sys then
            event_at sys ~node:home ~time:at
              (Obs.Trace.Fenced_fetch { page; requester = node.id })
        end;
        stale
      in
      let serve_fetch at =
        if fenced at then ()
        else
        let done_t = serve sys home_node ~arrival:at ~cost:request_service_cost in
        let hentry = Mem.Page_table.ensure home_node.pt page in
        let master =
          match hentry.Mem.Page_table.data with
          | Some d -> d
          | None ->
              let d = Mem.Page_table.attach_copy home_node.pt hentry in
              hentry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
              d
        in
        let snapshot = Mem.Words.copy master in
        let hp = home_page sys home_node page in
        let flush = Proto.Vclock.copy hp.hp_flush in
        let bytes =
          header_bytes + Mem.Layout.page_bytes sys.layout + Proto.Vclock.size_bytes flush
        in
        send sys ~src:home_node ~dst:node.id ~at:done_t ~bytes
          ~update:(Mem.Layout.page_bytes sys.layout) (fun reply_at ->
            if node.fetch_gen = gen then begin
              Machine.Node.sync_to node.mach reply_at;
              (* The node may have flushed its own writes mid-fault (a remote
                 lock request ended its interval); if the snapshot predates
                 them, retry so they are not lost. *)
              if not (Proto.Vclock.leq pi.needed flush) then
                fetch_from_home sys node page ~on_valid
              else begin
                let entry = Mem.Page_table.ensure node.pt page in
                install_home_copy ~write_through:(aurc sys) entry snapshot;
                entry.Mem.Page_table.prot <-
                  (if entry.Mem.Page_table.dirty then Mem.Page_table.Read_write
                   else Mem.Page_table.Read_only);
                on_valid ()
              end
            end)
      in
      let hp = home_page sys home_node page in
      if Proto.Vclock.leq needed hp.hp_flush then serve_fetch arrival
      else if not (fenced arrival) then begin
        ignore (serve sys home_node ~arrival ~cost:request_service_cost);
        hp.hp_pending <-
          { pf_needed = needed; pf_serve = serve_fetch; pf_requester = node.id }
          :: hp.hp_pending;
        event sys home_node (Obs.Trace.Page_fetch_pending { page })
      end);
  ignore c

(* ------------------------------------------------------------------ *)
(* Batched home-based fetch (--fault-batch N > 1)                      *)

(* The run of adjacent same-home pages currently invalid on [node], right
   after [page] — the pages a sequential reader faults on next (a cold
   sweep over a big read-mostly structure is the classic case: the same
   access pattern burst faulting targets in real VM systems). Capped at
   [fault_batch - 1] extras. *)
let batch_candidates sys node page =
  let limit = sys.cfg.Config.fault_batch - 1 in
  let home = home_of sys page in
  let rec scan q acc n =
    if
      n > 0
      && Hashtbl.mem sys.alloc_tbl q
      && home_of sys q = home
      && (Mem.Page_table.ensure node.pt q).Mem.Page_table.prot = Mem.Page_table.No_access
    then scan (q + 1) (q :: acc) (n - 1)
    else List.rev acc
  in
  scan (page + 1) [] limit

(* One round trip for the faulting page plus up to [fault_batch - 1]
   adjacent same-home invalid pages: strided access patterns fault on page
   runs, and each unbatched miss pays a full round trip, so piggybacking
   the run amortizes the latency. The home only includes extras whose
   flush cut already covers the requester's needs — a behind page is left
   out and faults normally later, it never holds the batch. The faulting
   page itself keeps the exact unbatched semantics: the pending path when
   the home's flush cut is behind, and the stale-snapshot retry (which
   retries unbatched). *)
let fetch_batch_from_home sys node page ~extras ~on_valid =
  let pi = page_info sys node page in
  let home = home_of sys page in
  let home_node = sys.nodes.(home) in
  let needed = Proto.Vclock.copy pi.needed in
  let gen = node.fetch_gen in
  let extra_needed =
    List.map (fun q -> (q, Proto.Vclock.copy (page_info sys node q).needed)) extras
  in
  node.stats.Stats.c.Stats.page_fetches <- node.stats.Stats.c.Stats.page_fetches + 1;
  node.stats.Stats.c.Stats.batch_prefetches <-
    node.stats.Stats.c.Stats.batch_prefetches + List.length extras;
  let request_bytes =
    header_bytes + Proto.Vclock.size_bytes needed
    + List.fold_left (fun acc (_, vc) -> acc + 8 + Proto.Vclock.size_bytes vc) 0 extra_needed
  in
  event sys node (Obs.Trace.Page_fetch { page; home });
  event sys node (Obs.Trace.Batch_fetch { page; home; pages = 1 + List.length extras });
  send sys ~src:node ~dst:home ~at:node.mach.Machine.Node.ck.Machine.Node.clock
    ~bytes:request_bytes ~update:0 (fun arrival ->
      (* Same stale-authority fence as the unbatched path. *)
      let epoch0 = epoch_of sys page in
      let fenced at =
        let stale = home_of sys page <> home || epoch_of sys page <> epoch0 in
        if stale then begin
          let c = home_node.stats.Stats.c in
          c.Stats.fenced_fetches <- c.Stats.fenced_fetches + 1;
          if observing sys then
            event_at sys ~node:home ~time:at
              (Obs.Trace.Fenced_fetch { page; requester = node.id })
        end;
        stale
      in
      let serve_fetch at =
        if fenced at then ()
        else
        let master_of q =
          let hentry = Mem.Page_table.ensure home_node.pt q in
          match hentry.Mem.Page_table.data with
          | Some d -> d
          | None ->
              let d = Mem.Page_table.attach_copy home_node.pt hentry in
              hentry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
              d
        in
        let served =
          List.filter_map
            (fun (q, vc) ->
              let hq = home_page sys home_node q in
              if Proto.Vclock.leq vc hq.hp_flush then
                Some (q, Mem.Words.copy (master_of q), Proto.Vclock.copy hq.hp_flush)
              else None)
            extra_needed
        in
        let pages = 1 + List.length served in
        let done_t =
          serve sys home_node ~arrival:at ~cost:(request_service_cost *. float_of_int pages)
        in
        let snapshot = Mem.Words.copy (master_of page) in
        let hp = home_page sys home_node page in
        let flush = Proto.Vclock.copy hp.hp_flush in
        let vclock_bytes =
          Proto.Vclock.size_bytes flush
          + List.fold_left (fun acc (_, _, vc) -> acc + 8 + Proto.Vclock.size_bytes vc) 0 served
        in
        let pb = Mem.Layout.page_bytes sys.layout in
        send sys ~src:home_node ~dst:node.id ~at:done_t
          ~bytes:(header_bytes + (pages * pb) + vclock_bytes)
          ~update:(pages * pb)
          (fun reply_at ->
            if node.fetch_gen <> gen then ()
            else begin
            Machine.Node.sync_to node.mach reply_at;
            (* Install prefetched extras first; each re-checks that the
               snapshot still covers the page's (possibly grown) needs and
               that no concurrent fetch validated it in the meantime. *)
            List.iter
              (fun (q, snap, qflush) ->
                let entry = Mem.Page_table.ensure node.pt q in
                let qi = page_info sys node q in
                if
                  entry.Mem.Page_table.prot = Mem.Page_table.No_access
                  && Proto.Vclock.leq qi.needed qflush
                then begin
                  install_home_copy ~write_through:(aurc sys) entry snap;
                  entry.Mem.Page_table.prot <-
                    (if entry.Mem.Page_table.dirty then Mem.Page_table.Read_write
                     else Mem.Page_table.Read_only)
                end)
              served;
            if not (Proto.Vclock.leq pi.needed flush) then
              fetch_from_home sys node page ~on_valid
            else begin
              let entry = Mem.Page_table.ensure node.pt page in
              install_home_copy ~write_through:(aurc sys) entry snapshot;
              entry.Mem.Page_table.prot <-
                (if entry.Mem.Page_table.dirty then Mem.Page_table.Read_write
                 else Mem.Page_table.Read_only);
              on_valid ()
            end
            end)
      in
      let hp = home_page sys home_node page in
      if Proto.Vclock.leq needed hp.hp_flush then serve_fetch arrival
      else if not (fenced arrival) then begin
        ignore (serve sys home_node ~arrival ~cost:request_service_cost);
        hp.hp_pending <-
          { pf_needed = needed; pf_serve = serve_fetch; pf_requester = node.id }
          :: hp.hp_pending;
        event sys home_node (Obs.Trace.Page_fetch_pending { page })
      end)

(* ------------------------------------------------------------------ *)
(* Homeless fetch: full copy (if uncached) then missing diffs           *)

let still_missing pi =
  List.filter
    (fun (iv : Proto.Interval.t) ->
      iv.Proto.Interval.index > Proto.Vclock.get pi.applied iv.Proto.Interval.node)
    pi.missing

let finish_homeless_validation node pi entry ~on_valid =
  Mem.Accounting.sub node.stats.Stats.proto_mem
    (missing_entry_bytes * List.length pi.missing);
  pi.missing <- [];
  entry.Mem.Page_table.prot <-
    (if entry.Mem.Page_table.dirty then Mem.Page_table.Read_write else Mem.Page_table.Read_only);
  on_valid ()

(* Collect and apply the diffs for the page's outstanding write notices. One
   request goes to each distinct writer; replies are applied in causal
   order once all have arrived (paper §2.1: the faulting processor "collects
   all the diffs for the page and applies them in the proper causal
   order"). *)
let collect_diffs sys node page ~on_valid =
  let pi = page_info sys node page in
  let entry = Mem.Page_table.entry node.pt page in
  let wanted = still_missing pi in
  if wanted = [] then finish_homeless_validation node pi entry ~on_valid
  else begin
    let gen = node.fetch_gen in
    let by_writer = Hashtbl.create 8 in
    List.iter
      (fun (iv : Proto.Interval.t) ->
        let w = iv.Proto.Interval.node in
        let prev = try Hashtbl.find by_writer w with Not_found -> [] in
        Hashtbl.replace by_writer w (iv.Proto.Interval.index :: prev))
      wanted;
    let writers = Hashtbl.fold (fun w idxs acc -> (w, idxs) :: acc) by_writer [] in
    let outstanding = ref (List.length writers) in
    let received : (int * int * Mem.Diff.t) list ref = ref [] in
    let vt_of = Hashtbl.create 8 in
    List.iter
      (fun (iv : Proto.Interval.t) ->
        Hashtbl.replace vt_of (iv.Proto.Interval.node, iv.Proto.Interval.index) iv)
      wanted;
    let complete at =
      Machine.Node.sync_to node.mach at;
      (* Sort the collected diffs by the causal order of their intervals. *)
      let tagged =
        List.map (fun (w, idx, diff) -> (Hashtbl.find vt_of (w, idx), diff)) !received
      in
      let ordered = causal_order tagged in
      List.iter
        (fun ((iv : Proto.Interval.t), diff) ->
          apply_one_diff sys node entry diff;
          if iv.Proto.Interval.index > Proto.Vclock.get pi.applied iv.Proto.Interval.node then
            Proto.Vclock.set pi.applied iv.Proto.Interval.node iv.Proto.Interval.index)
        ordered;
      finish_homeless_validation node pi entry ~on_valid
    in
    let reply_handler writer diffs payload reply_at =
      if node.fetch_gen = gen then begin
        Machine.Node.sync_to node.mach reply_at;
        List.iter (fun (idx, diff) -> received := (writer, idx, diff) :: !received) diffs;
        decr outstanding;
        if !outstanding = 0 then complete node.mach.Machine.Node.ck.Machine.Node.clock
      end;
      ignore payload
    in
    List.iter
      (fun (writer, idxs) ->
        if is_alive sys writer then begin
          let writer_node = sys.nodes.(writer) in
          let bytes = header_bytes + (8 * List.length idxs) in
          event sys node
            (Obs.Trace.Diff_request { page; writer; intervals = List.length idxs });
          send sys ~src:node ~dst:writer ~at:node.mach.Machine.Node.ck.Machine.Node.clock ~bytes ~update:0
            (fun arrival ->
              let cost = request_service_cost *. float_of_int (List.length idxs) in
              let done_t = serve sys writer_node ~arrival ~cost in
              let stored = try Hashtbl.find writer_node.own_diffs page with Not_found -> [] in
              let diffs =
                List.map
                  (fun idx ->
                    match List.find_opt (fun (i, _, _) -> i = idx) stored with
                    | Some (_, diff, _) -> (idx, diff)
                    | None ->
                        invalid_arg
                          (Printf.sprintf
                             "collect_diffs: writer %d lacks diff (page %d, interval %d)" writer
                             page idx))
                  idxs
              in
              let payload =
                List.fold_left (fun acc (_, d) -> acc + Mem.Diff.size_bytes d) 0 diffs
              in
              if spans_on sys then
                event_at sys ~node:writer ~time:done_t
                  (Obs.Trace.Diff_reply { page; dst = node.id; bytes = payload });
              send sys ~src:writer_node ~dst:node.id ~at:done_t
                ~bytes:(header_bytes + payload) ~update:payload
                (reply_handler writer diffs payload))
        end
        else
          (* The writer crash-stopped: its retained diffs are gone with it,
             but on replicated runs every interval-end diff was streamed to
             the page's replica members. Pull them from the first live
             member's archive instead. With no live member the request is
             simply not sent — the fetch hangs and the watchdog reports the
             unsurvivable loss. *)
          match live_replica sys page with
          | None -> ()
          | Some holder ->
              let holder_node = sys.nodes.(holder) in
              node.stats.Stats.c.Stats.failovers <- node.stats.Stats.c.Stats.failovers + 1;
              event sys node (Obs.Trace.Failover { page; from_ = writer; to_ = holder });
              let bytes = header_bytes + (8 * List.length idxs) in
              event sys node
                (Obs.Trace.Diff_request { page; writer = holder; intervals = List.length idxs });
              send sys ~src:node ~dst:holder ~at:node.mach.Machine.Node.ck.Machine.Node.clock
                ~bytes ~update:0 (fun arrival ->
                  (* The dead writer's last archive messages may still be in
                     flight from before the crash; poll (in simulated time)
                     until the archive holds every requested interval. *)
                  let rec attempt tries at =
                    let rp = replica_page sys holder_node page in
                    let find idx =
                      List.find_opt
                        (fun (w, i, _, _) -> w = writer && i = idx)
                        rp.rp_archive
                    in
                    if List.for_all (fun idx -> find idx <> None) idxs then begin
                      let cost = request_service_cost *. float_of_int (List.length idxs) in
                      let done_t = serve sys holder_node ~arrival:at ~cost in
                      let diffs =
                        List.map
                          (fun idx ->
                            match find idx with
                            | Some (_, _, d, _) -> (idx, d)
                            | None -> assert false)
                          idxs
                      in
                      let payload =
                        List.fold_left (fun acc (_, d) -> acc + Mem.Diff.size_bytes d) 0 diffs
                      in
                      if spans_on sys then
                        event_at sys ~node:holder ~time:done_t
                          (Obs.Trace.Diff_reply { page; dst = node.id; bytes = payload });
                      send sys ~src:holder_node ~dst:node.id ~at:done_t
                        ~bytes:(header_bytes + payload) ~update:payload
                        (reply_handler writer diffs payload)
                    end
                    else if tries >= 1000 then
                      invalid_arg
                        (Printf.sprintf
                           "collect_diffs: replica %d's archive lacks diffs of dead writer \
                            %d (page %d)"
                           holder writer page)
                    else
                      Sim.Engine.schedule sys.engine ~at:(at +. 50.) (fun () ->
                          attempt (tries + 1) (at +. 50.))
                  in
                  attempt 0 arrival))
      writers
  end

(* Obtain a full base copy from the approximate copyset, then collect
   diffs. The reply carries the replier's applied cut so the fetcher knows
   which notices the copy already reflects (sound because applied cuts are
   causally closed; see DESIGN.md). *)
let fetch_full_page sys node page ~on_valid =
  let pi = page_info sys node page in
  let entry = Mem.Page_table.ensure node.pt page in
  let source =
    if eager_rc sys then
      (* Eager RC has no diffs to pull: the copy must come from a member
         whose own copy has installed (installed members never drop their
         copies, so the choice is stable). A page nobody holds yet
         materializes locally as zeros. *)
      match installed_member sys page with Some m -> m | None -> node.id
    else keeper_of sys page
  in
  if source <> node.id && (not (is_alive sys source)) && homeless_lazy sys then begin
    (* The copyset keeper crashed with the only known full copy. Rebuild
       from first principles: shared pages start zeroed and every byte
       since originates from some writer's diff, so zeros plus the page's
       complete diff history equals the lost copy. Reset the applied cut,
       repopulate the missing list from the retained interval records
       (complete until a GC prunes them — the chaos schedule kills long
       before any GC fires at these scales), and let [collect_diffs] pull
       each diff from its writer — or, for the dead writer's own, from the
       page's replica archive. *)
    node.stats.Stats.c.Stats.failovers <- node.stats.Stats.c.Stats.failovers + 1;
    event sys node (Obs.Trace.Failover { page; from_ = source; to_ = node.id });
    ignore (Mem.Page_table.attach_copy node.pt entry);
    Mem.Accounting.sub node.stats.Stats.proto_mem
      (missing_entry_bytes * List.length pi.missing);
    pi.applied <- Proto.Vclock.create ~nprocs:(nprocs sys);
    let all =
      Array.to_list node.known
      |> List.concat_map
           (List.filter (fun (iv : Proto.Interval.t) ->
                iv.Proto.Interval.node <> node.id
                && List.mem page iv.Proto.Interval.pages))
    in
    pi.missing <- all;
    Mem.Accounting.add node.stats.Stats.proto_mem (missing_entry_bytes * List.length all);
    reapply_own_diffs sys node pi entry;
    collect_diffs sys node page ~on_valid
  end
  else if source = node.id then begin
    (* We are the allocator (or, under RC, the first toucher): materialize
       the initial zero-filled copy. *)
    ignore (Mem.Page_table.attach_copy node.pt entry);
    if eager_rc sys then mark_copy_installed sys node page;
    reapply_own_diffs sys node pi entry;
    collect_diffs sys node page ~on_valid
  end
  else begin
    let source_node = sys.nodes.(source) in
    let gen = node.fetch_gen in
    node.stats.Stats.c.Stats.page_fetches <- node.stats.Stats.c.Stats.page_fetches + 1;
    event sys node (Obs.Trace.Full_page_fetch { page; source });
    send sys ~src:node ~dst:source ~at:node.mach.Machine.Node.ck.Machine.Node.clock ~bytes:header_bytes
      ~update:0 (fun arrival ->
        let done_t = serve sys source_node ~arrival ~cost:request_service_cost in
        let sentry = Mem.Page_table.ensure source_node.pt page in
        let sdata =
          match sentry.Mem.Page_table.data with
          | Some d -> d
          | None ->
              (* Only reachable for the homeless-lazy protocols (an RC
                 source is always an installed member). *)
              assert (not (eager_rc sys));
              let d = Mem.Page_table.attach_copy source_node.pt sentry in
              sentry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
              d
        in
        (* Eager RC: the requester joins the copyset before the snapshot is
           taken, so any update pushed from now on reaches it (held in its
           backlog until the copy installs below). *)
        if eager_rc sys then register_copy sys node page;
        let snapshot = Mem.Words.copy sdata in
        let spi = page_info sys source_node page in
        let applied = Proto.Vclock.copy spi.applied in
        let bytes =
          header_bytes + Mem.Layout.page_bytes sys.layout + Proto.Vclock.size_bytes applied
        in
        send sys ~src:source_node ~dst:node.id ~at:done_t ~bytes
          ~update:(Mem.Layout.page_bytes sys.layout) (fun reply_at ->
            if node.fetch_gen <> gen then ()
            else begin
            Machine.Node.sync_to node.mach reply_at;
            (match (entry.Mem.Page_table.dirty, entry.Mem.Page_table.twin) with
            | true, Some twin ->
                let own =
                  Mem.Diff.create ~page ~twin ~current:(Mem.Page_table.data_exn entry)
                in
                entry.Mem.Page_table.data <- Some snapshot;
                entry.Mem.Page_table.twin <- Some (Mem.Words.copy snapshot);
                Mem.Diff.apply own snapshot
            | true, None -> invalid_arg "fetch_full_page: dirty page without twin"
            | false, _ ->
                entry.Mem.Page_table.data <- Some snapshot;
                entry.Mem.Page_table.twin <- None);
            Proto.Vclock.merge_into pi.applied applied;
            reapply_own_diffs sys node pi entry;
            (* Eager RC: updates that raced the transfer were parked in the
               backlog; apply them in push order on top of the copy, then
               open this copy up for serving fetches. *)
            if eager_rc sys then begin
              List.iter (fun diff -> apply_one_diff sys node entry diff) (List.rev pi.rc_backlog);
              pi.rc_backlog <- [];
              mark_copy_installed sys node page
            end;
            collect_diffs sys node page ~on_valid
            end))
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)

(* Bring [page] to a readable state on [node]; [on_valid] runs (at the
   node's advanced clock) once the local copy is coherent. *)
let make_valid sys node page ~on_valid =
  let entry = Mem.Page_table.ensure node.pt page in
  if entry.Mem.Page_table.prot <> Mem.Page_table.No_access then on_valid ()
  else if home_based sys then begin
    if home_of sys page = node.id then begin
      (* First touch of a page homed here: the master copy materializes
         in place, but any already-announced remote writes must have
         landed before reads are allowed. *)
      let hp = home_page sys node page in
      let pi = page_info sys node page in
      if entry.Mem.Page_table.data = None then
        ignore (Mem.Page_table.attach_copy node.pt entry);
      if Proto.Vclock.leq pi.needed hp.hp_flush then begin
        entry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
        on_valid ()
      end
      else begin
        (* This wait is local (own master catching up with in-flight
           flushes): a failover must not re-issue it, or the park would be
           duplicated and the process resumed twice. *)
        node.fault_retry <- None;
        let span =
          span_begin sys ~node:node.id ~time:node.mach.Machine.Node.ck.Machine.Node.clock
            ~bucket:Obs.Trace.Wb_home ~resource:page
        in
        hp.hp_pending <-
          {
            pf_needed = Proto.Vclock.copy pi.needed;
            pf_serve =
              (fun at ->
                Machine.Node.sync_to node.mach at;
                span_end sys ~node:node.id ~time:node.mach.Machine.Node.ck.Machine.Node.clock ~span
                  ~bucket:Obs.Trace.Wb_home ~resource:page;
                entry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
                on_valid ());
            pf_requester = node.id;
          }
          :: hp.hp_pending
      end
    end
    else begin
      node.stats.Stats.c.Stats.read_misses <- node.stats.Stats.c.Stats.read_misses + 1;
      if sys.cfg.Config.fault_batch > 1 then
        match batch_candidates sys node page with
        | [] -> fetch_from_home sys node page ~on_valid
        | extras -> fetch_batch_from_home sys node page ~extras ~on_valid
      else fetch_from_home sys node page ~on_valid
    end
  end
  else begin
    node.stats.Stats.c.Stats.read_misses <- node.stats.Stats.c.Stats.read_misses + 1;
    if entry.Mem.Page_table.data = None then fetch_full_page sys node page ~on_valid
    else collect_diffs sys node page ~on_valid
  end

let make_writable sys node page =
  let c = costs sys in
  let entry = Mem.Page_table.entry node.pt page in
  assert (entry.Mem.Page_table.prot <> Mem.Page_table.No_access);
  if entry.Mem.Page_table.prot = Mem.Page_table.Read_only then begin
    let at_home = home_based sys && home_of sys page = node.id in
    if aurc sys then begin
      (* No twin: set up the automatic-update mapping so subsequent stores
         write through to the home's master copy (paper 2.2). *)
      if (not at_home) && entry.Mem.Page_table.mirror = None then begin
        let home_node = sys.nodes.(home_of sys page) in
        let hentry = Mem.Page_table.ensure home_node.pt page in
        let master =
          match hentry.Mem.Page_table.data with
          | Some d -> d
          | None ->
              let d = Mem.Page_table.attach_copy home_node.pt hentry in
              hentry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
              d
        in
        entry.Mem.Page_table.mirror <- Some master
      end
    end
    else if ((not at_home) || replicated sys) && entry.Mem.Page_table.twin = None then begin
      (* At home a twin is normally pointless (the master copy IS the
         page); with replicas the home keeps one anyway, so its own writes
         can be diffed at interval end and streamed to the backups. *)
      Mem.Page_table.make_twin entry;
      charge_protocol node c.Machine.Costs.twin_copy;
      Mem.Accounting.add node.stats.Stats.proto_mem (Mem.Layout.page_bytes sys.layout)
    end;
    entry.Mem.Page_table.prot <- Mem.Page_table.Read_write;
    charge_protocol node c.Machine.Costs.page_protect;
    if not entry.Mem.Page_table.dirty then begin
      entry.Mem.Page_table.dirty <- true;
      node.dirty <- page :: node.dirty
    end
  end

(* Effect-handler entry points: the process is suspended with continuation
   [k]; it resumes once the access can proceed. *)
let read_fault sys node page k =
  let c = costs sys in
  charge_protocol node c.Machine.Costs.page_fault;
  System.metrics_fault sys node page;
  block sys node ~resource:page Wait_data k;
  let finish () =
    node.fault_page <- -1;
    node.fault_retry <- None;
    resume sys node ~at:node.mach.Machine.Node.ck.Machine.Node.clock
  in
  (* Record how to re-issue this fault's fetch: if a failover re-homes the
     page while the fetch is in flight at a dead node, the detector bumps
     [fetch_gen] (discarding any stale replies) and invokes the retry. *)
  node.fault_page <- page;
  node.fault_retry <- Some (fun () -> make_valid sys node page ~on_valid:finish);
  make_valid sys node page ~on_valid:finish

let write_fault sys node page k =
  let c = costs sys in
  charge_protocol node c.Machine.Costs.page_fault;
  System.metrics_fault sys node page;
  node.stats.Stats.c.Stats.write_faults <- node.stats.Stats.c.Stats.write_faults + 1;
  block sys node ~resource:page Wait_data k;
  let entry = Mem.Page_table.ensure node.pt page in
  if entry.Mem.Page_table.prot = Mem.Page_table.No_access then begin
    let finish () =
      node.fault_page <- -1;
      node.fault_retry <- None;
      make_writable sys node page;
      resume sys node ~at:node.mach.Machine.Node.ck.Machine.Node.clock
    in
    node.fault_page <- page;
    node.fault_retry <- Some (fun () -> make_valid sys node page ~on_valid:finish);
    make_valid sys node page ~on_valid:finish
  end
  else begin
    make_writable sys node page;
    resume sys node ~at:node.mach.Machine.Node.ck.Machine.Node.clock
  end
