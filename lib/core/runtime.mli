(** Run an application under a protocol and collect results.

    [run cfg app] simulates [cfg.nprocs] processes all executing [app] (SPMD,
    as in Splash-2) on the configured machine and protocol, and returns the
    measured report. Raises {!System.Deadlock} if some process never
    finishes (e.g. mismatched barriers). *)

(** Per-node results, relative to the {!Api.start_timing} window (or the
    whole run if never called). *)
type node_report = {
  nr_id : int;
  nr_elapsed : float;  (** Node virtual time in the window, microseconds. *)
  nr_breakdown : Stats.breakdown;
  nr_counters : Stats.counters;
  nr_mem_peak : int;  (** Peak live protocol memory, bytes. *)
  nr_mem_end : int;  (** Live protocol memory at the end, bytes. *)
  nr_epochs : Stats.breakdown list;  (** Per-barrier-epoch breakdowns. *)
}

(** Transport summary of a chaos run (unacknowledged and abandoned packets
    at exit; both zero on a successful run unless the tail acks were
    themselves lost, which is benign once every process finished). *)
type transport_report = { tr_inflight : int; tr_gave_up : int }

(** Serving-workload results (kvstore): op-kind counts and the completion
    latency of every operation, sorted ascending — ready for
    {!Stats.quantile}. The latency multiset is a pure function of the
    traffic plan, so the sorted array is deterministic regardless of how
    the nodes interleaved. *)
type ops_report = {
  or_gets : int;
  or_puts : int;
  or_txns : int;
  or_lats : float array;
}

type report = {
  r_config : Config.t;
  r_elapsed : float;  (** Parallel execution time = max node elapsed. *)
  r_nodes : node_report array;
  r_shared_bytes : int;  (** Total shared (application) memory. *)
  r_events : int;  (** Simulation events executed (diagnostic). *)
  r_mem_digest : int64;
      (** FNV-1a digest of the final shared memory (current page copies).
          The differential-soundness property: a chaos run's digest must
          equal its fault-free twin's. *)
  r_transport : transport_report option;  (** [Some] iff chaos was enabled. *)
  r_failover_stalls : float list;
      (** Recovery stall of each fetch re-routed by a failover (resume time
          minus failover time), sorted ascending; empty without a kill. *)
  r_metrics : Obs.Metrics.t option;
      (** The sampled metrics flight recorder, [Some] iff the run was
          configured with [metrics_interval] > 0 (note the sampler's cadence
          events inflate [r_events] relative to a metrics-off run; every
          simulated outcome — elapsed, counters, memory digest — is
          unchanged). *)
  r_ops : ops_report option;
      (** [Some] iff the app recorded serving operations
          ({!Api.record_op}); absent for the scientific kernels, so their
          reports are byte-identical to before. *)
}

(** Total computation time across nodes divided by node count: with one
    node this is the sequential-execution baseline the paper's speedups
    divide by. *)
val mean_compute : report -> float

val total_messages : report -> int

val total_update_bytes : report -> int

val total_protocol_bytes : report -> int

(** Maximum peak protocol memory over the nodes, bytes. *)
val max_mem_peak : report -> int

(** [run ?trace ?sink cfg app] executes the simulation. [sink] receives the
    typed protocol trace events ({!Obs.Trace}); [trace] is the legacy
    string callback, now an adapter rendering the same typed stream (kinds
    without a legacy line are skipped), so its output is unchanged from the
    pre-typed tracer. Both may be active at once. *)
val run :
  ?trace:(float -> string -> unit) ->
  ?sink:Obs.Trace.sink ->
  Config.t ->
  (Api.ctx -> unit) ->
  report

val pp_report : Format.formatter -> report -> unit
