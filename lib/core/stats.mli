(** Per-node instrumentation: the time breakdowns, operation counts,
    communication traffic and memory figures behind the paper's Tables 2 and
    4-6 and Figures 3-4. *)

(** Execution-time breakdown buckets (paper Figure 3). All in microseconds
    of the node's virtual time. *)
type breakdown = {
  mutable compute : float;  (** Application computation + memory access. *)
  mutable data : float;  (** Waiting for remote pages / diffs. *)
  mutable lock : float;  (** Waiting for lock grants. *)
  mutable barrier : float;  (** Waiting at barriers. *)
  mutable protocol : float;
      (** Twin/diff/write-notice handling and servicing remote requests on
          the compute processor. *)
  mutable gc : float;  (** Garbage collection (homeless protocols). *)
}

val breakdown_zero : unit -> breakdown

val breakdown_copy : breakdown -> breakdown

(** [breakdown_sub a b] = a - b, componentwise (for epoch deltas). *)
val breakdown_sub : breakdown -> breakdown -> breakdown

val breakdown_total : breakdown -> float

(** Operation and traffic counters (paper Tables 4-5). *)
type counters = {
  mutable read_misses : int;  (** Read faults needing remote data. *)
  mutable write_faults : int;
  mutable diffs_created : int;
  mutable diffs_applied : int;
  mutable lock_acquires : int;  (** All acquires, local and remote. *)
  mutable remote_acquires : int;
  mutable barriers : int;
  mutable messages : int;  (** Messages sent by this node. *)
  mutable update_bytes : int;  (** Diff and page payload bytes sent. *)
  mutable protocol_bytes : int;  (** All other bytes sent. *)
  mutable page_fetches : int;
  mutable gc_runs : int;
  mutable home_migrations : int;  (** Pages re-homed to this node. *)
  mutable msg_drops : int;  (** Chaos: copies this node sent that were lost. *)
  mutable msg_retransmits : int;  (** Transport retransmissions by this node. *)
  mutable msg_acks : int;  (** Transport acknowledgements sent by this node. *)
  mutable msg_dup_dropped : int;  (** Duplicates this node received and discarded. *)
  mutable batch_prefetches : int;
      (** Pages piggybacked on a batched fetch ([--fault-batch] > 1). *)
  mutable repl_updates : int;
      (** Replica updates this node sent (diff payloads streamed to
          backups, [--repl-scheme backup], or primary-local pushes). *)
  mutable repl_invals : int;
      (** Invalidation records this node sent to backups
          ([--repl-scheme inval]). *)
  mutable repl_bytes : int;  (** Total replication payload + header bytes sent. *)
  mutable failovers : int;  (** Pages this node was promoted to primary for. *)
  mutable msg_peer_dead : int;
      (** Sends/packets this node abandoned because the peer was dead. *)
  mutable msg_gave_up : int;
      (** Packets this node abandoned at the transport's retry cap — the
          payload will never arrive. *)
  mutable suspicions : int;
      (** Heartbeat detector: peers this node started suspecting. *)
  mutable refutations : int;
      (** Heartbeat detector: suspicions this node retracted after hearing
          the peer again (every one was a false suspicion). *)
  mutable fenced_fetches : int;
      (** Fetch requests this node refused because its authority over the
          page was stale (it had been deposed / the page re-homed): the
          epoch fence that prevents split-brain serves. *)
}

val counters_zero : unit -> counters

val counters_copy : counters -> counters

(** [counters_sub a b] = a - b, componentwise (for timing-window deltas). *)
val counters_sub : counters -> counters -> counters

(** Full per-node statistics. *)
type t = {
  b : breakdown;
  c : counters;
  proto_mem : Mem.Accounting.t;  (** Live protocol-data bytes. *)
  mutable epochs : breakdown list;
      (** Snapshot of [b] at each barrier arrival, newest first; consecutive
          differences give per-barrier-epoch breakdowns (Figure 4). *)
}

val create : unit -> t

(** Record a barrier-arrival snapshot. *)
val mark_epoch : t -> unit

(** Per-epoch deltas in chronological order. The first element covers from
    the start of the run to the first barrier. *)
val epoch_deltas : t -> breakdown list

(** [quantile sorted p] is the nearest-rank quantile of an {e ascending}
    sorted array: the element at rank [ceil (p * n)] (1-based, clamped to
    [[1, n]]), so the result is always an observed value and [p = 1.] is
    the maximum; [None] on the empty array, so an absent sample set can
    never be confused with a genuine 0-valued sample. This is the
    convention used by the report's availability and serving percentiles
    and mirrored by the log2 histogram quantiles in [Obs.Metrics]. *)
val quantile : float array -> float -> float option

val pp_breakdown : Format.formatter -> breakdown -> unit
