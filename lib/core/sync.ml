(* Synchronization: distributed locks and the centralized barrier.

   Locks follow the paper's §3.5 design: each lock has a manager (assigned
   round-robin over the nodes) tracking the last requester; requests are
   forwarded to that node, which grants the lock once it is free. The grant
   carries the releaser's knowledge of all intervals the requester has not
   seen. Re-acquiring a lock this node still owns costs nothing.

   Barriers use a centralized manager (node 0): arrivals carry the write
   notices for the sender's own new intervals; the manager computes the
   maximal timestamp and selectively forwards missing notices with each
   release. Barrier completion also triggers garbage collection for
   homeless protocols when some node's protocol memory exceeded the
   threshold. *)

open System

let manager_of sys lock = lock mod nprocs sys

(* The paper's prototypes always serviced lock requests on the compute
   processor (3.4); its 4.3 notes the cost would drop to ~150 us on the
   co-processor. [coproc_locks] enables that extension for the overlapped
   protocols. *)
let serve_lock sys node ~arrival ~cost =
  if overlapped sys && sys.cfg.Config.coproc_locks then serve_coproc sys node ~arrival ~cost
  else serve_compute sys node ~arrival ~cost

let lock_state sys node lock =
  match Hashtbl.find_opt node.locks lock with
  | Some ls -> ls
  | None ->
      let ls =
        {
          lk_token = node.id = manager_of sys lock;
          lk_held = false;
          lk_waiting = false;
          lk_waiter = None;
        }
      in
      Hashtbl.replace node.locks lock ls;
      ls

(* Home-based protocols: a node whose *own* master copies have announced but
   not-yet-arrived updates must not run application code until the in-flight
   diffs land (DESIGN.md, home-wait). Resumes the blocked process when all
   waits clear. *)
let resume_after_home_waits sys node waits =
  let waits =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) waits
    |> List.filter (fun (page, hp) ->
           let pi = page_info sys node page in
           not (Proto.Vclock.leq pi.needed hp.hp_flush))
  in
  match waits with
  | [] -> resume sys node ~at:node.mach.Machine.Node.ck.Machine.Node.clock
  | _ ->
      let remaining = ref (List.length waits) in
      List.iter
        (fun (page, hp) ->
          let pi = page_info sys node page in
          event sys node (Obs.Trace.Home_wait { page });
          (* Nested home-wait span: the node stays accounted to its outer
             lock/barrier bucket, but the causal layer records which master
             copy's in-flight diffs it is pinned on. *)
          let span =
            span_begin sys ~node:node.id ~time:node.mach.Machine.Node.ck.Machine.Node.clock
              ~bucket:Obs.Trace.Wb_home ~resource:page
          in
          hp.hp_pending <-
            {
              pf_needed = Proto.Vclock.copy pi.needed;
              pf_serve =
                (fun at ->
                  Machine.Node.sync_to node.mach at;
                  span_end sys ~node:node.id ~time:node.mach.Machine.Node.ck.Machine.Node.clock ~span
                    ~bucket:Obs.Trace.Wb_home ~resource:page;
                  decr remaining;
                  if !remaining = 0 then resume sys node ~at:node.mach.Machine.Node.ck.Machine.Node.clock);
              pf_requester = node.id;
            }
            :: hp.hp_pending)
        waits

(* ------------------------------------------------------------------ *)
(* Locks                                                              *)

let grant_bytes sys ivs =
  header_bytes + (4 * nprocs sys) + Intervals.intervals_bytes ivs

(* Send the lock to [requester]: end the holder's interval, gather the
   intervals the requester lacks, ship them with the holder's timestamp.
   [at] is when the holder's processor starts this work. *)
let send_grant sys holder ~lock ~requester ~req_vt ~at =
  let c0 = holder.mach.Machine.Node.ck.Machine.Node.clock in
  Intervals.end_interval sys holder;
  charge_protocol holder (costs sys).Machine.Costs.lock_service;
  let inline_work = holder.mach.Machine.Node.ck.Machine.Node.clock -. c0 in
  let ivs = Intervals.missing_intervals holder req_vt in
  let vt_copy = Proto.Vclock.copy holder.vt in
  let requester_node = sys.nodes.(requester) in
  event sys holder
    (Obs.Trace.Lock_grant { lock; dst = requester; intervals = List.length ivs });
  send sys ~src:holder ~dst:requester ~at:(at +. inline_work) ~bytes:(grant_bytes sys ivs)
    ~update:0 (fun arrival ->
      Machine.Node.sync_to requester_node.mach arrival;
      let ls = lock_state sys requester_node lock in
      ls.lk_token <- true;
      ls.lk_held <- true;
      ls.lk_waiting <- false;
      let home_waits = Intervals.apply_remote_intervals sys requester_node ivs in
      Proto.Vclock.merge_into requester_node.vt vt_copy;
      resume_after_home_waits sys requester_node home_waits)

(* A forwarded request reaches the current chain tail. *)
let receive_forward sys holder ~lock ~requester ~req_vt ~arrival =
  let done_t = serve_lock sys holder ~arrival ~cost:(costs sys).Machine.Costs.lock_service in
  let ls = lock_state sys holder lock in
  (* Receiving a remote lock request delimits an interval (paper §2.1), even
     when the grant must wait for our release. *)
  let c0 = holder.mach.Machine.Node.ck.Machine.Node.clock in
  Intervals.end_interval sys holder;
  let extra = holder.mach.Machine.Node.ck.Machine.Node.clock -. c0 in
  if ls.lk_held || ls.lk_waiting then begin
    assert (ls.lk_waiter = None);
    ls.lk_waiter <- Some (requester, req_vt);
    event sys holder (Obs.Trace.Lock_queued { lock; requester })
  end
  else begin
    assert ls.lk_token;
    ls.lk_token <- false;
    (* Eager RC: the handoff must not overtake this node's pushed updates. *)
    rc_when_drained sys holder (fun drain_at ->
        send_grant sys holder ~lock ~requester ~req_vt ~at:(Float.max drain_at (done_t +. extra)))
  end

(* The manager forwards the request to the last requester and records the
   new chain tail. *)
let receive_request sys ~lock ~requester ~req_vt ~arrival =
  let mgr = sys.nodes.(manager_of sys lock) in
  let done_t = serve_lock sys mgr ~arrival ~cost:(costs sys).Machine.Costs.lock_service in
  let last =
    match Hashtbl.find_opt sys.lock_last lock with Some n -> n | None -> mgr.id
  in
  Hashtbl.replace sys.lock_last lock requester;
  assert (last <> requester);
  if last = mgr.id then receive_forward sys mgr ~lock ~requester ~req_vt ~arrival:done_t
  else
    send sys ~src:mgr ~dst:last ~at:done_t ~bytes:(header_bytes + (4 * nprocs sys)) ~update:0
      (fun arr -> receive_forward sys sys.nodes.(last) ~lock ~requester ~req_vt ~arrival:arr)

let acquire sys node lock k =
  node.stats.Stats.c.Stats.lock_acquires <- node.stats.Stats.c.Stats.lock_acquires + 1;
  let ls = lock_state sys node lock in
  assert (not ls.lk_held);
  assert (not ls.lk_waiting);
  if ls.lk_token then begin
    (* Token still here and nobody asked for it: free reacquire. *)
    ls.lk_held <- true;
    event sys node (Obs.Trace.Lock_acquire { lock; remote = false });
    block sys node ~resource:lock Wait_lock k;
    resume sys node ~at:node.mach.Machine.Node.ck.Machine.Node.clock
  end
  else begin
    node.stats.Stats.c.Stats.remote_acquires <- node.stats.Stats.c.Stats.remote_acquires + 1;
    ls.lk_waiting <- true;
    (* Performing a remote acquire delimits the current interval. *)
    Intervals.end_interval sys node;
    block sys node ~resource:lock Wait_lock k;
    event sys node (Obs.Trace.Lock_acquire { lock; remote = true });
    let req_vt = Proto.Vclock.copy node.vt in
    let mgr = manager_of sys lock in
    if mgr = node.id then
      receive_request sys ~lock ~requester:node.id ~req_vt ~arrival:node.mach.Machine.Node.ck.Machine.Node.clock
    else
      send sys ~src:node ~dst:mgr ~at:node.mach.Machine.Node.ck.Machine.Node.clock
        ~bytes:(header_bytes + (4 * nprocs sys)) ~update:0 (fun arrival ->
          receive_request sys ~lock ~requester:node.id ~req_vt ~arrival)
  end

let release sys node lock =
  let ls = lock_state sys node lock in
  if not ls.lk_held then invalid_arg "unlock: lock not held";
  ls.lk_held <- false;
  charge_protocol node (costs sys).Machine.Costs.lock_service;
  match ls.lk_waiter with
  | None -> () (* lazy release: keep the token until someone asks *)
  | Some (requester, req_vt) ->
      ls.lk_waiter <- None;
      ls.lk_token <- false;
      rc_when_drained sys node (fun drain_at ->
          send_grant sys node ~lock ~requester ~req_vt
            ~at:(Float.max drain_at node.mach.Machine.Node.ck.Machine.Node.clock))

(* ------------------------------------------------------------------ *)
(* Barriers                                                           *)

(* Discard every interval record (home-based protocols do this at each
   barrier: after the global exchange nobody can need them again). *)
let discard_interval_records node =
  Array.iteri
    (fun creator ivs ->
      List.iter (fun iv -> release_interval node iv) ivs;
      node.known.(creator) <- [])
    node.known

(* Once every node has applied its release the barrier's knowledge is fully
   distributed; that is the point where the paranoid coherence invariant is
   decidable (testing aid; see Invariants). *)
let note_release_applied sys =
  sys.barrier.bar_released <- sys.barrier.bar_released + 1;
  if sys.barrier.bar_released = sys.barrier.bar_target then begin
    sys.barrier.bar_released <- 0;
    Invariants.check sys
  end

(* A barrier completes once every *live* node has arrived: a crash-stopped
   node never will, and waiting for it would wedge the whole machine. A
   victim that arrived before its kill stays in the queue — its reported
   intervals are real committed history and must still be folded in. *)
let all_live_arrived sys =
  let bar = sys.barrier in
  let arrived id = List.exists (fun (from, _, _) -> from = id) bar.bar_queue in
  bar.bar_arrived > 0
  && Array.for_all (fun (n : node_state) -> (not (is_alive sys n.id)) || arrived n.id) sys.nodes

let apply_release sys node ~ivs ~max_vt ~gc ~resume_now =
  let home_waits = Intervals.apply_remote_intervals sys node ivs in
  Proto.Vclock.merge_into node.vt max_vt;
  node.mgr_vt <- Proto.Vclock.copy max_vt;
  if home_based sys then discard_interval_records node;
  note_release_applied sys;
  if resume_now then begin
    if gc then begin
      rebucket_block sys node Wait_gc;
      Gc.run sys node ~on_done:(fun () -> resume sys node ~at:node.mach.Machine.Node.ck.Machine.Node.clock)
    end
    else resume_after_home_waits sys node home_waits
  end

let complete_barrier sys =
  let bar = sys.barrier in
  let mgr = sys.nodes.(0) in
  let arrivals = bar.bar_queue in
  bar.bar_queue <- [];
  bar.bar_arrived <- 0;
  bar.bar_epoch <- bar.bar_epoch + 1;
  let gc = homeless_lazy sys && sys.cfg.Config.gc_threshold_bytes > 0 && bar.bar_mem_high in
  bar.bar_mem_high <- false;
  (* Fold everyone's knowledge into the manager: all records first, then the
     arrival timestamps. Merging a timestamp earlier would mark intervals as
     seen before their records (from a later arrival) were processed, and
     their invalidations would be lost. *)
  let all_ivs = List.concat_map (fun (_, _, ivs) -> ivs) arrivals in
  let mgr_waits = Intervals.apply_remote_intervals sys mgr all_ivs in
  List.iter (fun (_, vt, _) -> Proto.Vclock.merge_into mgr.vt vt) arrivals;
  let max_vt = Proto.Vclock.copy mgr.vt in
  (* The release-apply rendezvous counts the manager plus the live remote
     arrivals; a release addressed to a node that died after arriving is
     dropped by the dead-link guard and never applied. *)
  bar.bar_released <- 0;
  bar.bar_target <-
    1 + List.length (List.filter (fun (from, _, _) -> from <> 0 && is_alive sys from) arrivals);
  (* Adaptive home migration (extension): re-home drifting pages before the
     releases go out, so everyone resumes against the new directory. *)
  Migration.run sys all_ivs;
  let c = costs sys in
  event sys mgr (Obs.Trace.Barrier_release { epoch = bar.bar_epoch; gc });
  (* Releases to the other nodes, each with the records it lacks. *)
  List.iter
    (fun (from, vt, _) ->
      if from <> 0 && is_alive sys from then begin
        let node = sys.nodes.(from) in
        let ivs = Intervals.missing_intervals mgr vt in
        charge_protocol mgr c.Machine.Costs.barrier_service;
        let bytes = header_bytes + (4 * nprocs sys) + Intervals.intervals_bytes ivs in
        send sys ~src:mgr ~dst:from ~at:mgr.mach.Machine.Node.ck.Machine.Node.clock ~bytes ~update:0
          (fun arrival ->
            Machine.Node.sync_to node.mach arrival;
            apply_release sys node ~ivs ~max_vt ~gc ~resume_now:true)
      end)
    arrivals;
  (* The manager applies its own release locally. *)
  if home_based sys then discard_interval_records mgr;
  mgr.mgr_vt <- Proto.Vclock.copy max_vt;
  note_release_applied sys;
  if gc then begin
    rebucket_block sys mgr Wait_gc;
    Gc.run sys mgr ~on_done:(fun () -> resume sys mgr ~at:mgr.mach.Machine.Node.ck.Machine.Node.clock)
  end
  else resume_after_home_waits sys mgr mgr_waits

let arrive sys ~from ~vt ~ivs ~mem =
  let bar = sys.barrier in
  bar.bar_queue <- (from, vt, ivs) :: bar.bar_queue;
  bar.bar_arrived <- bar.bar_arrived + 1;
  if mem > sys.cfg.Config.gc_threshold_bytes then bar.bar_mem_high <- true;
  if all_live_arrived sys then complete_barrier sys

(* Failure-detector hook: a node just got declared dead. If the barrier was
   only waiting on the victim, release it now — otherwise every live node
   would block forever on an arrival that can no longer happen. *)
let note_node_death sys = if all_live_arrived sys then complete_barrier sys

let barrier sys node k =
  node.stats.Stats.c.Stats.barriers <- node.stats.Stats.c.Stats.barriers + 1;
  Stats.mark_epoch node.stats;
  Intervals.end_interval sys node;
  block sys node ~resource:sys.barrier.bar_epoch Wait_barrier k;
  (* Report the node's own new intervals; every other creator reports its
     own, so the manager hears about everything. *)
  let own =
    List.filter
      (fun (iv : Proto.Interval.t) -> iv.Proto.Interval.index > node.reported)
      node.known.(node.id)
  in
  node.reported <- Proto.Vclock.get node.vt node.id;
  let vt = Proto.Vclock.copy node.vt in
  let mem = Mem.Accounting.current node.stats.Stats.proto_mem in
  event sys node
    (Obs.Trace.Barrier_arrive { epoch = sys.barrier.bar_epoch; intervals = List.length own });
  if spans_on sys then event sys node (Obs.Trace.Mem_sample { bytes = mem });
  (* Eager RC: the barrier arrival waits for this node's update acks. *)
  rc_when_drained sys node (fun drain_at ->
      let at = Float.max drain_at node.mach.Machine.Node.ck.Machine.Node.clock in
      if node.id = 0 then arrive sys ~from:0 ~vt ~ivs:own ~mem
      else
        let bytes = header_bytes + (4 * nprocs sys) + Intervals.intervals_bytes own in
        send sys ~src:node ~dst:0 ~at ~bytes ~update:0 (fun arrival ->
            let c = costs sys in
            ignore
              (serve_compute sys sys.nodes.(0) ~arrival
                 ~cost:
                   (c.Machine.Costs.barrier_service
                   +. (c.Machine.Costs.write_notice_handle *. float_of_int (List.length own))));
            arrive sys ~from:node.id ~vt ~ivs:own ~mem))
