type breakdown = {
  mutable compute : float;
  mutable data : float;
  mutable lock : float;
  mutable barrier : float;
  mutable protocol : float;
  mutable gc : float;
}

let breakdown_zero () =
  { compute = 0.; data = 0.; lock = 0.; barrier = 0.; protocol = 0.; gc = 0. }

let breakdown_copy b =
  {
    compute = b.compute;
    data = b.data;
    lock = b.lock;
    barrier = b.barrier;
    protocol = b.protocol;
    gc = b.gc;
  }

let breakdown_sub a b =
  {
    compute = a.compute -. b.compute;
    data = a.data -. b.data;
    lock = a.lock -. b.lock;
    barrier = a.barrier -. b.barrier;
    protocol = a.protocol -. b.protocol;
    gc = a.gc -. b.gc;
  }

let breakdown_total b = b.compute +. b.data +. b.lock +. b.barrier +. b.protocol +. b.gc

type counters = {
  mutable read_misses : int;
  mutable write_faults : int;
  mutable diffs_created : int;
  mutable diffs_applied : int;
  mutable lock_acquires : int;
  mutable remote_acquires : int;
  mutable barriers : int;
  mutable messages : int;
  mutable update_bytes : int;
  mutable protocol_bytes : int;
  mutable page_fetches : int;
  mutable gc_runs : int;
  mutable home_migrations : int;
  mutable msg_drops : int;
  mutable msg_retransmits : int;
  mutable msg_acks : int;
  mutable msg_dup_dropped : int;
  mutable batch_prefetches : int;
  mutable repl_updates : int;
  mutable repl_invals : int;
  mutable repl_bytes : int;
  mutable failovers : int;
  mutable msg_peer_dead : int;
  mutable msg_gave_up : int;
  mutable suspicions : int;
  mutable refutations : int;
  mutable fenced_fetches : int;
}

let counters_copy c =
  {
    read_misses = c.read_misses;
    write_faults = c.write_faults;
    diffs_created = c.diffs_created;
    diffs_applied = c.diffs_applied;
    lock_acquires = c.lock_acquires;
    remote_acquires = c.remote_acquires;
    barriers = c.barriers;
    messages = c.messages;
    update_bytes = c.update_bytes;
    protocol_bytes = c.protocol_bytes;
    page_fetches = c.page_fetches;
    gc_runs = c.gc_runs;
    home_migrations = c.home_migrations;
    msg_drops = c.msg_drops;
    msg_retransmits = c.msg_retransmits;
    msg_acks = c.msg_acks;
    msg_dup_dropped = c.msg_dup_dropped;
    batch_prefetches = c.batch_prefetches;
    repl_updates = c.repl_updates;
    repl_invals = c.repl_invals;
    repl_bytes = c.repl_bytes;
    failovers = c.failovers;
    msg_peer_dead = c.msg_peer_dead;
    msg_gave_up = c.msg_gave_up;
    suspicions = c.suspicions;
    refutations = c.refutations;
    fenced_fetches = c.fenced_fetches;
  }

let counters_sub a b =
  {
    read_misses = a.read_misses - b.read_misses;
    write_faults = a.write_faults - b.write_faults;
    diffs_created = a.diffs_created - b.diffs_created;
    diffs_applied = a.diffs_applied - b.diffs_applied;
    lock_acquires = a.lock_acquires - b.lock_acquires;
    remote_acquires = a.remote_acquires - b.remote_acquires;
    barriers = a.barriers - b.barriers;
    messages = a.messages - b.messages;
    update_bytes = a.update_bytes - b.update_bytes;
    protocol_bytes = a.protocol_bytes - b.protocol_bytes;
    page_fetches = a.page_fetches - b.page_fetches;
    gc_runs = a.gc_runs - b.gc_runs;
    home_migrations = a.home_migrations - b.home_migrations;
    msg_drops = a.msg_drops - b.msg_drops;
    msg_retransmits = a.msg_retransmits - b.msg_retransmits;
    msg_acks = a.msg_acks - b.msg_acks;
    msg_dup_dropped = a.msg_dup_dropped - b.msg_dup_dropped;
    batch_prefetches = a.batch_prefetches - b.batch_prefetches;
    repl_updates = a.repl_updates - b.repl_updates;
    repl_invals = a.repl_invals - b.repl_invals;
    repl_bytes = a.repl_bytes - b.repl_bytes;
    failovers = a.failovers - b.failovers;
    msg_peer_dead = a.msg_peer_dead - b.msg_peer_dead;
    msg_gave_up = a.msg_gave_up - b.msg_gave_up;
    suspicions = a.suspicions - b.suspicions;
    refutations = a.refutations - b.refutations;
    fenced_fetches = a.fenced_fetches - b.fenced_fetches;
  }

let counters_zero () =
  {
    read_misses = 0;
    write_faults = 0;
    diffs_created = 0;
    diffs_applied = 0;
    lock_acquires = 0;
    remote_acquires = 0;
    barriers = 0;
    messages = 0;
    update_bytes = 0;
    protocol_bytes = 0;
    page_fetches = 0;
    gc_runs = 0;
    home_migrations = 0;
    msg_drops = 0;
    msg_retransmits = 0;
    msg_acks = 0;
    msg_dup_dropped = 0;
    batch_prefetches = 0;
    repl_updates = 0;
    repl_invals = 0;
    repl_bytes = 0;
    failovers = 0;
    msg_peer_dead = 0;
    msg_gave_up = 0;
    suspicions = 0;
    refutations = 0;
    fenced_fetches = 0;
  }

type t = {
  b : breakdown;
  c : counters;
  proto_mem : Mem.Accounting.t;
  mutable epochs : breakdown list;
}

let create () =
  {
    b = breakdown_zero ();
    c = counters_zero ();
    proto_mem = Mem.Accounting.create ();
    epochs = [];
  }

let mark_epoch t = t.epochs <- breakdown_copy t.b :: t.epochs

let epoch_deltas t =
  let snaps = List.rev t.epochs in
  let rec deltas prev = function
    | [] -> []
    | snap :: rest -> breakdown_sub snap prev :: deltas snap rest
  in
  deltas (breakdown_zero ()) snaps

(* Nearest-rank quantile: the smallest element with cumulative rank >=
   ceil (p * n), i.e. sorted.(ceil (p*n) - 1) with the index clamped into
   [0, n-1]. No interpolation: the result is always an observed value, and
   p = 1.0 is the maximum. None on the empty array — an absent sample set
   must stay distinguishable from a genuine 0-valued one. *)
let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then None
  else
    Some sorted.(min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)))

let pp_breakdown ppf b =
  Format.fprintf ppf
    "@[<h>compute=%.0f data=%.0f lock=%.0f barrier=%.0f proto=%.0f gc=%.0f@]"
    b.compute b.data b.lock b.barrier b.protocol b.gc
