type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let make n =
  let a = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0.0;
  a

(* Redeclared primitives, specialized to [t]: without flambda, a wrapper
   function would not reliably inline across modules, and a non-inlined
   call boxes the float. As externals, every use site compiles to a direct
   (unboxed) float64 load or store. *)
external length : t -> int = "%caml_ba_dim_1"

external get : t -> int -> float = "%caml_ba_ref_1"

external set : t -> int -> float -> unit = "%caml_ba_set_1"

external unsafe_get : t -> int -> float = "%caml_ba_unsafe_ref_1"

external unsafe_set : t -> int -> float -> unit = "%caml_ba_unsafe_set_1"

let fill (a : t) v = Bigarray.Array1.fill a v

let blit ~src ~dst = Bigarray.Array1.blit src dst

let copy (a : t) =
  let b = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (length a) in
  Bigarray.Array1.blit a b;
  b

let of_array xs =
  let a = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (Array.length xs) in
  Array.iteri (fun i x -> Bigarray.Array1.unsafe_set a i x) xs;
  a

let to_array (a : t) = Array.init (length a) (fun i -> Bigarray.Array1.unsafe_get a i)

let iter f (a : t) =
  for i = 0 to length a - 1 do
    f (Bigarray.Array1.unsafe_get a i)
  done

let iteri f (a : t) =
  for i = 0 to length a - 1 do
    f i (Bigarray.Array1.unsafe_get a i)
  done
