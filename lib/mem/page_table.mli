(** Per-node simulated page table.

    Every node has its own table. An entry tracks the node's local copy of
    the page (if any), its software protection state, the twin used for diff
    creation, and whether the page was written during the current interval. *)

type protection = No_access | Read_only | Read_write

type entry = {
  page : int;
  mutable data : Words.t option;  (** Local copy; [None] = not cached. *)
  mutable prot : protection;
  mutable twin : Words.t option;
  mutable dirty : bool;  (** Written during the current interval. *)
  mutable mirror : Words.t option;
      (** Write-through target: stores to this page are replicated into this
          array as they happen (the automatic-update hardware of AURC). *)
  mutable mirror_pending : int;
      (** Words written through since the last flush accounting. *)
}

type t

val create : Layout.t -> t

val layout : t -> Layout.t

(** Highest allocated page id + 1. *)
val npages : t -> int

(** [ensure t page] returns the entry for [page], creating an uncached,
    inaccessible one if needed. *)
val ensure : t -> int -> entry

(** [find t page] is the entry if the page was ever touched, without
    creating or growing anything (safe for read-only inspection). *)
val find : t -> int -> entry option

(** [entry t page] like {!ensure} but raises [Invalid_argument] if the page
    was never touched on this node. *)
val entry : t -> int -> entry

(** All entries with a local copy. *)
val cached_pages : t -> entry list

(** [data_exn e] returns the local copy of [e].
    @raise Invalid_argument if the page is not cached. *)
val data_exn : entry -> Words.t

(** Allocate and attach a zero-filled local copy. *)
val attach_copy : t -> entry -> Words.t

(** Make a twin (clean copy) of the current data. *)
val make_twin : entry -> unit

(** Drop the twin. *)
val drop_twin : entry -> unit

val iter : t -> (entry -> unit) -> unit
