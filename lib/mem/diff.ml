(* Changed words as parallel (offsets, values) arrays rather than an array
   of boxed (int * float) pairs: both arrays are flat (the float array is
   unboxed), so building a diff allocates exactly two blocks regardless of
   how many words changed. *)
type t = { page : int; offsets : int array; values : float array }

let header_bytes = 16

let entry_bytes = 12 (* 4-byte offset + 8-byte word *)

(* Bit-wise float equality without boxing on the hot paths. [=] handles
   the two common cases for free: equal non-zero floats have equal bits
   (and NaN is never [=]), and ordinarily-unequal non-NaN floats have
   unequal bits. That leaves zeros, where [1. /. a] recovers the sign
   without going through [Int64.bits_of_float] (which boxes), and NaNs,
   where the old payload-exact comparison is kept (rare enough to box).

   This comparison is written inline in [create]'s loops rather than as a
   helper: without flambda a call with float arguments boxes both floats,
   which measured at ~10 minor words per compared word. *)

let word_count t = Array.length t.offsets

let size_bytes t = header_bytes + (entry_bytes * Array.length t.offsets)

(* The typed event for a diff construction, for callers that observe the
   operation (the node and timestamp attribution live with the caller). *)
let created_event t = Obs.Trace.Diff_create { page = t.page; words = word_count t; bytes = size_bytes t }

(* Two passes — count, then fill exactly-sized arrays — so creation never
   builds an intermediate list. *)
let create ~page ~twin ~current =
  let n = Words.length current in
  if Words.length twin <> n then
    invalid_arg "Diff.create: twin and current differ in length";
  let count = ref 0 in
  for i = 0 to n - 1 do
    let a = Words.unsafe_get twin i and b = Words.unsafe_get current i in
    let same =
      if a = b then a <> 0.0 || 1.0 /. a = 1.0 /. b
      else a <> a && b <> b && Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
    in
    if not same then incr count
  done;
  let offsets = Array.make !count 0 in
  let values = Array.make !count 0.0 in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let a = Words.unsafe_get twin i and b = Words.unsafe_get current i in
    let same =
      if a = b then a <> 0.0 || 1.0 /. a = 1.0 /. b
      else a <> a && b <> b && Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
    in
    if not same then begin
      Array.unsafe_set offsets !j i;
      Array.unsafe_set values !j b;
      incr j
    end
  done;
  { page; offsets; values }

let apply ?obs t data =
  let n = Words.length data in
  for k = 0 to Array.length t.offsets - 1 do
    let offset = Array.unsafe_get t.offsets k in
    if offset < 0 || offset >= n then invalid_arg "Diff.apply: offset out of range";
    Words.unsafe_set data offset (Array.unsafe_get t.values k)
  done;
  match obs with
  | Some emit ->
      emit
        (Obs.Trace.Diff_apply { page = t.page; words = word_count t; bytes = size_bytes t })
  | None -> ()

let is_empty t = Array.length t.offsets = 0

let merge older newer =
  if older.page <> newer.page then invalid_arg "Diff.merge: different pages";
  (* Merge two sorted (by offset) entry sequences; the newer diff wins on
     overlap. Same two-pass shape as [create]: size first, then fill. *)
  let na = Array.length older.offsets and nb = Array.length newer.offsets in
  let overlap = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let oa = older.offsets.(!i) and ob = newer.offsets.(!j) in
    if oa < ob then incr i
    else if ob < oa then incr j
    else begin
      incr overlap;
      incr i;
      incr j
    end
  done;
  let n = na + nb - !overlap in
  let offsets = Array.make n 0 in
  let values = Array.make n 0.0 in
  let k = ref 0 in
  let put offset value =
    offsets.(!k) <- offset;
    values.(!k) <- value;
    incr k
  in
  i := 0;
  j := 0;
  while !i < na || !j < nb do
    if !i >= na then begin
      put newer.offsets.(!j) newer.values.(!j);
      incr j
    end
    else if !j >= nb then begin
      put older.offsets.(!i) older.values.(!i);
      incr i
    end
    else begin
      let oa = older.offsets.(!i) and ob = newer.offsets.(!j) in
      if oa < ob then begin
        put oa older.values.(!i);
        incr i
      end
      else if ob < oa then begin
        put ob newer.values.(!j);
        incr j
      end
      else begin
        put ob newer.values.(!j);
        incr i;
        incr j
      end
    end
  done;
  { page = older.page; offsets; values }

let iter f t =
  for k = 0 to Array.length t.offsets - 1 do
    f (Array.unsafe_get t.offsets k) (Array.unsafe_get t.values k)
  done

let pp ppf t =
  Format.fprintf ppf "@[<h>diff(page %d: %d words)@]" t.page (Array.length t.offsets)
