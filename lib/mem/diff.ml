type t = { page : int; words : (int * float) array }

let header_bytes = 16

let entry_bytes = 12 (* 4-byte offset + 8-byte word *)

let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let word_count t = Array.length t.words

let size_bytes t = header_bytes + (entry_bytes * Array.length t.words)

(* The typed event for a diff construction, for callers that observe the
   operation (the node and timestamp attribution live with the caller). *)
let created_event t = Obs.Trace.Diff_create { page = t.page; words = word_count t; bytes = size_bytes t }

let create ~page ~twin ~current =
  if Array.length twin <> Array.length current then
    invalid_arg "Diff.create: twin and current differ in length";
  let changed = ref [] in
  let count = ref 0 in
  for i = Array.length current - 1 downto 0 do
    if not (same_bits twin.(i) current.(i)) then begin
      changed := (i, current.(i)) :: !changed;
      incr count
    end
  done;
  { page; words = Array.of_list !changed }

let apply ?obs t data =
  Array.iter (fun (offset, value) -> data.(offset) <- value) t.words;
  match obs with
  | Some emit ->
      emit
        (Obs.Trace.Diff_apply { page = t.page; words = word_count t; bytes = size_bytes t })
  | None -> ()

let is_empty t = Array.length t.words = 0

let merge older newer =
  if older.page <> newer.page then invalid_arg "Diff.merge: different pages";
  (* Merge two sorted (by offset) entry arrays; the newer diff wins on
     overlap. *)
  let na = Array.length older.words and nb = Array.length newer.words in
  let acc = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    if !i >= na then begin
      acc := newer.words.(!j) :: !acc;
      incr j
    end
    else if !j >= nb then begin
      acc := older.words.(!i) :: !acc;
      incr i
    end
    else begin
      let oa, _ = older.words.(!i) and ob, _ = newer.words.(!j) in
      if oa < ob then begin
        acc := older.words.(!i) :: !acc;
        incr i
      end
      else if ob < oa then begin
        acc := newer.words.(!j) :: !acc;
        incr j
      end
      else begin
        acc := newer.words.(!j) :: !acc;
        incr i;
        incr j
      end
    end
  done;
  { page = older.page; words = Array.of_list (List.rev !acc) }

let pp ppf t =
  Format.fprintf ppf "@[<h>diff(page %d: %d words)@]" t.page (Array.length t.words)
