type protection = No_access | Read_only | Read_write

type entry = {
  page : int;
  mutable data : Words.t option;
  mutable prot : protection;
  mutable twin : Words.t option;
  mutable dirty : bool;
  mutable mirror : Words.t option;
  mutable mirror_pending : int;
}

type t = { layout : Layout.t; mutable entries : entry option array; mutable npages : int }

let create layout = { layout; entries = [||]; npages = 0 }

let layout t = t.layout

let npages t = t.npages

let grow t page =
  let capacity = Array.length t.entries in
  if page >= capacity then begin
    let capacity' = max 64 (max (2 * capacity) (page + 1)) in
    let entries' = Array.make capacity' None in
    Array.blit t.entries 0 entries' 0 capacity;
    t.entries <- entries'
  end;
  if page >= t.npages then t.npages <- page + 1

let ensure t page =
  grow t page;
  match t.entries.(page) with
  | Some e -> e
  | None ->
      let e =
        {
          page;
          data = None;
          prot = No_access;
          twin = None;
          dirty = false;
          mirror = None;
          mirror_pending = 0;
        }
      in
      t.entries.(page) <- Some e;
      e

let find t page = if page < 0 || page >= t.npages then None else t.entries.(page)

let entry t page =
  if page < 0 || page >= t.npages then
    invalid_arg (Printf.sprintf "Page_table.entry: page %d out of range" page)
  else
    match t.entries.(page) with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "Page_table.entry: page %d never touched" page)

let data_exn e =
  match e.data with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Page_table.data_exn: page %d not cached" e.page)

let attach_copy t e =
  let data = Words.make (Layout.page_words t.layout) in
  e.data <- Some data;
  data

let make_twin e = e.twin <- Some (Words.copy (data_exn e))

let drop_twin e = e.twin <- None

let iter t f =
  for page = 0 to t.npages - 1 do
    match t.entries.(page) with Some e -> f e | None -> ()
  done

let cached_pages t =
  let acc = ref [] in
  iter t (fun e -> if e.data <> None then acc := e :: !acc);
  List.rev !acc
