(** Page word storage: a flat [float64] Bigarray.

    Page data, twins and mirrors used to be [float array]; the Bigarray
    representation keeps the same unboxed flat layout but lets the hot
    access paths ([Svm.Api.read]/[write], {!Diff.create}) compile to direct
    loads and stores with no per-word boxing, and its contents are ignored
    by the OCaml GC (no scan cost for hundreds of megabytes of simulated
    memory at Full scale).

    [get]/[set] are bounds-checked; the [unsafe_] variants are not and are
    reserved for loops whose index range is already validated against
    {!length}. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Zero-filled. *)
val make : int -> t

external length : t -> int = "%caml_ba_dim_1"

external get : t -> int -> float = "%caml_ba_ref_1"

external set : t -> int -> float -> unit = "%caml_ba_set_1"

external unsafe_get : t -> int -> float = "%caml_ba_unsafe_ref_1"

external unsafe_set : t -> int -> float -> unit = "%caml_ba_unsafe_set_1"

val fill : t -> float -> unit

(** [blit ~src ~dst] copies [src] into [dst]; lengths must match. *)
val blit : src:t -> dst:t -> unit

val copy : t -> t

val of_array : float array -> t

val to_array : t -> float array

val iter : (float -> unit) -> t -> unit

val iteri : (int -> float -> unit) -> t -> unit
