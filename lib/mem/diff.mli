(** Word-granularity diffs.

    A diff records the words of a page that changed relative to its twin,
    as parallel [offsets]/[values] arrays in increasing offset order (both
    flat — no per-word boxing). Applying a diff overwrites exactly those
    words, which is what lets multiple concurrent writers of disjoint
    words on the same page merge correctly. *)

type t = private { page : int; offsets : int array; values : float array }

(** [create ~page ~twin ~current] computes the diff between [twin] (the clean
    copy) and [current] (the dirty copy). Float comparison is bit-wise so
    that a write of the same value is (correctly) not treated as a change,
    matching memcmp-based diffing. Both must have equal length. *)
val create : page:int -> twin:Words.t -> current:Words.t -> t

(** [apply ?obs t data] writes the diff's words into [data]. When [obs] is
    given, a typed {!Obs.Trace.Diff_apply} event (page, changed words, wire
    bytes) is emitted through it — the structured-observability hook the
    simulator's runtime threads down here so every observed diff
    application is attributed to the node whose copy it mutates. *)
val apply : ?obs:(Obs.Trace.kind -> unit) -> t -> Words.t -> unit

(** The {!Obs.Trace.Diff_create} event describing this diff, for callers
    that observe diff construction. *)
val created_event : t -> Obs.Trace.kind

val is_empty : t -> bool

val word_count : t -> int

(** On-the-wire / in-memory size: one word of header per entry pair plus a
    small fixed header, matching the paper's run-length encoded diffs. *)
val size_bytes : t -> int

(** [merge older newer] produces a diff equivalent to applying [older] then
    [newer]. Both must be diffs of the same page. *)
val merge : t -> t -> t

(** [iter f t] calls [f offset value] for each entry in offset order. *)
val iter : (int -> float -> unit) -> t -> unit

val pp : Format.formatter -> t -> unit
