type t = int array

let create ~nprocs = Array.make nprocs (-1)

let copy = Array.copy

let nprocs = Array.length

let get t i = t.(i)

let set t i v = t.(i) <- v

let merge_into t other =
  if Array.length t <> Array.length other then
    invalid_arg "Vclock.merge_into: size mismatch";
  for i = 0 to Array.length t - 1 do
    if other.(i) > t.(i) then t.(i) <- other.(i)
  done

let leq a b =
  if Array.length a <> Array.length b then invalid_arg "Vclock.leq: size mismatch";
  let rec go i = i >= Array.length a || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let dominates a b = leq b a

let is_initial t = Array.for_all (fun x -> x = -1) t

let equal a b = a = b

let size_bytes t = 4 * Array.length t

let pp ppf t =
  Format.fprintf ppf "@[<h><%a>@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)
