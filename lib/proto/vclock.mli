(** Vector timestamps over process interval indices.

    [vt.(i) = x] means "all intervals of processor [i] up to and including
    index [x] are known". Indices start at 0; the empty history is [-1]. *)

type t

val create : nprocs:int -> t

val copy : t -> t

val nprocs : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit

(** Pointwise maximum, in place on the first argument. *)
val merge_into : t -> t -> unit

(** [leq a b] iff [a.(i) <= b.(i)] for all [i] (the happened-before-or-equal
    partial order on cuts). *)
val leq : t -> t -> bool

(** [dominates a b] = [leq b a]. *)
val dominates : t -> t -> bool

(** No intervals recorded: every component still at the initial [-1]. *)
val is_initial : t -> bool

val equal : t -> t -> bool

(** Wire/memory footprint: 4 bytes per entry. *)
val size_bytes : t -> int

val pp : Format.formatter -> t -> unit
