(* Command-line driver: run one benchmark application under one protocol on
   a simulated machine and print the measured report.

   Example:
     dune exec bin/svm_run.exe -- --app lu --protocol hlrc --nodes 32
     dune exec bin/svm_run.exe -- --app raytrace --protocol lrc --nodes 8 --trace *)

open Cmdliner

let protocol_choices = String.concat "|" Svm.Config.protocol_strings

let run app_name proto_name nprocs scale_name verify trace seed breakdown migrate coproc_locks
    json_out trace_out trace_format trace_cap profile drop_rate dup_rate jitter straggler
    fault_seed fault_batch kill_node kill_at detect_delay pause_node pause_at resume_at
    partition_group partition_at heal_at detector_name hb_interval hb_timeout
    replicas repl_scheme_name metrics metrics_interval metrics_out kv =
  let scale =
    match String.lowercase_ascii scale_name with
    | "test" -> Apps.Registry.Test
    | "bench" -> Apps.Registry.Bench
    | "full" -> Apps.Registry.Full
    | other -> failwith (Printf.sprintf "unknown scale %S (test|bench|full)" other)
  in
  let protocol =
    match Svm.Config.protocol_of_string proto_name with
    | Some p -> p
    | None ->
        failwith (Printf.sprintf "unknown protocol %S (%s)" proto_name protocol_choices)
  in
  let trace_fmt =
    match Obs.Export.format_of_string trace_format with
    | Some fmt -> fmt
    | None -> failwith (Printf.sprintf "unknown trace format %S (jsonl|chrome)" trace_format)
  in
  let kv_ops, kv_rate, kv_keys, kv_theta, kv_write_ratio, kv_txn_ratio, kv_buckets = kv in
  let kv_given =
    kv_ops <> None || kv_rate <> None || kv_keys <> None || kv_theta <> None
    || kv_write_ratio <> None || kv_txn_ratio <> None || kv_buckets <> None
  in
  let app =
    (* --kv-* knobs patch the scale's default kvstore parameters; for any
       other app they are a mistake, not silently ignored. *)
    if String.lowercase_ascii app_name = Apps.Kvstore.name then begin
      let base = Apps.Registry.kvstore_params scale in
      let ov v dflt = Option.value v ~default:dflt in
      let tp = base.Apps.Kvstore.traffic in
      let tp =
        {
          tp with
          Traffic.ops = ov kv_ops tp.Traffic.ops;
          rate = ov kv_rate tp.Traffic.rate;
          keys = ov kv_keys tp.Traffic.keys;
          theta = ov kv_theta tp.Traffic.theta;
          write_ratio = ov kv_write_ratio tp.Traffic.write_ratio;
          txn_ratio = ov kv_txn_ratio tp.Traffic.txn_ratio;
        }
      in
      Apps.Registry.kvstore_of_params
        { base with Apps.Kvstore.buckets = ov kv_buckets base.Apps.Kvstore.buckets; traffic = tp }
    end
    else begin
      if kv_given then
        failwith
          (Printf.sprintf "--kv-* flags apply only to --app %s (got --app %s)"
             Apps.Kvstore.name app_name);
      match Apps.Registry.find app_name scale with
      | Some a -> a
      | None ->
          failwith
            (Printf.sprintf "unknown application %S (%s)" app_name
               (String.concat "|" Apps.Registry.names))
    end
  in
  let repl_scheme =
    match Svm.Config.repl_scheme_of_string repl_scheme_name with
    | Some s -> s
    | None ->
        failwith
          (Printf.sprintf "unknown replication scheme %S (%s)" repl_scheme_name
             (String.concat "|" Svm.Config.repl_scheme_strings))
  in
  let detector =
    match Svm.Config.detector_of_string detector_name with
    | Some d -> d
    | None ->
        failwith
          (Printf.sprintf "unknown detector %S (%s)" detector_name
             (String.concat "|" Svm.Config.detector_strings))
  in
  let faults =
    (match kill_node with
    | None -> []
    | Some node -> [ Machine.Chaos.Kill { node; at = kill_at } ])
    @ (match pause_node with
      | None -> []
      | Some node -> [ Machine.Chaos.Pause { node; from_ = pause_at; until = resume_at } ])
    @
    match partition_group with
    | None -> []
    | Some group ->
        [ Machine.Chaos.Partition { group; from_ = partition_at; until = heal_at } ]
  in
  let chaos =
    {
      Machine.Chaos.drop_rate;
      dup_rate;
      jitter;
      straggler;
      fault_seed;
      faults;
      detect_delay;
    }
  in
  (match Machine.Chaos.validate chaos with
  | Ok () -> ()
  | Error msg -> failwith msg);
  (* --metrics / --metrics-out need the recorder on; default to a 1 ms
     cadence when --metrics-interval was not given. *)
  let metrics_interval =
    if metrics_interval > 0. || not (metrics || metrics_out <> None) then metrics_interval
    else 1000.0
  in
  let cfg =
    Svm.Config.make ~home_migration:migrate ~coproc_locks ~nprocs ~seed ~chaos
      ~trace_cap ~trace_spans:profile ~fault_batch ~replicas ~repl_scheme
      ~detector ~hb_interval ~hb_timeout ~metrics_interval protocol
  in
  let trace_fn =
    if trace then Some (fun t s -> Printf.printf "[%12.1f us] %s\n" t s) else None
  in
  let sink =
    if trace_out <> None || profile then
      Some (Obs.Trace.create_sink ~capacity:cfg.Svm.Config.trace_cap ())
    else None
  in
  let t0 = Unix.gettimeofday () in
  let r = Svm.Runtime.run ?trace:trace_fn ?sink cfg (app.Apps.Registry.body ~verify) in
  let wall = Unix.gettimeofday () -. t0 in
  let critical_path =
    match sink with
    | Some sink when profile -> Some (Obs.Critical_path.analyze sink)
    | _ -> None
  in
  let meta =
    {
      Svm.Report_json.rm_app = app.Apps.Registry.name;
      rm_scale = String.lowercase_ascii scale_name;
    }
  in
  (match json_out with
  | None -> ()
  | Some file -> Svm.Report_json.write ~meta ?critical_path ?trace:sink file r);
  (match (trace_out, sink) with
  | Some file, Some sink -> Obs.Export.write_file trace_fmt file sink
  | _ -> ());
  (match (metrics_out, r.Svm.Runtime.r_metrics) with
  | Some file, Some m -> Obs.Export.write_metrics_csv file m
  | _ -> ());
  Format.printf "application : %s (%s)@." app.Apps.Registry.name app.Apps.Registry.description;
  Format.printf "protocol    : %s, %d nodes@." (Svm.Config.protocol_name protocol) nprocs;
  Format.printf "elapsed     : %.3f simulated seconds (%.2f s wall, %d events)@."
    (r.Svm.Runtime.r_elapsed /. 1e6) wall r.Svm.Runtime.r_events;
  Format.printf "shared mem  : %d KB application, %d KB peak protocol (max node)@."
    (r.Svm.Runtime.r_shared_bytes / 1024)
    (Svm.Runtime.max_mem_peak r / 1024);
  Format.printf "traffic     : %d messages, %.2f MB updates, %.2f MB protocol@."
    (Svm.Runtime.total_messages r)
    (float_of_int (Svm.Runtime.total_update_bytes r) /. 1048576.0)
    (float_of_int (Svm.Runtime.total_protocol_bytes r) /. 1048576.0);
  (match r.Svm.Runtime.r_ops with
  | None -> ()
  | Some o ->
      let n = o.Svm.Runtime.or_gets + o.Svm.Runtime.or_puts + o.Svm.Runtime.or_txns in
      let throughput =
        if r.Svm.Runtime.r_elapsed > 0. then
          float_of_int n /. (r.Svm.Runtime.r_elapsed /. 1_000_000.)
        else 0.
      in
      Format.printf "serving     : %d ops (%d get / %d put / %d txn), %.0f ops/s@." n
        o.Svm.Runtime.or_gets o.Svm.Runtime.or_puts o.Svm.Runtime.or_txns throughput;
      let lats = o.Svm.Runtime.or_lats in
      let pct q = match Svm.Stats.quantile lats q with Some v -> v | None -> 0. in
      if Array.length lats > 0 then
        Format.printf "op latency  : p50 %.0f us, p99 %.0f us, max %.0f us@." (pct 0.5)
          (pct 0.99)
          lats.(Array.length lats - 1));
  if Svm.Config.chaos_enabled cfg then begin
    let sum field =
      Array.fold_left (fun acc n -> acc + field n.Svm.Runtime.nr_counters) 0 r.Svm.Runtime.r_nodes
    in
    Format.printf "chaos       : %d dropped, %d retransmitted, %d acks, %d duplicates discarded@."
      (sum (fun c -> c.Svm.Stats.msg_drops))
      (sum (fun c -> c.Svm.Stats.msg_retransmits))
      (sum (fun c -> c.Svm.Stats.msg_acks))
      (sum (fun c -> c.Svm.Stats.msg_dup_dropped));
    Format.printf "mem digest  : %016Lx@." r.Svm.Runtime.r_mem_digest
  end;
  (match kill_node with
  | None -> ()
  | Some victim ->
      let at = kill_at in
      let sum field =
        Array.fold_left
          (fun acc n -> acc + field n.Svm.Runtime.nr_counters)
          0 r.Svm.Runtime.r_nodes
      in
      let stalls = r.Svm.Runtime.r_failover_stalls in
      Format.printf
        "failover    : node %d killed at %.0f us; %d page(s) failed over, %d message(s) to \
         dead peers@."
        victim at
        (sum (fun c -> c.Svm.Stats.failovers))
        (sum (fun c -> c.Svm.Stats.msg_peer_dead));
      if stalls <> [] then
        Format.printf "recovery    : %d re-routed fetch(es), max stall %.0f us@."
          (List.length stalls)
          (List.fold_left Float.max 0. stalls);
      Format.printf "mem digest  : %016Lx@." r.Svm.Runtime.r_mem_digest);
  if detector = Svm.Config.Heartbeat then begin
    let sum field =
      Array.fold_left
        (fun acc n -> acc + field n.Svm.Runtime.nr_counters)
        0 r.Svm.Runtime.r_nodes
    in
    Format.printf
      "detector    : heartbeat every %.0f us, timeout %.0f us; %d suspicion(s), %d \
       refuted, %d fenced fetch(es)@."
      cfg.Svm.Config.hb_interval
      (Svm.Config.hb_timeout_effective cfg)
      (sum (fun c -> c.Svm.Stats.suspicions))
      (sum (fun c -> c.Svm.Stats.refutations))
      (sum (fun c -> c.Svm.Stats.fenced_fetches))
  end;
  if replicas > 1 then begin
    let sum field =
      Array.fold_left
        (fun acc n -> acc + field n.Svm.Runtime.nr_counters)
        0 r.Svm.Runtime.r_nodes
    in
    Format.printf "replication : %d replicas (%s): %d updates, %d invals, %.2f MB@." replicas
      (Svm.Config.repl_scheme_name repl_scheme)
      (sum (fun c -> c.Svm.Stats.repl_updates))
      (sum (fun c -> c.Svm.Stats.repl_invals))
      (float_of_int (sum (fun c -> c.Svm.Stats.repl_bytes)) /. 1048576.0)
  end;
  if verify then Format.printf "verification: passed (results match the sequential reference)@.";
  (match r.Svm.Runtime.r_metrics with
  | Some m when metrics ->
      Format.printf "@.metrics     : %g us buckets, %d intervals@." (Obs.Metrics.interval m)
        (Obs.Metrics.buckets m);
      List.iter
        (fun (name, kind, _rows) ->
          match Obs.Metrics.series_total m name with
          | None -> ()
          | Some tot ->
              let label, value =
                match kind with
                | Obs.Metrics.Counter -> ("total", Array.fold_left ( +. ) 0. tot)
                | Obs.Metrics.Gauge ->
                    ("last", if Array.length tot = 0 then 0. else tot.(Array.length tot - 1))
              in
              Format.printf "  %-18s %s  %s %.0f@." name (Obs.Metrics.spark ~width:40 tot)
                label value)
        (Obs.Metrics.series m);
      Format.printf "@.  latency (us)           count       p50       p90       p99       max@.";
      List.iter
        (fun (name, h) ->
          let st = Obs.Metrics.histogram_stats h in
          let pct = function Some v -> Printf.sprintf "%9.0f" v | None -> "        -" in
          Format.printf "  %-20s %8d %s %s %s %9.0f@." name st.Obs.Metrics.hs_count
            (pct st.Obs.Metrics.hs_p50) (pct st.Obs.Metrics.hs_p90)
            (pct st.Obs.Metrics.hs_p99) st.Obs.Metrics.hs_max)
        (Obs.Metrics.histograms m);
      let heats = Obs.Metrics.heatmaps m in
      (match List.assoc_opt "page_faults" heats with
      | Some fh ->
          let by_heat =
            List.sort
              (fun (p1, v1) (p2, v2) -> if v1 = v2 then compare p1 p2 else compare v2 v1)
              (Obs.Metrics.heatmap_entries fh)
          in
          let top = List.filteri (fun i _ -> i < 5) by_heat in
          if top <> [] then begin
            Format.printf "@.  hot pages (page: faults/diffs@@home):";
            List.iter
              (fun (page, v) ->
                let cell name =
                  Option.bind (List.assoc_opt name heats) (fun hm ->
                      Obs.Metrics.heatmap_find hm page)
                in
                let diffs = Option.value ~default:0. (cell "page_diffs") in
                match cell "page_home" with
                | Some h ->
                    Format.printf " %d:%.0f/%.0f@@%d" page v diffs (int_of_float h)
                | None -> Format.printf " %d:%.0f/%.0f" page v diffs)
              top;
            Format.printf "@."
          end
      | None -> ())
  | _ -> ());
  (match (critical_path, sink) with
  | Some cp, Some sink ->
      Format.printf "@.%s" (Obs.Critical_path.render cp);
      if Obs.Trace.dropped sink > 0 then begin
        let detail =
          Obs.Trace.dropped_by_kind sink
          |> List.map (fun (k, n) -> Printf.sprintf "%s %d" k n)
          |> String.concat ", "
        in
        Format.printf
          "warning     : trace sink overflowed (%d events dropped: %s; raise --trace-cap)@."
          (Obs.Trace.dropped sink) detail
      end
  | _ -> ());
  if breakdown then begin
    Format.printf "@.per-node breakdowns:@.";
    Array.iter
      (fun n ->
        Format.printf "  node %2d: %10.0f us  %a@." n.Svm.Runtime.nr_id n.Svm.Runtime.nr_elapsed
          Svm.Stats.pp_breakdown n.Svm.Runtime.nr_breakdown)
      r.Svm.Runtime.r_nodes
  end

let app_arg =
  let doc = "Application: " ^ String.concat ", " Apps.Registry.names ^ "." in
  Arg.(value & opt string "lu" & info [ "a"; "app" ] ~docv:"APP" ~doc)

let proto_arg =
  let doc = "Protocol: " ^ String.concat ", " Svm.Config.protocol_strings ^ "." in
  Arg.(value & opt string "hlrc" & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)

let nodes_arg =
  let doc = "Number of nodes to simulate." in
  Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let scale_arg =
  let doc = "Problem scale: test, bench or full." in
  Arg.(value & opt string "bench" & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let verify_arg =
  let doc = "Check results against the sequential reference (default true)." in
  Arg.(value & opt bool true & info [ "verify" ] ~docv:"BOOL" ~doc)

let trace_arg =
  let doc = "Print the protocol event trace." in
  Arg.(value & flag & info [ "t"; "trace" ] ~doc)

let seed_arg =
  let doc = "Simulation seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let breakdown_arg =
  let doc = "Print per-node time breakdowns." in
  Arg.(value & flag & info [ "b"; "breakdown" ] ~doc)

let migrate_arg =
  let doc = "Enable adaptive home migration (home-based protocols)." in
  Arg.(value & flag & info [ "migrate" ] ~doc)

let coproc_locks_arg =
  let doc = "Service lock requests on the co-processor (overlapped protocols)." in
  Arg.(value & flag & info [ "coproc-locks" ] ~doc)

let json_arg =
  let doc = "Write the machine-readable report (JSON) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc = "Write the typed trace-event stream to $(docv) (see --trace-format)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace output format: jsonl (one event per line) or chrome (Chrome trace_event \
     JSON, loadable in Perfetto / chrome://tracing)."
  in
  Arg.(value & opt string "jsonl" & info [ "trace-format" ] ~docv:"FMT" ~doc)

let trace_cap_arg =
  let doc =
    "Capacity of the trace-event sink used by --trace-out and --profile; events beyond it \
     are counted as dropped, keeping memory bounded on long runs."
  in
  Arg.(value & opt int 1_000_000 & info [ "trace-cap" ] ~docv:"N" ~doc)

let profile_arg =
  let doc =
    "Record the causal layer (wait spans, message flows) and print the critical-path blame \
     table: which wait buckets, pages and locks the run's end-to-end time is attributable \
     to. Combine with --json / --trace-out to export the analysis and the Perfetto trace."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let drop_rate_arg =
  let doc = "Probability in [0,1) that the network drops a packet (chaos testing)." in
  Arg.(value & opt float 0.0 & info [ "drop-rate" ] ~docv:"P" ~doc)

let dup_rate_arg =
  let doc = "Probability in [0,1) that the network duplicates a packet (chaos testing)." in
  Arg.(value & opt float 0.0 & info [ "dup-rate" ] ~docv:"P" ~doc)

let jitter_arg =
  let doc =
    "Maximum extra per-packet latency in microseconds; 1 in 64 packets spikes to 8x this."
  in
  Arg.(value & opt float 0.0 & info [ "jitter" ] ~docv:"US" ~doc)

let straggler_arg =
  let doc =
    "Straggler factor >= 1: each node's local work is scaled by a per-node multiplier drawn \
     uniformly from [1, $(docv)]. 1 disables."
  in
  Arg.(value & opt float 1.0 & info [ "straggler" ] ~docv:"F" ~doc)

let fault_seed_arg =
  let doc = "Seed for the fault-injection plan (independent of --seed)." in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let fault_batch_arg =
  let doc =
    "Batched fault handling (home-based protocols): serve up to $(docv) adjacent same-home      invalid pages in the one round trip handling a miss. 1 (the default) reproduces the      paper's one-page-per-fault behavior exactly."
  in
  Arg.(value & opt int 1 & info [ "fault-batch" ] ~docv:"N" ~doc)

let kill_node_arg =
  let doc =
    "Chaos: crash-stop node $(docv) at --kill-at (links fall silent; with --replicas > 1 \
     its homed pages fail over to the next live replica). Node 0 (the lock/barrier \
     manager) cannot be killed."
  in
  Arg.(value & opt (some int) None & info [ "kill-node" ] ~docv:"NODE" ~doc)

let kill_at_arg =
  let doc = "Simulated time (microseconds) at which --kill-node fires." in
  Arg.(value & opt float 0.0 & info [ "kill-at" ] ~docv:"US" ~doc)

let detect_delay_arg =
  let doc =
    "Failure-detector delay in microseconds: failover runs this long after the kill."
  in
  Arg.(value & opt float 500.0 & info [ "detect-delay" ] ~docv:"US" ~doc)

let pause_node_arg =
  let doc =
    "Chaos (gray failure): pause node $(docv) between --pause-at and --resume-at — it \
     stops executing but is not declared dead."
  in
  Arg.(value & opt (some int) None & info [ "pause" ] ~docv:"NODE" ~doc)

let pause_at_arg =
  let doc = "Simulated time (microseconds) at which --pause fires." in
  Arg.(value & opt float 0.0 & info [ "pause-at" ] ~docv:"US" ~doc)

let resume_at_arg =
  let doc = "Simulated time (microseconds) at which the paused node resumes." in
  Arg.(value & opt float 0.0 & info [ "resume-at" ] ~docv:"US" ~doc)

let partition_arg =
  let doc =
    "Chaos: network partition — the comma-separated node group $(docv) is cut off from \
     every other node between --partition-at and --heal-at (links within a side are \
     untouched; healing is by retransmission). The classic source of false suspicions \
     for the heartbeat detector."
  in
  Arg.(value & opt (some (list int)) None & info [ "partition" ] ~docv:"NODES" ~doc)

let partition_at_arg =
  let doc = "Simulated time (microseconds) at which --partition severs its links." in
  Arg.(value & opt float 0.0 & info [ "partition-at" ] ~docv:"US" ~doc)

let heal_at_arg =
  let doc = "Simulated time (microseconds) at which --partition heals." in
  Arg.(value & opt float 0.0 & info [ "heal-at" ] ~docv:"US" ~doc)

let detector_arg =
  let doc =
    "Failure detector: oracle (the default — failover fires --detect-delay after a \
     scheduled kill, never spuriously) or heartbeat (nodes ping every --hb-interval; a \
     peer silent past --hb-timeout is suspected, a strict majority of suspicions deposes \
     it, and a falsely-deposed node rejoins when heard from again). Oracle output is \
     byte-identical to a build without the detector."
  in
  Arg.(value & opt string "oracle" & info [ "detector" ] ~docv:"KIND" ~doc)

let hb_interval_arg =
  let doc = "Heartbeat period in simulated microseconds (--detector heartbeat)." in
  Arg.(value & opt float 200.0 & info [ "hb-interval" ] ~docv:"US" ~doc)

let hb_timeout_arg =
  let doc =
    "Suspicion timeout in simulated microseconds; 0 (the default) auto-sizes it from the \
     heartbeat period and the chaos plan's worst jitter spike, so a fault-free run never \
     suspects anyone."
  in
  Arg.(value & opt float 0.0 & info [ "hb-timeout" ] ~docv:"US" ~doc)

let replicas_arg =
  let doc =
    "Replication degree: each page keeps $(docv) replicas (the home plus the next \
     $(docv)-1 node ids). 1 (the default) disables replication and is byte-identical to \
     an unreplicated run."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"K" ~doc)

let repl_scheme_arg =
  let doc =
    "Replication scheme: inval (header-only invalidations; recovery pulls retained diffs \
     back from live writers) or backup (primary streams every applied diff to the \
     backups)."
  in
  Arg.(value & opt string "inval" & info [ "repl-scheme" ] ~docv:"SCHEME" ~doc)

let metrics_arg =
  let doc =
    "Print the sampled-metrics summary: per-interval sparklines of every series, latency \
     histogram percentiles, and the hottest pages of the fault/diff heatmap. Implies \
     --metrics-interval 1000 unless one was given."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_interval_arg =
  let doc =
    "Sample the metrics flight recorder every $(docv) simulated microseconds: per-node \
     traffic/fault counters, in-flight/event-set/memory gauges, latency histograms and \
     page heatmaps, exported as the report JSON timeline block and via --metrics-out. 0 \
     (the default) disables metrics entirely, keeping every output byte-identical to a \
     run without the recorder."
  in
  Arg.(value & opt float 0.0 & info [ "metrics-interval" ] ~docv:"US" ~doc)

let metrics_out_arg =
  let doc =
    "Write the metrics time series to $(docv) as long-format CSV \
     (time_us,node,series,value; run-scope series use node -1). Implies \
     --metrics-interval 1000 unless one was given."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* The --kv-* knobs for --app kvstore, bundled into one term so [run]'s
   already-long signature grows by a single argument. [None] means "keep the
   scale's default"; value checking lives in [Traffic.validate] /
   [Kvstore.body]. *)
let kv_term =
  let ops =
    let doc = "kvstore: total operations in the open-loop plan." in
    Arg.(value & opt (some int) None & info [ "kv-ops" ] ~docv:"N" ~doc)
  in
  let rate =
    let doc = "kvstore: offered load in operations per simulated second." in
    Arg.(value & opt (some float) None & info [ "kv-rate" ] ~docv:"OPS_S" ~doc)
  in
  let keys =
    let doc = "kvstore: key-space size." in
    Arg.(value & opt (some int) None & info [ "kv-keys" ] ~docv:"N" ~doc)
  in
  let theta =
    let doc = "kvstore: Zipfian skew theta in [0,1); 0 is uniform." in
    Arg.(value & opt (some float) None & info [ "kv-theta" ] ~docv:"T" ~doc)
  in
  let write_ratio =
    let doc = "kvstore: fraction of non-transaction operations that are puts." in
    Arg.(value & opt (some float) None & info [ "kv-write-ratio" ] ~docv:"P" ~doc)
  in
  let txn_ratio =
    let doc = "kvstore: fraction of operations that are two-key transactions." in
    Arg.(value & opt (some float) None & info [ "kv-txn-ratio" ] ~docv:"P" ~doc)
  in
  let buckets =
    let doc = "kvstore: bucket count (one SVM page per bucket)." in
    Arg.(value & opt (some int) None & info [ "kv-buckets" ] ~docv:"N" ~doc)
  in
  let pack ops rate keys theta write_ratio txn_ratio buckets =
    (ops, rate, keys, theta, write_ratio, txn_ratio, buckets)
  in
  Term.(const pack $ ops $ rate $ keys $ theta $ write_ratio $ txn_ratio $ buckets)

(* Bad flag values surface as [Failure]/[Invalid_argument] (from the parsers
   above, [Chaos.validate], or [Config.make]); turn them into a clean
   one-line error and a nonzero exit instead of a backtrace. *)
let run_safe a b c d e g h i j k l m n o p q s t u v w x y z a2 b2 c2 d2 e2 f2 g2 h2 i2 j2
    k2 l2 m2 n2 o2 =
  try
    run a b c d e g h i j k l m n o p q s t u v w x y z a2 b2 c2 d2 e2 f2 g2 h2 i2 j2 k2 l2
      m2 n2 o2
  with
  | Failure msg | Invalid_argument msg ->
      Printf.eprintf "svm_run: %s\n" msg;
      exit 2
  | Svm.System.Deadlock dump ->
      Printf.eprintf "svm_run: the run cannot make progress\n%s\n" dump;
      exit 3

let cmd =
  let doc = "run a Splash-2-style benchmark on the simulated SVM system" in
  let info = Cmd.info "svm_run" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run_safe $ app_arg $ proto_arg $ nodes_arg $ scale_arg $ verify_arg $ trace_arg
      $ seed_arg $ breakdown_arg $ migrate_arg $ coproc_locks_arg $ json_arg $ trace_out_arg
      $ trace_format_arg $ trace_cap_arg $ profile_arg $ drop_rate_arg $ dup_rate_arg
      $ jitter_arg $ straggler_arg $ fault_seed_arg $ fault_batch_arg $ kill_node_arg
      $ kill_at_arg $ detect_delay_arg $ pause_node_arg $ pause_at_arg $ resume_at_arg
      $ partition_arg $ partition_at_arg $ heal_at_arg $ detector_arg $ hb_interval_arg
      $ hb_timeout_arg $ replicas_arg $ repl_scheme_arg $ metrics_arg $ metrics_interval_arg
      $ metrics_out_arg $ kv_term)

let () = exit (Cmd.eval cmd)
