(* Replicated homes and node-kill failover.

   The scenario the machinery exists for: a page's home is crash-stopped
   while another node is inside a critical section updating that very
   page. With a replica degree >= 2 the failure detector promotes the next
   live rank, the writer's retained diffs are pulled into the rebuilt
   master, and a later reader (synchronizing through the same lock) must
   see the update — and the final shared-memory digest must equal the
   fault-free twin's.

   Also here: replication without faults never changes results (K = 2
   digest equals K = 1 digest), and chaos without a kill never triggers a
   spurious failover. The [--replicas 1] byte-identity guarantee is
   enforced separately by the gen_identity golden (test/golden/
   identity.txt), which runs every default-flag cell. *)

let check = Alcotest.check

let expect cond fmt =
  Format.kasprintf (fun msg -> if not cond then Alcotest.fail msg) fmt

let replicable = [ Svm.Config.Lrc; Svm.Config.Olrc; Svm.Config.Hlrc; Svm.Config.Ohlrc ]

let schemes = [ Svm.Config.Inval; Svm.Config.Backup ]

let cell_name proto scheme =
  Printf.sprintf "%s/%s"
    (String.lowercase_ascii (Svm.Config.protocol_name proto))
    (Svm.Config.repl_scheme_name scheme)

(* 4 processes; both shared pages are pinned to node 3, the victim.

   Phase 1: everyone (victim included) writes its slot of page 0 under
   lock 0. Phase 2: the victim runs straight to the final barrier; node 1
   updates page 1 inside a long critical section (the kill lands here);
   node 2 then takes the same lock and must read node 1's value through
   the failed-over home. *)
let victim = 3

let kill_app ~checks ctx =
  let me = Svm.Api.pid ctx in
  let pw = Svm.Api.page_words ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"a" ~home:(fun _ -> victim) (2 * pw));
  Svm.Api.barrier ctx;
  let a = Svm.Api.root ctx "a" in
  Svm.Api.lock ctx 0;
  Svm.Api.write ctx (a + me) (float_of_int (me + 1));
  Svm.Api.unlock ctx 0;
  Svm.Api.barrier ctx;
  if me = 1 then begin
    Svm.Api.lock ctx 1;
    Svm.Api.compute ctx 3000.;
    Svm.Api.write ctx (a + pw) 42.;
    Svm.Api.unlock ctx 1
  end;
  if me = 2 then begin
    Svm.Api.compute ctx 4500.;
    Svm.Api.lock ctx 1;
    let v = Svm.Api.read ctx (a + pw) in
    if checks then expect (v = 42.) "pid 2: read %g through failed-over home, want 42" v;
    Svm.Api.unlock ctx 1
  end;
  Svm.Api.barrier ctx

(* The victim's last barrier arrival in the fault-free twin: killing after
   it loses only the victim's cached copies, never committed history. *)
let last_arrival sink =
  let last = ref 0. in
  Obs.Trace.iter sink (fun ev ->
      if ev.Obs.Trace.node = victim then
        match ev.Obs.Trace.kind with
        | Obs.Trace.Barrier_arrive _ -> last := ev.Obs.Trace.time
        | _ -> ());
  !last

let sum_counter (r : Svm.Runtime.report) f =
  Array.fold_left (fun acc n -> acc + f n.Svm.Runtime.nr_counters) 0 r.Svm.Runtime.r_nodes

let test_kill_home_mid_critical_section () =
  List.iter
    (fun proto ->
      List.iter
        (fun scheme ->
          let name = cell_name proto scheme in
          let cfg = Svm.Config.make ~nprocs:4 ~replicas:2 ~repl_scheme:scheme proto in
          let sink = Obs.Trace.create_sink () in
          let clean = Svm.Runtime.run ~sink cfg (kill_app ~checks:true) in
          let kill_at = last_arrival sink +. 50. in
          expect
            (kill_at < clean.Svm.Runtime.r_elapsed)
            "%s: kill point %.0f must precede the fault-free end %.0f" name kill_at
            clean.Svm.Runtime.r_elapsed;
          let chaos =
            {
              Machine.Chaos.none with
              Machine.Chaos.faults = [ Machine.Chaos.Kill { node = victim; at = kill_at } ];
            }
          in
          let cfg =
            Svm.Config.make ~nprocs:4 ~replicas:2 ~repl_scheme:scheme ~chaos proto
          in
          let killed = Svm.Runtime.run cfg (kill_app ~checks:true) in
          check Alcotest.bool
            (name ^ ": killed-run digest equals the fault-free twin's")
            true
            (Int64.equal killed.Svm.Runtime.r_mem_digest clean.Svm.Runtime.r_mem_digest);
          if proto = Svm.Config.Hlrc || proto = Svm.Config.Ohlrc then
            expect
              (sum_counter killed (fun c -> c.Svm.Stats.failovers) >= 1)
              "%s: the victim's homed pages must have failed over" name)
        schemes)
    replicable

(* Replication is pure redundancy: without faults, any degree and either
   scheme must compute exactly what the unreplicated run computes. *)
let test_replication_preserves_results () =
  List.iter
    (fun proto ->
      let base =
        Svm.Runtime.run (Svm.Config.make ~nprocs:4 proto) (kill_app ~checks:true)
      in
      List.iter
        (fun scheme ->
          List.iter
            (fun replicas ->
              let cfg = Svm.Config.make ~nprocs:4 ~replicas ~repl_scheme:scheme proto in
              let r = Svm.Runtime.run cfg (kill_app ~checks:true) in
              check Alcotest.bool
                (Printf.sprintf "%s K=%d digest unchanged" (cell_name proto scheme)
                   replicas)
                true
                (Int64.equal r.Svm.Runtime.r_mem_digest base.Svm.Runtime.r_mem_digest))
            [ 2; 3 ])
        schemes)
    replicable

(* Stragglers and jitter slow nodes down but kill nobody: the failure
   detector must not fire, and no replica promotion may happen. *)
let test_no_spurious_failover () =
  let chaos =
    { Machine.Chaos.none with Machine.Chaos.jitter = 20.0; straggler = 1.5; fault_seed = 7 }
  in
  List.iter
    (fun proto ->
      let cfg = Svm.Config.make ~nprocs:4 ~replicas:2 ~chaos proto in
      let sink = Obs.Trace.create_sink () in
      let r = Svm.Runtime.run ~sink cfg (kill_app ~checks:true) in
      check Alcotest.int
        (Printf.sprintf "%s: no failovers without a kill"
           (Svm.Config.protocol_name proto))
        0
        (sum_counter r (fun c -> c.Svm.Stats.failovers));
      Obs.Trace.iter sink (fun ev ->
          match ev.Obs.Trace.kind with
          | Obs.Trace.Failover _ | Obs.Trace.Node_kill _ ->
              Alcotest.failf "%s: spurious %s event"
                (Svm.Config.protocol_name proto)
                (Obs.Trace.kind_name ev.Obs.Trace.kind)
          | _ -> ()))
    [ Svm.Config.Lrc; Svm.Config.Hlrc ]

let suite =
  [
    ("kill the home mid-critical-section", `Quick, test_kill_home_mid_critical_section);
    ("replication preserves results", `Quick, test_replication_preserves_results);
    ("no spurious failover", `Quick, test_no_spurious_failover);
  ]
