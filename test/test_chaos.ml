(* Fault injection (chaos), the reliable transport, and the no-progress
   watchdog: RNG soundness, plan determinism, exactly-once in-order
   delivery under faults, differential soundness across the protocol
   matrix, and the diagnostic failure when messages are dropped forever. *)

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- Rng.int: rejection sampling --------------------------------------- *)

let test_rng_int_bounds () =
  let rng = Sim.Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int rng 3 in
    check Alcotest.bool "in range" true (v >= 0 && v < 3)
  done;
  (try
     ignore (Sim.Rng.int rng 0);
     Alcotest.fail "bound 0 must be rejected"
   with Invalid_argument _ -> ());
  try
    ignore (Sim.Rng.int rng (-5));
    Alcotest.fail "negative bound must be rejected"
  with Invalid_argument _ -> ()

let test_rng_int_uniform () =
  (* With rejection sampling each residue of a non-power-of-two bound is
     equally likely; 60k draws over bound 3 should put each bucket well
     within 5% of a third. *)
  let rng = Sim.Rng.create ~seed:99 in
  let n = 60_000 in
  let buckets = Array.make 3 0 in
  for _ = 1 to n do
    let v = Sim.Rng.int rng 3 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i count ->
      let frac = float_of_int count /. float_of_int n in
      if Float.abs (frac -. (1. /. 3.)) > 0.05 then
        Alcotest.failf "bucket %d has fraction %.3f, expected ~0.333" i frac)
    buckets

(* --- Chaos plan --------------------------------------------------------- *)

let test_chaos_validate () =
  let bad p = match Machine.Chaos.validate p with Ok () -> false | Error _ -> true in
  let base = Machine.Chaos.none in
  check Alcotest.bool "none is valid" false (bad base);
  check Alcotest.bool "negative drop rate" true (bad { base with Machine.Chaos.drop_rate = -0.1 });
  check Alcotest.bool "drop rate > 1" true (bad { base with Machine.Chaos.drop_rate = 1.5 });
  check Alcotest.bool "nan dup rate" true (bad { base with Machine.Chaos.dup_rate = Float.nan });
  check Alcotest.bool "negative jitter" true (bad { base with Machine.Chaos.jitter = -1.0 });
  check Alcotest.bool "straggler < 1" true (bad { base with Machine.Chaos.straggler = 0.5 });
  let faults fs = { base with Machine.Chaos.faults = fs } in
  let kill node at = Machine.Chaos.Kill { node; at } in
  let pause node from_ until = Machine.Chaos.Pause { node; from_; until } in
  let part group from_ until = Machine.Chaos.Partition { group; from_; until } in
  check Alcotest.bool "a well-formed schedule is valid" false
    (bad (faults [ kill 2 500.; pause 1 100. 200.; part [ 1; 2 ] 50. 150. ]));
  check Alcotest.bool "kill of node 0 (the manager)" true (bad (faults [ kill 0 100. ]));
  check Alcotest.bool "kill at negative time" true (bad (faults [ kill 1 (-1.) ]));
  check Alcotest.bool "pause of node 0 (the manager)" true
    (bad (faults [ pause 0 0. 100. ]));
  check Alcotest.bool "inverted pause window" true (bad (faults [ pause 1 200. 100. ]));
  check Alcotest.bool "pause window overlapping the same node's kill" true
    (bad (faults [ pause 2 100. 400.; kill 2 250. ]));
  check Alcotest.bool "pause window ending before the kill is fine" false
    (bad (faults [ pause 2 100. 200.; kill 2 250. ]));
  check Alcotest.bool "empty partition group" true (bad (faults [ part [] 0. 100. ]));
  check Alcotest.bool "partition group repeating a node" true
    (bad (faults [ part [ 1; 2; 1 ] 0. 100. ]));
  check Alcotest.bool "partition group with a negative node" true
    (bad (faults [ part [ -1; 2 ] 0. 100. ]));
  check Alcotest.bool "inverted partition window" true
    (bad (faults [ part [ 1 ] 300. 200. ]));
  try
    ignore
      (Machine.Chaos.create { base with Machine.Chaos.drop_rate = 2.0 } ~nprocs:2);
    Alcotest.fail "create must reject invalid params"
  with Invalid_argument _ -> ()

let test_chaos_deterministic () =
  let p =
    {
      Machine.Chaos.none with
      Machine.Chaos.drop_rate = 0.3;
      dup_rate = 0.2;
      jitter = 4.0;
      straggler = 1.5;
      fault_seed = 11;
    }
  in
  let verdicts plan =
    List.init 200 (fun i ->
        let v = Machine.Chaos.judge plan ~src:(i mod 3) ~dst:((i + 1) mod 3) in
        (v.Machine.Chaos.drop, v.Machine.Chaos.duplicate, v.Machine.Chaos.delay))
  in
  let a = verdicts (Machine.Chaos.create p ~nprocs:3) in
  let b = verdicts (Machine.Chaos.create p ~nprocs:3) in
  check Alcotest.bool "same seed, same faults" true (a = b);
  let c = verdicts (Machine.Chaos.create { p with Machine.Chaos.fault_seed = 12 } ~nprocs:3) in
  check Alcotest.bool "different seed, different faults" true (a <> c);
  let plan = Machine.Chaos.create p ~nprocs:3 in
  Array.iter
    (fun i ->
      let s = Machine.Chaos.slowdown plan ~node:i in
      check Alcotest.bool "slowdown within [1, straggler]" true (s >= 1.0 && s <= 1.5))
    [| 0; 1; 2 |]

(* --- Transport: exactly-once, in-order, despite faults ------------------ *)

let test_transport_reliable_fifo () =
  let engine = Sim.Engine.create () in
  let net = Machine.Network.create ~costs:Machine.Costs.paragon ~nprocs:4 in
  let chaos =
    Machine.Chaos.create
      {
        Machine.Chaos.none with
        Machine.Chaos.drop_rate = 0.3;
        dup_rate = 0.2;
        jitter = 10.0;
        straggler = 1.0;
        fault_seed = 5;
      }
      ~nprocs:4
  in
  let drops = ref 0 and dups = ref 0 in
  let notify ~time:_ = function
    | Machine.Transport.Dropped _ -> incr drops
    | Machine.Transport.Dup_dropped _ -> incr dups
    | _ -> ()
  in
  let tr = Machine.Transport.create ~engine ~net ~chaos ~notify () in
  let n = 200 in
  let delivered = ref [] in
  for i = 0 to n - 1 do
    Machine.Transport.send tr ~src:0 ~dst:3 ~at:(float_of_int i) ~bytes:64 (fun when_ ->
        delivered := (i, when_) :: !delivered)
  done;
  ignore (Sim.Engine.run engine);
  let delivered = List.rev !delivered in
  check Alcotest.int "every payload delivered exactly once" n (List.length delivered);
  check Alcotest.bool "delivered in send order" true
    (List.for_all2 (fun (i, _) j -> i = j) delivered (List.init n Fun.id));
  ignore
    (List.fold_left
       (fun prev (_, t) ->
         check Alcotest.bool "delivery times nondecreasing" true (t >= prev);
         t)
       0. delivered);
  check Alcotest.bool "the plan actually dropped packets" true (!drops > 0);
  check Alcotest.int "nothing left unacknowledged" 0 (Machine.Transport.inflight_count tr);
  check Alcotest.int "nothing abandoned" 0 (Machine.Transport.gave_up_count tr);
  try
    Machine.Transport.send tr ~src:1 ~dst:1 ~at:0. ~bytes:8 (fun _ -> ());
    Alcotest.fail "loopback must be rejected"
  with Invalid_argument _ -> ()

let test_transport_no_spurious_retransmits () =
  (* Send timestamps on one link are not monotone (a node's service replies
     are timed from request arrival, its own traffic from its clock), so a
     packet can wait in the reorder buffer behind a predecessor transmitted
     later. The selective part of the ack must stop its timer: with nothing
     dropped, nothing may ever be retransmitted. *)
  let engine = Sim.Engine.create () in
  let net = Machine.Network.create ~costs:Machine.Costs.paragon ~nprocs:2 in
  let chaos =
    Machine.Chaos.create
      { Machine.Chaos.none with Machine.Chaos.jitter = 10.0 }
      ~nprocs:2
  in
  let retransmits = ref 0 in
  let notify ~time:_ = function
    | Machine.Transport.Retransmit _ -> incr retransmits
    | _ -> ()
  in
  let tr = Machine.Transport.create ~engine ~net ~chaos ~notify () in
  let delivered = ref [] in
  (* Call order 0,1,2,3 but transmit times far apart and inverted. *)
  List.iteri
    (fun i at ->
      Machine.Transport.send tr ~src:0 ~dst:1 ~at ~bytes:64 (fun _ ->
          delivered := i :: !delivered))
    [ 5000.; 10.; 8000.; 20. ];
  ignore (Sim.Engine.run engine);
  check (Alcotest.list Alcotest.int) "delivered once each, in call order" [ 0; 1; 2; 3 ]
    (List.rev !delivered);
  check Alcotest.int "no spurious retransmissions" 0 !retransmits;
  check Alcotest.int "all acked" 0 (Machine.Transport.inflight_count tr)

let test_transport_gives_up () =
  let engine = Sim.Engine.create () in
  let net = Machine.Network.create ~costs:Machine.Costs.paragon ~nprocs:2 in
  let chaos =
    Machine.Chaos.create
      { Machine.Chaos.none with Machine.Chaos.drop_rate = 1.0 }
      ~nprocs:2
  in
  let gave_up = ref 0 and retransmits = ref 0 and final_retries = ref (-1) in
  let notify ~time:_ = function
    | Machine.Transport.Gave_up { retries; _ } ->
        incr gave_up;
        final_retries := retries
    | Machine.Transport.Retransmit _ -> incr retransmits
    | _ -> ()
  in
  let tr = Machine.Transport.create ~engine ~net ~chaos ~max_retries:3 ~notify () in
  let delivered = ref false in
  Machine.Transport.send tr ~src:0 ~dst:1 ~at:0. ~bytes:64 (fun _ -> delivered := true);
  ignore (Sim.Engine.run engine);
  check Alcotest.bool "never delivered" false !delivered;
  check Alcotest.int "gave up once" 1 !gave_up;
  check Alcotest.int "recorded as abandoned" 1 (Machine.Transport.gave_up_count tr);
  (* The cap is a hard stop: exactly max_retries resends, none after. *)
  check Alcotest.int "no retransmission past the cap" 3 !retransmits;
  check Alcotest.int "the abandonment notice reports the cap" 3 !final_retries;
  check Alcotest.int "nothing left in flight after giving up" 0
    (Machine.Transport.inflight_count tr)

(* --- Config plumbing ---------------------------------------------------- *)

let chaos_mild fault_seed =
  {
    Machine.Chaos.none with
    Machine.Chaos.drop_rate = 0.05;
    dup_rate = 0.02;
    jitter = 5.0;
    straggler = 1.25;
    Machine.Chaos.fault_seed = fault_seed;
  }

let test_config_rejects_bad_chaos () =
  try
    ignore
      (Svm.Config.make ~nprocs:2
         ~chaos:{ Machine.Chaos.none with Machine.Chaos.drop_rate = -1.0 }
         Svm.Config.Hlrc);
    Alcotest.fail "Config.make must reject invalid chaos params"
  with Invalid_argument msg ->
    check Alcotest.bool "message names the rate" true (contains msg "drop rate")

let test_zero_chaos_byte_identical () =
  (* An explicit inert plan must not change a single byte of the report:
     the fault-free path bypasses the transport entirely. *)
  let app =
    match Apps.Registry.find "lu" Apps.Registry.Test with
    | Some a -> a
    | None -> Alcotest.fail "lu/test app missing"
  in
  let report cfg = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:false) in
  let plain = report (Svm.Config.make ~nprocs:4 Svm.Config.Hlrc) in
  let inert = report (Svm.Config.make ~nprocs:4 ~chaos:Machine.Chaos.none Svm.Config.Hlrc) in
  check Alcotest.string "identical JSON" (Svm.Report_json.to_string plain)
    (Svm.Report_json.to_string inert)

let test_chaos_report_valid () =
  let app =
    match Apps.Registry.find "sor" Apps.Registry.Test with
    | Some a -> a
    | None -> Alcotest.fail "sor/test app missing"
  in
  let cfg = Svm.Config.make ~nprocs:4 ~chaos:(chaos_mild 1) Svm.Config.Hlrc in
  let r = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  (match Svm.Report_json.validate (Svm.Report_json.encode r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chaos report fails validation: %s" e);
  let s = Svm.Report_json.to_string r in
  check Alcotest.bool "report carries transport counters" true (contains s "msg_retransmits");
  check Alcotest.bool "report carries the memory digest" true (contains s "mem_digest")

(* --- Differential soundness across the matrix --------------------------- *)

let test_soak_sweep () =
  let rows = Harness.Soak.sweep ~scale:Apps.Registry.Test ~nprocs:4 ~fault_seeds:[ 1; 2; 3 ] () in
  check Alcotest.bool "sweep covers all six protocols" true
    (List.length (List.sort_uniq compare (List.map (fun r -> r.Harness.Soak.s_proto) rows)) = 6);
  List.iter
    (fun (r : Harness.Soak.row) ->
      if not r.Harness.Soak.s_ok then
        Alcotest.failf "%s/%s seed %d: digest %016Lx, fault-free %016Lx" r.Harness.Soak.s_app
          (Svm.Config.protocol_name r.Harness.Soak.s_proto)
          r.Harness.Soak.s_fault_seed r.Harness.Soak.s_digest r.Harness.Soak.s_expected)
    rows

(* --- Watchdog ----------------------------------------------------------- *)

let test_watchdog_on_dropped_lock_grant () =
  (* Every packet is lost, so node 1's lock-acquire request (and any grant)
     can never arrive: after the retry cap the engine drains with node 1
     still blocked, and the watchdog must name the problem. *)
  let chaos = { Machine.Chaos.none with Machine.Chaos.drop_rate = 1.0 } in
  let cfg = Svm.Config.make ~nprocs:2 ~chaos Svm.Config.Hlrc in
  let app ctx =
    if Svm.Api.pid ctx = 1 then begin
      Svm.Api.lock ctx 0;
      Svm.Api.unlock ctx 0
    end
  in
  try
    ignore (Svm.Runtime.run cfg app);
    Alcotest.fail "a fully lossy network must trip the watchdog"
  with Svm.System.Deadlock msg ->
    check Alcotest.bool "dump names the watchdog" true (contains msg "watchdog");
    check Alcotest.bool "dump counts unfinished processes" true
      (contains msg "1 of 2 processes unfinished");
    check Alcotest.bool "dump shows the blocked lock wait" true
      (contains msg "waiting for a lock");
    check Alcotest.bool "dump shows the abandoned packet" true (contains msg "retry cap")

let suite =
  [
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int uniform", `Quick, test_rng_int_uniform);
    ("chaos validate", `Quick, test_chaos_validate);
    ("chaos deterministic", `Quick, test_chaos_deterministic);
    ("transport reliable fifo", `Quick, test_transport_reliable_fifo);
    ("transport no spurious retransmits", `Quick, test_transport_no_spurious_retransmits);
    ("transport gives up", `Quick, test_transport_gives_up);
    ("config rejects bad chaos", `Quick, test_config_rejects_bad_chaos);
    ("zero chaos byte identical", `Quick, test_zero_chaos_byte_identical);
    ("chaos report valid", `Quick, test_chaos_report_valid);
    ("soak sweep all protocols", `Slow, test_soak_sweep);
    ("watchdog on dropped lock grant", `Quick, test_watchdog_on_dropped_lock_grant);
  ]
