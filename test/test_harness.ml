(* Harness tests: the run matrix caches and the table generators produce
   well-formed output with the paper's qualitative relationships. *)

let check = Alcotest.check

let test_matrix_caches () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.sor Apps.Registry.Test in
  let calls = ref 0 in
  Harness.Matrix.on_progress m (fun _ -> incr calls);
  let r1 = Harness.Matrix.get m app Svm.Config.Hlrc 4 in
  let r2 = Harness.Matrix.get m app Svm.Config.Hlrc 4 in
  check Alcotest.bool "same report object" true (r1 == r2);
  check Alcotest.int "one simulation" 1 !calls

let test_speedup_definition () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.sor Apps.Registry.Test in
  let s = Harness.Matrix.speedup m app Svm.Config.Hlrc 4 in
  check Alcotest.bool "speedup positive" true (s > 0.);
  let seq = Harness.Matrix.seq_time m app in
  let elapsed = (Harness.Matrix.get m app Svm.Config.Hlrc 4).Svm.Runtime.r_elapsed in
  check (Alcotest.float 1e-9) "speedup = seq/elapsed" (seq /. elapsed) s

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_tables_render () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let node_counts = [ 2; 4 ] in
  let t1 = render (fun ppf -> Harness.Tables.table1 ppf m) in
  check Alcotest.bool "table1 lists all apps" true
    (List.for_all (fun n -> contains t1 n) [ "LU"; "SOR"; "Water-Nsquared"; "Raytrace" ]);
  let t2 = render (fun ppf -> Harness.Tables.table2 ppf m ~node_counts) in
  check Alcotest.bool "table2 lists protocols" true
    (List.for_all (fun p -> contains t2 p) [ "LRC"; "OLRC"; "HLRC"; "OHLRC" ]);
  let t3 = render (fun ppf -> Harness.Tables.table3 ppf) in
  check Alcotest.bool "table3 shows the 1172us miss" true (contains t3 "1172");
  let t4 = render (fun ppf -> Harness.Tables.table4 ppf m ~node_counts) in
  check Alcotest.bool "table4 rendered" true (contains t4 "rdmiss");
  let t5 = render (fun ppf -> Harness.Tables.table5 ppf m ~node_counts) in
  check Alcotest.bool "table5 rendered" true (contains t5 "upd MB");
  let t6 = render (fun ppf -> Harness.Tables.table6 ppf m ~node_counts) in
  check Alcotest.bool "table6 rendered" true (contains t6 "app KB");
  let f3 = render (fun ppf -> Harness.Tables.figure3 ppf m ~node_counts) in
  check Alcotest.bool "figure3 rendered" true (contains f3 "comp");
  let f4 = render (fun ppf -> Harness.Tables.figure4 ppf m ~node_counts ~epoch:2) in
  check Alcotest.bool "figure4 rendered" true (contains f4 "cpu");
  let sz = render (fun ppf -> Harness.Tables.sor_zero ppf m ~node_counts) in
  check Alcotest.bool "sor-zero rendered" true (contains sz "LRC/HLRC")

(* Qualitative headline of the paper at a size our Test scale can support:
   HLRC must never lose badly to LRC, and its protocol memory must stay far
   below LRC's on a diff-heavy workload. *)
let test_memory_headline () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.water_nsq Apps.Registry.Test in
  let lrc = Harness.Matrix.get m app Svm.Config.Lrc 8 in
  let hlrc = Harness.Matrix.get m app Svm.Config.Hlrc 8 in
  check Alcotest.bool "HLRC uses less protocol memory" true
    (Svm.Runtime.max_mem_peak hlrc < Svm.Runtime.max_mem_peak lrc)

let test_protocol_traffic_headline () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.water_nsq Apps.Registry.Test in
  let lrc = Harness.Matrix.get m app Svm.Config.Lrc 8 in
  let hlrc = Harness.Matrix.get m app Svm.Config.Hlrc 8 in
  check Alcotest.bool "home-based protocol data is cheaper" true
    (Svm.Runtime.total_protocol_bytes hlrc < Svm.Runtime.total_protocol_bytes lrc)

(* Satellite: [Matrix.cells] must list protocols in the paper's canonical
   order (LRC, OLRC, HLRC, OHLRC, ...), not alphabetically. *)
let test_cells_canonical_order () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.sor Apps.Registry.Test in
  (* Populate in a scrambled order; [cells] must sort it back. *)
  List.iter
    (fun p -> ignore (Harness.Matrix.get m app p 2))
    [ Svm.Config.Ohlrc; Svm.Config.Hlrc; Svm.Config.Lrc; Svm.Config.Olrc ];
  let protos = List.map (fun (_, p, _, _) -> p) (Harness.Matrix.cells m) in
  check
    (Alcotest.list (Alcotest.testable (fun ppf p -> Format.pp_print_string ppf (Svm.Config.protocol_name p)) ( = )))
    "canonical protocol order"
    [ Svm.Config.Lrc; Svm.Config.Olrc; Svm.Config.Hlrc; Svm.Config.Ohlrc ]
    protos

(* The JSON dump bench/main.ml writes with --json, reproduced here so the
   determinism test covers the machine-readable artifact too. *)
let dump m =
  let cell (app, proto, np, r) =
    Obs.Json.Obj
      [
        ("app", Obs.Json.String app);
        ( "protocol",
          Obs.Json.String (String.lowercase_ascii (Svm.Config.protocol_name proto)) );
        ("nodes", Obs.Json.Int np);
        ("report", Svm.Report_json.encode r);
      ]
  in
  Obs.Json.to_string_pretty
    (Obs.Json.Obj
       [
         ("schema_version", Obs.Json.Int Svm.Report_json.schema_version);
         ("cells", Obs.Json.List (List.map cell (Harness.Matrix.cells m)));
       ])

(* The tentpole's hard requirement: a prefetched parallel sweep must be
   byte-identical to the sequential one — rendered table, JSON dump and
   trace-sink contents alike. *)
let test_parallel_determinism () =
  let node_counts = [ 2 ] in
  let sweep jobs =
    let sink = Obs.Trace.create_sink ~capacity:10_000 () in
    let m = Harness.Matrix.create ~verify:false ~sink ~scale:Apps.Registry.Test () in
    let pool = Harness.Pool.create ~jobs in
    if Harness.Pool.jobs pool > 1 then
      Harness.Matrix.prefetch m pool (Harness.Tables.table2_cells m ~node_counts);
    let table = render (fun ppf -> Harness.Tables.table2 ppf m ~node_counts) in
    (table, dump m, Obs.Trace.events sink, Obs.Trace.dropped sink)
  in
  let t1, j1, e1, d1 = sweep 1 in
  let t4, j4, e4, d4 = sweep 4 in
  check Alcotest.string "rendered table identical" t1 t4;
  check Alcotest.string "json dump identical" j1 j4;
  check Alcotest.bool "trace events identical" true (e1 = e4);
  check Alcotest.int "trace drop count identical" d1 d4

let suite =
  [
    ("matrix caches runs", `Quick, test_matrix_caches);
    ("cells canonical order", `Quick, test_cells_canonical_order);
    ("parallel determinism", `Slow, test_parallel_determinism);
    ("speedup definition", `Quick, test_speedup_definition);
    ("all tables render", `Slow, test_tables_render);
    ("memory headline", `Quick, test_memory_headline);
    ("protocol traffic headline", `Quick, test_protocol_traffic_headline);
  ]
