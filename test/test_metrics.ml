(* The sampled metrics flight recorder (Obs.Metrics) and its wiring:
   log2-bucket boundaries, the nearest-rank quantile helper, same-seed
   determinism of the serializations, non-perturbation of the simulated
   outcomes when the recorder is on, and the per-kind sink drop counts. *)

let check = Alcotest.check

(* --- histogram bucket boundaries ---------------------------------- *)

let test_histogram_boundaries () =
  let m = Obs.Metrics.create ~interval:10. ~nnodes:1 in
  let h = Obs.Metrics.histogram m "lat" in
  Obs.Metrics.observe h 0.99;
  (* [0, 1) *)
  Obs.Metrics.observe h 1.0;
  (* [1, 2) *)
  Obs.Metrics.observe h 4.0;
  (* [4, 8): lower edge is inclusive *)
  Obs.Metrics.observe h 7.999;
  Obs.Metrics.observe h 1e30;
  (* clamps into the last bucket *)
  let buckets = Obs.Metrics.histogram_buckets h in
  check
    Alcotest.(list (pair (float 1e-6) int))
    "bucket edges and counts"
    [ (1., 1); (2., 1); (8., 2); (Float.pow 2. 63., 1) ]
    buckets;
  let s = Obs.Metrics.histogram_stats h in
  check Alcotest.int "count" 5 s.Obs.Metrics.hs_count;
  check (Alcotest.float 1e20) "max is the exact observation" 1e30 s.Obs.Metrics.hs_max;
  (* ranks over counts [1;1;2;1]: p50 -> rank 3 -> the le=8 bucket *)
  check Alcotest.(option (float 1e-6)) "p50 upper edge" (Some 8.) s.Obs.Metrics.hs_p50

let test_histogram_empty () =
  let m = Obs.Metrics.create ~interval:10. ~nnodes:1 in
  let h = Obs.Metrics.histogram m "lat" in
  let s = Obs.Metrics.histogram_stats h in
  check Alcotest.int "count" 0 s.Obs.Metrics.hs_count;
  check Alcotest.(option (float 0.)) "p99 of empty is None" None s.Obs.Metrics.hs_p99;
  check Alcotest.(option (float 0.)) "p50 of empty is None" None s.Obs.Metrics.hs_p50;
  check Alcotest.(list (pair (float 0.) int)) "no buckets" [] (Obs.Metrics.histogram_buckets h)

(* --- Stats.quantile (nearest rank) -------------------------------- *)

let test_quantile () =
  let a = [| 1.; 2.; 3.; 4. |] in
  let q = Alcotest.(option (float 0.)) in
  check q "p0 clamps to the minimum" (Some 1.) (Svm.Stats.quantile a 0.);
  check q "p25 is rank 1" (Some 1.) (Svm.Stats.quantile a 0.25);
  check q "p50 is rank 2" (Some 2.) (Svm.Stats.quantile a 0.5);
  check q "p51 is rank 3" (Some 3.) (Svm.Stats.quantile a 0.51);
  check q "p99 is the maximum here" (Some 4.) (Svm.Stats.quantile a 0.99);
  check q "p100 is the maximum" (Some 4.) (Svm.Stats.quantile a 1.);
  check q "empty array is None, not 0" None (Svm.Stats.quantile [||] 0.5);
  check q "singleton" (Some 7.) (Svm.Stats.quantile [| 7. |] 0.5)

(* --- counter bucketing and gauge forward-fill ---------------------- *)

let test_series_shapes () =
  let m = Obs.Metrics.create ~interval:10. ~nnodes:2 in
  let c = Obs.Metrics.counter m "msgs" in
  let g = Obs.Metrics.gauge m "mem" in
  Obs.Metrics.add c ~node:0 ~time:0. 1.;
  Obs.Metrics.add c ~node:0 ~time:9.9 1.;
  (* same bucket *)
  Obs.Metrics.add c ~node:1 ~time:35. 5.;
  (* bucket 3 *)
  Obs.Metrics.sample g ~node:0 ~time:5. 100.;
  Obs.Metrics.sample g ~node:0 ~time:7. 200.;
  (* last sample wins *)
  check Alcotest.int "buckets span the highest touch" 4 (Obs.Metrics.buckets m);
  (match Obs.Metrics.series_total m "msgs" with
  | None -> Alcotest.fail "msgs series missing"
  | Some row ->
      check
        Alcotest.(array (float 0.))
        "counter rows zero-filled and bucketed"
        [| 2.; 0.; 0.; 5. |]
        row);
  match Obs.Metrics.series m with
  | [ ("msgs", Obs.Metrics.Counter, _); ("mem", Obs.Metrics.Gauge, rows) ] ->
      check
        Alcotest.(array (float 0.))
        "gauge carries the last sample forward"
        [| 200.; 200.; 200.; 200. |]
        rows.(0);
      check
        Alcotest.(array (float 0.))
        "unsampled gauge row is zero"
        [| 0.; 0.; 0.; 0. |]
        rows.(1)
  | _ -> Alcotest.fail "expected msgs then mem, in registration order"

(* --- determinism and non-perturbation over real runs --------------- *)

let run_sor ~metrics_interval () =
  let app = Apps.Registry.sor Apps.Registry.Test in
  let cfg = Svm.Config.make ~nprocs:4 ~metrics_interval Svm.Config.Hlrc in
  Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:false)

let test_same_seed_determinism () =
  let m1 =
    match (run_sor ~metrics_interval:500. ()).Svm.Runtime.r_metrics with
    | Some m -> m
    | None -> Alcotest.fail "no metrics recorded"
  in
  let m2 =
    match (run_sor ~metrics_interval:500. ()).Svm.Runtime.r_metrics with
    | Some m -> m
    | None -> Alcotest.fail "no metrics recorded"
  in
  check Alcotest.string "timeline JSON is byte-identical across same-seed runs"
    (Obs.Json.to_string (Obs.Metrics.to_json m1))
    (Obs.Json.to_string (Obs.Metrics.to_json m2));
  check Alcotest.string "timeline CSV is byte-identical across same-seed runs"
    (Obs.Metrics.to_csv m1) (Obs.Metrics.to_csv m2)

let test_non_perturbation () =
  (* The sampler adds engine events but must not move any simulated
     outcome: elapsed, traffic counters and the memory digest are
     compared field-by-field (whole-report bytes would differ in
     r_events and the timeline block itself). *)
  let off = run_sor ~metrics_interval:0. () in
  let on_ = run_sor ~metrics_interval:500. () in
  check (Alcotest.float 0.) "elapsed" off.Svm.Runtime.r_elapsed on_.Svm.Runtime.r_elapsed;
  check Alcotest.int "messages" (Svm.Runtime.total_messages off)
    (Svm.Runtime.total_messages on_);
  check Alcotest.int "update bytes"
    (Svm.Runtime.total_update_bytes off)
    (Svm.Runtime.total_update_bytes on_);
  check Alcotest.int "protocol bytes"
    (Svm.Runtime.total_protocol_bytes off)
    (Svm.Runtime.total_protocol_bytes on_);
  check Alcotest.int64 "memory digest" off.Svm.Runtime.r_mem_digest
    on_.Svm.Runtime.r_mem_digest;
  check Alcotest.bool "metrics-off run records no timeline" true
    (off.Svm.Runtime.r_metrics = None)

let test_timeline_in_report_json () =
  let r = run_sor ~metrics_interval:500. () in
  let doc = Svm.Report_json.encode ~meta:{ Svm.Report_json.rm_app = "sor"; rm_scale = "test" } r in
  (match Svm.Report_json.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "schema: %s" e);
  let s = Obs.Json.to_string doc in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has timeline block" true (contains s "\"timeline\"");
  check Alcotest.bool "has meta block" true (contains s "\"meta\"");
  check Alcotest.bool "meta names the app" true (contains s "\"app\":\"sor\"")

(* --- per-kind sink drop accounting --------------------------------- *)

let test_dropped_by_kind () =
  let ev time kind = { Obs.Trace.time; node = 0; kind } in
  let sink = Obs.Trace.create_sink ~capacity:2 () in
  for i = 0 to 4 do
    Obs.Trace.emit sink (ev (float_of_int i) Obs.Trace.Gc_done)
  done;
  Obs.Trace.emit sink (ev 9. (Obs.Trace.Mem_sample { bytes = 1 }));
  check
    Alcotest.(list (pair string int))
    "per-kind drop counts, sorted by kind"
    [ ("gc_done", 3); ("mem_sample", 1) ]
    (Obs.Trace.dropped_by_kind sink);
  (* absorb merges the per-kind counts alongside the total: the source's
     2 overflow drops carry over, and its 1 surviving event overflows the
     already-full destination, so gc_done rises by 3 *)
  let other = Obs.Trace.create_sink ~capacity:1 () in
  for i = 0 to 2 do
    Obs.Trace.emit other (ev (float_of_int i) Obs.Trace.Gc_done)
  done;
  Obs.Trace.absorb sink other;
  check
    Alcotest.(list (pair string int))
    "absorb merges per-kind counts"
    [ ("gc_done", 6); ("mem_sample", 1) ]
    (Obs.Trace.dropped_by_kind sink)

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_boundaries;
    Alcotest.test_case "empty histogram" `Quick test_histogram_empty;
    Alcotest.test_case "nearest-rank quantile" `Quick test_quantile;
    Alcotest.test_case "counter bucketing, gauge forward-fill" `Quick test_series_shapes;
    Alcotest.test_case "same-seed determinism" `Quick test_same_seed_determinism;
    Alcotest.test_case "metrics do not perturb the simulation" `Quick test_non_perturbation;
    Alcotest.test_case "timeline and meta blocks validate" `Quick test_timeline_in_report_json;
    Alcotest.test_case "per-kind sink drops" `Quick test_dropped_by_kind;
  ]
