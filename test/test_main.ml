let () =
  Alcotest.run "svm-hlrc"
    [
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("mem", Test_mem.suite);
      ("proto", Test_proto.suite);
      ("machine", Test_machine.suite);
      ("system", Test_system.suite);
      ("runtime", Test_runtime.suite);
      ("protocols", Test_protocols.suite);
      ("sync", Test_sync.suite);
      ("gc", Test_gc.suite);
      ("stats", Test_stats.suite);
      ("critical_path", Test_critical_path.suite);
      ("apps", Test_apps.suite);
      ("pool", Test_pool.suite);
      ("harness", Test_harness.suite);
      ("overlap", Test_overlap.suite);
      ("aurc", Test_aurc.suite);
      ("migration", Test_migration.suite);
      ("rc", Test_rc.suite);
      ("invariants", Test_invariants.suite);
      ("regressions", Test_regressions.suite);
      ("random", Test_random.suite);
      ("chaos", Test_chaos.suite);
      ("failover", Test_failover.suite);
      ("detector", Test_detector.suite);
      ("metrics", Test_metrics.suite);
      ("kvstore", Test_kvstore.suite);
    ]
