(* Paranoid-mode coherence checking: every app and every protocol at Test
   scale under the barrier-time bitwise-agreement invariant (the net that
   would have caught the lost-write, notice-ordering and directory bugs of
   DESIGN.md 7 immediately). *)

let check = Alcotest.check

let test_all_apps_paranoid () =
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun protocol ->
          let cfg = Svm.Config.make ~paranoid:true ~nprocs:4 protocol in
          try ignore (Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true))
          with e ->
            Alcotest.failf "%s under %s (paranoid): %s" app.Apps.Registry.name
              (Svm.Config.protocol_name protocol) (Printexc.to_string e))
        Svm.Config.extended_protocols)
    (Apps.Registry.all Apps.Registry.Test)

let test_paranoid_with_extensions () =
  let app = Apps.Registry.water_nsq Apps.Registry.Test in
  List.iter
    (fun protocol ->
      let cfg =
        Svm.Config.make ~paranoid:true ~home_migration:true ~coproc_locks:true ~nprocs:8
          protocol
      in
      ignore (Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true)))
    [ Svm.Config.Hlrc; Svm.Config.Ohlrc; Svm.Config.Aurc ]

let test_paranoid_under_gc_pressure () =
  let cfg =
    Svm.Config.make ~paranoid:true ~gc_threshold_bytes:10_000 ~nprocs:4 Svm.Config.Lrc
  in
  let app = Apps.Registry.lu Apps.Registry.Test in
  let r = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  let gc_runs =
    Array.fold_left (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.gc_runs) 0
      r.Svm.Runtime.r_nodes
  in
  check Alcotest.bool "collections happened under the invariant" true (gc_runs > 0)

(* The checker must actually detect an incoherence: forge one directly. *)
let test_checker_detects_divergence () =
  let sys = Svm.System.create (Svm.Config.make ~paranoid:true ~nprocs:2 Svm.Config.Lrc) in
  let n0 = sys.Svm.System.nodes.(0) and n1 = sys.Svm.System.nodes.(1) in
  ignore (Svm.System.malloc sys n0 16);
  let plant node v =
    let entry = Mem.Page_table.ensure node.Svm.System.pt 0 in
    let data = Mem.Page_table.attach_copy node.Svm.System.pt entry in
    entry.Mem.Page_table.prot <- Mem.Page_table.Read_only;
    ignore (Svm.System.page_info sys node 0);
    Mem.Words.set data 3 v
  in
  plant n0 1.0;
  plant n1 2.0;
  (try
     Svm.Invariants.check sys;
     Alcotest.fail "divergent current copies must be reported"
   with Svm.Invariants.Violation msg ->
     check Alcotest.bool "names the page and word" true
       (String.length msg > 0
       &&
       let has s sub =
         let ns = String.length s and nb = String.length sub in
         let rec go i = i + nb <= ns && (String.sub s i nb = sub || go (i + 1)) in
         go 0
       in
       has msg "page 0" && has msg "word 3"))

let suite =
  [
    ("all apps, all protocols, paranoid", `Slow, test_all_apps_paranoid);
    ("paranoid with extensions on", `Quick, test_paranoid_with_extensions);
    ("paranoid under GC pressure", `Quick, test_paranoid_under_gc_pressure);
    ("checker detects forged divergence", `Quick, test_checker_detects_divergence);
  ]
