(* Byte-identity golden generator.

   Runs the full default-flag sweep — every protocol x every registry
   application at Test scale, at 4 and 8 nodes — and emits one line per
   cell with MD5 digests of (a) the JSON report exactly as the CLI would
   write it, (b) the JSONL trace of an observed twin run, and (c) the
   observed twin's report (which must equal (a): attaching a sink must
   never perturb the simulation).

   Dune diffs the output against test/golden/identity.txt, so any change
   to default-flag simulator behavior — event order, costs, float
   arithmetic, report encoding, trace stream — fails the suite. The
   committed golden was produced by the array-backed, binary-heap seed;
   the Bigarray/calendar-queue rewrite must reproduce it byte for byte.
   After an *intentional* behavior change, refresh with [dune promote]. *)

let protocols =
  List.filter_map Svm.Config.protocol_of_string Svm.Config.protocol_strings

let md5 s = Digest.to_hex (Digest.string s)

(* The CLI report file is [to_string r] plus a trailing newline
   (Report_json.write); digest the same bytes. *)
let report_bytes r = Svm.Report_json.to_string r ^ "\n"

let () =
  let oc = open_out_bin "identity.txt" in
  List.iter
    (fun proto ->
      List.iter
        (fun (app : Apps.Registry.t) ->
          List.iter
            (fun nprocs ->
              let cfg = Svm.Config.make ~nprocs proto in
              let plain = Svm.Runtime.run cfg (app.body ~verify:true) in
              let sink = Obs.Trace.create_sink ~capacity:65536 () in
              let observed = Svm.Runtime.run ~sink cfg (app.body ~verify:true) in
              Printf.fprintf oc "%s %s p%d report %s trace %s observed-report %s\n"
                (String.lowercase_ascii (Svm.Config.protocol_name proto))
                app.name nprocs
                (md5 (report_bytes plain))
                (md5 (Obs.Export.jsonl sink))
                (md5 (report_bytes observed)))
            [ 4; 8 ])
        (List.filter_map
           (fun name -> Apps.Registry.find name Apps.Registry.Test)
           Apps.Registry.names))
    protocols;
  close_out oc
