(* Observability layer: JSON printer/parser, bounded sink, trace-event
   determinism, the JSONL and Chrome exporters, the legacy string-trace
   adapter, and report-JSON schema validation. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("bools", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Bool false ]);
        ("ints", Obs.Json.List [ Obs.Json.Int 0; Obs.Json.Int (-42); Obs.Json.Int max_int ]);
        ( "floats",
          Obs.Json.List
            [
              Obs.Json.Float 0.1;
              Obs.Json.Float (-1e-9);
              Obs.Json.Float 55508.060703143194;
              Obs.Json.Float 1e300;
            ] );
        ("string", Obs.Json.String "quote \" backslash \\ newline \n unicode \xe2\x82\xac");
        ("nested", Obs.Json.Obj [ ("empty_list", Obs.Json.List []); ("empty_obj", Obs.Json.Obj []) ]);
      ]
  in
  let round s = match Obs.Json.of_string s with Ok j -> j | Error e -> Alcotest.fail e in
  check Alcotest.bool "compact round-trips" true (round (Obs.Json.to_string doc) = doc);
  check Alcotest.bool "pretty round-trips" true (round (Obs.Json.to_string_pretty doc) = doc)

let test_json_determinism () =
  let doc = Obs.Json.Obj [ ("x", Obs.Json.Float 0.1); ("y", Obs.Json.Float 3.0) ] in
  check Alcotest.string "serialization is stable" (Obs.Json.to_string doc)
    (Obs.Json.to_string doc);
  (* integral floats print distinctly from ints, and both parse back *)
  check Alcotest.string "integral float" "3.0" (Obs.Json.float_string 3.0);
  check Alcotest.bool "nan is null" true (Obs.Json.float_string Float.nan = "null")

let test_json_rejects_malformed () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

(* ------------------------------------------------------------------ *)
(* Sink *)

let test_sink_bounded () =
  let sink = Obs.Trace.create_sink ~capacity:10 () in
  for i = 0 to 24 do
    Obs.Trace.emit sink
      { Obs.Trace.time = float_of_int i; node = 0; kind = Obs.Trace.Gc_done }
  done;
  check Alcotest.int "capacity caps storage" 10 (Obs.Trace.length sink);
  check Alcotest.int "overflow counted" 15 (Obs.Trace.dropped sink);
  let times = List.map (fun e -> e.Obs.Trace.time) (Obs.Trace.events sink) in
  check Alcotest.bool "keeps the earliest events in order" true
    (times = List.init 10 float_of_int)

(* ------------------------------------------------------------------ *)
(* Trace capture on real runs *)

let traced_run ?(protocol = Svm.Config.Hlrc) ?(nprocs = 4) () =
  let app = Apps.Registry.lu Apps.Registry.Test in
  let sink = Obs.Trace.create_sink () in
  let cfg = Svm.Config.make ~nprocs protocol in
  let r = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:false) in
  (r, sink)

let test_trace_deterministic () =
  let r1, s1 = traced_run () in
  let r2, s2 = traced_run () in
  check Alcotest.bool "same seed, same events" true
    (Obs.Trace.events s1 = Obs.Trace.events s2);
  check Alcotest.bool "some events were captured" true (Obs.Trace.length s1 > 0);
  check Alcotest.string "byte-identical JSON reports" (Svm.Report_json.to_string r1)
    (Svm.Report_json.to_string r2)

let test_trace_covers_protocol_activity () =
  let _, s = traced_run () in
  let names = List.map (fun e -> Obs.Trace.kind_name e.Obs.Trace.kind) (Obs.Trace.events s) in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " present") true (List.mem expected names))
    [ "page_fetch"; "diff_create"; "diff_flush"; "barrier_arrive"; "barrier_release";
      "interval_end"; "msg_send"; "msg_recv" ]

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_jsonl_roundtrip () =
  let _, sink = traced_run () in
  let lines = String.split_on_char '\n' (String.trim (Obs.Export.jsonl sink)) in
  check Alcotest.int "one line per event" (Obs.Trace.length sink) (List.length lines);
  List.iter2
    (fun line ev ->
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "line is not JSON (%s): %s" e line
      | Ok j ->
          check Alcotest.bool "ev tag matches" true
            (Obs.Json.member "ev" j = Some (Obs.Json.String (Obs.Trace.kind_name ev.Obs.Trace.kind)));
          check Alcotest.bool "node matches" true
            (Option.bind (Obs.Json.member "node" j) Obs.Json.to_int = Some ev.Obs.Trace.node);
          check Alcotest.bool "ts matches" true
            (Option.bind (Obs.Json.member "ts" j) Obs.Json.to_float = Some ev.Obs.Trace.time))
    lines (Obs.Trace.events sink)

let chrome_events sink =
  let doc =
    match Obs.Json.of_string (Obs.Export.chrome ~name:"lu/hlrc" sink) with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
  | Some l -> l
  | None -> Alcotest.fail "no traceEvents array"

let json_str name j =
  match Obs.Json.member name j with Some (Obs.Json.String s) -> Some s | _ -> None

let test_chrome_wellformed () =
  let nprocs = 4 in
  let _, sink = traced_run ~nprocs () in
  let events = chrome_events sink in
  let phase j = json_str "ph" j in
  let by p = List.filter (fun j -> phase j = Some p) events in
  (* one process_name + one thread_name per node *)
  check Alcotest.int "metadata records" (1 + nprocs) (List.length (by "M"));
  check Alcotest.int "one instant per stored event" (Obs.Trace.length sink)
    (List.length (by "i"));
  List.iter
    (fun j ->
      let tid = Option.bind (Obs.Json.member "tid" j) Obs.Json.to_int in
      check Alcotest.bool "tid is a node id" true
        (match tid with Some t -> t >= 0 && t < nprocs | None -> false);
      check Alcotest.bool "has a timestamp" true
        (Option.bind (Obs.Json.member "ts" j) Obs.Json.to_float <> None))
    (by "i");
  (* flow arrows come in pairs: the start and finish id multisets match *)
  let ids p =
    List.sort compare
      (List.filter_map (fun j -> Option.bind (Obs.Json.member "id" j) Obs.Json.to_int) (by p))
  in
  check Alcotest.(list int) "every flow start has its finish" (ids "s") (ids "f");
  check Alcotest.bool "flows were drawn" true (ids "s" <> []);
  (* counter tracks (cumulative sent bytes) carry their value in args *)
  check Alcotest.bool "sent-bytes counters exist" true (by "C" <> []);
  List.iter
    (fun j ->
      check Alcotest.bool "counter has args" true (Obs.Json.member "args" j <> None))
    (by "C")

(* The causal layer (Config.trace_spans): waits export as "ph":"X" slices
   with non-negative durations named after their Figure-3 bucket, and memory
   counter tracks appear alongside the traffic ones. *)
let profiled_run ?(protocol = Svm.Config.Hlrc) ?(nprocs = 4) () =
  let app = Apps.Registry.lu Apps.Registry.Test in
  let sink = Obs.Trace.create_sink () in
  let cfg = Svm.Config.make ~nprocs ~trace_spans:true protocol in
  let r = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:false) in
  (r, sink)

let test_chrome_causal_layer () =
  let _, sink = profiled_run () in
  let events = chrome_events sink in
  let xs = List.filter (fun j -> json_str "ph" j = Some "X") events in
  check Alcotest.bool "wait slices exist" true (xs <> []);
  List.iter
    (fun j ->
      (match Option.bind (Obs.Json.member "dur" j) Obs.Json.to_float with
      | Some d -> check Alcotest.bool "slice duration non-negative" true (d >= 0.)
      | None -> Alcotest.fail "complete event without dur");
      match json_str "name" j with
      | Some n ->
          check Alcotest.bool "slice named after its bucket" true
            (String.length n > 5 && String.sub n 0 5 = "wait:")
      | None -> Alcotest.fail "complete event without name")
    xs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Regression for the byte-identity guarantee: without Config.trace_spans
   the runtime must emit none of the causal-layer kinds, so default JSONL
   output is unchanged from before the profiler existed. *)
let test_default_trace_has_no_causal_kinds () =
  let _, sink = traced_run () in
  let doc = Obs.Export.jsonl sink in
  List.iter
    (fun k ->
      check Alcotest.bool (k ^ " absent without trace_spans") false
        (contains doc (Printf.sprintf "\"ev\":%S" k)))
    [ "wait_begin"; "wait_end"; "mem_sample"; "diff_reply" ]

(* Both exporters surface sink truncation rather than hiding it. *)
let test_export_overflow_records () =
  let app = Apps.Registry.lu Apps.Registry.Test in
  let sink = Obs.Trace.create_sink ~capacity:50 () in
  let cfg = Svm.Config.make ~nprocs:4 Svm.Config.Hlrc in
  ignore (Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:false));
  check Alcotest.bool "sink overflowed" true (Obs.Trace.dropped sink > 0);
  let tail =
    match List.rev (String.split_on_char '\n' (String.trim (Obs.Export.jsonl sink))) with
    | last :: _ -> last
    | [] -> Alcotest.fail "empty jsonl"
  in
  check Alcotest.bool "jsonl ends with the dropped record" true
    (contains tail "\"ev\":\"dropped\"");
  check Alcotest.bool "chrome reports droppedEvents" true
    (contains (Obs.Export.chrome sink) "\"droppedEvents\":")

let test_write_file_reports_errors () =
  let sink = Obs.Trace.create_sink ~capacity:4 () in
  match Obs.Export.write_file Obs.Export.Jsonl "/nonexistent-dir-xyz/trace.jsonl" sink with
  | () -> Alcotest.fail "writing into a missing directory succeeded"
  | exception Failure msg ->
      check Alcotest.bool "one-line error names the problem" true
        (contains msg "cannot write trace file")

(* ------------------------------------------------------------------ *)
(* Legacy string-trace adapter *)

let test_legacy_adapter_matches_typed_stream () =
  (* Run once with both the legacy callback and the typed sink active: every
     legacy line must be exactly the rendering of the corresponding typed
     event, so the adapter cannot drift from the stream it wraps. *)
  let app = Apps.Registry.lu Apps.Registry.Test in
  let lines = ref [] in
  let trace t s = lines := (t, s) :: !lines in
  let sink = Obs.Trace.create_sink () in
  let cfg = Svm.Config.make ~nprocs:4 Svm.Config.Hlrc in
  ignore (Svm.Runtime.run ~trace ~sink cfg (app.Apps.Registry.body ~verify:false));
  let rendered =
    List.filter_map
      (fun e ->
        match Obs.Trace.render e.Obs.Trace.kind with
        | Some line ->
            Some (e.Obs.Trace.time, Printf.sprintf "[node %d] %s" e.Obs.Trace.node line)
        | None -> None)
      (Obs.Trace.events sink)
  in
  check Alcotest.bool "legacy lines were produced" true (!lines <> []);
  check Alcotest.bool "adapter output = rendered typed stream" true
    (List.rev !lines = rendered)

let test_legacy_render_exact_strings () =
  let cases =
    [
      (Obs.Trace.Page_fetch { page = 3; home = 1 }, Some "page fault: fetch page 3 from home 1");
      (Obs.Trace.Gc_done, Some "gc: discarded diffs and interval records");
      ( Obs.Trace.Lock_grant { lock = 2; dst = 5; intervals = 4 },
        Some "grant lock 2 to node 5 (4 interval records)" );
      (Obs.Trace.Barrier_release { epoch = 7; gc = true }, Some "barrier 7 completes (gc)");
      (Obs.Trace.Barrier_release { epoch = 7; gc = false }, Some "barrier 7 completes");
      (Obs.Trace.Msg_send { dst = 1; bytes = 64; update = 0 }, None);
      (Obs.Trace.Diff_create { page = 0; words = 8; bytes = 100 }, None);
    ]
  in
  List.iter
    (fun (kind, expected) ->
      check Alcotest.bool (Obs.Trace.kind_name kind) true
        (Obs.Trace.render kind = expected))
    cases

(* ------------------------------------------------------------------ *)
(* Report JSON schema *)

let test_report_validates () =
  let r, _ = traced_run () in
  let j =
    match Obs.Json.of_string (Svm.Report_json.to_string r) with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  (match Svm.Report_json.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid report rejected: %s" e);
  match Svm.Report_json.headline j with
  | None -> Alcotest.fail "no headline counters"
  | Some h ->
      check
        Alcotest.(list string)
        "headline keys"
        [ "elapsed_us"; "messages"; "update_bytes"; "protocol_bytes"; "mem_peak" ]
        (List.map fst h)

let test_validate_rejects_malformed () =
  let r, _ = traced_run () in
  let good = Svm.Report_json.encode r in
  let reject msg j =
    match Svm.Report_json.validate j with
    | Ok () -> Alcotest.failf "validate accepted %s" msg
    | Error _ -> ()
  in
  reject "a non-object" (Obs.Json.Int 3);
  (match good with
  | Obs.Json.Obj fields ->
      reject "a missing totals object"
        (Obs.Json.Obj (List.filter (fun (k, _) -> k <> "totals") fields));
      reject "a wrong schema version"
        (Obs.Json.Obj
           (List.map
              (fun (k, v) -> if k = "schema_version" then (k, Obs.Json.Int 999) else (k, v))
              fields));
      reject "a node-count mismatch"
        (Obs.Json.Obj
           (List.map (fun (k, v) -> if k = "nodes" then (k, Obs.Json.List []) else (k, v)) fields))
  | _ -> Alcotest.fail "encode did not return an object")

(* The trace and critical_path report sections are opt-in: absent (and the
   report byte-identical to before) unless explicitly passed, and the
   validator accepts them when present. *)
let test_report_optional_sections () =
  let r, sink = profiled_run () in
  let plain = Svm.Report_json.to_string r in
  check Alcotest.bool "no trace section by default" false (contains plain "\"trace\":");
  check Alcotest.bool "no critical_path section by default" false
    (contains plain "\"critical_path\":");
  let cp = Obs.Critical_path.analyze sink in
  let full = Svm.Report_json.to_string ~critical_path:cp ~trace:sink r in
  check Alcotest.bool "trace section surfaces dropped count" true
    (contains full "\"dropped\":");
  check Alcotest.bool "critical_path section present" true
    (contains full "\"critical_path\":");
  match Obs.Json.of_string full with
  | Error e -> Alcotest.failf "report with sections is not JSON: %s" e
  | Ok j -> (
      match Svm.Report_json.validate j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "report with sections rejected: %s" e)

let suite =
  [
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json determinism", `Quick, test_json_determinism);
    ("json rejects malformed input", `Quick, test_json_rejects_malformed);
    ("sink is bounded", `Quick, test_sink_bounded);
    ("trace is deterministic across same-seed runs", `Quick, test_trace_deterministic);
    ("trace covers the protocol activity", `Quick, test_trace_covers_protocol_activity);
    ("jsonl export round-trips", `Quick, test_jsonl_roundtrip);
    ("chrome export is well-formed", `Quick, test_chrome_wellformed);
    ("chrome causal layer (spans and counters)", `Quick, test_chrome_causal_layer);
    ("default trace has no causal kinds", `Quick, test_default_trace_has_no_causal_kinds);
    ("exporters record sink overflow", `Quick, test_export_overflow_records);
    ("write_file reports errors cleanly", `Quick, test_write_file_reports_errors);
    ("report sections are opt-in and validate", `Quick, test_report_optional_sections);
    ("legacy adapter matches the typed stream", `Quick, test_legacy_adapter_matches_typed_stream);
    ("legacy render produces the exact old strings", `Quick, test_legacy_render_exact_strings);
    ("report JSON validates", `Quick, test_report_validates);
    ("validate rejects malformed reports", `Quick, test_validate_rejects_malformed);
  ]
