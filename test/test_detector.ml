(* The heartbeat failure detector: suspicion, quorum depose, refutation,
   and rejoin.

   Four properties pin the detector down. (1) Fault-free equivalence:
   with no faults scheduled, selecting [--detector heartbeat] may add
   pings to the wire but must not change what the program computes — the
   memory digest and verified results equal the oracle run's, and no
   suspicion ever fires. (2) A gray failure (pause) of a replicated home
   drives the full cycle: Suspect -> quorum Depose -> Refute on resume ->
   Rejoin, with the digest still equal to the fault-free twin's and the
   victim demonstrably active after rejoining. (3) A healed network
   partition likewise preserves the digest. (4) Quorum safety: an even
   split leaves no side with a strict majority, so nobody is deposed. *)

let check = Alcotest.check

let expect cond fmt =
  Format.kasprintf (fun msg -> if not cond then Alcotest.fail msg) fmt

let app () =
  match Apps.Registry.find "lu" Apps.Registry.Test with
  | Some a -> a
  | None -> Alcotest.fail "lu/test app missing"

let sum_counter (r : Svm.Runtime.report) f =
  Array.fold_left (fun acc n -> acc + f n.Svm.Runtime.nr_counters) 0 r.Svm.Runtime.r_nodes

let test_heartbeat_matches_oracle () =
  let app = app () in
  List.iter
    (fun proto ->
      let run detector =
        let cfg = Svm.Config.make ~nprocs:4 ~detector proto in
        let sink = Obs.Trace.create_sink () in
        let r = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
        (r, sink)
      in
      let oracle, _ = run Svm.Config.Oracle in
      let hb, sink = run Svm.Config.Heartbeat in
      let name = Svm.Config.protocol_name proto in
      check Alcotest.bool
        (name ^ ": heartbeat digest equals oracle digest")
        true
        (Int64.equal hb.Svm.Runtime.r_mem_digest oracle.Svm.Runtime.r_mem_digest);
      check Alcotest.int (name ^ ": no suspicions without faults") 0
        (sum_counter hb (fun c -> c.Svm.Stats.suspicions));
      Obs.Trace.iter sink (fun ev ->
          match ev.Obs.Trace.kind with
          | Obs.Trace.Suspect _ | Obs.Trace.Depose _ ->
              Alcotest.failf "%s: spurious %s without faults" name
                (Obs.Trace.kind_name ev.Obs.Trace.kind)
          | _ -> ()))
    [ Svm.Config.Hlrc; Svm.Config.Lrc ]

(* One cell of the false-suspicion soak, driven directly: pause the
   victim long enough for the quorum to depose it, then let it resume. *)
let test_pause_deposes_then_rejoins () =
  let app = app () in
  let nprocs = 4 in
  let victim = nprocs - 1 in
  let cfg = Svm.Config.make ~nprocs ~replicas:2 Svm.Config.Hlrc in
  let clean = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  let from_ = 0.4 *. clean.Svm.Runtime.r_elapsed in
  let until = from_ +. Float.max 3000. (4. *. 700.) in
  let chaos =
    {
      Machine.Chaos.none with
      Machine.Chaos.faults = [ Machine.Chaos.Pause { node = victim; from_; until } ];
    }
  in
  let cfg =
    Svm.Config.make ~nprocs ~replicas:2 ~chaos ~detector:Svm.Config.Heartbeat
      Svm.Config.Hlrc
  in
  let sink = Obs.Trace.create_sink () in
  let paused = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
  check Alcotest.bool "digest equals the fault-free twin's" true
    (Int64.equal paused.Svm.Runtime.r_mem_digest clean.Svm.Runtime.r_mem_digest);
  let suspect_at = ref Float.infinity
  and depose_at = ref Float.infinity
  and refuted = ref false
  and rejoin_at = ref Float.infinity
  and active_after = ref false in
  Obs.Trace.iter sink (fun ev ->
      match ev.Obs.Trace.kind with
      | Obs.Trace.Suspect { peer } when peer = victim ->
          suspect_at := Float.min !suspect_at ev.Obs.Trace.time
      | Obs.Trace.Refute { peer } when peer = victim -> refuted := true
      | Obs.Trace.Depose { node } when node = victim ->
          depose_at := Float.min !depose_at ev.Obs.Trace.time
      | Obs.Trace.Rejoin { node } when node = victim ->
          rejoin_at := Float.min !rejoin_at ev.Obs.Trace.time
      | (Obs.Trace.Page_fetch _ | Obs.Trace.Barrier_arrive _)
        when ev.Obs.Trace.node = victim && ev.Obs.Trace.time > !rejoin_at ->
          active_after := true
      | _ -> ());
  expect (Float.is_finite !suspect_at) "the pause must draw a suspicion";
  expect (Float.is_finite !depose_at) "the quorum must depose the victim";
  expect !refuted "the resumed victim's ping must refute the suspicion";
  expect (Float.is_finite !rejoin_at) "the refuted victim must rejoin";
  expect
    (!suspect_at >= from_ && !suspect_at <= !depose_at && !depose_at <= !rejoin_at)
    "order must be pause (%.0f) <= suspect (%.0f) <= depose (%.0f) <= rejoin (%.0f)"
    from_ !suspect_at !depose_at !rejoin_at;
  expect !active_after "the rejoined victim must participate after the heal";
  expect
    (sum_counter paused (fun c -> c.Svm.Stats.refutations) >= 1)
    "refutations counter must record the false suspicion"

(* Sever the victim from everyone, heal, and require the digest to match
   the fault-free twin: retransmission carries every message across the
   heal, and the deposed victim rejoins with no split brain. *)
let test_partition_heals_digest_intact () =
  let app = app () in
  let nprocs = 4 in
  let victim = nprocs - 1 in
  List.iter
    (fun detector ->
      let cfg = Svm.Config.make ~nprocs ~replicas:2 Svm.Config.Hlrc in
      let clean = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
      let from_ = 0.35 *. clean.Svm.Runtime.r_elapsed in
      let until = from_ +. Float.max 3000. (0.2 *. clean.Svm.Runtime.r_elapsed) in
      let chaos =
        {
          Machine.Chaos.none with
          Machine.Chaos.faults =
            [ Machine.Chaos.Partition { group = [ victim ]; from_; until } ];
        }
      in
      let cfg = Svm.Config.make ~nprocs ~replicas:2 ~chaos ~detector Svm.Config.Hlrc in
      let r = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
      check Alcotest.bool
        (Svm.Config.detector_name detector ^ ": healed-partition digest intact")
        true
        (Int64.equal r.Svm.Runtime.r_mem_digest clean.Svm.Runtime.r_mem_digest))
    [ Svm.Config.Oracle; Svm.Config.Heartbeat ]

(* An even split: each side suspects the other, but 2 of 4 is not a
   strict majority of the live membership, so no depose may happen. *)
let test_even_split_deposes_nobody () =
  let app = app () in
  let nprocs = 4 in
  let cfg = Svm.Config.make ~nprocs ~replicas:2 Svm.Config.Hlrc in
  let clean = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  let from_ = 0.35 *. clean.Svm.Runtime.r_elapsed in
  let until = from_ +. Float.max 3000. (0.2 *. clean.Svm.Runtime.r_elapsed) in
  let chaos =
    {
      Machine.Chaos.none with
      Machine.Chaos.faults =
        [ Machine.Chaos.Partition { group = [ 2; 3 ]; from_; until } ];
    }
  in
  let cfg =
    Svm.Config.make ~nprocs ~replicas:2 ~chaos ~detector:Svm.Config.Heartbeat
      Svm.Config.Hlrc
  in
  let sink = Obs.Trace.create_sink () in
  let r = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:true) in
  Obs.Trace.iter sink (fun ev ->
      match ev.Obs.Trace.kind with
      | Obs.Trace.Depose _ ->
          Alcotest.fail "an even split must never reach a strict majority"
      | _ -> ());
  check Alcotest.bool "even-split digest intact" true
    (Int64.equal r.Svm.Runtime.r_mem_digest clean.Svm.Runtime.r_mem_digest)

let suite =
  [
    ("heartbeat matches oracle when fault-free", `Quick, test_heartbeat_matches_oracle);
    ("pause deposes then rejoins", `Quick, test_pause_deposes_then_rejoins);
    ("partition heals with digest intact", `Quick, test_partition_heals_digest_intact);
    ("even split deposes nobody", `Quick, test_even_split_deposes_nobody);
  ]
