(* Critical-path profiler: the backward walk must partition the run's
   end-to-end time exactly (local + data + lock + barrier + gc = path
   length), stay within what the per-node Stats breakdowns measured, and
   be deterministic — for every protocol x application pair. *)

let check = Alcotest.check
let nprocs = 4

let profiled_run app proto =
  let cfg = Svm.Config.make ~nprocs ~trace_spans:true proto in
  let sink = Obs.Trace.create_sink () in
  let r = Svm.Runtime.run ~sink cfg (app.Apps.Registry.body ~verify:false) in
  (r, sink)

let each_cell f =
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun proto ->
          let label =
            Printf.sprintf "%s/%s" app.Apps.Registry.name (Svm.Config.protocol_name proto)
          in
          f label app proto)
        Svm.Config.all_protocols)
    (Apps.Registry.all Apps.Registry.Test)

let sum_nodes r field =
  Array.fold_left
    (fun acc n -> acc +. field n.Svm.Runtime.nr_breakdown)
    0. r.Svm.Runtime.r_nodes

(* One profiled run per cell, all per-cell invariants checked in a single
   pass so the matrix stays cheap. *)
let test_per_cell_invariants () =
  each_cell (fun label app proto ->
      let r, sink = profiled_run app proto in
      check Alcotest.bool (label ^ ": sink did not overflow") true
        (Obs.Trace.dropped sink = 0);
      let cp = Obs.Critical_path.analyze sink in
      let open Obs.Critical_path in
      (* The walk partitions [0, cp_finish] exactly: every on-path
         microsecond lands in exactly one bucket. *)
      let total = cp.cp_local +. cp.cp_data +. cp.cp_lock +. cp.cp_barrier +. cp.cp_gc in
      let tol = 1e-6 *. Float.max 1. cp.cp_finish in
      if Float.abs (total -. cp.cp_finish) > tol then
        Alcotest.failf "%s: buckets sum to %.6f but the path length is %.6f" label total
          cp.cp_finish;
      check Alcotest.bool (label ^ ": path length positive") true (cp.cp_finish > 0.);
      (* The path is one chain through the run, so its per-bucket wait can
         never exceed what all nodes together spent in that bucket.  A wait
         span also covers request servicing done while blocked, which Stats
         credits to [protocol] instead, so the node-summed bound includes
         that slack. *)
      let slack = sum_nodes r (fun b -> b.Svm.Stats.protocol) +. tol in
      List.iter
        (fun (name, on_path, summed) ->
          if on_path > summed +. slack then
            Alcotest.failf "%s: on-path %s %.3f exceeds node-summed %.3f (+%.3f slack)" label
              name on_path summed slack)
        [
          ("data", cp.cp_data, sum_nodes r (fun b -> b.Svm.Stats.data));
          ("lock", cp.cp_lock, sum_nodes r (fun b -> b.Svm.Stats.lock));
          ("barrier", cp.cp_barrier, sum_nodes r (fun b -> b.Svm.Stats.barrier));
          ("gc", cp.cp_gc, sum_nodes r (fun b -> b.Svm.Stats.gc));
        ];
      (* Blame tables: sorted by wait (descending) and bounded by their
         bucket; epochs carry non-negative spread and a real straggler. *)
      let table name bucket rbs =
        let rec sorted = function
          | a :: (b :: _ as rest) -> a.rb_wait >= b.rb_wait && sorted rest
          | _ -> true
        in
        check Alcotest.bool (label ^ ": " ^ name ^ " sorted") true (sorted rbs);
        let attributed = List.fold_left (fun acc rb -> acc +. rb.rb_wait) 0. rbs in
        check Alcotest.bool (label ^ ": " ^ name ^ " within bucket") true
          (attributed <= bucket +. tol)
      in
      table "top pages" cp.cp_data cp.cp_top_pages;
      table "top locks" cp.cp_lock cp.cp_top_locks;
      List.iter
        (fun es ->
          check Alcotest.bool (label ^ ": epoch spread non-negative") true (es.es_spread >= 0.);
          check Alcotest.bool (label ^ ": straggler is a node") true
            (es.es_straggler >= 0 && es.es_straggler < nprocs))
        cp.cp_epochs;
      check Alcotest.bool (label ^ ": end node is a node") true
        (cp.cp_end_node >= 0 && cp.cp_end_node < nprocs))

(* Same seed, same analysis: the JSON section must be byte-identical
   across runs (the CI profile job asserts this end-to-end). *)
let test_analysis_deterministic () =
  let app = Apps.Registry.water_nsq Apps.Registry.Test in
  List.iter
    (fun proto ->
      let encode () =
        let _, sink = profiled_run app proto in
        Obs.Json.to_string (Obs.Critical_path.to_json (Obs.Critical_path.analyze sink))
      in
      check Alcotest.string
        (Printf.sprintf "water/%s analysis is deterministic" (Svm.Config.protocol_name proto))
        (encode ()) (encode ()))
    [ Svm.Config.Lrc; Svm.Config.Hlrc ]

(* Anchoring: an explicit finish/end_node moves the walk's origin, and the
   partition still telescopes to the supplied finish. *)
let test_explicit_anchor () =
  let app = Apps.Registry.lu Apps.Registry.Test in
  let _, sink = profiled_run app Svm.Config.Hlrc in
  let finish = 1234.5 in
  let cp = Obs.Critical_path.analyze ~finish ~end_node:2 sink in
  let open Obs.Critical_path in
  check (Alcotest.float 1e-6) "anchored path length" finish cp.cp_finish;
  check (Alcotest.float 1e-6) "anchored partition telescopes" finish
    (cp.cp_local +. cp.cp_data +. cp.cp_lock +. cp.cp_barrier +. cp.cp_gc)

(* Rendering smoke: the blame table and JSON section exist and carry the
   headline number. *)
let test_render_and_json () =
  let app = Apps.Registry.sor Apps.Registry.Test in
  let _, sink = profiled_run app Svm.Config.Hlrc in
  let cp = Obs.Critical_path.analyze sink in
  let rendered = Obs.Critical_path.render cp in
  check Alcotest.bool "render mentions the critical path" true
    (String.length rendered > 0);
  let j = Obs.Critical_path.to_json cp in
  (match Option.bind (Obs.Json.member "finish_us" j) Obs.Json.to_float with
  | Some f -> check (Alcotest.float 1e-6) "json finish" cp.Obs.Critical_path.cp_finish f
  | None -> Alcotest.fail "no finish_us in the JSON section");
  match Option.bind (Obs.Json.member "buckets" j) (Obs.Json.member "local") with
  | Some _ -> ()
  | None -> Alcotest.fail "no buckets.local in the JSON section"

(* An empty sink (no spans recorded) must not crash the analyzer. *)
let test_empty_sink () =
  let sink = Obs.Trace.create_sink ~capacity:16 () in
  let cp = Obs.Critical_path.analyze sink in
  check (Alcotest.float 0.) "empty trace: zero-length path" 0.
    cp.Obs.Critical_path.cp_finish

let suite =
  [
    ("per-cell invariants (every protocol x app)", `Quick, test_per_cell_invariants);
    ("analysis is deterministic", `Quick, test_analysis_deterministic);
    ("explicit anchor", `Quick, test_explicit_anchor);
    ("render and json sections", `Quick, test_render_and_json);
    ("empty sink", `Quick, test_empty_sink);
  ]
