(* Unit tests for the bounded domain pool: ordering, parity with the
   sequential path, error propagation and argument validation. *)

let check = Alcotest.check

let test_default_jobs () =
  check Alcotest.bool "at least one job" true (Harness.Pool.default_jobs () >= 1)

let test_create_rejects_zero () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Pool.create: jobs must be >= 1 (got 0)") (fun () ->
      ignore (Harness.Pool.create ~jobs:0))

let test_jobs_accessor () =
  check Alcotest.int "sequential" 1 (Harness.Pool.jobs Harness.Pool.sequential);
  check Alcotest.int "create" 3 (Harness.Pool.jobs (Harness.Pool.create ~jobs:3))

let test_map_empty () =
  let pool = Harness.Pool.create ~jobs:4 in
  check Alcotest.(list int) "empty" [] (Harness.Pool.map pool (fun x -> x) [])

let test_map_order () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      let pool = Harness.Pool.create ~jobs in
      check
        Alcotest.(list int)
        (Printf.sprintf "jobs=%d preserves input order" jobs)
        expected
        (Harness.Pool.map pool f xs))
    [ 1; 2; 4; 7 ]

let test_map_runs_every_task () =
  let pool = Harness.Pool.create ~jobs:4 in
  let hits = Atomic.make 0 in
  let n = 57 in
  ignore
    (Harness.Pool.map pool
       (fun x ->
         Atomic.incr hits;
         x)
       (List.init n Fun.id));
  check Alcotest.int "each task ran exactly once" n (Atomic.get hits)

exception Boom of int

let test_map_propagates_exception () =
  List.iter
    (fun jobs ->
      let pool = Harness.Pool.create ~jobs in
      (* All failing tasks finish; the lowest-index failure is re-raised, so
         the outcome is deterministic for any pool width. *)
      Alcotest.check_raises (Printf.sprintf "jobs=%d raises lowest index" jobs) (Boom 3)
        (fun () ->
          ignore
            (Harness.Pool.map pool
               (fun x -> if x >= 3 then raise (Boom x) else x)
               (List.init 10 Fun.id))))
    [ 1; 2; 4 ]

let suite =
  [
    ("default jobs", `Quick, test_default_jobs);
    ("create rejects zero", `Quick, test_create_rejects_zero);
    ("jobs accessor", `Quick, test_jobs_accessor);
    ("map empty", `Quick, test_map_empty);
    ("map order", `Quick, test_map_order);
    ("map runs every task", `Quick, test_map_runs_every_task);
    ("map propagates exception", `Quick, test_map_propagates_exception);
  ]
