(* Unit and property tests for the discrete-event substrate: heap, RNG and
   engine. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Sim.Heap.create () in
  List.iter (fun (k, v) -> Sim.Heap.push h ~key:k v) [ (3., "c"); (1., "a"); (2., "b") ];
  check Alcotest.(pair (float 0.) string) "min" (1., "a") (Sim.Heap.pop_min h);
  check Alcotest.(pair (float 0.) string) "next" (2., "b") (Sim.Heap.pop_min h);
  check Alcotest.(pair (float 0.) string) "last" (3., "c") (Sim.Heap.pop_min h);
  check Alcotest.bool "empty" true (Sim.Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  List.iter (fun v -> Sim.Heap.push h ~key:5. v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Sim.Heap.pop_min h)) in
  check Alcotest.(list int) "insertion order on equal keys" [ 1; 2; 3; 4 ] order

let test_heap_empty_pop () =
  let h : int Sim.Heap.t = Sim.Heap.create () in
  Alcotest.check_raises "pop empty"
    (Invalid_argument "Sim.Heap.pop_min: heap is empty")
    (fun () -> ignore (Sim.Heap.pop_min h));
  Alcotest.check_raises "peek empty"
    (Invalid_argument "Sim.Heap.peek_min: heap is empty")
    (fun () -> ignore (Sim.Heap.peek_min h))

(* Popped payloads must become unreachable: the event queue of a long
   simulation oscillates around a small size, and a popped slot that keeps
   its closure alive is a space leak proportional to everything those
   closures capture. *)
let test_heap_releases_payloads () =
  let h : string Sim.Heap.t = Sim.Heap.create () in
  let live = Weak.create 20 in
  for i = 0 to 19 do
    let payload = String.init 8 (fun j -> Char.chr (65 + ((i + j) mod 26))) in
    Weak.set live i (Some payload);
    Sim.Heap.push h ~key:(float_of_int (i mod 5)) payload
  done;
  for _ = 1 to 10 do
    ignore (Sim.Heap.pop_min h)
  done;
  Gc.full_major ();
  let alive = ref 0 in
  for i = 0 to 19 do
    if Weak.check live i then incr alive
  done;
  (* Keep the heap itself reachable until after the scan, or the GC is free
     to collect it — payloads included — before the full_major. *)
  check Alcotest.int "unpopped payloads still in the heap" 10
    (Sim.Heap.length (Sys.opaque_identity h));
  check Alcotest.int "only unpopped payloads stay reachable" 10 !alive

let test_heap_peek () =
  let h = Sim.Heap.create () in
  Sim.Heap.push h ~key:2. "x";
  Sim.Heap.push h ~key:1. "y";
  check Alcotest.(pair (float 0.) string) "peek" (1., "y") (Sim.Heap.peek_min h);
  check Alcotest.int "peek does not remove" 2 (Sim.Heap.length h)

let test_heap_clear () =
  let h = Sim.Heap.create () in
  for i = 0 to 9 do
    Sim.Heap.push h ~key:(float_of_int i) i
  done;
  Sim.Heap.clear h;
  check Alcotest.bool "cleared" true (Sim.Heap.is_empty h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iteri (fun i k -> Sim.Heap.push h ~key:k i) keys;
      let rec drain last =
        if Sim.Heap.is_empty h then true
        else
          let k, _ = Sim.Heap.pop_min h in
          k >= last && drain k
      in
      drain neg_infinity)

let prop_heap_conserves =
  QCheck.Test.make ~name:"heap returns every pushed element once" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Sim.Heap.create () in
      List.iter (fun x -> Sim.Heap.push h ~key:(float_of_int (x mod 7)) x) xs;
      let out = ref [] in
      while not (Sim.Heap.is_empty h) do
        out := snd (Sim.Heap.pop_min h) :: !out
      done;
      List.sort compare !out = List.sort compare xs)

(* Stronger than the two properties above combined: ties must come out in
   insertion order, i.e. a full drain IS List.stable_sort by key. *)
let prop_heap_stable_sort =
  QCheck.Test.make ~name:"heap drain is the stable sort by key" ~count:200
    QCheck.(list (int_bound 10))
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iteri (fun i k -> Sim.Heap.push h ~key:(float_of_int k) (k, i)) keys;
      let out = ref [] in
      while not (Sim.Heap.is_empty h) do
        out := snd (Sim.Heap.pop_min h) :: !out
      done;
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> compare (a : int) b)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      List.rev !out = expected)

(* ------------------------------------------------------------------ *)
(* Calendar queue — the engine's event set. Mirrors the heap properties
   (same ordering contract), plus a direct drain-equivalence check against
   the heap and adversarial key distributions that force the queue through
   its resize, sparse-tail and single-window code paths. *)

let test_cqueue_ordering () =
  let q = Sim.Cqueue.create () in
  List.iter (fun (k, v) -> Sim.Cqueue.push q ~key:k v) [ (3., "c"); (1., "a"); (2., "b") ];
  check Alcotest.(pair (float 0.) string) "min" (1., "a") (Sim.Cqueue.pop_min q);
  check Alcotest.(pair (float 0.) string) "next" (2., "b") (Sim.Cqueue.pop_min q);
  check Alcotest.(pair (float 0.) string) "last" (3., "c") (Sim.Cqueue.pop_min q);
  check Alcotest.bool "empty" true (Sim.Cqueue.is_empty q)

let test_cqueue_fifo_ties () =
  let q = Sim.Cqueue.create () in
  List.iter (fun v -> Sim.Cqueue.push q ~key:5. v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Sim.Cqueue.pop_min q)) in
  check Alcotest.(list int) "insertion order on equal keys" [ 1; 2; 3; 4 ] order

let test_cqueue_empty_pop () =
  let q : int Sim.Cqueue.t = Sim.Cqueue.create () in
  Alcotest.check_raises "pop empty"
    (Invalid_argument "Sim.Cqueue.pop_min: queue is empty")
    (fun () -> ignore (Sim.Cqueue.pop_min q));
  Alcotest.check_raises "peek empty"
    (Invalid_argument "Sim.Cqueue.peek_min: queue is empty")
    (fun () -> ignore (Sim.Cqueue.peek_min q))

let test_cqueue_peek_and_clear () =
  let q = Sim.Cqueue.create () in
  Sim.Cqueue.push q ~key:2. "x";
  Sim.Cqueue.push q ~key:1. "y";
  check Alcotest.(pair (float 0.) string) "peek" (1., "y") (Sim.Cqueue.peek_min q);
  check Alcotest.int "peek does not remove" 2 (Sim.Cqueue.length q);
  Sim.Cqueue.clear q;
  check Alcotest.bool "cleared" true (Sim.Cqueue.is_empty q)

(* Same space-leak guarantee as the heap: a popped entry's payload must not
   stay reachable from the queue's pooled slots. *)
let test_cqueue_releases_payloads () =
  let q : string Sim.Cqueue.t = Sim.Cqueue.create () in
  let live = Weak.create 20 in
  for i = 0 to 19 do
    let payload = String.init 8 (fun j -> Char.chr (65 + ((i + j) mod 26))) in
    Weak.set live i (Some payload);
    Sim.Cqueue.push q ~key:(float_of_int (i mod 5)) payload
  done;
  for _ = 1 to 10 do
    ignore (Sim.Cqueue.pop_min q)
  done;
  Gc.full_major ();
  let alive = ref 0 in
  for i = 0 to 19 do
    if Weak.check live i then incr alive
  done;
  check Alcotest.int "unpopped payloads still in the queue" 10
    (Sim.Cqueue.length (Sys.opaque_identity q));
  check Alcotest.int "only unpopped payloads stay reachable" 10 !alive

(* Key distributions that exercise every structural regime: dense clusters
   (ties, one window), wide spans (sparse tail, direct-search fallback),
   and enough volume to cross grow/shrink thresholds. *)
let cqueue_keys_gen =
  QCheck.(
    list_of_size Gen.(int_bound 300)
      (oneof
         [
           float_bound_inclusive 10.;
           float_bound_inclusive 1000.;
           map (fun i -> float_of_int i *. 1e6) (int_bound 50);
           always 42.;
         ]))

let prop_cqueue_stable_sort =
  QCheck.Test.make ~name:"cqueue drain is the stable sort by key" ~count:300
    cqueue_keys_gen
    (fun keys ->
      let q = Sim.Cqueue.create () in
      List.iteri (fun i k -> Sim.Cqueue.push q ~key:k (k, i)) keys;
      let out = ref [] in
      while not (Sim.Cqueue.is_empty q) do
        out := snd (Sim.Cqueue.pop_min q) :: !out
      done;
      let expected =
        List.stable_sort
          (fun (a, _) (b, _) -> compare (a : float) b)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      List.rev !out = expected)

(* The engine contract, stated directly: the calendar queue and the heap
   drain any push sequence identically — keys AND payloads, including
   interleaved pops (the engine pops between pushes, so mid-stream state
   must agree too, not just a final drain). *)
let prop_cqueue_matches_heap =
  QCheck.Test.make ~name:"cqueue and heap agree under interleaved push/pop"
    ~count:300
    QCheck.(pair (list (pair (int_bound 10) bool)) cqueue_keys_gen)
    (fun (ops, extra) ->
      let keys = List.map (fun (k, pop) -> (float_of_int k, pop)) ops @ List.map (fun k -> (k, false)) extra in
      let q = Sim.Cqueue.create () in
      let h = Sim.Heap.create () in
      let i = ref 0 in
      let agree = ref true in
      List.iter
        (fun (k, pop) ->
          Sim.Cqueue.push q ~key:k !i;
          Sim.Heap.push h ~key:k !i;
          incr i;
          if pop && not (Sim.Cqueue.is_empty q) then
            if Sim.Cqueue.pop_min q <> Sim.Heap.pop_min h then agree := false)
        keys;
      while !agree && not (Sim.Cqueue.is_empty q) do
        if Sim.Cqueue.pop_min q <> Sim.Heap.pop_min h then agree := false
      done;
      !agree && Sim.Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* RNG *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Sim.Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Sim.Rng.bits64 b) in
  check Alcotest.bool "different streams" true (xs <> ys)

let test_rng_split_independent () =
  let a = Sim.Rng.create ~seed:3 in
  let b = Sim.Rng.split a in
  let xs = List.init 20 (fun _ -> Sim.Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Sim.Rng.bits64 b) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let prop_rng_int_range =
  QCheck.Test.make ~name:"rng int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Sim.Rng.create ~seed in
      let x = Sim.Rng.int r bound in
      x >= 0 && x < bound)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float stays in [0, bound)" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Sim.Rng.create ~seed in
      let x = Sim.Rng.float r 1.0 in
      x >= 0.0 && x < 1.0)

let test_rng_mean () =
  let r = Sim.Rng.create ~seed:11 in
  let n = 10000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean near 0.5" true (mean > 0.47 && mean < 0.53)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~at:3. (fun () -> log := 3 :: !log);
  Sim.Engine.schedule e ~at:1. (fun () -> log := 1 :: !log);
  Sim.Engine.schedule e ~at:2. (fun () -> log := 2 :: !log);
  ignore (Sim.Engine.run e);
  check Alcotest.(list int) "timestamp order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_now_advances () =
  let e = Sim.Engine.create () in
  let seen = ref [] in
  Sim.Engine.schedule e ~at:5. (fun () -> seen := Sim.Engine.now e :: !seen);
  Sim.Engine.schedule e ~at:10. (fun () -> seen := Sim.Engine.now e :: !seen);
  let final = Sim.Engine.run e in
  check Alcotest.(list (float 0.)) "now at each event" [ 5.; 10. ] (List.rev !seen);
  check (Alcotest.float 0.) "final time" 10. final

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~at:1. (fun () ->
      log := "a" :: !log;
      Sim.Engine.schedule e ~at:2. (fun () -> log := "b" :: !log));
  ignore (Sim.Engine.run e);
  check Alcotest.(list string) "nested" [ "a"; "b" ] (List.rev !log)

let test_engine_past_rejected () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~at:10. (fun () ->
      try
        Sim.Engine.schedule e ~at:1. (fun () -> ());
        Alcotest.fail "scheduling in the past must raise"
      with Invalid_argument _ -> ());
  ignore (Sim.Engine.run e)

let test_engine_equal_times_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    Sim.Engine.schedule e ~at:7. (fun () -> log := i :: !log)
  done;
  ignore (Sim.Engine.run e);
  check Alcotest.(list int) "fifo at equal time" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_step_and_counts () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~at:1. (fun () -> ());
  Sim.Engine.schedule e ~at:2. (fun () -> ());
  check Alcotest.int "pending" 2 (Sim.Engine.pending e);
  check Alcotest.bool "step one" true (Sim.Engine.step e);
  check Alcotest.int "executed" 1 (Sim.Engine.executed e);
  check Alcotest.bool "step two" true (Sim.Engine.step e);
  check Alcotest.bool "drained" false (Sim.Engine.step e)

let suite =
  [
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap empty pop", `Quick, test_heap_empty_pop);
    ("heap releases payloads", `Quick, test_heap_releases_payloads);
    ("heap peek", `Quick, test_heap_peek);
    ("heap clear", `Quick, test_heap_clear);
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_heap_conserves;
    QCheck_alcotest.to_alcotest prop_heap_stable_sort;
    ("cqueue ordering", `Quick, test_cqueue_ordering);
    ("cqueue fifo ties", `Quick, test_cqueue_fifo_ties);
    ("cqueue empty pop", `Quick, test_cqueue_empty_pop);
    ("cqueue peek and clear", `Quick, test_cqueue_peek_and_clear);
    ("cqueue releases payloads", `Quick, test_cqueue_releases_payloads);
    QCheck_alcotest.to_alcotest prop_cqueue_stable_sort;
    QCheck_alcotest.to_alcotest prop_cqueue_matches_heap;
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng split independent", `Quick, test_rng_split_independent);
    QCheck_alcotest.to_alcotest prop_rng_int_range;
    QCheck_alcotest.to_alcotest prop_rng_float_range;
    ("rng mean", `Quick, test_rng_mean);
    ("engine ordering", `Quick, test_engine_ordering);
    ("engine now advances", `Quick, test_engine_now_advances);
    ("engine nested scheduling", `Quick, test_engine_nested_scheduling);
    ("engine rejects past", `Quick, test_engine_past_rejected);
    ("engine fifo at equal times", `Quick, test_engine_equal_times_fifo);
    ("engine step and counts", `Quick, test_engine_step_and_counts);
  ]
