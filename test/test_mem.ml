(* Unit and property tests for the memory substrate: layout, diffs, page
   tables and accounting. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_layout_basics () =
  let l = Mem.Layout.create ~page_words:1024 in
  check Alcotest.int "page words" 1024 (Mem.Layout.page_words l);
  check Alcotest.int "page bytes" 8192 (Mem.Layout.page_bytes l);
  check Alcotest.int "page of 0" 0 (Mem.Layout.page_of_addr l 0);
  check Alcotest.int "page of 1023" 0 (Mem.Layout.page_of_addr l 1023);
  check Alcotest.int "page of 1024" 1 (Mem.Layout.page_of_addr l 1024);
  check Alcotest.int "offset" 5 (Mem.Layout.offset_of_addr l 1029);
  check Alcotest.int "base of page 3" 3072 (Mem.Layout.base_of_page l 3)

let test_layout_pages_for () =
  let l = Mem.Layout.create ~page_words:256 in
  check Alcotest.int "exact fit" 1 (Mem.Layout.pages_for l 256);
  check Alcotest.int "one more" 2 (Mem.Layout.pages_for l 257);
  check Alcotest.int "zero" 0 (Mem.Layout.pages_for l 0)

let test_layout_rejects_non_power () =
  Alcotest.check_raises "non power of two" (Invalid_argument
    "Layout.create: page_words must be a positive power of two")
    (fun () -> ignore (Mem.Layout.create ~page_words:1000))

let prop_layout_roundtrip =
  QCheck.Test.make ~name:"layout addr = base + offset" ~count:300
    QCheck.(pair (int_range 0 7) (int_range 0 1_000_000))
    (fun (shift, addr) ->
      let page_words = 64 lsl shift in
      let l = Mem.Layout.create ~page_words in
      let page = Mem.Layout.page_of_addr l addr in
      let off = Mem.Layout.offset_of_addr l addr in
      Mem.Layout.base_of_page l page + off = addr && off >= 0 && off < page_words)

(* ------------------------------------------------------------------ *)
(* Diff *)

let mk_page f = Mem.Words.of_array (Array.init 64 f)

let test_diff_roundtrip () =
  let twin = mk_page float_of_int in
  let current = Mem.Words.copy twin in
  Mem.Words.set current 3 99.;
  Mem.Words.set current 17 (-1.);
  let d = Mem.Diff.create ~page:0 ~twin ~current in
  check Alcotest.int "two words changed" 2 (Mem.Diff.word_count d);
  let target = Mem.Words.copy twin in
  Mem.Diff.apply d target;
  check Alcotest.bool "apply reproduces current" true
    (Mem.Words.to_array target = Mem.Words.to_array current)

let test_diff_empty () =
  let twin = mk_page float_of_int in
  let d = Mem.Diff.create ~page:0 ~twin ~current:(Mem.Words.copy twin) in
  check Alcotest.bool "empty" true (Mem.Diff.is_empty d);
  check Alcotest.int "size is header only" 16 (Mem.Diff.size_bytes d)

let test_diff_bitwise_semantics () =
  (* Writing the same bit pattern is not a change; 0.0 vs -0.0 is. *)
  let twin = Mem.Words.make 4 in
  let current = Mem.Words.copy twin in
  Mem.Words.set current 0 0.0;
  Mem.Words.set current 1 (-0.0);
  let d = Mem.Diff.create ~page:0 ~twin ~current in
  check Alcotest.int "only -0.0 differs" 1 (Mem.Diff.word_count d)

let test_diff_length_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Diff.create: twin and current differ in length") (fun () ->
      ignore (Mem.Diff.create ~page:0 ~twin:(Mem.Words.make 3) ~current:(Mem.Words.make 4)))

let test_diff_merge_pages_mismatch () =
  let twin = mk_page float_of_int in
  let d0 = Mem.Diff.create ~page:0 ~twin ~current:twin in
  let d1 = Mem.Diff.create ~page:1 ~twin ~current:twin in
  Alcotest.check_raises "different pages" (Invalid_argument "Diff.merge: different pages")
    (fun () -> ignore (Mem.Diff.merge d0 d1))

let diff_gen =
  (* random sparse modification of a 64-word page *)
  QCheck.Gen.(
    list_size (int_bound 20) (pair (int_bound 63) (float_range (-100.) 100.)))

let apply_writes base writes =
  let c = Mem.Words.copy base in
  List.iter (fun (i, v) -> Mem.Words.set c i v) writes;
  c

let prop_diff_apply_equals_writes =
  QCheck.Test.make ~name:"diff apply == replaying the writes" ~count:300
    (QCheck.make diff_gen) (fun writes ->
      let twin = mk_page float_of_int in
      let current = apply_writes twin writes in
      let d = Mem.Diff.create ~page:0 ~twin ~current in
      let target = Mem.Words.copy twin in
      Mem.Diff.apply d target;
      Mem.Words.to_array target = Mem.Words.to_array current)

let prop_diff_merge_equivalent =
  QCheck.Test.make ~name:"merge a b == apply a then b" ~count:300
    (QCheck.make (QCheck.Gen.pair diff_gen diff_gen)) (fun (w1, w2) ->
      let base = mk_page float_of_int in
      let c1 = apply_writes base w1 in
      let d1 = Mem.Diff.create ~page:0 ~twin:base ~current:c1 in
      let c2 = apply_writes c1 w2 in
      let d2 = Mem.Diff.create ~page:0 ~twin:c1 ~current:c2 in
      let merged = Mem.Diff.merge d1 d2 in
      let via_merge = Mem.Words.copy base in
      Mem.Diff.apply merged via_merge;
      let via_seq = Mem.Words.copy base in
      Mem.Diff.apply d1 via_seq;
      Mem.Diff.apply d2 via_seq;
      Mem.Words.to_array via_merge = Mem.Words.to_array via_seq)

let prop_diff_offsets_sorted =
  QCheck.Test.make ~name:"diff offsets strictly increasing" ~count:300
    (QCheck.make diff_gen) (fun writes ->
      let twin = mk_page float_of_int in
      let current = apply_writes twin writes in
      let d = Mem.Diff.create ~page:0 ~twin ~current in
      let offsets = Array.to_list d.Mem.Diff.offsets in
      List.sort_uniq compare offsets = offsets)

(* ------------------------------------------------------------------ *)
(* Old-vs-new diff equivalence.

   The Bigarray rewrite must be observationally identical to the original
   float-array implementation. [Ref] below *is* that implementation
   (boxed (offset, value) pairs, Int64 bit comparison, list-building
   create, two-pointer merge), preserved as an executable specification;
   the properties drive both over pages that include the nasty float
   cases — +0.0 / -0.0, NaN (bit-compared), infinities — and require the
   same entries, the same wire size and the same merge-wins semantics. *)

module Ref = struct
  type t = { page : int; words : (int * float) array }

  let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

  let create ~page ~twin ~current =
    let changed = ref [] in
    for i = Array.length current - 1 downto 0 do
      if not (same_bits twin.(i) current.(i)) then changed := (i, current.(i)) :: !changed
    done;
    { page; words = Array.of_list !changed }

  let apply t data = Array.iter (fun (o, v) -> data.(o) <- v) t.words

  let size_bytes t = 16 + (12 * Array.length t.words)

  let merge older newer =
    let na = Array.length older.words and nb = Array.length newer.words in
    let acc = ref [] in
    let i = ref 0 and j = ref 0 in
    while !i < na || !j < nb do
      if !i >= na then begin
        acc := newer.words.(!j) :: !acc;
        incr j
      end
      else if !j >= nb then begin
        acc := older.words.(!i) :: !acc;
        incr i
      end
      else
        let oa, _ = older.words.(!i) and ob, _ = newer.words.(!j) in
        if oa < ob then begin
          acc := older.words.(!i) :: !acc;
          incr i
        end
        else if ob < oa then begin
          acc := newer.words.(!j) :: !acc;
          incr j
        end
        else begin
          acc := newer.words.(!j) :: !acc;
          incr i;
          incr j
        end
    done;
    { page = older.page; words = Array.of_list (List.rev !acc) }
end

(* Entries as (offset, bits) lists: NaN-safe structural comparison. *)
let entries_new d =
  let acc = ref [] in
  Mem.Diff.iter (fun o v -> acc := (o, Int64.bits_of_float v) :: !acc) d;
  List.rev !acc

let entries_ref (d : Ref.t) =
  Array.to_list (Array.map (fun (o, v) -> (o, Int64.bits_of_float v)) d.Ref.words)

(* Word values stressing bit-equality: zeros of both signs, NaN,
   infinities, plus ordinary magnitudes. *)
let word_gen =
  QCheck.Gen.(
    frequency
      [
        (2, oneofl [ 0.0; -0.0; Float.nan; Float.infinity; Float.neg_infinity; 1.0 ]);
        (5, float_range (-100.) 100.);
      ])

let page_gen n = QCheck.Gen.(array_size (return n) word_gen)

let pair_gen n = QCheck.Gen.pair (page_gen n) (page_gen n)

let prop_diff_matches_reference =
  QCheck.Test.make ~name:"bigarray diff == array-backed reference" ~count:500
    (QCheck.make (pair_gen 32)) (fun (a, b) ->
      let d_new = Mem.Diff.create ~page:7 ~twin:(Mem.Words.of_array a) ~current:(Mem.Words.of_array b) in
      let d_ref = Ref.create ~page:7 ~twin:a ~current:b in
      entries_new d_new = entries_ref d_ref
      && Mem.Diff.size_bytes d_new = Ref.size_bytes d_ref
      &&
      (* applying both to a third page gives bit-identical results *)
      let base = Array.map (fun v -> v +. 0.5) a in
      let t_new = Mem.Words.of_array base in
      Mem.Diff.apply d_new t_new;
      let t_ref = Array.copy base in
      Ref.apply d_ref t_ref;
      Array.to_list (Array.map Int64.bits_of_float (Mem.Words.to_array t_new))
      = Array.to_list (Array.map Int64.bits_of_float t_ref))

let prop_diff_merge_matches_reference =
  QCheck.Test.make ~name:"bigarray merge == array-backed reference merge" ~count:500
    (QCheck.make QCheck.Gen.(triple (page_gen 32) (page_gen 32) (page_gen 32)))
    (fun (base, c1, c2) ->
      let d1_new = Mem.Diff.create ~page:3 ~twin:(Mem.Words.of_array base) ~current:(Mem.Words.of_array c1) in
      let d2_new = Mem.Diff.create ~page:3 ~twin:(Mem.Words.of_array c1) ~current:(Mem.Words.of_array c2) in
      let d1_ref = Ref.create ~page:3 ~twin:base ~current:c1 in
      let d2_ref = Ref.create ~page:3 ~twin:c1 ~current:c2 in
      entries_new (Mem.Diff.merge d1_new d2_new) = entries_ref (Ref.merge d1_ref d2_ref))

(* ------------------------------------------------------------------ *)
(* Page table *)

let test_page_table_ensure () =
  let l = Mem.Layout.create ~page_words:64 in
  let pt = Mem.Page_table.create l in
  let e = Mem.Page_table.ensure pt 5 in
  check Alcotest.int "page id" 5 e.Mem.Page_table.page;
  check Alcotest.bool "uncached" true (e.Mem.Page_table.data = None);
  check Alcotest.bool "same entry" true (e == Mem.Page_table.ensure pt 5);
  check Alcotest.int "npages" 6 (Mem.Page_table.npages pt)

let test_page_table_entry_missing () =
  let l = Mem.Layout.create ~page_words:64 in
  let pt = Mem.Page_table.create l in
  Alcotest.check_raises "never touched"
    (Invalid_argument "Page_table.entry: page 0 out of range") (fun () ->
      ignore (Mem.Page_table.entry pt 0))

let test_page_table_twin () =
  let l = Mem.Layout.create ~page_words:8 in
  let pt = Mem.Page_table.create l in
  let e = Mem.Page_table.ensure pt 0 in
  let data = Mem.Page_table.attach_copy pt e in
  Mem.Words.set data 0 7.;
  Mem.Page_table.make_twin e;
  Mem.Words.set data 0 8.;
  (match e.Mem.Page_table.twin with
  | Some t -> check (Alcotest.float 0.) "twin keeps old value" 7. (Mem.Words.get t 0)
  | None -> Alcotest.fail "twin missing");
  Mem.Page_table.drop_twin e;
  check Alcotest.bool "twin dropped" true (e.Mem.Page_table.twin = None)

let test_page_table_cached_pages () =
  let l = Mem.Layout.create ~page_words:8 in
  let pt = Mem.Page_table.create l in
  ignore (Mem.Page_table.ensure pt 0);
  let e1 = Mem.Page_table.ensure pt 1 in
  ignore (Mem.Page_table.attach_copy pt e1);
  let cached = Mem.Page_table.cached_pages pt in
  check Alcotest.(list int) "only cached" [ 1 ]
    (List.map (fun e -> e.Mem.Page_table.page) cached)

(* ------------------------------------------------------------------ *)
(* Accounting *)

let test_accounting () =
  let a = Mem.Accounting.create () in
  Mem.Accounting.add a 100;
  Mem.Accounting.add a 50;
  check Alcotest.int "current" 150 (Mem.Accounting.current a);
  Mem.Accounting.sub a 120;
  check Alcotest.int "after sub" 30 (Mem.Accounting.current a);
  check Alcotest.int "peak" 150 (Mem.Accounting.peak a);
  Mem.Accounting.sub a 1000;
  check Alcotest.int "floor at zero" 0 (Mem.Accounting.current a);
  Mem.Accounting.reset a;
  check Alcotest.int "reset peak" 0 (Mem.Accounting.peak a)

let suite =
  [
    ("layout basics", `Quick, test_layout_basics);
    ("layout pages_for", `Quick, test_layout_pages_for);
    ("layout rejects non-power", `Quick, test_layout_rejects_non_power);
    QCheck_alcotest.to_alcotest prop_layout_roundtrip;
    ("diff roundtrip", `Quick, test_diff_roundtrip);
    ("diff empty", `Quick, test_diff_empty);
    ("diff bitwise semantics", `Quick, test_diff_bitwise_semantics);
    ("diff length mismatch", `Quick, test_diff_length_mismatch);
    ("diff merge page mismatch", `Quick, test_diff_merge_pages_mismatch);
    QCheck_alcotest.to_alcotest prop_diff_apply_equals_writes;
    QCheck_alcotest.to_alcotest prop_diff_merge_equivalent;
    QCheck_alcotest.to_alcotest prop_diff_offsets_sorted;
    QCheck_alcotest.to_alcotest prop_diff_matches_reference;
    QCheck_alcotest.to_alcotest prop_diff_merge_matches_reference;
    ("page table ensure", `Quick, test_page_table_ensure);
    ("page table missing entry", `Quick, test_page_table_entry_missing);
    ("page table twin", `Quick, test_page_table_twin);
    ("page table cached pages", `Quick, test_page_table_cached_pages);
    ("accounting", `Quick, test_accounting);
  ]
