(* Tests for the machine model: cost table, mesh network, node timelines. *)

let check = Alcotest.check

let close = Alcotest.float 1e-6

(* The cost table must reproduce the paper's 4.3 arithmetic exactly. *)
let test_paragon_derived_costs () =
  let c = Machine.Costs.paragon in
  let lat = c.Machine.Costs.message_latency in
  let page = c.Machine.Costs.byte_transfer *. 8192. in
  let intr = c.Machine.Costs.receive_interrupt in
  let fault = c.Machine.Costs.page_fault in
  check close "HLRC page miss" 1172. (fault +. lat +. intr +. page +. lat);
  check close "OHLRC page miss" 482. (fault +. lat +. page +. lat);
  check close "LRC page miss" 1130. (fault +. (3. *. lat) +. intr);
  check close "OLRC page miss" 440. (fault +. (3. *. lat));
  check close "remote acquire" 1550.
    ((3. *. lat) +. (2. *. intr) +. (2. *. c.Machine.Costs.page_invalidate))

let test_network_hops () =
  (* 16 nodes on a 4x4 mesh: node = row * 4 + col *)
  let net = Machine.Network.create ~costs:Machine.Costs.paragon ~nprocs:16 in
  check Alcotest.int "same node" 0 (Machine.Network.hops net ~src:0 ~dst:0);
  check Alcotest.int "same row" 3 (Machine.Network.hops net ~src:0 ~dst:3);
  check Alcotest.int "same col" 3 (Machine.Network.hops net ~src:0 ~dst:12);
  check Alcotest.int "diagonal" 6 (Machine.Network.hops net ~src:0 ~dst:15)

let test_network_transfer_time () =
  let net = Machine.Network.create ~costs:Machine.Costs.paragon ~nprocs:4 in
  check close "loopback free" 0. (Machine.Network.transfer_time net ~src:1 ~dst:1 ~bytes:8192);
  let small = Machine.Network.transfer_time net ~src:0 ~dst:1 ~bytes:0 in
  let large = Machine.Network.transfer_time net ~src:0 ~dst:1 ~bytes:8192 in
  check Alcotest.bool "latency floor" true (small >= 50.);
  check close "page adds 92us" 92. (large -. small)

let test_network_monotone_in_size () =
  let net = Machine.Network.create ~costs:Machine.Costs.paragon ~nprocs:64 in
  let t b = Machine.Network.transfer_time net ~src:3 ~dst:42 ~bytes:b in
  check Alcotest.bool "monotone" true (t 0 < t 100 && t 100 < t 10000)

let test_network_rejects_empty () =
  Alcotest.check_raises "nprocs must be positive"
    (Invalid_argument "Network.create: nprocs must be positive") (fun () ->
      ignore (Machine.Network.create ~costs:Machine.Costs.paragon ~nprocs:0))

let test_node_advance () =
  let n = Machine.Node.create 3 in
  Machine.Node.advance n 10.;
  Machine.Node.advance n 5.;
  check close "clock accumulates" 15. n.Machine.Node.ck.Machine.Node.clock;
  Machine.Node.sync_to n 12.;
  check close "sync_to never rewinds" 15. n.Machine.Node.ck.Machine.Node.clock;
  Machine.Node.sync_to n 20.;
  check close "sync_to advances" 20. n.Machine.Node.ck.Machine.Node.clock

let test_node_interrupt_service () =
  let n = Machine.Node.create 0 in
  Machine.Node.advance n 100.;
  let done_t = Machine.Node.interrupt_service n ~interrupt:690. ~arrival:40. ~cost:10. in
  check close "reply timed from arrival" 740. done_t;
  check close "overhead charged to the node" 800. n.Machine.Node.ck.Machine.Node.clock;
  check Alcotest.int "interrupt counted" 1 n.Machine.Node.interrupts

let test_node_coproc_fifo () =
  let n = Machine.Node.create 0 in
  (* Two requests: the second arrives while the first is being serviced. *)
  let t1 = Machine.Node.coproc_service n ~dispatch:5. ~arrival:0. ~cost:100. in
  let t2 = Machine.Node.coproc_service n ~dispatch:5. ~arrival:50. ~cost:100. in
  check close "first" 105. t1;
  check close "second queues behind first" 210. t2;
  check close "compute clock untouched" 0. n.Machine.Node.ck.Machine.Node.clock;
  (* A request arriving after the co-processor went idle starts immediately. *)
  let t3 = Machine.Node.coproc_service n ~dispatch:5. ~arrival:1000. ~cost:10. in
  check close "idle start" 1015. t3

let suite =
  [
    ("paragon derived costs (paper 4.3)", `Quick, test_paragon_derived_costs);
    ("mesh hops", `Quick, test_network_hops);
    ("transfer time", `Quick, test_network_transfer_time);
    ("transfer monotone in size", `Quick, test_network_monotone_in_size);
    ("network rejects nprocs=0", `Quick, test_network_rejects_empty);
    ("node clock", `Quick, test_node_advance);
    ("node interrupt service", `Quick, test_node_interrupt_service);
    ("coproc fifo", `Quick, test_node_coproc_fifo);
  ]
