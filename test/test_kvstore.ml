(* The serving workload: linearizable get/put under every protocol,
   transaction atomicity under chaos, and the Zipfian sampler behind the
   open-loop traffic plan. *)

let check = Alcotest.check

let small =
  (* Small enough to sweep all protocols in milliseconds, big enough that
     every op kind occurs and buckets collide across nodes. *)
  {
    Apps.Kvstore.default with
    Apps.Kvstore.buckets = 16;
    traffic =
      {
        Apps.Kvstore.default.Apps.Kvstore.traffic with
        Traffic.ops = 400;
        keys = 256;
        rate = 200_000.;
      };
  }

let run_kvstore ?(chaos = Machine.Chaos.none) ?(verify = true) ~nprocs proto p =
  let app = Apps.Registry.kvstore_of_params p in
  Svm.Runtime.run (Svm.Config.make ~nprocs ~chaos proto) (app.Apps.Registry.body ~verify)

(* --- correctness under every protocol ------------------------------- *)

let test_all_protocols () =
  (* verify:true replays the sequential reference inside the run; on top of
     that the final digest must agree across every protocol and machine
     size, because the op multiset fully determines the memory. *)
  let digests =
    List.concat_map
      (fun proto ->
        List.map
          (fun nprocs ->
            try (run_kvstore ~nprocs proto small).Svm.Runtime.r_mem_digest
            with e ->
              Alcotest.failf "kvstore under %s at P=%d: %s"
                (Svm.Config.protocol_name proto) nprocs (Printexc.to_string e))
          [ 2; 4 ])
      Svm.Config.all_protocols
  in
  match digests with
  | [] -> Alcotest.fail "no protocols"
  | d0 :: rest ->
      List.iteri
        (fun i d ->
          check Alcotest.int64 (Printf.sprintf "digest %d matches protocol 0" (i + 1)) d0 d)
        rest

let test_reference_conserves_transfers () =
  let _counts, deltas = Apps.Kvstore.reference small in
  let sum = Array.fold_left ( + ) 0 deltas in
  check Alcotest.int "transfer deltas conserve" 0 sum

(* --- transaction atomicity under chaos ------------------------------ *)

let test_txn_atomicity_under_chaos () =
  (* Drops, duplicates, jitter and stragglers reorder everything the
     transport allows; a torn transaction (one side applied) would break
     delta conservation and diverge from the fault-free digest. *)
  let chaos =
    {
      Machine.Chaos.none with
      Machine.Chaos.drop_rate = 0.02;
      dup_rate = 0.01;
      jitter = 5.0;
      straggler = 1.25;
      fault_seed = 7;
    }
  in
  List.iter
    (fun proto ->
      let clean = run_kvstore ~nprocs:4 proto small in
      let chaotic = run_kvstore ~chaos ~nprocs:4 proto small in
      check Alcotest.int64
        (Printf.sprintf "%s: chaos digest matches fault-free"
           (Svm.Config.protocol_name proto))
        clean.Svm.Runtime.r_mem_digest chaotic.Svm.Runtime.r_mem_digest)
    Svm.Config.all_protocols

(* --- serving report ------------------------------------------------- *)

let test_ops_report () =
  let r = run_kvstore ~nprocs:4 Svm.Config.Hlrc small in
  match r.Svm.Runtime.r_ops with
  | None -> Alcotest.fail "kvstore run must carry an ops report"
  | Some o ->
      let n = o.Svm.Runtime.or_gets + o.Svm.Runtime.or_puts + o.Svm.Runtime.or_txns in
      check Alcotest.int "every planned op completed" small.Apps.Kvstore.traffic.Traffic.ops n;
      check Alcotest.int "one latency per op" n (Array.length o.Svm.Runtime.or_lats);
      let sorted = ref true in
      Array.iteri
        (fun i v -> if i > 0 && v < o.Svm.Runtime.or_lats.(i - 1) then sorted := false)
        o.Svm.Runtime.or_lats;
      check Alcotest.bool "latencies sorted ascending" true !sorted;
      check Alcotest.bool "latencies non-negative" true
        (Array.for_all (fun v -> v >= 0.) o.Svm.Runtime.or_lats)

let test_report_schema_accepts_serving_block () =
  let r = run_kvstore ~nprocs:4 Svm.Config.Hlrc small in
  match Svm.Report_json.validate (Svm.Report_json.encode r) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "kvstore report fails schema validation: %s" msg

let test_scientific_apps_have_no_ops_report () =
  let app = Apps.Registry.lu Apps.Registry.Test in
  let r =
    Svm.Runtime.run (Svm.Config.make ~nprocs:2 Svm.Config.Hlrc)
      (app.Apps.Registry.body ~verify:false)
  in
  check Alcotest.bool "no serving block for lu" true (r.Svm.Runtime.r_ops = None)

(* --- traffic plan --------------------------------------------------- *)

let test_traffic_partition_covers_plan () =
  (* The per-node slices are a partition of the global plan: same ops, same
     arrival times, nothing dropped or duplicated. *)
  let tp = { small.Apps.Kvstore.traffic with Traffic.ops = 500 } in
  let nodes = 3 in
  let seen = Array.make tp.Traffic.ops false in
  let z = Sim.Rng.zipf_create ~n:tp.Traffic.keys ~theta:tp.Traffic.theta in
  for node = 0 to nodes - 1 do
    let last = ref neg_infinity in
    Traffic.iter_node tp ~node ~nodes (fun ~index ~at_us op ->
        check Alcotest.bool "index in range" true (index >= 0 && index < tp.Traffic.ops);
        check Alcotest.bool "not seen twice" false seen.(index);
        seen.(index) <- true;
        check Alcotest.int "node owns its residue" node (index mod nodes);
        check (Alcotest.float 1e-9) "arrival time matches the global clock"
          (Traffic.arrival_us tp index) at_us;
        check Alcotest.bool "arrivals non-decreasing per node" true (at_us >= !last);
        last := at_us;
        if op <> Traffic.op_at tp z index then
          Alcotest.failf "op %d differs from the global plan" index)
  done;
  check Alcotest.bool "every op covered" true (Array.for_all Fun.id seen)

(* --- Zipfian sampler ------------------------------------------------ *)

let test_zipf_deterministic () =
  let z = Sim.Rng.zipf_create ~n:1000 ~theta:0.9 in
  let stream seed =
    let rng = Sim.Rng.create ~seed in
    Array.init 1000 (fun _ -> Sim.Rng.zipf rng z)
  in
  check (Alcotest.array Alcotest.int) "same seed, same stream" (stream 5) (stream 5);
  check Alcotest.bool "different seeds diverge" false (stream 5 = stream 6)

let test_zipf_uniform_when_theta_zero () =
  let n = 8 in
  let z = Sim.Rng.zipf_create ~n ~theta:0.0 in
  let rng = Sim.Rng.create ~seed:3 in
  let counts = Array.make n 0 in
  let draws = 80_000 in
  for _ = 1 to draws do
    let k = Sim.Rng.zipf rng z in
    counts.(k) <- counts.(k) + 1
  done;
  let expected = draws / n in
  Array.iteri
    (fun k c ->
      check Alcotest.bool
        (Printf.sprintf "key %d count %d within 20%% of uniform" k c)
        true
        (abs (c - expected) < expected / 5))
    counts

let test_zipf_invalid_args () =
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Rng.zipf_create: n must be >= 1")
    (fun () -> ignore (Sim.Rng.zipf_create ~n:0 ~theta:0.5));
  Alcotest.check_raises "theta = 1 rejected"
    (Invalid_argument "Rng.zipf_create: theta must be in [0, 1)") (fun () ->
      ignore (Sim.Rng.zipf_create ~n:10 ~theta:1.0))

(* Skew actually skews: for any (n, theta, seed) with real skew, low ranks
   are drawn more often than high ranks, and every draw is in bounds. *)
let prop_zipf_rank_frequency =
  QCheck.Test.make ~name:"zipf favors low ranks and stays in bounds" ~count:50
    QCheck.(
      triple (int_range 10 1000) (float_range 0.5 0.98) (int_range 0 10_000))
    (fun (n, theta, seed) ->
      let z = Sim.Rng.zipf_create ~n ~theta in
      let rng = Sim.Rng.create ~seed in
      let counts = Array.make n 0 in
      let draws = 20_000 in
      for _ = 1 to draws do
        let k = Sim.Rng.zipf rng z in
        if k < 0 || k >= n then QCheck.Test.fail_reportf "draw %d out of [0,%d)" k n;
        counts.(k) <- counts.(k) + 1
      done;
      let half = n / 2 in
      let low = Array.fold_left ( + ) 0 (Array.sub counts 0 half) in
      let high = Array.fold_left ( + ) 0 (Array.sub counts half (n - half)) in
      (* p(rank 0)/p(rank n-1) = n^theta >= 10^0.5, so the low half must
         dominate by a wide, fluctuation-proof margin. *)
      low > high
      && counts.(0) > counts.(n - 1))

let suite =
  [
    ("kvstore verifies and agrees under all protocols", `Slow, test_all_protocols);
    ("reference conserves transfers", `Quick, test_reference_conserves_transfers);
    ("txn atomicity under chaos", `Slow, test_txn_atomicity_under_chaos);
    ("ops report counts and sorted latencies", `Quick, test_ops_report);
    ("report schema accepts the serving block", `Quick, test_report_schema_accepts_serving_block);
    ("scientific kernels carry no ops report", `Quick, test_scientific_apps_have_no_ops_report);
    ("traffic plan partitions exactly", `Quick, test_traffic_partition_covers_plan);
    ("zipf is deterministic", `Quick, test_zipf_deterministic);
    ("zipf theta=0 is uniform", `Quick, test_zipf_uniform_when_theta_zero);
    ("zipf rejects invalid parameters", `Quick, test_zipf_invalid_args);
    QCheck_alcotest.to_alcotest prop_zipf_rank_frequency;
  ]
