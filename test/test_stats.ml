(* Statistics and reporting invariants: breakdown arithmetic, epoch deltas,
   counters and traffic bookkeeping. *)

let check = Alcotest.check

let test_breakdown_arithmetic () =
  let b = Svm.Stats.breakdown_zero () in
  b.Svm.Stats.compute <- 10.;
  b.Svm.Stats.lock <- 5.;
  check (Alcotest.float 0.) "total" 15. (Svm.Stats.breakdown_total b);
  let c = Svm.Stats.breakdown_copy b in
  b.Svm.Stats.compute <- 99.;
  check (Alcotest.float 0.) "copy is independent" 10. c.Svm.Stats.compute;
  let d = Svm.Stats.breakdown_sub b c in
  check (Alcotest.float 0.) "sub compute" 89. d.Svm.Stats.compute;
  check (Alcotest.float 0.) "sub lock" 0. d.Svm.Stats.lock

let test_counters_arithmetic () =
  let a = Svm.Stats.counters_zero () in
  a.Svm.Stats.messages <- 7;
  a.Svm.Stats.diffs_created <- 3;
  let b = Svm.Stats.counters_copy a in
  a.Svm.Stats.messages <- 10;
  let d = Svm.Stats.counters_sub a b in
  check Alcotest.int "delta messages" 3 d.Svm.Stats.messages;
  check Alcotest.int "delta diffs" 0 d.Svm.Stats.diffs_created

let test_epoch_deltas () =
  let s = Svm.Stats.create () in
  s.Svm.Stats.b.Svm.Stats.compute <- 5.;
  Svm.Stats.mark_epoch s;
  s.Svm.Stats.b.Svm.Stats.compute <- 12.;
  s.Svm.Stats.b.Svm.Stats.lock <- 2.;
  Svm.Stats.mark_epoch s;
  match Svm.Stats.epoch_deltas s with
  | [ e1; e2 ] ->
      check (Alcotest.float 0.) "first epoch" 5. e1.Svm.Stats.compute;
      check (Alcotest.float 0.) "second epoch compute" 7. e2.Svm.Stats.compute;
      check (Alcotest.float 0.) "second epoch lock" 2. e2.Svm.Stats.lock
  | other -> Alcotest.failf "expected 2 epochs, got %d" (List.length other)

(* Subtraction is componentwise over every field, not just the ones the
   older tests happened to touch. *)
let test_breakdown_sub_componentwise () =
  let fill v =
    let b = Svm.Stats.breakdown_zero () in
    b.Svm.Stats.compute <- v;
    b.Svm.Stats.data <- v +. 1.;
    b.Svm.Stats.lock <- v +. 2.;
    b.Svm.Stats.barrier <- v +. 3.;
    b.Svm.Stats.protocol <- v +. 4.;
    b.Svm.Stats.gc <- v +. 5.;
    b
  in
  let d = Svm.Stats.breakdown_sub (fill 10.) (fill 3.) in
  List.iter
    (fun (name, got) -> check (Alcotest.float 0.) name 7. got)
    [
      ("compute", d.Svm.Stats.compute);
      ("data", d.Svm.Stats.data);
      ("lock", d.Svm.Stats.lock);
      ("barrier", d.Svm.Stats.barrier);
      ("protocol", d.Svm.Stats.protocol);
      ("gc", d.Svm.Stats.gc);
    ];
  check (Alcotest.float 0.) "total of the difference" 42. (Svm.Stats.breakdown_total d)

let test_counters_sub_componentwise () =
  let fill v =
    let c = Svm.Stats.counters_zero () in
    c.Svm.Stats.read_misses <- v;
    c.Svm.Stats.write_faults <- v + 1;
    c.Svm.Stats.diffs_created <- v + 2;
    c.Svm.Stats.diffs_applied <- v + 3;
    c.Svm.Stats.lock_acquires <- v + 4;
    c.Svm.Stats.remote_acquires <- v + 5;
    c.Svm.Stats.barriers <- v + 6;
    c.Svm.Stats.messages <- v + 7;
    c.Svm.Stats.update_bytes <- v + 8;
    c.Svm.Stats.protocol_bytes <- v + 9;
    c.Svm.Stats.page_fetches <- v + 10;
    c.Svm.Stats.gc_runs <- v + 11;
    c.Svm.Stats.home_migrations <- v + 12;
    c.Svm.Stats.msg_drops <- v + 13;
    c.Svm.Stats.msg_retransmits <- v + 14;
    c.Svm.Stats.msg_acks <- v + 15;
    c.Svm.Stats.msg_dup_dropped <- v + 16;
    c.Svm.Stats.repl_updates <- v + 17;
    c.Svm.Stats.repl_invals <- v + 18;
    c.Svm.Stats.repl_bytes <- v + 19;
    c.Svm.Stats.failovers <- v + 20;
    c.Svm.Stats.msg_peer_dead <- v + 21;
    c
  in
  let d = Svm.Stats.counters_sub (fill 20) (fill 5) in
  List.iter
    (fun (name, got) -> check Alcotest.int name 15 got)
    [
      ("read_misses", d.Svm.Stats.read_misses);
      ("write_faults", d.Svm.Stats.write_faults);
      ("diffs_created", d.Svm.Stats.diffs_created);
      ("diffs_applied", d.Svm.Stats.diffs_applied);
      ("lock_acquires", d.Svm.Stats.lock_acquires);
      ("remote_acquires", d.Svm.Stats.remote_acquires);
      ("barriers", d.Svm.Stats.barriers);
      ("messages", d.Svm.Stats.messages);
      ("update_bytes", d.Svm.Stats.update_bytes);
      ("protocol_bytes", d.Svm.Stats.protocol_bytes);
      ("page_fetches", d.Svm.Stats.page_fetches);
      ("gc_runs", d.Svm.Stats.gc_runs);
      ("home_migrations", d.Svm.Stats.home_migrations);
      ("msg_drops", d.Svm.Stats.msg_drops);
      ("msg_retransmits", d.Svm.Stats.msg_retransmits);
      ("msg_acks", d.Svm.Stats.msg_acks);
      ("msg_dup_dropped", d.Svm.Stats.msg_dup_dropped);
      ("repl_updates", d.Svm.Stats.repl_updates);
      ("repl_invals", d.Svm.Stats.repl_invals);
      ("repl_bytes", d.Svm.Stats.repl_bytes);
      ("failovers", d.Svm.Stats.failovers);
      ("msg_peer_dead", d.Svm.Stats.msg_peer_dead);
    ]

(* Epoch deltas: chronological, the first epoch measured from zero, none
   before the first mark, and the deltas sum back to the final totals. *)
let test_epoch_deltas_invariants () =
  let s = Svm.Stats.create () in
  check Alcotest.int "no epochs before the first mark" 0
    (List.length (Svm.Stats.epoch_deltas s));
  s.Svm.Stats.b.Svm.Stats.compute <- 3.;
  s.Svm.Stats.b.Svm.Stats.barrier <- 1.;
  Svm.Stats.mark_epoch s;
  s.Svm.Stats.b.Svm.Stats.compute <- 8.;
  Svm.Stats.mark_epoch s;
  s.Svm.Stats.b.Svm.Stats.compute <- 9.;
  s.Svm.Stats.b.Svm.Stats.gc <- 2.;
  Svm.Stats.mark_epoch s;
  let deltas = Svm.Stats.epoch_deltas s in
  check Alcotest.int "one delta per mark" 3 (List.length deltas);
  (match deltas with
  | first :: _ ->
      check (Alcotest.float 0.) "first epoch measured from zero" 3. first.Svm.Stats.compute;
      check (Alcotest.float 0.) "first epoch barrier" 1. first.Svm.Stats.barrier
  | [] -> Alcotest.fail "no deltas");
  let sum field = List.fold_left (fun acc d -> acc +. field d) 0. deltas in
  check (Alcotest.float 1e-9) "compute deltas telescope" 9. (sum (fun d -> d.Svm.Stats.compute));
  check (Alcotest.float 1e-9) "gc deltas telescope" 2. (sum (fun d -> d.Svm.Stats.gc));
  List.iter
    (fun d ->
      check Alcotest.bool "deltas are non-negative" true
        (Svm.Stats.breakdown_total d >= 0.))
    deltas

(* End-to-end bookkeeping: message counts and traffic split. *)
let test_traffic_bookkeeping () =
  let app ctx =
    let me = Svm.Api.pid ctx in
    if me = 0 then begin
      let a = Svm.Api.malloc ctx ~name:"a" 1024 in
      for i = 0 to 1023 do
        Svm.Api.write_int ctx (a + i) i
      done
    end;
    Svm.Api.barrier ctx;
    let a = Svm.Api.root ctx "a" in
    if me = 1 then ignore (Svm.Api.read_int ctx a);
    Svm.Api.barrier ctx
  in
  List.iter
    (fun protocol ->
      let r = Svm.Runtime.run (Svm.Config.make ~nprocs:2 protocol) app in
      check Alcotest.bool "messages flowed" true (Svm.Runtime.total_messages r > 0);
      (* node 1 pulled a whole page (or the diffs for one) *)
      check Alcotest.bool "update traffic nonzero" true (Svm.Runtime.total_update_bytes r > 0);
      check Alcotest.bool "protocol traffic nonzero" true
        (Svm.Runtime.total_protocol_bytes r > 0))
    Svm.Config.all_protocols

(* Under P=1 nothing is remote: no messages, no update traffic. *)
let test_single_node_no_traffic () =
  List.iter
    (fun protocol ->
      let r =
        Svm.Runtime.run
          (Svm.Config.make ~nprocs:1 protocol)
          (fun ctx ->
            let a = Svm.Api.malloc ctx 2048 in
            for i = 0 to 2047 do
              Svm.Api.write_int ctx (a + i) i
            done;
            Svm.Api.barrier ctx)
      in
      check Alcotest.int "no messages" 0 (Svm.Runtime.total_messages r);
      check Alcotest.int "no update bytes" 0 (Svm.Runtime.total_update_bytes r))
    Svm.Config.all_protocols

(* The home effect (paper 4.4): with pages homed at their single writer,
   HLRC creates no diffs at all. *)
let test_home_effect_no_diffs () =
  let app ctx =
    let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
    if me = 0 then
      ignore
        (Svm.Api.malloc ctx ~name:"a"
           ~home:(fun page -> page mod np)
           (np * 1024));
    Svm.Api.barrier ctx;
    Svm.Api.start_timing ctx;
    let a = Svm.Api.root ctx "a" in
    (* each node writes exactly the page homed at it *)
    for i = 0 to 1023 do
      Svm.Api.write_int ctx (a + (me * 1024) + i) i
    done;
    Svm.Api.barrier ctx;
    (* and reads a neighbour's page *)
    ignore (Svm.Api.read_int ctx (a + ((me + 1) mod np * 1024)));
    Svm.Api.barrier ctx
  in
  let r = Svm.Runtime.run (Svm.Config.make ~nprocs:4 Svm.Config.Hlrc) app in
  Array.iter
    (fun n ->
      check Alcotest.int "no diffs at home" 0 n.Svm.Runtime.nr_counters.Svm.Stats.diffs_created)
    r.Svm.Runtime.r_nodes;
  (* the same workload under LRC does create diffs *)
  let r' = Svm.Runtime.run (Svm.Config.make ~nprocs:4 Svm.Config.Lrc) app in
  check Alcotest.bool "homeless protocol creates diffs" true
    (Array.exists
       (fun n -> n.Svm.Runtime.nr_counters.Svm.Stats.diffs_created > 0)
       r'.Svm.Runtime.r_nodes)

(* HLRC fetches whole pages; LRC transfers diffs. For a tiny update the
   homeless protocol must move fewer update bytes (the paper's
   bandwidth-vs-latency trade-off, 2.2/4.6). *)
let test_update_traffic_tradeoff () =
  let app ctx =
    let me = Svm.Api.pid ctx in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"x" 1024);
    Svm.Api.barrier ctx;
    let x = Svm.Api.root ctx "x" in
    (* warm both caches so LRC later needs only a one-word diff *)
    ignore (Svm.Api.read_int ctx x);
    Svm.Api.barrier ctx;
    Svm.Api.start_timing ctx;
    if me = 0 then Svm.Api.write_int ctx x 1;
    Svm.Api.barrier ctx;
    if me = 1 then ignore (Svm.Api.read_int ctx x);
    Svm.Api.barrier ctx
  in
  let lrc = Svm.Runtime.run (Svm.Config.make ~nprocs:2 Svm.Config.Lrc) app in
  let hlrc = Svm.Runtime.run (Svm.Config.make ~nprocs:2 Svm.Config.Hlrc) app in
  check Alcotest.bool "one-word diff beats a full page" true
    (Svm.Runtime.total_update_bytes lrc * 4 < Svm.Runtime.total_update_bytes hlrc)

let test_mean_compute_balanced () =
  let r =
    Svm.Runtime.run
      (Svm.Config.make ~nprocs:4 Svm.Config.Hlrc)
      (fun ctx ->
        Svm.Api.start_timing ctx;
        Svm.Api.compute ctx 1000.;
        Svm.Api.barrier ctx)
  in
  check (Alcotest.float 1.) "mean compute" 1000. (Svm.Runtime.mean_compute r)

let suite =
  [
    ("breakdown arithmetic", `Quick, test_breakdown_arithmetic);
    ("counters arithmetic", `Quick, test_counters_arithmetic);
    ("epoch deltas", `Quick, test_epoch_deltas);
    ("breakdown_sub is componentwise", `Quick, test_breakdown_sub_componentwise);
    ("counters_sub is componentwise", `Quick, test_counters_sub_componentwise);
    ("epoch delta invariants", `Quick, test_epoch_deltas_invariants);
    ("traffic bookkeeping", `Quick, test_traffic_bookkeeping);
    ("single node has no traffic", `Quick, test_single_node_no_traffic);
    ("home effect: no diffs (paper 4.4)", `Quick, test_home_effect_no_diffs);
    ("update-traffic trade-off", `Quick, test_update_traffic_tradeoff);
    ("mean compute", `Quick, test_mean_compute_balanced);
  ]
