(* Golden-file generator for the trace exporters.

   Builds one small hand-written sink exercising every exporter feature —
   instants, a wait span fused into a "ph":"X" complete event, all three
   flow pairs (message, lock, diff), both counter tracks, an unmatched
   Wait_begin — plus an overflowed sink for the dropped-events records,
   and writes the JSONL and Chrome renderings. Dune diffs these against
   test/golden/*; after an intentional exporter change, run
   [dune promote] to refresh the committed files. *)

let ev time node kind = { Obs.Trace.time; node; kind }

let sample_sink () =
  let sink = Obs.Trace.create_sink ~capacity:64 () in
  List.iter (Obs.Trace.emit sink)
    [
      ev 10.0 0 (Obs.Trace.Page_fetch { page = 3; home = 1 });
      ev 10.0 0 (Obs.Trace.Wait_begin { span = 0; bucket = Obs.Trace.Wb_data; resource = 3 });
      ev 11.0 0 (Obs.Trace.Msg_send { dst = 1; bytes = 64; update = 0 });
      ev 14.0 1 (Obs.Trace.Msg_recv { src = 0; bytes = 64; update = 0 });
      ev 15.0 1 (Obs.Trace.Diff_request { page = 5; writer = 2; intervals = 1 });
      ev 18.0 2 (Obs.Trace.Diff_reply { page = 5; dst = 1; bytes = 40 });
      ev 20.0 0 (Obs.Trace.Wait_end { span = 0; bucket = Obs.Trace.Wb_data; resource = 3 });
      ev 21.0 2 (Obs.Trace.Lock_acquire { lock = 1; remote = true });
      ev 25.0 0 (Obs.Trace.Lock_grant { lock = 1; dst = 2; intervals = 2 });
      ev 26.0 0 (Obs.Trace.Mem_sample { bytes = 4096 });
      ev 30.0 0 (Obs.Trace.Barrier_arrive { epoch = 0; intervals = 2 });
      (* left open on purpose: must not produce a complete event *)
      ev 31.0 1 (Obs.Trace.Wait_begin { span = 1; bucket = Obs.Trace.Wb_lock; resource = 1 });
    ];
  sink

let overflow_sink () =
  let sink = Obs.Trace.create_sink ~capacity:2 () in
  for i = 0 to 4 do
    Obs.Trace.emit sink (ev (float_of_int i) 0 Obs.Trace.Gc_done)
  done;
  sink

(* A hand-written metrics registry exercising every CSV feature: a
   per-node counter (zero-fill), a run-scope counter (node -1), and a
   gauge (last-sample-wins, forward-fill). Histograms and heatmaps live
   in the JSON timeline only, not the CSV. *)
let sample_metrics () =
  let m = Obs.Metrics.create ~interval:10. ~nnodes:2 in
  let msgs = Obs.Metrics.counter m "messages" in
  let events = Obs.Metrics.counter ~per_node:false m "engine_events" in
  let mem = Obs.Metrics.gauge m "proto_mem_bytes" in
  Obs.Metrics.add msgs ~node:0 ~time:0. 1.;
  Obs.Metrics.add msgs ~node:0 ~time:9. 2.;
  Obs.Metrics.add msgs ~node:1 ~time:25. 4.;
  Obs.Metrics.add events ~node:0 ~time:12. 7.;
  Obs.Metrics.sample mem ~node:0 ~time:5. 128.;
  Obs.Metrics.sample mem ~node:0 ~time:8. 256.;
  Obs.Metrics.sample mem ~node:1 ~time:22. 64.5;
  m

let () =
  let sink = sample_sink () in
  Obs.Export.write_file Obs.Export.Jsonl "golden_trace.jsonl" sink;
  Obs.Export.write_file Obs.Export.Chrome ~name:"golden" "golden_trace_chrome.json" sink;
  Obs.Export.write_file Obs.Export.Jsonl "golden_overflow.jsonl" (overflow_sink ());
  Obs.Export.write_metrics_csv "golden_metrics.csv" (sample_metrics ())
