(* CI perf gate.

   Runs the fixed `bench perf` cells in-process (see Harness.Perf) and
   compares each against the checked-in BENCH_perf_baseline.json:

   - minor words per event is gated tightly (default 5% headroom): the
     simulation is deterministic, so allocation per event is effectively
     exact and even a small sustained increase means a hot path started
     boxing again;
   - events/sec and wall-clock are gated loosely (default 2x): CI machines
     are noisy, so only a halving of throughput fails the gate.

   Improvements always pass; run with --update after an intentional change
   to reset the baseline.

   Usage:
     dune exec bench/check_perf.exe                 -- check
     dune exec bench/check_perf.exe -- --update     -- regenerate baseline
     options: --baseline FILE --alloc-tolerance F --speed-tolerance F
              --json FILE (write the measured cells for the CI artifact) *)

type options = {
  mutable baseline : string;
  mutable alloc_tolerance : float; (* fractional headroom on minor words/event *)
  mutable speed_tolerance : float; (* allowed slowdown factor on events/sec and wall *)
  mutable json_out : string option;
  mutable update : bool;
}

let parse_args () =
  let o =
    {
      baseline = "BENCH_perf_baseline.json";
      alloc_tolerance = 0.05;
      speed_tolerance = 2.0;
      json_out = None;
      update = false;
    }
  in
  let rec go = function
    | [] -> ()
    | "--baseline" :: file :: rest ->
        o.baseline <- file;
        go rest
    | "--alloc-tolerance" :: s :: rest ->
        o.alloc_tolerance <- float_of_string s;
        go rest
    | "--speed-tolerance" :: s :: rest ->
        o.speed_tolerance <- float_of_string s;
        go rest
    | "--json" :: file :: rest ->
        o.json_out <- Some file;
        go rest
    | "--update" :: rest ->
        o.update <- true;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  o

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_json file doc =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string_pretty doc);
      output_char oc '\n')

let cell_id (r : Harness.Perf.result) =
  Harness.Perf.cell_name r.Harness.Perf.r_cell

(* Baseline lookup: the committed file has the same shape `bench perf
   --perf-out` writes, so `--update` and the CI artifact stay in sync. *)
let baseline_cells o =
  let json =
    match Obs.Json.of_string (read_file o.baseline) with
    | Ok j -> j
    | Error e -> failwith (Printf.sprintf "%s is not valid JSON: %s" o.baseline e)
  in
  match Obs.Json.member "cells" json with
  | Some (Obs.Json.List cells) ->
      List.filter_map
        (fun cell ->
          let str k =
            match Obs.Json.member k cell with
            | Some (Obs.Json.String s) -> Some s
            | _ -> None
          in
          let num k = Option.bind (Obs.Json.member k cell) Obs.Json.to_float in
          match (str "app", str "protocol", num "nodes") with
          | Some app, Some proto, Some nodes ->
              Some
                ( Printf.sprintf "%s/%s/%d" app proto (int_of_float nodes),
                  (num "minor_words_per_event", num "events_per_sec", num "wall_s") )
          | _ -> None)
        cells
  | _ -> failwith (Printf.sprintf "%s: missing \"cells\" list" o.baseline)

let check o results =
  let base = baseline_cells o in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun (r : Harness.Perf.result) ->
      let id = cell_id r in
      match List.assoc_opt id base with
      | None -> fail "%s: not in baseline (run with --update to add it)" id
      | Some (words, evps, wall) ->
          (match words with
          | None -> fail "%s: baseline has no minor_words_per_event" id
          | Some w ->
              if r.Harness.Perf.r_minor_words_per_event > w *. (1. +. o.alloc_tolerance) then
                fail "%s: %.1f minor words/event vs baseline %.1f (> %+.0f%% headroom)" id
                  r.Harness.Perf.r_minor_words_per_event w (o.alloc_tolerance *. 100.));
          (match evps with
          | None -> fail "%s: baseline has no events_per_sec" id
          | Some e ->
              if r.Harness.Perf.r_events_per_sec < e /. o.speed_tolerance then
                fail "%s: %.0f events/s vs baseline %.0f (more than %.1fx slower)" id
                  r.Harness.Perf.r_events_per_sec e o.speed_tolerance);
          match wall with
          | None -> fail "%s: baseline has no wall_s" id
          | Some w ->
              if r.Harness.Perf.r_wall_s > w *. o.speed_tolerance then
                fail "%s: %.3f s wall vs baseline %.3f (more than %.1fx slower)" id
                  r.Harness.Perf.r_wall_s w o.speed_tolerance)
    results;
  match List.rev !failures with
  | [] ->
      Printf.printf
        "perf gate: OK (%d cells; alloc headroom %.0f%%, speed tolerance %.1fx)\n"
        (List.length results) (o.alloc_tolerance *. 100.) o.speed_tolerance
  | fs ->
      List.iter (fun s -> Printf.eprintf "FAIL %s\n" s) fs;
      Printf.eprintf "perf gate: %d failure(s)\n" (List.length fs);
      exit 1

let () =
  let o = try parse_args () with Failure msg ->
    Printf.eprintf "check_perf: %s\n" msg;
    exit 2
  in
  let results = Harness.Perf.run_all () in
  Harness.Perf.pp_table Format.std_formatter results;
  Format.pp_print_flush Format.std_formatter ();
  (match o.json_out with
  | None -> ()
  | Some file -> write_json file (Harness.Perf.to_json results));
  if o.update then begin
    write_json o.baseline (Harness.Perf.to_json results);
    Printf.printf "wrote %s (%d cells)\n" o.baseline (List.length results)
  end
  else check o results
