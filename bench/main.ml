(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks of the protocol
   primitives.

   Usage:
     dune exec bench/main.exe                -- everything, default scale
     dune exec bench/main.exe -- table2      -- one artifact
     dune exec bench/main.exe -- --scale full --nodes 8,32,64 table2
     dune exec bench/main.exe -- micro       -- Bechamel micro-benchmarks

   Artifacts: table1 table2 table3 table4 table5 table6 figure3 figure4
   sor-zero aurc ablation-homes ablation-network ablation-pagesize
   ablation-locks ablation-migration ablation-fault-batch chaos-soak
   kill-soak availability partition-soak suspicion-soak detector profile
   timeline kvstore-skew perf micro all

   kvstore-skew sweeps the serving workload over protocol x Zipfian skew x
   write mix; the --kv-* flags patch its workload parameters (--kv-theta /
   --kv-write-ratio narrow the respective sweep axis to that one value).
   Every flag that takes a value rejects a missing or malformed one at
   parse time, before any cell is simulated. (The failure-detector and
   partition knobs from the availability work were never bench flags —
   they live on svm_run only; the soak artifacts build those plans
   internally.)

   --metrics-interval US turns on the sampled metrics recorder in every
   matrix cell; with --json the dump then carries a per-cell timeline
   block (the timeline artifact derives its own cadence and ignores it).

   Fault injection: --drop-rate, --dup-rate, --jitter, --straggler and
   --fault-seed apply one chaos plan to every simulated cell (chaos-soak
   ignores them and sweeps its own plans). --fault-batch N enables batched
   fault handling on every cell (ablation-fault-batch sweeps it itself).

   perf runs the fixed microbenchmark cells (events/sec, minor words per
   event, wall clock) and --perf-out FILE writes them as JSON for the CI
   perf gate.

   Parallelism: --jobs N evaluates independent cells on N domains
   (default: recommended_domain_count - 1). Output is byte-identical to
   --jobs 1. *)

let default_nodes = [ 8; 32; 64 ]

let known_artifacts =
  [
    "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "figure3"; "figure4";
    "sor-zero"; "aurc"; "protocols"; "ablation-homes"; "ablation-network";
    "ablation-pagesize"; "ablation-locks"; "ablation-migration"; "ablation-fault-batch"; "chaos-soak";
    "kill-soak"; "availability"; "partition-soak"; "suspicion-soak"; "detector";
    "profile"; "timeline"; "kvstore-skew"; "perf"; "micro"; "all";
  ]

type options = {
  mutable scale : Apps.Registry.scale;
  mutable nodes : int list;
  mutable verify : bool;
  mutable artifacts : string list;
  mutable json_out : string option;
  mutable trace_out : string option;
  mutable trace_format : Obs.Export.format;
  mutable trace_cap : int;
  mutable chaos : Machine.Chaos.params;
  mutable jobs : int;
  mutable fault_batch : int;
  mutable perf_out : string option;
  mutable metrics_interval : float;
  (* kvstore workload overrides ([None] keeps the scale default); theta and
     write-ratio also narrow the kvstore-skew sweep axes to that value. *)
  mutable kv_ops : int option;
  mutable kv_rate : float option;
  mutable kv_keys : int option;
  mutable kv_theta : float option;
  mutable kv_write_ratio : float option;
  mutable kv_txn_ratio : float option;
  mutable kv_buckets : int option;
}

let parse_args () =
  let o =
    {
      scale = Apps.Registry.Bench;
      nodes = default_nodes;
      verify = true;
      artifacts = [];
      json_out = None;
      trace_out = None;
      trace_format = Obs.Export.Jsonl;
      trace_cap = 1_000_000;
      chaos = Machine.Chaos.none;
      jobs = Harness.Pool.default_jobs ();
      fault_batch = 1;
      perf_out = None;
      metrics_interval = 0.;
      kv_ops = None;
      kv_rate = None;
      kv_keys = None;
      kv_theta = None;
      kv_write_ratio = None;
      kv_txn_ratio = None;
      kv_buckets = None;
    }
  in
  let rate name s =
    match float_of_string_opt s with
    | Some x -> x
    | None -> failwith (Printf.sprintf "%s: expected a number, got %S" name s)
  in
  let missing flag = failwith (Printf.sprintf "%s: missing value" flag) in
  let pos_int flag s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | Some n -> failwith (Printf.sprintf "%s: must be at least 1, got %d" flag n)
    | None -> failwith (Printf.sprintf "%s: expected an integer, got %S" flag s)
  in
  let pos_float flag s =
    match float_of_string_opt s with
    | Some x when x > 0. -> x
    | Some x -> failwith (Printf.sprintf "%s: must be positive, got %g" flag x)
    | None -> failwith (Printf.sprintf "%s: expected a number, got %S" flag s)
  in
  let fraction flag s =
    match float_of_string_opt s with
    | Some x when x >= 0. && x <= 1. -> x
    | Some x -> failwith (Printf.sprintf "%s: must be in [0,1], got %g" flag x)
    | None -> failwith (Printf.sprintf "%s: expected a number, got %S" flag s)
  in
  let rec go = function
    | [] -> ()
    | [ (( "--scale" | "--nodes" | "--drop-rate" | "--dup-rate" | "--jitter"
         | "--straggler" | "--fault-seed" | "--json" | "--trace-out" | "--trace-format"
         | "--trace-cap" | "--jobs" | "--fault-batch" | "--perf-out"
         | "--metrics-interval" | "--kv-ops" | "--kv-rate" | "--kv-keys" | "--kv-theta"
         | "--kv-write-ratio" | "--kv-txn-ratio" | "--kv-buckets" ) as flag) ] ->
        missing flag
    | "--scale" :: s :: rest ->
        (o.scale <-
          (match String.lowercase_ascii s with
          | "test" -> Apps.Registry.Test
          | "bench" -> Apps.Registry.Bench
          | "full" -> Apps.Registry.Full
          | other -> failwith (Printf.sprintf "unknown scale %S" other)));
        go rest
    | "--nodes" :: s :: rest ->
        o.nodes <-
          List.map
            (fun part ->
              match int_of_string_opt part with
              | Some n when n > 0 -> n
              | Some n -> failwith (Printf.sprintf "--nodes: node count must be positive, got %d" n)
              | None -> failwith (Printf.sprintf "--nodes: expected an integer, got %S" part))
            (String.split_on_char ',' s);
        go rest
    | "--drop-rate" :: s :: rest ->
        o.chaos <- { o.chaos with Machine.Chaos.drop_rate = rate "--drop-rate" s };
        go rest
    | "--dup-rate" :: s :: rest ->
        o.chaos <- { o.chaos with Machine.Chaos.dup_rate = rate "--dup-rate" s };
        go rest
    | "--jitter" :: s :: rest ->
        o.chaos <- { o.chaos with Machine.Chaos.jitter = rate "--jitter" s };
        go rest
    | "--straggler" :: s :: rest ->
        o.chaos <- { o.chaos with Machine.Chaos.straggler = rate "--straggler" s };
        go rest
    | "--fault-seed" :: s :: rest ->
        (o.chaos <-
          {
            o.chaos with
            Machine.Chaos.fault_seed =
              (match int_of_string_opt s with
              | Some n -> n
              | None -> failwith (Printf.sprintf "--fault-seed: expected an integer, got %S" s));
          });
        go rest
    | "--no-verify" :: rest ->
        o.verify <- false;
        go rest
    | "--json" :: file :: rest ->
        o.json_out <- Some file;
        go rest
    | "--trace-out" :: file :: rest ->
        o.trace_out <- Some file;
        go rest
    | "--trace-format" :: s :: rest ->
        (o.trace_format <-
          (match Obs.Export.format_of_string s with
          | Some fmt -> fmt
          | None -> failwith (Printf.sprintf "unknown trace format %S (jsonl|chrome)" s)));
        go rest
    | "--trace-cap" :: s :: rest ->
        (o.trace_cap <-
          (match int_of_string_opt s with
          | Some n when n > 0 -> n
          | Some n -> failwith (Printf.sprintf "--trace-cap: must be positive, got %d" n)
          | None -> failwith (Printf.sprintf "--trace-cap: expected an integer, got %S" s)));
        go rest
    | "--fault-batch" :: s :: rest ->
        (o.fault_batch <-
          (match int_of_string_opt s with
          | Some n when n >= 1 -> n
          | Some n -> failwith (Printf.sprintf "--fault-batch: must be at least 1, got %d" n)
          | None -> failwith (Printf.sprintf "--fault-batch: expected an integer, got %S" s)));
        go rest
    | "--perf-out" :: file :: rest ->
        o.perf_out <- Some file;
        go rest
    | "--metrics-interval" :: s :: rest ->
        (o.metrics_interval <-
          (match float_of_string_opt s with
          | Some x when x >= 0. -> x
          | Some x -> failwith (Printf.sprintf "--metrics-interval: must be >= 0, got %g" x)
          | None -> failwith (Printf.sprintf "--metrics-interval: expected a number, got %S" s)));
        go rest
    | "--kv-ops" :: s :: rest ->
        o.kv_ops <- Some (pos_int "--kv-ops" s);
        go rest
    | "--kv-rate" :: s :: rest ->
        o.kv_rate <- Some (pos_float "--kv-rate" s);
        go rest
    | "--kv-keys" :: s :: rest ->
        o.kv_keys <- Some (pos_int "--kv-keys" s);
        go rest
    | "--kv-theta" :: s :: rest ->
        (o.kv_theta <-
          (match float_of_string_opt s with
          | Some x when x >= 0. && x < 1. -> Some x
          | Some x -> failwith (Printf.sprintf "--kv-theta: must be in [0,1), got %g" x)
          | None -> failwith (Printf.sprintf "--kv-theta: expected a number, got %S" s)));
        go rest
    | "--kv-write-ratio" :: s :: rest ->
        o.kv_write_ratio <- Some (fraction "--kv-write-ratio" s);
        go rest
    | "--kv-txn-ratio" :: s :: rest ->
        o.kv_txn_ratio <- Some (fraction "--kv-txn-ratio" s);
        go rest
    | "--kv-buckets" :: s :: rest ->
        o.kv_buckets <- Some (pos_int "--kv-buckets" s);
        go rest
    | "--jobs" :: s :: rest ->
        (o.jobs <-
          (match int_of_string_opt s with
          | Some n when n > 0 -> n
          | Some n -> failwith (Printf.sprintf "--jobs: must be positive, got %d" n)
          | None -> failwith (Printf.sprintf "--jobs: expected an integer, got %S" s)));
        go rest
    | flag :: _ when String.length flag >= 2 && String.sub flag 0 2 = "--" ->
        failwith (Printf.sprintf "unknown option %S" flag)
    | arg :: rest ->
        let artifact = String.lowercase_ascii arg in
        if not (List.mem artifact known_artifacts) then
          failwith
            (Printf.sprintf "unknown artifact %S (expected one of: %s)" arg
               (String.concat " " known_artifacts));
        o.artifacts <- o.artifacts @ [ artifact ];
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (match Machine.Chaos.validate o.chaos with
  | Ok () -> ()
  | Error msg -> failwith msg);
  if o.artifacts = [] then o.artifacts <- [ "all" ];
  o

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot protocol primitives             *)

let micro () =
  let open Bechamel in
  let page_words = 1024 in
  let twin = Mem.Words.of_array (Array.init page_words (fun i -> float_of_int i)) in
  let sparse = Mem.Words.copy twin in
  let dense = Mem.Words.copy twin in
  for i = 0 to page_words - 1 do
    if i mod 16 = 0 then Mem.Words.set sparse i (Mem.Words.get sparse i +. 1.0);
    Mem.Words.set dense i (Mem.Words.get dense i +. 1.0)
  done;
  let sparse_diff = Mem.Diff.create ~page:0 ~twin ~current:sparse in
  let dense_diff = Mem.Diff.create ~page:0 ~twin ~current:dense in
  let target = Mem.Words.copy twin in
  let vt_a = Proto.Vclock.create ~nprocs:64 in
  let vt_b = Proto.Vclock.create ~nprocs:64 in
  for i = 0 to 63 do
    Proto.Vclock.set vt_b i (i * 3)
  done;
  let tests =
    [
      Test.make ~name:"diff-create-sparse"
        (Staged.stage (fun () -> ignore (Mem.Diff.create ~page:0 ~twin ~current:sparse)));
      Test.make ~name:"diff-create-dense"
        (Staged.stage (fun () -> ignore (Mem.Diff.create ~page:0 ~twin ~current:dense)));
      Test.make ~name:"diff-apply-sparse"
        (Staged.stage (fun () -> Mem.Diff.apply sparse_diff target));
      Test.make ~name:"diff-apply-dense"
        (Staged.stage (fun () -> Mem.Diff.apply dense_diff target));
      Test.make ~name:"twin-copy" (Staged.stage (fun () -> ignore (Mem.Words.copy twin)));
      Test.make ~name:"vclock-merge"
        (Staged.stage (fun () -> Proto.Vclock.merge_into vt_a vt_b));
      Test.make ~name:"vclock-leq" (Staged.stage (fun () -> ignore (Proto.Vclock.leq vt_a vt_b)));
      Test.make ~name:"event-queue-push-pop"
        (Staged.stage (fun () ->
             let h = Sim.Heap.create ~capacity:64 () in
             for i = 0 to 63 do
               Sim.Heap.push h ~key:(float_of_int ((i * 7919) mod 101)) i
             done;
             while not (Sim.Heap.is_empty h) do
               ignore (Sim.Heap.pop_min h)
             done));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    Benchmark.all cfg [ instance ] test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Format.printf "@.=== Micro-benchmarks (Bechamel) ===@.@.";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "%-24s %12.1f ns/op@." name est
          | _ -> Format.printf "%-24s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let scale_name = function
  | Apps.Registry.Test -> "test"
  | Apps.Registry.Bench -> "bench"
  | Apps.Registry.Full -> "full"

(* Machine-readable dump of every simulated cell (one per matrix entry). *)
let dump_json file m =
  let rm_scale = scale_name (Harness.Matrix.scale m) in
  let cell (app, proto, np, r) =
    let meta = { Svm.Report_json.rm_app = app; rm_scale } in
    Obs.Json.Obj
      [
        ("app", Obs.Json.String app);
        ( "protocol",
          Obs.Json.String (String.lowercase_ascii (Svm.Config.protocol_name proto)) );
        ("nodes", Obs.Json.Int np);
        ("report", Svm.Report_json.encode ~meta r);
      ]
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int Svm.Report_json.schema_version);
        ("cells", Obs.Json.List (List.map cell (Harness.Matrix.cells m)));
      ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string_pretty doc);
      output_char oc '\n')

let () =
  let o =
    try parse_args () with
    | Failure msg | Invalid_argument msg ->
        Printf.eprintf "bench: %s\n" msg;
        exit 2
  in
  let ppf = Format.std_formatter in
  let sink =
    match o.trace_out with
    | None -> None
    | Some _ -> Some (Obs.Trace.create_sink ~capacity:o.trace_cap ())
  in
  let m =
    Harness.Matrix.create ~verify:o.verify ?sink ~chaos:o.chaos
      ~fault_batch:o.fault_batch ~metrics_interval:o.metrics_interval ~scale:o.scale ()
  in
  let pool = Harness.Pool.create ~jobs:o.jobs in
  let failures = ref 0 in
  Harness.Matrix.on_progress m (fun s -> Format.eprintf "  [%s]@." s);
  (* With --jobs 1 the prefetch is skipped entirely and every cell is
     simulated inline by its renderer, exactly as before; with a wider pool
     the renderer's cells are evaluated on the pool first (in first-use
     order, so progress lines and trace events keep the sequential order)
     and the renderer then reads them from the memo cache. *)
  let prefetch cells = if Harness.Pool.jobs pool > 1 then Harness.Matrix.prefetch m pool cells in
  let rec run = function
    | "table1" ->
        prefetch (Harness.Tables.table1_cells m);
        Harness.Tables.table1 ppf m
    | "table2" ->
        prefetch (Harness.Tables.table2_cells m ~node_counts:o.nodes);
        Harness.Tables.table2 ppf m ~node_counts:o.nodes
    | "table3" -> Harness.Tables.table3 ppf
    | "table4" ->
        prefetch (Harness.Tables.table4_cells m ~node_counts:o.nodes);
        Harness.Tables.table4 ppf m ~node_counts:o.nodes
    | "table5" ->
        prefetch (Harness.Tables.table5_cells m ~node_counts:o.nodes);
        Harness.Tables.table5 ppf m ~node_counts:o.nodes
    | "table6" ->
        prefetch (Harness.Tables.table6_cells m ~node_counts:o.nodes);
        Harness.Tables.table6 ppf m ~node_counts:o.nodes
    | "figure3" ->
        prefetch (Harness.Tables.figure3_cells m ~node_counts:o.nodes);
        Harness.Tables.figure3 ppf m ~node_counts:o.nodes
    | "figure4" ->
        prefetch (Harness.Tables.figure4_cells m ~node_counts:o.nodes);
        Harness.Tables.figure4 ppf m ~node_counts:o.nodes ~epoch:9
    | "sor-zero" ->
        prefetch (Harness.Tables.sor_zero_cells m ~node_counts:o.nodes);
        Harness.Tables.sor_zero ppf m ~node_counts:o.nodes
    | "ablation-homes" ->
        Harness.Ablations.home_placement ppf ~pool ~scale:o.scale ~node_counts:o.nodes ()
    | "ablation-network" ->
        Harness.Ablations.network_sensitivity ppf ~pool ~scale:o.scale ~node_counts:o.nodes ()
    | "ablation-pagesize" ->
        Harness.Ablations.page_size ppf ~pool ~scale:o.scale ~node_counts:o.nodes ()
    | "ablation-locks" ->
        Harness.Ablations.coproc_locks ppf ~pool ~scale:o.scale ~node_counts:o.nodes ()
    | "aurc" | "protocols" ->
        prefetch (Harness.Ablations.aurc_cells m ~node_counts:o.nodes);
        Harness.Ablations.aurc_comparison ppf m ~node_counts:o.nodes
    | "ablation-migration" ->
        Harness.Ablations.home_migration ppf ~pool ~scale:o.scale ~node_counts:o.nodes ()
    | "ablation-fault-batch" ->
        Harness.Ablations.fault_batch ppf ~pool ~scale:o.scale ~node_counts:o.nodes ()
    | "perf" ->
        let results = Harness.Perf.run_all () in
        Harness.Perf.pp_table ppf results;
        (match o.perf_out with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (Obs.Json.to_string_pretty (Harness.Perf.to_json results));
                output_char oc '\n'))
    | "chaos-soak" ->
        if not (Harness.Soak.report ppf ~pool ~scale:o.scale ()) then incr failures
    | "kill-soak" ->
        if not (Harness.Soak.kill_report ppf ~pool ~scale:o.scale ()) then incr failures
    | "availability" ->
        if not (Harness.Soak.availability_report ppf ~pool ~scale:o.scale ()) then
          incr failures
    | "partition-soak" ->
        if not (Harness.Soak.partition_report ppf ~pool ~scale:o.scale ()) then
          incr failures
    | "suspicion-soak" ->
        if not (Harness.Soak.false_suspicion_report ppf ~pool ~scale:o.scale ()) then
          incr failures
    | "detector" ->
        (* Homeless vs home-based: the detector's latency/false-positive
           trade-off must hold on both protocol families. *)
        List.iter
          (fun proto ->
            if not (Harness.Soak.detector_report ppf ~scale:o.scale ~proto ()) then
              incr failures)
          [ Svm.Config.Hlrc; Svm.Config.Lrc ]
    | "profile" ->
        Harness.Profile.report ppf ~pool ~verify:o.verify ~chaos:o.chaos
          ~trace_cap:o.trace_cap ~scale:o.scale ~node_counts:o.nodes ()
    | "timeline" ->
        let np = match o.nodes with n :: _ when n >= 2 -> n | _ -> 8 in
        Harness.Timeline.report ppf ~pool ~verify:o.verify ~scale:o.scale ~np ()
    | "kvstore-skew" ->
        let np = match o.nodes with n :: _ when n >= 2 -> n | _ -> 8 in
        let base = Apps.Registry.kvstore_params o.scale in
        let ov v dflt = Option.value v ~default:dflt in
        let tp = base.Apps.Kvstore.traffic in
        let params =
          {
            base with
            Apps.Kvstore.buckets = ov o.kv_buckets base.Apps.Kvstore.buckets;
            traffic =
              {
                tp with
                Traffic.ops = ov o.kv_ops tp.Traffic.ops;
                rate = ov o.kv_rate tp.Traffic.rate;
                keys = ov o.kv_keys tp.Traffic.keys;
                txn_ratio = ov o.kv_txn_ratio tp.Traffic.txn_ratio;
              };
          }
        in
        (* --kv-theta / --kv-write-ratio pin the corresponding sweep axis. *)
        let thetas =
          match o.kv_theta with Some t -> [ t ] | None -> Harness.Serving.default_thetas
        in
        let write_ratios =
          match o.kv_write_ratio with
          | Some w -> [ w ]
          | None -> Harness.Serving.default_write_ratios
        in
        Harness.Serving.report ppf ~pool ~scale:o.scale ~nprocs:np ~thetas ~write_ratios
          ~params ()
    | "micro" -> micro ()
    | "all" ->
        List.iter run
          [
            "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "figure3";
            "figure4"; "sor-zero"; "ablation-homes"; "ablation-network";
            "ablation-pagesize"; "ablation-locks"; "aurc"; "ablation-migration"; "micro";
          ]
    | other -> failwith (Printf.sprintf "unknown artifact %S" other)
  in
  List.iter run o.artifacts;
  (match o.json_out with None -> () | Some file -> dump_json file m);
  (match (o.trace_out, sink) with
  | Some file, Some s -> Obs.Export.write_file o.trace_format file s
  | _ -> ());
  Format.pp_print_flush ppf ();
  if !failures > 0 then exit 1
