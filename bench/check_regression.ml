(* CI benchmark-regression gate.

   Runs the LU benchmark at --scale test for every protocol through
   bin/svm_run.exe --json, validates each report against the schema, and
   compares the headline counters (elapsed time, message count, update and
   protocol traffic, memory peak) against the checked-in BENCH_baseline.json
   within a relative tolerance. The simulation is deterministic, so the
   tolerance only absorbs intentional cost-model tweaks; real protocol
   regressions move these counters by far more.

   Usage:
     dune exec bench/check_regression.exe                    -- check
     dune exec bench/check_regression.exe -- --update        -- regenerate baseline
     options: --baseline FILE --exe PATH --tolerance F --app NAME --nodes N *)

type options = {
  mutable baseline : string;
  mutable exe : string;
  mutable tolerance : float;
  mutable app : string;
  mutable nodes : int;
  mutable update : bool;
}

let parse_args () =
  let o =
    {
      baseline = "BENCH_baseline.json";
      exe = "_build/default/bin/svm_run.exe";
      tolerance = 0.05;
      app = "lu";
      nodes = 4;
      update = false;
    }
  in
  let rec go = function
    | [] -> ()
    | "--baseline" :: file :: rest ->
        o.baseline <- file;
        go rest
    | "--exe" :: path :: rest ->
        o.exe <- path;
        go rest
    | "--tolerance" :: s :: rest ->
        o.tolerance <- float_of_string s;
        go rest
    | "--app" :: name :: rest ->
        o.app <- name;
        go rest
    | "--nodes" :: s :: rest ->
        o.nodes <- int_of_string s;
        go rest
    | "--update" :: rest ->
        o.update <- true;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  o

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run one protocol through the real CLI and return its headline counters. *)
let run_protocol o proto =
  let json_file = Filename.temp_file "svm_report_" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove json_file with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s --app %s --protocol %s --nodes %d --scale test --seed 42 --json %s"
          (Filename.quote o.exe) (Filename.quote o.app) proto o.nodes
          (Filename.quote json_file)
      in
      Printf.printf "  %-6s %s\n%!" proto cmd;
      let rc = Sys.command (cmd ^ " > /dev/null") in
      if rc <> 0 then failwith (Printf.sprintf "%s: svm_run exited with %d" proto rc);
      let json =
        match Obs.Json.of_string (read_file json_file) with
        | Ok j -> j
        | Error e -> failwith (Printf.sprintf "%s: report is not valid JSON: %s" proto e)
      in
      (match Svm.Report_json.validate json with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "%s: report fails schema validation: %s" proto e));
      match Svm.Report_json.headline json with
      | Some h -> h
      | None -> failwith (Printf.sprintf "%s: report has no headline counters" proto))

let headline_json h = Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Float v)) h)

let baseline_json o results =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int Svm.Report_json.schema_version);
      ("app", Obs.Json.String o.app);
      ("nodes", Obs.Json.Int o.nodes);
      ("scale", Obs.Json.String "test");
      ("seed", Obs.Json.Int 42);
      ( "protocols",
        Obs.Json.Obj (List.map (fun (proto, h) -> (proto, headline_json h)) results) );
    ]

let write_baseline o results =
  let oc = open_out o.baseline in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string_pretty (baseline_json o results));
      output_char oc '\n');
  Printf.printf "wrote %s (%d protocols)\n" o.baseline (List.length results)

let check_against_baseline o results =
  let base =
    match Obs.Json.of_string (read_file o.baseline) with
    | Ok j -> j
    | Error e -> failwith (Printf.sprintf "%s is not valid JSON: %s" o.baseline e)
  in
  let protocols =
    match Obs.Json.member "protocols" base with
    | Some p -> p
    | None -> failwith (Printf.sprintf "%s: missing \"protocols\" object" o.baseline)
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun (proto, h) ->
      match Obs.Json.member proto protocols with
      | None -> fail "%s: not in baseline (run with --update to add it)" proto
      | Some expected ->
          List.iter
            (fun (key, got) ->
              match Option.bind (Obs.Json.member key expected) Obs.Json.to_float with
              | None -> fail "%s.%s: missing from baseline" proto key
              | Some want ->
                  let drift =
                    if want = 0. then if got = 0. then 0. else infinity
                    else Float.abs (got -. want) /. Float.abs want
                  in
                  if drift > o.tolerance then
                    fail "%s.%s: %.6g vs baseline %.6g (drift %.2f%% > %.2f%%)" proto key got
                      want (drift *. 100.) (o.tolerance *. 100.))
            h)
    results;
  match List.rev !failures with
  | [] ->
      Printf.printf "benchmark regression gate: OK (%d protocols within %.1f%%)\n"
        (List.length results) (o.tolerance *. 100.)
  | fs ->
      List.iter (fun s -> Printf.eprintf "FAIL %s\n" s) fs;
      Printf.eprintf "benchmark regression gate: %d failure(s)\n" (List.length fs);
      exit 1

let () =
  let o = parse_args () in
  Printf.printf "benchmark regression gate: %s, %d nodes, scale test, seed 42\n" o.app o.nodes;
  let results =
    List.map (fun proto -> (proto, run_protocol o proto)) Svm.Config.protocol_strings
  in
  if o.update then write_baseline o results else check_against_baseline o results
