(* Garbage collection of protocol data (homeless protocols, paper 3.5):
   triggering, memory reclamation, and correctness across collections. *)

let check = Alcotest.check

(* A workload that keeps producing diffs across barriers: every node
   repeatedly rewrites its slice of a multi-page array. *)
let churn_app ~rounds ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let words = 16 * 1024 in
  (* 16 pages *)
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"churn" words);
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let a = Svm.Api.root ctx "churn" in
  let lo, hi = Apps.App_util.chunk ~n:words ~nparts:np me in
  for round = 1 to rounds do
    for i = lo to hi - 1 do
      Svm.Api.write_int ctx (a + i) ((round * 1_000_000) + i)
    done;
    Svm.Api.barrier ctx;
    (* read a remote slice to force diff traffic *)
    let peer = (me + 1) mod np in
    let plo, phi = Apps.App_util.chunk ~n:words ~nparts:np peer in
    for i = plo to phi - 1 do
      check Alcotest.int "peer slice fresh" ((round * 1_000_000) + i)
        (Svm.Api.read_int ctx (a + i))
    done;
    Svm.Api.barrier ctx
  done

let run_with_threshold threshold =
  let cfg =
    Svm.Config.make ~gc_threshold_bytes:threshold ~nprocs:4 Svm.Config.Lrc
  in
  Svm.Runtime.run cfg (churn_app ~rounds:6)

let total_gc_runs r =
  Array.fold_left (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.gc_runs) 0
    r.Svm.Runtime.r_nodes

let test_gc_triggers_under_pressure () =
  let r = run_with_threshold 60_000 in
  check Alcotest.bool "gc ran on every node" true (total_gc_runs r >= 4);
  (* GC time must be accounted *)
  let gc_time =
    Array.fold_left (fun acc n -> acc +. n.Svm.Runtime.nr_breakdown.Svm.Stats.gc) 0.
      r.Svm.Runtime.r_nodes
  in
  check Alcotest.bool "gc time accounted" true (gc_time > 0.)

let test_gc_reclaims_memory () =
  let with_gc = run_with_threshold 60_000 in
  let without_gc = run_with_threshold max_int in
  check Alcotest.int "no gc without pressure" 0 (total_gc_runs without_gc);
  check Alcotest.bool "gc lowers the final protocol memory" true
    (Svm.Runtime.max_mem_peak with_gc * 2 < Svm.Runtime.max_mem_peak without_gc
    || with_gc.Svm.Runtime.r_nodes.(0).Svm.Runtime.nr_mem_end
       < without_gc.Svm.Runtime.r_nodes.(0).Svm.Runtime.nr_mem_end)

let test_gc_preserves_correctness () =
  (* the churn app checks its own data every round; also run the LU kernel
     under heavy GC pressure *)
  let cfg = Svm.Config.make ~gc_threshold_bytes:10_000 ~nprocs:4 Svm.Config.Lrc in
  let app = Apps.Registry.lu Apps.Registry.Test in
  let r = Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true) in
  check Alcotest.bool "lu verified under gc pressure" true (total_gc_runs r > 0)

let test_gc_not_used_by_home_based () =
  let cfg = Svm.Config.make ~gc_threshold_bytes:1 ~nprocs:4 Svm.Config.Hlrc in
  let r = Svm.Runtime.run cfg (churn_app ~rounds:3) in
  check Alcotest.int "home-based protocols never collect" 0 (total_gc_runs r)

let test_gc_overlapped_variant () =
  let cfg = Svm.Config.make ~gc_threshold_bytes:60_000 ~nprocs:4 Svm.Config.Olrc in
  let r = Svm.Runtime.run cfg (churn_app ~rounds:6) in
  check Alcotest.bool "OLRC collects too" true (total_gc_runs r > 0)

let suite =
  [
    ("gc triggers under pressure", `Quick, test_gc_triggers_under_pressure);
    ("gc reclaims memory", `Quick, test_gc_reclaims_memory);
    ("gc preserves correctness", `Quick, test_gc_preserves_correctness);
    ("home-based protocols never collect", `Quick, test_gc_not_used_by_home_based);
    ("OLRC collects too", `Quick, test_gc_overlapped_variant);
  ]
