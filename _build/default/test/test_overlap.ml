(* Overlapped-protocol behaviour (paper 2.4/3.4): the co-processor absorbs
   diff work and remote-request service, sparing the compute processor its
   interrupts and overlapping protocol work with computation. *)

let check = Alcotest.check

(* A workload with plenty of remote fetches: neighbours exchange slices
   across barriers. *)
let exchange_app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let words = 4096 in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"x" words);
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let x = Svm.Api.root ctx "x" in
  let lo, hi = Apps.App_util.chunk ~n:words ~nparts:np me in
  for round = 1 to 4 do
    for i = lo to hi - 1 do
      Svm.Api.write_int ctx (x + i) ((round * 10_000) + i)
    done;
    Svm.Api.barrier ctx;
    let peer = (me + 1) mod np in
    let plo, phi = Apps.App_util.chunk ~n:words ~nparts:np peer in
    for i = plo to phi - 1 do
      ignore (Svm.Api.read_int ctx (x + i))
    done;
    Svm.Api.barrier ctx
  done

let run protocol = Svm.Runtime.run (Svm.Config.make ~nprocs:4 protocol) exchange_app

let test_overlap_is_faster () =
  List.iter
    (fun (base, overlapped) ->
      let rb = run base and ro = run overlapped in
      check Alcotest.bool
        (Printf.sprintf "%s <= %s elapsed"
           (Svm.Config.protocol_name overlapped)
           (Svm.Config.protocol_name base))
        true
        (ro.Svm.Runtime.r_elapsed <= rb.Svm.Runtime.r_elapsed))
    [ (Svm.Config.Lrc, Svm.Config.Olrc); (Svm.Config.Hlrc, Svm.Config.Ohlrc) ]

let test_overlap_same_results_and_traffic_shape () =
  (* Overlapping changes where work runs, not what the protocol sends: the
     paper notes "the overlapped protocols have approximately the same
     communication traffic as the non-overlapped ones". *)
  List.iter
    (fun (base, overlapped) ->
      let rb = run base and ro = run overlapped in
      let close a b =
        let fa = float_of_int a and fb = float_of_int b in
        Float.abs (fa -. fb) <= 0.15 *. Float.max fa fb
      in
      check Alcotest.bool "message counts close" true
        (close (Svm.Runtime.total_messages rb) (Svm.Runtime.total_messages ro));
      check Alcotest.bool "update traffic close" true
        (close (Svm.Runtime.total_update_bytes rb) (Svm.Runtime.total_update_bytes ro)))
    [ (Svm.Config.Lrc, Svm.Config.Olrc); (Svm.Config.Hlrc, Svm.Config.Ohlrc) ]

let test_overlap_reduces_protocol_time () =
  List.iter
    (fun (base, overlapped) ->
      let rb = run base and ro = run overlapped in
      let proto r =
        Array.fold_left (fun acc n -> acc +. n.Svm.Runtime.nr_breakdown.Svm.Stats.protocol) 0.
          r.Svm.Runtime.r_nodes
      in
      check Alcotest.bool "compute-processor protocol time shrinks" true
        (proto ro < proto rb))
    [ (Svm.Config.Lrc, Svm.Config.Olrc); (Svm.Config.Hlrc, Svm.Config.Ohlrc) ]

let test_paper_miss_costs_end_to_end () =
  (* One cold page fetch, nothing else in flight: the wait must be within a
     small tolerance of the paper's 4.3 minimum costs (HLRC 1,172 us,
     OHLRC 482 us). Node 3 is neither home (node 1), nor allocator, nor the
     barrier manager. *)
  let app ctx =
    let me = Svm.Api.pid ctx in
    if me = 0 then begin
      let x = Svm.Api.malloc ctx ~name:"x" 1024 ~home:(fun _ -> 1) in
      Svm.Api.write_int ctx x 5
    end;
    Svm.Api.barrier ctx;
    Svm.Api.start_timing ctx;
    if me = 3 then ignore (Svm.Api.read_int ctx (Svm.Api.root ctx "x"));
    Svm.Api.barrier ctx
  in
  let wait protocol =
    let r = Svm.Runtime.run (Svm.Config.make ~nprocs:4 protocol) app in
    r.Svm.Runtime.r_nodes.(3).Svm.Runtime.nr_breakdown.Svm.Stats.data
  in
  (* The 290 us fault-entry cost is booked to the protocol bucket, so the
     data wait is the paper's figure minus it: 1172 - 290 = 882 (HLRC) and
     482 - 290 = 192 (OHLRC), plus small service costs. *)
  let hlrc = wait Svm.Config.Hlrc and ohlrc = wait Svm.Config.Ohlrc in
  check Alcotest.bool
    (Printf.sprintf "HLRC miss wait %.0f ~ 882" hlrc)
    true
    (hlrc >= 882. && hlrc <= 1000.);
  check Alcotest.bool
    (Printf.sprintf "OHLRC miss wait %.0f ~ 192" ohlrc)
    true
    (ohlrc >= 192. && ohlrc <= 320.);
  check Alcotest.bool "overlap saves one interrupt" true (hlrc -. ohlrc > 600.)

(* The paper's 4.3 extension: moving lock service to the co-processor cuts
   the remote acquire from ~1,550 us to ~150 us (3 message latencies). *)
let test_coproc_locks_extension () =
  let app ctx =
    Svm.Api.barrier ctx;
    Svm.Api.start_timing ctx;
    (match Svm.Api.pid ctx with
    | 2 ->
        Svm.Api.lock ctx 5;
        Svm.Api.unlock ctx 5
    | 3 ->
        Svm.Api.compute ctx 10_000.;
        Svm.Api.lock ctx 5;
        Svm.Api.unlock ctx 5
    | _ -> ());
    Svm.Api.barrier ctx
  in
  let wait coproc_locks =
    let cfg = Svm.Config.make ~coproc_locks ~nprocs:4 Svm.Config.Ohlrc in
    let r = Svm.Runtime.run cfg app in
    r.Svm.Runtime.r_nodes.(3).Svm.Runtime.nr_breakdown.Svm.Stats.lock
  in
  let slow = wait false and fast = wait true in
  check Alcotest.bool
    (Printf.sprintf "compute-serviced acquire %.0f ~ 1550" slow)
    true
    (slow >= 1450. && slow <= 1700.);
  check Alcotest.bool
    (Printf.sprintf "coproc-serviced acquire %.0f ~ 150" fast)
    true
    (fast >= 150. && fast <= 300.);
  (* the flag must not affect non-overlapped protocols *)
  let cfg = Svm.Config.make ~coproc_locks:true ~nprocs:4 Svm.Config.Hlrc in
  let r = Svm.Runtime.run cfg app in
  let hlrc = r.Svm.Runtime.r_nodes.(3).Svm.Runtime.nr_breakdown.Svm.Stats.lock in
  check Alcotest.bool "no effect on non-overlapped protocols" true (hlrc >= 1450.)

let suite =
  [
    ("overlapping never slows a run", `Quick, test_overlap_is_faster);
    ("overlapping keeps traffic shape", `Quick, test_overlap_same_results_and_traffic_shape);
    ("overlapping reduces protocol time", `Quick, test_overlap_reduces_protocol_time);
    ("page-miss costs match paper 4.3", `Quick, test_paper_miss_costs_end_to_end);
    ("coproc lock service (paper 4.3 extension)", `Quick, test_coproc_locks_extension);
  ]
