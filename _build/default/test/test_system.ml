(* Direct tests of the System primitives: message FIFO channels, service
   accounting, allocation, and configuration plumbing. *)

let check = Alcotest.check

let mk ?(nprocs = 4) ?(protocol = Svm.Config.Hlrc) () =
  Svm.System.create (Svm.Config.make ~nprocs protocol)

let test_channels_are_fifo () =
  (* A large message sent first must not be overtaken by a small one sent
     just after on the same channel, despite the smaller transfer time. *)
  let sys = mk () in
  let src = sys.Svm.System.nodes.(0) in
  let log = ref [] in
  Svm.System.send sys ~src ~dst:1 ~at:0. ~bytes:1_000_000 ~update:0 (fun at ->
      log := ("big", at) :: !log);
  Svm.System.send sys ~src ~dst:1 ~at:1. ~bytes:0 ~update:0 (fun at ->
      log := ("small", at) :: !log);
  ignore (Sim.Engine.run sys.Svm.System.engine);
  match List.rev !log with
  | [ ("big", t1); ("small", t2) ] ->
      check Alcotest.bool "no overtaking" true (t2 > t1)
  | other -> Alcotest.failf "unexpected order (%d events)" (List.length other)

let test_distinct_channels_can_overtake () =
  (* ...but messages to different destinations are independent. *)
  let sys = mk () in
  let src = sys.Svm.System.nodes.(0) in
  let log = ref [] in
  Svm.System.send sys ~src ~dst:1 ~at:0. ~bytes:1_000_000 ~update:0 (fun _ ->
      log := "big" :: !log);
  Svm.System.send sys ~src ~dst:2 ~at:1. ~bytes:0 ~update:0 (fun _ -> log := "small" :: !log);
  ignore (Sim.Engine.run sys.Svm.System.engine);
  check Alcotest.(list string) "small wins across channels" [ "small"; "big" ] (List.rev !log)

let test_loopback_free_and_uncounted () =
  let sys = mk () in
  let src = sys.Svm.System.nodes.(2) in
  let arrived = ref (-1.) in
  Svm.System.send sys ~src ~dst:2 ~at:5. ~bytes:8192 ~update:8192 (fun at -> arrived := at);
  ignore (Sim.Engine.run sys.Svm.System.engine);
  check (Alcotest.float 1e-9) "immediate" 5. !arrived;
  check Alcotest.int "not counted as a message" 0 src.Svm.System.stats.Svm.Stats.c.Svm.Stats.messages

let test_traffic_split () =
  let sys = mk () in
  let src = sys.Svm.System.nodes.(0) in
  Svm.System.send sys ~src ~dst:1 ~at:0. ~bytes:1000 ~update:600 (fun _ -> ());
  ignore (Sim.Engine.run sys.Svm.System.engine);
  let c = src.Svm.System.stats.Svm.Stats.c in
  check Alcotest.int "update bytes" 600 c.Svm.Stats.update_bytes;
  check Alcotest.int "protocol bytes" 400 c.Svm.Stats.protocol_bytes;
  check Alcotest.int "one message" 1 c.Svm.Stats.messages

let test_malloc_layout () =
  let sys = mk () in
  let node = sys.Svm.System.nodes.(0) in
  let a = Svm.System.malloc sys node 10 in
  let b = Svm.System.malloc sys node 2000 in
  let c = Svm.System.malloc sys node 1 in
  check Alcotest.int "first at zero" 0 a;
  check Alcotest.int "second page-aligned" 1024 b;
  check Alcotest.int "third skips two pages" (1024 * 3) c;
  check Alcotest.int "shared bytes counted" ((1024 * 3 + 1) * 8) (Svm.System.shared_bytes sys)

let test_home_maps_respected () =
  let sys = mk () in
  let node = sys.Svm.System.nodes.(0) in
  let base = Svm.System.malloc sys node ~home_map:(fun i -> 3 - (i mod 4)) (4 * 1024) in
  let page0 = base / 1024 in
  check Alcotest.int "page 0 home" 3 (Svm.System.home_of sys page0);
  check Alcotest.int "page 2 home" 1 (Svm.System.home_of sys (page0 + 2))

let test_protocol_predicates () =
  let open Svm.Config in
  List.iter
    (fun (p, hb, ov) ->
      check Alcotest.bool (protocol_name p ^ " home_based") hb (home_based p);
      check Alcotest.bool (protocol_name p ^ " overlapped") ov (overlapped p))
    [
      (Lrc, false, false);
      (Olrc, false, true);
      (Hlrc, true, false);
      (Ohlrc, true, true);
      (Aurc, true, false);
      (Rc, false, false);
    ]

let test_protocol_string_roundtrip () =
  List.iter
    (fun p ->
      match Svm.Config.protocol_of_string (Svm.Config.protocol_name p) with
      | Some p' -> check Alcotest.bool "roundtrip" true (p = p')
      | None -> Alcotest.failf "%s does not parse" (Svm.Config.protocol_name p))
    Svm.Config.extended_protocols;
  check Alcotest.bool "garbage rejected" true (Svm.Config.protocol_of_string "xyz" = None)

let test_serve_placement () =
  (* Overlapped systems serve on the co-processor; non-overlapped ones on
     the compute processor (visible through the interrupt counter). *)
  let probe protocol =
    let sys = mk ~protocol () in
    let n = sys.Svm.System.nodes.(1) in
    ignore (Svm.System.serve sys n ~arrival:0. ~cost:10.);
    (n.Svm.System.mach.Machine.Node.interrupts, n.Svm.System.mach.Machine.Node.coproc_requests)
  in
  check Alcotest.(pair int int) "HLRC on compute" (1, 0) (probe Svm.Config.Hlrc);
  check Alcotest.(pair int int) "OHLRC on coproc" (0, 1) (probe Svm.Config.Ohlrc)

let prop_malloc_disjoint =
  QCheck.Test.make ~name:"allocations never overlap" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (int_range 1 5000))
    (fun sizes ->
      let sys = mk () in
      let node = sys.Svm.System.nodes.(0) in
      let spans = List.map (fun w -> (Svm.System.malloc sys node w, w)) sizes in
      let rec disjoint = function
        | (a, wa) :: ((b, _) :: _ as rest) -> a + wa <= b && disjoint rest
        | _ -> true
      in
      disjoint spans)

let suite =
  [
    ("channels are FIFO", `Quick, test_channels_are_fifo);
    ("distinct channels overtake", `Quick, test_distinct_channels_can_overtake);
    ("loopback is free", `Quick, test_loopback_free_and_uncounted);
    ("traffic split", `Quick, test_traffic_split);
    ("malloc layout", `Quick, test_malloc_layout);
    ("home maps respected", `Quick, test_home_maps_respected);
    ("protocol predicates", `Quick, test_protocol_predicates);
    ("protocol string roundtrip", `Quick, test_protocol_string_roundtrip);
    ("service placement", `Quick, test_serve_placement);
    QCheck_alcotest.to_alcotest prop_malloc_disjoint;
  ]
