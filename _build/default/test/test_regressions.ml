(* Regression tests for protocol bugs found during development. Each test
   distills the scenario that exposed the bug; see the comments for the
   mechanism. *)

let check = Alcotest.check

(* Bug 1: lost write after fault/interval-end race.

   A write fault completed (twin made, page writable); before the process's
   resume event fired, a forwarded lock request ended the interval, which
   write-protected the page and dropped the twin. The resumed process then
   stored into a protected page without re-faulting, so the write was never
   diffed and disappeared from every other copy. Fixed by re-checking
   protection after each fault, like a restarted instruction.

   The trigger needs a remote lock request to land between a write fault's
   completion and its resume, which the lock-chain accumulation pattern
   provokes reliably at P >= 4 under the home-based protocols. *)
let test_fault_retry_race () =
  let n = 96 in
  let app ctx =
    let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"f" n);
    Svm.Api.barrier ctx;
    let f = Svm.Api.root ctx "f" in
    let lo, hi = Apps.App_util.chunk ~n ~nparts:np me in
    for m = lo to hi - 1 do
      Svm.Api.write ctx (f + m) 0.
    done;
    Svm.Api.barrier ctx;
    for q = 0 to np - 1 do
      let target = (me + q) mod np in
      let qlo, qhi = Apps.App_util.chunk ~n ~nparts:np target in
      Svm.Api.lock ctx target;
      for m = qlo to qhi - 1 do
        Svm.Api.write ctx (f + m) (Svm.Api.read ctx (f + m) +. float_of_int ((me + 1) * (m + 1)))
      done;
      Svm.Api.unlock ctx target
    done;
    Svm.Api.barrier ctx;
    let sum_p = np * (np + 1) / 2 in
    for m = 0 to n - 1 do
      let want = float_of_int (sum_p * (m + 1)) in
      let got = Svm.Api.read ctx (f + m) in
      if got <> want then
        Alcotest.failf "pid %d: f[%d] = %g, want %g (lost update)" me m got want
    done;
    Svm.Api.barrier ctx
  in
  List.iter
    (fun protocol ->
      List.iter
        (fun nprocs -> ignore (Svm.Runtime.run (Svm.Config.make ~nprocs protocol) app))
        [ 4; 8 ])
    [ Svm.Config.Hlrc; Svm.Config.Ohlrc ]

(* Bug 2: write notices dropped when a batch arrived newest-first.

   apply_remote_intervals bumped vt.(creator) at the first (newest) record
   of a batch, making the guard reject the remaining older-but-unseen
   records — their page invalidations were silently skipped, so a reader
   kept using a stale copy. Also: the barrier manager merged arrival
   timestamps before processing other arrivals' records, with the same
   effect. The trigger is a process learning several intervals of one
   creator in a single barrier release — the multi-lock, multi-step
   water-style pattern below at P = 3. *)
let test_notice_batch_ordering () =
  let p = { Apps.Water_nsq.default with molecules = 96; steps = 2 } in
  List.iter
    (fun nprocs ->
      List.iter
        (fun protocol ->
          ignore
            (Svm.Runtime.run
               (Svm.Config.make ~nprocs protocol)
               (Apps.Water_nsq.body ~verify:true p)))
        Svm.Config.all_protocols)
    [ 3; 4 ]

(* Bug 3: keeper lost across garbage collections.

   After a GC, pages with no later writers elected the *allocator* as the
   copyset hint even when an earlier collection had already dropped the
   allocator's copy; the next cold fault then materialized zeros at the
   allocator and returned them. Two collections with disjoint writer sets
   reproduce it. *)
let test_keeper_survives_gc () =
  let app ctx =
    let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
    let words = 8 * 1024 in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"a" words);
    Svm.Api.barrier ctx;
    let a = Svm.Api.root ctx "a" in
    (* Phase 1: node 1 writes everything (becomes last writer of all pages,
       so node 0, the allocator, drops its copies at the next GC). *)
    if me = 1 || np = 1 then
      for i = 0 to words - 1 do
        Svm.Api.write_int ctx (a + i) (i + 7)
      done;
    Svm.Api.barrier ctx;
    (* Churn on a different allocation to force more collections without
       touching [a]. *)
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"churn" (8 * 1024));
    Svm.Api.barrier ctx;
    let churn = Svm.Api.root ctx "churn" in
    for round = 1 to 3 do
      let lo, hi = Apps.App_util.chunk ~n:(8 * 1024) ~nparts:np me in
      for i = lo to hi - 1 do
        Svm.Api.write_int ctx (churn + i) (round * i)
      done;
      Svm.Api.barrier ctx
    done;
    (* Everyone (including the allocator) must still read phase-1 data. *)
    for i = 0 to words - 1 do
      let got = Svm.Api.read_int ctx (a + i) in
      if got <> i + 7 then Alcotest.failf "pid %d: a[%d] = %d, want %d" me i got (i + 7)
    done;
    Svm.Api.barrier ctx
  in
  let cfg = Svm.Config.make ~gc_threshold_bytes:30_000 ~nprocs:4 Svm.Config.Lrc in
  let r = Svm.Runtime.run cfg app in
  let gc_runs =
    Array.fold_left (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.gc_runs) 0
      r.Svm.Runtime.r_nodes
  in
  check Alcotest.bool "multiple collections actually happened" true (gc_runs >= 8)

(* The linear-extension apply order (vt-sum key): a deep lock chain whose
   diffs all target the same words must resolve to the last holder's
   value. Before the fix, a comparison sort over the partial order could
   invert ordered diffs. *)
let test_deep_chain_apply_order () =
  let nlocks = 3 in
  let region = 8 in
  let rounds = 5 in
  let app ctx =
    let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"chain" (nlocks * region));
    Svm.Api.barrier ctx;
    let chain = Svm.Api.root ctx "chain" in
    (* Each lock protects its own word region; rounds x nodes of increments
       build a chain of ~40 same-page ordered diffs per region. *)
    for round = 1 to rounds do
      for q = 0 to nlocks - 1 do
        let l = (me + q + round) mod nlocks in
        Svm.Api.lock ctx l;
        for i = l * region to ((l + 1) * region) - 1 do
          Svm.Api.write_int ctx (chain + i) (Svm.Api.read_int ctx (chain + i) + 1)
        done;
        Svm.Api.unlock ctx l
      done
    done;
    Svm.Api.barrier ctx;
    for i = 0 to (nlocks * region) - 1 do
      check Alcotest.int "all increments survive" (rounds * np)
        (Svm.Api.read_int ctx (chain + i))
    done;
    Svm.Api.barrier ctx
  in
  List.iter
    (fun protocol -> ignore (Svm.Runtime.run (Svm.Config.make ~nprocs:8 protocol) app))
    Svm.Config.all_protocols

let suite =
  [
    ("fault retry race (lost write)", `Quick, test_fault_retry_race);
    ("write-notice batch ordering", `Quick, test_notice_batch_ordering);
    ("keeper survives repeated GC", `Quick, test_keeper_survives_gc);
    ("deep chain apply order", `Quick, test_deep_chain_apply_order);
  ]
