(* Harness tests: the run matrix caches and the table generators produce
   well-formed output with the paper's qualitative relationships. *)

let check = Alcotest.check

let test_matrix_caches () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.sor Apps.Registry.Test in
  let calls = ref 0 in
  Harness.Matrix.on_progress m (fun _ -> incr calls);
  let r1 = Harness.Matrix.get m app Svm.Config.Hlrc 4 in
  let r2 = Harness.Matrix.get m app Svm.Config.Hlrc 4 in
  check Alcotest.bool "same report object" true (r1 == r2);
  check Alcotest.int "one simulation" 1 !calls

let test_speedup_definition () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.sor Apps.Registry.Test in
  let s = Harness.Matrix.speedup m app Svm.Config.Hlrc 4 in
  check Alcotest.bool "speedup positive" true (s > 0.);
  let seq = Harness.Matrix.seq_time m app in
  let elapsed = (Harness.Matrix.get m app Svm.Config.Hlrc 4).Svm.Runtime.r_elapsed in
  check (Alcotest.float 1e-9) "speedup = seq/elapsed" (seq /. elapsed) s

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_tables_render () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let node_counts = [ 2; 4 ] in
  let t1 = render (fun ppf -> Harness.Tables.table1 ppf m) in
  check Alcotest.bool "table1 lists all apps" true
    (List.for_all (fun n -> contains t1 n) [ "LU"; "SOR"; "Water-Nsquared"; "Raytrace" ]);
  let t2 = render (fun ppf -> Harness.Tables.table2 ppf m ~node_counts) in
  check Alcotest.bool "table2 lists protocols" true
    (List.for_all (fun p -> contains t2 p) [ "LRC"; "OLRC"; "HLRC"; "OHLRC" ]);
  let t3 = render (fun ppf -> Harness.Tables.table3 ppf) in
  check Alcotest.bool "table3 shows the 1172us miss" true (contains t3 "1172");
  let t4 = render (fun ppf -> Harness.Tables.table4 ppf m ~node_counts) in
  check Alcotest.bool "table4 rendered" true (contains t4 "rdmiss");
  let t5 = render (fun ppf -> Harness.Tables.table5 ppf m ~node_counts) in
  check Alcotest.bool "table5 rendered" true (contains t5 "upd MB");
  let t6 = render (fun ppf -> Harness.Tables.table6 ppf m ~node_counts) in
  check Alcotest.bool "table6 rendered" true (contains t6 "app KB");
  let f3 = render (fun ppf -> Harness.Tables.figure3 ppf m ~node_counts) in
  check Alcotest.bool "figure3 rendered" true (contains f3 "comp");
  let f4 = render (fun ppf -> Harness.Tables.figure4 ppf m ~node_counts ~epoch:2) in
  check Alcotest.bool "figure4 rendered" true (contains f4 "cpu");
  let sz = render (fun ppf -> Harness.Tables.sor_zero ppf m ~node_counts) in
  check Alcotest.bool "sor-zero rendered" true (contains sz "LRC/HLRC")

(* Qualitative headline of the paper at a size our Test scale can support:
   HLRC must never lose badly to LRC, and its protocol memory must stay far
   below LRC's on a diff-heavy workload. *)
let test_memory_headline () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.water_nsq Apps.Registry.Test in
  let lrc = Harness.Matrix.get m app Svm.Config.Lrc 8 in
  let hlrc = Harness.Matrix.get m app Svm.Config.Hlrc 8 in
  check Alcotest.bool "HLRC uses less protocol memory" true
    (Svm.Runtime.max_mem_peak hlrc < Svm.Runtime.max_mem_peak lrc)

let test_protocol_traffic_headline () =
  let m = Harness.Matrix.create ~verify:false ~scale:Apps.Registry.Test () in
  let app = Apps.Registry.water_nsq Apps.Registry.Test in
  let lrc = Harness.Matrix.get m app Svm.Config.Lrc 8 in
  let hlrc = Harness.Matrix.get m app Svm.Config.Hlrc 8 in
  check Alcotest.bool "home-based protocol data is cheaper" true
    (Svm.Runtime.total_protocol_bytes hlrc < Svm.Runtime.total_protocol_bytes lrc)

let suite =
  [
    ("matrix caches runs", `Quick, test_matrix_caches);
    ("speedup definition", `Quick, test_speedup_definition);
    ("all tables render", `Slow, test_tables_render);
    ("memory headline", `Quick, test_memory_headline);
    ("protocol traffic headline", `Quick, test_protocol_traffic_headline);
  ]
