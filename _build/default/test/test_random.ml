(* Randomized data-race-free workloads, run under all four protocols.

   The generator builds a random but DRF program: each lock protects a
   disjoint region of a shared array; each process owns a private region it
   writes without locks; barriers are collective. Because region updates
   commute (addition), the expected final memory is computable exactly, and
   every protocol must produce it bit-for-bit. This is the strongest
   correctness net over the protocol state machines. *)

type op =
  | Locked_add of { lock : int; value : int }  (* add value to each word of the region *)
  | Private_write of { round : int }
  | Do_barrier

type program = {
  nprocs : int;
  nlocks : int;
  region_words : int;
  ops : op list array;  (* per process, barriers aligned across processes *)
}

let gen_program =
  QCheck.Gen.(
    let* nprocs = int_range 2 6 in
    let* nlocks = int_range 1 4 in
    let* region_words = int_range 3 40 in
    let* nphases = int_range 1 4 in
    let gen_phase pid =
      let* n_ops = int_range 0 6 in
      list_size (return n_ops)
        (frequency
           [
             ( 3,
               let* lock = int_bound (nlocks - 1) in
               let* value = int_range 1 9 in
               return (Locked_add { lock; value }) );
             (1, return (Private_write { round = pid + 1 }));
           ])
    in
    let* per_proc_phases =
      flatten_l (List.init nprocs (fun pid -> flatten_l (List.init nphases (fun _ -> gen_phase pid))))
    in
    let ops =
      Array.init nprocs (fun pid ->
          let phases = List.nth per_proc_phases pid in
          List.concat_map (fun phase -> phase @ [ Do_barrier ]) phases)
    in
    return { nprocs; nlocks; region_words; ops })

(* Expected final memory: locked regions accumulate all Locked_add values;
   private regions hold the last Private_write of their owner. *)
let expected program =
  let total_words = (program.nlocks + program.nprocs) * program.region_words in
  let mem = Array.make total_words 0 in
  Array.iteri
    (fun pid ops ->
      List.iter
        (fun op ->
          match op with
          | Locked_add { lock; value } ->
              let base = lock * program.region_words in
              for i = 0 to program.region_words - 1 do
                mem.(base + i) <- mem.(base + i) + value
              done
          | Private_write { round } ->
              let base = (program.nlocks + pid) * program.region_words in
              for i = 0 to program.region_words - 1 do
                mem.(base + i) <- (round * 100) + i
              done
          | Do_barrier -> ())
        ops)
    program.ops;
  mem

let run_program protocol program =
  let total_words = (program.nlocks + program.nprocs) * program.region_words in
  let app ctx =
    let me = Svm.Api.pid ctx in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"mem" total_words);
    Svm.Api.barrier ctx;
    let mem = Svm.Api.root ctx "mem" in
    List.iter
      (fun op ->
        match op with
        | Locked_add { lock; value } ->
            Svm.Api.lock ctx lock;
            let base = mem + (lock * program.region_words) in
            for i = 0 to program.region_words - 1 do
              Svm.Api.write_int ctx (base + i) (Svm.Api.read_int ctx (base + i) + value)
            done;
            Svm.Api.unlock ctx lock
        | Private_write { round } ->
            let base = mem + ((program.nlocks + me) * program.region_words) in
            for i = 0 to program.region_words - 1 do
              Svm.Api.write_int ctx (base + i) ((round * 100) + i)
            done
        | Do_barrier -> Svm.Api.barrier ctx)
      program.ops.(me);
    Svm.Api.barrier ctx;
    (* every process checks the whole memory *)
    let want = expected program in
    Array.iteri
      (fun i w ->
        let got = Svm.Api.read_int ctx (mem + i) in
        if got <> w then
          failwith
            (Printf.sprintf "pid %d under %s: mem[%d] = %d, want %d" me
               (Svm.Config.protocol_name protocol) i got w))
      want
  in
  Svm.Runtime.run (Svm.Config.make ~nprocs:program.nprocs protocol) app

let prop_protocol protocol =
  QCheck.Test.make
    ~name:(Printf.sprintf "random DRF programs correct under %s" (Svm.Config.protocol_name protocol))
    ~count:40 (QCheck.make gen_program)
    (fun program ->
      ignore (run_program protocol program);
      true)

(* All four protocols also agree on performance determinism: the same
   program yields the same report twice. *)
let prop_repeatable =
  QCheck.Test.make ~name:"random programs are reproducible" ~count:10
    (QCheck.make gen_program) (fun program ->
      let r1 = run_program Svm.Config.Lrc program in
      let r2 = run_program Svm.Config.Lrc program in
      r1.Svm.Runtime.r_elapsed = r2.Svm.Runtime.r_elapsed
      && r1.Svm.Runtime.r_events = r2.Svm.Runtime.r_events)

let suite =
  List.map
    (fun p -> QCheck_alcotest.to_alcotest (prop_protocol p))
    Svm.Config.all_protocols
  @ [ QCheck_alcotest.to_alcotest prop_repeatable ]
