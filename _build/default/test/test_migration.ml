(* Adaptive home migration (extension): correctness under migration churn,
   the migration actually firing, and the performance win on
   badly-placed-home workloads. *)

let check = Alcotest.check

let total_migrations (r : Svm.Runtime.report) =
  Array.fold_left (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.home_migrations) 0
    r.Svm.Runtime.r_nodes

(* Every page is allocated with its home on node 0, then written repeatedly
   by its (different) owner across barriers — the worst placement, which
   migration must repair. *)
let bad_home_app ~rounds ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let words_per = 1024 in
  if me = 0 then
    ignore (Svm.Api.malloc ctx ~name:"a" ~home:(fun _ -> 0) (np * words_per));
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let a = Svm.Api.root ctx "a" in
  for round = 1 to rounds do
    for i = 0 to words_per - 1 do
      Svm.Api.write_int ctx (a + (me * words_per) + i) ((round * 100_000) + i)
    done;
    Svm.Api.barrier ctx;
    (* read the neighbour's page to keep coherence exercised *)
    let peer = (me + 1) mod np in
    for i = 0 to 63 do
      check Alcotest.int "neighbour fresh" ((round * 100_000) + i)
        (Svm.Api.read_int ctx (a + (peer * words_per) + i))
    done;
    Svm.Api.barrier ctx
  done

let test_migration_fires_and_stays_correct () =
  List.iter
    (fun protocol ->
      let cfg = Svm.Config.make ~home_migration:true ~nprocs:4 protocol in
      let r = Svm.Runtime.run cfg (bad_home_app ~rounds:4) in
      check Alcotest.bool
        (Svm.Config.protocol_name protocol ^ ": pages migrated")
        true (total_migrations r > 0))
    [ Svm.Config.Hlrc; Svm.Config.Ohlrc; Svm.Config.Aurc ]

let test_migration_improves_bad_placement () =
  let run home_migration =
    let cfg = Svm.Config.make ~home_migration ~nprocs:8 Svm.Config.Hlrc in
    (Svm.Runtime.run cfg (bad_home_app ~rounds:6)).Svm.Runtime.r_elapsed
  in
  let fixed = run false and migrating = run true in
  check Alcotest.bool
    (Printf.sprintf "migration helps (%.0f -> %.0f us)" fixed migrating)
    true (migrating < fixed)

let test_migration_off_by_default () =
  let cfg = Svm.Config.make ~nprocs:4 Svm.Config.Hlrc in
  let r = Svm.Runtime.run cfg (bad_home_app ~rounds:3) in
  check Alcotest.int "no migrations unless enabled" 0 (total_migrations r)

let test_migration_ignored_by_homeless () =
  let cfg = Svm.Config.make ~home_migration:true ~nprocs:4 Svm.Config.Lrc in
  let r = Svm.Runtime.run cfg (bad_home_app ~rounds:3) in
  check Alcotest.int "homeless protocols have no homes to move" 0 (total_migrations r)

let test_apps_verify_under_migration () =
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun protocol ->
          let cfg = Svm.Config.make ~home_migration:true ~nprocs:8 protocol in
          try ignore (Svm.Runtime.run cfg (app.Apps.Registry.body ~verify:true))
          with e ->
            Alcotest.failf "%s under %s with migration: %s" app.Apps.Registry.name
              (Svm.Config.protocol_name protocol) (Printexc.to_string e))
        [ Svm.Config.Hlrc; Svm.Config.Ohlrc; Svm.Config.Aurc ])
    (Apps.Registry.all Apps.Registry.Test)

(* The lock-chain matrix again, now with homes moving underneath it. *)
let test_accumulation_under_migration () =
  List.iter
    (fun protocol ->
      List.iter
        (fun nprocs ->
          let cfg = Svm.Config.make ~home_migration:true ~nprocs protocol in
          ignore (Svm.Runtime.run cfg Test_aurc.accumulate_app))
        [ 2; 4; 8 ])
    [ Svm.Config.Hlrc; Svm.Config.Ohlrc; Svm.Config.Aurc ]

let suite =
  [
    ("migration fires and stays correct", `Quick, test_migration_fires_and_stays_correct);
    ("migration repairs bad placement", `Quick, test_migration_improves_bad_placement);
    ("off by default", `Quick, test_migration_off_by_default);
    ("ignored by homeless protocols", `Quick, test_migration_ignored_by_homeless);
    ("all applications verify under migration", `Slow, test_apps_verify_under_migration);
    ("lock-chain matrix under migration", `Quick, test_accumulation_under_migration);
  ]
