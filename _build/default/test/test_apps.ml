(* Application-level tests: every benchmark verifies against its sequential
   reference under every protocol at several machine sizes, plus unit tests
   of the kernels themselves. *)

let check = Alcotest.check

let verify_matrix (app : Apps.Registry.t) sizes =
  ( Printf.sprintf "%s verifies under all protocols" app.Apps.Registry.name,
    `Slow,
    fun () ->
      List.iter
        (fun protocol ->
          List.iter
            (fun nprocs ->
              try
                ignore
                  (Svm.Runtime.run
                     (Svm.Config.make ~nprocs protocol)
                     (app.Apps.Registry.body ~verify:true))
              with e ->
                Alcotest.failf "%s under %s at P=%d: %s" app.Apps.Registry.name
                  (Svm.Config.protocol_name protocol) nprocs (Printexc.to_string e))
            sizes)
        Svm.Config.all_protocols )

(* --- kernel unit tests ---------------------------------------------- *)

let test_lu_factorization_correct () =
  (* L * U of the reference factorization must reproduce the initial
     matrix. *)
  let p = { Apps.Lu.default with n = 32; block = 8 } in
  let original = Apps.Lu.init_matrix p in
  let factored = Apps.Lu.reference p in
  let nb = p.Apps.Lu.n / p.Apps.Lu.block in
  let b = p.Apps.Lu.block in
  (* element (i,j) from block-major storage *)
  let get m i j =
    let bi = i / b and bj = j / b in
    let off = Apps.Lu.block_offset p nb bi bj in
    m.(off + ((i mod b) * b) + (j mod b))
  in
  let n = p.Apps.Lu.n in
  let max_err = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      (* (LU)(i,j) = sum_k L(i,k) U(k,j), L unit lower, U upper *)
      let acc = ref 0. in
      for k = 0 to min i j do
        let l = if k = i then 1.0 else get factored i k in
        let u = get factored k j in
        acc := !acc +. (l *. u)
      done;
      max_err := Float.max !max_err (Float.abs (!acc -. get original i j))
    done
  done;
  check Alcotest.bool
    (Printf.sprintf "max |LU - A| = %g small" !max_err)
    true (!max_err < 1e-6)

let test_sor_reference_fixed_boundary () =
  let p = { Apps.Sor.default with rows = 16; cols = 16; iters = 3 } in
  let result = Apps.Sor.reference p in
  (* boundary cells never change *)
  for j = 0 to p.Apps.Sor.cols - 1 do
    check (Alcotest.float 0.) "top row fixed" (Apps.Sor.init_value p 0 j) result.(j)
  done

let test_sor_zero_interior_inactive () =
  (* With a zero interior, cells far from the boundary stay zero for the
     first iterations (the 4.8 no-diff argument). *)
  let p = { Apps.Sor.default with rows = 32; cols = 32; iters = 2; zero_interior = true } in
  let result = Apps.Sor.reference p in
  check (Alcotest.float 0.) "deep interior still zero" 0. result.((16 * 32) + 16)

let test_water_half_shell_covers_pairs () =
  (* every unordered pair is enumerated exactly once *)
  List.iter
    (fun n ->
      let count = ref 0 in
      for i = 0 to n - 1 do
        count := !count + Apps.Water_nsq.half_shell n i
      done;
      check Alcotest.int
        (Printf.sprintf "n=%d pair count" n)
        (n * (n - 1) / 2)
        !count)
    [ 4; 5; 8; 96; 97 ]

let test_water_spatial_cell_of_pos () =
  let p = { Apps.Water_spatial.default with grid = 4 } in
  check Alcotest.int "origin" 0 (Apps.Water_spatial.cell_of_pos p 0.0 0.0 0.0);
  check Alcotest.int "far corner" 63 (Apps.Water_spatial.cell_of_pos p 0.99 0.99 0.99);
  check Alcotest.int "clamped" 63 (Apps.Water_spatial.cell_of_pos p 1.5 1.5 1.5)

let test_water_spatial_neighbours () =
  let p = { Apps.Water_spatial.default with grid = 4 } in
  check Alcotest.int "corner has 8 neighbours" 8
    (List.length (Apps.Water_spatial.neighbours p 0));
  (* interior cell of a 4x4x4 grid: (1,1,1) = 1 + 4 + 16 = 21 *)
  check Alcotest.int "interior has 27" 27 (List.length (Apps.Water_spatial.neighbours p 21))

let test_raytrace_reference_deterministic () =
  let p = { Apps.Raytrace.default with width = 16; height = 16; spheres = 4 } in
  let a = Apps.Raytrace.reference p in
  let b = Apps.Raytrace.reference p in
  check Alcotest.bool "bitwise equal" true (a = b);
  (* some rays hit, some miss *)
  let hits = Array.exists (fun v -> v > 0.06) a in
  let misses = Array.exists (fun v -> v <= 0.05) a in
  check Alcotest.bool "scene has contrast" true (hits && misses)

let test_registry_find () =
  List.iter
    (fun name ->
      match Apps.Registry.find name Apps.Registry.Test with
      | Some _ -> ()
      | None -> Alcotest.failf "registry must know %S" name)
    Apps.Registry.names;
  check Alcotest.bool "unknown app" true (Apps.Registry.find "nope" Apps.Registry.Test = None)

let test_chunk_partition () =
  (* chunks tile [0, n) exactly *)
  List.iter
    (fun (n, nparts) ->
      let total = ref 0 in
      for part = 0 to nparts - 1 do
        let lo, hi = Apps.App_util.chunk ~n ~nparts part in
        total := !total + (hi - lo);
        for i = lo to hi - 1 do
          check Alcotest.int "owner agrees" part (Apps.App_util.owner_of ~n ~nparts i)
        done
      done;
      check Alcotest.int "covers everything" n !total)
    [ (10, 3); (96, 8); (7, 7); (5, 8) ]

let suite =
  [
    ("lu factorization is correct", `Quick, test_lu_factorization_correct);
    ("sor boundary fixed", `Quick, test_sor_reference_fixed_boundary);
    ("sor zero interior stays inactive", `Quick, test_sor_zero_interior_inactive);
    ("water half-shell pair coverage", `Quick, test_water_half_shell_covers_pairs);
    ("water-spatial cell mapping", `Quick, test_water_spatial_cell_of_pos);
    ("water-spatial neighbourhoods", `Quick, test_water_spatial_neighbours);
    ("raytrace reference deterministic", `Quick, test_raytrace_reference_deterministic);
    ("registry finds all apps", `Quick, test_registry_find);
    ("chunk partitions exactly", `Quick, test_chunk_partition);
    verify_matrix (Apps.Registry.lu Apps.Registry.Test) [ 1; 4; 8 ];
    verify_matrix (Apps.Registry.sor Apps.Registry.Test) [ 1; 4; 8 ];
    verify_matrix (Apps.Registry.sor_zero Apps.Registry.Test) [ 1; 4 ];
    verify_matrix (Apps.Registry.water_nsq Apps.Registry.Test) [ 1; 3; 8 ];
    verify_matrix (Apps.Registry.water_spatial Apps.Registry.Test) [ 1; 4; 8 ];
    verify_matrix (Apps.Registry.raytrace Apps.Registry.Test) [ 1; 4; 8 ];
  ]
