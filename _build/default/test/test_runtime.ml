(* Core runtime semantics: allocation, reads/writes, timing, deadlock
   detection, determinism, report invariants. *)

let check = Alcotest.check

let run ?(nprocs = 2) ?(protocol = Svm.Config.Hlrc) app =
  Svm.Runtime.run (Svm.Config.make ~nprocs protocol) app

let test_malloc_and_roots () =
  let r =
    run ~nprocs:1 (fun ctx ->
        let a = Svm.Api.malloc ctx ~name:"a" 10 in
        let b = Svm.Api.malloc ctx ~name:"b" 10 in
        check Alcotest.bool "page aligned, disjoint" true (b >= a + 10);
        check Alcotest.int "root a" a (Svm.Api.root ctx "a");
        check Alcotest.int "root b" b (Svm.Api.root ctx "b"))
  in
  check Alcotest.bool "some shared memory" true (r.Svm.Runtime.r_shared_bytes > 0)

let test_missing_root () =
  ignore
    (run ~nprocs:1 (fun ctx ->
         try
           ignore (Svm.Api.root ctx "nope");
           Alcotest.fail "missing root must raise"
         with Invalid_argument _ -> ()))

let test_zero_initialized () =
  ignore
    (run ~nprocs:2 (fun ctx ->
         if Svm.Api.pid ctx = 0 then ignore (Svm.Api.malloc ctx ~name:"z" 100);
         Svm.Api.barrier ctx;
         let z = Svm.Api.root ctx "z" in
         for i = 0 to 99 do
           check (Alcotest.float 0.) "fresh memory is zero" 0. (Svm.Api.read ctx (z + i))
         done))

let test_read_write_roundtrip () =
  ignore
    (run ~nprocs:1 (fun ctx ->
         let a = Svm.Api.malloc ctx 64 in
         Svm.Api.write ctx a 3.25;
         Svm.Api.write_int ctx (a + 1) (-77);
         check (Alcotest.float 0.) "float" 3.25 (Svm.Api.read ctx a);
         check Alcotest.int "int" (-77) (Svm.Api.read_int ctx (a + 1))))

let test_pid_nprocs () =
  let seen = Array.make 3 false in
  ignore
    (run ~nprocs:3 (fun ctx ->
         check Alcotest.int "nprocs" 3 (Svm.Api.nprocs ctx);
         seen.(Svm.Api.pid ctx) <- true));
  check Alcotest.bool "all pids ran" true (Array.for_all (fun x -> x) seen)

let test_compute_advances_time () =
  let r =
    run ~nprocs:1 (fun ctx ->
        Svm.Api.start_timing ctx;
        Svm.Api.compute ctx 12345.)
  in
  check (Alcotest.float 1.) "elapsed equals compute" 12345. r.Svm.Runtime.r_elapsed

let test_deadlock_detected () =
  (* Process 1 never reaches the barrier count of process 0. *)
  let app ctx = if Svm.Api.pid ctx = 0 then Svm.Api.barrier ctx in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (try
     ignore (run ~nprocs:2 app);
     Alcotest.fail "mismatched barriers must deadlock"
   with Svm.System.Deadlock msg ->
     check Alcotest.bool "diagnosis names the barrier" true (contains msg "barrier"))

let test_unheld_unlock_rejected () =
  ignore
    (run ~nprocs:1 (fun ctx ->
         try
           Svm.Api.unlock ctx 3;
           Alcotest.fail "unlock without lock must raise"
         with Invalid_argument _ -> ()))

let test_determinism () =
  let app ctx =
    let me = Svm.Api.pid ctx in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"x" 256);
    Svm.Api.barrier ctx;
    let x = Svm.Api.root ctx "x" in
    for i = 0 to 255 do
      if i mod Svm.Api.nprocs ctx = me then Svm.Api.write_int ctx (x + i) (i * me)
    done;
    Svm.Api.barrier ctx
  in
  let r1 = run ~nprocs:4 ~protocol:Svm.Config.Lrc app in
  let r2 = run ~nprocs:4 ~protocol:Svm.Config.Lrc app in
  check (Alcotest.float 0.) "same elapsed" r1.Svm.Runtime.r_elapsed r2.Svm.Runtime.r_elapsed;
  check Alcotest.int "same events" r1.Svm.Runtime.r_events r2.Svm.Runtime.r_events;
  check Alcotest.int "same messages" (Svm.Runtime.total_messages r1)
    (Svm.Runtime.total_messages r2)

(* The breakdown buckets must account for (almost exactly) the node's whole
   elapsed time. *)
let breakdown_covers_elapsed protocol =
  let app = (Apps.Registry.sor Apps.Registry.Test).Apps.Registry.body ~verify:false in
  let r = Svm.Runtime.run (Svm.Config.make ~nprocs:4 protocol) app in
  Array.iter
    (fun n ->
      let total = Svm.Stats.breakdown_total n.Svm.Runtime.nr_breakdown in
      let elapsed = n.Svm.Runtime.nr_elapsed in
      let drift = Float.abs (total -. elapsed) /. Float.max 1. elapsed in
      if drift > 0.02 then
        Alcotest.failf "node %d: breakdown %.0f vs elapsed %.0f (drift %.1f%%)"
          n.Svm.Runtime.nr_id total elapsed (100. *. drift))
    r.Svm.Runtime.r_nodes

let test_breakdown_covers_elapsed () =
  List.iter breakdown_covers_elapsed Svm.Config.all_protocols

let test_timing_window () =
  let r =
    run ~nprocs:2 (fun ctx ->
        Svm.Api.compute ctx 5000.;
        (* untimed prologue *)
        Svm.Api.barrier ctx;
        Svm.Api.start_timing ctx;
        Svm.Api.compute ctx 1000.)
  in
  check Alcotest.bool "prologue excluded" true (r.Svm.Runtime.r_elapsed < 2000.)

let test_home_policies () =
  List.iter
    (fun policy ->
      let cfg = Svm.Config.make ~home_policy:policy ~nprocs:4 Svm.Config.Hlrc in
      let r =
        Svm.Runtime.run cfg (fun ctx ->
            if Svm.Api.pid ctx = 0 then begin
              let a = Svm.Api.malloc ctx ~name:"a" 8192 in
              for i = 0 to 8191 do
                Svm.Api.write_int ctx (a + i) i
              done
            end;
            Svm.Api.barrier ctx;
            let a = Svm.Api.root ctx "a" in
            let me = Svm.Api.pid ctx in
            for i = 0 to 8191 do
              if i mod 4 = me then
                check Alcotest.int "value visible" i (Svm.Api.read_int ctx (a + i))
            done;
            Svm.Api.barrier ctx)
      in
      ignore r)
    [ Svm.Config.Round_robin; Svm.Config.Block; Svm.Config.Allocator ]

let suite =
  [
    ("malloc and roots", `Quick, test_malloc_and_roots);
    ("missing root", `Quick, test_missing_root);
    ("fresh memory is zero", `Quick, test_zero_initialized);
    ("read/write roundtrip", `Quick, test_read_write_roundtrip);
    ("pid and nprocs", `Quick, test_pid_nprocs);
    ("compute advances time", `Quick, test_compute_advances_time);
    ("deadlock detected", `Quick, test_deadlock_detected);
    ("unlock without lock", `Quick, test_unheld_unlock_rejected);
    ("determinism", `Quick, test_determinism);
    ("breakdown covers elapsed", `Quick, test_breakdown_covers_elapsed);
    ("timing window", `Quick, test_timing_window);
    ("home policies", `Quick, test_home_policies);
  ]
