(* AURC (paper 2.2): automatic-update write-through to the home. Checks
   correctness on the protocol matrices and the properties the paper states:
   no twins or diffs at all, zero protocol memory for update tracking,
   higher update traffic than HLRC (per-write propagation), fewer software
   operations. *)

let check = Alcotest.check

let run ?(nprocs = 4) app = Svm.Runtime.run (Svm.Config.make ~nprocs Svm.Config.Aurc) app

(* the false-sharing accumulation matrix from the protocol suite *)
let accumulate_app ctx =
  let n = 96 in
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"f" n);
  Svm.Api.barrier ctx;
  let f = Svm.Api.root ctx "f" in
  let lo, hi = Apps.App_util.chunk ~n ~nparts:np me in
  for m = lo to hi - 1 do
    Svm.Api.write ctx (f + m) 0.
  done;
  Svm.Api.barrier ctx;
  for q = 0 to np - 1 do
    let target = (me + q) mod np in
    let qlo, qhi = Apps.App_util.chunk ~n ~nparts:np target in
    Svm.Api.lock ctx target;
    for m = qlo to qhi - 1 do
      Svm.Api.write ctx (f + m) (Svm.Api.read ctx (f + m) +. float_of_int ((me + 1) * (m + 1)))
    done;
    Svm.Api.unlock ctx target
  done;
  Svm.Api.barrier ctx;
  let sum_p = np * (np + 1) / 2 in
  for m = 0 to n - 1 do
    let want = float_of_int (sum_p * (m + 1)) in
    let got = Svm.Api.read ctx (f + m) in
    if got <> want then Alcotest.failf "pid %d: f[%d] = %g, want %g" me m got want
  done;
  Svm.Api.barrier ctx

let test_aurc_accumulation () =
  List.iter (fun nprocs -> ignore (run ~nprocs accumulate_app)) [ 1; 2; 3; 4; 8 ]

let test_aurc_apps_verify () =
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun nprocs ->
          try ignore (run ~nprocs (app.Apps.Registry.body ~verify:true))
          with e ->
            Alcotest.failf "%s under AURC at P=%d: %s" app.Apps.Registry.name nprocs
              (Printexc.to_string e))
        [ 1; 3; 8 ])
    (Apps.Registry.all Apps.Registry.Test)

let test_aurc_no_diffs_ever () =
  let r = run ~nprocs:8 accumulate_app in
  Array.iter
    (fun n ->
      check Alcotest.int "no diffs created" 0 n.Svm.Runtime.nr_counters.Svm.Stats.diffs_created;
      check Alcotest.int "no diffs applied" 0 n.Svm.Runtime.nr_counters.Svm.Stats.diffs_applied)
    r.Svm.Runtime.r_nodes

let test_aurc_vs_hlrc_tradeoff () =
  (* The paper's 2.2/2.3 comparison: AURC pays per-write traffic, HLRC pays
     diffing overhead. On a write-heavy workload AURC must send at least as
     many update bytes and spend (much) less protocol time. *)
  let app ctx =
    let me = Svm.Api.pid ctx in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"a" ~home:(fun _ -> 1) 1024);
    Svm.Api.barrier ctx;
    Svm.Api.start_timing ctx;
    let a = Svm.Api.root ctx "a" in
    if me = 2 then
      for round = 1 to 5 do
        for i = 0 to 1023 do
          Svm.Api.write_int ctx (a + i) ((round * 10_000) + i)
        done;
        Svm.Api.barrier ctx
      done
    else
      for _ = 1 to 5 do
        Svm.Api.barrier ctx
      done;
    if me = 3 then ignore (Svm.Api.read_int ctx a);
    Svm.Api.barrier ctx
  in
  let aurc = Svm.Runtime.run (Svm.Config.make ~nprocs:4 Svm.Config.Aurc) app in
  let hlrc = Svm.Runtime.run (Svm.Config.make ~nprocs:4 Svm.Config.Hlrc) app in
  check Alcotest.bool "AURC moves more update bytes" true
    (Svm.Runtime.total_update_bytes aurc >= Svm.Runtime.total_update_bytes hlrc);
  let proto r =
    Array.fold_left (fun acc n -> acc +. n.Svm.Runtime.nr_breakdown.Svm.Stats.protocol) 0.
      r.Svm.Runtime.r_nodes
  in
  check Alcotest.bool "AURC spends less software protocol time" true (proto aurc < proto hlrc)

let test_aurc_zero_update_memory () =
  (* No twins and no diffs: protocol memory is only interval records and
     directory state — far below one page per written page. *)
  let r = run ~nprocs:4 accumulate_app in
  let hlrc = Svm.Runtime.run (Svm.Config.make ~nprocs:4 Svm.Config.Hlrc) accumulate_app in
  check Alcotest.bool "AURC peak below HLRC (no twins)" true
    (Svm.Runtime.max_mem_peak r <= Svm.Runtime.max_mem_peak hlrc)

let test_aurc_random_programs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random DRF programs correct under AURC" ~count:40
       (QCheck.make Test_random.gen_program) (fun program ->
         ignore (Test_random.run_program Svm.Config.Aurc program);
         true))

let suite =
  [
    ("accumulation matrix", `Quick, test_aurc_accumulation);
    ("all applications verify", `Slow, test_aurc_apps_verify);
    ("no diffs ever", `Quick, test_aurc_no_diffs_ever);
    ("AURC/HLRC trade-off (paper 2.2)", `Quick, test_aurc_vs_hlrc_tradeoff);
    ("no update-tracking memory", `Quick, test_aurc_zero_update_memory);
    test_aurc_random_programs;
  ]
