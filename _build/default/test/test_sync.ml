(* Synchronization-specific behaviour: lock locality, token forwarding,
   mutual exclusion, barrier counting, and the costs the paper attributes to
   them. *)

let check = Alcotest.check

let run ?(nprocs = 2) ?(protocol = Svm.Config.Hlrc) app =
  Svm.Runtime.run (Svm.Config.make ~nprocs protocol) app

(* A re-acquire of a lock nobody else requested costs no messages. *)
let test_local_reacquire_free () =
  let r =
    run ~nprocs:2 (fun ctx ->
        Svm.Api.barrier ctx;
        Svm.Api.start_timing ctx;
        if Svm.Api.pid ctx = 0 then
          for _ = 1 to 50 do
            (* lock 0's manager is node 0 and nobody else uses it *)
            Svm.Api.lock ctx 0;
            Svm.Api.unlock ctx 0
          done;
        Svm.Api.barrier ctx)
  in
  let c0 = r.Svm.Runtime.r_nodes.(0).Svm.Runtime.nr_counters in
  check Alcotest.int "all acquires local" 50 c0.Svm.Stats.lock_acquires;
  check Alcotest.int "no remote acquires" 0 c0.Svm.Stats.remote_acquires

let test_remote_acquire_counted () =
  let r =
    run ~nprocs:2 (fun ctx ->
        Svm.Api.barrier ctx;
        Svm.Api.start_timing ctx;
        (* lock 1 is managed by node 1; node 0's acquires alternate *)
        for _ = 1 to 4 do
          Svm.Api.lock ctx 1;
          Svm.Api.compute ctx 500.;
          Svm.Api.unlock ctx 1
        done;
        Svm.Api.barrier ctx)
  in
  let total_remote =
    Array.fold_left
      (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.remote_acquires)
      0 r.Svm.Runtime.r_nodes
  in
  check Alcotest.bool "token ping-pongs" true (total_remote >= 2)

(* Mutual exclusion: a non-atomic read-modify-write under the lock never
   loses an update, whatever the protocol. *)
let test_mutual_exclusion () =
  List.iter
    (fun protocol ->
      ignore
        (run ~nprocs:8 ~protocol (fun ctx ->
             if Svm.Api.pid ctx = 0 then ignore (Svm.Api.malloc ctx ~name:"n" 1);
             Svm.Api.barrier ctx;
             let n = Svm.Api.root ctx "n" in
             for _ = 1 to 10 do
               Svm.Api.lock ctx 7;
               let v = Svm.Api.read_int ctx n in
               Svm.Api.compute ctx 100.;
               (* widen the race window *)
               Svm.Api.write_int ctx n (v + 1);
               Svm.Api.unlock ctx 7
             done;
             Svm.Api.barrier ctx;
             check Alcotest.int "no lost updates" 80 (Svm.Api.read_int ctx n))))
    Svm.Config.all_protocols

let test_barrier_counts () =
  let r =
    run ~nprocs:4 (fun ctx ->
        Svm.Api.start_timing ctx;
        for _ = 1 to 6 do
          Svm.Api.barrier ctx
        done)
  in
  Array.iter
    (fun n -> check Alcotest.int "six barriers" 6 n.Svm.Runtime.nr_counters.Svm.Stats.barriers)
    r.Svm.Runtime.r_nodes

(* Barriers synchronize time: after a barrier no node's clock can be behind
   the latest arrival. *)
let test_barrier_synchronizes_time () =
  ignore
    (run ~nprocs:3 (fun ctx ->
         let me = Svm.Api.pid ctx in
         Svm.Api.compute ctx (float_of_int (1 + me) *. 10_000.);
         Svm.Api.barrier ctx;
         (* All nodes continue from at least the slowest arrival. *)
         ()));
  (* elapsed must be >= the slowest node's pre-barrier compute *)
  let r =
    run ~nprocs:3 (fun ctx ->
        Svm.Api.start_timing ctx;
        Svm.Api.compute ctx (float_of_int (1 + Svm.Api.pid ctx) *. 10_000.);
        Svm.Api.barrier ctx)
  in
  check Alcotest.bool "slowest bounds elapsed" true (r.Svm.Runtime.r_elapsed >= 30_000.)

(* The cost of one remote acquire matches the paper's 1,550 us derivation:
   requester -> manager -> holder -> requester, with the manager and the
   holder on different third-party nodes (3 messages, 2 interrupts). *)
let test_remote_acquire_cost () =
  let r =
    run ~nprocs:4 (fun ctx ->
        Svm.Api.barrier ctx;
        Svm.Api.start_timing ctx;
        (* lock 5's manager is node 1; node 2 takes the token first, so node
           3's later acquire goes through the full chain: requester ->
           manager -> holder -> requester (3 messages, 2 interrupts). Node 3
           is neither a lock manager nor the barrier manager, so nothing
           else perturbs its wait. *)
        (match Svm.Api.pid ctx with
        | 2 ->
            Svm.Api.lock ctx 5;
            Svm.Api.unlock ctx 5
        | 3 ->
            Svm.Api.compute ctx 10_000.;
            Svm.Api.lock ctx 5;
            Svm.Api.unlock ctx 5
        | _ -> ());
        Svm.Api.barrier ctx)
  in
  let lock_wait = r.Svm.Runtime.r_nodes.(3).Svm.Runtime.nr_breakdown.Svm.Stats.lock in
  check Alcotest.bool
    (Printf.sprintf "lock wait %.0f close to the paper's 1550us" lock_wait)
    true
    (lock_wait >= 1450. && lock_wait <= 1700.)

(* Lock handoff order under contention: every waiter eventually gets the
   lock; total acquisitions equal total requests. *)
let test_lock_throughput_under_contention () =
  List.iter
    (fun nprocs ->
      let r =
        run ~nprocs (fun ctx ->
            if Svm.Api.pid ctx = 0 then ignore (Svm.Api.malloc ctx ~name:"hits" 1);
            Svm.Api.barrier ctx;
            let hits = Svm.Api.root ctx "hits" in
            for _ = 1 to 5 do
              Svm.Api.lock ctx 3;
              Svm.Api.write_int ctx hits (Svm.Api.read_int ctx hits + 1);
              Svm.Api.unlock ctx 3
            done;
            Svm.Api.barrier ctx;
            check Alcotest.int "all acquisitions happened" (5 * Svm.Api.nprocs ctx)
              (Svm.Api.read_int ctx hits))
      in
      ignore r)
    [ 2; 5; 8 ]

let suite =
  [
    ("local reacquire is free", `Quick, test_local_reacquire_free);
    ("remote acquires counted", `Quick, test_remote_acquire_counted);
    ("mutual exclusion", `Quick, test_mutual_exclusion);
    ("barrier counts", `Quick, test_barrier_counts);
    ("barrier synchronizes time", `Quick, test_barrier_synchronizes_time);
    ("remote acquire cost (paper 4.3)", `Quick, test_remote_acquire_cost);
    ("lock throughput under contention", `Quick, test_lock_throughput_under_contention);
  ]
