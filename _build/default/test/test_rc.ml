(* Eager Release Consistency (paper 2, Munin-style): updates pushed to all
   copy holders at release, the handoff gated on their acknowledgements. *)

let check = Alcotest.check

let run ?(nprocs = 4) app = Svm.Runtime.run (Svm.Config.make ~nprocs Svm.Config.Rc) app

let test_rc_accumulation () =
  List.iter (fun nprocs -> ignore (run ~nprocs Test_aurc.accumulate_app)) [ 1; 2; 3; 4; 8 ]

let test_rc_apps_verify () =
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun nprocs ->
          try ignore (run ~nprocs (app.Apps.Registry.body ~verify:true))
          with e ->
            Alcotest.failf "%s under RC at P=%d: %s" app.Apps.Registry.name nprocs
              (Printexc.to_string e))
        [ 1; 3; 8 ])
    (Apps.Registry.all Apps.Registry.Test)

let test_rc_more_messages_than_lrc () =
  (* The point of LRC (paper 2.1): RC pushes every update to every copy
     holder eagerly, so on a widely-shared page it sends far more update
     messages than the lazy protocol. *)
  let app ctx =
    let me = Svm.Api.pid ctx in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"x" 1024);
    Svm.Api.barrier ctx;
    let x = Svm.Api.root ctx "x" in
    (* everyone caches the page *)
    ignore (Svm.Api.read_int ctx x);
    Svm.Api.barrier ctx;
    Svm.Api.start_timing ctx;
    (* one writer updates it repeatedly under a private lock; nobody reads *)
    if me = 0 then
      for round = 1 to 10 do
        Svm.Api.lock ctx 0;
        Svm.Api.write_int ctx x round;
        Svm.Api.unlock ctx 0;
        Svm.Api.barrier ctx
      done
    else
      for _ = 1 to 10 do
        Svm.Api.barrier ctx
      done;
    Svm.Api.barrier ctx
  in
  let rc = Svm.Runtime.run (Svm.Config.make ~nprocs:8 Svm.Config.Rc) app in
  let lrc = Svm.Runtime.run (Svm.Config.make ~nprocs:8 Svm.Config.Lrc) app in
  check Alcotest.bool "RC pushes to every copy holder" true
    (Svm.Runtime.total_update_bytes rc > 3 * Svm.Runtime.total_update_bytes lrc)

let test_rc_no_protocol_state_accumulation () =
  (* No write notices, no retained diffs: nothing to garbage collect. *)
  let r = run ~nprocs:4 Test_aurc.accumulate_app in
  Array.iter
    (fun n ->
      check Alcotest.int "no GC" 0 n.Svm.Runtime.nr_counters.Svm.Stats.gc_runs;
      check Alcotest.bool "tiny residual protocol memory" true (n.Svm.Runtime.nr_mem_end < 1024))
    r.Svm.Runtime.r_nodes

let test_rc_release_gates_handoff () =
  (* A reader that acquires the writer's lock must see the writer's update
     even though RC sends no write notices: the grant waited for the ack. *)
  let app ctx =
    let me = Svm.Api.pid ctx in
    if me = 0 then ignore (Svm.Api.malloc ctx ~name:"x" 8);
    Svm.Api.barrier ctx;
    let x = Svm.Api.root ctx "x" in
    ignore (Svm.Api.read_int ctx x);
    (* join the copyset *)
    Svm.Api.barrier ctx;
    if me = 0 then begin
      Svm.Api.lock ctx 3;
      Svm.Api.write_int ctx x 41;
      Svm.Api.write_int ctx (x + 1) 42;
      Svm.Api.unlock ctx 3
    end
    else if me = 1 then begin
      Svm.Api.compute ctx 5_000.;
      Svm.Api.lock ctx 3;
      check Alcotest.int "sees the pushed update" 41 (Svm.Api.read_int ctx x);
      check Alcotest.int "and its neighbour" 42 (Svm.Api.read_int ctx (x + 1));
      Svm.Api.unlock ctx 3
    end;
    Svm.Api.barrier ctx
  in
  ignore (run ~nprocs:3 app)

let test_rc_random_programs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random DRF programs correct under RC" ~count:40
       (QCheck.make Test_random.gen_program) (fun program ->
         ignore (Test_random.run_program Svm.Config.Rc program);
         true))

let suite =
  [
    ("accumulation matrix", `Quick, test_rc_accumulation);
    ("all applications verify", `Slow, test_rc_apps_verify);
    ("RC sends more update traffic than LRC", `Quick, test_rc_more_messages_than_lrc);
    ("no protocol state accumulates", `Quick, test_rc_no_protocol_state_accumulation);
    ("release gates the handoff", `Quick, test_rc_release_gates_handoff);
    test_rc_random_programs;
  ]
