(* Unit and property tests for vector timestamps and interval records. *)

let check = Alcotest.check

let vt_of_list xs =
  let vt = Proto.Vclock.create ~nprocs:(List.length xs) in
  List.iteri (fun i x -> Proto.Vclock.set vt i x) xs;
  vt

(* ------------------------------------------------------------------ *)
(* Vclock *)

let test_vclock_initial () =
  let vt = Proto.Vclock.create ~nprocs:4 in
  for i = 0 to 3 do
    check Alcotest.int "starts at -1" (-1) (Proto.Vclock.get vt i)
  done;
  check Alcotest.int "nprocs" 4 (Proto.Vclock.nprocs vt);
  check Alcotest.int "size" 16 (Proto.Vclock.size_bytes vt)

let test_vclock_merge () =
  let a = vt_of_list [ 1; 5; 2 ] and b = vt_of_list [ 3; 0; 2 ] in
  Proto.Vclock.merge_into a b;
  check Alcotest.(list int) "pointwise max" [ 3; 5; 2 ]
    (List.init 3 (Proto.Vclock.get a))

let test_vclock_leq () =
  let a = vt_of_list [ 1; 2 ] and b = vt_of_list [ 2; 2 ] and c = vt_of_list [ 0; 3 ] in
  check Alcotest.bool "a <= b" true (Proto.Vclock.leq a b);
  check Alcotest.bool "b </= a" false (Proto.Vclock.leq b a);
  check Alcotest.bool "a incomparable c (1)" false (Proto.Vclock.leq a c);
  check Alcotest.bool "a incomparable c (2)" false (Proto.Vclock.leq c a);
  check Alcotest.bool "dominates" true (Proto.Vclock.dominates b a)

let test_vclock_copy_independent () =
  let a = vt_of_list [ 1; 2 ] in
  let b = Proto.Vclock.copy a in
  Proto.Vclock.set b 0 9;
  check Alcotest.int "original unchanged" 1 (Proto.Vclock.get a 0)

let test_vclock_size_mismatch () =
  let a = Proto.Vclock.create ~nprocs:2 and b = Proto.Vclock.create ~nprocs:3 in
  Alcotest.check_raises "merge mismatch" (Invalid_argument "Vclock.merge_into: size mismatch")
    (fun () -> Proto.Vclock.merge_into a b)

let vclock_gen n = QCheck.Gen.(array_size (return n) (int_bound 50))

let vt_of_array a =
  let vt = Proto.Vclock.create ~nprocs:(Array.length a) in
  Array.iteri (Proto.Vclock.set vt) a;
  vt

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"merge is an upper bound" ~count:300
    (QCheck.make QCheck.Gen.(pair (vclock_gen 8) (vclock_gen 8)))
    (fun (xs, ys) ->
      let a = vt_of_array xs and b = vt_of_array ys in
      let m = Proto.Vclock.copy a in
      Proto.Vclock.merge_into m b;
      Proto.Vclock.leq a m && Proto.Vclock.leq b m)

let prop_merge_least =
  QCheck.Test.make ~name:"merge is the least upper bound" ~count:300
    (QCheck.make QCheck.Gen.(pair (vclock_gen 8) (vclock_gen 8)))
    (fun (xs, ys) ->
      let a = vt_of_array xs and b = vt_of_array ys in
      let m = Proto.Vclock.copy a in
      Proto.Vclock.merge_into m b;
      (* any entry of m equals the max of the inputs *)
      List.for_all
        (fun i -> Proto.Vclock.get m i = max xs.(i) ys.(i))
        (List.init 8 (fun i -> i)))

let prop_leq_partial_order =
  QCheck.Test.make ~name:"leq is reflexive and antisymmetric" ~count:300
    (QCheck.make QCheck.Gen.(pair (vclock_gen 6) (vclock_gen 6)))
    (fun (xs, ys) ->
      let a = vt_of_array xs and b = vt_of_array ys in
      Proto.Vclock.leq a a
      && ((not (Proto.Vclock.leq a b && Proto.Vclock.leq b a)) || Proto.Vclock.equal a b))

(* ------------------------------------------------------------------ *)
(* Interval *)

let test_interval_size () =
  let no_vt = Proto.Interval.make ~node:0 ~index:1 ~vt:None ~pages:[ 1; 2; 3 ] in
  check Alcotest.int "home-based record" (8 + 12) (Proto.Interval.size_bytes no_vt);
  let with_vt =
    Proto.Interval.make ~node:0 ~index:1 ~vt:(Some (Proto.Vclock.create ~nprocs:16))
      ~pages:[ 1; 2; 3 ]
  in
  check Alcotest.int "homeless record carries the vt" (8 + 12 + 64)
    (Proto.Interval.size_bytes with_vt)

let test_interval_causally_before () =
  let mk node index vt = Proto.Interval.make ~node ~index ~vt:(Some (vt_of_list vt)) ~pages:[] in
  let a = mk 0 0 [ 0; -1 ] in
  let b = mk 1 0 [ 0; 0 ] in
  let c = mk 0 1 [ 1; -1 ] in
  check Alcotest.bool "a before b" true (Proto.Interval.causally_before a b);
  check Alcotest.bool "b not before a" false (Proto.Interval.causally_before b a);
  check Alcotest.bool "b and c concurrent (1)" false (Proto.Interval.causally_before b c);
  check Alcotest.bool "b and c concurrent (2)" false (Proto.Interval.causally_before c b);
  check Alcotest.bool "not before itself" false (Proto.Interval.causally_before a a)

let test_interval_no_vt_ordering () =
  let a = Proto.Interval.make ~node:0 ~index:0 ~vt:None ~pages:[] in
  Alcotest.check_raises "needs timestamps"
    (Invalid_argument "Interval.causally_before: interval lacks a timestamp") (fun () ->
      ignore (Proto.Interval.causally_before a a))

(* The timestamp-sum key used to order diff application is a linear
   extension of the causal order: strictly ordered intervals get strictly
   ordered keys. *)
let prop_sum_key_linear_extension =
  QCheck.Test.make ~name:"vt-sum key extends the causal order" ~count:500
    (QCheck.make QCheck.Gen.(pair (vclock_gen 6) (vclock_gen 6)))
    (fun (xs, ys) ->
      let a = Proto.Interval.make ~node:0 ~index:0 ~vt:(Some (vt_of_array xs)) ~pages:[] in
      let b = Proto.Interval.make ~node:1 ~index:0 ~vt:(Some (vt_of_array ys)) ~pages:[] in
      (not (Proto.Interval.causally_before a b))
      || Svm.Faults.causal_key a < Svm.Faults.causal_key b)

let suite =
  [
    ("vclock initial", `Quick, test_vclock_initial);
    ("vclock merge", `Quick, test_vclock_merge);
    ("vclock leq", `Quick, test_vclock_leq);
    ("vclock copy independent", `Quick, test_vclock_copy_independent);
    ("vclock size mismatch", `Quick, test_vclock_size_mismatch);
    QCheck_alcotest.to_alcotest prop_merge_upper_bound;
    QCheck_alcotest.to_alcotest prop_merge_least;
    QCheck_alcotest.to_alcotest prop_leq_partial_order;
    ("interval sizes", `Quick, test_interval_size);
    ("interval causal order", `Quick, test_interval_causally_before);
    ("interval without vt", `Quick, test_interval_no_vt_ordering);
    QCheck_alcotest.to_alcotest prop_sum_key_linear_extension;
  ]
