(* Protocol correctness matrices: every scenario runs under all four
   protocols at several machine sizes and must produce the exact expected
   memory contents. These are the tests that caught the fault-retry and
   write-notice-ordering bugs during development. *)

let all_protocols = Svm.Config.all_protocols

let sizes = [ 1; 2; 3; 4; 8 ]

let matrix name app expected_failure_free =
  ( name,
    `Quick,
    fun () ->
      List.iter
        (fun protocol ->
          List.iter
            (fun nprocs ->
              try ignore (Svm.Runtime.run (Svm.Config.make ~nprocs protocol) app)
              with e ->
                Alcotest.failf "%s under %s at P=%d: %s" name
                  (Svm.Config.protocol_name protocol) nprocs (Printexc.to_string e))
            sizes)
        all_protocols;
      ignore expected_failure_free )

let expect cond fmt =
  Format.kasprintf (fun msg -> if not cond then Alcotest.fail msg) fmt

(* --- shared counter under one lock ---------------------------------- *)

let counter_app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"c" 1);
  Svm.Api.barrier ctx;
  let c = Svm.Api.root ctx "c" in
  for _ = 1 to 25 do
    Svm.Api.lock ctx 0;
    Svm.Api.write_int ctx c (Svm.Api.read_int ctx c + 1);
    Svm.Api.unlock ctx 0
  done;
  Svm.Api.barrier ctx;
  let v = Svm.Api.read_int ctx c in
  expect (v = 25 * np) "pid %d: counter %d, want %d" me v (25 * np)

(* --- lock-ordered accumulation with false sharing ------------------- *)

let accumulate_app ctx =
  let n = 96 in
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"f" n);
  Svm.Api.barrier ctx;
  let f = Svm.Api.root ctx "f" in
  let lo, hi = Apps.App_util.chunk ~n ~nparts:np me in
  for m = lo to hi - 1 do
    Svm.Api.write ctx (f + m) 0.
  done;
  Svm.Api.barrier ctx;
  for q = 0 to np - 1 do
    let target = (me + q) mod np in
    let qlo, qhi = Apps.App_util.chunk ~n ~nparts:np target in
    Svm.Api.lock ctx target;
    for m = qlo to qhi - 1 do
      Svm.Api.write ctx (f + m)
        (Svm.Api.read ctx (f + m) +. float_of_int ((me + 1) * (m + 1)))
    done;
    Svm.Api.unlock ctx target
  done;
  Svm.Api.barrier ctx;
  let sum_p = np * (np + 1) / 2 in
  for m = 0 to n - 1 do
    let want = float_of_int (sum_p * (m + 1)) in
    let got = Svm.Api.read ctx (f + m) in
    expect (got = want) "pid %d: f[%d] = %g, want %g" me m got want
  done;
  Svm.Api.barrier ctx

(* --- migratory token: a value hops between nodes through one lock ---- *)

let migratory_app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"m" 16);
  Svm.Api.barrier ctx;
  let m = Svm.Api.root ctx "m" in
  for round = 1 to 8 do
    Svm.Api.lock ctx 0;
    (* whole record is read, modified and written: migratory pattern *)
    let acc = ref 0 in
    for i = 0 to 15 do
      acc := !acc + Svm.Api.read_int ctx (m + i)
    done;
    for i = 0 to 15 do
      Svm.Api.write_int ctx (m + i) (!acc + i)
    done;
    Svm.Api.unlock ctx 0;
    ignore round
  done;
  Svm.Api.barrier ctx;
  (* The final value is some deterministic function of the access order;
     all nodes must agree on it exactly. *)
  let v0 = Svm.Api.read_int ctx m in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"check" np);
  Svm.Api.barrier ctx;
  let chk = Svm.Api.root ctx "check" in
  Svm.Api.write_int ctx (chk + me) v0;
  Svm.Api.barrier ctx;
  for p = 0 to np - 1 do
    expect
      (Svm.Api.read_int ctx (chk + p) = v0)
      "pid %d: node %d disagrees on the migratory record" me p
  done

(* --- producer/consumer chain through locks --------------------------- *)

let chain_app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"slot" 1);
  Svm.Api.barrier ctx;
  let slot = Svm.Api.root ctx "slot" in
  (* Each node repeatedly increments when the value mod np matches its id:
     spin through the lock (a crude but race-free handoff). *)
  let rounds = 3 in
  let target = rounds * np in
  let rec spin () =
    Svm.Api.lock ctx 0;
    let v = Svm.Api.read_int ctx slot in
    if v < target && v mod np = me then Svm.Api.write_int ctx slot (v + 1);
    Svm.Api.unlock ctx 0;
    if v < target then begin
      Svm.Api.compute ctx 50.;
      spin ()
    end
  in
  spin ();
  Svm.Api.barrier ctx;
  let v = Svm.Api.read_int ctx slot in
  expect (v = target) "pid %d: chain ended at %d, want %d" me v target

(* --- barrier-only neighbour exchange -------------------------------- *)

let neighbour_app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let words_per = 300 in
  (* deliberately not page aligned *)
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"ring" (np * words_per));
  Svm.Api.barrier ctx;
  let ring = Svm.Api.root ctx "ring" in
  let mine = ring + (me * words_per) in
  for round = 1 to 4 do
    for i = 0 to words_per - 1 do
      Svm.Api.write_int ctx (mine + i) ((100000 * round) + (1000 * me) + i)
    done;
    Svm.Api.barrier ctx;
    (* read the right neighbour's fresh values *)
    let neighbour = ring + ((me + 1) mod np * words_per) in
    for i = 0 to words_per - 1 do
      let want = (100000 * round) + (1000 * ((me + 1) mod np)) + i in
      let got = Svm.Api.read_int ctx (neighbour + i) in
      expect (got = want) "pid %d round %d: neighbour[%d] = %d, want %d" me round i got want
    done;
    Svm.Api.barrier ctx
  done

(* --- write-then-invalidate-then-read (uncommitted-writes paths) ------ *)

let dirty_invalidate_app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"page" 128);
  Svm.Api.barrier ctx;
  let page = Svm.Api.root ctx "page" in
  (* Every node writes its own word of the same page while repeatedly
     acquiring a lock (whose grants invalidate the page it is still
     writing), then reads everything back after a barrier. *)
  for round = 1 to 5 do
    Svm.Api.write_int ctx (page + me) ((round * 100) + me);
    Svm.Api.lock ctx 1;
    Svm.Api.write_int ctx (page + np + me) ((round * 1000) + me);
    Svm.Api.unlock ctx 1;
    Svm.Api.compute ctx 100.
  done;
  Svm.Api.barrier ctx;
  for p = 0 to np - 1 do
    expect
      (Svm.Api.read_int ctx (page + p) = 500 + p)
      "pid %d: private word of %d lost" me p;
    expect
      (Svm.Api.read_int ctx (page + np + p) = 5000 + p)
      "pid %d: locked word of %d lost" me p
  done;
  Svm.Api.barrier ctx

(* --- reader of never-written memory ---------------------------------- *)

let cold_read_app ctx =
  let me = Svm.Api.pid ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"cold" 2048);
  Svm.Api.barrier ctx;
  let cold = Svm.Api.root ctx "cold" in
  for i = 0 to 2047 do
    expect (Svm.Api.read ctx (cold + i) = 0.) "pid %d: cold[%d] nonzero" me i
  done;
  Svm.Api.barrier ctx

(* --- multiple independent locks --------------------------------------- *)

let many_locks_app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let nlocks = 5 in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"cells" nlocks);
  Svm.Api.barrier ctx;
  let cells = Svm.Api.root ctx "cells" in
  for round = 1 to 10 do
    let l = (me + round) mod nlocks in
    Svm.Api.lock ctx (100 + l);
    Svm.Api.write_int ctx (cells + l) (Svm.Api.read_int ctx (cells + l) + 1);
    Svm.Api.unlock ctx (100 + l)
  done;
  Svm.Api.barrier ctx;
  let total = ref 0 in
  for l = 0 to nlocks - 1 do
    total := !total + Svm.Api.read_int ctx (cells + l)
  done;
  expect (!total = 10 * np) "pid %d: lock cells total %d, want %d" me !total (10 * np)

let suite =
  [
    matrix "counter under a lock" counter_app ();
    matrix "false-sharing accumulation" accumulate_app ();
    matrix "migratory record" migratory_app ();
    matrix "producer chain" chain_app ();
    matrix "barrier neighbour exchange" neighbour_app ();
    matrix "dirty page invalidated mid-interval" dirty_invalidate_app ();
    matrix "cold reads are zero" cold_read_app ();
    matrix "many independent locks" many_locks_app ();
  ]
