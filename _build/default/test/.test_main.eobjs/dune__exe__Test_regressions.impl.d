test/test_regressions.ml: Alcotest Apps Array List Svm
