test/test_machine.ml: Alcotest Machine
