test/test_apps.ml: Alcotest Apps Array Float List Printexc Printf Svm
