test/test_system.ml: Alcotest Array List Machine QCheck QCheck_alcotest Sim Svm
