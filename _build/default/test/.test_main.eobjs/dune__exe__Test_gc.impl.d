test/test_gc.ml: Alcotest Apps Array Svm
