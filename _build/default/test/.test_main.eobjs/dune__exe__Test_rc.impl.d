test/test_rc.ml: Alcotest Apps Array List Printexc QCheck QCheck_alcotest Svm Test_aurc Test_random
