test/test_proto.ml: Alcotest Array List Proto QCheck QCheck_alcotest Svm
