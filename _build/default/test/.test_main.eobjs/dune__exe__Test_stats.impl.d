test/test_stats.ml: Alcotest Array List Svm
