test/test_migration.ml: Alcotest Apps Array List Printexc Printf Svm Test_aurc
