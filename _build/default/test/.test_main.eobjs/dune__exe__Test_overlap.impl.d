test/test_overlap.ml: Alcotest Apps Array Float List Printf Svm
