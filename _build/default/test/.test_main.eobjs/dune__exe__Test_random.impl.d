test/test_random.ml: Array List Printf QCheck QCheck_alcotest Svm
