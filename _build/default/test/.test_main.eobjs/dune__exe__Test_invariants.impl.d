test/test_invariants.ml: Alcotest Apps Array List Mem Printexc String Svm
