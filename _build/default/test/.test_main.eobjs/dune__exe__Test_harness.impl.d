test/test_harness.ml: Alcotest Apps Buffer Format Harness List String Svm
