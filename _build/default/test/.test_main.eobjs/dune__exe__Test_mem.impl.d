test/test_mem.ml: Alcotest Array List Mem QCheck QCheck_alcotest
