test/test_sync.ml: Alcotest Array List Printf Svm
