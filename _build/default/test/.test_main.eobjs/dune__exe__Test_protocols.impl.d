test/test_protocols.ml: Alcotest Apps Format List Printexc Svm
