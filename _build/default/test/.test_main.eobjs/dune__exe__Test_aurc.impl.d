test/test_aurc.ml: Alcotest Apps Array List Printexc QCheck QCheck_alcotest Svm Test_random
