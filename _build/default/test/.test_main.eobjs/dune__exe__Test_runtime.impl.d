test/test_runtime.ml: Alcotest Apps Array Float List String Svm
