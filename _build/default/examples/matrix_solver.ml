(* A Laplace-equation solver built on the public SVM API.

   Solves the steady-state heat distribution of a plate with fixed-
   temperature edges by red-black Gauss-Seidel sweeps — the workload the
   paper's SOR kernel stands for — and compares the wall time of the four
   protocols at several machine sizes.

     dune exec examples/matrix_solver.exe *)

let rows = 96

let cols = 96

let sweeps = 8

let top_temperature = 100.0

let solver ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then begin
    let plate = Svm.Api.malloc ctx ~name:"plate" (rows * cols) in
    (* Hot top edge, cold elsewhere. *)
    for j = 0 to cols - 1 do
      Svm.Api.write ctx (plate + j) top_temperature
    done
  end;
  Svm.Api.barrier ctx;
  let plate = Svm.Api.root ctx "plate" in
  let lo, hi = Apps.App_util.chunk ~n:rows ~nparts:np me in
  let lo = max lo 1 and hi = min hi (rows - 1) in
  for _ = 1 to sweeps do
    for color = 0 to 1 do
      for i = lo to hi - 1 do
        for j = 1 to cols - 2 do
          if (i + j) land 1 = color then begin
            let at r c = Svm.Api.read ctx (plate + (r * cols) + c) in
            let v = 0.25 *. (at (i - 1) j +. at (i + 1) j +. at i (j - 1) +. at i (j + 1)) in
            Svm.Api.write ctx (plate + (i * cols) + j) v
          end
        done
      done;
      Svm.Api.barrier ctx
    done
  done;
  if me = 0 then begin
    (* Temperature near the hot edge should exceed the centre. *)
    let near_top = Svm.Api.read ctx (plate + (2 * cols) + (cols / 2)) in
    let centre = Svm.Api.read ctx (plate + (rows / 2 * cols) + (cols / 2)) in
    Printf.printf "        plate[2][mid] = %.3f, plate[mid][mid] = %.5f\n" near_top centre
  end;
  Svm.Api.barrier ctx

let () =
  Printf.printf "Laplace solver, %dx%d plate, %d red-black sweeps\n\n" rows cols sweeps;
  List.iter
    (fun np ->
      Printf.printf "%d nodes:\n" np;
      List.iter
        (fun protocol ->
          let cfg = Svm.Config.make ~nprocs:np protocol in
          let r = Svm.Runtime.run cfg solver in
          Printf.printf "  %-6s %10.1f ms simulated, %5d messages\n"
            (Svm.Config.protocol_name protocol)
            (r.Svm.Runtime.r_elapsed /. 1e3)
            (Svm.Runtime.total_messages r))
        Svm.Config.all_protocols;
      print_newline ())
    [ 4; 16 ]
