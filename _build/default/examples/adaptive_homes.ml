(* Adaptive home migration in action.

   A "rotating producer" workload: in each phase, one node produces a large
   buffer that everyone else reads. Whatever static home assignment the
   allocator picked is wrong for most phases; with `~home_migration:true`
   the directory follows the producer (after the two-epoch hysteresis) and
   the diff-flush traffic to third-party homes disappears.

     dune exec examples/adaptive_homes.exe *)

let words = 8 * 1024 (* 8 pages *)

let phases = 6

let rounds_per_phase = 3

let app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  if me = 0 then ignore (Svm.Api.malloc ctx ~name:"buf" ~home:(fun _ -> 0) words);
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let buf = Svm.Api.root ctx "buf" in
  for phase = 0 to phases - 1 do
    let producer = phase mod np in
    for round = 1 to rounds_per_phase do
      if me = producer then
        for i = 0 to words - 1 do
          Svm.Api.write_int ctx (buf + i) ((phase * 1000) + (round * 10) + (i mod 7))
        done;
      Svm.Api.barrier ctx;
      (* consumers sample the buffer *)
      if me <> producer then
        for i = 0 to 255 do
          ignore (Svm.Api.read_int ctx (buf + (i * (words / 256))))
        done;
      Svm.Api.barrier ctx
    done
  done

let () =
  List.iter
    (fun migration ->
      let cfg = Svm.Config.make ~home_migration:migration ~nprocs:8 Svm.Config.Hlrc in
      let r = Svm.Runtime.run cfg app in
      let moves =
        Array.fold_left
          (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.home_migrations)
          0 r.Svm.Runtime.r_nodes
      in
      Printf.printf "%-18s %8.1f ms simulated, %5d messages, %2d pages migrated\n"
        (if migration then "adaptive homes:" else "fixed homes:")
        (r.Svm.Runtime.r_elapsed /. 1e3)
        (Svm.Runtime.total_messages r)
        moves)
    [ false; true ]
