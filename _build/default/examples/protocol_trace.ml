(* Reproduces the paper's Figures 1 and 2 as annotated event timelines.

   The scenario is the one in the figures: node 0 writes x under a lock,
   node 1 then acquires the lock and reads x. The page holding x is homed on
   node 2, so the home-based traces show the third-party diff flush and the
   full-page fetch, while the homeless traces show diff requests going back
   to the writer. Running all four protocols side by side makes the
   structural differences of Figures 1-2 directly visible.

     dune exec examples/protocol_trace.exe *)

let app ctx =
  let me = Svm.Api.pid ctx in
  if me = 0 then
    (* x lives on a page homed at node 2, as in Figure 1(b)/(c). *)
    ignore (Svm.Api.malloc ctx ~name:"x" ~home:(fun _ -> 2) 1);
  Svm.Api.barrier ctx;
  let x = Svm.Api.root ctx "x" in
  (* Everyone caches the page first, so the homeless protocols later show a
     diff fetch (Figure 1(a)) rather than a cold full-page copy. *)
  ignore (Svm.Api.read_int ctx x);
  Svm.Api.barrier ctx;
  (match me with
  | 0 ->
      Svm.Api.lock ctx 5;
      Svm.Api.write_int ctx x 42;
      Svm.Api.unlock ctx 5
  | 1 ->
      (* A tiny delay so node 0 acquires first, as in the figures. *)
      Svm.Api.compute ctx 2000.;
      Svm.Api.lock ctx 5;
      let v = Svm.Api.read_int ctx x in
      Printf.printf "        (node 1 reads x = %d)\n" v;
      Svm.Api.unlock ctx 5
  | _ -> ());
  Svm.Api.barrier ctx

let () =
  List.iter
    (fun protocol ->
      Printf.printf "==== %s ====\n" (Svm.Config.protocol_name protocol);
      let cfg = Svm.Config.make ~nprocs:3 protocol in
      let trace t s = Printf.printf "[%9.1f us] %s\n" t s in
      ignore (Svm.Runtime.run ~trace cfg app);
      print_newline ())
    Svm.Config.extended_protocols
