(* Quickstart: a shared counter and a parallel array sum on 4 nodes.

   Shows the whole public API surface: configuration, allocation with
   [~name] roots, reads/writes, locks, barriers, and the run report.

     dune exec examples/quickstart.exe *)

let array_words = 4096

let app ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in

  (* Process 0 allocates and initializes shared data (the Splash-2 model:
     allocate, initialize, then everyone joins at a barrier). *)
  if me = 0 then begin
    ignore (Svm.Api.malloc ctx ~name:"numbers" array_words);
    ignore (Svm.Api.malloc ctx ~name:"total" 1);
    let numbers = Svm.Api.root ctx "numbers" in
    for i = 0 to array_words - 1 do
      Svm.Api.write_int ctx (numbers + i) (i + 1)
    done
  end;
  Svm.Api.barrier ctx;

  (* Each process sums its contiguous slice... *)
  let numbers = Svm.Api.root ctx "numbers" in
  let total = Svm.Api.root ctx "total" in
  let chunk = array_words / np in
  let lo = me * chunk in
  let hi = if me = np - 1 then array_words else lo + chunk in
  let local_sum = ref 0 in
  for i = lo to hi - 1 do
    local_sum := !local_sum + Svm.Api.read_int ctx (numbers + i)
  done;

  (* ...and adds it to the shared total under a lock. *)
  Svm.Api.lock ctx 0;
  Svm.Api.write_int ctx total (Svm.Api.read_int ctx total + !local_sum);
  Svm.Api.unlock ctx 0;
  Svm.Api.barrier ctx;

  if me = 0 then begin
    let got = Svm.Api.read_int ctx total in
    let expected = array_words * (array_words + 1) / 2 in
    Printf.printf "sum of 1..%d = %d (expected %d) -- %s\n" array_words got expected
      (if got = expected then "correct" else "WRONG")
  end

let () =
  List.iter
    (fun protocol ->
      let cfg = Svm.Config.make ~nprocs:4 protocol in
      let r = Svm.Runtime.run cfg app in
      Printf.printf
        "%-6s: %8.1f ms simulated, %4d messages, %3d KB update traffic, %2d KB protocol memory\n\n"
        (Svm.Config.protocol_name protocol)
        (r.Svm.Runtime.r_elapsed /. 1e3)
        (Svm.Runtime.total_messages r)
        (Svm.Runtime.total_update_bytes r / 1024)
        (Svm.Runtime.max_mem_peak r / 1024))
    Svm.Config.all_protocols
