(* A self-balancing task farm on shared virtual memory.

   Renders rows of the Mandelbrot set with a shared work queue protected by
   a lock — the task-queue idiom the paper's Raytrace benchmark relies on.
   Row costs are wildly uneven (points inside the set iterate to the cap),
   so dynamic assignment through shared memory beats a static split; the
   example prints how many rows each node ended up computing.

     dune exec examples/task_farm.exe *)

let width = 160

let height = 120

let max_iter = 200

let mandel_row y =
  let escaped = ref 0 in
  for x = 0 to width - 1 do
    let cr = (3.0 *. float_of_int x /. float_of_int width) -. 2.2 in
    let ci = (2.4 *. float_of_int y /. float_of_int height) -. 1.2 in
    let rec iter zr zi n =
      if n >= max_iter then n
      else if (zr *. zr) +. (zi *. zi) > 4.0 then n
      else iter ((zr *. zr) -. (zi *. zi) +. cr) ((2.0 *. zr *. zi) +. ci) (n + 1)
    in
    if iter 0. 0. 0 < max_iter then incr escaped
  done;
  !escaped

let app ctx =
  let me = Svm.Api.pid ctx in
  if me = 0 then begin
    ignore (Svm.Api.malloc ctx ~name:"next_row" 1);
    ignore (Svm.Api.malloc ctx ~name:"row_owner" height);
    ignore (Svm.Api.malloc ctx ~name:"row_result" height)
  end;
  Svm.Api.barrier ctx;
  let next_row = Svm.Api.root ctx "next_row" in
  let row_owner = Svm.Api.root ctx "row_owner" in
  let row_result = Svm.Api.root ctx "row_result" in
  let rec work () =
    Svm.Api.lock ctx 0;
    let row = Svm.Api.read_int ctx next_row in
    if row < height then Svm.Api.write_int ctx next_row (row + 1);
    Svm.Api.unlock ctx 0;
    if row < height then begin
      let result = mandel_row row in
      (* Simulated cost proportional to the row's real work. *)
      Svm.Api.compute ctx (float_of_int (result + width) *. 2.0);
      Svm.Api.write_int ctx (row_result + row) result;
      Svm.Api.write_int ctx (row_owner + row) me;
      work ()
    end
  in
  work ();
  Svm.Api.barrier ctx;
  if me = 0 then begin
    let np = Svm.Api.nprocs ctx in
    let counts = Array.make np 0 in
    let total = ref 0 in
    for row = 0 to height - 1 do
      counts.(Svm.Api.read_int ctx (row_owner + row)) <-
        counts.(Svm.Api.read_int ctx (row_owner + row)) + 1;
      total := !total + Svm.Api.read_int ctx (row_result + row)
    done;
    Printf.printf "  %d escaped-point rows total; rows per node:" !total;
    Array.iter (fun c -> Printf.printf " %d" c) counts;
    print_newline ()
  end;
  Svm.Api.barrier ctx

let () =
  List.iter
    (fun protocol ->
      Printf.printf "%s:\n" (Svm.Config.protocol_name protocol);
      let cfg = Svm.Config.make ~nprocs:8 protocol in
      let r = Svm.Runtime.run cfg app in
      Printf.printf "  %.1f ms simulated, %d messages\n\n"
        (r.Svm.Runtime.r_elapsed /. 1e3)
        (Svm.Runtime.total_messages r))
    Svm.Config.all_protocols
