examples/quickstart.mli:
