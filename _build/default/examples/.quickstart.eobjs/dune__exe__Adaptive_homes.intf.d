examples/adaptive_homes.mli:
