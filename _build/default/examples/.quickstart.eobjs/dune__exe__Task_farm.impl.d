examples/task_farm.ml: Array List Printf Svm
