examples/protocol_trace.ml: List Printf Svm
