examples/matrix_solver.ml: Apps List Printf Svm
