examples/adaptive_homes.ml: Array List Printf Svm
