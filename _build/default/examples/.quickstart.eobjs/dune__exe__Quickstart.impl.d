examples/quickstart.ml: List Printf Svm
