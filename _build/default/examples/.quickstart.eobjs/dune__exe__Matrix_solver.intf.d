examples/matrix_solver.mli:
