lib/mem/diff.ml: Array Format Int64 List
