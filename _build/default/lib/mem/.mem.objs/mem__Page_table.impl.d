lib/mem/page_table.ml: Array Layout List Printf
