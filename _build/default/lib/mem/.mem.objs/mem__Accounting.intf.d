lib/mem/accounting.mli:
