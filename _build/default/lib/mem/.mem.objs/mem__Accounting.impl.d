lib/mem/accounting.ml:
