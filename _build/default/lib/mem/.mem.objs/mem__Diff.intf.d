lib/mem/diff.mli: Format
