lib/mem/page_table.mli: Layout
