lib/mem/layout.mli:
