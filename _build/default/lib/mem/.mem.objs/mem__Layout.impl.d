lib/mem/layout.ml:
