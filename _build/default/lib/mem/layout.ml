type t = { page_words : int; shift : int; mask : int }

let word_bytes = 8

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~page_words =
  if not (is_power_of_two page_words) then
    invalid_arg "Layout.create: page_words must be a positive power of two";
  let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
  { page_words; shift = log2 page_words 0; mask = page_words - 1 }

let page_words t = t.page_words

let page_bytes t = t.page_words * word_bytes

let page_of_addr t addr = addr lsr t.shift

let offset_of_addr t addr = addr land t.mask

let base_of_page t page = page lsl t.shift

let pages_for t words = (words + t.page_words - 1) / t.page_words
