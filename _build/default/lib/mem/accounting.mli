(** Byte-level accounting of protocol memory (diffs, write notices, twins,
    timestamp tables), used to reproduce the paper's Table 6. *)

type t

val create : unit -> t

val add : t -> int -> unit

(** [sub] releases bytes; the current figure never goes negative (released
    structures were always previously added). *)
val sub : t -> int -> unit

val current : t -> int

val peak : t -> int

(** Restart peak tracking from the current level (e.g. at the start of a
    measurement window, so initialization-phase spikes are excluded). *)
val reset_peak : t -> unit

val reset : t -> unit
