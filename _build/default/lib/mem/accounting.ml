type t = { mutable current : int; mutable peak : int }

let create () = { current = 0; peak = 0 }

let add t bytes =
  assert (bytes >= 0);
  t.current <- t.current + bytes;
  if t.current > t.peak then t.peak <- t.current

let sub t bytes =
  assert (bytes >= 0);
  t.current <- max 0 (t.current - bytes)

let current t = t.current

let peak t = t.peak

let reset_peak t = t.peak <- t.current

let reset t =
  t.current <- 0;
  t.peak <- 0
