(** Shared address-space layout.

    The shared virtual address space is a flat array of 8-byte words split
    into fixed-size pages. Addresses are word indices. *)

type t

(** [create ~page_words] builds a layout with [page_words] words per page.
    [page_words] must be a positive power of two. *)
val create : page_words:int -> t

val page_words : t -> int

val page_bytes : t -> int

val word_bytes : int

(** Page containing address [addr]. *)
val page_of_addr : t -> int -> int

(** Offset of [addr] within its page. *)
val offset_of_addr : t -> int -> int

(** First address of page [page]. *)
val base_of_page : t -> int -> int

(** Number of pages needed to hold [words] words starting at a page
    boundary. *)
val pages_for : t -> int -> int
