type t = { costs : Costs.t; nprocs : int; width : int }

let create ~costs ~nprocs =
  if nprocs <= 0 then invalid_arg "Network.create: nprocs must be positive";
  let width = int_of_float (ceil (sqrt (float_of_int nprocs))) in
  { costs; nprocs; width }

let nprocs t = t.nprocs

let costs t = t.costs

let hops t ~src ~dst =
  let x1 = src mod t.width and y1 = src / t.width in
  let x2 = dst mod t.width and y2 = dst / t.width in
  abs (x1 - x2) + abs (y1 - y2)

let transfer_time t ~src ~dst ~bytes =
  if src = dst then 0.
  else
    let c = t.costs in
    c.Costs.message_latency
    +. (float_of_int (hops t ~src ~dst) *. c.Costs.per_hop)
    +. (float_of_int bytes *. c.Costs.byte_transfer)
