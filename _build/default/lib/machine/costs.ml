type t = {
  message_latency : float;
  byte_transfer : float;
  per_hop : float;
  receive_interrupt : float;
  twin_copy : float;
  diff_create_base : float;
  diff_create_per_word : float;
  diff_apply_base : float;
  diff_apply_per_word : float;
  page_fault : float;
  page_invalidate : float;
  page_protect : float;
  mem_access : float;
  lock_service : float;
  barrier_service : float;
  write_notice_handle : float;
  coproc_dispatch : float;
}

(* Table 3 of the paper, reconstructed (DESIGN.md, "Cost-table
   reconstruction"): page transfer of an 8 KB page costs 92 us, hence
   92 / 8192 us per byte. Diff creation scans the whole page
   (140 + 1024 words * 0.28 ~= 427 us for an 8 KB page of 8-byte words);
   diff application is proportional to the diff size, topping out near the
   paper's 430 us for a full-page diff. *)
let paragon =
  {
    message_latency = 50.0;
    byte_transfer = 92.0 /. 8192.0;
    per_hop = 0.02;
    receive_interrupt = 690.0;
    twin_copy = 120.0;
    diff_create_base = 140.0;
    diff_create_per_word = 0.28;
    diff_apply_base = 10.0;
    diff_apply_per_word = 0.41;
    page_fault = 290.0;
    page_invalidate = 10.0;
    page_protect = 50.0;
    mem_access = 0.08;
    lock_service = 10.0;
    barrier_service = 20.0;
    write_notice_handle = 2.0;
    coproc_dispatch = 5.0;
  }

let default = paragon

let low_latency =
  {
    paragon with
    message_latency = 5.0;
    receive_interrupt = 10.0;
    page_fault = 30.0;
    byte_transfer = 8.0 /. 8192.0;
  }

let pp ppf t =
  let row label value = Format.fprintf ppf "%-28s %10.2f us@." label value in
  row "Message latency" t.message_latency;
  row "Page transfer (8 KB)" (t.byte_transfer *. 8192.0);
  row "Receive interrupt" t.receive_interrupt;
  row "Twin copy" t.twin_copy;
  row "Diff creation (8 KB page)" (t.diff_create_base +. (1024.0 *. t.diff_create_per_word));
  row "Diff application (max)" (t.diff_apply_base +. (1024.0 *. t.diff_apply_per_word));
  row "Page fault" t.page_fault;
  row "Page invalidation" t.page_invalidate;
  row "Page protection" t.page_protect
