(** Cost model for the simulated multicomputer.

    All times are in microseconds. Defaults reproduce the Intel Paragon
    numbers from Table 3 of the paper, reconstructed from the arithmetic in
    its Section 4.3 (see DESIGN.md for the derivation). *)

type t = {
  message_latency : float;
      (** One-way small-message latency (software overhead + wire). *)
  byte_transfer : float;  (** Per-byte payload transfer cost. *)
  per_hop : float;  (** Extra latency per mesh hop (wormhole: tiny). *)
  receive_interrupt : float;
      (** Cost of interrupting the compute processor to service an incoming
          request (non-overlapped protocols only). *)
  twin_copy : float;  (** Copying one page to create a twin. *)
  diff_create_base : float;  (** Fixed cost of creating one diff. *)
  diff_create_per_word : float;  (** Per page word scanned during diffing. *)
  diff_apply_base : float;  (** Fixed cost of applying one diff. *)
  diff_apply_per_word : float;  (** Per modified word applied. *)
  page_fault : float;  (** Taking a page fault (trap + handler entry). *)
  page_invalidate : float;  (** Invalidating one page mapping. *)
  page_protect : float;  (** Changing one page's protection. *)
  mem_access : float;  (** Fast-path shared-memory access (no fault). *)
  lock_service : float;  (** Lock manager/holder request handling. *)
  barrier_service : float;  (** Barrier manager per-arrival handling. *)
  write_notice_handle : float;  (** Processing one received write notice. *)
  coproc_dispatch : float;
      (** Co-processor dispatch-loop overhead per serviced request. *)
}

(** Paragon values (the paper's Table 3). *)
val paragon : t

(** Alias for {!paragon}. *)
val default : t

(** A low-latency network profile (modern NIC-style: cheap messages and
    interrupts) used by the §4.8 discussion experiments. *)
val low_latency : t

val pp : Format.formatter -> t -> unit
