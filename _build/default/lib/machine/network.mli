(** 2-D wormhole-routed mesh network cost model.

    Nodes are laid out row-major on a [width x height] mesh, the smallest
    near-square mesh holding [nprocs] nodes (the Paragon arrangement). A
    message costs one software latency, a tiny per-hop wire term and a
    per-byte payload term; wormhole routing makes the hop term nearly
    negligible, matching the paper's flat latency numbers. *)

type t

val create : costs:Costs.t -> nprocs:int -> t

val nprocs : t -> int

val costs : t -> Costs.t

(** Manhattan distance between two nodes on the mesh. *)
val hops : t -> src:int -> dst:int -> int

(** [transfer_time t ~src ~dst ~bytes] is the one-way delivery time of a
    message with [bytes] of payload. [src = dst] models a loopback message
    with zero cost. *)
val transfer_time : t -> src:int -> dst:int -> bytes:int -> float
