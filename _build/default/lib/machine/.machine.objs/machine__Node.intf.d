lib/machine/node.mli:
