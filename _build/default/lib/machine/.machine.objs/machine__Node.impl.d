lib/machine/node.ml: Float
