lib/machine/network.ml: Costs
