lib/machine/network.mli: Costs
