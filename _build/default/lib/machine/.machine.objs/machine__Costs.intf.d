lib/machine/costs.mli: Format
