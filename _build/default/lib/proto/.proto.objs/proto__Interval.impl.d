lib/proto/interval.ml: Format List Vclock
