lib/proto/interval.mli: Format Vclock
