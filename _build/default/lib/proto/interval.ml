type t = { node : int; index : int; vt : Vclock.t option; pages : int list }

let make ~node ~index ~vt ~pages = { node; index; vt; pages }

let size_bytes t =
  let vt_bytes = match t.vt with Some vt -> Vclock.size_bytes vt | None -> 0 in
  8 + (4 * List.length t.pages) + vt_bytes

let vt_exn t =
  match t.vt with
  | Some vt -> vt
  | None -> invalid_arg "Interval.causally_before: interval lacks a timestamp"

let causally_before a b =
  Vclock.leq (vt_exn a) (vt_exn b) && not (Vclock.equal (vt_exn a) (vt_exn b))

let pp ppf t =
  Format.fprintf ppf "@[<h>iv(%d:%d pages=[%a])@]" t.node t.index
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    t.pages
