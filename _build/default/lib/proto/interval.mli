(** Interval records (the carrier of write notices).

    An interval is the span of a processor's execution between two
    consecutive synchronization events. Its record names the pages the
    processor wrote during the span; a "write notice" for page [p] is the
    pair of an interval record and [p]. In homeless protocols the record
    carries the interval's full vector timestamp (needed to causally order
    diffs at fault time); home-based protocols omit it, which is one source
    of their memory and traffic savings (paper §4.6–4.7). *)

type t = {
  node : int;  (** Creating processor. *)
  index : int;  (** Per-processor interval index, from 0. *)
  vt : Vclock.t option;  (** Timestamp; [Some] in homeless protocols. *)
  pages : int list;  (** Pages written during the interval. *)
}

val make : node:int -> index:int -> vt:Vclock.t option -> pages:int list -> t

(** In-memory / on-the-wire footprint: 8-byte header, 4 bytes per page id,
    4 bytes per vector-timestamp entry when present. *)
val size_bytes : t -> int

(** [causally_before a b] holds when [a] is ordered before [b] by their
    vector timestamps; both must carry timestamps.
    @raise Invalid_argument if either lacks a timestamp. *)
val causally_before : t -> t -> bool

val pp : Format.formatter -> t -> unit
