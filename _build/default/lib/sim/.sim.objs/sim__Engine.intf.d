lib/sim/engine.mli:
