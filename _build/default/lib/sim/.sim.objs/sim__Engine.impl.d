lib/sim/engine.ml: Float Heap Printf
