lib/sim/rng.mli:
