lib/sim/heap.mli:
