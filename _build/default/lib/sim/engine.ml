type t = {
  queue : (unit -> unit) Heap.t;
  mutable now : float;
  mutable executed : int;
}

(* Tolerance for float rounding when protocol code computes "now + cost" and
   the addition rounds just below the current time. *)
let epsilon = 1e-9

let create () = { queue = Heap.create (); now = 0.; executed = 0 }

let now t = t.now

let schedule t ~at f =
  if at < t.now -. epsilon then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.9f is before now=%.9f" at t.now);
  Heap.push t.queue ~key:(Float.max at t.now) f

let step t =
  if Heap.is_empty t.queue then false
  else begin
    let time, event = Heap.pop_min t.queue in
    t.now <- time;
    t.executed <- t.executed + 1;
    event ();
    true
  end

let run t =
  while step t do
    ()
  done;
  t.now

let pending t = Heap.length t.queue

let executed t = t.executed
