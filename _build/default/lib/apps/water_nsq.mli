(** Water-Nsquared: O(n²) molecular dynamics with a cutoff radius
    (Splash-2 "Water-Nsquared", simplified potentials, same sharing
    structure: contiguous molecule partitions, half-shell pairwise forces,
    per-partition locks to merge force contributions — the migratory
    multiple-writer pattern of the paper's §4.6). *)

type params = {
  molecules : int;
  steps : int;
  cutoff : float;  (** Distance cutoff as a fraction of the box size. *)
  flop_us : float;
  seed : int;
}

val default : params

val name : string

(** Deterministic initial position/velocity components (molecule, axis). *)
val init_pos : params -> int -> int -> float

val init_vel : params -> int -> int -> float

(** Pair force between two positions; [None] beyond the cutoff. *)
val pair_force :
  params -> float -> float -> float -> float -> float -> float -> (float * float * float) option

(** Half-shell neighbour count of molecule [i] (every unordered pair is
    enumerated exactly once). *)
val half_shell : int -> int -> int

(** Sequential reference: final (positions, velocities). *)
val reference : params -> float array * float array

val body : ?verify:bool -> params -> Svm.Api.ctx -> unit
