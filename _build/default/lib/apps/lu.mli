(** Blocked dense LU factorization without pivoting (Splash-2 "LU",
    contiguous-blocks version).

    The matrix is stored block-major so a 32x32 block fills exactly one
    8 KB page; blocks are assigned to processors on a 2-D scatter grid and
    (by default) homed at their owner — the placement the paper's §4.4
    exploits: with one writer per block, home-based protocols create no
    diffs at all. *)

type params = {
  n : int;  (** Matrix dimension; a multiple of [block]. *)
  block : int;  (** Block dimension. *)
  flop_us : float;  (** Simulated cost of one floating-point operation. *)
  seed : int;
  owner_homes : bool;
      (** Home each block's pages at its owner; [false] falls back to the
          configured placement policy (used by the placement ablation). *)
}

val default : params

val name : string

(** Owner of block (bi, bj) on the 2-D scatter grid. *)
val owner : nprocs:int -> int -> int -> int

(** Deterministic diagonally-dominant initial matrix, block-major. *)
val init_matrix : params -> float array

(** Word offset of block (bi, bj); [nb] = blocks per dimension. *)
val block_offset : params -> int -> int -> int -> int

(** Sequential reference: the same blocked algorithm on a plain array
    (bit-identical rounding to the parallel run). *)
val reference : params -> float array

(** The SPMD process body. *)
val body : ?verify:bool -> params -> Svm.Api.ctx -> unit
