(** Red-black successive over-relaxation (the TreadMarks SOR kernel).

    Row bands per processor, homed at their owner; communication is only
    across band boundaries, synchronized by barriers — the paper's extreme
    coarse-grained, single-writer case. *)

type params = {
  rows : int;
  cols : int;
  iters : int;
  zero_interior : bool;
      (** The paper's §4.8 experiment: a zero interior produces no diffs
          for many iterations, the workload most favourable to LRC. *)
  flop_us : float;
  seed : int;
}

val default : params

val name : string

(** Initial value of cell (i, j) (random, or the zero-interior pattern). *)
val init_value : params -> int -> int -> float

(** Sequential reference (bit-identical to the parallel run: colors have no
    intra-phase dependencies). *)
val reference : params -> float array

val body : ?verify:bool -> params -> Svm.Api.ctx -> unit
