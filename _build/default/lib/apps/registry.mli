(** Application registry: the paper's five benchmarks (plus the §4.8 SOR
    variant) at three problem scales. *)

(** [Test] keeps unit tests fast; [Bench] is the default for table
    generation; [Full] runs closer to the paper's
    compute-to-communication ratios (longer wall-clock). *)
type scale = Test | Bench | Full

type t = {
  name : string;
  body : verify:bool -> Svm.Api.ctx -> unit;
      (** The SPMD process body; with [~verify:true] process 0 checks the
          final shared memory against the sequential reference. *)
  description : string;  (** Problem-size summary for Table 1. *)
}

val lu : scale -> t

val sor : scale -> t

(** SOR with a zero interior: the paper's §4.8 LRC-favourable ablation. *)
val sor_zero : scale -> t

val water_nsq : scale -> t

val water_spatial : scale -> t

val raytrace : scale -> t

(** The paper's five applications (its Table 1), in its order. *)
val all : scale -> t list

(** Look up by CLI name; see {!names}. *)
val find : string -> scale -> t option

val names : string list
