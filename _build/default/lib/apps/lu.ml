(* Blocked dense LU factorization without pivoting (Splash-2 "LU",
   contiguous-blocks version).

   The matrix is stored block-major: block (bi, bj) of size B x B occupies a
   contiguous range, so a 32 x 32 block fills exactly one 8 KB page and the
   sharing is coarse-grained. Blocks are assigned to processors on a 2-D
   scatter grid; each block's pages are homed at its owner (the "intelligent
   home choice" of paper §4.4: with one writer per block, the home-based
   protocols create no diffs at all). *)

type params = {
  n : int;  (* matrix dimension; multiple of block *)
  block : int;  (* block dimension *)
  flop_us : float;  (* simulated cost of one floating-point operation *)
  seed : int;
  owner_homes : bool;
      (* home each block's pages at its owner (the paper's "intelligent"
         placement, 4.4); false falls back to the configured policy *)
}

let default = { n = 256; block = 32; flop_us = 0.03; seed = 7; owner_homes = true }

let name = "LU"

(* 2-D scatter decomposition: the processor grid is pr x pc. *)
let proc_grid nprocs =
  let rec largest d = if nprocs mod d = 0 then d else largest (d - 1) in
  let pr = largest (int_of_float (sqrt (float_of_int nprocs))) in
  (pr, nprocs / pr)

let owner ~nprocs bi bj =
  let pr, pc = proc_grid nprocs in
  ((bi mod pr) * pc) + (bj mod pc)

(* ------------------------------------------------------------------ *)
(* Block kernels, shared by the SVM run and the sequential reference.
   All operate on row-major B x B float arrays. *)

let factor_diag b a =
  for k = 0 to b - 1 do
    let pivot = a.((k * b) + k) in
    for i = k + 1 to b - 1 do
      a.((i * b) + k) <- a.((i * b) + k) /. pivot;
      let lik = a.((i * b) + k) in
      for j = k + 1 to b - 1 do
        a.((i * b) + j) <- a.((i * b) + j) -. (lik *. a.((k * b) + j))
      done
    done
  done

(* akj := L(diag)^-1 akj, L unit lower triangular. *)
let solve_row b diag akj =
  for t = 0 to b - 1 do
    for r = t + 1 to b - 1 do
      let lrt = diag.((r * b) + t) in
      for c = 0 to b - 1 do
        akj.((r * b) + c) <- akj.((r * b) + c) -. (lrt *. akj.((t * b) + c))
      done
    done
  done

(* aik := aik U(diag)^-1. *)
let solve_col b diag aik =
  for t = 0 to b - 1 do
    let utt = diag.((t * b) + t) in
    for r = 0 to b - 1 do
      aik.((r * b) + t) <- aik.((r * b) + t) /. utt
    done;
    for c = t + 1 to b - 1 do
      let utc = diag.((t * b) + c) in
      for r = 0 to b - 1 do
        aik.((r * b) + c) <- aik.((r * b) + c) -. (aik.((r * b) + t) *. utc)
      done
    done
  done

(* c := c - a * b' *)
let matmul_sub b a b' c =
  for i = 0 to b - 1 do
    for k = 0 to b - 1 do
      let aik = a.((i * b) + k) in
      for j = 0 to b - 1 do
        c.((i * b) + j) <- c.((i * b) + j) -. (aik *. b'.((k * b) + j))
      done
    done
  done

(* Initial matrix, diagonally dominant so factorization is stable without
   pivoting. Indexed block-major like the shared allocation. *)
let init_matrix p =
  let nb = p.n / p.block in
  let data = Array.init (p.n * p.n) (fun i -> App_util.det_float ~seed:p.seed i -. 0.5) in
  (* strengthen the diagonal *)
  for bi = 0 to nb - 1 do
    let base = ((bi * nb) + bi) * p.block * p.block in
    for k = 0 to p.block - 1 do
      data.(base + (k * p.block) + k) <- data.(base + (k * p.block) + k) +. float_of_int p.n
    done
  done;
  data

let block_offset p nb bi bj = ((bi * nb) + bj) * p.block * p.block

(* Sequential reference: same blocked algorithm on a plain array, hence
   bit-identical rounding. *)
let reference p =
  let nb = p.n / p.block in
  let data = init_matrix p in
  let sub p' bi bj = Array.sub data (block_offset p' nb bi bj) (p'.block * p'.block) in
  let put p' bi bj blk = Array.blit blk 0 data (block_offset p' nb bi bj) (p'.block * p'.block) in
  for k = 0 to nb - 1 do
    let diag = sub p k k in
    factor_diag p.block diag;
    put p k k diag;
    for j = k + 1 to nb - 1 do
      let akj = sub p k j in
      solve_row p.block diag akj;
      put p k j akj
    done;
    for i = k + 1 to nb - 1 do
      let aik = sub p i k in
      solve_col p.block diag aik;
      put p i k aik
    done;
    for i = k + 1 to nb - 1 do
      let aik = sub p i k in
      for j = k + 1 to nb - 1 do
        let akj = sub p k j in
        let c = sub p i j in
        matmul_sub p.block aik akj c;
        put p i j c
      done
    done
  done;
  data

(* ------------------------------------------------------------------ *)

let flops_factor b = 2. /. 3. *. float_of_int (b * b * b)

let flops_solve b = float_of_int (b * b * b)

let flops_matmul b = 2. *. float_of_int (b * b * b)

let body ?(verify = true) p ctx =
  if p.n mod p.block <> 0 then invalid_arg "Lu.body: block must divide n";
  let nb = p.n / p.block in
  let bwords = p.block * p.block in
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let reference = lazy (reference p) in
  if me = 0 then begin
    let pages_per_block = max 1 (bwords / Svm.Api.page_words ctx) in
    let home page =
      let blk = page / pages_per_block in
      owner ~nprocs:np (blk / nb) (blk mod nb)
    in
    let a =
      if p.owner_homes then Svm.Api.malloc ctx ~name:"lu.a" ~home (p.n * p.n)
      else Svm.Api.malloc ctx ~name:"lu.a" (p.n * p.n)
    in
    let init = init_matrix p in
    Array.iteri (fun i v -> Svm.Api.write ctx (a + i) v) init
  end;
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let a = Svm.Api.root ctx "lu.a" in
  let addr bi bj = a + block_offset p nb bi bj in
  let mine bi bj = owner ~nprocs:np bi bj = me in
  let buf_diag = Array.make bwords 0. in
  let buf_row = Array.make bwords 0. in
  let buf_col = Array.make bwords 0. in
  let buf_c = Array.make bwords 0. in
  for k = 0 to nb - 1 do
    if mine k k then begin
      App_util.read_block ctx ~addr:(addr k k) ~len:bwords buf_diag;
      factor_diag p.block buf_diag;
      Svm.Api.compute ctx (flops_factor p.block *. p.flop_us);
      App_util.write_block ctx ~addr:(addr k k) ~len:bwords buf_diag
    end;
    Svm.Api.barrier ctx;
    let have_perimeter =
      (* perimeter owners pull the diagonal block once *)
      List.exists
        (fun x -> x)
        (List.init (nb - k - 1) (fun d -> mine k (k + 1 + d) || mine (k + 1 + d) k))
    in
    if have_perimeter then App_util.read_block ctx ~addr:(addr k k) ~len:bwords buf_diag;
    for j = k + 1 to nb - 1 do
      if mine k j then begin
        App_util.read_block ctx ~addr:(addr k j) ~len:bwords buf_row;
        solve_row p.block buf_diag buf_row;
        Svm.Api.compute ctx (flops_solve p.block *. p.flop_us);
        App_util.write_block ctx ~addr:(addr k j) ~len:bwords buf_row
      end
    done;
    for i = k + 1 to nb - 1 do
      if mine i k then begin
        App_util.read_block ctx ~addr:(addr i k) ~len:bwords buf_col;
        solve_col p.block buf_diag buf_col;
        Svm.Api.compute ctx (flops_solve p.block *. p.flop_us);
        App_util.write_block ctx ~addr:(addr i k) ~len:bwords buf_col
      end
    done;
    Svm.Api.barrier ctx;
    for i = k + 1 to nb - 1 do
      (* pull A(i,k) once per block row we own something in *)
      let row_needed =
        List.exists (fun x -> x) (List.init (nb - k - 1) (fun d -> mine i (k + 1 + d)))
      in
      if row_needed then begin
        App_util.read_block ctx ~addr:(addr i k) ~len:bwords buf_col;
        for j = k + 1 to nb - 1 do
          if mine i j then begin
            App_util.read_block ctx ~addr:(addr k j) ~len:bwords buf_row;
            App_util.read_block ctx ~addr:(addr i j) ~len:bwords buf_c;
            matmul_sub p.block buf_col buf_row buf_c;
            Svm.Api.compute ctx (flops_matmul p.block *. p.flop_us);
            App_util.write_block ctx ~addr:(addr i j) ~len:bwords buf_c
          end
        done
      end
    done;
    Svm.Api.barrier ctx
  done;
  if verify && me = 0 then begin
    let expected = Lazy.force reference in
    for i = 0 to (p.n * p.n) - 1 do
      App_util.check_close ~what:"lu.a" ~tol:1e-9 ~index:i expected.(i)
        (Svm.Api.read ctx (a + i))
    done
  end;
  Svm.Api.barrier ctx
