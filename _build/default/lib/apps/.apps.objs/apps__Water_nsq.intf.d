lib/apps/water_nsq.mli: Svm
