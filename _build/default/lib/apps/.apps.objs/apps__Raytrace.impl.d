lib/apps/raytrace.ml: App_util Array Float Lazy Svm
