lib/apps/water_spatial.ml: App_util Array Float Lazy List Svm
