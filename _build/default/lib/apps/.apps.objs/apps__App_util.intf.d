lib/apps/app_util.mli: Format Svm
