lib/apps/sor.mli: Svm
