lib/apps/raytrace.mli: Svm
