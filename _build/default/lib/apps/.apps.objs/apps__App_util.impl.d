lib/apps/app_util.ml: Array Float Format Sim Svm
