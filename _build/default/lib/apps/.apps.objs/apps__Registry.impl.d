lib/apps/registry.ml: List Lu Printf Raytrace Sor String Svm Water_nsq Water_spatial
