lib/apps/registry.mli: Svm
