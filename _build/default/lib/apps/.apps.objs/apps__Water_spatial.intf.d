lib/apps/water_spatial.mli: Svm
