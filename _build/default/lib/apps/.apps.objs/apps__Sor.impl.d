lib/apps/sor.ml: App_util Array Lazy Svm
