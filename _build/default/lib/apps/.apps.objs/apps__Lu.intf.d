lib/apps/lu.mli: Svm
