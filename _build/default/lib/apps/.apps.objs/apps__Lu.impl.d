lib/apps/lu.ml: App_util Array Lazy List Svm
