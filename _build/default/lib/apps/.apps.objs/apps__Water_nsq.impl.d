lib/apps/water_nsq.ml: App_util Array Lazy Svm
