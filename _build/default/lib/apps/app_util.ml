(* Shared helpers for the benchmark applications. *)

exception Verification_failed of string

let failf fmt = Format.kasprintf (fun s -> raise (Verification_failed s)) fmt

(* Relative-error comparison; reductions may be reassociated across
   protocols and node counts, so exact equality only holds for integer and
   single-writer data. *)
let close ?(tol = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tol *. scale

let check_close ~what ?(tol = 1e-9) ~index expected actual =
  if not (close ~tol expected actual) then
    failf "%s[%d]: expected %.12g, got %.12g" what index expected actual

(* Deterministic pseudo-random doubles in [0, 1), identical for the
   simulated app and its sequential reference. *)
let det_float ~seed i =
  let rng = Sim.Rng.create ~seed:(seed + (i * 2654435761)) in
  Sim.Rng.float rng 1.0

(* Partition [0, n) into [nparts] contiguous chunks; returns (start, stop)
   of chunk [part], stop exclusive. Remainders spread over the first
   chunks. *)
let chunk ~n ~nparts part =
  let base = n / nparts and extra = n mod nparts in
  let start = (part * base) + min part extra in
  let len = base + if part < extra then 1 else 0 in
  (start, start + len)

(* Owner of index [i] under the same partitioning. *)
let owner_of ~n ~nparts i =
  let rec find part =
    let lo, hi = chunk ~n ~nparts part in
    if i >= lo && i < hi then part else find (part + 1)
  in
  if i < 0 || i >= n then invalid_arg "owner_of" else find 0

(* Read a row of [len] shared words into a local buffer (models working in
   registers/cache; the protocol only sees the page accesses). *)
let read_block ctx ~addr ~len buf =
  for i = 0 to len - 1 do
    buf.(i) <- Svm.Api.read ctx (addr + i)
  done

let write_block ctx ~addr ~len buf =
  for i = 0 to len - 1 do
    Svm.Api.write ctx (addr + i) buf.(i)
  done
