(* Red-black successive over-relaxation (the TreadMarks SOR kernel).

   The grid is partitioned into bands of rows; communication happens only
   across band boundaries, synchronized by barriers — the paper's extreme
   coarse-grained, single-writer case. [zero_interior] reproduces the §4.8
   experiment: all interior elements start at zero so no diffs are produced
   for many iterations, the workload most favourable to LRC. *)

type params = {
  rows : int;
  cols : int;
  iters : int;
  zero_interior : bool;
  flop_us : float;
  seed : int;
}

let default =
  { rows = 256; cols = 256; iters = 10; zero_interior = false; flop_us = 0.03; seed = 11 }

let name = "SOR"

let init_value p i j =
  let idx = (i * p.cols) + j in
  let boundary = i = 0 || j = 0 || i = p.rows - 1 || j = p.cols - 1 in
  if p.zero_interior then if boundary then 1.0 else 0.0
  else App_util.det_float ~seed:p.seed idx

(* One red-black iteration on a plain array (reference and kernel share the
   update rule). Colors have no intra-phase dependencies, so the parallel
   execution is bit-identical to this sequential one. *)
let update_cell a cols i j =
  let idx = (i * cols) + j in
  a.(idx) <- 0.25 *. (a.(idx - cols) +. a.(idx + cols) +. a.(idx - 1) +. a.(idx + 1))

let reference p =
  let a = Array.init (p.rows * p.cols) (fun idx -> init_value p (idx / p.cols) (idx mod p.cols)) in
  for _ = 1 to p.iters do
    for color = 0 to 1 do
      for i = 1 to p.rows - 2 do
        for j = 1 to p.cols - 2 do
          if (i + j) land 1 = color then update_cell a p.cols i j
        done
      done
    done
  done;
  a

let flops_per_cell = 4.

let body ?(verify = true) p ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let reference = lazy (reference p) in
  if me = 0 then begin
    let rows_per_page = max 1 (Svm.Api.page_words ctx / p.cols) in
    let home page = App_util.owner_of ~n:p.rows ~nparts:np (min (p.rows - 1) (page * rows_per_page)) in
    let a = Svm.Api.malloc ctx ~name:"sor.a" ~home (p.rows * p.cols) in
    for i = 0 to p.rows - 1 do
      for j = 0 to p.cols - 1 do
        Svm.Api.write ctx (a + (i * p.cols) + j) (init_value p i j)
      done
    done
  end;
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let a = Svm.Api.root ctx "sor.a" in
  let lo, hi = App_util.chunk ~n:p.rows ~nparts:np me in
  let lo = max lo 1 and hi = min hi (p.rows - 1) in
  for _ = 1 to p.iters do
    for color = 0 to 1 do
      for i = lo to hi - 1 do
        let row = a + (i * p.cols) in
        for j = 1 to p.cols - 2 do
          if (i + j) land 1 = color then begin
            let v =
              0.25
              *. (Svm.Api.read ctx (row + j - p.cols)
                 +. Svm.Api.read ctx (row + j + p.cols)
                 +. Svm.Api.read ctx (row + j - 1)
                 +. Svm.Api.read ctx (row + j + 1))
            in
            Svm.Api.write ctx (row + j) v;
            Svm.Api.compute ctx (flops_per_cell *. p.flop_us)
          end
        done
      done;
      Svm.Api.barrier ctx
    done
  done;
  if verify && me = 0 then begin
    let expected = Lazy.force reference in
    for idx = 0 to (p.rows * p.cols) - 1 do
      App_util.check_close ~what:"sor.a" ~tol:1e-12 ~index:idx expected.(idx)
        (Svm.Api.read ctx (a + idx))
    done
  end;
  Svm.Api.barrier ctx
