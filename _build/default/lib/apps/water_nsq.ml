(* Water-Nsquared: O(n^2) molecular dynamics with a cutoff radius
   (Splash-2 "Water-Nsquared", simplified potentials, same sharing
   structure).

   Molecules are partitioned contiguously. Each step predicts positions,
   computes pairwise forces over each molecule's following n/2 neighbours
   (the half-shell), and corrects velocities. Force contributions to other
   processors' molecules are accumulated locally and merged under
   per-partition locks — the migratory, multiple-writer pattern whose
   aggregated diffs exceed a page and favour home-based protocols
   (paper §4.6). *)

type params = {
  molecules : int;
  steps : int;
  cutoff : float;  (* squared-distance cutoff as a fraction of box size *)
  flop_us : float;
  seed : int;
}

let default = { molecules = 288; steps = 3; cutoff = 0.5; flop_us = 0.05; seed = 13 }

let name = "Water-Nsquared"

let dt = 0.002

let flops_per_pair = 30.

(* Deterministic initial state: positions in a unit box, small velocities. *)
let init_pos p i d = App_util.det_float ~seed:p.seed ((i * 3) + d)

let init_vel p i d = 0.05 *. (App_util.det_float ~seed:(p.seed + 1) ((i * 3) + d) -. 0.5)

(* Pair force: soft inverse-square with cutoff; purely a deterministic
   function of the two positions. *)
let pair_force p xi yi zi xj yj zj =
  let dx = xi -. xj and dy = yi -. yj and dz = zi -. zj in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  if r2 > p.cutoff *. p.cutoff then None
  else
    let inv = 1.0 /. ((r2 +. 0.05) *. sqrt (r2 +. 0.05)) in
    Some (dx *. inv, dy *. inv, dz *. inv)

(* Half-shell neighbour count for molecule [i]: pairs (i, i+d mod n) for
   d = 1..n/2, with the d = n/2 pair counted from one side only when n is
   even. *)
let half_shell n i =
  let h = n / 2 in
  if n land 1 = 1 then h else if i < h then h else h - 1

(* One step on plain arrays: the sequential reference (and documentation of
   the physics). *)
let reference_step p pos vel =
  let n = p.molecules in
  let force = Array.make (3 * n) 0. in
  for i = 0 to n - 1 do
    for d = 0 to 2 do
      pos.((3 * i) + d) <- pos.((3 * i) + d) +. (dt *. vel.((3 * i) + d))
    done
  done;
  for i = 0 to n - 1 do
    for d = 1 to half_shell n i do
      let j = (i + d) mod n in
      match
        pair_force p pos.(3 * i) pos.((3 * i) + 1) pos.((3 * i) + 2) pos.(3 * j)
          pos.((3 * j) + 1)
          pos.((3 * j) + 2)
      with
      | None -> ()
      | Some (fx, fy, fz) ->
          force.(3 * i) <- force.(3 * i) +. fx;
          force.((3 * i) + 1) <- force.((3 * i) + 1) +. fy;
          force.((3 * i) + 2) <- force.((3 * i) + 2) +. fz;
          force.(3 * j) <- force.(3 * j) -. fx;
          force.((3 * j) + 1) <- force.((3 * j) + 1) -. fy;
          force.((3 * j) + 2) <- force.((3 * j) + 2) -. fz
    done
  done;
  for i = 0 to (3 * n) - 1 do
    vel.(i) <- vel.(i) +. (dt *. force.(i))
  done

let reference p =
  let n = p.molecules in
  let pos = Array.init (3 * n) (fun idx -> init_pos p (idx / 3) (idx mod 3)) in
  let vel = Array.init (3 * n) (fun idx -> init_vel p (idx / 3) (idx mod 3)) in
  for _ = 1 to p.steps do
    reference_step p pos vel
  done;
  (pos, vel)

let body ?(verify = true) p ctx =
  let n = p.molecules in
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let reference = lazy (reference p) in
  if me = 0 then begin
    let words = 3 * n in
    (* No placement hints: every page of these arrays is written by many
       nodes, so round-robin homes (the configured default policy) spread
       the diff flushes instead of hot-spotting one owner. *)
    ignore (Svm.Api.malloc ctx ~name:"wn.pos" words);
    ignore (Svm.Api.malloc ctx ~name:"wn.vel" words);
    ignore (Svm.Api.malloc ctx ~name:"wn.force" words);
    let pos = Svm.Api.root ctx "wn.pos" and vel = Svm.Api.root ctx "wn.vel" in
    for i = 0 to n - 1 do
      for d = 0 to 2 do
        Svm.Api.write ctx (pos + (3 * i) + d) (init_pos p i d);
        Svm.Api.write ctx (vel + (3 * i) + d) (init_vel p i d)
      done
    done
  end;
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let pos = Svm.Api.root ctx "wn.pos" in
  let vel = Svm.Api.root ctx "wn.vel" in
  let force = Svm.Api.root ctx "wn.force" in
  let lo, hi = App_util.chunk ~n ~nparts:np me in
  let local_pos = Array.make (3 * n) 0. in
  let acc = Array.make (3 * n) 0. in
  for _ = 1 to p.steps do
    (* Predict positions and clear forces for own molecules. *)
    for i = lo to hi - 1 do
      for d = 0 to 2 do
        let a = (3 * i) + d in
        Svm.Api.write ctx (pos + a) (Svm.Api.read ctx (pos + a) +. (dt *. Svm.Api.read ctx (vel + a)));
        Svm.Api.write ctx (force + a) 0.
      done
    done;
    Svm.Api.barrier ctx;
    (* Read all positions once (coarse-grained reads, as in the original),
       then accumulate pair forces locally. *)
    App_util.read_block ctx ~addr:pos ~len:(3 * n) local_pos;
    Array.fill acc 0 (3 * n) 0.;
    for i = lo to hi - 1 do
      for d = 1 to half_shell n i do
        let j = (i + d) mod n in
        (match
           pair_force p local_pos.(3 * i)
             local_pos.((3 * i) + 1)
             local_pos.((3 * i) + 2)
             local_pos.(3 * j)
             local_pos.((3 * j) + 1)
             local_pos.((3 * j) + 2)
         with
        | None -> ()
        | Some (fx, fy, fz) ->
            acc.(3 * i) <- acc.(3 * i) +. fx;
            acc.((3 * i) + 1) <- acc.((3 * i) + 1) +. fy;
            acc.((3 * i) + 2) <- acc.((3 * i) + 2) +. fz;
            acc.(3 * j) <- acc.(3 * j) -. fx;
            acc.((3 * j) + 1) <- acc.((3 * j) + 1) -. fy;
            acc.((3 * j) + 2) <- acc.((3 * j) + 2) -. fz);
        Svm.Api.compute ctx (flops_per_pair *. p.flop_us)
      done
    done;
    (* Merge accumulated contributions into each owner's partition under its
       lock (per-partition locks, paper §4.1). *)
    for q = 0 to np - 1 do
      let target = (me + q) mod np in
      let qlo, qhi = App_util.chunk ~n ~nparts:np target in
      let touched = ref false in
      (try
         for a = 3 * qlo to (3 * qhi) - 1 do
           if acc.(a) <> 0. then raise Exit
         done
       with Exit -> touched := true);
      if !touched then begin
        Svm.Api.lock ctx target;
        for a = 3 * qlo to (3 * qhi) - 1 do
          if acc.(a) <> 0. then
            Svm.Api.write ctx (force + a) (Svm.Api.read ctx (force + a) +. acc.(a))
        done;
        Svm.Api.unlock ctx target
      end
    done;
    Svm.Api.barrier ctx;
    (* Correct velocities for own molecules. *)
    for a = 3 * lo to (3 * hi) - 1 do
      Svm.Api.write ctx (vel + a) (Svm.Api.read ctx (vel + a) +. (dt *. Svm.Api.read ctx (force + a)))
    done;
    Svm.Api.barrier ctx
  done;
  if verify && me = 0 then begin
    let exp_pos, exp_vel = Lazy.force reference in
    for a = 0 to (3 * n) - 1 do
      App_util.check_close ~what:"wn.pos" ~tol:1e-6 ~index:a exp_pos.(a)
        (Svm.Api.read ctx (pos + a));
      App_util.check_close ~what:"wn.vel" ~tol:1e-6 ~index:a exp_vel.(a)
        (Svm.Api.read ctx (vel + a))
    done
  end;
  Svm.Api.barrier ctx
