(** Shared helpers for the benchmark applications. *)

exception Verification_failed of string

(** Raise {!Verification_failed} with a formatted message. *)
val failf : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Relative-error comparison (reductions may be reassociated across
    protocols and node counts). *)
val close : ?tol:float -> float -> float -> bool

(** Assert two values are {!close}, naming the array and index otherwise. *)
val check_close : what:string -> ?tol:float -> index:int -> float -> float -> unit

(** Deterministic pseudo-random double in [0, 1), identical for a simulated
    application and its sequential reference. *)
val det_float : seed:int -> int -> float

(** [chunk ~n ~nparts part] is the [(start, stop)] (stop exclusive) of the
    [part]-th contiguous chunk of [0, n); remainders spread over the first
    chunks. *)
val chunk : n:int -> nparts:int -> int -> int * int

(** Owner of index [i] under the same partitioning. *)
val owner_of : n:int -> nparts:int -> int -> int

(** Read [len] shared words starting at [addr] into [buf] (models working
    on registers/cache; the protocol sees only the page accesses). *)
val read_block : Svm.Api.ctx -> addr:int -> len:int -> float array -> unit

val write_block : Svm.Api.ctx -> addr:int -> len:int -> float array -> unit
