(** Raytrace: a sphere-scene renderer with distributed task queues and task
    stealing (Splash-2 "Raytrace", simplified shading, same sharing
    structure: read-only scene, image tiles as tasks in per-processor
    queues under locks, fine-grained false-shared pixel writes — the
    paper's hardest case for SVM). *)

type params = {
  width : int;
  height : int;
  tile : int;  (** Tile side; must divide [width] and [height]. *)
  spheres : int;
  flop_us : float;
  seed : int;
}

val default : params

val name : string

type sphere = { cx : float; cy : float; cz : float; r : float; albedo : float }

(** Deterministic scene. *)
val make_scene : params -> sphere array

(** Shade one pixel: a pure function of (scene, pixel), so every processor
    computes the identical value. *)
val render_pixel : params -> sphere array -> int -> int -> float

(** Sequential reference image, row-major. *)
val reference : params -> float array

val body : ?verify:bool -> params -> Svm.Api.ctx -> unit
