(* Water-Spatial: molecular dynamics over a 3-D cell decomposition
   (Splash-2 "Water-Spatial", simplified potentials, same sharing
   structure).

   Space is a unit box divided into G^3 cells of side 1/G (= the cutoff);
   each processor owns a contiguous slab of cells together with the
   molecules currently inside them. Forces need only the 27 surrounding
   cells, so processors read their neighbours' boundary cells and write only
   their own — plus a slow migration of molecules between cells, handled
   under per-cell locks. This is the paper's irregular-but-low-communication
   application. *)

type params = {
  grid : int;  (* cells per dimension *)
  molecules : int;
  steps : int;
  flop_us : float;
  seed : int;
}

let default = { grid = 4; molecules = 256; steps = 3; flop_us = 0.05; seed = 17 }

let name = "Water-Spatial"

let dt = 0.004

let flops_per_pair = 30.

(* Cell slot layout: [count; (id, px, py, pz, vx, vy, vz) x capacity]. *)
let fields = 7

let capacity p = max 8 (4 * p.molecules / (p.grid * p.grid * p.grid))

let cell_words p = 1 + (fields * capacity p)

let ncells p = p.grid * p.grid * p.grid

let cell_of_pos p x y z =
  let g = p.grid in
  let clampi v = min (g - 1) (max 0 v) in
  let cx = clampi (int_of_float (x *. float_of_int g)) in
  let cy = clampi (int_of_float (y *. float_of_int g)) in
  let cz = clampi (int_of_float (z *. float_of_int g)) in
  (((cz * g) + cy) * g) + cx

let init_molecule p i =
  let f k = App_util.det_float ~seed:(p.seed + k) i in
  let x = f 0 and y = f 1 and z = f 2 in
  let v k = 0.03 *. (f k -. 0.5) in
  (x, y, z, v 3, v 4, v 5)

let pair_force p dx dy dz =
  let cut = 1.0 /. float_of_int p.grid in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  if r2 > cut *. cut then None
  else
    let inv = 1.0 /. ((r2 +. 0.03) *. sqrt (r2 +. 0.03)) in
    Some (dx *. inv, dy *. inv, dz *. inv)

let clamp_pos x = Float.min 0.999999 (Float.max 0.0 x)

let neighbours p c =
  let g = p.grid in
  let cx = c mod g and cy = c / g mod g and cz = c / (g * g) in
  let acc = ref [] in
  for dz = -1 to 1 do
    for dy = -1 to 1 do
      for dx = -1 to 1 do
        let nx = cx + dx and ny = cy + dy and nz = cz + dz in
        if nx >= 0 && nx < g && ny >= 0 && ny < g && nz >= 0 && nz < g then
          acc := (((nz * g) + ny) * g) + nx :: !acc
      done
    done
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Sequential reference on plain arrays (cells as growable int lists). *)

type ref_state = { rpos : float array; rvel : float array; rcells : int list array }

let reference_init p =
  let n = p.molecules in
  let rpos = Array.make (3 * n) 0. and rvel = Array.make (3 * n) 0. in
  let rcells = Array.make (ncells p) [] in
  for i = 0 to n - 1 do
    let x, y, z, vx, vy, vz = init_molecule p i in
    rpos.(3 * i) <- x;
    rpos.((3 * i) + 1) <- y;
    rpos.((3 * i) + 2) <- z;
    rvel.(3 * i) <- vx;
    rvel.((3 * i) + 1) <- vy;
    rvel.((3 * i) + 2) <- vz;
    let c = cell_of_pos p x y z in
    rcells.(c) <- rcells.(c) @ [ i ]
  done;
  { rpos; rvel; rcells }

let reference_step p st =
  let force = Array.make (Array.length st.rpos) 0. in
  Array.iteri
    (fun c members ->
      let neigh = neighbours p c in
      List.iter
        (fun i ->
          List.iter
            (fun c' ->
              List.iter
                (fun j ->
                  if j <> i then
                    match
                      pair_force p
                        (st.rpos.(3 * i) -. st.rpos.(3 * j))
                        (st.rpos.((3 * i) + 1) -. st.rpos.((3 * j) + 1))
                        (st.rpos.((3 * i) + 2) -. st.rpos.((3 * j) + 2))
                    with
                    | None -> ()
                    | Some (fx, fy, fz) ->
                        force.(3 * i) <- force.(3 * i) +. fx;
                        force.((3 * i) + 1) <- force.((3 * i) + 1) +. fy;
                        force.((3 * i) + 2) <- force.((3 * i) + 2) +. fz)
                st.rcells.(c'))
            neigh)
        members)
    st.rcells;
  Array.iteri
    (fun a f ->
      st.rvel.(a) <- st.rvel.(a) +. (dt *. f);
      st.rpos.(a) <- clamp_pos (st.rpos.(a) +. (dt *. st.rvel.(a))))
    force;
  (* migrate *)
  let moved = ref [] in
  Array.iteri
    (fun c members ->
      let stay, go =
        List.partition
          (fun i -> cell_of_pos p st.rpos.(3 * i) st.rpos.((3 * i) + 1) st.rpos.((3 * i) + 2) = c)
          members
      in
      st.rcells.(c) <- stay;
      moved := go @ !moved)
    st.rcells;
  List.iter
    (fun i ->
      let c = cell_of_pos p st.rpos.(3 * i) st.rpos.((3 * i) + 1) st.rpos.((3 * i) + 2) in
      st.rcells.(c) <- st.rcells.(c) @ [ i ])
    !moved

let reference p =
  let st = reference_init p in
  for _ = 1 to p.steps do
    reference_step p st
  done;
  (st.rpos, st.rvel)

(* ------------------------------------------------------------------ *)

let cell_lock_base = 1000

let body ?(verify = true) p ctx =
  let me = Svm.Api.pid ctx and np = Svm.Api.nprocs ctx in
  let nc = ncells p in
  let cap = capacity p in
  let cw = cell_words p in
  let reference = lazy (reference p) in
  let cell_owner c = App_util.owner_of ~n:nc ~nparts:np c in
  if me = 0 then begin
    let home page = cell_owner (min (nc - 1) (page * Svm.Api.page_words ctx / cw)) in
    let cells = Svm.Api.malloc ctx ~name:"ws.cells" ~home (nc * cw) in
    (* Distribute molecules into cells. *)
    for i = 0 to p.molecules - 1 do
      let x, y, z, vx, vy, vz = init_molecule p i in
      let c = cell_of_pos p x y z in
      let base = cells + (c * cw) in
      let count = Svm.Api.read_int ctx base in
      if count >= cap then App_util.failf "ws: cell %d overflow during init" c;
      let slot = base + 1 + (fields * count) in
      Svm.Api.write_int ctx slot i;
      Svm.Api.write ctx (slot + 1) x;
      Svm.Api.write ctx (slot + 2) y;
      Svm.Api.write ctx (slot + 3) z;
      Svm.Api.write ctx (slot + 4) vx;
      Svm.Api.write ctx (slot + 5) vy;
      Svm.Api.write ctx (slot + 6) vz;
      Svm.Api.write_int ctx base (count + 1)
    done
  end;
  Svm.Api.barrier ctx;
  Svm.Api.start_timing ctx;
  let cells = Svm.Api.root ctx "ws.cells" in
  let cell_base c = cells + (c * cw) in
  let clo, chi = App_util.chunk ~n:nc ~nparts:np me in
  (* Local force store for own cells: indexed [cell - clo][slot]. *)
  let forces = Array.init (chi - clo) (fun _ -> Array.make (3 * cap) 0.) in
  for _ = 1 to p.steps do
    (* Phase 1: forces for molecules in own cells, reading neighbours. *)
    for c = clo to chi - 1 do
      let f = forces.(c - clo) in
      Array.fill f 0 (3 * cap) 0.;
      let base = cell_base c in
      let count = Svm.Api.read_int ctx base in
      for s = 0 to count - 1 do
        let slot = base + 1 + (fields * s) in
        let xi = Svm.Api.read ctx (slot + 1)
        and yi = Svm.Api.read ctx (slot + 2)
        and zi = Svm.Api.read ctx (slot + 3) in
        let id_i = Svm.Api.read_int ctx slot in
        List.iter
          (fun c' ->
            let base' = cell_base c' in
            let count' = Svm.Api.read_int ctx base' in
            for s' = 0 to count' - 1 do
              let slot' = base' + 1 + (fields * s') in
              if Svm.Api.read_int ctx slot' <> id_i then begin
                (match
                   pair_force p
                     (xi -. Svm.Api.read ctx (slot' + 1))
                     (yi -. Svm.Api.read ctx (slot' + 2))
                     (zi -. Svm.Api.read ctx (slot' + 3))
                 with
                | None -> ()
                | Some (fx, fy, fz) ->
                    f.(3 * s) <- f.(3 * s) +. fx;
                    f.((3 * s) + 1) <- f.((3 * s) + 1) +. fy;
                    f.((3 * s) + 2) <- f.((3 * s) + 2) +. fz);
                Svm.Api.compute ctx (flops_per_pair *. p.flop_us)
              end
            done)
          (neighbours p c)
      done
    done;
    Svm.Api.barrier ctx;
    (* Phase 2: integrate own molecules in place. *)
    for c = clo to chi - 1 do
      let f = forces.(c - clo) in
      let base = cell_base c in
      let count = Svm.Api.read_int ctx base in
      for s = 0 to count - 1 do
        let slot = base + 1 + (fields * s) in
        for d = 0 to 2 do
          let v = Svm.Api.read ctx (slot + 4 + d) +. (dt *. f.((3 * s) + d)) in
          Svm.Api.write ctx (slot + 4 + d) v;
          Svm.Api.write ctx (slot + 1 + d) (clamp_pos (Svm.Api.read ctx (slot + 1 + d) +. (dt *. v)))
        done
      done
    done;
    (* Phase 3a: pull emigrants out of own cells (owner-only writes). *)
    let emigrants = ref [] in
    for c = clo to chi - 1 do
      let base = cell_base c in
      let count = ref (Svm.Api.read_int ctx base) in
      let s = ref 0 in
      while !s < !count do
        let slot = base + 1 + (fields * !s) in
        let x = Svm.Api.read ctx (slot + 1)
        and y = Svm.Api.read ctx (slot + 2)
        and z = Svm.Api.read ctx (slot + 3) in
        if cell_of_pos p x y z <> c then begin
          let record = Array.init fields (fun k -> Svm.Api.read ctx (slot + k)) in
          emigrants := record :: !emigrants;
          (* swap-with-last removal *)
          decr count;
          let last = base + 1 + (fields * !count) in
          for k = 0 to fields - 1 do
            Svm.Api.write ctx (slot + k) (Svm.Api.read ctx (last + k))
          done
        end
        else incr s
      done;
      Svm.Api.write_int ctx base !count
    done;
    Svm.Api.barrier ctx;
    (* Phase 3b: append emigrants to their new cells under per-cell locks. *)
    List.iter
      (fun record ->
        let c = cell_of_pos p record.(1) record.(2) record.(3) in
        Svm.Api.lock ctx (cell_lock_base + c);
        let base = cell_base c in
        let count = Svm.Api.read_int ctx base in
        if count >= cap then App_util.failf "ws: cell %d overflow during migration" c;
        let slot = base + 1 + (fields * count) in
        for k = 0 to fields - 1 do
          Svm.Api.write ctx (slot + k) record.(k)
        done;
        Svm.Api.write_int ctx base (count + 1);
        Svm.Api.unlock ctx (cell_lock_base + c))
      !emigrants;
    Svm.Api.barrier ctx
  done;
  if verify && me = 0 then begin
    let exp_pos, exp_vel = Lazy.force reference in
    let seen = Array.make p.molecules false in
    for c = 0 to nc - 1 do
      let base = cell_base c in
      let count = Svm.Api.read_int ctx base in
      for s = 0 to count - 1 do
        let slot = base + 1 + (fields * s) in
        let i = Svm.Api.read_int ctx slot in
        if seen.(i) then App_util.failf "ws: molecule %d appears twice" i;
        seen.(i) <- true;
        for d = 0 to 2 do
          App_util.check_close ~what:"ws.pos" ~tol:1e-5 ~index:((3 * i) + d)
            exp_pos.((3 * i) + d)
            (Svm.Api.read ctx (slot + 1 + d));
          App_util.check_close ~what:"ws.vel" ~tol:1e-5 ~index:((3 * i) + d)
            exp_vel.((3 * i) + d)
            (Svm.Api.read ctx (slot + 4 + d))
        done
      done
    done;
    Array.iteri (fun i s -> if not s then App_util.failf "ws: molecule %d lost" i) seen
  end;
  Svm.Api.barrier ctx
