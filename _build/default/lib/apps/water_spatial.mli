(** Water-Spatial: molecular dynamics over a 3-D cell decomposition
    (Splash-2 "Water-Spatial", simplified potentials, same sharing
    structure: processors own contiguous cell slabs, read their neighbours'
    boundary cells, and migrate molecules between cells under per-cell
    locks — the paper's irregular low-communication application). *)

type params = {
  grid : int;  (** Cells per dimension; the cell side is the cutoff. *)
  molecules : int;
  steps : int;
  flop_us : float;
  seed : int;
}

val default : params

val name : string

(** Cell containing a position (clamped to the unit box). *)
val cell_of_pos : params -> float -> float -> float -> int

(** The (up to 27) cells adjacent to [cell], itself included. *)
val neighbours : params -> int -> int list

(** Deterministic initial state of molecule [i]:
    (x, y, z, vx, vy, vz). *)
val init_molecule : params -> int -> float * float * float * float * float * float

(** Sequential reference: final (positions, velocities) indexed by
    molecule id. *)
val reference : params -> float array * float array

val body : ?verify:bool -> params -> Svm.Api.ctx -> unit
