(** Ablation studies of design choices the paper argues about in prose,
    plus the wider protocol-family comparison. Results and interpretation
    live in EXPERIMENTS.md. *)

(** Home placement for LU under HLRC: owner-homed blocks vs the fallback
    policies (paper §4.4's "chosen intelligently"). *)
val home_placement :
  Format.formatter -> scale:Apps.Registry.scale -> node_counts:int list -> unit

(** Sensitivity of the LRC/HLRC gap to network parameters: Paragon profile
    vs a modern low-latency profile (the paper's §4.8 discussion). *)
val network_sensitivity :
  Format.formatter -> scale:Apps.Registry.scale -> node_counts:int list -> unit

(** Coherence granularity: 4/8/16 KB pages under HLRC. *)
val page_size : Format.formatter -> scale:Apps.Registry.scale -> node_counts:int list -> unit

(** Lock service on the co-processor (the paper's §4.3 suggestion). *)
val coproc_locks :
  Format.formatter -> scale:Apps.Registry.scale -> node_counts:int list -> unit

(** The protocol family of the paper's §2: eager RC vs LRC vs HLRC vs AURC
    (speedups and update traffic). *)
val aurc_comparison : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Adaptive home migration (extension) on un-hinted LU. *)
val home_migration :
  Format.formatter -> scale:Apps.Registry.scale -> node_counts:int list -> unit
