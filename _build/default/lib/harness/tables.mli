(** Text renderings of the paper's tables and figures (the per-experiment
    index in DESIGN.md maps each to its paper artifact). All print to the
    given formatter from a shared run {!Matrix.t}. *)

(** Table 1: benchmarks, problem sizes, sequential execution times. *)
val table1 : Format.formatter -> Matrix.t -> unit

(** Table 2: speedups for the four protocols at each machine size. *)
val table2 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Table 3: basic operation costs plus the derived §4.3 arithmetic
    (no simulations needed). *)
val table3 : Format.formatter -> unit

(** Table 4: average per-node operation counts, LRC vs HLRC. *)
val table4 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Table 5: communication traffic, LRC vs HLRC. *)
val table5 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Table 6: peak protocol memory vs application memory, LRC vs HLRC. *)
val table6 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Figure 3: mean per-node execution-time breakdowns. *)
val figure3 : Format.formatter -> Matrix.t -> node_counts:int list -> unit

(** Figure 4: per-processor breakdowns for one Water-Nsquared barrier epoch
    under LRC and HLRC. [epoch] selects the paper's index when available;
    otherwise the dominant epoch is used. *)
val figure4 : Format.formatter -> Matrix.t -> node_counts:int list -> epoch:int -> unit

(** §4.8: SOR with a zero interior, the most LRC-favourable workload. *)
val sor_zero : Format.formatter -> Matrix.t -> node_counts:int list -> unit
