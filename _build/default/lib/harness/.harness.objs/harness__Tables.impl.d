lib/harness/tables.ml: Apps Array Format List Machine Matrix Printf String Svm
