lib/harness/matrix.ml: Apps Array Hashtbl Printf Svm
