lib/harness/tables.mli: Format Matrix
