lib/harness/ablations.mli: Apps Format Matrix
