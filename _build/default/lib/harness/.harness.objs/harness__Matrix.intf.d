lib/harness/matrix.mli: Apps Svm
