lib/harness/ablations.ml: Apps Array Float Format List Machine Matrix String Svm
