(* Ablation studies of the design choices DESIGN.md calls out.

   These go beyond the paper's tables: each isolates one mechanism the
   paper argues about in prose — home placement (§4.4), the
   latency/interrupt sensitivity of the homeless-vs-home-based gap (§4.8
   discussion), and the page-size-induced false-sharing trade-off (§1). *)

let title ppf s = Format.fprintf ppf "@.=== %s ===@.@." s

let hline ppf n = Format.fprintf ppf "%s@." (String.make n '-')

let elapsed_of cfg body =
  let r = Svm.Runtime.run cfg (body ~verify:false) in
  (r.Svm.Runtime.r_elapsed, r)

(* --- Home placement (paper 4.4: "if homes are chosen intelligently") --- *)

let lu_params scale =
  match scale with
  | Apps.Registry.Test -> { Apps.Lu.default with n = 64; block = 16 }
  | Apps.Registry.Bench -> { Apps.Lu.default with n = 512; block = 32; flop_us = 0.7 }
  | Apps.Registry.Full -> { Apps.Lu.default with n = 1024; block = 32; flop_us = 0.7 }

let home_placement ppf ~scale ~node_counts =
  title ppf "Ablation: home placement for LU under HLRC (paper 4.4)";
  Format.fprintf ppf "%-8s %14s %14s %14s %10s@." "nodes" "owner homes(s)" "round robin(s)"
    "allocator(s)" "owner gain";
  hline ppf 68;
  List.iter
    (fun np ->
      let run ~owner_homes ~policy =
        let p = { (lu_params scale) with Apps.Lu.owner_homes } in
        let cfg = Svm.Config.make ~home_policy:policy ~nprocs:np Svm.Config.Hlrc in
        fst (elapsed_of cfg (fun ~verify ctx -> Apps.Lu.body ~verify p ctx))
      in
      let owner = run ~owner_homes:true ~policy:Svm.Config.Round_robin in
      let rr = run ~owner_homes:false ~policy:Svm.Config.Round_robin in
      let alloc = run ~owner_homes:false ~policy:Svm.Config.Allocator in
      Format.fprintf ppf "%-8d %14.3f %14.3f %14.3f %9.2fx@." np (owner /. 1e6) (rr /. 1e6)
        (alloc /. 1e6)
        (Float.min rr alloc /. owner))
    node_counts

(* --- Network parameters (paper 4.8: "fast interrupts and low latency
   messages... the performance gap between the home-based and the homeless
   protocols would probably be smaller") --- *)

let network_sensitivity ppf ~scale ~node_counts =
  title ppf "Ablation: network sensitivity of the LRC/HLRC gap (paper 4.8 discussion)";
  Format.fprintf ppf
    "Paragon profile: 50us latency, 690us interrupt. Low-latency profile: 5us, 10us.@.@.";
  Format.fprintf ppf "%-16s %5s | %21s | %21s@." "" "nodes" "Paragon LRC/HLRC" "low-lat LRC/HLRC";
  hline ppf 75;
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let gap costs =
            let run proto =
              let cfg = Svm.Config.make ~costs ~nprocs:np proto in
              fst (elapsed_of cfg app.Apps.Registry.body)
            in
            run Svm.Config.Lrc /. run Svm.Config.Hlrc
          in
          Format.fprintf ppf "%-16s %5d | %21.2f | %21.2f@." app.Apps.Registry.name np
            (gap Machine.Costs.paragon)
            (gap Machine.Costs.low_latency))
        node_counts)
    [ Apps.Registry.sor scale; Apps.Registry.raytrace scale ]

(* --- Page size (coherence granularity vs false sharing) --- *)

let page_size ppf ~scale ~node_counts =
  title ppf "Ablation: page size (coherence granularity) under HLRC";
  Format.fprintf ppf "%-16s %5s | %12s %12s %12s@." "" "nodes" "4KB (s)" "8KB (s)" "16KB (s)";
  hline ppf 70;
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let run page_words =
            let cfg = Svm.Config.make ~page_words ~nprocs:np Svm.Config.Hlrc in
            fst (elapsed_of cfg app.Apps.Registry.body) /. 1e6
          in
          Format.fprintf ppf "%-16s %5d | %12.3f %12.3f %12.3f@." app.Apps.Registry.name np
            (run 512) (run 1024) (run 2048))
        node_counts)
    [ Apps.Registry.sor scale; Apps.Registry.raytrace scale ]

(* --- Lock service placement (paper 4.3: "could be reduced to only 150us
   if this service were moved to the co-processor") --- *)

let coproc_locks ppf ~scale ~node_counts =
  title ppf "Ablation: lock service on the co-processor under OHLRC (paper 4.3 extension)";
  Format.fprintf ppf "%-16s %5s | %14s %14s %10s@." "" "nodes" "compute (s)" "coproc (s)"
    "gain";
  hline ppf 70;
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let run coproc_locks =
            let cfg = Svm.Config.make ~coproc_locks ~nprocs:np Svm.Config.Ohlrc in
            fst (elapsed_of cfg app.Apps.Registry.body) /. 1e6
          in
          let slow = run false and fast = run true in
          Format.fprintf ppf "%-16s %5d | %14.3f %14.3f %9.2fx@." app.Apps.Registry.name np
            slow fast (slow /. fast))
        node_counts)
    [ Apps.Registry.water_nsq scale; Apps.Registry.raytrace scale ]

(* --- The wider protocol family: eager RC (the predecessor LRC relaxed,
   paper 2), the paper's LRC/HLRC, and AURC (the hardware baseline HLRC
   approximates, paper 2.2-2.3 and references [15,16]) --- *)

let aurc_comparison ppf m ~node_counts =
  title ppf "Protocol family: eager RC vs LRC vs HLRC vs AURC (paper 2.2-2.3)";
  Format.fprintf ppf "%-16s %5s | %8s %8s %8s %8s | %10s %10s@." "" "nodes" "RC" "LRC" "HLRC"
    "AURC" "RC updMB" "AURC updMB";
  hline ppf 92;
  List.iter
    (fun (app : Apps.Registry.t) ->
      List.iter
        (fun np ->
          let speedup proto = Matrix.speedup m app proto np in
          let upd proto =
            float_of_int (Svm.Runtime.total_update_bytes (Matrix.get m app proto np))
            /. 1048576.0
          in
          Format.fprintf ppf "%-16s %5d | %8.2f %8.2f %8.2f %8.2f | %10.2f %10.2f@."
            app.Apps.Registry.name np (speedup Svm.Config.Rc) (speedup Svm.Config.Lrc)
            (speedup Svm.Config.Hlrc) (speedup Svm.Config.Aurc) (upd Svm.Config.Rc)
            (upd Svm.Config.Aurc))
        node_counts)
    (Apps.Registry.all (Matrix.scale m))

(* --- Adaptive home migration (extension): repairing un-hinted placement
   at run time --- *)

let home_migration ppf ~scale ~node_counts =
  title ppf "Ablation: adaptive home migration under HLRC (extension)";
  Format.fprintf ppf
    "LU without placement hints (round-robin homes), with and without migration.@.@.";
  Format.fprintf ppf "%-8s %12s %14s %12s %10s@." "nodes" "fixed (s)" "migrating (s)" "moves"
    "gain";
  hline ppf 62;
  let p = { (lu_params scale) with Apps.Lu.owner_homes = false } in
  List.iter
    (fun np ->
      let run home_migration =
        let cfg = Svm.Config.make ~home_migration ~nprocs:np Svm.Config.Hlrc in
        Svm.Runtime.run cfg (fun ctx -> Apps.Lu.body ~verify:false p ctx)
      in
      let fixed = run false and migrating = run true in
      let moves =
        Array.fold_left
          (fun acc n -> acc + n.Svm.Runtime.nr_counters.Svm.Stats.home_migrations)
          0 migrating.Svm.Runtime.r_nodes
      in
      Format.fprintf ppf "%-8d %12.3f %14.3f %12d %9.2fx@." np
        (fixed.Svm.Runtime.r_elapsed /. 1e6)
        (migrating.Svm.Runtime.r_elapsed /. 1e6)
        moves
        (fixed.Svm.Runtime.r_elapsed /. migrating.Svm.Runtime.r_elapsed))
    node_counts
