(** Garbage collection of protocol data (homeless lazy protocols,
    paper §3.5).

    Triggered at a barrier when some node's live protocol memory exceeds
    the configured threshold. Each page's designated keeper (the creator of
    the causally-maximal interval writing it) validates its copy by pulling
    the missing diffs; every other node drops its copy. Nodes rendezvous
    through the barrier manager before discarding diffs and interval
    records, so no validation can miss a diff. *)

(** [later a b]: deterministic total order refining causality (via
    {!Faults.causal_key}); used to elect keepers identically on every
    node. *)
val later : Proto.Interval.t -> Proto.Interval.t -> bool

(** page -> keeper interval, computed from the node's (post-barrier,
    globally identical) interval records. *)
val last_writers : System.node_state -> (int, Proto.Interval.t) Hashtbl.t

(** Per-node entry point, run between the barrier release and the process's
    resumption; [on_done] fires after the global discard phase. *)
val run : System.t -> System.node_state -> on_done:(unit -> unit) -> unit
