(** Adaptive home migration (extension; home-based protocols, enabled with
    {!Config.t.home_migration}).

    At barrier completion the manager re-homes pages whose dominant writer
    of the epoch is not their home: the directory is updated before the
    releases go out, and the old home ships the master copy and flush
    timestamps to the new home once every announced diff has landed.
    Fetches racing the transfer wait at the new home exactly like fetches
    racing a flush. See the module implementation for the quiescence
    argument. *)

(** Called by the barrier manager at completion with the epoch's interval
    records; a no-op unless the protocol is home-based and migration is
    enabled. *)
val run : System.t -> Proto.Interval.t list -> unit
