lib/core/api.mli: System
