lib/core/runtime.ml: Api Array Config Effect Faults Float Format List Machine Mem Printf Sim Stats String Sync System
