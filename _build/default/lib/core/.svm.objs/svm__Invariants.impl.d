lib/core/invariants.ml: Array Config Faults Int64 List Mem Printf Proto System
