lib/core/intervals.mli: Machine Mem Proto System
