lib/core/gc.ml: Array Faults Hashtbl List Machine Mem Proto Stats System
