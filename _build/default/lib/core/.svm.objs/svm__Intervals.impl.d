lib/core/intervals.ml: Array Config Hashtbl List Machine Mem Proto Stats String System
