lib/core/sync.ml: Array Config Float Gc Hashtbl Intervals Invariants List Machine Mem Migration Proto Stats System
