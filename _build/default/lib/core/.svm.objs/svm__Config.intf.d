lib/core/config.mli: Machine
