lib/core/config.ml: Machine String
