lib/core/gc.mli: Hashtbl Proto System
