lib/core/sync.mli: Effect System
