lib/core/runtime.mli: Api Config Format Stats
