lib/core/system.mli: Config Effect Format Hashtbl Machine Mem Proto Sim Stats
