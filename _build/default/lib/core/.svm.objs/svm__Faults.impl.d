lib/core/faults.ml: Array Hashtbl Intervals List Machine Mem Printf Proto Stats System
