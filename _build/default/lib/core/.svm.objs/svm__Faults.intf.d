lib/core/faults.mli: Effect Proto System
