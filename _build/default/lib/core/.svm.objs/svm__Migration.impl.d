lib/core/migration.ml: Array Config Hashtbl Intervals List Machine Mem Proto Stats System
