lib/core/stats.ml: Format List Mem
