lib/core/migration.mli: Proto System
