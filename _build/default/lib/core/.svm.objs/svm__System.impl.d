lib/core/system.ml: Array Config Effect Float Format Hashtbl List Machine Mem Printf Proto Sim Stats
