lib/core/api.ml: Array Effect Machine Mem Stats Sync System
